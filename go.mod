module scalerpc

go 1.22
