// Command mdtest runs an mdtest-style metadata benchmark against a
// simulated Octopus-like metadata server, over either ScaleRPC or the
// self-identified RPC of Octopus.
//
// Example:
//
//	mdtest -rpc scalerpc -clients 120 -op stat -files 1000 -ms 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scalerpc/internal/baseline/selfrpc"
	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/mdtest"
	"scalerpc/internal/octofs"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
)

func main() {
	rpcName := flag.String("rpc", "scalerpc", "transport: scalerpc | selfrpc")
	clients := flag.Int("clients", 80, "number of clients")
	opName := flag.String("op", "stat", "operation: mknod | rmnod | stat | readdir")
	files := flag.Int("files", 512, "preloaded files per client directory")
	ms := flag.Float64("ms", 4, "measurement window (virtual milliseconds)")
	batch := flag.Int("batch", 1, "requests outstanding per client")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	var op mdtest.Op
	switch strings.ToLower(*opName) {
	case "mknod":
		op = mdtest.Mknod
	case "rmnod":
		op = mdtest.Rmnod
	case "stat":
		op = mdtest.Stat
	case "readdir":
		op = mdtest.Readdir
	default:
		fmt.Fprintf(os.Stderr, "unknown op %q\n", *opName)
		os.Exit(2)
	}

	c := cluster.New(cluster.Default(12))
	defer c.Close()
	mds := octofs.NewMDS(c.Hosts[0], octofs.DefaultConfig())
	if !mds.Preload(*clients, *files) {
		fmt.Fprintln(os.Stderr, "inode table too small for this preload")
		os.Exit(1)
	}

	var connect func(*host.Host, *sim.Signal) rpccore.Conn
	switch strings.ToLower(*rpcName) {
	case "scalerpc":
		s := scalerpc.NewServer(c.Hosts[0], scalerpc.DefaultServerConfig())
		mds.RegisterHandlers(s)
		s.Start()
		connect = func(h *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(h, sig) }
	case "selfrpc":
		s := selfrpc.NewServer(c.Hosts[0], selfrpc.DefaultServerConfig())
		mds.RegisterHandlers(s)
		s.Start()
		connect = func(h *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(h, sig) }
	default:
		fmt.Fprintf(os.Stderr, "unknown rpc %q\n", *rpcName)
		os.Exit(2)
	}

	warmup := sim.Millisecond
	horizon := warmup + sim.Duration(*ms*float64(sim.Millisecond))
	results := make([]*rpccore.DriverStats, *clients)
	for i := 0; i < *clients; i++ {
		i := i
		ch := c.Hosts[1+i%11]
		sig := sim.NewSignal(c.Env)
		conn := connect(ch, sig)
		w := mdtest.NewWorkload(op, i, *files, *seed+uint64(i))
		dcfg := w.DriverConfig(*batch, *seed+uint64(i))
		dcfg.MeasureFrom = warmup
		dcfg.StartDelay = sim.Duration(i%64) * 311
		ch.Spawn(fmt.Sprintf("md%d", i), func(t *host.Thread) {
			st := rpccore.RunDriver(t, []rpccore.Conn{conn}, dcfg, sig,
				func() bool { return t.P.Now() >= horizon })
			results[i] = &st
		})
	}
	c.Env.RunUntil(horizon + 200*sim.Microsecond)

	var completed uint64
	for _, st := range results {
		if st != nil {
			completed += st.Completed
		}
	}
	window := float64(horizon-warmup) / 1e9
	fmt.Printf("rpc=%s op=%s clients=%d batch=%d\n", *rpcName, op, *clients, *batch)
	fmt.Printf("completed=%d  throughput=%.1f kops/s\n", completed, float64(completed)/window/1e3)
	fmt.Printf("server ops: %+v\n", mds.Stats)
}
