// Command txbench runs the ScaleTX distributed-transaction benchmarks
// (object store or SmallBank) on a simulated cluster with three storage
// servers, over any of the five systems from §4.2.1.
//
// Example:
//
//	txbench -system scaletx -workload smallbank -clients 160 -ms 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scalerpc/internal/baseline/fasstrpc"
	"scalerpc/internal/baseline/herdrpc"
	"scalerpc/internal/baseline/rawrpc"
	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/mica"
	"scalerpc/internal/objstore"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
	"scalerpc/internal/smallbank"
	"scalerpc/internal/txn"
)

const participants = 3

func main() {
	system := flag.String("system", "scaletx", "rawwrite | herd | fasst | scaletx-o | scaletx")
	workload := flag.String("workload", "smallbank", "smallbank | objstore")
	clients := flag.Int("clients", 80, "number of coordinators")
	accounts := flag.Int("accounts", 100_000, "SmallBank accounts")
	keys := flag.Int("keys", 200_000, "object-store keys")
	readSet := flag.Int("r", 3, "object-store read set")
	writeSet := flag.Int("w", 1, "object-store write set")
	ms := flag.Float64("ms", 4, "measurement window (virtual milliseconds)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	c := cluster.New(cluster.Default(12))
	defer c.Close()

	oneSided := false
	var connFns []func(*host.Host, *sim.Signal) rpccore.Conn
	parts := make([]*txn.Participant, participants)
	storeCfg := mica.Config{Buckets: 1 << 17, Items: 1 << 19, SlotSize: 128}
	var scaleSrvs []*scalerpc.Server
	for i := 0; i < participants; i++ {
		h := c.Hosts[i]
		parts[i] = txn.NewParticipant(h, storeCfg)
		switch strings.ToLower(*system) {
		case "rawwrite":
			s := rawrpc.NewServer(h, rawrpc.DefaultServerConfig())
			parts[i].RegisterHandlers(s)
			s.Start()
			connFns = append(connFns, func(ch *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(ch, sig) })
		case "herd":
			s := herdrpc.NewServer(h, herdrpc.DefaultServerConfig())
			parts[i].RegisterHandlers(s)
			s.Start()
			connFns = append(connFns, func(ch *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(ch, sig) })
		case "fasst":
			s := fasstrpc.NewServer(h, fasstrpc.DefaultServerConfig())
			parts[i].RegisterHandlers(s)
			s.Start()
			connFns = append(connFns, func(ch *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(ch, sig) })
		case "scaletx", "scaletx-o":
			oneSided = strings.ToLower(*system) == "scaletx"
			cfg := scalerpc.DefaultServerConfig()
			cfg.Dynamic = false
			cfg.SyncPeriod = 2 * sim.Millisecond
			s := scalerpc.NewServer(h, cfg)
			parts[i].RegisterHandlers(s)
			s.Start()
			scaleSrvs = append(scaleSrvs, s)
			connFns = append(connFns, func(ch *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(ch, sig) })
		default:
			fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
			os.Exit(2)
		}
	}
	if len(scaleSrvs) > 1 {
		scalerpc.NewSyncGroup(scaleSrvs)
	}

	var genFor func(i int) func() *txn.Txn
	switch strings.ToLower(*workload) {
	case "smallbank":
		cfg := smallbank.DefaultConfig()
		cfg.Accounts = *accounts
		if err := smallbank.Load(parts, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		genFor = func(i int) func() *txn.Txn {
			g := smallbank.NewGen(cfg, *seed*733+uint64(i))
			return g.Next
		}
	case "objstore":
		cfg := objstore.Config{Keys: *keys, ValueSize: 40, ReadSet: *readSet, WriteSet: *writeSet}
		if err := objstore.Load(parts, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		genFor = func(i int) func() *txn.Txn {
			g := objstore.NewGen(cfg, *seed*131+uint64(i))
			return g.Next
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}

	warmup := sim.Millisecond
	horizon := warmup + sim.Duration(*ms*float64(sim.Millisecond))
	coords := make([]*txn.Coordinator, *clients)
	measured := make([]uint64, *clients)
	for i := 0; i < *clients; i++ {
		i := i
		ch := c.Hosts[participants+i%(12-participants)]
		sig := sim.NewSignal(c.Env)
		conns := make([]rpccore.Conn, participants)
		for p, fn := range connFns {
			conns[p] = fn(ch, sig)
		}
		co := txn.NewCoordinator(ch, uint64(i+1), parts, conns, oneSided, sig)
		coords[i] = co
		gen := genFor(i)
		co.Spawn(func(t *host.Thread, cc *txn.Coordinator) {
			t.P.Sleep(sim.Duration(i%64) * 311)
			var base uint64
			started := false
			txn.RunLoop(t, cc, gen, func() bool {
				if !started && t.P.Now() >= warmup {
					started = true
					base = cc.Stats.Commits
				}
				return t.P.Now() >= horizon
			})
			if started {
				measured[i] = cc.Stats.Commits - base
			}
		})
	}
	c.Env.RunUntil(horizon + 500*sim.Microsecond)

	var total uint64
	var agg txn.CoordinatorStats
	for i, co := range coords {
		total += measured[i]
		agg.Commits += co.Stats.Commits
		agg.LockAborts += co.Stats.LockAborts
		agg.ValidationAborts += co.Stats.ValidationAborts
		agg.OneSidedReads += co.Stats.OneSidedReads
		agg.OneSidedWrites += co.Stats.OneSidedWrites
	}
	window := float64(horizon-warmup) / 1e9
	fmt.Printf("system=%s workload=%s clients=%d\n", *system, *workload, *clients)
	fmt.Printf("committed=%d  throughput=%.3f Mtxns/s\n", total, float64(total)/window/1e6)
	fmt.Printf("totals: %s\n", agg)
}
