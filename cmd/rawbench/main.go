// Command rawbench measures raw RDMA verb throughput on the simulated
// cluster — the microbenchmarks behind Figures 1(b), 3(a) and 3(b).
//
// Examples:
//
//	rawbench -verb outbound -clients 10,40,150,400,800
//	rawbench -verb inbound -block 2048 -clients 400
//	rawbench -verb udsend -clients 100
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"scalerpc/internal/bench"
	"scalerpc/internal/sim"
)

func main() {
	verb := flag.String("verb", "outbound", "outbound | inbound | udsend")
	clientList := flag.String("clients", "10,40,150,400", "comma-separated client counts")
	block := flag.Int("block", 64, "inbound message block size (bytes)")
	ms := flag.Float64("ms", 2, "measurement window (virtual ms)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	opts := bench.DefaultOptions()
	opts.Seed = *seed
	opts.Duration = sim.Duration(*ms * float64(sim.Millisecond))

	var counts []int
	for _, s := range strings.Split(*clientList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad client count %q\n", s)
			os.Exit(2)
		}
		counts = append(counts, n)
	}

	switch *verb {
	case "outbound":
		fmt.Printf("%-8s  %-12s  %-14s\n", "clients", "Mops/s", "PCIeRd Mev/s")
		for _, n := range counts {
			tput, rd := bench.MeasureOutboundWrite(n, opts)
			fmt.Printf("%-8d  %-12.3f  %-14.3f\n", n, tput, rd)
		}
	case "inbound":
		fmt.Printf("%-8s  %-12s  %-14s  (block=%d)\n", "clients", "Mops/s", "alloc-frac", *block)
		for _, n := range counts {
			tput, frac := bench.MeasureInboundWrite(n, *block, opts)
			fmt.Printf("%-8d  %-12.3f  %-14.3f\n", n, tput, frac)
		}
	case "udsend":
		fmt.Printf("%-8s  %-12s\n", "clients", "Mops/s")
		for _, n := range counts {
			fmt.Printf("%-8d  %-12.3f\n", n, bench.MeasureInboundUDSend(n, opts))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown verb %q\n", *verb)
		os.Exit(2)
	}
}
