// Command scalebench regenerates the paper's evaluation tables and
// figures on the simulated cluster.
//
// Usage:
//
//	scalebench -list                # show experiment ids
//	scalebench list                 # same, as a subcommand
//	scalebench run fig8 [fig9 ...]  # run selected experiments
//	scalebench all                  # run everything
//
// Flags:
//
//	-quick        shrunken sweeps (CI-sized)
//	-csv DIR      also write <id>.csv files into DIR
//	-seed N       simulation seed (default 1)
//	-duration MS  measurement window per data point, in virtual ms
//	-metrics FILE write a full telemetry dump (registry + sampled series +
//	              trace events, per data point) as JSON to FILE
//	-faults FILE  install the fault scenario (JSON, see internal/faults) on
//	              every cluster the experiments build
//	-artifacts DIR write every artifact an experiment emits (e.g. the
//	              loadgen BENCH_loadgen_*.json reports) into DIR
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"scalerpc/internal/bench"
	"scalerpc/internal/faults"
	"scalerpc/internal/sim"
)

func main() {
	list := flag.Bool("list", false, "print registered experiments and exit")
	quick := flag.Bool("quick", false, "shrunken sweeps (CI-sized)")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files")
	seed := flag.Uint64("seed", 1, "simulation seed")
	durMS := flag.Float64("duration", 0, "measurement window per point (virtual ms); 0 = default")
	metricsPath := flag.String("metrics", "", "write a per-point telemetry dump (JSON) to this file")
	faultsPath := flag.String("faults", "", "fault scenario (JSON) to install on every experiment cluster")
	artifactsDir := flag.String("artifacts", "", "directory to write experiment artifacts (BENCH_*.json)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	gatePath := flag.String("simspeed-gate", "", "committed BENCH_simspeed.json to gate against: exit 1 if the simspeed run's events/sec falls >20% below its gate floor")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
		}()
	}
	simspeedGate = *gatePath

	if *list {
		listExperiments()
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	opts := bench.DefaultOptions()
	if *quick {
		opts = bench.QuickOptions()
	}
	opts.Seed = *seed
	if *durMS > 0 {
		opts.Duration = sim.Duration(*durMS * float64(sim.Millisecond))
	}
	if *faultsPath != "" {
		sc, err := faults.LoadScenario(*faultsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts.Faults = sc
	}
	if *metricsPath != "" {
		opts.Metrics = &bench.MetricsRecorder{}
		defer func() {
			if err := opts.Metrics.WriteFile(*metricsPath); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}

	switch args[0] {
	case "list":
		listExperiments()
		return
	case "all":
		var ids []string
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
		runAll(ids, opts, *csvDir, *artifactsDir)
		return
	case "run":
		if len(args) < 2 {
			usage()
			os.Exit(2)
		}
		runAll(args[1:], opts, *csvDir, *artifactsDir)
		return
	default:
		// Bare experiment ids also work: `scalebench fig8`.
		runAll(args, opts, *csvDir, *artifactsDir)
	}
}

// simspeedGate, when set, is the committed BENCH_simspeed.json whose gate
// floor the current simspeed run must stay within 20% of.
var simspeedGate string

// checkSimspeedGate compares the simspeed run's fresh artifact against the
// committed baseline's regression floor.
func checkSimspeedGate(res *bench.Result) {
	if simspeedGate == "" || res.ID != "simspeed" {
		return
	}
	committed, err := os.ReadFile(simspeedGate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simspeed-gate:", err)
		os.Exit(1)
	}
	var gate struct {
		GateEventsPerSec float64 `json:"gate_events_per_sec"`
	}
	if err := json.Unmarshal(committed, &gate); err != nil || gate.GateEventsPerSec <= 0 {
		fmt.Fprintf(os.Stderr, "simspeed-gate: %s has no gate_events_per_sec (err=%v)\n", simspeedGate, err)
		os.Exit(1)
	}
	var cur struct {
		Macro struct {
			EventsPerSec float64 `json:"events_per_sec"`
		} `json:"macro"`
	}
	for _, a := range res.Artifacts {
		if a.Name == "BENCH_simspeed.json" {
			if err := json.Unmarshal(a.Data, &cur); err != nil {
				fmt.Fprintln(os.Stderr, "simspeed-gate:", err)
				os.Exit(1)
			}
		}
	}
	floor := gate.GateEventsPerSec * 0.8
	if cur.Macro.EventsPerSec < floor {
		fmt.Fprintf(os.Stderr, "simspeed-gate: FAIL — macro %.2f M events/s is >20%% below the committed floor %.2f M events/s\n",
			cur.Macro.EventsPerSec/1e6, gate.GateEventsPerSec/1e6)
		os.Exit(1)
	}
	fmt.Printf("(simspeed-gate: pass — %.2f M events/s vs floor %.2f M events/s)\n",
		cur.Macro.EventsPerSec/1e6, gate.GateEventsPerSec/1e6)
}

func runAll(ids []string, opts bench.Options, csvDir, artifactsDir string) {
	for _, id := range ids {
		e, ok := bench.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try `scalebench list`)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		opts.Metrics.Begin(id)
		res := e.Run(opts)
		fmt.Println(res.Render())
		checkSimspeedGate(res)
		fmt.Printf("(%s wall time: %.1fs)\n\n", id, time.Since(start).Seconds())
		if csvDir != "" {
			if err := os.MkdirAll(csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if artifactsDir != "" && len(res.Artifacts) > 0 {
			if err := os.MkdirAll(artifactsDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for _, a := range res.Artifacts {
				path := filepath.Join(artifactsDir, a.Name)
				if err := os.WriteFile(path, a.Data, 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("(artifact: %s)\n", path)
			}
		}
	}
}

func listExperiments() {
	for _, e := range bench.Experiments() {
		fmt.Printf("%-10s %s\n", e.ID, e.Title)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  scalebench -list | list
  scalebench run <id> [<id>...]
  scalebench all
  scalebench [-quick] [-csv DIR] [-seed N] [-duration MS] [-metrics FILE] [-faults FILE] [-artifacts DIR] <id>...`)
}
