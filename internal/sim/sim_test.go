package sim

import (
	"testing"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEnv()
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
}

func TestAtRunsCallbacksInOrder(t *testing.T) {
	e := NewEnv()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (same-instant events must run FIFO)", i, v, i)
		}
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEnv()
	var wakeTimes []Time
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(100)
			wakeTimes = append(wakeTimes, p.Now())
		}
	})
	e.Run()
	want := []Time{100, 200, 300}
	for i, w := range want {
		if wakeTimes[i] != w {
			t.Fatalf("wakeTimes = %v, want %v", wakeTimes, want)
		}
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEnv()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(10)
					log = append(log, name)
				}
			})
		}
		e.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 20; trial++ {
		got := run()
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("trial %d: schedule diverged at %d: %v vs %v", trial, i, got, first)
			}
		}
	}
	// Spawned a,b,c in order; equal timestamps must preserve that order.
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("log = %v, want %v", first, want)
		}
	}
}

func TestRunUntilStopsAtHorizon(t *testing.T) {
	e := NewEnv()
	fired := 0
	e.At(50, func() { fired++ })
	e.At(150, func() { fired++ })
	e.RunUntil(100)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 100 {
		t.Fatalf("Now() = %d, want 100", e.Now())
	}
	e.RunUntil(200)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestSignalWakeOne(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	woken := make([]bool, 3)
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			s.Wait(p)
			woken[i] = true
		})
	}
	e.At(10, func() { s.Wake(1) })
	e.Run()
	count := 0
	for _, w := range woken {
		if w {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("woken count = %d, want 1", count)
	}
	if !woken[0] {
		t.Fatal("Wake(1) must wake the first waiter (FIFO)")
	}
	e.Close()
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	count := 0
	for i := 0; i < 5; i++ {
		e.Spawn("w", func(p *Proc) {
			s.Wait(p)
			count++
		})
	}
	e.At(10, func() { s.Broadcast() })
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestWaitTimeout(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	var timedOut, gotSignal bool
	e.Spawn("t", func(p *Proc) {
		timedOut = s.WaitTimeout(p, 100)
	})
	e.Spawn("s", func(p *Proc) {
		gotSignal = !s.WaitTimeout(p, 100)
	})
	e.At(50, func() { s.Wake(2) }) // both still waiting at t=50... first may have...
	e.Run()
	if !gotSignal {
		t.Fatal("second waiter should have been signalled before timeout")
	}
	if timedOut {
		t.Fatal("first waiter should have been signalled before timeout")
	}
}

func TestWaitTimeoutExpires(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	var timedOut bool
	var at Time
	e.Spawn("t", func(p *Proc) {
		timedOut = s.WaitTimeout(p, 100)
		at = p.Now()
	})
	e.Run()
	if !timedOut {
		t.Fatal("expected timeout")
	}
	if at != 100 {
		t.Fatalf("woke at %d, want 100", at)
	}
}

func TestStaleWakeAfterTimeout(t *testing.T) {
	// A waiter that timed out must not be resumed again by a later Wake.
	e := NewEnv()
	s := NewSignal(e)
	resumes := 0
	e.Spawn("t", func(p *Proc) {
		s.WaitTimeout(p, 10)
		resumes++
		p.Sleep(1000)
		resumes++
	})
	e.At(500, func() { s.Broadcast() })
	e.Run()
	if resumes != 2 {
		t.Fatalf("resumes = %d, want 2 (timeout, then sleep completion)", resumes)
	}
	if e.Now() != 1010 {
		t.Fatalf("Now() = %d, want 1010 (stale broadcast must not shorten the sleep)", e.Now())
	}
}

func TestQueuePushPop(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e)
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Pop(p))
		}
	})
	e.At(10, func() { q.Push(1) })
	e.At(20, func() { q.Push(2); q.Push(3) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got = %v, want [1 2 3]", got)
	}
}

func TestQueuePopTimeout(t *testing.T) {
	e := NewEnv()
	q := NewQueue[string](e)
	var ok1, ok2 bool
	e.Spawn("c", func(p *Proc) {
		_, ok1 = q.PopTimeout(p, 50)
		v, ok := q.PopTimeout(p, 100)
		ok2 = ok && v == "x"
	})
	e.At(100, func() { q.Push("x") })
	e.Run()
	if ok1 {
		t.Fatal("first pop should time out")
	}
	if !ok2 {
		t.Fatal("second pop should receive the value")
	}
}

func TestQueueTryPop(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue must fail")
	}
	q.Push(7)
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	v, ok := q.TryPop()
	if !ok || v != 7 {
		t.Fatalf("TryPop = %d,%v want 7,true", v, ok)
	}
}

func TestResourceLimitsConcurrency(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 2)
	var maxBusy int
	busy := 0
	for i := 0; i < 6; i++ {
		e.Spawn("worker", func(p *Proc) {
			r.Acquire(p)
			busy++
			if busy > maxBusy {
				maxBusy = busy
			}
			p.Sleep(100)
			busy--
			r.Release()
		})
	}
	end := e.Run()
	if maxBusy != 2 {
		t.Fatalf("maxBusy = %d, want 2", maxBusy)
	}
	if end != 300 {
		t.Fatalf("end = %d, want 300 (6 jobs × 100ns on 2 units)", end)
	}
}

func TestResourceUse(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 1)
	done := 0
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			r.Use(p, 50)
			done++
		})
	}
	end := e.Run()
	if done != 3 || end != 150 {
		t.Fatalf("done=%d end=%d, want 3, 150", done, end)
	}
	u := r.Utilization()
	if u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %f, want ~1.0", u)
	}
}

func TestCloseKillsBlockedProcs(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	reached := false
	e.Spawn("stuck", func(p *Proc) {
		s.Wait(p) // never woken
		reached = true
	})
	e.Run()
	e.Close()
	if reached {
		t.Fatal("killed process must not continue past its blocking call")
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEnv()
	var childRan bool
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(10)
		p.Env().Spawn("child", func(c *Proc) {
			c.Sleep(5)
			childRan = true
		})
		p.Sleep(100)
	})
	end := e.Run()
	if !childRan {
		t.Fatal("child did not run")
	}
	if end != 110 {
		t.Fatalf("end = %d, want 110", end)
	}
}

func TestYieldOrdersAfterQueuedEvents(t *testing.T) {
	e := NewEnv()
	var order []string
	e.Spawn("a", func(p *Proc) {
		p.Env().At(0, func() { order = append(order, "cb") })
		p.Yield()
		order = append(order, "a")
	})
	e.Run()
	if len(order) != 2 || order[0] != "cb" || order[1] != "a" {
		t.Fatalf("order = %v, want [cb a]", order)
	}
}

func BenchmarkCallbackEvents(b *testing.B) {
	e := NewEnv()
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			e.At(1, fn)
		}
	}
	e.At(1, fn)
	b.ResetTimer()
	e.Run()
}

func BenchmarkProcSleepWake(b *testing.B) {
	e := NewEnv()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	e.Run()
}

func TestPropertyTimeNeverRegresses(t *testing.T) {
	// Random callback schedules: observed time must be non-decreasing and
	// every event must fire exactly once.
	err := quickCheck(func(seed uint64) bool {
		e := NewEnv()
		rng := seed
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		var last Time = -1
		fired := 0
		var schedule func(depth int)
		schedule = func(depth int) {
			n := int(next()%5) + 1
			for i := 0; i < n; i++ {
				d := Duration(next() % 1000)
				e.At(d, func() {
					if e.Now() < last {
						t.Errorf("time regressed: %d < %d", e.Now(), last)
					}
					last = e.Now()
					fired++
					if depth < 3 && next()%3 == 0 {
						schedule(depth + 1)
					}
				})
				fired-- // balance: count scheduled as negative, fired as +2
				fired++
			}
		}
		schedule(0)
		e.Run()
		return e.Idle()
	}, 50)
	if err != nil {
		t.Fatal(err)
	}
}

func quickCheck(fn func(seed uint64) bool, n int) error {
	for i := 0; i < n; i++ {
		if !fn(uint64(i)*2654435761 + 1) {
			return fmtErrorf("property failed at seed %d", i)
		}
	}
	return nil
}

func fmtErrorf(format string, args ...interface{}) error {
	return &propErr{s: format, args: args}
}

type propErr struct {
	s    string
	args []interface{}
}

func (e *propErr) Error() string { return e.s }

func TestResourceFIFOFairness(t *testing.T) {
	// Waiters acquire a contended resource roughly in arrival order.
	e := NewEnv()
	r := NewResource(e, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.SpawnAt(Duration(i), "w", func(p *Proc) {
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(100)
			r.Release()
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("acquisition order %v not FIFO", order)
		}
	}
}

func TestQueueInterleavedProducersConsumers(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e)
	var got []int
	for c := 0; c < 3; c++ {
		e.Spawn("consumer", func(p *Proc) {
			for i := 0; i < 10; i++ {
				got = append(got, q.Pop(p))
			}
		})
	}
	for pr := 0; pr < 2; pr++ {
		pr := pr
		e.Spawn("producer", func(p *Proc) {
			for i := 0; i < 15; i++ {
				q.Push(pr*100 + i)
				p.Sleep(7)
			}
		})
	}
	e.Run()
	if len(got) != 30 {
		t.Fatalf("consumed %d, want 30", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("value %d delivered twice", v)
		}
		seen[v] = true
	}
}

func TestSpawnAtDelaysStart(t *testing.T) {
	e := NewEnv()
	var started Time
	e.SpawnAt(500, "late", func(p *Proc) { started = p.Now() })
	e.Run()
	if started != 500 {
		t.Fatalf("started at %d, want 500", started)
	}
}
