package sim

import "testing"

// TestQueuePushWakesExactlyOne pins the thundering-herd fix: one Push wakes
// exactly one of the parked consumers (the FIFO-first), and the other N-1
// stay parked — no spurious resume events are dispatched for them.
func TestQueuePushWakesExactlyOne(t *testing.T) {
	const consumers = 8
	e := NewEnv()
	defer e.Close()
	q := NewQueue[int](e)
	got := make([]int, 0, 1)
	order := make([]int, 0, 1)
	for i := 0; i < consumers; i++ {
		i := i
		e.Spawn("c", func(p *Proc) {
			if v, ok := q.PopTimeout(p, 1_000_000); ok {
				got = append(got, v)
				order = append(order, i)
			}
		})
	}
	// Park everyone.
	e.RunUntil(10)
	if q.sig.Waiting() != consumers {
		t.Fatalf("parked waiters = %d, want %d", q.sig.Waiting(), consumers)
	}
	_, pr0 := e.FiredBreakdown()

	e.At(1, func() { q.Push(42) })
	e.RunUntil(100)

	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got = %v, want exactly [42]", got)
	}
	if len(order) != 1 || order[0] != 0 {
		t.Fatalf("woken consumer = %v, want FIFO-first [0]", order)
	}
	_, pr1 := e.FiredBreakdown()
	signalWakes := pr1[tagSignal] - pr0[tagSignal]
	if signalWakes != 1 {
		t.Fatalf("signal wakes after one Push = %d, want 1 (herd not woken)", signalWakes)
	}
	// The other N-1 consumers are still parked.
	if q.sig.Waiting() != consumers-1 {
		t.Fatalf("parked waiters after Push = %d, want %d", q.sig.Waiting(), consumers-1)
	}
}

// TestUseAsyncDoesNotJumpAcquireQueue pins FIFO admission against the
// async-charge fast path: after Release frees the unit and elects a queued
// waiter, a callback running before the waiter's resume event sees a free
// unit. UseAsync must refuse it (the unit is spoken for) so the waiter is
// not re-parked behind the callback's charge.
func TestUseAsyncDoesNotJumpAcquireQueue(t *testing.T) {
	e := NewEnv()
	defer e.Close()
	r := NewResource(e, 1)
	var acquiredAt Time
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(100)
		// Scheduled before Release's wake, so it fires at t=100 in the
		// window after the unit is freed but before the elected waiter's
		// resume event runs — exactly the steal window.
		e.At(0, func() {
			if r.UseAsync(50) {
				t.Error("UseAsync charged while an Acquire waiter was queued")
			}
		})
		r.Release()
	})
	e.SpawnAt(10, "waiter", func(p *Proc) {
		r.Acquire(p)
		acquiredAt = e.Now()
		r.Release()
	})
	e.Run()
	if acquiredAt != 100 {
		t.Fatalf("queued waiter acquired at t=%d, want t=100 (queue was jumped)", acquiredAt)
	}
}

// TestQueueBatonOnTimeoutRace covers the wake-one stranding hazard: a Push
// elects consumer A in the same instant A's timeout timer fires first, so
// the wake goes stale against A's new generation. A must pass the baton to
// consumer B instead of letting the value sit behind B's park.
func TestQueueBatonOnTimeoutRace(t *testing.T) {
	e := NewEnv()
	defer e.Close()
	q := NewQueue[string](e)

	// Scheduled before the consumers spawn, so at t=100 this callback's
	// event precedes A's timeout timer (lower seq) and the Push's Wake(1)
	// targets a consumer whose timer fires in the same instant.
	e.At(100, func() { q.Push("x") })

	var aOK, bOK bool
	var bVal string
	e.Spawn("a", func(p *Proc) {
		_, aOK = q.PopTimeout(p, 100)
	})
	e.Spawn("b", func(p *Proc) {
		bVal, bOK = q.PopTimeout(p, 1000)
	})
	e.Run()

	if aOK {
		t.Fatal("consumer A should have timed out")
	}
	if !bOK || bVal != "x" {
		t.Fatalf("consumer B should receive the batoned value, got ok=%v v=%q", bOK, bVal)
	}
	if q.Len() != 0 {
		t.Fatalf("value stranded in queue (len=%d)", q.Len())
	}
}
