package sim

import (
	"testing"
)

// drain pops every event ≤ until and returns the (at, seq) sequence.
func drain(s scheduler, until Time) [][2]uint64 {
	var out [][2]uint64
	for {
		ev, ok := s.next(until)
		if !ok {
			return out
		}
		out = append(out, [2]uint64{uint64(ev.at), ev.seq})
	}
}

// TestWheelMatchesHeapRandom schedules identical random event streams into
// the wheel and the heap — interleaving schedules with partial drains, so
// the wheel's cascades and horizon clamping are exercised — and asserts the
// two dequeue in exactly the same (at, seq) order.
func TestWheelMatchesHeapRandom(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		w := newTimingWheel()
		h := &heapSched{}
		rng := seed * 2654435761
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		var now Time
		var seq uint64
		for round := 0; round < 50; round++ {
			// Schedule a burst at/after now. Deltas span several wheel
			// levels, including exact-now and block-crossing values.
			n := int(next()%20) + 1
			for i := 0; i < n; i++ {
				var d Time
				switch next() % 5 {
				case 0:
					d = 0
				case 1:
					d = Time(next() % 16)
				case 2:
					d = Time(next() % 4096)
				case 3:
					d = Time(next() % (1 << 20))
				default:
					d = Time(next() % (1 << 36))
				}
				seq++
				ev := event{at: now + d, seq: seq, fn: func() {}}
				w.schedule(ev)
				h.schedule(ev)
			}
			// Drain up to a random horizon ≥ now.
			until := now + Time(next()%(1<<22))
			for {
				we, wok := w.next(until)
				he, hok := h.next(until)
				if wok != hok {
					t.Fatalf("seed %d round %d: wheel ok=%v heap ok=%v", seed, round, wok, hok)
				}
				if !wok {
					break
				}
				if we.at != he.at || we.seq != he.seq {
					t.Fatalf("seed %d round %d: wheel (%d,%d) != heap (%d,%d)",
						seed, round, we.at, we.seq, he.at, he.seq)
				}
				if we.at < now {
					t.Fatalf("seed %d: time regressed: %d < %d", seed, we.at, now)
				}
				now = we.at
				if w.pending() != h.pending() {
					t.Fatalf("seed %d: pending %d != %d", seed, w.pending(), h.pending())
				}
			}
			if until > now {
				now = until
			}
		}
		// Full drain must also agree.
		wRest := drain(w, maxTime)
		hRest := drain(h, maxTime)
		if len(wRest) != len(hRest) {
			t.Fatalf("seed %d: final drain %d vs %d events", seed, len(wRest), len(hRest))
		}
		for i := range wRest {
			if wRest[i] != hRest[i] {
				t.Fatalf("seed %d: final drain diverges at %d: %v vs %v", seed, i, wRest[i], hRest[i])
			}
		}
	}
}

// TestWheelHorizonDoesNotLoseEvents reproduces the RunUntil pattern loadgen
// relies on: repeatedly run to a horizon, then schedule events earlier than
// the wheel's internal position would be if it had (incorrectly) advanced
// all the way to the horizon.
func TestWheelHorizonDoesNotLoseEvents(t *testing.T) {
	e := NewEnv()
	var fired []Time
	e.At(10_000, func() { fired = append(fired, e.Now()) })
	e.RunUntil(500) // horizon far before the first event
	// Schedule an event at 600 — earlier than the pending 10_000 event and
	// earlier than any 256-block the wheel could have skipped to.
	e.At(100, func() { fired = append(fired, e.Now()) })
	e.RunUntil(20_000)
	if len(fired) != 2 || fired[0] != 600 || fired[1] != 10_000 {
		t.Fatalf("fired = %v, want [600 10000]", fired)
	}
}

// TestWheelBlockCrossing pins the case that breaks delta-based level
// selection: an event a few ticks away that crosses a 256-block boundary
// must not fire before an earlier event placed at a higher level.
func TestWheelBlockCrossing(t *testing.T) {
	e := NewEnv()
	var order []Time
	record := func() { order = append(order, e.Now()) }
	// Advance the clock to 250 so the next schedules straddle block 0/1.
	e.At(250, func() {
		e.At(270, record) // at=520: crosses into block 2 at level 0 distance
		e.At(260, record) // at=510: earlier, same destination block
		e.At(5, record)   // at=255: same block
	})
	e.Run()
	want := []Time{255, 510, 520}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestWheelStaleTailThenSchedule pins the cur/now desync hazard: Run()
// drains a queue whose last event is a stale timer (its signal won), which
// advances the wheel's cursor far past Env.now since stale events are
// dropped without dispatching. Scheduling afterwards at now+delay lands
// behind the cursor and must neither panic nor lose or reorder events.
func TestWheelStaleTailThenSchedule(t *testing.T) {
	e := NewEnv()
	defer e.Close()
	s := NewSignal(e)
	e.Spawn("w", func(p *Proc) {
		if s.WaitTimeout(p, 1000) {
			t.Error("wait should have been won by the signal, not the timer")
		}
	})
	e.At(10, func() { s.Wake(1) })
	e.Run() // drains the stale t=1000 timer; the clock stays at 10
	if e.Now() != 10 {
		t.Fatalf("now = %d after drain, want 10", e.Now())
	}
	var fired []Time
	rec := func() { fired = append(fired, e.Now()) }
	// All behind the wheel's cursor (≈1000), deliberately scheduled out of
	// order, plus one beyond it.
	e.At(20, rec)
	e.At(5, rec)
	e.At(5, rec) // equal timestamp: must keep schedule (seq) order
	e.At(2000, rec)
	// A horizon short of the stale cursor must still release the early pair.
	e.RunUntil(15)
	if len(fired) != 2 || fired[0] != 15 || fired[1] != 15 {
		t.Fatalf("fired after RunUntil(15) = %v, want [15 15]", fired)
	}
	e.Run()
	want := []Time{15, 15, 30, 2010}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

// TestWheelBehindCursorMatchesHeap exercises the same aftermath directly at
// the scheduler level: after a drain leaves the wheel's cursor ahead of the
// Env clock, behind-cursor schedules must dequeue in exactly the heap's
// (at, seq) order, and a horizon shorter than the cursor must still release
// them.
func TestWheelBehindCursorMatchesHeap(t *testing.T) {
	w := newTimingWheel()
	h := &heapSched{}
	both := func(ev event) { w.schedule(ev); h.schedule(ev) }
	// A lone far-future event, drained: the Env would have dropped it as a
	// stale timer, leaving the cursor at 1010 while the clock stayed behind.
	both(event{at: 1010, seq: 1, fn: func() {}})
	drain(w, maxTime)
	drain(h, maxTime)
	// Fresh events behind the cursor, out of order, plus one at the cursor
	// and one beyond it.
	both(event{at: 20, seq: 2, fn: func() {}})
	both(event{at: 15, seq: 3, fn: func() {}})
	both(event{at: 15, seq: 4, fn: func() {}})
	both(event{at: 1010, seq: 5, fn: func() {}})
	both(event{at: 4000, seq: 6, fn: func() {}})
	check := func(until Time, want [][2]uint64) {
		t.Helper()
		wGot := drain(w, until)
		hGot := drain(h, until)
		if len(wGot) != len(want) || len(hGot) != len(want) {
			t.Fatalf("drain(%d): wheel %v heap %v, want %v", until, wGot, hGot, want)
		}
		for i := range want {
			if wGot[i] != want[i] || hGot[i] != want[i] {
				t.Fatalf("drain(%d): wheel %v heap %v, want %v", until, wGot, hGot, want)
			}
		}
	}
	check(20, [][2]uint64{{15, 3}, {15, 4}, {20, 2}})
	check(maxTime, [][2]uint64{{1010, 5}, {4000, 6}})
	if w.pending() != 0 || h.pending() != 0 {
		t.Fatalf("pending after full drain: wheel %d heap %d", w.pending(), h.pending())
	}
}

// TestHeapSchedulerShim verifies the retained heap implementation still
// drives an Env end to end.
func TestHeapSchedulerShim(t *testing.T) {
	prev := SetDefaultScheduler("heap")
	defer SetDefaultScheduler(prev)
	e := NewEnv()
	if e.SchedulerName() != "heap" {
		t.Fatalf("SchedulerName = %q, want heap", e.SchedulerName())
	}
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.Spawn("p", func(p *Proc) {
		p.Sleep(20)
		order = append(order, 2)
	})
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func BenchmarkWheelScheduleFire(b *testing.B) {
	// Uniform random horizons across four decades: the classic calendar
	// queue hold pattern.
	w := newTimingWheel()
	rng := uint64(99)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	var now Time
	var seq uint64
	// Prime with a standing population.
	for i := 0; i < 4096; i++ {
		seq++
		w.schedule(event{at: now + Time(next()%65536) + 1, seq: seq, fn: func() {}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, ok := w.next(maxTime)
		if !ok {
			b.Fatal("wheel drained")
		}
		now = ev.at
		seq++
		w.schedule(event{at: now + Time(next()%65536) + 1, seq: seq, fn: func() {}})
	}
}

func BenchmarkHeapScheduleFire(b *testing.B) {
	h := &heapSched{}
	rng := uint64(99)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	var now Time
	var seq uint64
	for i := 0; i < 4096; i++ {
		seq++
		h.schedule(event{at: now + Time(next()%65536) + 1, seq: seq, fn: func() {}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, ok := h.next(maxTime)
		if !ok {
			b.Fatal("heap drained")
		}
		now = ev.at
		seq++
		h.schedule(event{at: now + Time(next()%65536) + 1, seq: seq, fn: func() {}})
	}
}

// BenchmarkTimerCancel measures the stale-event path: schedule a wake per
// iteration that is invalidated (generation bump) before it fires, the
// pattern WaitTimeout produces under heavy signal traffic.
func BenchmarkTimerCancel(b *testing.B) {
	e := NewEnv()
	s := NewSignal(e)
	e.Spawn("w", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			// Timeout far in the future; the Wake below arrives first, so
			// the timer event goes stale and is dropped on pop.
			s.WaitTimeout(p, 1<<20)
		}
	})
	e.At(1, func() {})
	e.RunUntil(0) // let the proc park
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Wake(1)
		e.RunUntil(e.Now() + 1)
	}
	b.StopTimer()
	e.Close()
}

func BenchmarkProcWake(b *testing.B) {
	e := NewEnv()
	s := NewSignal(e)
	e.Spawn("w", func(p *Proc) {
		for {
			s.Wait(p)
		}
	})
	e.RunUntil(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Wake(1)
		e.RunUntil(e.Now() + 1)
	}
	b.StopTimer()
	e.Close()
}
