package sim

import "math/bits"

// scheduler is the event-queue abstraction behind Env. Two implementations
// exist: the hierarchical timing wheel (default) and the original binary
// heap, retained so the scheduler-equivalence tests can replay the same
// seeded experiments on both and assert identical event order.
type scheduler interface {
	// schedule enqueues ev. ev.at must be ≥ the timestamp of the last event
	// the caller *dispatched* (Env schedules at now+delay). It may lie behind
	// the queue's internal position: stale events (dropped wake-ups) advance
	// the wheel without advancing Env.now, so a fresh event can legitimately
	// land behind the wheel's cursor and must still fire in (at, seq) order.
	schedule(ev event)
	// next dequeues the earliest event with at ≤ until, in (at, seq) order.
	// ok is false when no such event exists; later events stay queued.
	next(until Time) (ev event, ok bool)
	// pending returns the number of queued events (including stale ones).
	pending() int
	// clear drops every queued event.
	clear()
	// name identifies the implementation ("wheel" or "heap").
	name() string
}

// Timing-wheel geometry: 8 levels of 256 slots each cover the full 64-bit
// timestamp space one byte per level. Level 0 slots hold events whose
// timestamp differs from the wheel position only in the low byte (so a
// level-0 slot holds events at exactly one timestamp); level k holds events
// whose highest differing byte is byte k.
const (
	wheelLevels = 8
	wheelSlots  = 256
	wheelMask   = wheelSlots - 1
)

// timingWheel is a hierarchical timing wheel with the same (at, seq) total
// order as a binary heap, but O(1) schedule and amortized O(1) dispatch,
// and — critically for GC pressure — no per-event interface boxing: events
// live in plain slices whose backing arrays are recycled.
//
// Invariants:
//   - cur never exceeds the timestamp of any pending event, and never
//     exceeds the `until` horizon passed to next (so a later RunUntil with
//     a larger horizon can still schedule events "between" horizons).
//   - every slot slice is seq-sorted: direct inserts happen in seq order
//     (seq increases monotonically), and a cascade from level k fills the
//     empty level-(k-1) slots of the block being entered before any direct
//     insert into that block can occur.
//   - due is (at, seq)-sorted. Normally it holds only events at exactly cur
//     (same-instant follow-ups — At(0), Signal.Wake — append behind with
//     higher seq), but it may additionally carry a leading run of events at
//     timestamps < cur: dispatching a stale event (a dropped wake-up)
//     advances cur without advancing Env.now, so a fresh event scheduled at
//     now+delay can land behind cur and is sort-inserted ahead of the
//     at==cur entries.
type timingWheel struct {
	cur     uint64
	count   int
	due     []event
	dueHead int
	levels  [wheelLevels][wheelSlots][]event
	bitmap  [wheelLevels][wheelSlots / 64]uint64
	// spare recycles drained slot backing arrays to keep steady-state
	// scheduling allocation-free.
	spare [][]event
}

func newTimingWheel() *timingWheel { return &timingWheel{} }

func (w *timingWheel) name() string { return "wheel" }
func (w *timingWheel) pending() int { return w.count }

func (w *timingWheel) clear() {
	*w = timingWheel{}
}

func (w *timingWheel) setBit(level, idx int)   { w.bitmap[level][idx>>6] |= 1 << uint(idx&63) }
func (w *timingWheel) clearBit(level, idx int) { w.bitmap[level][idx>>6] &^= 1 << uint(idx&63) }

// lowestSet returns the lowest occupied slot index at level, if any.
func (w *timingWheel) lowestSet(level int) (int, bool) {
	for word, b := range w.bitmap[level] {
		if b != 0 {
			return word<<6 + bits.TrailingZeros64(b), true
		}
	}
	return 0, false
}

func (w *timingWheel) schedule(ev event) {
	at := uint64(ev.at)
	w.count++
	switch {
	case at == w.cur:
		w.due = append(w.due, ev)
	case at > w.cur:
		w.insert(at, ev)
	default:
		// at < cur: a stale dispatch moved the wheel past Env.now, and the
		// caller scheduled relative to Env.now. The event precedes everything
		// queued in the slots (all ≥ cur) but may interleave with earlier
		// behind-cursor events already in due — sort-insert to keep due in
		// (at, seq) order. seq is globally monotonic, so among equal
		// timestamps the new event goes last and comparing at alone suffices.
		// This path is cold (requires a drained stale tail), so the O(n)
		// insert into the tiny due list is irrelevant.
		i := w.dueHead
		for i < len(w.due) && uint64(w.due[i].at) <= at {
			i++
		}
		w.due = append(w.due, event{})
		copy(w.due[i+1:], w.due[i:])
		w.due[i] = ev
	}
}

// insert places ev into the slot owning timestamp at. The level is the
// highest byte in which at differs from cur — picking the level by the
// magnitude of the delta instead would be wrong: an event 2 ticks away can
// still cross a 256-block boundary and must wait at level 1 for the cascade
// that enters its block.
func (w *timingWheel) insert(at uint64, ev event) {
	level := (bits.Len64(at^w.cur) - 1) >> 3
	idx := int(at>>(8*uint(level))) & wheelMask
	slot := w.levels[level][idx]
	if slot == nil {
		if n := len(w.spare); n > 0 {
			slot = w.spare[n-1]
			w.spare = w.spare[:n-1]
		} else {
			slot = make([]event, 0, 8)
		}
	}
	if len(slot) == 0 {
		w.setBit(level, idx)
	}
	w.levels[level][idx] = append(slot, ev)
}

// recycle keeps a drained backing array for reuse. Slots are allocated with
// capacity ≥ 8, so in steady state every drained array is worth keeping and
// scheduling is allocation-free.
func (w *timingWheel) recycle(s []event) {
	if cap(s) >= 4 && len(w.spare) < 256 {
		for i := range s {
			s[i] = event{} // drop proc/closure references
		}
		w.spare = append(w.spare, s[:0])
	}
}

func (w *timingWheel) next(until Time) (event, bool) {
	u := uint64(until)
	for {
		if w.dueHead < len(w.due) {
			// Gate on the head event's own timestamp, not cur: a shorter
			// horizon than a previous run's must not release the at==cur
			// entries, while a behind-cursor event (see schedule) must fire
			// even when cur itself is beyond the horizon.
			if uint64(w.due[w.dueHead].at) > u {
				return event{}, false
			}
			ev := w.due[w.dueHead]
			w.due[w.dueHead] = event{}
			w.dueHead++
			if w.dueHead == len(w.due) {
				w.due = w.due[:0]
				w.dueHead = 0
			}
			w.count--
			return ev, true
		}
		if w.count == 0 {
			return event{}, false
		}
		if !w.advance(u) {
			return event{}, false
		}
	}
}

// advance moves cur to the next occupied position whose block start is ≤ u
// and promotes that slot's events (to due, or to lower levels). It returns
// false when every remaining event lies beyond u.
//
// The lowest occupied level is globally earliest: level-k events lie inside
// the current 256^(k+1) block but outside the current 256^k block, so any
// level-(k-1) event precedes every level-k event.
func (w *timingWheel) advance(u uint64) bool {
	for level := 0; level < wheelLevels; level++ {
		idx, ok := w.lowestSet(level)
		if !ok {
			continue
		}
		shift := 8 * uint(level)
		blockMask := uint64(1)<<(shift+8) - 1
		blockStart := w.cur&^blockMask | uint64(idx)<<shift
		if blockStart > u {
			return false
		}
		slot := w.levels[level][idx]
		w.levels[level][idx] = nil
		w.clearBit(level, idx)
		w.cur = blockStart
		if level == 0 {
			// A level-0 slot holds exactly timestamp blockStart: it becomes
			// the new due list wholesale (already seq-sorted). The old due
			// array has been fully consumed; recycle it.
			w.recycle(w.due)
			w.due = slot
			w.dueHead = 0
		} else {
			// Entering a 256^level block: distribute its events downward.
			// Lower levels are empty (they were scanned first), so each
			// child slot is filled in seq order.
			for _, ev := range slot {
				at := uint64(ev.at)
				if at == w.cur {
					w.due = append(w.due, ev)
				} else {
					w.insert(at, ev)
				}
			}
			w.recycle(slot)
		}
		return true
	}
	return false
}

// heapSched is the pre-refactor binary-heap scheduler, kept for the
// scheduler-equivalence tests (see SetDefaultScheduler).
type heapSched struct{ h eventHeap }

func (s *heapSched) name() string { return "heap" }
func (s *heapSched) pending() int { return len(s.h) }
func (s *heapSched) clear()       { s.h = nil }
func (s *heapSched) schedule(ev event) {
	s.h = append(s.h, ev)
	s.h.up(len(s.h) - 1)
}

func (s *heapSched) next(until Time) (event, bool) {
	if len(s.h) == 0 || s.h[0].at > until {
		return event{}, false
	}
	ev := s.h[0]
	n := len(s.h) - 1
	s.h[0] = s.h[n]
	s.h[n] = event{}
	s.h = s.h[:n]
	s.h.down(0)
	return ev, true
}
