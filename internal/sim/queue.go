package sim

// Queue is an unbounded FIFO used to pass values between processes and
// callbacks. Pushes never block; Pop blocks the calling process until a
// value is available. Pushing from callbacks is allowed.
type Queue[T any] struct {
	env   *Env
	items []T
	head  int
	sig   *Signal
}

// NewQueue returns an empty queue bound to e.
func NewQueue[T any](e *Env) *Queue[T] {
	return &Queue[T]{env: e, sig: NewSignal(e)}
}

// Len returns the number of queued values.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }

// Push appends v and wakes one blocked consumer.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	// Wake exactly one consumer (FIFO), not the whole herd: broadcasting
	// costs a scheduler round trip per parked consumer only for all but one
	// of them to find the queue empty and park again. The elected consumer's
	// wake can go stale when its timeout fires first in the same instant; it
	// then passes the baton (see PopTimeout), so a value is never stranded
	// behind a parked consumer.
	q.sig.Wake(1)
}

// TryPop removes and returns the oldest value, if any.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if q.Len() == 0 {
		return zero, false
	}
	v := q.items[q.head]
	q.items[q.head] = zero // release reference
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v, true
}

// Pop blocks p until a value is available and returns it.
func (q *Queue[T]) Pop(p *Proc) T {
	for {
		if v, ok := q.TryPop(); ok {
			return v
		}
		q.sig.Wait(p)
	}
}

// PopTimeout blocks p until a value is available or d elapses. ok reports
// whether a value was returned.
func (q *Queue[T]) PopTimeout(p *Proc, d Duration) (v T, ok bool) {
	deadline := q.env.now + d
	for {
		if v, ok := q.TryPop(); ok {
			return v, true
		}
		remain := deadline - q.env.now
		if remain <= 0 {
			var zero T
			return zero, false
		}
		if q.sig.WaitTimeout(p, remain) {
			// Timed out. A Push may have elected this consumer in the same
			// instant the timer fired first — the wake went stale against
			// this proc's new generation — so pass the baton to keep the
			// value from being stranded behind another parked consumer.
			if q.Len() > 0 {
				q.sig.Wake(1)
			}
			var zero T
			return zero, false
		}
	}
}

// Resource is a counting resource with FIFO admission, used to model CPU
// cores: a simulated thread acquires a unit, sleeps for its compute time,
// and releases the unit. While all units are busy, later acquirers queue.
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	sig      *Signal
	// queueLen tracks waiters for observability.
	queueLen int
	// BusyTime accumulates unit-nanoseconds of usage for utilization stats.
	BusyTime int64
	lastTick Time
}

// NewResource returns a resource with the given number of units.
func NewResource(e *Env, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{env: e, capacity: capacity, sig: NewSignal(e)}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Waiting returns the number of processes queued for a unit.
func (r *Resource) Waiting() int { return r.queueLen }

func (r *Resource) tick() {
	now := r.env.now
	r.BusyTime += int64(now-r.lastTick) * int64(r.inUse)
	r.lastTick = now
}

// Acquire blocks p until a unit is free and takes it.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.capacity {
		r.queueLen++
		r.sig.Wait(p)
		r.queueLen--
	}
	r.tick()
	r.inUse++
}

// Release returns a unit and wakes one waiter.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release without Acquire")
	}
	r.tick()
	r.inUse--
	r.sig.Wake(1)
}

// Use acquires a unit, sleeps for cost, and releases it. This is the
// standard way to charge CPU time on a core pool.
func (r *Resource) Use(p *Proc, cost Duration) {
	r.Acquire(p)
	p.Sleep(cost)
	r.Release()
}

// UseAsync charges cost unit-nanoseconds of busy time starting now without
// blocking the caller: a free unit is taken immediately and returned by a
// scheduler callback cost later, so no process wake-up is involved. Returns
// false — charging nothing — when every unit is busy OR any Acquire waiter
// is queued; callers must then fall back to the blocking Use so FIFO
// admission under contention is preserved. The waiter check matters: after a
// Release elects a waiter, the freed unit is spoken for until the waiter's
// resume event runs, and a callback grabbing it in that window would re-park
// the waiter and jump the queue.
func (r *Resource) UseAsync(cost Duration) bool {
	if cost <= 0 {
		return true
	}
	if r.inUse >= r.capacity || r.queueLen > 0 {
		return false
	}
	r.tick()
	r.inUse++
	r.env.At(cost, func() {
		r.tick()
		r.inUse--
		r.sig.Wake(1)
	})
	return true
}

// Utilization returns average busy units since the start of the simulation,
// as a fraction of capacity.
func (r *Resource) Utilization() float64 {
	r.tick()
	if r.env.now == 0 {
		return 0
	}
	return float64(r.BusyTime) / float64(int64(r.env.now)*int64(r.capacity))
}
