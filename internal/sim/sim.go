// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock measured in integer nanoseconds and
// executes two kinds of work:
//
//   - Processes (Proc): goroutines that model threads of execution (client
//     coroutines, server worker threads). A process runs exclusively — the
//     scheduler hands control to exactly one process at a time and waits for
//     it to block again — so process code needs no locking and the whole
//     simulation is deterministic for a given seed and configuration.
//
//   - Callbacks: plain functions scheduled with Env.At, executed inline by
//     the scheduler. These are the cheap event-driven path used by hardware
//     models (NIC engines, fabric links) where spawning a goroutine per
//     event would dominate runtime. Callbacks must not block.
//
// Determinism: events fire in (time, sequence) order; the sequence number is
// assigned at scheduling time, so two events scheduled for the same instant
// fire in the order they were created. The event queue is a hierarchical
// timing wheel (see wheel.go); the original binary heap is retained behind
// SetDefaultScheduler for the equivalence tests.
package sim

import (
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Convenient virtual-time units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000
	Millisecond Duration = 1000 * 1000
	Second      Duration = 1000 * 1000 * 1000
)

// maxTime is the sentinel horizon used by Run.
const maxTime Time = 1<<62 - 1

// killed is the sentinel panic value used to unwind blocked processes when
// the environment shuts down.
type killedPanic struct{}

// event is a single entry in the scheduler queue. Exactly one of proc and fn
// is set. Events targeting a process carry the wake generation they were
// scheduled against; if the process has been woken by a different source in
// the meantime the event is stale and is dropped.
type event struct {
	at   Time
	seq  uint64
	proc *Proc
	gen  uint64
	tag  int
	fn   func()
}

// eventHeap is the binary-heap event store behind heapSched. The sift
// routines are inlined here (rather than going through container/heap) so
// events are never boxed through interface{}; extraction order is identical
// because (at, seq) is a strict total order.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && h.less(r, l) {
			j = r
		}
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// defaultScheduler selects the queue implementation NewEnv builds.
var defaultScheduler = "wheel"

// SetDefaultScheduler selects the event-queue implementation used by
// subsequently created environments: "wheel" (the default hierarchical
// timing wheel) or "heap" (the pre-refactor binary heap, retained as a
// test-only shim for the scheduler-equivalence tests). It returns the
// previous setting so tests can restore it.
func SetDefaultScheduler(name string) string {
	switch name {
	case "wheel", "heap":
	default:
		panic("sim: unknown scheduler " + name)
	}
	prev := defaultScheduler
	defaultScheduler = name
	return prev
}

// Env is a simulation environment: a virtual clock plus an event queue.
// The zero value is not usable; create environments with NewEnv.
type Env struct {
	now     Time
	seq     uint64
	fired   uint64
	firedCB uint64
	firedPr [tagCount]uint64
	sched   scheduler
	yield   chan struct{}
	procs   map[*Proc]struct{}
	closed  bool
}

// NewEnv returns a fresh environment with the clock at zero.
func NewEnv() *Env {
	var s scheduler
	if defaultScheduler == "heap" {
		s = &heapSched{}
	} else {
		s = newTimingWheel()
	}
	return &Env{
		sched: s,
		yield: make(chan struct{}, 1),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// SchedulerName identifies the event-queue implementation backing this
// environment ("wheel" or "heap").
func (e *Env) SchedulerName() string { return e.sched.name() }

// At schedules fn to run after delay. fn executes inline in the scheduler
// and must not block; it may schedule further events, push to queues, wake
// signals and spawn processes.
func (e *Env) At(delay Duration, fn func()) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.seq++
	e.sched.schedule(event{at: e.now + delay, seq: e.seq, fn: fn})
}

// scheduleProc enqueues a wake-up for p at now+delay against its current
// wake generation, tagged so the process can tell which source woke it.
func (e *Env) scheduleProc(p *Proc, delay Duration, tag int) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.seq++
	e.sched.schedule(event{at: e.now + delay, seq: e.seq, proc: p, gen: p.gen, tag: tag})
}

// Proc is a simulated process. All methods that block (Sleep, Wait*) must be
// called only from the process's own goroutine.
type Proc struct {
	Name   string
	env    *Env
	resume chan int // carries the wake tag
	gen    uint64   // wake generation; bumping it cancels pending wake sources
	done   bool
	killed bool
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Spawn creates a process executing fn, scheduled to start immediately
// (at the current virtual time, after already-queued events for this
// instant).
func (e *Env) Spawn(name string, fn func(*Proc)) *Proc {
	return e.SpawnAt(0, name, fn)
}

// SpawnAt creates a process executing fn, scheduled to start after delay.
//
// The handshake channels are buffered (capacity 1): the protocol is a strict
// ping-pong — at most one resume token and one yield token are ever in
// flight — so buffering never reorders anything, but it lets each side hand
// off without a synchronous rendezvous, roughly halving the scheduler↔proc
// context switches.
func (e *Env) SpawnAt(delay Duration, name string, fn func(*Proc)) *Proc {
	if e.closed {
		panic("sim: Spawn on closed Env")
	}
	p := &Proc{Name: name, env: e, resume: make(chan int, 1)}
	e.procs[p] = struct{}{}
	go func() {
		defer func() {
			p.done = true
			delete(e.procs, p)
			if r := recover(); r != nil {
				if _, ok := r.(killedPanic); ok {
					e.yield <- struct{}{}
					return
				}
				// Re-panic in the scheduler's context would deadlock the
				// handshake; annotate and crash this goroutine instead.
				panic(fmt.Sprintf("sim: process %q panicked: %v", p.Name, r))
			}
			e.yield <- struct{}{}
		}()
		// Wait for the first schedule directly — without the yield half of
		// the handshake, which belongs to the scheduler's resume cycle.
		// (Spawn may be called from a running process; sending yield here
		// would race with the scheduler's pending receive for that
		// process.)
		<-p.resume
		if p.killed {
			panic(killedPanic{})
		}
		fn(p)
	}()
	e.scheduleProc(p, delay, tagStart)
	return p
}

// Wake tags reported to blocked processes.
const (
	tagStart = iota
	tagTimer
	tagSignal
	tagQueue
	tagResource
	tagCount
)

// block yields control to the scheduler and waits to be resumed, returning
// the tag of the wake source.
func (p *Proc) block() int {
	p.env.yield <- struct{}{}
	t := <-p.resume
	if p.killed {
		panic(killedPanic{})
	}
	return t
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	p.env.scheduleProc(p, d, tagTimer)
	p.block()
}

// Yield reschedules the process at the current instant, letting every other
// event already queued for this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Run processes events until the queue is empty, then returns the final
// clock value.
func (e *Env) Run() Time { return e.RunUntil(maxTime) }

// RunUntil processes events with timestamps ≤ until, then sets the clock to
// until (if it advanced that far) and returns it. Events beyond the horizon
// stay queued; RunUntil may be called repeatedly.
func (e *Env) RunUntil(until Time) Time {
	for {
		ev, ok := e.sched.next(until)
		if !ok {
			break
		}
		if ev.fn != nil {
			e.now = ev.at
			e.fired++
			e.firedCB++
			ev.fn()
			continue
		}
		p := ev.proc
		if p.done || ev.gen != p.gen {
			continue // stale wake-up
		}
		e.now = ev.at
		e.fired++
		e.firedPr[ev.tag]++
		p.gen++ // invalidate competing wake sources
		p.resume <- ev.tag
		<-e.yield
	}
	if e.now < until && until < maxTime {
		e.now = until
	}
	return e.now
}

// SchedulerName identifies the default event-queue implementation new
// environments will use.
func SchedulerName() string { return defaultScheduler }

// Fired returns the number of events dispatched so far (callbacks run plus
// process resumes; stale wake-ups that were dropped do not count). It is the
// denominator for wall-clock events/sec measurements.
func (e *Env) Fired() uint64 { return e.fired }

// FiredBreakdown returns the dispatched-event mix: callbacks and process
// resumes by wake source (start, timer, signal, queue, resource). The
// breakdown shows what a macro benchmark is actually paying for — process
// resumes cost a goroutine handshake, callbacks do not.
func (e *Env) FiredBreakdown() (callbacks uint64, procByTag [5]uint64) {
	copy(procByTag[:], e.firedPr[:])
	return e.firedCB, procByTag
}

// Idle reports whether no events remain.
func (e *Env) Idle() bool { return e.sched.pending() == 0 }

// Pending returns the number of queued events (including stale ones).
func (e *Env) Pending() int { return e.sched.pending() }

// Close terminates every live process so no goroutines leak. The
// environment must not be used afterwards.
func (e *Env) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for p := range e.procs {
		if p.done {
			continue
		}
		p.killed = true
		p.gen++
		p.resume <- 0
		<-e.yield
	}
	e.sched.clear()
}

// Signal is a broadcast/wake-one condition variable for processes. Waiters
// are woken in FIFO order at the current instant.
type Signal struct {
	env     *Env
	waiters []waiter
}

type waiter struct {
	proc *Proc
	gen  uint64
}

// NewSignal returns a signal bound to e.
func NewSignal(e *Env) *Signal { return &Signal{env: e} }

// Wait blocks the process until the signal is woken.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, waiter{p, p.gen})
	p.block()
}

// WaitTimeout blocks until the signal is woken or d elapses. It reports
// whether the wait timed out.
func (s *Signal) WaitTimeout(p *Proc, d Duration) (timedOut bool) {
	s.waiters = append(s.waiters, waiter{p, p.gen})
	p.env.scheduleProc(p, d, tagTimer)
	return p.block() == tagTimer
}

// Waiting returns the number of registered waiters (including stale ones).
func (s *Signal) Waiting() int { return len(s.waiters) }

// Wake resumes up to n waiting processes (all of them if n < 0). Waiters
// whose wake generation has moved on (e.g. they timed out) are skipped.
func (s *Signal) Wake(n int) int {
	woken := 0
	rest := s.waiters[:0]
	for i, w := range s.waiters {
		if n >= 0 && woken >= n {
			rest = append(rest, s.waiters[i:]...)
			break
		}
		if w.proc.done || w.proc.gen != w.gen {
			continue // stale waiter
		}
		s.env.seq++
		s.env.sched.schedule(event{at: s.env.now, seq: s.env.seq, proc: w.proc, gen: w.gen, tag: tagSignal})
		woken++
	}
	s.waiters = rest
	return woken
}

// Broadcast wakes every waiter.
func (s *Signal) Broadcast() { s.Wake(-1) }
