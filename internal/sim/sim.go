// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock measured in integer nanoseconds and
// executes two kinds of work:
//
//   - Processes (Proc): goroutines that model threads of execution (client
//     coroutines, server worker threads). A process runs exclusively — the
//     scheduler hands control to exactly one process at a time and waits for
//     it to block again — so process code needs no locking and the whole
//     simulation is deterministic for a given seed and configuration.
//
//   - Callbacks: plain functions scheduled with Env.At, executed inline by
//     the scheduler. These are the cheap event-driven path used by hardware
//     models (NIC engines, fabric links) where spawning a goroutine per
//     event would dominate runtime. Callbacks must not block.
//
// Determinism: events fire in (time, sequence) order; the sequence number is
// assigned at scheduling time, so two events scheduled for the same instant
// fire in the order they were created.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Convenient virtual-time units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000
	Millisecond Duration = 1000 * 1000
	Second      Duration = 1000 * 1000 * 1000
)

// killed is the sentinel panic value used to unwind blocked processes when
// the environment shuts down.
type killedPanic struct{}

// event is a single entry in the scheduler heap. Exactly one of proc and fn
// is set. Events targeting a process carry the wake generation they were
// scheduled against; if the process has been woken by a different source in
// the meantime the event is stale and is dropped.
type event struct {
	at   Time
	seq  uint64
	proc *Proc
	gen  uint64
	tag  int
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Env is a simulation environment: a virtual clock plus an event queue.
// The zero value is not usable; create environments with NewEnv.
type Env struct {
	now    Time
	seq    uint64
	events eventHeap
	yield  chan struct{}
	procs  map[*Proc]struct{}
	closed bool
}

// NewEnv returns a fresh environment with the clock at zero.
func NewEnv() *Env {
	return &Env{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// At schedules fn to run after delay. fn executes inline in the scheduler
// and must not block; it may schedule further events, push to queues, wake
// signals and spawn processes.
func (e *Env) At(delay Duration, fn func()) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.seq++
	heap.Push(&e.events, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// scheduleProc enqueues a wake-up for p at now+delay against its current
// wake generation, tagged so the process can tell which source woke it.
func (e *Env) scheduleProc(p *Proc, delay Duration, tag int) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.seq++
	heap.Push(&e.events, event{at: e.now + delay, seq: e.seq, proc: p, gen: p.gen, tag: tag})
}

// Proc is a simulated process. All methods that block (Sleep, Wait*) must be
// called only from the process's own goroutine.
type Proc struct {
	Name   string
	env    *Env
	resume chan int // carries the wake tag
	gen    uint64   // wake generation; bumping it cancels pending wake sources
	done   bool
	killed bool
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Spawn creates a process executing fn, scheduled to start immediately
// (at the current virtual time, after already-queued events for this
// instant).
func (e *Env) Spawn(name string, fn func(*Proc)) *Proc {
	return e.SpawnAt(0, name, fn)
}

// SpawnAt creates a process executing fn, scheduled to start after delay.
func (e *Env) SpawnAt(delay Duration, name string, fn func(*Proc)) *Proc {
	if e.closed {
		panic("sim: Spawn on closed Env")
	}
	p := &Proc{Name: name, env: e, resume: make(chan int)}
	e.procs[p] = struct{}{}
	go func() {
		defer func() {
			p.done = true
			delete(e.procs, p)
			if r := recover(); r != nil {
				if _, ok := r.(killedPanic); ok {
					e.yield <- struct{}{}
					return
				}
				// Re-panic in the scheduler's context would deadlock the
				// handshake; annotate and crash this goroutine instead.
				panic(fmt.Sprintf("sim: process %q panicked: %v", p.Name, r))
			}
			e.yield <- struct{}{}
		}()
		// Wait for the first schedule directly — without the yield half of
		// the handshake, which belongs to the scheduler's resume cycle.
		// (Spawn may be called from a running process; sending yield here
		// would race with the scheduler's pending receive for that
		// process.)
		<-p.resume
		if p.killed {
			panic(killedPanic{})
		}
		fn(p)
	}()
	e.scheduleProc(p, delay, tagStart)
	return p
}

// Wake tags reported to blocked processes.
const (
	tagStart = iota
	tagTimer
	tagSignal
	tagQueue
	tagResource
)

// block yields control to the scheduler and waits to be resumed, returning
// the tag of the wake source.
func (p *Proc) block() int {
	p.env.yield <- struct{}{}
	t := <-p.resume
	if p.killed {
		panic(killedPanic{})
	}
	return t
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	p.env.scheduleProc(p, d, tagTimer)
	p.block()
}

// Yield reschedules the process at the current instant, letting every other
// event already queued for this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Run processes events until the queue is empty, then returns the final
// clock value.
func (e *Env) Run() Time { return e.RunUntil(1<<62 - 1) }

// RunUntil processes events with timestamps ≤ until, then sets the clock to
// until (if it advanced that far) and returns it. Events beyond the horizon
// stay queued; RunUntil may be called repeatedly.
func (e *Env) RunUntil(until Time) Time {
	for e.events.Len() > 0 {
		ev := e.events[0]
		if ev.at > until {
			if e.now < until {
				e.now = until
			}
			return e.now
		}
		heap.Pop(&e.events)
		if ev.fn != nil {
			e.now = ev.at
			ev.fn()
			continue
		}
		p := ev.proc
		if p.done || ev.gen != p.gen {
			continue // stale wake-up
		}
		e.now = ev.at
		p.gen++ // invalidate competing wake sources
		p.resume <- ev.tag
		<-e.yield
	}
	if e.now < until && until < 1<<62-1 {
		e.now = until
	}
	return e.now
}

// Idle reports whether no events remain.
func (e *Env) Idle() bool { return e.events.Len() == 0 }

// Pending returns the number of queued events (including stale ones).
func (e *Env) Pending() int { return e.events.Len() }

// Close terminates every live process so no goroutines leak. The
// environment must not be used afterwards.
func (e *Env) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for p := range e.procs {
		if p.done {
			continue
		}
		p.killed = true
		p.gen++
		p.resume <- 0
		<-e.yield
	}
	e.events = nil
}

// Signal is a broadcast/wake-one condition variable for processes. Waiters
// are woken in FIFO order at the current instant.
type Signal struct {
	env     *Env
	waiters []waiter
}

type waiter struct {
	proc *Proc
	gen  uint64
}

// NewSignal returns a signal bound to e.
func NewSignal(e *Env) *Signal { return &Signal{env: e} }

// Wait blocks the process until the signal is woken.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, waiter{p, p.gen})
	p.block()
}

// WaitTimeout blocks until the signal is woken or d elapses. It reports
// whether the wait timed out.
func (s *Signal) WaitTimeout(p *Proc, d Duration) (timedOut bool) {
	s.waiters = append(s.waiters, waiter{p, p.gen})
	p.env.scheduleProc(p, d, tagTimer)
	return p.block() == tagTimer
}

// Wake resumes up to n waiting processes (all of them if n < 0). Waiters
// whose wake generation has moved on (e.g. they timed out) are skipped.
func (s *Signal) Wake(n int) int {
	woken := 0
	rest := s.waiters[:0]
	for i, w := range s.waiters {
		if n >= 0 && woken >= n {
			rest = append(rest, s.waiters[i:]...)
			break
		}
		if w.proc.done || w.proc.gen != w.gen {
			continue // stale waiter
		}
		s.env.seq++
		heap.Push(&s.env.events, event{at: s.env.now, seq: s.env.seq, proc: w.proc, gen: w.gen, tag: tagSignal})
		woken++
	}
	s.waiters = rest
	return woken
}

// Broadcast wakes every waiter.
func (s *Signal) Broadcast() { s.Wake(-1) }
