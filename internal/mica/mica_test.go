package mica

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
)

func newStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	c := cluster.New(cluster.Default(1))
	t.Cleanup(c.Close)
	return New(c.Hosts[0], cfg)
}

func small(t *testing.T) *Store {
	return newStore(t, Config{Buckets: 1 << 10, Items: 4096, SlotSize: 128})
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestPutGetRoundTrip(t *testing.T) {
	s := small(t)
	for i := 0; i < 100; i++ {
		if _, err := s.Put(nil, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		it, err := s.Get(nil, key(i))
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if !bytes.Equal(it.Value, val(i)) {
			t.Fatalf("value = %q", it.Value)
		}
		if it.Version != 1 {
			t.Fatalf("fresh item version = %d", it.Version)
		}
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestGetMissing(t *testing.T) {
	s := small(t)
	if _, err := s.Get(nil, []byte("nope")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestUpdateBumpsVersion(t *testing.T) {
	s := small(t)
	s.Put(nil, key(1), val(1))
	s.Put(nil, key(1), []byte("updated"))
	it, _ := s.Get(nil, key(1))
	if string(it.Value) != "updated" || it.Version != 2 {
		t.Fatalf("item = %q v%d", it.Value, it.Version)
	}
	if s.Len() != 1 {
		t.Fatalf("update must not consume a slot: Len = %d", s.Len())
	}
}

func TestDelete(t *testing.T) {
	s := small(t)
	s.Put(nil, key(1), val(1))
	if err := s.Delete(nil, key(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(nil, key(1)); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key still found")
	}
	// Slot recycled.
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestLockConflict(t *testing.T) {
	s := small(t)
	s.Put(nil, key(1), val(1))
	if _, err := s.TryLock(nil, key(1), 100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.TryLock(nil, key(1), 200); !errors.Is(err, ErrLocked) {
		t.Fatalf("conflicting lock: err = %v", err)
	}
	// Re-entrant for the same owner.
	if _, err := s.TryLock(nil, key(1), 100); err != nil {
		t.Fatalf("re-lock by owner: %v", err)
	}
	if err := s.Unlock(nil, key(1), 200); !errors.Is(err, ErrLocked) {
		t.Fatal("unlock by non-owner must fail")
	}
	if err := s.Unlock(nil, key(1), 100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.TryLock(nil, key(1), 200); err != nil {
		t.Fatalf("lock after unlock: %v", err)
	}
}

func TestCommitWrite(t *testing.T) {
	s := small(t)
	s.Put(nil, key(1), val(1))
	it, _ := s.TryLock(nil, key(1), 7)
	if err := s.CommitWrite(nil, key(1), []byte("committed"), 7); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(nil, key(1))
	if string(got.Value) != "committed" {
		t.Fatalf("value = %q", got.Value)
	}
	if got.Version != it.Version+1 {
		t.Fatalf("version = %d, want %d", got.Version, it.Version+1)
	}
	// Lock released.
	if _, err := s.TryLock(nil, key(1), 9); err != nil {
		t.Fatalf("lock after commit: %v", err)
	}
}

func TestCommitImageMatchesLocalCommit(t *testing.T) {
	// The one-sided commit (BuildCommitImage RDMA-written over the slot)
	// must leave the slot byte-identical to the RPC commit path.
	s := small(t)
	s.Put(nil, key(1), val(1))
	it, _ := s.TryLock(nil, key(1), 7)

	// One-sided image, applied by hand to a copy of the slot.
	img := make([]byte, 128)
	n := BuildCommitImage(img, key(1), []byte("newvalue"), it.Version+1)
	slot := s.itemBytes(it.Slot)
	oneSided := append([]byte(nil), slot...)
	copy(oneSided[:n], img[:n])

	// RPC path on the real slot.
	if err := s.CommitWrite(nil, key(1), []byte("newvalue"), 7); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oneSided, slot) {
		t.Fatal("one-sided commit image diverges from RPC commit")
	}
}

func TestItemAddressesExposeFields(t *testing.T) {
	s := small(t)
	it, _ := s.Put(nil, key(3), []byte("abcdef"))
	reg := s.Region()
	// Version field via address arithmetic.
	off := it.VersionAddr() - reg.Base
	if binary.LittleEndian.Uint64(reg.Bytes()[off:]) != it.Version {
		t.Fatal("VersionAddr does not point at the version")
	}
	voff := it.ValueAddr() - reg.Base
	if string(reg.Bytes()[voff:voff+6]) != "abcdef" {
		t.Fatal("ValueAddr does not point at the value")
	}
}

func TestStoreFull(t *testing.T) {
	s := newStore(t, Config{Buckets: 64, Items: 16, SlotSize: 128})
	var err error
	for i := 0; i < 64; i++ {
		if _, err = s.Put(nil, key(i), val(i)); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
}

func TestValueTooBig(t *testing.T) {
	s := small(t)
	if _, err := s.Put(nil, key(1), make([]byte, 200)); !errors.Is(err, ErrTooBig) {
		t.Fatalf("err = %v", err)
	}
}

func TestPropertyPutGetAny(t *testing.T) {
	s := newStore(t, Config{Buckets: 1 << 12, Items: 1 << 14, SlotSize: 256})
	err := quick.Check(func(k, v []byte) bool {
		if len(k) == 0 || len(k) > 64 {
			return true
		}
		if len(v) > 128 {
			v = v[:128]
		}
		if _, err := s.Put(nil, k, v); err != nil {
			// Bucket overflow is legal behaviour, not a correctness bug.
			return errors.Is(err, ErrFull)
		}
		it, err := s.Get(nil, k)
		return err == nil && bytes.Equal(it.Value, v)
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChargesCPUWhenThreadGiven(t *testing.T) {
	c := cluster.New(cluster.Default(1))
	defer c.Close()
	s := New(c.Hosts[0], Config{Buckets: 1 << 10, Items: 1024, SlotSize: 128})
	for i := 0; i < 100; i++ {
		s.Put(nil, key(i), val(i))
	}
	c.Hosts[0].Spawn("kv", func(th *host.Thread) {
		for i := 0; i < 100; i++ {
			if _, err := s.Get(th, key(i)); err != nil {
				t.Errorf("Get: %v", err)
			}
		}
	})
	end := c.Env.Run()
	// 100 lookups touching buckets and items through the LLC model must
	// consume simulated time; cold misses make it at least ~100ns each.
	if end < 5000 {
		t.Fatalf("100 charged gets took only %d ns", end)
	}
}
