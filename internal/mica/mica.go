// Package mica implements an in-memory hash-table key-value store with the
// same layout as MICA (Lim et al., NSDI'14), as used by the paper's ScaleTX
// storage servers (§4.2): bucketized hash index over fixed-size item slots,
// each item carrying a co-located lock word and version number.
//
// The whole store lives inside a single registered memory region, so
// remote coordinators can operate on items with one-sided verbs:
//
//	item+0:  lock    (8 B)  — zeroed by the commit-time RDMA write
//	item+8:  version (8 B)  — RDMA-read during validation
//	item+16: keyLen  (4 B) | valLen (4 B)
//	item+24: key bytes, then value bytes
//
// All methods take an optional *host.Thread; when non-nil, index and item
// accesses are charged through the host's LLC model (pass nil during bulk
// preload).
package mica

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"scalerpc/internal/host"
	"scalerpc/internal/memory"
)

// Item field offsets within a slot.
const (
	OffLock    = 0
	OffVersion = 8
	OffLens    = 16
	OffKey     = 24
)

const slotsPerBucket = 8

// probeDepth is how many consecutive buckets an item may be displaced
// into when its home bucket is full (linear probing keeps the index dense
// without MICA's lossy eviction).
const probeDepth = 4

// Errors returned by store operations.
var (
	ErrNotFound = errors.New("mica: key not found")
	ErrLocked   = errors.New("mica: item locked by another transaction")
	ErrFull     = errors.New("mica: store full")
	ErrTooBig   = errors.New("mica: key/value exceeds slot size")
)

// Config sizes a store.
type Config struct {
	Buckets  int // hash buckets (rounded down to a power of two)
	Items    int // item slot capacity
	SlotSize int // bytes per item slot (header + key + value)
}

// DefaultConfig holds 2 M items of ≤ 104 payload bytes.
func DefaultConfig() Config {
	return Config{Buckets: 1 << 18, Items: 2 << 20, SlotSize: 128}
}

// bucketEntry is one index slot: a 16-bit tag plus the item slot number
// (+1; 0 = empty), packed in 8 bytes.
const bucketEntrySize = 8

// Store is a MICA-layout KV store inside a registered region.
type Store struct {
	cfg     Config
	reg     *memory.Region
	buckets uint64 // power of two
	// Layout offsets within the region.
	indexOff uint64
	itemsOff uint64
	freeList []uint32
	// Counters.
	Gets, Puts, Hits uint64
}

// New allocates and formats a store on host h.
func New(h *host.Host, cfg Config) *Store {
	b := uint64(cfg.Buckets)
	for b&(b-1) != 0 {
		b &= b - 1
	}
	if b == 0 {
		b = 1
	}
	indexBytes := b * slotsPerBucket * bucketEntrySize
	total := int(indexBytes) + cfg.Items*cfg.SlotSize
	reg := h.Mem.Register(total, memory.PageSize2M,
		memory.LocalWrite|memory.RemoteRead|memory.RemoteWrite|memory.RemoteAtomic)
	s := &Store{
		cfg:      cfg,
		reg:      reg,
		buckets:  b,
		indexOff: 0,
		itemsOff: indexBytes,
	}
	s.freeList = make([]uint32, 0, cfg.Items)
	for i := cfg.Items - 1; i >= 0; i-- {
		s.freeList = append(s.freeList, uint32(i))
	}
	return s
}

// Region returns the backing registered region (for rkey exchange).
func (s *Store) Region() *memory.Region { return s.reg }

// MaxValueLen returns the largest value the slot size allows for keys of
// the given length.
func (s *Store) MaxValueLen(keyLen int) int { return s.cfg.SlotSize - OffKey - keyLen }

func hash64(key []byte) uint64 {
	// FNV-1a.
	h := uint64(14695981039346656037)
	for _, c := range key {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// itemAddr returns the virtual address of item slot i.
func (s *Store) itemAddr(i uint32) uint64 {
	return s.reg.Base + s.itemsOff + uint64(i)*uint64(s.cfg.SlotSize)
}

// ItemAddr exposes slot addressing for tests.
func (s *Store) ItemAddr(i uint32) uint64 { return s.itemAddr(i) }

func (s *Store) itemBytes(i uint32) []byte {
	off := s.itemsOff + uint64(i)*uint64(s.cfg.SlotSize)
	return s.reg.Bytes()[off : off+uint64(s.cfg.SlotSize)]
}

func (s *Store) bucketBytes(b uint64) []byte {
	off := s.indexOff + b*slotsPerBucket*bucketEntrySize
	return s.reg.Bytes()[off : off+slotsPerBucket*bucketEntrySize]
}

func (s *Store) bucketAddr(b uint64) uint64 {
	return s.reg.Base + s.indexOff + b*slotsPerBucket*bucketEntrySize
}

// charge models a CPU access when t is non-nil.
func charge(t *host.Thread, addr uint64, size int, write bool) {
	if t == nil {
		return
	}
	if write {
		t.WriteMem(addr, size)
	} else {
		t.ReadMem(addr, size)
	}
}

// lookup finds the item slot holding key, probing up to probeDepth
// consecutive buckets, returning (bucket, entry index, slot, true) on hit.
func (s *Store) lookup(t *host.Thread, key []byte) (uint64, int, uint32, bool) {
	h := hash64(key)
	home := h & (s.buckets - 1)
	tag := uint16(h >> 48)
	for p := uint64(0); p < probeDepth; p++ {
		b := (home + p) & (s.buckets - 1)
		bb := s.bucketBytes(b)
		charge(t, s.bucketAddr(b), slotsPerBucket*bucketEntrySize, false)
		for e := 0; e < slotsPerBucket; e++ {
			ent := binary.LittleEndian.Uint64(bb[e*bucketEntrySize:])
			if ent == 0 {
				continue
			}
			if uint16(ent>>48) != tag {
				continue
			}
			slot := uint32(ent) - 1
			item := s.itemBytes(slot)
			keyLen := int(binary.LittleEndian.Uint32(item[OffLens:]))
			charge(t, s.itemAddr(slot), OffKey+keyLen, false)
			if keyLen == len(key) && bytes.Equal(item[OffKey:OffKey+keyLen], key) {
				return b, e, slot, true
			}
		}
	}
	return home, -1, 0, false
}

// Item is the result of a Get/Lock: the slot's address exposes the lock,
// version and value to one-sided verbs.
type Item struct {
	Slot    uint32
	Addr    uint64 // virtual address of the slot (lock word)
	Version uint64
	Value   []byte // aliases store memory; copy to retain
	KeyLen  int
}

// VersionAddr returns the address of the co-located version number.
func (it Item) VersionAddr() uint64 { return it.Addr + OffVersion }

// ValueAddr returns the address of the value bytes.
func (it Item) ValueAddr() uint64 { return it.Addr + OffKey + uint64(it.KeyLen) }

// Get returns the item for key.
func (s *Store) Get(t *host.Thread, key []byte) (Item, error) {
	s.Gets++
	_, _, slot, ok := s.lookup(t, key)
	if !ok {
		return Item{}, ErrNotFound
	}
	s.Hits++
	return s.itemView(t, slot), nil
}

func (s *Store) itemView(t *host.Thread, slot uint32) Item {
	item := s.itemBytes(slot)
	keyLen := int(binary.LittleEndian.Uint32(item[OffLens:]))
	valLen := int(binary.LittleEndian.Uint32(item[OffLens+4:]))
	charge(t, s.itemAddr(slot), OffKey+keyLen+valLen, false)
	return Item{
		Slot:    slot,
		Addr:    s.itemAddr(slot),
		Version: binary.LittleEndian.Uint64(item[OffVersion:]),
		Value:   item[OffKey+keyLen : OffKey+keyLen+valLen],
		KeyLen:  keyLen,
	}
}

// Put inserts or updates key (unversioned fast path for loading and for
// non-transactional use). It bumps the version on update.
func (s *Store) Put(t *host.Thread, key, value []byte) (Item, error) {
	s.Puts++
	if OffKey+len(key)+len(value) > s.cfg.SlotSize {
		return Item{}, fmt.Errorf("%w: %d+%d", ErrTooBig, len(key), len(value))
	}
	b, _, slot, ok := s.lookup(t, key)
	if ok {
		item := s.itemBytes(slot)
		binary.LittleEndian.PutUint64(item[OffVersion:], binary.LittleEndian.Uint64(item[OffVersion:])+1)
		binary.LittleEndian.PutUint32(item[OffLens+4:], uint32(len(value)))
		copy(item[OffKey+len(key):], value)
		charge(t, s.itemAddr(slot), OffKey+len(key)+len(value), true)
		return s.itemView(nil, slot), nil
	}
	// Insert: grab a free slot and an empty entry in the home bucket or,
	// if it is full, in one of the probe buckets.
	if len(s.freeList) == 0 {
		return Item{}, ErrFull
	}
	entry := -1
	var bb []byte
	for p := uint64(0); p < probeDepth && entry < 0; p++ {
		cand := (b + p) & (s.buckets - 1)
		cb := s.bucketBytes(cand)
		for e := 0; e < slotsPerBucket; e++ {
			if binary.LittleEndian.Uint64(cb[e*bucketEntrySize:]) == 0 {
				entry = e
				b = cand
				bb = cb
				break
			}
		}
	}
	if entry < 0 {
		return Item{}, fmt.Errorf("%w: bucket overflow", ErrFull)
	}
	slot = s.freeList[len(s.freeList)-1]
	s.freeList = s.freeList[:len(s.freeList)-1]
	item := s.itemBytes(slot)
	for i := range item[:OffKey] {
		item[i] = 0
	}
	binary.LittleEndian.PutUint32(item[OffLens:], uint32(len(key)))
	binary.LittleEndian.PutUint32(item[OffLens+4:], uint32(len(value)))
	copy(item[OffKey:], key)
	copy(item[OffKey+len(key):], value)
	binary.LittleEndian.PutUint64(item[OffVersion:], 1)
	tag := hash64(key) >> 48
	binary.LittleEndian.PutUint64(bb[entry*bucketEntrySize:], tag<<48|uint64(slot+1))
	charge(t, s.itemAddr(slot), OffKey+len(key)+len(value), true)
	charge(t, s.bucketAddr(b)+uint64(entry*bucketEntrySize), bucketEntrySize, true)
	return s.itemView(nil, slot), nil
}

// Delete removes key.
func (s *Store) Delete(t *host.Thread, key []byte) error {
	b, e, slot, ok := s.lookup(t, key)
	if !ok {
		return ErrNotFound
	}
	bb := s.bucketBytes(b)
	binary.LittleEndian.PutUint64(bb[e*bucketEntrySize:], 0)
	charge(t, s.bucketAddr(b)+uint64(e*bucketEntrySize), bucketEntrySize, true)
	s.freeList = append(s.freeList, slot)
	return nil
}

// TryLock locks the item for transaction owner (nonzero). It fails with
// ErrLocked if another owner holds it.
func (s *Store) TryLock(t *host.Thread, key []byte, owner uint64) (Item, error) {
	if owner == 0 {
		panic("mica: zero lock owner")
	}
	_, _, slot, ok := s.lookup(t, key)
	if !ok {
		return Item{}, ErrNotFound
	}
	item := s.itemBytes(slot)
	cur := binary.LittleEndian.Uint64(item[OffLock:])
	if cur != 0 && cur != owner {
		return Item{}, ErrLocked
	}
	binary.LittleEndian.PutUint64(item[OffLock:], owner)
	charge(t, s.itemAddr(slot), 8, true)
	return s.itemView(t, slot), nil
}

// Unlock releases the item if owner holds it.
func (s *Store) Unlock(t *host.Thread, key []byte, owner uint64) error {
	_, _, slot, ok := s.lookup(t, key)
	if !ok {
		return ErrNotFound
	}
	item := s.itemBytes(slot)
	if binary.LittleEndian.Uint64(item[OffLock:]) != owner {
		return ErrLocked
	}
	binary.LittleEndian.PutUint64(item[OffLock:], 0)
	charge(t, s.itemAddr(slot), 8, true)
	return nil
}

// CommitWrite applies a transactional update locally (the RPC commit path
// of ScaleTX-O): new value, version+1, lock released.
func (s *Store) CommitWrite(t *host.Thread, key, value []byte, owner uint64) error {
	_, _, slot, ok := s.lookup(t, key)
	if !ok {
		return ErrNotFound
	}
	item := s.itemBytes(slot)
	if binary.LittleEndian.Uint64(item[OffLock:]) != owner {
		return ErrLocked
	}
	keyLen := int(binary.LittleEndian.Uint32(item[OffLens:]))
	if OffKey+keyLen+len(value) > s.cfg.SlotSize {
		return ErrTooBig
	}
	binary.LittleEndian.PutUint64(item[OffVersion:], binary.LittleEndian.Uint64(item[OffVersion:])+1)
	binary.LittleEndian.PutUint32(item[OffLens+4:], uint32(len(value)))
	copy(item[OffKey+keyLen:], value)
	binary.LittleEndian.PutUint64(item[OffLock:], 0)
	charge(t, s.itemAddr(slot), OffKey+keyLen+len(value), true)
	return nil
}

// BuildCommitImage assembles, in buf, the full slot image a ScaleTX
// coordinator RDMA-writes at commit: lock=0, version=newVersion, lengths,
// key, new value. Returns the number of bytes to write (from slot offset 0).
func BuildCommitImage(buf []byte, key, value []byte, newVersion uint64) int {
	n := OffKey + len(key) + len(value)
	for i := range buf[:OffKey] {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint64(buf[OffLock:], 0)
	binary.LittleEndian.PutUint64(buf[OffVersion:], newVersion)
	binary.LittleEndian.PutUint32(buf[OffLens:], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[OffLens+4:], uint32(len(value)))
	copy(buf[OffKey:], key)
	copy(buf[OffKey+len(key):], value)
	return n
}

// ParseVersion reads a version number from an 8-byte RDMA-read result.
func ParseVersion(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// Len returns the number of live items.
func (s *Store) Len() int { return s.cfg.Items - len(s.freeList) }
