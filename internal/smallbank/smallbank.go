// Package smallbank implements the SmallBank OLTP benchmark (Alomari et
// al., ICDE'08) as the paper runs it (§4.2.1, Figure 16(b)): each account
// has a savings and a checking row, the transaction mix is 85%
// update-heavy, and 60% of transactions touch a 4% hot set of accounts.
package smallbank

import (
	"encoding/binary"
	"fmt"

	"scalerpc/internal/stats"
	"scalerpc/internal/txn"
)

// Config shapes the benchmark.
type Config struct {
	Accounts       int
	InitialBalance int64
	// HotFraction of accounts receive HotProbability of the accesses
	// (paper: 4% of accounts, 60% of transactions).
	HotFraction    float64
	HotProbability float64
}

// DefaultConfig matches the paper: 1,000,000 accounts per server, 4%/60%
// hotspot. (Callers typically scale Accounts by the participant count.)
func DefaultConfig() Config {
	return Config{
		Accounts:       1_000_000,
		InitialBalance: 10_000,
		HotFraction:    0.04,
		HotProbability: 0.60,
	}
}

// TxnType enumerates the six SmallBank transactions.
type TxnType int

// SmallBank transaction types.
const (
	Amalgamate TxnType = iota
	Balance
	DepositChecking
	SendPayment
	TransactSavings
	WriteCheck
	numTypes
)

func (t TxnType) String() string {
	return [...]string{"Amalgamate", "Balance", "DepositChecking", "SendPayment", "TransactSavings", "WriteCheck"}[t]
}

// Mix is the standard distribution: Balance (the only read-only type) 15%,
// updates 85%.
var Mix = [numTypes]int{15, 15, 15, 25, 15, 15}

// SavingsKey and CheckingKey name an account's two rows.
func SavingsKey(acct int) []byte  { return []byte(fmt.Sprintf("sv%08d", acct)) }
func CheckingKey(acct int) []byte { return []byte(fmt.Sprintf("ck%08d", acct)) }

func money(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func amount(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

// Amount decodes a row value to its balance (for TotalBalanceWith callers).
func Amount(b []byte) int64 { return amount(b) }

// LoadWith inserts all account rows through put — the caller decides
// placement (and replication: a sharded deployment's put writes both the
// primary and the backup replica).
func LoadWith(cfg Config, put func(key, value []byte) error) error {
	for a := 0; a < cfg.Accounts; a++ {
		for _, k := range [][]byte{SavingsKey(a), CheckingKey(a)} {
			if err := put(k, money(cfg.InitialBalance)); err != nil {
				return fmt.Errorf("smallbank: load account %d: %w", a, err)
			}
		}
	}
	return nil
}

// Load inserts all account rows into their owning participants using the
// shared ShardKey placement.
func Load(parts []*txn.Participant, cfg Config) error {
	return LoadWith(cfg, func(k, v []byte) error {
		p := parts[txn.ShardKey(k, len(parts))]
		_, err := p.Store.Put(nil, k, v)
		return err
	})
}

// TotalBalanceWith sums every row through get (the conservation invariant
// checked by tests; deposits change it, payments must not).
func TotalBalanceWith(cfg Config, get func(key []byte) int64) int64 {
	var sum int64
	for a := 0; a < cfg.Accounts; a++ {
		for _, k := range [][]byte{SavingsKey(a), CheckingKey(a)} {
			sum += get(k)
		}
	}
	return sum
}

// TotalBalance sums every row across participants placed by ShardKey.
func TotalBalance(parts []*txn.Participant, cfg Config) int64 {
	return TotalBalanceWith(cfg, func(k []byte) int64 {
		p := parts[txn.ShardKey(k, len(parts))]
		it, err := p.Store.Get(nil, k)
		if err != nil {
			panic(err)
		}
		return amount(it.Value)
	})
}

// Gen produces SmallBank transactions.
type Gen struct {
	cfg  Config
	rng  *stats.RNG
	hotN int
	// OnlyPayments restricts the mix to SendPayment (used by invariant
	// tests).
	OnlyPayments bool
	// Counts tallies generated transactions by type.
	Counts [numTypes]uint64
}

// NewGen returns a generator with its own random stream.
func NewGen(cfg Config, seed uint64) *Gen {
	hotN := int(float64(cfg.Accounts) * cfg.HotFraction)
	if hotN < 1 {
		hotN = 1
	}
	return &Gen{cfg: cfg, rng: stats.NewRNG(seed), hotN: hotN}
}

// pickAccount draws from the hot set with HotProbability.
func (g *Gen) pickAccount() int {
	if g.rng.Float64() < g.cfg.HotProbability {
		return g.rng.Intn(g.hotN)
	}
	return g.rng.Intn(g.cfg.Accounts)
}

// pickTwo draws two distinct accounts.
func (g *Gen) pickTwo() (int, int) {
	a := g.pickAccount()
	b := g.pickAccount()
	for b == a {
		b = g.pickAccount()
	}
	return a, b
}

func (g *Gen) pickType() TxnType {
	if g.OnlyPayments {
		return SendPayment
	}
	r := g.rng.Intn(100)
	cum := 0
	for t := TxnType(0); t < numTypes; t++ {
		cum += Mix[t]
		if r < cum {
			return t
		}
	}
	return WriteCheck
}

// Next builds one transaction.
func (g *Gen) Next() *txn.Txn {
	typ := g.pickType()
	g.Counts[typ]++
	switch typ {
	case Amalgamate:
		a, b := g.pickTwo()
		// Move everything from a (both rows) into b's checking.
		return &txn.Txn{
			Writes: [][]byte{SavingsKey(a), CheckingKey(a), CheckingKey(b)},
			Apply: func(rv, wv [][]byte) [][]byte {
				total := amount(wv[0]) + amount(wv[1])
				return [][]byte{money(0), money(0), money(amount(wv[2]) + total)}
			},
		}
	case Balance:
		a := g.pickAccount()
		return &txn.Txn{Reads: [][]byte{SavingsKey(a), CheckingKey(a)}}
	case DepositChecking:
		a := g.pickAccount()
		return &txn.Txn{
			Writes: [][]byte{CheckingKey(a)},
			Apply: func(rv, wv [][]byte) [][]byte {
				return [][]byte{money(amount(wv[0]) + 130)}
			},
		}
	case SendPayment:
		a, b := g.pickTwo()
		return &txn.Txn{
			Writes: [][]byte{CheckingKey(a), CheckingKey(b)},
			Apply: func(rv, wv [][]byte) [][]byte {
				return [][]byte{money(amount(wv[0]) - 5), money(amount(wv[1]) + 5)}
			},
		}
	case TransactSavings:
		a := g.pickAccount()
		return &txn.Txn{
			Writes: [][]byte{SavingsKey(a)},
			Apply: func(rv, wv [][]byte) [][]byte {
				return [][]byte{money(amount(wv[0]) + 20)}
			},
		}
	default: // WriteCheck
		a := g.pickAccount()
		return &txn.Txn{
			Reads:  [][]byte{SavingsKey(a)},
			Writes: [][]byte{CheckingKey(a)},
			Apply: func(rv, wv [][]byte) [][]byte {
				check := int64(18)
				if amount(rv[0])+amount(wv[0]) < check {
					check++ // overdraft penalty
				}
				return [][]byte{money(amount(wv[0]) - check)}
			},
		}
	}
}
