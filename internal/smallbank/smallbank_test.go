package smallbank_test

import (
	"testing"

	"scalerpc/internal/baseline/rawrpc"
	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/mica"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/sim"
	"scalerpc/internal/smallbank"
	"scalerpc/internal/txn"
)

func smallCfg() smallbank.Config {
	return smallbank.Config{Accounts: 500, InitialBalance: 1000, HotFraction: 0.04, HotProbability: 0.6}
}

func TestMixDistribution(t *testing.T) {
	g := smallbank.NewGen(smallCfg(), 42)
	for i := 0; i < 10000; i++ {
		g.Next()
	}
	// Balance (read-only) ≈ 15%; updates ≈ 85%.
	ro := float64(g.Counts[smallbank.Balance]) / 10000
	if ro < 0.12 || ro > 0.18 {
		t.Fatalf("read-only fraction = %.3f, want ~0.15", ro)
	}
	pay := float64(g.Counts[smallbank.SendPayment]) / 10000
	if pay < 0.21 || pay > 0.29 {
		t.Fatalf("SendPayment fraction = %.3f, want ~0.25", pay)
	}
}

func TestHotspotSkew(t *testing.T) {
	cfg := smallCfg()
	g := smallbank.NewGen(cfg, 7)
	hotN := int(float64(cfg.Accounts) * cfg.HotFraction)
	hot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		tx := g.Next()
		keys := append(append([][]byte{}, tx.Reads...), tx.Writes...)
		for _, k := range keys {
			// Keys are "svNNNNNNNN"/"ckNNNNNNNN".
			acct := 0
			for _, c := range k[2:] {
				acct = acct*10 + int(c-'0')
			}
			if acct < hotN {
				hot++
			}
			break // first key is enough for the skew estimate
		}
	}
	frac := float64(hot) / n
	if frac < 0.55 || frac > 0.70 {
		t.Fatalf("hot-set access fraction = %.3f, want ~0.6", frac)
	}
}

func TestPaymentsConserveMoney(t *testing.T) {
	c := cluster.New(cluster.Default(4))
	defer c.Close()
	cfg := smallCfg()
	var parts []*txn.Participant
	var conns []rpccore.Conn
	sig := sim.NewSignal(c.Env)
	for i := 0; i < 3; i++ {
		p := txn.NewParticipant(c.Hosts[i], mica.Config{Buckets: 1 << 12, Items: 1 << 13, SlotSize: 128})
		rcfg := rawrpc.DefaultServerConfig()
		rcfg.Workers = 2
		rcfg.MaxClients = 8
		srv := rawrpc.NewServer(c.Hosts[i], rcfg)
		p.RegisterHandlers(srv)
		srv.Start()
		parts = append(parts, p)
		conns = append(conns, srv.Connect(c.Hosts[3], sig))
	}
	if err := smallbank.Load(parts, cfg); err != nil {
		t.Fatal(err)
	}
	before := smallbank.TotalBalance(parts, cfg)

	co := txn.NewCoordinator(c.Hosts[3], 1, parts, conns, true, sig)
	horizon := 5 * sim.Millisecond
	var commits uint64
	co.Spawn(func(th *host.Thread, cc *txn.Coordinator) {
		g := smallbank.NewGen(cfg, 99)
		g.OnlyPayments = true
		commits, _ = txn.RunLoop(th, cc, g.Next, func() bool { return th.P.Now() >= horizon })
	})
	c.Env.RunUntil(horizon + 2*sim.Millisecond)
	if commits < 20 {
		t.Fatalf("only %d payments committed", commits)
	}
	after := smallbank.TotalBalance(parts, cfg)
	if before != after {
		t.Fatalf("payments changed total balance: %d → %d", before, after)
	}
}

func TestFullMixRunsAndBalancesAccountable(t *testing.T) {
	c := cluster.New(cluster.Default(4))
	defer c.Close()
	cfg := smallCfg()
	var parts []*txn.Participant
	var conns []rpccore.Conn
	sig := sim.NewSignal(c.Env)
	for i := 0; i < 3; i++ {
		p := txn.NewParticipant(c.Hosts[i], mica.Config{Buckets: 1 << 12, Items: 1 << 13, SlotSize: 128})
		rcfg := rawrpc.DefaultServerConfig()
		rcfg.Workers = 2
		rcfg.MaxClients = 8
		srv := rawrpc.NewServer(c.Hosts[i], rcfg)
		p.RegisterHandlers(srv)
		srv.Start()
		parts = append(parts, p)
		conns = append(conns, srv.Connect(c.Hosts[3], sig))
	}
	if err := smallbank.Load(parts, cfg); err != nil {
		t.Fatal(err)
	}
	co := txn.NewCoordinator(c.Hosts[3], 1, parts, conns, true, sig)
	horizon := 5 * sim.Millisecond
	var commits uint64
	co.Spawn(func(th *host.Thread, cc *txn.Coordinator) {
		g := smallbank.NewGen(cfg, 5)
		commits, _ = txn.RunLoop(th, cc, g.Next, func() bool { return th.P.Now() >= horizon })
	})
	c.Env.RunUntil(horizon + 2*sim.Millisecond)
	if commits < 20 {
		t.Fatalf("only %d txns committed", commits)
	}
	// Every lock must be released at quiescence.
	for a := 0; a < cfg.Accounts; a++ {
		for _, k := range [][]byte{smallbank.SavingsKey(a), smallbank.CheckingKey(a)} {
			p := parts[txn.ShardKey(k, len(parts))]
			if _, err := p.Store.TryLock(nil, k, 31337); err != nil {
				t.Fatalf("row %s left locked: %v", k, err)
			}
			p.Store.Unlock(nil, k, 31337)
		}
	}
}
