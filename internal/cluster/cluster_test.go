package cluster_test

import (
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/sim"
)

func TestDefaultMatchesPaperTestbed(t *testing.T) {
	cfg := cluster.Default(12)
	if cfg.Hosts != 12 {
		t.Fatalf("Hosts = %d", cfg.Hosts)
	}
	if cfg.Host.Cores != 24 {
		t.Fatalf("Cores = %d (dual 12-core E5-2650 v4)", cfg.Host.Cores)
	}
	if cfg.Host.LLC.SizeBytes != 30<<20 {
		t.Fatalf("LLC = %d, want 30 MB", cfg.Host.LLC.SizeBytes)
	}
	if cfg.Fabric.BandwidthGbps != 56 {
		t.Fatalf("fabric = %g Gbps, want 56 (FDR)", cfg.Fabric.BandwidthGbps)
	}
	if cfg.NIC.UDMTU != 4096 {
		t.Fatalf("UD MTU = %d", cfg.NIC.UDMTU)
	}
}

func TestNewBuildsAttachedHosts(t *testing.T) {
	c := cluster.New(cluster.Default(4))
	defer c.Close()
	if len(c.Hosts) != 4 {
		t.Fatalf("hosts = %d", len(c.Hosts))
	}
	for i, h := range c.Hosts {
		if h.ID != i || h.NIC == nil || h.LLC == nil || h.Bus == nil || h.Mem == nil {
			t.Fatalf("host %d incompletely wired: %+v", i, h)
		}
		if h.NIC.ID() != i {
			t.Fatalf("host %d NIC port = %d", i, h.NIC.ID())
		}
	}
	if c.Fabric.NumPorts() != 4 {
		t.Fatalf("ports = %d", c.Fabric.NumPorts())
	}
}

func TestConnectHelpersProduceWorkingPairs(t *testing.T) {
	c := cluster.New(cluster.Default(2))
	defer c.Close()
	a, b := c.Hosts[0], c.Hosts[1]
	cqA, cqB := a.NIC.CreateCQ(), b.NIC.CreateCQ()
	qa, _ := c.ConnectRC(a, b, cqA, cqA, cqB, cqB)
	src := a.Mem.Register(64, memory.PageSize4K, memory.LocalWrite)
	dst := b.Mem.Register(64, memory.PageSize4K, memory.LocalWrite|memory.RemoteWrite)
	copy(src.Bytes(), "via-helper")
	a.Spawn("w", func(th *host.Thread) {
		th.PostSend(qa, nic.SendWR{Op: nic.OpWrite,
			LKey: src.LKey, LAddr: src.Base, Len: 10,
			RKey: dst.RKey, RAddr: dst.Base})
	})
	c.Env.RunUntil(sim.Millisecond)
	if string(dst.Bytes()[:10]) != "via-helper" {
		t.Fatalf("dst = %q", dst.Bytes()[:10])
	}

	ua, _ := c.ConnectUC(a, b, cqA, cqA, cqB, cqB)
	if ua.Type != nic.UC {
		t.Fatalf("type = %v", ua.Type)
	}
}

func TestSeedIsolation(t *testing.T) {
	// Different seeds must give different NIC cache randomization streams;
	// same seed must give identical clusters (spot-check via the RNG).
	a := cluster.New(cluster.Default(2))
	defer a.Close()
	b := cluster.New(cluster.Default(2))
	defer b.Close()
	cfg := cluster.Default(2)
	cfg.Seed = 99
	d := cluster.New(cfg)
	defer d.Close()
	x, y, z := a.RNG.Uint64(), b.RNG.Uint64(), d.RNG.Uint64()
	if x != y {
		t.Fatal("same-seed clusters diverge")
	}
	if x == z {
		t.Fatal("different seeds produced identical streams")
	}
}
