// Package cluster assembles a simulated testbed: N hosts attached to one
// switch, with a single Config controlling every model parameter. The
// default configuration mirrors the paper's evaluation platform (§3.6.1):
// 12 nodes, dual Xeon E5-2650 v4 (24 cores, 30 MB LLC), ConnectX-3 FDR
// HCAs on a 56 Gbps Mellanox SX-1012 switch.
package cluster

import (
	"scalerpc/internal/ctrlplane"
	"scalerpc/internal/fabric"
	"scalerpc/internal/faults"
	"scalerpc/internal/host"
	"scalerpc/internal/nic"
	"scalerpc/internal/pcie"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
	"scalerpc/internal/telemetry"
)

// Config is the complete description of a simulated cluster.
type Config struct {
	Hosts  int
	Seed   uint64
	Fabric fabric.Config
	NIC    nic.Config
	Host   host.Config
	PCIe   pcie.CostModel
}

// Default returns the paper-testbed configuration with n hosts.
func Default(n int) Config {
	return Config{
		Hosts:  n,
		Seed:   1,
		Fabric: fabric.DefaultConfig(),
		NIC:    nic.DefaultConfig(),
		Host:   host.DefaultConfig(),
		PCIe:   pcie.DefaultCostModel(),
	}
}

// Cluster is a running testbed.
type Cluster struct {
	Cfg    Config
	Env    *sim.Env
	Fabric *fabric.Fabric
	Hosts  []*host.Host
	RNG    *stats.RNG

	// Telemetry is the cluster-wide metrics registry. Every host's NIC,
	// PCIe bus, LLC and CPU accounting registers into it at build time;
	// RPC transports claim their scopes from it when constructed.
	Telemetry *telemetry.Registry

	// Faults is the installed fault plane, nil on clean runs. Set by
	// InstallFaults.
	Faults *faults.Plane

	// Ctrl is the connection control plane, built lazily by CtrlPlane so
	// clusters that never dial in-band pay no extra simulation events.
	Ctrl *ctrlplane.Directory
}

// New builds a cluster from cfg.
func New(cfg Config) *Cluster {
	env := sim.NewEnv()
	fab := fabric.New(env, cfg.Fabric, cfg.Hosts)
	rng := stats.NewRNG(cfg.Seed)
	c := &Cluster{Cfg: cfg, Env: env, Fabric: fab, RNG: rng, Telemetry: telemetry.NewRegistry()}
	for i := 0; i < cfg.Hosts; i++ {
		c.Hosts = append(c.Hosts, host.New(env, i, cfg.Host, cfg.NIC, cfg.PCIe, fab, rng.Split(), c.Telemetry))
	}
	return c
}

// Close tears down the simulation, terminating all live processes.
func (c *Cluster) Close() { c.Env.Close() }

// InstallFaults activates a fault scenario on this cluster: the plane takes
// over the fabric's interceptor, its counters join the registry under the
// "faults" scope, and every host NIC gets the scenario's reliability tuning
// (enabling the RC retransmit timer, which lossless runs leave off). The
// plane's RNG derives from the cluster seed unless the scenario pins its
// own, so fault decisions replay deterministically with the run.
func (c *Cluster) InstallFaults(sc *faults.Scenario) *faults.Plane {
	rng := c.RNG.Split()
	if sc.Seed != 0 {
		rng = stats.NewRNG(sc.Seed)
	}
	p := faults.New(c.Env, sc, rng)
	p.Install(c.Fabric)
	p.Register(c.Telemetry.UniqueScope("faults"))
	for i, h := range c.Hosts {
		p.TuneNICNode(i, &h.NIC.Cfg)
	}
	// Straggler episodes slow the afflicted host's CPU; the NIC-side
	// slowdown is applied by the plane's interceptor.
	p.OnStraggler(func(st faults.Straggler) {
		if st.Node >= 0 && st.Node < len(c.Hosts) && st.CPUFactor > 1 {
			c.Hosts[st.Node].SetCPUScale(st.CPUFactor)
		}
	})
	p.OnStragglerEnd(func(node int) {
		if node >= 0 && node < len(c.Hosts) {
			c.Hosts[node].SetCPUScale(0)
		}
	})
	c.Faults = p
	return p
}

// CtrlPlane builds (on first call) and returns the connection control
// plane: one started ctrlplane.Manager per host, resolvable through the
// returned directory. Production-style wiring dials through this — the
// in-band, costed handshake — while ConnectRC/ConnectUC below remain the
// zero-cost test backdoors.
func (c *Cluster) CtrlPlane() *ctrlplane.Directory {
	return c.CtrlPlaneWith(ctrlplane.DefaultConfig())
}

// CtrlPlaneWith is CtrlPlane with an explicit manager configuration — how
// experiments enable the adaptive failure detector or sweep lease TTLs.
// Only the first call's configuration takes effect; later calls return the
// already-built directory.
func (c *Cluster) CtrlPlaneWith(cfg ctrlplane.Config) *ctrlplane.Directory {
	if c.Ctrl == nil {
		c.Ctrl = ctrlplane.NewDirectory()
		for _, h := range c.Hosts {
			ctrlplane.NewManager(h, cfg, c.Ctrl).Start()
		}
	}
	return c.Ctrl
}

// ConnectRC creates and connects an RC QP pair between hosts a and b using
// the given CQs. This is the out-of-band, zero-cost test backdoor
// (nic.Connect); production wiring goes through CtrlPlane.
func (c *Cluster) ConnectRC(a, b *host.Host, aSend, aRecv, bSend, bRecv *nic.CQ) (*nic.QP, *nic.QP) {
	qa := a.NIC.CreateQP(nic.RC, aSend, aRecv)
	qb := b.NIC.CreateQP(nic.RC, bSend, bRecv)
	if err := nic.Connect(qa, qb); err != nil {
		panic(err)
	}
	return qa, qb
}

// ConnectUC creates and connects a UC QP pair.
func (c *Cluster) ConnectUC(a, b *host.Host, aSend, aRecv, bSend, bRecv *nic.CQ) (*nic.QP, *nic.QP) {
	qa := a.NIC.CreateQP(nic.UC, aSend, aRecv)
	qb := b.NIC.CreateQP(nic.UC, bSend, bRecv)
	if err := nic.Connect(qa, qb); err != nil {
		panic(err)
	}
	return qa, qb
}
