package nic

import (
	"errors"
	"fmt"

	"scalerpc/internal/memory"
	"scalerpc/internal/sim"
)

// QPType selects the transport mode of a queue pair.
type QPType int

// Transport modes (Table 1 of the paper).
const (
	RC        QPType = iota // reliable connection
	UC                      // unreliable connection
	UD                      // unreliable datagram
	DCT                     // dynamically connected transport (initiator)
	DCTTarget               // dynamically connected transport (passive target)
)

func (t QPType) String() string {
	switch t {
	case RC:
		return "RC"
	case UC:
		return "UC"
	case UD:
		return "UD"
	case DCT:
		return "DCT"
	case DCTTarget:
		return "DCT_TGT"
	}
	return "?"
}

// Op is a verb opcode.
type Op int

// Verb opcodes.
const (
	OpWrite Op = iota
	OpWriteImm
	OpSend
	OpRead
	OpCompSwap
	OpFetchAdd
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "WRITE"
	case OpWriteImm:
		return "WRITE_IMM"
	case OpSend:
		return "SEND"
	case OpRead:
		return "READ"
	case OpCompSwap:
		return "CMP_SWAP"
	case OpFetchAdd:
		return "FETCH_ADD"
	}
	return "?"
}

// Errors returned by the posting APIs.
var (
	ErrVerbUnsupported  = errors.New("nic: verb not supported in this mode")
	ErrMTU              = errors.New("nic: message exceeds transport MTU")
	ErrNotConnected     = errors.New("nic: QP not in RTS")
	ErrInlineTooLarge   = errors.New("nic: inline payload exceeds MaxInline")
	ErrQPError          = errors.New("nic: QP in error state")
	ErrAlreadyConnected = errors.New("nic: QP already connected (RESET required)")
	ErrBadTransition    = errors.New("nic: invalid QP state transition")
)

// QPState is the queue pair state machine (RESET→INIT→RTR→RTS, plus the
// terminal error state). Connected transports (RC/UC) are created in RESET
// and must be walked to RTS — by the in-band ctrlplane handshake, which
// charges the modeled ModifyQP latencies, or by the Connect test backdoor.
// Datagram transports (UD/DCT) are created directly in RTS.
type QPState int

// QP states, in transition order.
const (
	QPReset QPState = iota
	QPInit
	QPRTR
	QPRTS
	QPErr
)

func (s QPState) String() string {
	switch s {
	case QPReset:
		return "RESET"
	case QPInit:
		return "INIT"
	case QPRTR:
		return "RTR"
	case QPRTS:
		return "RTS"
	case QPErr:
		return "ERR"
	}
	return "?"
}

// ModifyAttr carries the connection attributes a ModifyQP transition
// installs: the peer's address and initial PSN (consumed by the RTR
// transition on connected transports) and the local initial send PSN
// (consumed by RTS).
type ModifyAttr struct {
	RemoteNIC int
	RemoteQPN uint32
	RemotePSN uint64 // peer's initial send PSN → our expected PSN (RTR)
	LocalPSN  uint64 // our initial send PSN (RTS)
}

// SendWR is a send work request (single scatter/gather element).
type SendWR struct {
	WRID     uint64
	Op       Op
	Signaled bool

	// Local buffer. For Inline posts the payload is captured at post time
	// (no DMA read); otherwise the NIC gathers it during processing.
	LKey   uint32
	LAddr  uint64
	Len    int
	Inline bool

	// Remote target for one-sided verbs.
	RKey  uint32
	RAddr uint64

	// Imm carries the immediate value for OpWriteImm (and optionally
	// OpSend).
	Imm uint32

	// UD routing (address handle): ignored on connected QPs.
	DstNIC int
	DstQPN uint32

	// Atomic operands (OpCompSwap: Compare/Swap; OpFetchAdd: Add).
	Compare, Swap, Add uint64

	// Class is the fabric traffic class (fabric.ClassData et al.),
	// propagated onto every wire packet this WR produces so fault rules
	// can target protocol roles (e.g. keepalive-only loss).
	Class byte
}

// RecvWR is a receive work request.
type RecvWR struct {
	WRID  uint64
	LKey  uint32
	LAddr uint64
	Len   int
}

// CQEStatus reports completion status.
type CQEStatus int

// Completion statuses.
const (
	CQOK CQEStatus = iota
	CQLocalError
	CQRemoteAccessError
	CQLengthError
	// CQRetryExceeded flushes a WQE whose retransmit timer fired more than
	// Config.RetryCount times with no acknowledgement (the peer is dead or
	// the link is down); the QP transitions to the error state.
	CQRetryExceeded
	// CQRNRRetryExceeded flushes a WQE after the peer answered RNR NAK more
	// than Config.RNRRetryCount times (its receive queue stayed empty).
	CQRNRRetryExceeded
	// CQFlushError flushes a WQE posted before, but processed after, the
	// QP entered the error state.
	CQFlushError
)

// CQE is a completion queue entry.
type CQE struct {
	WRID     uint64
	QPN      uint32
	Op       Op
	Status   CQEStatus
	ByteLen  int
	Imm      uint32
	ImmValid bool
	// SrcNIC/SrcQPN identify the sender for recv completions (UD needs
	// them to address replies).
	SrcNIC int
	SrcQPN uint32
	// Atomic result (old value) for atomic completions.
	AtomicOld uint64
}

// CQ is a completion queue. CQEs are DMA-written by the NIC into a ring in
// host memory (accounted against the LLC and PCIe counters); software
// retrieves them with Poll.
type CQ struct {
	nic   *NIC
	ring  *memory.Region
	slot  int
	slots int
	queue []CQE
	head  int
	// Sig is woken whenever a CQE arrives, letting simulated threads block
	// instead of busy-spinning the simulator.
	Sig *sim.Signal
}

// CreateCQ allocates a completion queue with the configured depth.
func (n *NIC) CreateCQ() *CQ {
	depth := n.Cfg.CQDepth
	ring := n.mem.Register(depth*64, memory.PageSize2M, memory.LocalWrite)
	return &CQ{nic: n, ring: ring, slots: depth, Sig: sim.NewSignal(n.env)}
}

// push DMA-writes a CQE into the ring (hardware side).
func (cq *CQ) push(e CQE) {
	if len(cq.queue)-cq.head >= cq.slots {
		panic("nic: CQ overrun")
	}
	addr := cq.ring.Base + uint64(cq.slot*64)
	cq.slot = (cq.slot + 1) % cq.slots
	_, allocs := cq.nic.llc.DMAWrite(addr, 64)
	cq.nic.bus.RecordDeviceWrite(addr, 64, cq.nic.llc.LineSize(), allocs)
	cq.queue = append(cq.queue, e)
	cq.Sig.Broadcast()
}

// Poll removes up to max completions. The CPU cost of polling is charged by
// the caller through the host layer (each returned CQE was DMA-written to
// the ring, so reading it touches the LLC model via host.Thread).
func (cq *CQ) Poll(max int) []CQE {
	avail := len(cq.queue) - cq.head
	if avail == 0 {
		return nil
	}
	if avail > max {
		avail = max
	}
	out := make([]CQE, avail)
	copy(out, cq.queue[cq.head:cq.head+avail])
	cq.head += avail
	if cq.head == len(cq.queue) {
		cq.queue = cq.queue[:0]
		cq.head = 0
	}
	return out
}

// Len returns the number of pending completions.
func (cq *CQ) Len() int { return len(cq.queue) - cq.head }

// RingRKey exposes the ring region key (the host layer charges LLC reads
// against it when polling).
func (cq *CQ) RingRKey() uint32 { return cq.ring.RKey }

// RingBase returns the ring's base address.
func (cq *CQ) RingBase() uint64 { return cq.ring.Base }

// inflightWR tracks an unacknowledged RC work request.
type inflightWR struct {
	psn      uint64
	wr       SendWR
	needResp bool // READ/ATOMIC: completes via response, not ACK
	// inline holds the payload captured at post time for inline WRs, so a
	// retransmission resends the original bytes even if the source buffer
	// was reused meanwhile.
	inline []byte
}

// atomicEcho caches a recently executed atomic's result so a duplicate
// request (its response was lost) can be replayed without re-executing the
// non-idempotent operation — the responder-side "atomic response cache" of
// real RC hardware.
type atomicEcho struct {
	psn uint64
	old uint64
}

// atomicEchoCap bounds the per-QP atomic replay history; it comfortably
// exceeds any inflight window this model produces.
const atomicEchoCap = 64

// QP is a simulated queue pair.
type QP struct {
	nic  *NIC
	QPN  uint32
	Type QPType

	SendCQ *CQ
	RecvCQ *CQ

	state     QPState
	remoteNIC int
	remoteQPN uint32

	// DCT initiator state: the currently connected target.
	dctDstNIC int
	dctDstQPN uint32

	recvQ    []RecvWR
	recvHead int

	// RC reliability state.
	sendPSN   uint64
	expectPSN uint64
	inflight  []inflightWR
	nakSent   bool

	// Requester-side retry machinery (active when Config.RetransmitTimeout
	// is positive). timerGen invalidates scheduled timer callbacks: any
	// progress bumps it, so a stale timeout finds gen mismatched and does
	// nothing.
	timerGen   uint64
	retries    int // consecutive timeouts without progress
	rnrRetries int // consecutive RNR NAKs without progress

	// Responder-side atomic replay ring (see atomicEcho).
	atomicHist []atomicEcho

	err error
}

// CreateQP creates a queue pair of the given type with the given CQs.
// Connected transports start in RESET; datagram transports are usable
// immediately (RTS).
func (n *NIC) CreateQP(t QPType, sendCQ, recvCQ *CQ) *QP {
	qp := &QP{nic: n, QPN: n.allocQPN(), Type: t, SendCQ: sendCQ, RecvCQ: recvCQ}
	switch t {
	case UD, DCT, DCTTarget:
		qp.state = QPRTS
	default:
		qp.state = QPReset
	}
	n.qps[qp.QPN] = qp
	return qp
}

// DestroyQP removes the QP from the NIC, flushing outstanding WQEs — both
// unacknowledged sends and posted receives — with CQFlushError (the same
// path the error state takes) so teardown during in-flight traffic cannot
// strand completions, and invalidates its cached context.
func (n *NIC) DestroyQP(qp *QP) {
	if qp.err == nil {
		qp.err = n.errorf("QP %d destroyed", qp.QPN)
	}
	qp.state = QPErr
	n.flushQP(qp)
	delete(n.qps, qp.QPN)
	n.qpcCache.Invalidate(uint64(qp.QPN))
	n.wqeCache.Invalidate(uint64(qp.QPN))
}

// Modify drives one QP state transition (the ModifyQP verb) and returns the
// modeled verb latency — a command-queue round trip to NIC firmware, orders
// of magnitude slower than a data-path doorbell — which the caller must
// charge in virtual time (host.Thread.ModifyQP sleeps it). Transitions must
// follow RESET→INIT→RTR→RTS; RTR installs the peer address and expected PSN
// on connected transports, RTS installs the local send PSN. A transition to
// RESET is allowed from any state and recycles the QP, flushing outstanding
// work; a transition to ERR invokes the error path.
func (qp *QP) Modify(to QPState, attr ModifyAttr) (sim.Duration, error) {
	n := qp.nic
	if qp.err != nil && to != QPReset {
		return 0, qp.err
	}
	switch to {
	case QPReset:
		n.flushQP(qp)
		qp.err = nil
		qp.state = QPReset
		qp.remoteNIC, qp.remoteQPN = 0, 0
		qp.sendPSN, qp.expectPSN = 0, 0
		qp.retries, qp.rnrRetries = 0, 0
		qp.nakSent = false
		return n.Cfg.ModifyInitCost, nil
	case QPInit:
		if qp.state != QPReset {
			return 0, fmt.Errorf("%w: %v→INIT", ErrBadTransition, qp.state)
		}
		qp.state = QPInit
		return n.Cfg.ModifyInitCost, nil
	case QPRTR:
		if qp.state != QPInit {
			return 0, fmt.Errorf("%w: %v→RTR", ErrBadTransition, qp.state)
		}
		if qp.Type == RC || qp.Type == UC {
			if attr.RemoteQPN == 0 {
				return 0, fmt.Errorf("%w: RTR on %v requires a remote QPN", ErrBadTransition, qp.Type)
			}
			qp.remoteNIC, qp.remoteQPN = attr.RemoteNIC, attr.RemoteQPN
			qp.expectPSN = attr.RemotePSN
		}
		qp.state = QPRTR
		return n.Cfg.ModifyRTRCost, nil
	case QPRTS:
		if qp.state != QPRTR {
			return 0, fmt.Errorf("%w: %v→RTS", ErrBadTransition, qp.state)
		}
		qp.sendPSN = attr.LocalPSN
		qp.state = QPRTS
		return n.Cfg.ModifyRTSCost, nil
	case QPErr:
		n.enterQPError(qp, n.errorf("QP %d moved to error state", qp.QPN), CQFlushError)
		return n.Cfg.ModifyInitCost, nil
	}
	return 0, fmt.Errorf("%w: unknown target state", ErrBadTransition)
}

// Connect pairs two RC/UC QPs directly, driving both straight to RTS at
// zero modeled cost — a test-only backdoor standing in for an instantaneous
// out-of-band (TCP) exchange. Production wiring goes through the
// internal/ctrlplane handshake, which pays the real ModifyQP latencies
// in-band. Both QPs must still be in RESET; re-pairing a live QP errors.
func Connect(a, b *QP) error {
	if a.Type == UD || b.Type == UD {
		return fmt.Errorf("%w: UD QPs are connectionless", ErrVerbUnsupported)
	}
	if a.Type == DCT || b.Type == DCT || a.Type == DCTTarget || b.Type == DCTTarget {
		return fmt.Errorf("%w: DCT connects dynamically per message", ErrVerbUnsupported)
	}
	if a.Type != b.Type {
		return fmt.Errorf("nic: cannot connect %v to %v", a.Type, b.Type)
	}
	if a.state != QPReset {
		return fmt.Errorf("%w: QP %d is %v", ErrAlreadyConnected, a.QPN, a.state)
	}
	if b.state != QPReset {
		return fmt.Errorf("%w: QP %d is %v", ErrAlreadyConnected, b.QPN, b.state)
	}
	a.remoteNIC, a.remoteQPN = b.nic.id, b.QPN
	b.remoteNIC, b.remoteQPN = a.nic.id, a.QPN
	a.state, b.state = QPRTS, QPRTS
	return nil
}

// Err returns the QP's error state, if any.
func (qp *QP) Err() error { return qp.err }

// State returns the QP's current state.
func (qp *QP) State() QPState { return qp.state }

// Remote returns the connected peer's (nic, qpn); valid only when connected.
func (qp *QP) Remote() (int, uint32) { return qp.remoteNIC, qp.remoteQPN }

// validate enforces the Table 1 verb/MTU support matrix.
func (qp *QP) validate(wr *SendWR) error {
	switch qp.Type {
	case UD:
		if wr.Op != OpSend {
			return fmt.Errorf("%w: %v on UD", ErrVerbUnsupported, wr.Op)
		}
		if wr.Len > qp.nic.Cfg.UDMTU {
			return fmt.Errorf("%w: %d > %d (UD)", ErrMTU, wr.Len, qp.nic.Cfg.UDMTU)
		}
	case UC:
		switch wr.Op {
		case OpSend, OpWrite, OpWriteImm:
		default:
			return fmt.Errorf("%w: %v on UC", ErrVerbUnsupported, wr.Op)
		}
		if wr.Len > qp.nic.Cfg.MaxMsg {
			return fmt.Errorf("%w: %d > %d (UC)", ErrMTU, wr.Len, qp.nic.Cfg.MaxMsg)
		}
		if qp.state != QPRTS {
			return ErrNotConnected
		}
	case RC:
		if wr.Len > qp.nic.Cfg.MaxMsg {
			return fmt.Errorf("%w: %d > %d (RC)", ErrMTU, wr.Len, qp.nic.Cfg.MaxMsg)
		}
		if qp.state != QPRTS {
			return ErrNotConnected
		}
	case DCT:
		// Full RC verb set, addressed per-request like UD.
		if wr.Len > qp.nic.Cfg.MaxMsg {
			return fmt.Errorf("%w: %d > %d (DCT)", ErrMTU, wr.Len, qp.nic.Cfg.MaxMsg)
		}
	case DCTTarget:
		return fmt.Errorf("%w: DCT targets are passive", ErrVerbUnsupported)
	}
	if wr.Inline && wr.Len > qp.nic.Cfg.MaxInline {
		return ErrInlineTooLarge
	}
	if wr.Inline {
		switch wr.Op {
		case OpRead, OpCompSwap, OpFetchAdd:
			return fmt.Errorf("%w: inline %v", ErrVerbUnsupported, wr.Op)
		}
	}
	return nil
}

// PostSend posts a send work request. The MMIO doorbell is accounted here;
// the caller charges its own CPU time through the host layer.
func (qp *QP) PostSend(wr SendWR) error {
	if qp.err != nil {
		return qp.err
	}
	if err := qp.validate(&wr); err != nil {
		return err
	}
	n := qp.nic
	n.bus.RecordMMIO()
	job := outJob{qp: qp, wr: wr}
	if wr.Inline && wr.Len > 0 {
		_, src, err := n.mem.TranslateLocal(wr.LKey, wr.LAddr, wr.Len)
		if err != nil {
			return err
		}
		// Pooled copy. For RC/DCT the buffer is owned by the inflight entry
		// and retires at ACK time; for UD/UC ownership transfers to the
		// packet in processOut (see pool.go).
		job.inlineData = n.getBuf(wr.Len)
		copy(job.inlineData, src)
	}
	n.outQ = append(n.outQ, job)
	n.outKick()
	return nil
}

// PostRecv posts a receive work request.
func (qp *QP) PostRecv(wr RecvWR) error {
	if qp.err != nil {
		return qp.err
	}
	qp.nic.bus.RecordMMIO()
	qp.recvQ = append(qp.recvQ, wr)
	return nil
}

// PostRecvBatch posts several receives with a single doorbell.
func (qp *QP) PostRecvBatch(wrs []RecvWR) error {
	if qp.err != nil {
		return qp.err
	}
	qp.nic.bus.RecordMMIO()
	qp.recvQ = append(qp.recvQ, wrs...)
	return nil
}

// RecvQueueLen reports the number of posted, unconsumed receives.
func (qp *QP) RecvQueueLen() int { return len(qp.recvQ) - qp.recvHead }

func (qp *QP) popRecv() (RecvWR, bool) {
	if qp.recvHead >= len(qp.recvQ) {
		return RecvWR{}, false
	}
	wr := qp.recvQ[qp.recvHead]
	qp.recvHead++
	if qp.recvHead == len(qp.recvQ) {
		qp.recvQ = qp.recvQ[:0]
		qp.recvHead = 0
	}
	return wr, true
}

// rememberAtomic records an executed atomic's old value for duplicate
// replay.
func (qp *QP) rememberAtomic(psn, old uint64) {
	if len(qp.atomicHist) >= atomicEchoCap {
		qp.atomicHist = qp.atomicHist[1:]
	}
	qp.atomicHist = append(qp.atomicHist, atomicEcho{psn: psn, old: old})
}

// replayAtomic looks up the cached result of an already-executed atomic.
func (qp *QP) replayAtomic(psn uint64) (uint64, bool) {
	for _, e := range qp.atomicHist {
		if e.psn == psn {
			return e.old, true
		}
	}
	return 0, false
}

// cancelTimer invalidates any scheduled retransmit timeout.
func (qp *QP) cancelTimer() { qp.timerGen++ }

// noteProgress resets the retry counters after an acknowledgement advanced
// the inflight window, and re-arms the timer if work remains outstanding.
func (qp *QP) noteProgress() {
	qp.retries = 0
	qp.rnrRetries = 0
	qp.cancelTimer()
	qp.nic.armTimer(qp)
}
