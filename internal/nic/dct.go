package nic

// Dynamically Connected Transport (DCT) — the hardware approach to RC
// scalability the paper discusses in §5.1 (Mellanox Connect-IB and later).
//
// A DCT initiator is a single QP that can address any DCT target, like UD
// — so the NIC holds one context per initiator instead of one per peer —
// but with RC semantics (reliable, one-sided verbs). The price, per the
// paper: "the context is created each time the data transmission occurs by
// posting an inline message to the other side, and then destroyed
// immediately when switching to another connection", which "almost doubles
// the number of network packets" for small requests and adds 1–3 µs of
// latency on connection switches.
//
// Model: a DCT initiator tracks its currently connected target. A work
// request addressed to a different target tears the old context down and
// sends a connect packet ahead of the data (extra wire packet + engine
// occupancy + one-way latency before the data may depart). The responder
// pays a context-creation cost when the connect arrives. While connected
// to one target, subsequent requests behave like RC.

// DCTConnect/teardown model parameters (virtual ns).
const (
	dctConnectCost  = 150 // initiator engine occupancy to build the context
	dctAcceptCost   = 200 // responder engine occupancy to accept
	dctConnectBytes = 16  // connect packet payload on the wire
)

// CreateDCTInitiator returns a DCT initiator QP. Work requests must carry
// DstNIC/DstQPN of a DCT target.
func (n *NIC) CreateDCTInitiator(sendCQ, recvCQ *CQ) *QP {
	qp := &QP{nic: n, QPN: n.allocQPN(), Type: DCT, SendCQ: sendCQ, RecvCQ: recvCQ, state: QPRTS}
	qp.dctDstNIC = -1
	n.qps[qp.QPN] = qp
	return qp
}

// CreateDCTTarget returns a DCT target QP: the passive endpoint remote
// initiators address. Post receives to it for SEND traffic.
func (n *NIC) CreateDCTTarget(sendCQ, recvCQ *CQ) *QP {
	qp := &QP{nic: n, QPN: n.allocQPN(), Type: DCTTarget, SendCQ: sendCQ, RecvCQ: recvCQ, state: QPRTS}
	n.qps[qp.QPN] = qp
	return qp
}

// dctPrepare handles the connect-on-demand step for one outbound DCT work
// request: if the initiator is not connected to the request's target, it
// switches contexts. Returns the extra engine occupancy and whether a
// connect packet must precede the data.
func (qp *QP) dctPrepare(dstNIC int, dstQPN uint32) (extra int64, reconnect bool) {
	if qp.dctDstNIC == dstNIC && qp.dctDstQPN == dstQPN {
		return 0, false
	}
	qp.dctDstNIC = dstNIC
	qp.dctDstQPN = dstQPN
	qp.nic.Stats.DCTConnects++
	return dctConnectCost, true
}
