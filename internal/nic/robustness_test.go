package nic_test

import (
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/sim"
)

func TestCQOverrunPanics(t *testing.T) {
	// CQ overrun is fatal on real hardware; the model must fail loudly,
	// not drop completions silently.
	cfg := cluster.Default(2)
	cfg.NIC.CQDepth = 4
	c := cluster.New(cfg)
	defer c.Close()
	a, b := c.Hosts[0], c.Hosts[1]
	cqA := a.NIC.CreateCQ()
	qa := a.NIC.CreateQP(nic.RC, cqA, cqA)
	cqB := b.NIC.CreateCQ()
	qb := b.NIC.CreateQP(nic.RC, cqB, cqB)
	nic.Connect(qa, qb)
	src := a.Mem.Register(64, memory.PageSize4K, memory.LocalWrite)
	dst := b.Mem.Register(64, memory.PageSize4K, memory.LocalWrite|memory.RemoteWrite)
	for i := 0; i < 16; i++ {
		qa.PostSend(nic.SendWR{Op: nic.OpWrite, Signaled: true,
			LKey: src.LKey, LAddr: src.Base, Len: 8,
			RKey: dst.RKey, RAddr: dst.Base})
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected CQ overrun panic")
		}
	}()
	c.Env.Run()
}

func TestDestroyQPDropsTraffic(t *testing.T) {
	c := cluster.New(cluster.Default(2))
	defer c.Close()
	a, b := c.Hosts[0], c.Hosts[1]
	cqA := a.NIC.CreateCQ()
	qa := a.NIC.CreateQP(nic.RC, cqA, cqA)
	cqB := b.NIC.CreateCQ()
	qb := b.NIC.CreateQP(nic.RC, cqB, cqB)
	nic.Connect(qa, qb)
	src := a.Mem.Register(64, memory.PageSize4K, memory.LocalWrite)
	dst := b.Mem.Register(64, memory.PageSize4K, memory.LocalWrite|memory.RemoteWrite)
	// Destroy the destination QP, then write into the void: nothing may
	// crash, data must not land, no completion may arrive (no ack).
	b.NIC.DestroyQP(qb)
	copy(src.Bytes(), "ghost")
	qa.PostSend(nic.SendWR{Op: nic.OpWrite, Signaled: true,
		LKey: src.LKey, LAddr: src.Base, Len: 5,
		RKey: dst.RKey, RAddr: dst.Base})
	c.Env.Run()
	if string(dst.Bytes()[:5]) == "ghost" {
		t.Fatal("write landed on a destroyed QP")
	}
	if cqA.Len() != 0 {
		t.Fatal("completion for a write into a destroyed QP")
	}
}

func TestDeregisteredRegionRejectsRemoteAccess(t *testing.T) {
	pe := newPair(t, nic.RC)
	pe.c.Hosts[1].Mem.Deregister(pe.srv)
	pe.qpA.PostSend(nic.SendWR{WRID: 1, Op: nic.OpWrite, Signaled: true,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: 8,
		RKey: pe.srv.RKey, RAddr: pe.srv.Base})
	pe.c.Env.Run()
	cqes := pe.cqA.Poll(4)
	if len(cqes) != 1 || cqes[0].Status != nic.CQRemoteAccessError {
		t.Fatalf("cqes = %+v, want remote access error", cqes)
	}
}

func TestRetransmitBurstLoss(t *testing.T) {
	// Drop a burst of 5 consecutive data packets: go-back-N must recover
	// all of them in order.
	pe := newPair(t, nic.RC)
	pe.c.Hosts[1].NIC.DropNextDataPackets(5)
	for i := 0; i < 20; i++ {
		pe.cli.Bytes()[i] = byte(i + 1)
		pe.qpA.PostSend(nic.SendWR{WRID: uint64(i), Op: nic.OpWrite, Signaled: true,
			LKey: pe.cli.LKey, LAddr: pe.cli.Base + uint64(i), Len: 1,
			RKey: pe.srv.RKey, RAddr: pe.srv.Base + uint64(i)})
	}
	pe.c.Env.Run()
	for i := 0; i < 20; i++ {
		if pe.srv.Bytes()[i] != byte(i+1) {
			t.Fatalf("slot %d = %d after burst loss", i, pe.srv.Bytes()[i])
		}
	}
	if got := pe.cqA.Len(); got != 20 {
		t.Fatalf("completions = %d, want 20", got)
	}
	if pe.c.Hosts[0].NIC.Stats.Retransmits < 5 {
		t.Fatalf("Retransmits = %d, want ≥5", pe.c.Hosts[0].NIC.Stats.Retransmits)
	}
}

func TestRepeatedLossEpisodes(t *testing.T) {
	// Loss, recovery, more loss: sequencing state must survive multiple
	// NAK episodes on one QP.
	pe := newPair(t, nic.RC)
	for round := 0; round < 3; round++ {
		pe.c.Hosts[1].NIC.DropNextDataPackets(2)
		base := uint64(round * 32)
		for i := uint64(0); i < 8; i++ {
			pe.cli.Bytes()[base+i] = byte(0x10*round + int(i) + 1)
			pe.qpA.PostSend(nic.SendWR{Op: nic.OpWrite, Signaled: true,
				LKey: pe.cli.LKey, LAddr: pe.cli.Base + base + i, Len: 1,
				RKey: pe.srv.RKey, RAddr: pe.srv.Base + base + i})
		}
		pe.c.Env.Run()
	}
	for round := 0; round < 3; round++ {
		base := round * 32
		for i := 0; i < 8; i++ {
			want := byte(0x10*round + i + 1)
			if pe.srv.Bytes()[base+i] != want {
				t.Fatalf("round %d slot %d = %#x, want %#x", round, i, pe.srv.Bytes()[base+i], want)
			}
		}
	}
}

func TestHighUDLossStillDeliversSome(t *testing.T) {
	cfg := cluster.Default(2)
	cfg.NIC.UDLossRate = 0.5
	c := cluster.New(cfg)
	defer c.Close()
	a, b := c.Hosts[0], c.Hosts[1]
	cqA, cqB := a.NIC.CreateCQ(), b.NIC.CreateCQ()
	qa := a.NIC.CreateQP(nic.UD, cqA, cqA)
	qb := b.NIC.CreateQP(nic.UD, cqB, cqB)
	src := a.Mem.Register(64, memory.PageSize4K, memory.LocalWrite)
	ring := b.Mem.Register(64*256, memory.PageSize2M, memory.LocalWrite)
	for i := 0; i < 256; i++ {
		qb.PostRecv(nic.RecvWR{WRID: uint64(i), LKey: ring.LKey,
			LAddr: ring.Base + uint64(i*64), Len: 64})
	}
	for i := 0; i < 200; i++ {
		qa.PostSend(nic.SendWR{Op: nic.OpSend, LKey: src.LKey, LAddr: src.Base, Len: 16,
			DstNIC: 1, DstQPN: qb.QPN})
	}
	c.Env.Run()
	delivered := cqB.Len()
	dropped := int(b.NIC.Stats.UDDrops)
	if delivered+dropped != 200 {
		t.Fatalf("delivered %d + dropped %d != 200", delivered, dropped)
	}
	if delivered < 50 || delivered > 150 {
		t.Fatalf("delivered = %d with 50%% loss, want ~100", delivered)
	}
}

func TestWatchSurvivesManyWriters(t *testing.T) {
	// Many concurrent writers into one watched region: every write must
	// eventually wake the watcher; the watcher must observe all data.
	c := cluster.New(cluster.Default(4))
	defer c.Close()
	srv := c.Hosts[0]
	reg := srv.Mem.Register(4096, memory.PageSize4K, memory.LocalWrite|memory.RemoteWrite)
	sig := sim.NewSignal(c.Env)
	srv.NIC.WatchRegion(reg.RKey, sig)
	const writers = 9
	for w := 0; w < writers; w++ {
		w := w
		h := c.Hosts[1+w%3]
		src := h.Mem.Register(64, memory.PageSize4K, memory.LocalWrite)
		cq := h.NIC.CreateCQ()
		qp := h.NIC.CreateQP(nic.RC, cq, cq)
		scq := srv.NIC.CreateCQ()
		sqp := srv.NIC.CreateQP(nic.RC, scq, scq)
		nic.Connect(qp, sqp)
		src.Bytes()[0] = byte(w + 1)
		c.Env.SpawnAt(sim.Duration(w)*500, "writer", func(p *sim.Proc) {
			qp.PostSend(nic.SendWR{Op: nic.OpWrite,
				LKey: src.LKey, LAddr: src.Base, Len: 1,
				RKey: reg.RKey, RAddr: reg.Base + uint64(w)})
		})
	}
	seen := 0
	c.Env.Spawn("watcher", func(p *sim.Proc) {
		for seen < writers {
			n := 0
			for w := 0; w < writers; w++ {
				if reg.Bytes()[w] == byte(w+1) {
					n++
				}
			}
			seen = n
			if seen < writers && sig.WaitTimeout(p, sim.Millisecond) {
				return
			}
		}
	})
	c.Env.Run()
	if seen != writers {
		t.Fatalf("watcher saw %d/%d writes", seen, writers)
	}
}
