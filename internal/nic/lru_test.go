package nic

import (
	"testing"
	"testing/quick"

	"scalerpc/internal/stats"
)

func TestLRUHitMiss(t *testing.T) {
	c := newLRU(2)
	if c.Access(1) {
		t.Fatal("cold access hit")
	}
	if !c.Access(1) {
		t.Fatal("warm access missed")
	}
	c.Access(2)
	c.Access(3) // evicts 1 (LRU)
	if c.Contains(1) {
		t.Fatal("LRU victim survived")
	}
	if !c.Contains(2) || !c.Contains(3) {
		t.Fatal("recent entries evicted")
	}
}

func TestLRURecencyUpdate(t *testing.T) {
	c := newLRU(2)
	c.Access(1)
	c.Access(2)
	c.Access(1) // 2 becomes LRU
	c.Access(3)
	if c.Contains(2) {
		t.Fatal("LRU entry 2 survived")
	}
	if !c.Contains(1) {
		t.Fatal("MRU entry 1 evicted")
	}
}

func TestLRUInvalidate(t *testing.T) {
	c := newLRU(4)
	c.Access(7)
	c.Invalidate(7)
	if c.Contains(7) {
		t.Fatal("invalidate failed")
	}
	c.Invalidate(99) // absent: no-op
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestLRUHitRate(t *testing.T) {
	c := newLRU(8)
	for i := uint64(0); i < 8; i++ {
		c.Access(i)
	}
	for i := uint64(0); i < 8; i++ {
		c.Access(i)
	}
	if hr := c.HitRate(); hr != 0.5 {
		t.Fatalf("HitRate = %f, want 0.5", hr)
	}
}

func TestRandomCacheNeverExceedsCapacity(t *testing.T) {
	rng := stats.NewRNG(3)
	c := newRandomCache(16, rng)
	for i := uint64(0); i < 10000; i++ {
		c.Access(i % 97)
	}
	if c.Len() > 16 {
		t.Fatalf("Len = %d > capacity", c.Len())
	}
	// Index structures stay consistent.
	if len(c.keys) != c.Len() || len(c.keyPos) != c.Len() {
		t.Fatalf("index desync: keys=%d pos=%d entries=%d", len(c.keys), len(c.keyPos), c.Len())
	}
}

func TestRandomCacheGradualDegradation(t *testing.T) {
	// Cycling over 2× capacity: random replacement must keep a
	// substantially nonzero hit rate (strict LRU would be exactly 0).
	rng := stats.NewRNG(5)
	c := newRandomCache(64, rng)
	for round := 0; round < 200; round++ {
		for k := uint64(0); k < 128; k++ {
			c.Access(k)
		}
	}
	hr := c.HitRate()
	if hr < 0.15 || hr > 0.6 {
		t.Fatalf("random-replacement hit rate = %.3f, want mid-range", hr)
	}
	lru := newLRU(64)
	for round := 0; round < 200; round++ {
		for k := uint64(0); k < 128; k++ {
			lru.Access(k)
		}
	}
	if lru.HitRate() != 0 {
		t.Fatalf("strict LRU cycling hit rate = %.3f, want 0", lru.HitRate())
	}
}

func TestRandomCacheInvalidateKeepsIndex(t *testing.T) {
	rng := stats.NewRNG(9)
	c := newRandomCache(8, rng)
	for i := uint64(0); i < 8; i++ {
		c.Access(i)
	}
	c.Invalidate(3)
	c.Invalidate(0)
	if c.Len() != 6 || len(c.keys) != 6 {
		t.Fatalf("Len=%d keys=%d", c.Len(), len(c.keys))
	}
	// Every remaining key must be findable via the dense index.
	for _, k := range c.keys {
		if c.keyPos[k] >= len(c.keys) || c.keys[c.keyPos[k]] != k {
			t.Fatalf("index broken for key %d", k)
		}
	}
}

func TestPropertyCachesAgreeOnMembershipAfterAccess(t *testing.T) {
	// Whatever the policy, an Access(k) must leave k resident.
	err := quick.Check(func(seed uint64, keys []uint16) bool {
		rng := stats.NewRNG(seed)
		c := newRandomCache(4, rng)
		l := newLRU(4)
		for _, k := range keys {
			c.Access(uint64(k))
			l.Access(uint64(k))
			if !c.Contains(uint64(k)) || !l.Contains(uint64(k)) {
				return false
			}
		}
		return c.Len() <= 4 && l.Len() <= 4
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}
