package nic

import (
	"math/bits"

	"scalerpc/internal/fabric"
)

// Arena pooling for the NIC hot path. Packets, fabric messages and payload
// copies are the dominant steady-state allocations of a busy simulation, and
// all of them have fully tractable lifetimes, so they are recycled through
// per-NIC free lists instead of the garbage collector.
//
// Ownership rules (the arena contract — see also TestArenaAliasing):
//
//   - A packet travels sender → fabric → receiver; the RECEIVING NIC owns it
//     once processIn's commit action has run and recycles it then, unless
//     noRecycle is set.
//   - pkt.data is recycled together with the packet only when pkt.ownsData:
//     payload copies the engine made itself (DMA gathers, READ responses).
//     Inline RC/DCT sends alias the inflight entry's buffer instead
//     (ownsData=false); that buffer retires with the entry when its ACK
//     arrives — provably after the receiver committed the data, and any
//     still-travelling retransmitted copy of it is rejected by the PSN check
//     without touching the payload.
//   - Fault injections break the single-owner story and set noRecycle:
//     duplicated deliveries alias one packet across two deliveries, and torn
//     writes hold pkt.data beyond the commit action. Those packets (and the
//     inflight buffers of QPs that die in the error state) are left to the
//     GC — correctness first, the pool is only an optimization.
type pktPool struct {
	pkts []*packet
	msgs []*fabric.Message
	// bufs holds payload backing arrays in power-of-two size classes
	// (64 B .. 64 KB); larger payloads are not pooled.
	bufs [bufMaxClass + 1][][]byte
}

const (
	bufMinClass = 6  // 64 B
	bufMaxClass = 16 // 64 KB
	pktPoolCap  = 1024
	msgPoolCap  = 1024
	bufPoolCap  = 512
)

func (n *NIC) getPacket() *packet {
	if k := len(n.pool.pkts); k > 0 {
		p := n.pool.pkts[k-1]
		n.pool.pkts = n.pool.pkts[:k-1]
		return p
	}
	return &packet{}
}

// freePacket recycles a packet the caller finished with, honoring the
// noRecycle pin and the data-ownership flag.
func (n *NIC) freePacket(p *packet) {
	if p.noRecycle {
		return
	}
	if p.ownsData {
		n.putBuf(p.data)
	}
	*p = packet{}
	if len(n.pool.pkts) < pktPoolCap {
		n.pool.pkts = append(n.pool.pkts, p)
	}
}

func (n *NIC) getMsg() *fabric.Message {
	if k := len(n.pool.msgs); k > 0 {
		m := n.pool.msgs[k-1]
		n.pool.msgs = n.pool.msgs[:k-1]
		return m
	}
	return &fabric.Message{}
}

func (n *NIC) putMsg(m *fabric.Message) {
	*m = fabric.Message{}
	if len(n.pool.msgs) < msgPoolCap {
		n.pool.msgs = append(n.pool.msgs, m)
	}
}

// getBuf returns a length-size buffer from the size-class free lists.
func (n *NIC) getBuf(size int) []byte {
	if size <= 0 {
		return nil
	}
	if size > 1<<bufMaxClass {
		return make([]byte, size)
	}
	c := bufClass(size)
	fl := &n.pool.bufs[c]
	if k := len(*fl); k > 0 {
		b := (*fl)[k-1]
		*fl = (*fl)[:k-1]
		return b[:size]
	}
	return make([]byte, size, 1<<uint(c))
}

// putBuf returns a buffer to its size class. Buffers whose capacity is not
// an exact pool class land in the next class down, which only ever
// under-promises capacity.
func (n *NIC) putBuf(b []byte) {
	c := cap(b)
	if c < 1<<bufMinClass || c > 1<<bufMaxClass {
		return
	}
	cls := bits.Len(uint(c)) - 1 // floor log2
	fl := &n.pool.bufs[cls]
	if len(*fl) < bufPoolCap {
		*fl = append(*fl, b[:0])
	}
}

// bufClass is the smallest pool class holding size bytes.
func bufClass(size int) int {
	c := bits.Len(uint(size - 1))
	if c < bufMinClass {
		c = bufMinClass
	}
	return c
}

// ctl allocates a pooled control packet (ACK/NAK/responses) with the common
// header fields set; callers fill op-specific extras.
func (n *NIC) ctl(op pktOp, transport QPType, dstQPN uint32, psn uint64) *packet {
	p := n.getPacket()
	p.op, p.transport, p.dstQPN, p.psn = op, transport, dstQPN, psn
	return p
}
