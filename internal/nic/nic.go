// Package nic implements the simulated RDMA NIC ("RNIC") and its
// ibverbs-style programming interface: queue pairs in RC, UC and UD modes,
// completion queues, one-sided READ/WRITE/ATOMIC verbs, two-sided
// SEND/RECV, and WRITE_WITH_IMM.
//
// The model reproduces the hardware behaviours the paper's analysis (§2.3)
// depends on:
//
//   - Outbound verb processing needs the QP context and the posted WQE.
//     Both live in small on-NIC LRU caches; a miss stalls the processing
//     engine for a PCIe DMA read and increments the host's PCIeRdCur
//     counter. With more active QPs than cache entries, outbound
//     throughput collapses — Figure 1(b)/3(a)/10.
//
//   - Inbound writes bypass those caches (the NIC "only needs to store the
//     messages to the local memory without modifying the cached states")
//     but land in the host LLC through DDIO; when the target pool exceeds
//     the DDIO budget, write-allocates stall the inbound engine and evict
//     useful lines — Figure 3(b).
//
//   - Address translation consults an MTT cache keyed by (key, page);
//     registering huge pages keeps it small, 4 KB pages thrash it.
//
// Engines: each NIC has one outbound and one inbound processing engine.
// Jobs occupy an engine serially (that is the throughput limit); DMA
// payload transfers are pipelined and add delivery latency but not engine
// occupancy.
package nic

import (
	"fmt"

	"scalerpc/internal/cachesim"
	"scalerpc/internal/fabric"
	"scalerpc/internal/memory"
	"scalerpc/internal/pcie"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
	"scalerpc/internal/telemetry"
)

// Config holds the NIC model parameters.
type Config struct {
	// Cache geometries.
	QPCCacheEntries int // QP contexts resident on-NIC
	WQECacheEntries int // per-QP WQE windows resident on-NIC
	MTTCacheEntries int // page translations resident on-NIC

	// Outbound engine occupancy.
	OutboundBaseCost sim.Duration // per WQE, caches hot
	OutboundUDExtra  sim.Duration // extra for UD address-handle resolution
	// CacheMissStall is the engine occupancy added per QPC/WQE/MTT cache
	// miss. It is smaller than the full DMA read latency because the
	// NIC's processing units overlap refills with other work; the full
	// latency still delays the message's departure.
	CacheMissStall sim.Duration

	// Inbound engine occupancy.
	InboundWriteCost sim.Duration // per inbound WRITE
	InboundSendCost  sim.Duration // per inbound SEND (recv WQE consume)
	InboundReadCost  sim.Duration // per inbound READ request
	InboundAckCost   sim.Duration // per inbound ACK/NAK
	AtomicCost       sim.Duration // extra for atomics (bus lock)

	// Limits.
	MaxInline int // bytes postable inline in the WQE
	UDMTU     int // UD payload limit (4 KB per Table 1)
	MaxMsg    int // RC/UC payload limit (2 GB per Table 1)

	// UDLossRate drops incoming UD packets with this probability
	// (unreliable datagram; default 0 — IB fabrics are lossless).
	UDLossRate float64

	// TornWriteDelay, when positive, commits inbound RDMA writes in two
	// steps: every byte except the last lands first, and the final
	// (highest-address) byte lands TornWriteDelay later. RDMA only
	// guarantees increasing-address-order visibility, so this fault
	// injection verifies that pollers relying on a trailing Valid byte
	// (the paper's right-aligned layout, §3.1) never observe a partial
	// message as complete.
	TornWriteDelay sim.Duration

	// CQDepth is the completion queue capacity; overrun is fatal, as on
	// real hardware.
	CQDepth int

	// RetransmitTimeout enables requester-side timeout retransmission on
	// RC/DCT QPs: whenever the oldest inflight WQE goes unacknowledged for
	// this long, every inflight WQE is retransmitted (go-back-N) and the
	// QP's retry counter increments. Zero (the default) disables the
	// timer — on a lossless fabric the NAK path alone recovers every gap,
	// and the fault plane (internal/faults) raises this when it makes the
	// fabric lossy.
	RetransmitTimeout sim.Duration
	// RetryCount is how many consecutive timeouts are tolerated before the
	// QP enters the error state and flushes its inflight WQEs with
	// CQRetryExceeded. Zero means the default (7, as in ibverbs).
	RetryCount int
	// RNRTimeout is the requester's back-off before retransmitting a send
	// that drew an RNR NAK (receiver not ready: no posted recv). Zero
	// means the default (8 µs).
	RNRTimeout sim.Duration
	// RNRRetryCount bounds consecutive RNR NAKs before the QP errors with
	// CQRNRRetryExceeded. Zero means the default (7).
	RNRRetryCount int

	// StrictLRUCaches switches the on-NIC caches from randomized
	// replacement (realistic gradual degradation; the default) to strict
	// LRU (useful in tests asserting exact eviction behaviour).
	StrictLRUCaches bool

	// Control-plane verb latencies. CreateQP and each ModifyQP transition
	// are command-queue round trips to NIC firmware — microseconds, orders
	// of magnitude slower than a data-path doorbell (Swift measures this as
	// the bottleneck for elastic workloads). QP.Modify returns the cost;
	// host.Thread.CreateQP/ModifyQP charge it as blocked time, so raw
	// nic-level calls in tests stay free.
	CreateQPCost   sim.Duration
	ModifyInitCost sim.Duration // RESET→INIT (also RESET recycle, →ERR)
	ModifyRTRCost  sim.Duration // INIT→RTR (installs peer address/PSN)
	ModifyRTSCost  sim.Duration // RTR→RTS
}

// DefaultConfig returns parameters calibrated against the paper's
// ConnectX-3 generation testbed (see DESIGN.md §4).
func DefaultConfig() Config {
	return Config{
		QPCCacheEntries:  64,
		WQECacheEntries:  64,
		MTTCacheEntries:  2048,
		OutboundBaseCost: 50,
		OutboundUDExtra:  40,
		CacheMissStall:   180,
		InboundWriteCost: 28,
		InboundSendCost:  100,
		InboundReadCost:  60,
		InboundAckCost:   5,
		AtomicCost:       150,
		MaxInline:        188,
		UDMTU:            4096,
		MaxMsg:           2 << 30,
		CQDepth:          1024,
		CreateQPCost:     5000,
		ModifyInitCost:   2000,
		ModifyRTRCost:    10000,
		ModifyRTSCost:    5000,
	}
}

// retryLimit returns the effective RetryCount (zero selects the ibverbs
// default of 7).
func (c Config) retryLimit() int {
	if c.RetryCount > 0 {
		return c.RetryCount
	}
	return 7
}

// rnrRetryLimit returns the effective RNRRetryCount (zero → 7).
func (c Config) rnrRetryLimit() int {
	if c.RNRRetryCount > 0 {
		return c.RNRRetryCount
	}
	return 7
}

// rnrTimeout returns the effective RNRTimeout (zero → 8 µs).
func (c Config) rnrTimeout() sim.Duration {
	if c.RNRTimeout > 0 {
		return c.RNRTimeout
	}
	return 8 * sim.Microsecond
}

// Stats counts NIC-level events.
type Stats struct {
	OutWQEs    uint64
	InMessages uint64
	QPCHits    uint64
	QPCMisses  uint64
	WQEHits    uint64
	WQEMisses  uint64
	MTTHits    uint64
	MTTMisses  uint64
	// QPCTouchHits/Misses count requester-side completion processing
	// (ACKs, READ responses) touching the QP context cache.
	QPCTouchHits   uint64
	QPCTouchMisses uint64
	RNRDrops       uint64 // sends arriving with no posted recv (UD/UC drop; RC NAKs instead)
	UDDrops        uint64 // injected unreliable-datagram losses
	Retransmits    uint64 // retransmitted WQEs, any cause (NAK, timeout, RNR)
	NAKs           uint64 // sequence-gap NAKs sent (responder side)
	DCTConnects    uint64 // DCT context switches (connect packets sent)
	// Per-QP retry machinery (requester side).
	QPRetransmits uint64 // WQEs retransmitted by the timeout/RNR retry path
	RNRNaks       uint64 // RNR NAKs received
	QPErrors      uint64 // QPs that entered the error state
	// Atomic responder path (CAS/FetchAdd against local memory).
	AtomicOps     uint64 // atomics executed against local registered memory
	AtomicReplays uint64 // duplicate atomics answered from the replay cache
	// PayloadMangles counts deliveries whose payload was corrupted past
	// the ICRC (faults-plane CorruptPayload injections committed to memory).
	PayloadMangles uint64
}

// NIC is one simulated RNIC.
type NIC struct {
	Cfg   Config
	Stats Stats

	env  *sim.Env
	id   int
	port *fabric.Port
	fab  *fabric.Fabric
	mem  *memory.Registry
	bus  *pcie.Bus
	llc  *cachesim.Cache
	cost pcie.CostModel
	rng  *stats.RNG

	qps     map[uint32]*QP
	nextQPN uint32

	qpcCache *lruCache
	wqeCache *lruCache
	mttCache *lruCache

	outQ    []outJob
	outHead int
	outBusy bool
	inQ     []*packet
	inHead  int
	inBusy  bool

	watches map[uint32][]*sim.Signal // rkey → signals woken on DMA write

	// pool recycles packets, fabric messages and payload buffers
	// (see pool.go for the ownership contract).
	pool pktPool
	// retransScratch is reused by retransmitFrom's go-back-N splice.
	retransScratch []outJob

	// trace is the telemetry event sink; always non-nil (a disabled sink
	// until Register attaches the NIC to a live registry).
	trace *telemetry.Trace

	// dropNextData, when positive, drops that many incoming RC data
	// packets (fault injection for the retransmission path).
	dropNextData int
}

// Deps bundles the host-side resources a NIC attaches to.
type Deps struct {
	Env  *sim.Env
	Port *fabric.Port
	Fab  *fabric.Fabric
	Mem  *memory.Registry
	Bus  *pcie.Bus
	LLC  *cachesim.Cache
	Cost pcie.CostModel
	RNG  *stats.RNG
}

// New creates a NIC with the given config attached to the supplied host
// resources; it installs itself as the port's delivery handler.
func New(cfg Config, d Deps) *NIC {
	n := &NIC{
		Cfg:     cfg,
		env:     d.Env,
		id:      d.Port.ID,
		port:    d.Port,
		fab:     d.Fab,
		mem:     d.Mem,
		bus:     d.Bus,
		llc:     d.LLC,
		cost:    d.Cost,
		rng:     d.RNG,
		qps:     make(map[uint32]*QP),
		nextQPN: 1,
		watches: make(map[uint32][]*sim.Signal),
		trace:   telemetry.Scope{}.Trace(),
	}
	if cfg.StrictLRUCaches || d.RNG == nil {
		n.qpcCache = newLRU(cfg.QPCCacheEntries)
		n.wqeCache = newLRU(cfg.WQECacheEntries)
		n.mttCache = newLRU(cfg.MTTCacheEntries)
	} else {
		n.qpcCache = newRandomCache(cfg.QPCCacheEntries, d.RNG.Split())
		n.wqeCache = newRandomCache(cfg.WQECacheEntries, d.RNG.Split())
		n.mttCache = newRandomCache(cfg.MTTCacheEntries, d.RNG.Split())
	}
	d.Port.OnDeliver(n.deliver)
	return n
}

// Register publishes the NIC counters into a telemetry scope (conventionally
// "nic<hostID>") and attaches the scope's trace sink for QPC-eviction events.
// The public Stats struct remains the storage; the registry observes the
// fields in place.
func (n *NIC) Register(sc telemetry.Scope) {
	sc.CounterVar("out.wqes", &n.Stats.OutWQEs)
	sc.CounterVar("in.messages", &n.Stats.InMessages)
	sc.CounterVar("qpc.hit", &n.Stats.QPCHits)
	sc.CounterVar("qpc.miss", &n.Stats.QPCMisses)
	sc.CounterVar("wqe.hit", &n.Stats.WQEHits)
	sc.CounterVar("wqe.miss", &n.Stats.WQEMisses)
	sc.CounterVar("mtt.hit", &n.Stats.MTTHits)
	sc.CounterVar("mtt.miss", &n.Stats.MTTMisses)
	sc.CounterVar("qpc.touch.hit", &n.Stats.QPCTouchHits)
	sc.CounterVar("qpc.touch.miss", &n.Stats.QPCTouchMisses)
	sc.CounterVar("rnr.drops", &n.Stats.RNRDrops)
	sc.CounterVar("ud.drops", &n.Stats.UDDrops)
	sc.CounterVar("retransmits", &n.Stats.Retransmits)
	sc.CounterVar("naks", &n.Stats.NAKs)
	sc.CounterVar("dct.connects", &n.Stats.DCTConnects)
	sc.CounterVar("qp.retransmits", &n.Stats.QPRetransmits)
	sc.CounterVar("qp.rnr_naks", &n.Stats.RNRNaks)
	sc.CounterVar("qp.errors", &n.Stats.QPErrors)
	sc.CounterVar("atomic_ops", &n.Stats.AtomicOps)
	sc.CounterVar("qp.atomic_replays", &n.Stats.AtomicReplays)
	sc.CounterVar("payload.mangles", &n.Stats.PayloadMangles)
	n.trace = sc.Trace()
}

// Snapshot returns a copy of the counters.
func (n *NIC) Snapshot() Stats { return n.Stats }

// Reset zeroes the counters.
func (n *NIC) Reset() { n.Stats = Stats{} }

// ID returns the NIC's fabric port id.
func (n *NIC) ID() int { return n.id }

// Env returns the simulation environment.
func (n *NIC) Env() *sim.Env { return n.env }

// Mem returns the host memory registry this NIC translates against.
func (n *NIC) Mem() *memory.Registry { return n.mem }

// WatchRegion registers sig to be woken whenever the NIC DMA-writes into
// the region identified by rkey. This stands in for the cache-coherent
// memory polling a real server does in a tight loop: the simulated poller
// still pays the modelled scan cost, but does not burn simulator events
// while the region is quiet.
func (n *NIC) WatchRegion(rkey uint32, sig *sim.Signal) {
	n.watches[rkey] = append(n.watches[rkey], sig)
}

// DropNextDataPackets arranges for the next k incoming RC data packets to
// be dropped — fault injection for testing the NAK/retransmit path.
func (n *NIC) DropNextDataPackets(k int) { n.dropNextData += k }

// CacheHitRates returns the outbound QPC, WQE and MTT hit rates. The QPC
// rate covers send-side lookups only; completion-side touches are counted
// separately in Stats.QPCTouch*.
func (n *NIC) CacheHitRates() (qpc, wqe, mtt float64) {
	qpc = ratio(n.Stats.QPCHits, n.Stats.QPCMisses)
	return qpc, n.wqeCache.HitRate(), n.mttCache.HitRate()
}

func ratio(hit, miss uint64) float64 {
	if hit+miss == 0 {
		return 0
	}
	return float64(hit) / float64(hit+miss)
}

func (n *NIC) allocQPN() uint32 {
	q := n.nextQPN
	n.nextQPN++
	return q
}

// mttKey builds the MTT cache key for a page of a protection key.
func mttKey(key uint32, page int) uint64 {
	return uint64(key)<<32 | uint64(uint32(page))
}

// chargeMTT looks up the page translations spanned by [addr,addr+size) of
// region r and returns the added occupancy for misses.
func (n *NIC) chargeMTT(r *memory.Region, addr uint64, size int) sim.Duration {
	var extra sim.Duration
	first := r.PageOf(addr)
	last := first
	if size > 0 {
		last = r.PageOf(addr + uint64(size) - 1)
	}
	for p := first; p <= last; p++ {
		if n.mttCache.Access(mttKey(r.RKey, p)) {
			n.Stats.MTTHits++
		} else {
			n.Stats.MTTMisses++
			n.bus.RecordDMARead(1)
			extra += n.Cfg.CacheMissStall
		}
	}
	return extra
}

func (n *NIC) wakeWatches(rkey uint32) {
	for _, s := range n.watches[rkey] {
		s.Broadcast()
	}
}

func (n *NIC) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("nic %d: %s", n.id, fmt.Sprintf(format, args...))
}
