package nic_test

import (
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/sim"
)

// TestTimeoutRecoversFinalPacketLoss loses the *last* (and only) packet of
// the send window. No later packet arrives to trigger a NAK, so only the
// requester's retransmit timeout can recover — the case that hangs forever
// with the timer disabled.
func TestTimeoutRecoversFinalPacketLoss(t *testing.T) {
	pe := newPair(t, nic.RC)
	a := pe.c.Hosts[0].NIC
	a.Cfg.RetransmitTimeout = 5 * sim.Microsecond
	pe.c.Hosts[1].NIC.DropNextDataPackets(1)
	copy(pe.cli.Bytes(), "lost+found")
	if err := pe.qpA.PostSend(nic.SendWR{WRID: 1, Op: nic.OpWrite, Signaled: true,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: 10,
		RKey: pe.srv.RKey, RAddr: pe.srv.Base}); err != nil {
		t.Fatal(err)
	}
	end := pe.c.Env.Run()
	if got := string(pe.srv.Bytes()[:10]); got != "lost+found" {
		t.Fatalf("server memory = %q after timeout recovery", got)
	}
	cqes := pe.cqA.Poll(4)
	if len(cqes) != 1 || cqes[0].Status != nic.CQOK {
		t.Fatalf("cqes = %+v, want one CQOK", cqes)
	}
	if a.Stats.QPRetransmits < 1 {
		t.Fatalf("QPRetransmits = %d, want ≥1", a.Stats.QPRetransmits)
	}
	if end < sim.Time(5*sim.Microsecond) {
		t.Fatalf("completed at %d ns, before the first timeout could fire", end)
	}
	if qerr := pe.qpA.Err(); qerr != nil {
		t.Fatalf("one drop must not error the QP: %v", qerr)
	}
}

// TestRetryExhaustionErrorsQP writes into a destroyed peer QP with the
// retransmit timer armed: after RetryCount fruitless timeouts the QP must
// enter the error state, complete the WQE with CQRetryExceeded, and reject
// further posts — and the run must terminate (no timer leak).
func TestRetryExhaustionErrorsQP(t *testing.T) {
	cfg := cluster.Default(2)
	cfg.NIC.RetransmitTimeout = 5 * sim.Microsecond
	cfg.NIC.RetryCount = 2
	c := cluster.New(cfg)
	defer c.Close()
	a, b := c.Hosts[0], c.Hosts[1]
	cqA := a.NIC.CreateCQ()
	qa := a.NIC.CreateQP(nic.RC, cqA, cqA)
	cqB := b.NIC.CreateCQ()
	qb := b.NIC.CreateQP(nic.RC, cqB, cqB)
	nic.Connect(qa, qb)
	src := a.Mem.Register(64, memory.PageSize4K, memory.LocalWrite)
	dst := b.Mem.Register(64, memory.PageSize4K, memory.LocalWrite|memory.RemoteWrite)
	b.NIC.DestroyQP(qb)
	qa.PostSend(nic.SendWR{WRID: 5, Op: nic.OpWrite, Signaled: true,
		LKey: src.LKey, LAddr: src.Base, Len: 8,
		RKey: dst.RKey, RAddr: dst.Base})
	c.Env.Run()
	cqes := cqA.Poll(4)
	if len(cqes) != 1 || cqes[0].WRID != 5 || cqes[0].Status != nic.CQRetryExceeded {
		t.Fatalf("cqes = %+v, want one CQRetryExceeded for WRID 5", cqes)
	}
	if qa.Err() == nil {
		t.Fatal("QP not in error state after retry exhaustion")
	}
	if err := qa.PostSend(nic.SendWR{Op: nic.OpWrite, LKey: src.LKey, LAddr: src.Base, Len: 8,
		RKey: dst.RKey, RAddr: dst.Base}); err == nil {
		t.Fatal("PostSend on an errored QP must fail")
	}
	if a.NIC.Stats.QPErrors != 1 {
		t.Fatalf("QPErrors = %d, want 1", a.NIC.Stats.QPErrors)
	}
}

// TestRnrNakBackoffAndRecovery sends into an empty receive queue: the
// responder must RNR-NAK without advancing its PSN, and the requester must
// replay after the RNR backoff once a buffer is finally posted.
func TestRnrNakBackoffAndRecovery(t *testing.T) {
	pe := newPair(t, nic.RC)
	a := pe.c.Hosts[0].NIC
	copy(pe.cli.Bytes(), "patience")
	if err := pe.qpA.PostSend(nic.SendWR{WRID: 2, Op: nic.OpSend, Signaled: true,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: 8}); err != nil {
		t.Fatal(err)
	}
	// The receive buffer shows up only after the first RNR NAK went out
	// (default backoff 8µs; the send reaches host 1 in ~2µs).
	pe.c.Env.SpawnAt(5*sim.Microsecond, "late-recv", func(p *sim.Proc) {
		pe.qpB.PostRecv(nic.RecvWR{WRID: 9, LKey: pe.srv.LKey, LAddr: pe.srv.Base, Len: 64})
	})
	pe.c.Env.Run()
	recv := pe.rcqB.Poll(4)
	if len(recv) != 1 || recv[0].WRID != 9 || recv[0].Status != nic.CQOK {
		t.Fatalf("recv cqes = %+v, want one CQOK for WRID 9", recv)
	}
	if got := string(pe.srv.Bytes()[:8]); got != "patience" {
		t.Fatalf("payload = %q after RNR replay", got)
	}
	send := pe.cqA.Poll(4)
	if len(send) != 1 || send[0].Status != nic.CQOK {
		t.Fatalf("send cqes = %+v, want one CQOK", send)
	}
	if a.Stats.RNRNaks < 1 {
		t.Fatalf("RNRNaks = %d, want ≥1", a.Stats.RNRNaks)
	}
	if a.Stats.QPRetransmits < 1 {
		t.Fatalf("QPRetransmits = %d, want ≥1 (the RNR replay)", a.Stats.QPRetransmits)
	}
	if pe.qpA.Err() != nil {
		t.Fatal("QP errored on a recoverable RNR episode")
	}
}

// TestRnrRetryExhaustion never posts the receive buffer: after RNRRetryCount
// backoff rounds the requester must give up with CQRNRRetryExceeded.
func TestRnrRetryExhaustion(t *testing.T) {
	pe := newPair(t, nic.RC)
	a := pe.c.Hosts[0].NIC
	a.Cfg.RNRRetryCount = 2
	a.Cfg.RNRTimeout = 2 * sim.Microsecond
	if err := pe.qpA.PostSend(nic.SendWR{WRID: 3, Op: nic.OpSend, Signaled: true,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: 8}); err != nil {
		t.Fatal(err)
	}
	pe.c.Env.Run()
	cqes := pe.cqA.Poll(4)
	if len(cqes) != 1 || cqes[0].WRID != 3 || cqes[0].Status != nic.CQRNRRetryExceeded {
		t.Fatalf("cqes = %+v, want one CQRNRRetryExceeded", cqes)
	}
	if pe.qpA.Err() == nil {
		t.Fatal("QP not in error state after RNR exhaustion")
	}
	// Initial NAK + 2 retries, all NAKed.
	if a.Stats.RNRNaks != 3 {
		t.Fatalf("RNRNaks = %d, want 3", a.Stats.RNRNaks)
	}
}

// TestNakRetransmitStillWorksWithTimerArmed re-runs the burst-loss recovery
// with the timeout enabled: the gap-NAK fast path must win the race and the
// late timer must not inject duplicate work that breaks sequencing.
func TestNakRetransmitStillWorksWithTimerArmed(t *testing.T) {
	pe := newPair(t, nic.RC)
	pe.c.Hosts[0].NIC.Cfg.RetransmitTimeout = 20 * sim.Microsecond
	pe.c.Hosts[1].NIC.DropNextDataPackets(3)
	for i := 0; i < 12; i++ {
		pe.cli.Bytes()[i] = byte(i + 1)
		pe.qpA.PostSend(nic.SendWR{WRID: uint64(i), Op: nic.OpWrite, Signaled: true,
			LKey: pe.cli.LKey, LAddr: pe.cli.Base + uint64(i), Len: 1,
			RKey: pe.srv.RKey, RAddr: pe.srv.Base + uint64(i)})
	}
	pe.c.Env.Run()
	for i := 0; i < 12; i++ {
		if pe.srv.Bytes()[i] != byte(i+1) {
			t.Fatalf("slot %d = %d after NAK recovery", i, pe.srv.Bytes()[i])
		}
	}
	if got := pe.cqA.Len(); got != 12 {
		t.Fatalf("completions = %d, want 12", got)
	}
	if pe.qpA.Err() != nil {
		t.Fatal("QP errored during ordinary NAK recovery")
	}
}
