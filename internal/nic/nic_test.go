package nic_test

import (
	"encoding/binary"
	"errors"
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/rpcwire"
	"scalerpc/internal/sim"
)

// pair builds a 2-host cluster with a connected QP pair of the given type
// and a remotely writable/readable region on host 1.
type pairEnv struct {
	c          *cluster.Cluster
	qpA, qpB   *nic.QP
	cqA, cqB   *nic.CQ
	rcqA, rcqB *nic.CQ
	srv        *memory.Region // on host 1
	cli        *memory.Region // on host 0
}

func newPair(t *testing.T, typ nic.QPType) *pairEnv {
	t.Helper()
	c := cluster.New(cluster.Default(2))
	a, b := c.Hosts[0], c.Hosts[1]
	pe := &pairEnv{
		c:   c,
		cqA: a.NIC.CreateCQ(), rcqA: a.NIC.CreateCQ(),
		cqB: b.NIC.CreateCQ(), rcqB: b.NIC.CreateCQ(),
	}
	pe.qpA = a.NIC.CreateQP(typ, pe.cqA, pe.rcqA)
	pe.qpB = b.NIC.CreateQP(typ, pe.cqB, pe.rcqB)
	if typ != nic.UD {
		if err := nic.Connect(pe.qpA, pe.qpB); err != nil {
			t.Fatal(err)
		}
	}
	pe.srv = b.Mem.Register(1<<20, memory.PageSize2M,
		memory.LocalWrite|memory.RemoteRead|memory.RemoteWrite|memory.RemoteAtomic)
	pe.cli = a.Mem.Register(1<<20, memory.PageSize2M,
		memory.LocalWrite|memory.RemoteRead|memory.RemoteWrite)
	t.Cleanup(c.Close)
	return pe
}

func TestRCWriteDeliversDataAndCompletion(t *testing.T) {
	pe := newPair(t, nic.RC)
	copy(pe.cli.Bytes(), "hello rdma")
	err := pe.qpA.PostSend(nic.SendWR{
		WRID: 7, Op: nic.OpWrite, Signaled: true,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: 10,
		RKey: pe.srv.RKey, RAddr: pe.srv.Base + 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	pe.c.Env.Run()
	if got := string(pe.srv.Bytes()[64:74]); got != "hello rdma" {
		t.Fatalf("server memory = %q", got)
	}
	cqes := pe.cqA.Poll(10)
	if len(cqes) != 1 {
		t.Fatalf("completions = %d, want 1 (write is acked)", len(cqes))
	}
	if cqes[0].WRID != 7 || cqes[0].Status != nic.CQOK || cqes[0].Op != nic.OpWrite {
		t.Fatalf("cqe = %+v", cqes[0])
	}
}

func TestRCWriteLatencyIsPlausible(t *testing.T) {
	pe := newPair(t, nic.RC)
	pe.qpA.PostSend(nic.SendWR{Op: nic.OpWrite, Signaled: true,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: 32,
		RKey: pe.srv.RKey, RAddr: pe.srv.Base})
	end := pe.c.Env.Run()
	// One-way ≈ engine 50 + QPC/WQE misses 800 + payload DMA 400 + wire
	// ~310; ack adds another ~310 + 5. Expect a couple of microseconds.
	if end < 1000 || end > 4000 {
		t.Fatalf("write completion at %d ns, want 1–4 µs", end)
	}
}

func TestUnsignaledWriteNoCompletion(t *testing.T) {
	pe := newPair(t, nic.RC)
	pe.qpA.PostSend(nic.SendWR{Op: nic.OpWrite,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: 8,
		RKey: pe.srv.RKey, RAddr: pe.srv.Base})
	pe.c.Env.Run()
	if n := pe.cqA.Len(); n != 0 {
		t.Fatalf("unsignaled write produced %d completions", n)
	}
}

func TestRCWriteImmConsumesRecvAndDeliversImm(t *testing.T) {
	pe := newPair(t, nic.RC)
	pe.qpB.PostRecv(nic.RecvWR{WRID: 42})
	copy(pe.cli.Bytes(), "imm")
	pe.qpA.PostSend(nic.SendWR{Op: nic.OpWriteImm, Imm: 0xdead,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: 3,
		RKey: pe.srv.RKey, RAddr: pe.srv.Base})
	pe.c.Env.Run()
	cqes := pe.rcqB.Poll(10)
	if len(cqes) != 1 {
		t.Fatalf("recv completions = %d, want 1", len(cqes))
	}
	e := cqes[0]
	if e.WRID != 42 || !e.ImmValid || e.Imm != 0xdead || e.ByteLen != 3 {
		t.Fatalf("cqe = %+v", e)
	}
	if string(pe.srv.Bytes()[:3]) != "imm" {
		t.Fatal("payload not written")
	}
}

func TestRCSendRecv(t *testing.T) {
	pe := newPair(t, nic.RC)
	recvBuf := pe.c.Hosts[1].Mem.Register(4096, memory.PageSize4K, memory.LocalWrite)
	pe.qpB.PostRecv(nic.RecvWR{WRID: 1, LKey: recvBuf.LKey, LAddr: recvBuf.Base, Len: 4096})
	copy(pe.cli.Bytes(), "two-sided")
	pe.qpA.PostSend(nic.SendWR{WRID: 2, Op: nic.OpSend, Signaled: true,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: 9})
	pe.c.Env.Run()
	if got := string(recvBuf.Bytes()[:9]); got != "two-sided" {
		t.Fatalf("recv buffer = %q", got)
	}
	if n := pe.rcqB.Len(); n != 1 {
		t.Fatalf("recv CQ has %d entries", n)
	}
	if n := pe.cqA.Len(); n != 1 {
		t.Fatalf("send CQ has %d entries (RC send must be acked)", n)
	}
}

func TestRCRead(t *testing.T) {
	pe := newPair(t, nic.RC)
	copy(pe.srv.Bytes()[128:], "remote-data")
	pe.qpA.PostSend(nic.SendWR{WRID: 9, Op: nic.OpRead, Signaled: true,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base + 512, Len: 11,
		RKey: pe.srv.RKey, RAddr: pe.srv.Base + 128})
	pe.c.Env.Run()
	if got := string(pe.cli.Bytes()[512 : 512+11]); got != "remote-data" {
		t.Fatalf("read returned %q", got)
	}
	cqes := pe.cqA.Poll(10)
	if len(cqes) != 1 || cqes[0].Status != nic.CQOK || cqes[0].ByteLen != 11 {
		t.Fatalf("cqes = %+v", cqes)
	}
}

func TestAtomicCompareSwap(t *testing.T) {
	pe := newPair(t, nic.RC)
	binary.LittleEndian.PutUint64(pe.srv.Bytes()[:8], 100)
	pe.qpA.PostSend(nic.SendWR{WRID: 1, Op: nic.OpCompSwap, Signaled: true,
		RKey: pe.srv.RKey, RAddr: pe.srv.Base, Compare: 100, Swap: 777})
	pe.c.Env.Run()
	if v := binary.LittleEndian.Uint64(pe.srv.Bytes()[:8]); v != 777 {
		t.Fatalf("CAS result = %d, want 777", v)
	}
	cqes := pe.cqA.Poll(1)
	if len(cqes) != 1 || cqes[0].AtomicOld != 100 {
		t.Fatalf("cqes = %+v", cqes)
	}
	// Failing CAS: compare mismatches, memory unchanged, old value returned.
	pe.qpA.PostSend(nic.SendWR{WRID: 2, Op: nic.OpCompSwap, Signaled: true,
		RKey: pe.srv.RKey, RAddr: pe.srv.Base, Compare: 100, Swap: 1})
	pe.c.Env.Run()
	if v := binary.LittleEndian.Uint64(pe.srv.Bytes()[:8]); v != 777 {
		t.Fatalf("failed CAS modified memory: %d", v)
	}
	cqes = pe.cqA.Poll(1)
	if len(cqes) != 1 || cqes[0].AtomicOld != 777 {
		t.Fatalf("cqes = %+v", cqes)
	}
}

func TestAtomicFetchAdd(t *testing.T) {
	pe := newPair(t, nic.RC)
	binary.LittleEndian.PutUint64(pe.srv.Bytes()[:8], 5)
	for i := 0; i < 3; i++ {
		pe.qpA.PostSend(nic.SendWR{Op: nic.OpFetchAdd, Signaled: true,
			RKey: pe.srv.RKey, RAddr: pe.srv.Base, Add: 10})
	}
	pe.c.Env.Run()
	if v := binary.LittleEndian.Uint64(pe.srv.Bytes()[:8]); v != 35 {
		t.Fatalf("FAA result = %d, want 35", v)
	}
	cqes := pe.cqA.Poll(10)
	if len(cqes) != 3 {
		t.Fatalf("completions = %d", len(cqes))
	}
	if cqes[0].AtomicOld != 5 || cqes[1].AtomicOld != 15 || cqes[2].AtomicOld != 25 {
		t.Fatalf("old values: %d %d %d", cqes[0].AtomicOld, cqes[1].AtomicOld, cqes[2].AtomicOld)
	}
}

func TestUDSendRecv(t *testing.T) {
	pe := newPair(t, nic.UD)
	recvBuf := pe.c.Hosts[1].Mem.Register(4096, memory.PageSize4K, memory.LocalWrite)
	pe.qpB.PostRecv(nic.RecvWR{WRID: 1, LKey: recvBuf.LKey, LAddr: recvBuf.Base, Len: 4096})
	copy(pe.cli.Bytes(), "datagram")
	err := pe.qpA.PostSend(nic.SendWR{Op: nic.OpSend, Signaled: true,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: 8,
		DstNIC: 1, DstQPN: pe.qpB.QPN})
	if err != nil {
		t.Fatal(err)
	}
	pe.c.Env.Run()
	if got := string(recvBuf.Bytes()[:8]); got != "datagram" {
		t.Fatalf("recv = %q", got)
	}
	cqes := pe.rcqB.Poll(1)
	if len(cqes) != 1 {
		t.Fatal("no recv completion")
	}
	if cqes[0].SrcNIC != 0 || cqes[0].SrcQPN != pe.qpA.QPN {
		t.Fatalf("source info = %+v", cqes[0])
	}
}

func TestUDSendWithNoRecvIsDropped(t *testing.T) {
	pe := newPair(t, nic.UD)
	pe.qpA.PostSend(nic.SendWR{Op: nic.OpSend,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: 8,
		DstNIC: 1, DstQPN: pe.qpB.QPN})
	pe.c.Env.Run()
	if pe.c.Hosts[1].NIC.Stats.RNRDrops != 1 {
		t.Fatalf("RNRDrops = %d, want 1", pe.c.Hosts[1].NIC.Stats.RNRDrops)
	}
	if pe.qpB.Err() != nil {
		t.Fatal("UD recv underrun must not error the QP")
	}
}

// Table 1 conformance: verbs × transport modes.
func TestTable1VerbMatrix(t *testing.T) {
	cases := []struct {
		typ nic.QPType
		op  nic.Op
		ok  bool
	}{
		{nic.RC, nic.OpSend, true},
		{nic.RC, nic.OpWrite, true},
		{nic.RC, nic.OpWriteImm, true},
		{nic.RC, nic.OpRead, true},
		{nic.RC, nic.OpCompSwap, true},
		{nic.RC, nic.OpFetchAdd, true},
		{nic.UC, nic.OpSend, true},
		{nic.UC, nic.OpWrite, true},
		{nic.UC, nic.OpWriteImm, true},
		{nic.UC, nic.OpRead, false},
		{nic.UC, nic.OpCompSwap, false},
		{nic.UC, nic.OpFetchAdd, false},
		{nic.UD, nic.OpSend, true},
		{nic.UD, nic.OpWrite, false},
		{nic.UD, nic.OpWriteImm, false},
		{nic.UD, nic.OpRead, false},
		{nic.UD, nic.OpCompSwap, false},
		{nic.UD, nic.OpFetchAdd, false},
	}
	for _, tc := range cases {
		pe := newPair(t, tc.typ)
		wr := nic.SendWR{Op: tc.op, LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: 8,
			RKey: pe.srv.RKey, RAddr: pe.srv.Base, DstNIC: 1, DstQPN: pe.qpB.QPN}
		err := pe.qpA.PostSend(wr)
		if tc.ok && err != nil {
			t.Errorf("%v %v: unexpected error %v", tc.typ, tc.op, err)
		}
		if !tc.ok && !errors.Is(err, nic.ErrVerbUnsupported) {
			t.Errorf("%v %v: err = %v, want ErrVerbUnsupported", tc.typ, tc.op, err)
		}
		pe.c.Env.Run()
	}
}

// Table 1 conformance: MTU limits (UD 4 KB, RC/UC 2 GB).
func TestTable1MTULimits(t *testing.T) {
	pe := newPair(t, nic.UD)
	err := pe.qpA.PostSend(nic.SendWR{Op: nic.OpSend, Len: 4097,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, DstNIC: 1, DstQPN: pe.qpB.QPN})
	if !errors.Is(err, nic.ErrMTU) {
		t.Fatalf("UD 4097B: err = %v, want ErrMTU", err)
	}
	err = pe.qpA.PostSend(nic.SendWR{Op: nic.OpSend, Len: 4096,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, DstNIC: 1, DstQPN: pe.qpB.QPN})
	if errors.Is(err, nic.ErrMTU) {
		t.Fatal("UD 4096B must be allowed")
	}
	pe.c.Env.Run()

	rc := newPair(t, nic.RC)
	err = rc.qpA.PostSend(nic.SendWR{Op: nic.OpWrite, Len: (2 << 30) + 1,
		LKey: rc.cli.LKey, LAddr: rc.cli.Base, RKey: rc.srv.RKey, RAddr: rc.srv.Base})
	if !errors.Is(err, nic.ErrMTU) {
		t.Fatalf("RC >2GB: err = %v, want ErrMTU", err)
	}
}

func TestInlineTooLargeRejected(t *testing.T) {
	pe := newPair(t, nic.RC)
	err := pe.qpA.PostSend(nic.SendWR{Op: nic.OpWrite, Inline: true, Len: 189,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, RKey: pe.srv.RKey, RAddr: pe.srv.Base})
	if !errors.Is(err, nic.ErrInlineTooLarge) {
		t.Fatalf("err = %v, want ErrInlineTooLarge", err)
	}
}

func TestInlineCapturesAtPostTime(t *testing.T) {
	pe := newPair(t, nic.RC)
	copy(pe.cli.Bytes(), "AAAA")
	pe.qpA.PostSend(nic.SendWR{Op: nic.OpWrite, Inline: true, Len: 4,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base,
		RKey: pe.srv.RKey, RAddr: pe.srv.Base})
	// Scribble over the source immediately after posting: the inline copy
	// must not see it.
	copy(pe.cli.Bytes(), "BBBB")
	pe.c.Env.Run()
	if got := string(pe.srv.Bytes()[:4]); got != "AAAA" {
		t.Fatalf("inline payload = %q, want AAAA (captured at post)", got)
	}
}

func TestUnconnectedRCRejected(t *testing.T) {
	c := cluster.New(cluster.Default(1))
	defer c.Close()
	cq := c.Hosts[0].NIC.CreateCQ()
	qp := c.Hosts[0].NIC.CreateQP(nic.RC, cq, cq)
	err := qp.PostSend(nic.SendWR{Op: nic.OpWrite})
	if !errors.Is(err, nic.ErrNotConnected) {
		t.Fatalf("err = %v, want ErrNotConnected", err)
	}
}

func TestRemoteAccessViolationErrorsQP(t *testing.T) {
	pe := newPair(t, nic.RC)
	ro := pe.c.Hosts[1].Mem.Register(4096, memory.PageSize4K, memory.RemoteRead)
	pe.qpA.PostSend(nic.SendWR{WRID: 3, Op: nic.OpWrite, Signaled: true,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: 8,
		RKey: ro.RKey, RAddr: ro.Base})
	pe.c.Env.Run()
	cqes := pe.cqA.Poll(10)
	if len(cqes) != 1 || cqes[0].Status != nic.CQRemoteAccessError {
		t.Fatalf("cqes = %+v, want remote access error", cqes)
	}
	if pe.qpA.Err() == nil {
		t.Fatal("QP must enter error state")
	}
	if err := pe.qpA.PostSend(nic.SendWR{Op: nic.OpWrite}); err == nil {
		t.Fatal("posting on errored QP must fail")
	}
}

func TestRCOrderingManyWrites(t *testing.T) {
	pe := newPair(t, nic.RC)
	// 100 writes to consecutive slots; all must land, last-writer-wins per
	// slot, and completions arrive in post order.
	for i := 0; i < 100; i++ {
		pe.cli.Bytes()[i] = byte(i + 1)
		pe.qpA.PostSend(nic.SendWR{WRID: uint64(i), Op: nic.OpWrite, Signaled: true,
			LKey: pe.cli.LKey, LAddr: pe.cli.Base + uint64(i), Len: 1,
			RKey: pe.srv.RKey, RAddr: pe.srv.Base + uint64(i)})
	}
	pe.c.Env.Run()
	for i := 0; i < 100; i++ {
		if pe.srv.Bytes()[i] != byte(i+1) {
			t.Fatalf("slot %d = %d", i, pe.srv.Bytes()[i])
		}
	}
	cqes := pe.cqA.Poll(200)
	if len(cqes) != 100 {
		t.Fatalf("completions = %d", len(cqes))
	}
	for i, e := range cqes {
		if e.WRID != uint64(i) {
			t.Fatalf("completion %d has WRID %d (order violated)", i, e.WRID)
		}
	}
}

func TestRCRetransmitAfterDrop(t *testing.T) {
	pe := newPair(t, nic.RC)
	// Drop the first data packet at the receiver; the NAK/retransmit path
	// must recover and preserve ordering.
	pe.c.Hosts[1].NIC.DropNextDataPackets(1)
	for i := 0; i < 10; i++ {
		pe.cli.Bytes()[i] = byte(0x40 + i)
		pe.qpA.PostSend(nic.SendWR{WRID: uint64(i), Op: nic.OpWrite, Signaled: true,
			LKey: pe.cli.LKey, LAddr: pe.cli.Base + uint64(i), Len: 1,
			RKey: pe.srv.RKey, RAddr: pe.srv.Base + uint64(i)})
	}
	pe.c.Env.Run()
	for i := 0; i < 10; i++ {
		if pe.srv.Bytes()[i] != byte(0x40+i) {
			t.Fatalf("slot %d = %#x after retransmit", i, pe.srv.Bytes()[i])
		}
	}
	if pe.cqA.Len() != 10 {
		t.Fatalf("completions = %d, want 10", pe.cqA.Len())
	}
	st := pe.c.Hosts[0].NIC.Stats
	if st.Retransmits == 0 {
		t.Fatal("no retransmissions recorded")
	}
	if pe.c.Hosts[1].NIC.Stats.NAKs == 0 {
		t.Fatal("no NAK recorded")
	}
}

func TestUDLossDropsSilently(t *testing.T) {
	cfg := cluster.Default(2)
	cfg.NIC.UDLossRate = 1.0 // drop everything
	c := cluster.New(cfg)
	defer c.Close()
	a, b := c.Hosts[0], c.Hosts[1]
	cqA, cqB := a.NIC.CreateCQ(), b.NIC.CreateCQ()
	qa := a.NIC.CreateQP(nic.UD, cqA, cqA)
	qb := b.NIC.CreateQP(nic.UD, cqB, cqB)
	buf := a.Mem.Register(64, memory.PageSize4K, memory.LocalWrite)
	rbuf := b.Mem.Register(64, memory.PageSize4K, memory.LocalWrite)
	qb.PostRecv(nic.RecvWR{LKey: rbuf.LKey, LAddr: rbuf.Base, Len: 64})
	qa.PostSend(nic.SendWR{Op: nic.OpSend, LKey: buf.LKey, LAddr: buf.Base, Len: 8,
		DstNIC: 1, DstQPN: qb.QPN})
	c.Env.Run()
	if b.NIC.Stats.UDDrops != 1 {
		t.Fatalf("UDDrops = %d, want 1", b.NIC.Stats.UDDrops)
	}
	if cqB.Len() != 0 {
		t.Fatal("dropped datagram produced a completion")
	}
}

func TestQPCCacheThrashing(t *testing.T) {
	// With more QPs than QPC cache entries, round-robin posting must miss
	// almost always; with few QPs it must hit almost always.
	run := func(numQPs int) (hitRate float64, rdCur uint64) {
		c := cluster.New(cluster.Default(2))
		defer c.Close()
		a, b := c.Hosts[0], c.Hosts[1]
		cq := a.NIC.CreateCQ()
		cqB := b.NIC.CreateCQ()
		loc := a.Mem.Register(4096, memory.PageSize4K, memory.LocalWrite)
		rem := b.Mem.Register(1<<20, memory.PageSize2M, memory.LocalWrite|memory.RemoteWrite)
		var qps []*nic.QP
		for i := 0; i < numQPs; i++ {
			qa := a.NIC.CreateQP(nic.RC, cq, cq)
			qb := b.NIC.CreateQP(nic.RC, cqB, cqB)
			nic.Connect(qa, qb)
			qps = append(qps, qa)
		}
		for round := 0; round < 20; round++ {
			for _, qp := range qps {
				qp.PostSend(nic.SendWR{Op: nic.OpWrite,
					LKey: loc.LKey, LAddr: loc.Base, Len: 32,
					RKey: rem.RKey, RAddr: rem.Base})
			}
			c.Env.Run()
		}
		qpc, _, _ := a.NIC.CacheHitRates()
		return qpc, a.Bus.Snapshot().PCIeRdCur
	}
	hot, rdHot := run(8)
	cold, rdCold := run(256) // QPC cache holds 64
	if hot < 0.8 {
		t.Fatalf("8 QPs: QPC hit rate %.2f, want > 0.8", hot)
	}
	if cold > 0.2 {
		t.Fatalf("256 QPs: QPC hit rate %.2f, want < 0.2 (thrash)", cold)
	}
	if rdCold <= rdHot*2 {
		t.Fatalf("PCIe reads under thrash (%d) should far exceed hot case (%d)", rdCold, rdHot)
	}
}

func TestMTTHugePagesVs4K(t *testing.T) {
	// Writing across a large region registered with 4 KB pages must churn
	// the MTT cache far more than the same region on 2 MB pages.
	run := func(pageSize int) uint64 {
		c := cluster.New(cluster.Default(2))
		defer c.Close()
		a, b := c.Hosts[0], c.Hosts[1]
		cq := a.NIC.CreateCQ()
		cqB := b.NIC.CreateCQ()
		qa := a.NIC.CreateQP(nic.RC, cq, cq)
		qb := b.NIC.CreateQP(nic.RC, cqB, cqB)
		nic.Connect(qa, qb)
		loc := a.Mem.Register(4096, memory.PageSize4K, memory.LocalWrite)
		rem := b.Mem.Register(64<<20, pageSize, memory.LocalWrite|memory.RemoteWrite)
		// Scatter writes over 16 K distinct pages' worth of addresses.
		for i := 0; i < 4096; i++ {
			addr := rem.Base + uint64(i*16011)%uint64(rem.Len()-64)
			qa.PostSend(nic.SendWR{Op: nic.OpWrite,
				LKey: loc.LKey, LAddr: loc.Base, Len: 32,
				RKey: rem.RKey, RAddr: addr})
			if i%64 == 0 {
				c.Env.Run()
			}
		}
		c.Env.Run()
		return b.NIC.Stats.MTTMisses
	}
	miss4k := run(memory.PageSize4K)
	missHuge := run(memory.PageSize2M)
	if miss4k < missHuge*10 {
		t.Fatalf("4K misses %d vs huge misses %d: expected ≥10×", miss4k, missHuge)
	}
}

func TestWatchRegionWakesOnDMAWrite(t *testing.T) {
	pe := newPair(t, nic.RC)
	sig := sim.NewSignal(pe.c.Env)
	pe.c.Hosts[1].NIC.WatchRegion(pe.srv.RKey, sig)
	woken := false
	pe.c.Env.Spawn("waiter", func(p *sim.Proc) {
		sig.Wait(p)
		woken = true
		// Data must be visible when the watch fires.
		if pe.srv.Bytes()[0] != 'X' {
			t.Error("watch fired before data visible")
		}
	})
	pe.cli.Bytes()[0] = 'X'
	pe.qpA.PostSend(nic.SendWR{Op: nic.OpWrite,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: 1,
		RKey: pe.srv.RKey, RAddr: pe.srv.Base})
	pe.c.Env.Run()
	if !woken {
		t.Fatal("watch signal never fired")
	}
}

func TestPCIeCountersOnWrite(t *testing.T) {
	pe := newPair(t, nic.RC)
	before := pe.c.Hosts[1].Bus.Snapshot()
	// 64-byte aligned write: exactly one full-line device write.
	pe.qpA.PostSend(nic.SendWR{Op: nic.OpWrite,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: 64,
		RKey: pe.srv.RKey, RAddr: pe.srv.Base})
	pe.c.Env.Run()
	d := pe.c.Hosts[1].Bus.Snapshot().Sub(before)
	if d.ItoM < 1 {
		t.Fatalf("ItoM = %d, want ≥1 full-line write", d.ItoM)
	}
	// 8-byte write: one partial line (RFO).
	before = pe.c.Hosts[1].Bus.Snapshot()
	pe.qpA.PostSend(nic.SendWR{Op: nic.OpWrite,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: 8,
		RKey: pe.srv.RKey, RAddr: pe.srv.Base + 4096})
	pe.c.Env.Run()
	d = pe.c.Hosts[1].Bus.Snapshot().Sub(before)
	if d.RFO != 1 {
		t.Fatalf("RFO = %d, want 1 partial-line write", d.RFO)
	}
	// Sender side: payload DMA read recorded.
	if pe.c.Hosts[0].Bus.Snapshot().PCIeRdCur == 0 {
		t.Fatal("sender recorded no DMA reads")
	}
}

func TestConnectRejectsUDAndMismatched(t *testing.T) {
	c := cluster.New(cluster.Default(2))
	defer c.Close()
	cqA, cqB := c.Hosts[0].NIC.CreateCQ(), c.Hosts[1].NIC.CreateCQ()
	ud := c.Hosts[0].NIC.CreateQP(nic.UD, cqA, cqA)
	rc := c.Hosts[1].NIC.CreateQP(nic.RC, cqB, cqB)
	if err := nic.Connect(ud, rc); err == nil {
		t.Fatal("connecting UD must fail")
	}
	uc := c.Hosts[0].NIC.CreateQP(nic.UC, cqA, cqA)
	if err := nic.Connect(uc, rc); err == nil {
		t.Fatal("connecting UC to RC must fail")
	}
}

func TestTornWriteValidByteCommitsLast(t *testing.T) {
	// With torn writes enabled, a poller between the two commit steps must
	// see the final byte still unset — the property the paper's
	// right-aligned layout (trailing Valid byte) depends on.
	cfg := cluster.Default(2)
	cfg.NIC.TornWriteDelay = 500
	c := cluster.New(cfg)
	defer c.Close()
	a, b := c.Hosts[0], c.Hosts[1]
	cqA := a.NIC.CreateCQ()
	qa := a.NIC.CreateQP(nic.RC, cqA, cqA)
	cqB := b.NIC.CreateCQ()
	qb := b.NIC.CreateQP(nic.RC, cqB, cqB)
	nic.Connect(qa, qb)
	src := a.Mem.Register(64, memory.PageSize4K, memory.LocalWrite)
	dst := b.Mem.Register(64, memory.PageSize4K, memory.LocalWrite|memory.RemoteWrite)
	for i := range src.Bytes()[:16] {
		src.Bytes()[i] = 0xAA
	}
	qa.PostSend(nic.SendWR{Op: nic.OpWrite,
		LKey: src.LKey, LAddr: src.Base, Len: 16,
		RKey: dst.RKey, RAddr: dst.Base})
	// Observe the destination when the first half lands (the watch fires
	// on the partial commit).
	sig := sim.NewSignal(c.Env)
	b.NIC.WatchRegion(dst.RKey, sig)
	sawPartial := false
	c.Env.Spawn("observer", func(p *sim.Proc) {
		sig.Wait(p)
		if dst.Bytes()[0] == 0xAA && dst.Bytes()[15] != 0xAA {
			sawPartial = true
		}
	})
	c.Env.Run()
	if !sawPartial {
		t.Fatal("observer never saw the torn intermediate state")
	}
	if dst.Bytes()[15] != 0xAA {
		t.Fatal("final byte never committed")
	}
}

func TestTornWritesDoNotBreakRightAlignedProtocol(t *testing.T) {
	// End-to-end: a RawWrite RPC echo must stay byte-correct when every
	// inbound write is torn, because both request and response formats put
	// their Valid byte at the highest address.
	cfg := cluster.Default(2)
	cfg.NIC.TornWriteDelay = 300
	c := cluster.New(cfg)
	defer c.Close()
	_ = c // transport-level verification lives in rpctest; here we check
	// the primitive: a write whose consumer polls the last byte.
	a, b := c.Hosts[0], c.Hosts[1]
	cqA := a.NIC.CreateCQ()
	qa := a.NIC.CreateQP(nic.RC, cqA, cqA)
	cqB := b.NIC.CreateCQ()
	qb := b.NIC.CreateQP(nic.RC, cqB, cqB)
	nic.Connect(qa, qb)
	src := a.Mem.Register(4096, memory.PageSize4K, memory.LocalWrite)
	dst := b.Mem.Register(4096, memory.PageSize4K, memory.LocalWrite|memory.RemoteWrite)

	// Encode a right-aligned message client-side and write it.
	block := src.Bytes()[:256]
	if err := rpcwire.Encode(block, []byte("torn-but-safe"), 0); err != nil {
		t.Fatal(err)
	}
	qa.PostSend(nic.SendWR{Op: nic.OpWrite,
		LKey: src.LKey, LAddr: src.Base, Len: 256,
		RKey: dst.RKey, RAddr: dst.Base})

	// Server-side poller: wakes on every commit step; must never decode a
	// partial message.
	sig := sim.NewSignal(c.Env)
	b.NIC.WatchRegion(dst.RKey, sig)
	var got []byte
	decodes := 0
	c.Env.Spawn("poller", func(p *sim.Proc) {
		for got == nil {
			blk := dst.Bytes()[:256]
			if rpcwire.Valid(blk) {
				payload, _, err := rpcwire.Decode(blk)
				if err != nil {
					t.Errorf("decode: %v", err)
					return
				}
				got = append([]byte(nil), payload...)
				decodes++
				return
			}
			if sig.WaitTimeout(p, 100*sim.Microsecond) {
				return // timeout safety
			}
		}
	})
	c.Env.Run()
	if string(got) != "torn-but-safe" {
		t.Fatalf("decoded %q despite torn writes", got)
	}
}
