package nic_test

import (
	"errors"
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/sim"
)

// dctPair builds a 3-host cluster with a DCT initiator on host 0 and DCT
// targets (with writable regions) on hosts 1 and 2.
type dctEnv struct {
	c   *cluster.Cluster
	ini *nic.QP
	cq  *nic.CQ
	tgt [2]*nic.QP
	rgn [2]*memory.Region
	src *memory.Region
}

func newDCT(t *testing.T) *dctEnv {
	t.Helper()
	c := cluster.New(cluster.Default(3))
	t.Cleanup(c.Close)
	e := &dctEnv{c: c}
	e.cq = c.Hosts[0].NIC.CreateCQ()
	e.ini = c.Hosts[0].NIC.CreateDCTInitiator(e.cq, e.cq)
	e.src = c.Hosts[0].Mem.Register(4096, memory.PageSize4K, memory.LocalWrite)
	for i := 0; i < 2; i++ {
		h := c.Hosts[1+i]
		tcq := h.NIC.CreateCQ()
		e.tgt[i] = h.NIC.CreateDCTTarget(tcq, tcq)
		e.rgn[i] = h.Mem.Register(4096, memory.PageSize4K,
			memory.LocalWrite|memory.RemoteRead|memory.RemoteWrite)
	}
	return e
}

func TestDCTWriteToMultipleTargetsWithOneQP(t *testing.T) {
	e := newDCT(t)
	copy(e.src.Bytes(), "dct-data")
	for i := 0; i < 2; i++ {
		err := e.ini.PostSend(nic.SendWR{
			WRID: uint64(i), Op: nic.OpWrite, Signaled: true,
			LKey: e.src.LKey, LAddr: e.src.Base, Len: 8,
			RKey: e.rgn[i].RKey, RAddr: e.rgn[i].Base,
			DstNIC: 1 + i, DstQPN: e.tgt[i].QPN,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	e.c.Env.Run()
	for i := 0; i < 2; i++ {
		if string(e.rgn[i].Bytes()[:8]) != "dct-data" {
			t.Fatalf("target %d did not receive data", i)
		}
	}
	if e.cq.Len() != 2 {
		t.Fatalf("completions = %d, want 2 (DCT is reliable)", e.cq.Len())
	}
	// Two distinct targets → two context creations.
	if e.c.Hosts[0].NIC.Stats.DCTConnects != 2 {
		t.Fatalf("DCTConnects = %d, want 2", e.c.Hosts[0].NIC.Stats.DCTConnects)
	}
}

func TestDCTStickyTargetNoReconnect(t *testing.T) {
	e := newDCT(t)
	for i := 0; i < 10; i++ {
		e.ini.PostSend(nic.SendWR{Op: nic.OpWrite,
			LKey: e.src.LKey, LAddr: e.src.Base, Len: 8,
			RKey: e.rgn[0].RKey, RAddr: e.rgn[0].Base,
			DstNIC: 1, DstQPN: e.tgt[0].QPN})
	}
	e.c.Env.Run()
	if got := e.c.Hosts[0].NIC.Stats.DCTConnects; got != 1 {
		t.Fatalf("DCTConnects = %d, want 1 (same target stays connected)", got)
	}
}

func TestDCTAlternatingTargetsReconnectsEveryTime(t *testing.T) {
	e := newDCT(t)
	for i := 0; i < 8; i++ {
		tg := i % 2
		e.ini.PostSend(nic.SendWR{Op: nic.OpWrite,
			LKey: e.src.LKey, LAddr: e.src.Base, Len: 8,
			RKey: e.rgn[tg].RKey, RAddr: e.rgn[tg].Base,
			DstNIC: 1 + tg, DstQPN: e.tgt[tg].QPN})
	}
	e.c.Env.Run()
	if got := e.c.Hosts[0].NIC.Stats.DCTConnects; got != 8 {
		t.Fatalf("DCTConnects = %d, want 8 (context destroyed on every switch)", got)
	}
}

func TestDCTRead(t *testing.T) {
	e := newDCT(t)
	copy(e.rgn[1].Bytes(), "remote-bytes")
	err := e.ini.PostSend(nic.SendWR{
		WRID: 7, Op: nic.OpRead, Signaled: true,
		LKey: e.src.LKey, LAddr: e.src.Base + 100, Len: 12,
		RKey: e.rgn[1].RKey, RAddr: e.rgn[1].Base,
		DstNIC: 2, DstQPN: e.tgt[1].QPN,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.c.Env.Run()
	if string(e.src.Bytes()[100:112]) != "remote-bytes" {
		t.Fatalf("read returned %q", e.src.Bytes()[100:112])
	}
}

func TestDCTLatencyPenaltyOnSwitch(t *testing.T) {
	// A switching workload must take measurably longer per op than a
	// sticky one (the §5.1 latency cost of context churn).
	run := func(alternate bool) sim.Time {
		e := newDCT(t)
		for i := 0; i < 50; i++ {
			tg := 0
			if alternate {
				tg = i % 2
			}
			e.ini.PostSend(nic.SendWR{Op: nic.OpWrite, Signaled: i == 49,
				LKey: e.src.LKey, LAddr: e.src.Base, Len: 32,
				RKey: e.rgn[tg].RKey, RAddr: e.rgn[tg].Base,
				DstNIC: 1 + tg, DstQPN: e.tgt[tg].QPN})
		}
		return e.c.Env.Run()
	}
	sticky := run(false)
	churn := run(true)
	if churn <= sticky {
		t.Fatalf("alternating (%d) must be slower than sticky (%d)", churn, sticky)
	}
}

func TestDCTTargetIsPassive(t *testing.T) {
	e := newDCT(t)
	err := e.tgt[0].PostSend(nic.SendWR{Op: nic.OpWrite})
	if !errors.Is(err, nic.ErrVerbUnsupported) {
		t.Fatalf("err = %v, want ErrVerbUnsupported", err)
	}
}

func TestDCTCannotStaticallyConnect(t *testing.T) {
	e := newDCT(t)
	if err := nic.Connect(e.ini, e.tgt[0]); err == nil {
		t.Fatal("static Connect of DCT QPs must fail")
	}
}

func TestDCTScalesToManyTargetsOneContext(t *testing.T) {
	// One initiator writing to 300 targets: the initiator's QPC working
	// set stays tiny (1 QP), unlike RC where 300 QPs thrash the cache.
	c := cluster.New(cluster.Default(4))
	defer c.Close()
	cq := c.Hosts[0].NIC.CreateCQ()
	ini := c.Hosts[0].NIC.CreateDCTInitiator(cq, cq)
	src := c.Hosts[0].Mem.Register(64, memory.PageSize4K, memory.LocalWrite)
	type tgt struct {
		qpn  uint32
		nic  int
		rkey uint32
		addr uint64
	}
	var tgts []tgt
	for i := 0; i < 300; i++ {
		h := c.Hosts[1+i%3]
		tcq := h.NIC.CreateCQ()
		q := h.NIC.CreateDCTTarget(tcq, tcq)
		r := h.Mem.Register(64, memory.PageSize4K, memory.LocalWrite|memory.RemoteWrite)
		tgts = append(tgts, tgt{qpn: q.QPN, nic: h.NIC.ID(), rkey: r.RKey, addr: r.Base})
	}
	for round := 0; round < 3; round++ {
		for _, tg := range tgts {
			ini.PostSend(nic.SendWR{Op: nic.OpWrite,
				LKey: src.LKey, LAddr: src.Base, Len: 32,
				RKey: tg.rkey, RAddr: tg.addr, DstNIC: tg.nic, DstQPN: tg.qpn})
		}
		c.Env.Run()
	}
	qpc, _, _ := c.Hosts[0].NIC.CacheHitRates()
	if qpc < 0.9 {
		t.Fatalf("DCT initiator QPC hit rate = %.2f, want ≈1 (single context)", qpc)
	}
}

func TestDCTSendRecv(t *testing.T) {
	e := newDCT(t)
	rbuf := e.c.Hosts[1].Mem.Register(4096, memory.PageSize4K, memory.LocalWrite)
	e.tgt[0].PostRecv(nic.RecvWR{WRID: 5, LKey: rbuf.LKey, LAddr: rbuf.Base, Len: 4096})
	copy(e.src.Bytes(), "dct-send")
	err := e.ini.PostSend(nic.SendWR{WRID: 1, Op: nic.OpSend, Signaled: true,
		LKey: e.src.LKey, LAddr: e.src.Base, Len: 8,
		DstNIC: 1, DstQPN: e.tgt[0].QPN})
	if err != nil {
		t.Fatal(err)
	}
	e.c.Env.Run()
	if string(rbuf.Bytes()[:8]) != "dct-send" {
		t.Fatalf("recv buffer = %q", rbuf.Bytes()[:8])
	}
	// Reliable: the sender must get an acked completion.
	if e.cq.Len() != 1 {
		t.Fatalf("sender completions = %d, want 1", e.cq.Len())
	}
	if e.tgt[0].RecvCQ.Len() != 1 {
		t.Fatal("no recv completion at the target")
	}
}
