package nic

import (
	"encoding/binary"

	"scalerpc/internal/fabric"
	"scalerpc/internal/memory"
	"scalerpc/internal/sim"
	"scalerpc/internal/telemetry"
)

// pktOp identifies a wire packet type.
type pktOp int

const (
	pktWrite pktOp = iota
	pktDCTConnect
	pktWriteImm
	pktSend
	pktReadReq
	pktAtomicReq
	pktReadResp
	pktAtomicResp
	pktAck
	pktNak
	pktRnrNak
)

func (o pktOp) isData() bool {
	switch o {
	case pktWrite, pktWriteImm, pktSend, pktReadReq, pktAtomicReq:
		return true
	}
	return false
}

// packet is the unit carried by the fabric between NICs.
type packet struct {
	op        pktOp
	transport QPType
	srcNIC    int
	srcQPN    uint32
	dstQPN    uint32
	psn       uint64

	rkey  uint32
	raddr uint64
	data  []byte
	size  int // requested length for READ

	imm      uint32
	immValid bool

	wrID     uint64
	signaled bool

	// class is the fabric traffic class (fabric.ClassData et al.), copied
	// from the originating SendWR so fault rules can target protocol roles.
	class byte

	atomicOp           Op
	compare, swap, add uint64

	status CQEStatus // for ACK/NAK error propagation

	// ownsData marks data as a pool-owned copy, recycled with the packet;
	// when false the payload aliases an inflight entry's inline buffer
	// (retired separately at ACK time). noRecycle pins the packet out of
	// the pool: fault injections that alias it across deliveries (see
	// pool.go) set it and leave the packet to the GC.
	ownsData  bool
	noRecycle bool
}

// outJob is one queued unit of outbound engine work.
type outJob struct {
	qp         *QP
	wr         SendWR
	inlineData []byte
	retrans    bool
	psn        uint64
}

// outKick starts the outbound engine if idle.
func (n *NIC) outKick() {
	if n.outBusy {
		return
	}
	n.outBusy = true
	n.env.At(0, n.outStep)
}

func (n *NIC) outStep() {
	if n.outHead >= len(n.outQ) {
		n.outQ = n.outQ[:0]
		n.outHead = 0
		n.outBusy = false
		return
	}
	job := n.outQ[n.outHead]
	n.outQ[n.outHead] = outJob{}
	n.outHead++
	occ, extraLat, act := n.processOut(job)
	if act != nil {
		n.env.At(occ+extraLat, act)
	}
	n.env.At(occ, n.outStep)
}

// processOut performs the state lookups and cost accounting for one WQE and
// returns (engine occupancy, extra pipelined latency before transmission,
// transmit action).
func (n *NIC) processOut(job outJob) (occ sim.Duration, extraLat sim.Duration, act func()) {
	qp := job.qp
	wr := job.wr
	if qp.err != nil {
		// The QP errored while this WQE sat in the engine queue. Fresh posts
		// flush with an error CQE; retransmissions were already flushed when
		// the QP entered the error state, so they vanish silently.
		if !job.retrans && qp.SendCQ != nil {
			return n.Cfg.OutboundBaseCost, 0, func() {
				qp.SendCQ.push(CQE{WRID: wr.WRID, QPN: qp.QPN, Op: wr.Op, Status: CQFlushError})
			}
		}
		return n.Cfg.OutboundBaseCost, 0, nil
	}
	n.Stats.OutWQEs++

	occ = n.Cfg.OutboundBaseCost
	if qp.Type == UD {
		occ += n.Cfg.OutboundUDExtra
	}

	// QP context lookup.
	if n.qpcCache.Access(uint64(qp.QPN)) {
		n.Stats.QPCHits++
	} else {
		n.Stats.QPCMisses++
		if n.trace.Enabled {
			n.trace.Emit(n.env.Now(), "qpc_evict",
				telemetry.A("nic", int64(n.id)), telemetry.A("qpn", int64(qp.QPN)))
		}
		n.bus.RecordDMARead(1)
		occ += n.Cfg.CacheMissStall
		extraLat += n.cost.DMAReadLatency - n.Cfg.CacheMissStall
	}
	// WQE fetch (the posted descriptor lives in the host-memory send queue
	// unless the NIC still holds this QP's WQE window on chip).
	if n.wqeCache.Access(uint64(qp.QPN)) {
		n.Stats.WQEHits++
	} else {
		n.Stats.WQEMisses++
		n.bus.RecordDMARead(1)
		occ += n.Cfg.CacheMissStall
		extraLat += n.cost.DMAReadLatency - n.Cfg.CacheMissStall
	}

	// Gather the payload.
	var data []byte
	ownsData := false
	hasPayload := wr.Op == OpWrite || wr.Op == OpWriteImm || wr.Op == OpSend
	if hasPayload && wr.Len > 0 {
		if job.inlineData != nil {
			// RC/DCT inline payloads stay owned by the inflight entry (they
			// are re-sent on retransmit); fire-and-forget transports hand
			// the buffer to the packet.
			data = job.inlineData
			ownsData = qp.Type == UD || qp.Type == UC
		} else {
			reg, src, err := n.mem.TranslateLocal(wr.LKey, wr.LAddr, wr.Len)
			if err != nil {
				return occ, 0, func() { qp.completeLocalError(wr, err) }
			}
			occ += n.chargeMTT(reg, wr.LAddr, wr.Len)
			lines := (wr.Len + n.llc.LineSize() - 1) / n.llc.LineSize()
			n.bus.RecordDMARead(lines)
			extraLat += n.cost.DMARead(wr.Len, n.llc.LineSize())
			data = n.getBuf(wr.Len)
			copy(data, src)
			ownsData = true
		}
	}

	// Destination resolution.
	dstNIC, dstQPN := qp.remoteNIC, qp.remoteQPN
	reconnect := false
	if qp.Type == UD {
		dstNIC, dstQPN = wr.DstNIC, wr.DstQPN
	}
	if qp.Type == DCT {
		dstNIC, dstQPN = wr.DstNIC, wr.DstQPN
		var extra int64
		extra, reconnect = qp.dctPrepare(dstNIC, dstQPN)
		occ += sim.Duration(extra)
		if reconnect {
			// The connect handshake delays the data's departure (§5.1:
			// +1-3us on switches; the fabric round trip adds the rest).
			extraLat += 600
		}
	}

	pkt := n.getPacket()
	pkt.transport = qp.Type
	pkt.srcNIC = n.id
	pkt.srcQPN = qp.QPN
	pkt.dstQPN = dstQPN
	pkt.rkey = wr.RKey
	pkt.raddr = wr.RAddr
	pkt.data = data
	pkt.ownsData = ownsData
	pkt.size = wr.Len
	pkt.imm = wr.Imm
	pkt.wrID = wr.WRID
	pkt.signaled = wr.Signaled
	pkt.compare = wr.Compare
	pkt.swap = wr.Swap
	pkt.add = wr.Add
	pkt.atomicOp = wr.Op
	pkt.class = wr.Class
	wireBytes := len(data)
	switch wr.Op {
	case OpWrite:
		pkt.op = pktWrite
	case OpWriteImm:
		pkt.op = pktWriteImm
		pkt.immValid = true
	case OpSend:
		pkt.op = pktSend
		pkt.immValid = wr.Imm != 0
	case OpRead:
		pkt.op = pktReadReq
		wireBytes = 16
	case OpCompSwap, OpFetchAdd:
		pkt.op = pktAtomicReq
		wireBytes = 24
	}

	// RC/DCT reliability: assign a PSN and track the request until its ACK
	// or response arrives.
	if qp.Type == RC || qp.Type == DCT {
		if job.retrans {
			pkt.psn = job.psn
		} else {
			pkt.psn = qp.sendPSN
			qp.sendPSN++
			needResp := wr.Op == OpRead || wr.Op == OpCompSwap || wr.Op == OpFetchAdd
			qp.inflight = append(qp.inflight, inflightWR{psn: pkt.psn, wr: wr, needResp: needResp, inline: job.inlineData})
			n.armTimer(qp)
		}
	}

	act = func() {
		if reconnect {
			cn := n.ctl(pktDCTConnect, DCT, dstQPN, 0)
			cn.srcNIC, cn.srcQPN = n.id, qp.QPN
			cm := n.getMsg()
			cm.Src, cm.Dst, cm.Bytes, cm.Payload = n.id, dstNIC, dctConnectBytes, cn
			n.fab.Send(cm)
		}
		m := n.getMsg()
		m.Src, m.Dst, m.Bytes, m.Payload = n.id, dstNIC, wireBytes, pkt
		m.Class = pkt.class
		n.fab.Send(m)
		// Unreliable transports complete at transmission.
		if wr.Signaled && (qp.Type == UD || qp.Type == UC) {
			qp.SendCQ.push(CQE{WRID: wr.WRID, QPN: qp.QPN, Op: wr.Op, Status: CQOK, ByteLen: wr.Len})
		}
	}
	return occ, extraLat, act
}

func (qp *QP) completeLocalError(wr SendWR, err error) {
	qp.err = err
	qp.state = QPErr
	if qp.SendCQ != nil {
		qp.SendCQ.push(CQE{WRID: wr.WRID, QPN: qp.QPN, Op: wr.Op, Status: CQLocalError})
	}
}

// deliver is the fabric receive handler.
func (n *NIC) deliver(msg *fabric.Message) {
	pkt := msg.Payload.(*packet)
	mangled := msg.Mangled
	if msg.NoRecycle {
		// This message is delivered again (Duplicate verdict): the packet
		// and its payload stay aliased, so pin them out of the pool. The
		// message itself is not recycled either.
		pkt.noRecycle = true
	} else {
		msg.Payload = nil
		n.putMsg(msg)
	}
	if mangled && len(pkt.data) > 0 {
		// Past-ICRC corruption: the damage lands in this delivery only, so
		// work on copies — the sender's retransmit path and any duplicate
		// delivery alias the original packet and its data. The private copy
		// re-enters the pool normally after processing.
		cp := n.getPacket()
		*cp = *pkt
		cp.data = n.getBuf(len(pkt.data))
		copy(cp.data, pkt.data)
		cp.data[len(cp.data)/2] ^= 0x40
		cp.ownsData = true
		cp.noRecycle = false
		pkt = cp
		n.Stats.PayloadMangles++
	}
	if pkt.transport == UD && n.Cfg.UDLossRate > 0 && n.rng != nil && n.rng.Float64() < n.Cfg.UDLossRate {
		n.Stats.UDDrops++
		n.freePacket(pkt)
		return
	}
	if n.dropNextData > 0 && pkt.transport == RC && pkt.op.isData() {
		n.dropNextData--
		n.freePacket(pkt)
		return
	}
	n.inQ = append(n.inQ, pkt)
	n.inKick()
}

func (n *NIC) inKick() {
	if n.inBusy {
		return
	}
	n.inBusy = true
	n.env.At(0, n.inStep)
}

func (n *NIC) inStep() {
	if n.inHead >= len(n.inQ) {
		n.inQ = n.inQ[:0]
		n.inHead = 0
		n.inBusy = false
		return
	}
	pkt := n.inQ[n.inHead]
	n.inQ[n.inHead] = nil
	n.inHead++
	occ, act := n.processIn(pkt)
	n.env.At(occ, func() {
		if act != nil {
			act()
		}
		// The packet's effects are committed; recycle it (freePacket
		// honors the noRecycle pin set by fault paths like torn writes).
		n.freePacket(pkt)
		n.inStep()
	})
}

// touchQPC models requester-side completion processing: ACKs and READ
// responses need the QP context (PSN window, completion state), so they
// occupy QPC cache entries and evict others — without stalling the inbound
// pipeline. This is why a server answering hundreds of RC clients thrashes
// its QPC cache even though plain inbound writes do not touch it (§2.3).
func (n *NIC) touchQPC(qpn uint32) {
	if n.qpcCache.Access(uint64(qpn)) {
		n.Stats.QPCTouchHits++
	} else {
		n.Stats.QPCTouchMisses++
		n.bus.RecordDMARead(1)
	}
}

// allocStall converts a DDIO write-allocate count into inbound-engine
// occupancy. Allocation stalls are capped: bulk sequential writes stream
// their allocations (the NIC keeps a bounded window of them in flight), so
// only small scattered writes feel the full per-line penalty — which is
// exactly the Figure 3(b) regime.
func allocStall(allocs int, penalty sim.Duration) sim.Duration {
	const cap = 16
	if allocs > cap {
		allocs = cap
	}
	return sim.Duration(allocs) * penalty
}

// sendCtl transmits a small control packet (ACK/NAK/responses) directly,
// bypassing the outbound engine: responders generate these in dedicated
// hardware datapaths.
func (n *NIC) sendCtl(dstNIC int, pkt *packet, wireBytes int) {
	pkt.srcNIC = n.id
	m := n.getMsg()
	m.Src, m.Dst, m.Bytes, m.Payload = n.id, dstNIC, wireBytes, pkt
	n.fab.Send(m)
}

// rcCheck outcomes: the packet is next in sequence (accepted, PSN
// advanced), a duplicate of an already-delivered one, or ahead of a gap.
const (
	rcAccepted = iota
	rcDuplicate
	rcGap
)

// rcCheck performs responder-side PSN sequencing for an RC data packet.
// Gaps are NAKed once per episode here; duplicate handling is op-specific
// (writes/sends re-ACK, reads re-execute, atomics replay) and left to the
// caller.
func (n *NIC) rcCheck(qp *QP, pkt *packet) int {
	if pkt.psn == qp.expectPSN {
		qp.expectPSN++
		qp.nakSent = false
		return rcAccepted
	}
	if pkt.psn > qp.expectPSN {
		// Sequence gap: drop and NAK once per gap.
		if !qp.nakSent {
			qp.nakSent = true
			n.Stats.NAKs++
			n.sendCtl(pkt.srcNIC, n.ctl(pktNak, RC, pkt.srcQPN, qp.expectPSN), 0)
		}
		return rcGap
	}
	return rcDuplicate
}

// reAck acknowledges a duplicate of an already-delivered packet so the
// requester (whose ACK was lost) can advance its inflight window.
func (n *NIC) reAck(qp *QP, pkt *packet) {
	n.sendCtl(pkt.srcNIC, n.ctl(pktAck, RC, pkt.srcQPN, pkt.psn), 0)
}

// processIn handles one arrived packet, returning engine occupancy and the
// action that commits its effects at the end of that occupancy.
func (n *NIC) processIn(pkt *packet) (occ sim.Duration, act func()) {
	n.Stats.InMessages++
	qp := n.qps[pkt.dstQPN]
	if qp != nil && pkt.op.isData() && qp.state < QPRTR {
		// Data arriving before the QP reached RTR lands in the half-open
		// window of the connect handshake and is undeliverable — exactly as
		// if the QPN were unknown.
		qp = nil
	}

	switch pkt.op {
	case pktDCTConnect:
		// Responder-side context creation (§5.1).
		return dctAcceptCost, nil

	case pktWrite, pktWriteImm:
		occ = n.Cfg.InboundWriteCost
		if qp == nil {
			return occ, nil
		}
		if pkt.transport == RC {
			switch n.rcCheck(qp, pkt) {
			case rcGap:
				return occ, nil
			case rcDuplicate:
				n.reAck(qp, pkt)
				return occ, nil
			}
		}
		reg, dst, err := n.mem.TranslateRemote(pkt.rkey, pkt.raddr, len(pkt.data), true)
		if err != nil {
			return occ, func() { n.remoteError(pkt, qp) }
		}
		occ += n.chargeMTT(reg, pkt.raddr, len(pkt.data))
		_, allocs := n.llc.DMAWrite(pkt.raddr, uint64(len(pkt.data)))
		n.bus.RecordDeviceWrite(pkt.raddr, uint64(len(pkt.data)), n.llc.LineSize(), allocs)
		occ += allocStall(allocs, n.cost.WriteAllocatePenalty)
		return occ, func() {
			commit := func() {
				if pkt.op == pktWriteImm {
					if wr, ok := qp.popRecv(); ok {
						qp.RecvCQ.push(CQE{
							WRID: wr.WRID, QPN: qp.QPN, Op: OpWriteImm, Status: CQOK,
							ByteLen: len(pkt.data), Imm: pkt.imm, ImmValid: true,
							SrcNIC: pkt.srcNIC, SrcQPN: pkt.srcQPN,
						})
					} else {
						n.Stats.RNRDrops++
					}
				}
				n.wakeWatches(reg.RKey)
				if pkt.transport == RC || pkt.transport == DCT {
					n.sendCtl(pkt.srcNIC, n.ctl(pktAck, pkt.transport, pkt.srcQPN, pkt.psn), 0)
				}
			}
			if n.Cfg.TornWriteDelay > 0 && len(pkt.data) > 1 {
				// Increasing-address-order visibility: all but the final
				// byte now, the final byte later. The delayed closure keeps
				// using pkt.data, so the packet must not re-enter the pool
				// when the commit action returns.
				pkt.noRecycle = true
				last := len(pkt.data) - 1
				copy(dst[:last], pkt.data[:last])
				n.wakeWatches(reg.RKey) // pollers may observe the partial state
				n.env.At(n.Cfg.TornWriteDelay, func() {
					dst[last] = pkt.data[last]
					commit()
				})
				return
			}
			copy(dst, pkt.data)
			commit()
		}
	case pktSend:
		occ = n.Cfg.InboundSendCost
		if qp == nil {
			return occ, nil
		}
		if pkt.transport == RC {
			if pkt.psn == qp.expectPSN && qp.RecvQueueLen() == 0 {
				// Receiver not ready: leave the PSN window untouched and
				// NAK so the requester backs off and retransmits (real RC
				// never discards an in-sequence send silently).
				n.Stats.RNRDrops++
				n.sendCtl(pkt.srcNIC, n.ctl(pktRnrNak, RC, pkt.srcQPN, pkt.psn), 0)
				return occ, nil
			}
			switch n.rcCheck(qp, pkt) {
			case rcGap:
				return occ, nil
			case rcDuplicate:
				n.reAck(qp, pkt)
				return occ, nil
			}
		}
		rwr, ok := qp.popRecv()
		if !ok {
			n.Stats.RNRDrops++
			return occ, nil
		}
		// Fetch the recv WQE descriptor from host memory.
		n.bus.RecordDMARead(1)
		if len(pkt.data) > rwr.Len {
			return occ, func() {
				qp.RecvCQ.push(CQE{WRID: rwr.WRID, QPN: qp.QPN, Op: OpSend, Status: CQLengthError,
					SrcNIC: pkt.srcNIC, SrcQPN: pkt.srcQPN})
			}
		}
		reg, dst, err := n.mem.TranslateLocal(rwr.LKey, rwr.LAddr, len(pkt.data))
		if err != nil {
			return occ, func() {
				qp.RecvCQ.push(CQE{WRID: rwr.WRID, QPN: qp.QPN, Op: OpSend, Status: CQLocalError,
					SrcNIC: pkt.srcNIC, SrcQPN: pkt.srcQPN})
			}
		}
		occ += n.chargeMTT(reg, rwr.LAddr, len(pkt.data))
		_, allocs := n.llc.DMAWrite(rwr.LAddr, uint64(len(pkt.data)))
		n.bus.RecordDeviceWrite(rwr.LAddr, uint64(len(pkt.data)), n.llc.LineSize(), allocs)
		occ += allocStall(allocs, n.cost.WriteAllocatePenalty)
		return occ, func() {
			copy(dst, pkt.data)
			qp.RecvCQ.push(CQE{
				WRID: rwr.WRID, QPN: qp.QPN, Op: OpSend, Status: CQOK,
				ByteLen: len(pkt.data), Imm: pkt.imm, ImmValid: pkt.immValid,
				SrcNIC: pkt.srcNIC, SrcQPN: pkt.srcQPN,
			})
			n.wakeWatches(reg.RKey)
			if pkt.transport == RC || pkt.transport == DCT {
				n.sendCtl(pkt.srcNIC, n.ctl(pktAck, pkt.transport, pkt.srcQPN, pkt.psn), 0)
			}
		}

	case pktReadReq:
		occ = n.Cfg.InboundReadCost
		if qp == nil {
			return occ, nil
		}
		if pkt.transport == RC {
			// Duplicate READs (their response was lost) are re-executed:
			// reads are idempotent and the requester still needs the data.
			if n.rcCheck(qp, pkt) == rcGap {
				return occ, nil
			}
		}
		reg, src, err := n.mem.TranslateRemote(pkt.rkey, pkt.raddr, pkt.size, false)
		if err != nil {
			return occ, func() { n.remoteError(pkt, qp) }
		}
		occ += n.chargeMTT(reg, pkt.raddr, pkt.size)
		lines := (pkt.size + n.llc.LineSize() - 1) / n.llc.LineSize()
		n.bus.RecordDMARead(lines)
		dmaLat := n.cost.DMARead(pkt.size, n.llc.LineSize())
		return occ, func() {
			resp := n.ctl(pktReadResp, pkt.transport, pkt.srcQPN, pkt.psn)
			resp.data = n.getBuf(len(src))
			copy(resp.data, src)
			resp.ownsData = true
			resp.wrID, resp.signaled = pkt.wrID, pkt.signaled
			dst := pkt.srcNIC
			n.env.At(dmaLat, func() { n.sendCtl(dst, resp, len(resp.data)) })
		}

	case pktAtomicReq:
		occ = n.Cfg.InboundReadCost + n.Cfg.AtomicCost
		if qp == nil {
			return occ, nil
		}
		if pkt.transport == RC {
			switch n.rcCheck(qp, pkt) {
			case rcGap:
				return occ, nil
			case rcDuplicate:
				// Atomics are not idempotent: replay the cached result
				// instead of re-executing.
				if old, ok := qp.replayAtomic(pkt.psn); ok {
					n.Stats.AtomicReplays++
					return occ, func() {
						resp := n.ctl(pktAtomicResp, pkt.transport, pkt.srcQPN, pkt.psn)
						resp.wrID, resp.signaled, resp.compare = pkt.wrID, pkt.signaled, old
						n.sendCtl(pkt.srcNIC, resp, 8)
					}
				}
				return occ, nil
			}
		}
		reg, buf, err := n.mem.TranslateRemoteOp(pkt.rkey, pkt.raddr, 8, memory.RemoteOpAtomic)
		if err != nil {
			return occ, func() { n.remoteError(pkt, qp) }
		}
		occ += n.chargeMTT(reg, pkt.raddr, 8)
		n.bus.RecordDMARead(1)
		n.Stats.AtomicOps++
		return occ, func() {
			old := binary.LittleEndian.Uint64(buf)
			switch pkt.atomicOp {
			case OpCompSwap:
				if old == pkt.compare {
					binary.LittleEndian.PutUint64(buf, pkt.swap)
				}
			case OpFetchAdd:
				binary.LittleEndian.PutUint64(buf, old+pkt.add)
			}
			_, allocs := n.llc.DMAWrite(pkt.raddr, 8)
			n.bus.RecordDeviceWrite(pkt.raddr, 8, n.llc.LineSize(), allocs)
			n.wakeWatches(reg.RKey)
			if pkt.transport == RC {
				qp.rememberAtomic(pkt.psn, old)
			}
			resp := n.ctl(pktAtomicResp, pkt.transport, pkt.srcQPN, pkt.psn)
			resp.wrID, resp.signaled, resp.compare = pkt.wrID, pkt.signaled, old
			n.sendCtl(pkt.srcNIC, resp, 8)
		}

	case pktAck:
		occ = n.Cfg.InboundAckCost
		if qp == nil {
			return occ, nil
		}
		n.touchQPC(pkt.dstQPN)
		return occ, func() { qp.handleAck(pkt) }

	case pktNak:
		occ = n.Cfg.InboundAckCost
		if qp == nil {
			return occ, nil
		}
		n.touchQPC(pkt.dstQPN)
		return occ, func() { n.handleNak(qp, pkt) }

	case pktRnrNak:
		occ = n.Cfg.InboundAckCost
		if qp == nil {
			return occ, nil
		}
		n.touchQPC(pkt.dstQPN)
		return occ, func() { n.handleRnrNak(qp, pkt) }

	case pktReadResp, pktAtomicResp:
		occ = n.Cfg.InboundWriteCost
		if qp == nil {
			return occ, nil
		}
		n.touchQPC(pkt.dstQPN)
		// DMA the returned data into the original WQE's local buffer.
		var commit func()
		if idx := qp.findInflight(pkt.psn); idx >= 0 {
			wr := qp.inflight[idx].wr
			if pkt.op == pktReadResp && wr.Len > 0 {
				reg, dst, err := n.mem.TranslateLocal(wr.LKey, wr.LAddr, len(pkt.data))
				if err == nil {
					occ += n.chargeMTT(reg, wr.LAddr, len(pkt.data))
					_, allocs := n.llc.DMAWrite(wr.LAddr, uint64(len(pkt.data)))
					n.bus.RecordDeviceWrite(wr.LAddr, uint64(len(pkt.data)), n.llc.LineSize(), allocs)
					occ += allocStall(allocs, n.cost.WriteAllocatePenalty)
					data := pkt.data
					commit = func() {
						copy(dst, data)
						n.wakeWatches(reg.RKey)
					}
				}
			}
		}
		return occ, func() {
			if commit != nil {
				commit()
			}
			qp.handleResp(pkt)
		}
	}
	return 1, nil
}

// remoteError reports a remote access violation back to an RC requester
// (UC violations are silently dropped — no reverse channel).
func (n *NIC) remoteError(pkt *packet, qp *QP) {
	if pkt.transport != RC {
		return
	}
	resp := n.ctl(pktAck, RC, pkt.srcQPN, pkt.psn)
	resp.status = CQRemoteAccessError
	n.sendCtl(pkt.srcNIC, resp, 0)
}

// handleAck completes inflight WQEs with psn ≤ acked psn.
func (qp *QP) handleAck(pkt *packet) {
	if pkt.status != CQOK {
		qp.err = qp.nic.errorf("remote access error on %v (psn %d)", qp.Type, pkt.psn)
		qp.state = QPErr
		qp.nic.Stats.QPErrors++
		qp.cancelTimer()
		// Complete the offending WQE with an error. The entry's inline
		// buffer is NOT recycled: an aliased retransmitted copy may still
		// be travelling the fabric (error paths leave buffers to the GC).
		if idx := qp.findInflight(pkt.psn); idx >= 0 {
			wr := qp.inflight[idx].wr
			qp.inflight = append(qp.inflight[:idx], qp.inflight[idx+1:]...)
			if qp.SendCQ != nil {
				qp.SendCQ.push(CQE{WRID: wr.WRID, QPN: qp.QPN, Op: wr.Op, Status: pkt.status})
			}
		}
		return
	}
	popped := 0
	for popped < len(qp.inflight) {
		f := qp.inflight[popped]
		if f.psn > pkt.psn || f.needResp {
			break
		}
		popped++
		// The ACK proves the receiver committed this payload; any aliased
		// retransmitted copy still in flight fails the PSN check without
		// touching the data, so the inline buffer can retire now.
		if f.inline != nil {
			qp.nic.putBuf(f.inline)
		}
		if f.wr.Signaled {
			qp.SendCQ.push(CQE{WRID: f.wr.WRID, QPN: qp.QPN, Op: f.wr.Op, Status: CQOK, ByteLen: f.wr.Len})
		}
	}
	if popped > 0 {
		qp.popInflight(popped)
		qp.noteProgress()
	}
}

// handleResp completes a READ/ATOMIC and everything before it.
func (qp *QP) handleResp(pkt *packet) {
	popped := 0
	for popped < len(qp.inflight) {
		f := qp.inflight[popped]
		if f.psn > pkt.psn {
			break
		}
		popped++
		if f.inline != nil {
			qp.nic.putBuf(f.inline)
		}
		if f.psn == pkt.psn {
			if f.wr.Signaled {
				op := f.wr.Op
				qp.SendCQ.push(CQE{
					WRID: f.wr.WRID, QPN: qp.QPN, Op: op, Status: CQOK,
					ByteLen: len(pkt.data), AtomicOld: pkt.compare,
				})
			}
			break
		}
		if f.wr.Signaled {
			qp.SendCQ.push(CQE{WRID: f.wr.WRID, QPN: qp.QPN, Op: f.wr.Op, Status: CQOK, ByteLen: f.wr.Len})
		}
	}
	if popped > 0 {
		qp.popInflight(popped)
		qp.noteProgress()
	}
}

// popInflight removes the first k inflight entries, compacting in place so
// the slice keeps its backing array (the old head-reslice leaked capacity
// and forced a fresh allocation on every later post).
func (qp *QP) popInflight(k int) {
	m := copy(qp.inflight, qp.inflight[k:])
	tail := qp.inflight[m:]
	for i := range tail {
		tail[i] = inflightWR{}
	}
	qp.inflight = qp.inflight[:m]
}

// findInflight returns the index of the inflight entry with the given psn.
func (qp *QP) findInflight(psn uint64) int {
	for i, f := range qp.inflight {
		if f.psn == psn {
			return i
		}
	}
	return -1
}

// handleNak retransmits all inflight WQEs at or after the NAKed psn.
func (n *NIC) handleNak(qp *QP, pkt *packet) {
	if qp.err != nil {
		return
	}
	n.retransmitFrom(qp, pkt.psn)
	qp.cancelTimer()
	n.armTimer(qp)
}

// handleRnrNak backs off and replays after the responder reported an empty
// receive queue. The responder left its PSN window untouched, so the replay
// starts from the NAKed packet.
func (n *NIC) handleRnrNak(qp *QP, pkt *packet) {
	if qp.err != nil {
		return
	}
	n.Stats.RNRNaks++
	qp.rnrRetries++
	if qp.rnrRetries > n.Cfg.rnrRetryLimit() {
		n.enterQPError(qp, n.errorf("RNR retry count exceeded on QPN %d (peer recv queue empty)", qp.QPN), CQRNRRetryExceeded)
		return
	}
	qp.cancelTimer() // hold the retransmit timeout during the backoff
	psn := pkt.psn
	gen := qp.timerGen
	n.env.At(n.Cfg.rnrTimeout(), func() {
		if gen != qp.timerGen || qp.err != nil {
			return
		}
		n.retransmitFrom(qp, psn)
		n.armTimer(qp)
	})
}

// retransmitFrom rebuilds outbound jobs for every inflight WQE at or after
// psn (go-back-N) and queues them ahead of new work, preserving PSN order.
func (n *NIC) retransmitFrom(qp *QP, psn uint64) {
	jobs := n.retransScratch[:0]
	for _, f := range qp.inflight {
		if f.psn >= psn {
			n.Stats.Retransmits++
			n.Stats.QPRetransmits++
			jobs = append(jobs, outJob{qp: qp, wr: f.wr, inlineData: f.inline, retrans: true, psn: f.psn})
		}
	}
	n.retransScratch = jobs[:0]
	if len(jobs) == 0 {
		return
	}
	// Splice jobs ahead of the unprocessed tail in place: outQ becomes
	// jobs ++ outQ[outHead:], reusing the backing array when it fits.
	tail := n.outQ[n.outHead:]
	need := len(jobs) + len(tail)
	if cap(n.outQ) >= need {
		old := len(n.outQ)
		q := n.outQ[:need]
		copy(q[len(jobs):], tail) // overlap-safe shift
		copy(q, jobs)
		for i := need; i < old; i++ {
			n.outQ[i] = outJob{}
		}
		n.outQ = q
	} else {
		q := make([]outJob, 0, need*2)
		q = append(q, jobs...)
		q = append(q, tail...)
		n.outQ = q
	}
	n.outHead = 0
	n.outKick()
}

// armTimer schedules the retransmit timeout for the oldest inflight WQE.
// Disabled unless Config.RetransmitTimeout is positive (the default fabric is
// lossless, so the timer would only add events). Each arm supersedes any
// previous timer via the generation counter.
func (n *NIC) armTimer(qp *QP) {
	if n.Cfg.RetransmitTimeout <= 0 || qp.err != nil || len(qp.inflight) == 0 {
		return
	}
	qp.timerGen++
	gen := qp.timerGen
	n.env.At(n.Cfg.RetransmitTimeout, func() { n.onTimeout(qp, gen) })
}

// onTimeout fires when the oldest inflight WQE went unacknowledged for a full
// RetransmitTimeout: go-back-N from the start of the window, or give up and
// error the QP once the retry budget is spent.
func (n *NIC) onTimeout(qp *QP, gen uint64) {
	if gen != qp.timerGen || qp.err != nil || len(qp.inflight) == 0 {
		return
	}
	qp.retries++
	if qp.retries > n.Cfg.retryLimit() {
		n.enterQPError(qp, n.errorf("RC retry count exceeded on QPN %d (peer unreachable)", qp.QPN), CQRetryExceeded)
		return
	}
	n.retransmitFrom(qp, qp.inflight[0].psn)
	n.armTimer(qp)
}

// enterQPError transitions the QP to the error state: the oldest inflight WQE
// completes with the given status, the rest flush with CQFlushError, and all
// further posts are rejected until the QP is recreated.
func (n *NIC) enterQPError(qp *QP, err error, status CQEStatus) {
	if qp.err != nil {
		return
	}
	qp.err = err
	qp.state = QPErr
	n.Stats.QPErrors++
	qp.cancelTimer()
	for i, f := range qp.inflight {
		st := status
		if i > 0 {
			st = CQFlushError
		}
		if qp.SendCQ != nil {
			qp.SendCQ.push(CQE{WRID: f.wr.WRID, QPN: qp.QPN, Op: f.wr.Op, Status: st})
		}
	}
	qp.inflight = nil
	if n.trace.Enabled {
		n.trace.Emit(n.env.Now(), "qp_error",
			telemetry.A("nic", int64(n.id)), telemetry.A("qpn", int64(qp.QPN)))
	}
}

// flushQP completes every outstanding WQE — unacknowledged sends and posted
// receives — with CQFlushError: the error-state path, extended to teardown,
// so DestroyQP and the RESET transition cannot strand completions.
func (n *NIC) flushQP(qp *QP) {
	qp.cancelTimer()
	for _, f := range qp.inflight {
		if qp.SendCQ != nil {
			qp.SendCQ.push(CQE{WRID: f.wr.WRID, QPN: qp.QPN, Op: f.wr.Op, Status: CQFlushError})
		}
	}
	qp.inflight = nil
	for {
		wr, ok := qp.popRecv()
		if !ok {
			break
		}
		if qp.RecvCQ != nil {
			qp.RecvCQ.push(CQE{WRID: wr.WRID, QPN: qp.QPN, Op: OpSend, Status: CQFlushError})
		}
	}
}
