package nic_test

import (
	"errors"
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/sim"
)

// walk drives a QP through a sequence of valid transitions, failing the
// test if any step errors.
func walk(t *testing.T, qp *nic.QP, remoteNIC int, peerQPN uint32, states ...nic.QPState) {
	t.Helper()
	for _, st := range states {
		attr := nic.ModifyAttr{}
		switch st {
		case nic.QPRTR:
			attr = nic.ModifyAttr{RemoteNIC: remoteNIC, RemoteQPN: peerQPN, RemotePSN: 1}
		case nic.QPRTS:
			attr = nic.ModifyAttr{LocalPSN: 1}
		}
		if _, err := qp.Modify(st, attr); err != nil {
			t.Fatalf("walk to %v: %v", st, err)
		}
	}
}

// TestQPStateTable exercises every ModifyQP transition: the RESET → INIT →
// RTR → RTS ladder, the always-allowed RESET and ERR entries, and every
// invalid ordering.
func TestQPStateTable(t *testing.T) {
	cases := []struct {
		name    string
		from    []nic.QPState // valid walk from RESET
		to      nic.QPState
		wantErr bool
	}{
		{"reset-to-init", nil, nic.QPInit, false},
		{"reset-to-rtr", nil, nic.QPRTR, true},
		{"reset-to-rts", nil, nic.QPRTS, true},
		{"reset-to-reset", nil, nic.QPReset, false},
		{"reset-to-err", nil, nic.QPErr, false},
		{"init-to-rtr", []nic.QPState{nic.QPInit}, nic.QPRTR, false},
		{"init-to-rts", []nic.QPState{nic.QPInit}, nic.QPRTS, true},
		{"init-to-init", []nic.QPState{nic.QPInit}, nic.QPInit, true},
		{"init-to-reset", []nic.QPState{nic.QPInit}, nic.QPReset, false},
		{"rtr-to-rts", []nic.QPState{nic.QPInit, nic.QPRTR}, nic.QPRTS, false},
		{"rtr-to-init", []nic.QPState{nic.QPInit, nic.QPRTR}, nic.QPInit, true},
		{"rtr-to-rtr", []nic.QPState{nic.QPInit, nic.QPRTR}, nic.QPRTR, true},
		{"rtr-to-reset", []nic.QPState{nic.QPInit, nic.QPRTR}, nic.QPReset, false},
		{"rts-to-init", []nic.QPState{nic.QPInit, nic.QPRTR, nic.QPRTS}, nic.QPInit, true},
		{"rts-to-rtr", []nic.QPState{nic.QPInit, nic.QPRTR, nic.QPRTS}, nic.QPRTR, true},
		{"rts-to-rts", []nic.QPState{nic.QPInit, nic.QPRTR, nic.QPRTS}, nic.QPRTS, true},
		{"rts-to-reset", []nic.QPState{nic.QPInit, nic.QPRTR, nic.QPRTS}, nic.QPReset, false},
		{"rts-to-err", []nic.QPState{nic.QPInit, nic.QPRTR, nic.QPRTS}, nic.QPErr, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := cluster.New(cluster.Default(2))
			defer c.Close()
			a, b := c.Hosts[0], c.Hosts[1]
			cq := a.NIC.CreateCQ()
			qp := a.NIC.CreateQP(nic.RC, cq, cq)
			peer := b.NIC.CreateQP(nic.RC, b.NIC.CreateCQ(), nil)
			walk(t, qp, b.NIC.ID(), peer.QPN, tc.from...)
			before := qp.State()
			attr := nic.ModifyAttr{}
			switch tc.to {
			case nic.QPRTR:
				attr = nic.ModifyAttr{RemoteNIC: b.NIC.ID(), RemoteQPN: peer.QPN, RemotePSN: 1}
			case nic.QPRTS:
				attr = nic.ModifyAttr{LocalPSN: 1}
			}
			_, err := qp.Modify(tc.to, attr)
			if tc.wantErr {
				if !errors.Is(err, nic.ErrBadTransition) {
					t.Fatalf("Modify(%v) from %v: err = %v, want ErrBadTransition", tc.to, before, err)
				}
				if qp.State() != before {
					t.Fatalf("failed Modify changed state %v -> %v", before, qp.State())
				}
				return
			}
			if err != nil {
				t.Fatalf("Modify(%v) from %v: %v", tc.to, before, err)
			}
			if qp.State() != tc.to {
				t.Fatalf("state = %v, want %v", qp.State(), tc.to)
			}
		})
	}
}

// TestQPErrRequiresReset: once errored, every transition except RESET is
// refused, and RESET clears the error.
func TestQPErrRequiresReset(t *testing.T) {
	c := cluster.New(cluster.Default(2))
	defer c.Close()
	a, b := c.Hosts[0], c.Hosts[1]
	cq := a.NIC.CreateCQ()
	qp := a.NIC.CreateQP(nic.RC, cq, cq)
	peer := b.NIC.CreateQP(nic.RC, b.NIC.CreateCQ(), nil)
	walk(t, qp, b.NIC.ID(), peer.QPN, nic.QPInit, nic.QPRTR, nic.QPRTS, nic.QPErr)
	if qp.Err() == nil {
		t.Fatal("errored QP reports nil Err")
	}
	for _, to := range []nic.QPState{nic.QPInit, nic.QPRTR, nic.QPRTS} {
		if _, err := qp.Modify(to, nic.ModifyAttr{}); err == nil {
			t.Fatalf("Modify(%v) on errored QP succeeded", to)
		}
	}
	if _, err := qp.Modify(nic.QPReset, nic.ModifyAttr{}); err != nil {
		t.Fatalf("RESET on errored QP: %v", err)
	}
	if qp.Err() != nil || qp.State() != nic.QPReset {
		t.Fatalf("after RESET: err=%v state=%v", qp.Err(), qp.State())
	}
}

// TestModifyCostsModeled: each upward transition returns its configured
// verb latency, so connection setup is visible in virtual time.
func TestModifyCostsModeled(t *testing.T) {
	c := cluster.New(cluster.Default(2))
	defer c.Close()
	a, b := c.Hosts[0], c.Hosts[1]
	cfg := a.NIC.Cfg
	qp := a.NIC.CreateQP(nic.RC, a.NIC.CreateCQ(), nil)
	peer := b.NIC.CreateQP(nic.RC, b.NIC.CreateCQ(), nil)
	steps := []struct {
		to   nic.QPState
		attr nic.ModifyAttr
		want sim.Duration
	}{
		{nic.QPInit, nic.ModifyAttr{}, cfg.ModifyInitCost},
		{nic.QPRTR, nic.ModifyAttr{RemoteNIC: b.NIC.ID(), RemoteQPN: peer.QPN, RemotePSN: 1}, cfg.ModifyRTRCost},
		{nic.QPRTS, nic.ModifyAttr{LocalPSN: 1}, cfg.ModifyRTSCost},
	}
	for _, st := range steps {
		d, err := qp.Modify(st.to, st.attr)
		if err != nil {
			t.Fatal(err)
		}
		if d != st.want {
			t.Fatalf("Modify(%v) latency = %d, want %d", st.to, d, st.want)
		}
		if st.want == 0 {
			t.Fatalf("Modify(%v) cost unconfigured in DefaultConfig", st.to)
		}
	}
}

// TestPostOnNonRTSErrors: posting sends on an RC QP below RTS fails with
// ErrNotConnected at every pre-RTS state.
func TestPostOnNonRTSErrors(t *testing.T) {
	c := cluster.New(cluster.Default(2))
	defer c.Close()
	a, b := c.Hosts[0], c.Hosts[1]
	reg := a.Mem.Register(4096, memory.PageSize4K, memory.LocalWrite)
	peer := b.NIC.CreateQP(nic.RC, b.NIC.CreateCQ(), nil)
	wr := nic.SendWR{Op: nic.OpWrite, LKey: reg.LKey, LAddr: reg.Base, Len: 8, RKey: 1, RAddr: 0}

	qp := a.NIC.CreateQP(nic.RC, a.NIC.CreateCQ(), nil)
	for _, setup := range []func(){
		func() {},
		func() { walk(t, qp, b.NIC.ID(), peer.QPN, nic.QPInit) },
		func() { walk(t, qp, b.NIC.ID(), peer.QPN, nic.QPRTR) },
	} {
		setup()
		if err := qp.PostSend(wr); !errors.Is(err, nic.ErrNotConnected) {
			t.Fatalf("PostSend in %v: err = %v, want ErrNotConnected", qp.State(), err)
		}
	}
	walk(t, qp, b.NIC.ID(), peer.QPN, nic.QPRTS)
	if qp.State() != nic.QPRTS {
		t.Fatalf("state = %v, want RTS", qp.State())
	}
}

// TestConnectRefusesRepair: the test backdoor errors when either QP has
// left RESET (satellite b).
func TestConnectRefusesRepair(t *testing.T) {
	c := cluster.New(cluster.Default(2))
	defer c.Close()
	a, b := c.Hosts[0], c.Hosts[1]
	qa := a.NIC.CreateQP(nic.RC, a.NIC.CreateCQ(), nil)
	qb := b.NIC.CreateQP(nic.RC, b.NIC.CreateCQ(), nil)
	if err := nic.Connect(qa, qb); err != nil {
		t.Fatal(err)
	}
	qc := b.NIC.CreateQP(nic.RC, b.NIC.CreateCQ(), nil)
	if err := nic.Connect(qa, qc); !errors.Is(err, nic.ErrAlreadyConnected) {
		t.Fatalf("re-pairing connected QP: err = %v, want ErrAlreadyConnected", err)
	}
	// A half-walked QP is not in RESET either.
	qd := a.NIC.CreateQP(nic.RC, a.NIC.CreateCQ(), nil)
	walk(t, qd, b.NIC.ID(), qc.QPN, nic.QPInit)
	if err := nic.Connect(qd, qc); !errors.Is(err, nic.ErrAlreadyConnected) {
		t.Fatalf("pairing non-RESET QP: err = %v, want ErrAlreadyConnected", err)
	}
}

// TestDestroyQPFlushesOutstanding: DestroyQP completes unprocessed sends
// and posted receives as flush-error CQEs (satellite a).
func TestDestroyQPFlushesOutstanding(t *testing.T) {
	c := cluster.New(cluster.Default(2))
	defer c.Close()
	a, b := c.Hosts[0], c.Hosts[1]
	scq := a.NIC.CreateCQ()
	rcq := b.NIC.CreateCQ()
	qa := a.NIC.CreateQP(nic.RC, scq, nil)
	qb := b.NIC.CreateQP(nic.RC, b.NIC.CreateCQ(), rcq)
	if err := nic.Connect(qa, qb); err != nil {
		t.Fatal(err)
	}
	src := a.Mem.Register(4096, memory.PageSize4K, memory.LocalWrite)
	dst := b.Mem.Register(4096, memory.PageSize4K, memory.LocalWrite|memory.RemoteWrite)
	if err := qa.PostSend(nic.SendWR{
		WRID: 11, Op: nic.OpWrite, Signaled: true,
		LKey: src.LKey, LAddr: src.Base, Len: 64, RKey: dst.RKey, RAddr: dst.Base,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := qb.PostRecv(nic.RecvWR{WRID: uint64(20 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	a.NIC.DestroyQP(qa)
	b.NIC.DestroyQP(qb)
	c.Env.RunUntil(1 * sim.Millisecond)

	sends := scq.Poll(8)
	if len(sends) != 1 || sends[0].WRID != 11 || sends[0].Status != nic.CQFlushError {
		t.Fatalf("send CQEs after destroy = %+v, want one flush error for WRID 11", sends)
	}
	recvs := rcq.Poll(8)
	if len(recvs) != 3 {
		t.Fatalf("recv CQEs after destroy = %d, want 3", len(recvs))
	}
	for _, e := range recvs {
		if e.Status != nic.CQFlushError {
			t.Fatalf("recv CQE status = %v, want flush error", e.Status)
		}
	}
}
