package nic

import "scalerpc/internal/stats"

// lruCache is a fixed-capacity cache over uint64 keys used to model the
// NIC's on-chip state caches (QP context, WQE, MTT). Only presence matters;
// values are implicit. The implementation is an intrusive doubly-linked
// list over a map, O(1) per access.
//
// Replacement is randomized by default: under a round-robin access pattern
// over more QPs than the cache holds — exactly what a many-client RPC
// server produces — strict LRU collapses to a 0% hit rate the moment the
// working set exceeds capacity, whereas real NIC caches degrade gradually
// (the paper's Figure 1(b) slope from 10 to 800 clients). Random
// replacement yields the observed capacity/workingset hit ratio. Tests use
// strict LRU (rng == nil) for determinism of individual evictions.
type lruCache struct {
	capacity int
	entries  map[uint64]*lruNode
	head     *lruNode // most recent
	tail     *lruNode // least recent
	hits     uint64
	misses   uint64
	rng      *stats.RNG
	keys     []uint64 // dense key list for O(1) random victim choice
	keyPos   map[uint64]int
}

type lruNode struct {
	key        uint64
	prev, next *lruNode
}

// newLRU builds a cache with strict LRU replacement.
func newLRU(capacity int) *lruCache {
	if capacity <= 0 {
		panic("nic: lru capacity must be positive")
	}
	return &lruCache{capacity: capacity, entries: make(map[uint64]*lruNode, capacity)}
}

// newRandomCache builds a cache with randomized replacement.
func newRandomCache(capacity int, rng *stats.RNG) *lruCache {
	c := newLRU(capacity)
	c.rng = rng
	c.keyPos = make(map[uint64]int, capacity)
	return c
}

// Access touches key, returning true on hit. On miss the key is inserted,
// evicting a victim (LRU or random per policy) if the cache is full.
func (c *lruCache) Access(key uint64) bool {
	if n, ok := c.entries[key]; ok {
		c.hits++
		c.moveToFront(n)
		return true
	}
	c.misses++
	if len(c.entries) >= c.capacity {
		var victim *lruNode
		if c.rng != nil {
			victim = c.entries[c.keys[c.rng.Intn(len(c.keys))]]
		} else {
			victim = c.tail
		}
		c.remove(victim)
	}
	n := &lruNode{key: key}
	c.entries[key] = n
	c.pushFront(n)
	if c.rng != nil {
		c.keyPos[key] = len(c.keys)
		c.keys = append(c.keys, key)
	}
	return false
}

// remove deletes a node from all index structures.
func (c *lruCache) remove(n *lruNode) {
	c.unlink(n)
	delete(c.entries, n.key)
	if c.rng != nil {
		pos := c.keyPos[n.key]
		last := len(c.keys) - 1
		c.keys[pos] = c.keys[last]
		c.keyPos[c.keys[pos]] = pos
		c.keys = c.keys[:last]
		delete(c.keyPos, n.key)
	}
}

// Contains reports residency without touching recency or counters.
func (c *lruCache) Contains(key uint64) bool {
	_, ok := c.entries[key]
	return ok
}

// Invalidate removes key if present.
func (c *lruCache) Invalidate(key uint64) {
	if n, ok := c.entries[key]; ok {
		c.remove(n)
	}
}

// Len returns the number of resident entries.
func (c *lruCache) Len() int { return len(c.entries) }

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *lruCache) HitRate() float64 {
	t := c.hits + c.misses
	if t == 0 {
		return 0
	}
	return float64(c.hits) / float64(t)
}

func (c *lruCache) moveToFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *lruCache) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *lruCache) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
