package nic_test

import (
	"bytes"
	"testing"

	"scalerpc/internal/fabric"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/sim"
)

// These tests pin the arena ownership contract (see pool.go): packets,
// fabric messages and payload buffers are recycled through per-NIC free
// lists, so every aliasing hazard the fault plane can create — duplicated
// deliveries, torn writes held past commit, mangled per-delivery copies,
// retransmissions replaying inline buffers — must survive heavy pool churn
// without a recycled buffer's next tenant bleeding into committed data.
// They extend the snapshot-before-yield regression tests from the RPC layer
// (rawrpc's TestServeSnapshotSurvivesOverwrite) down to the NIC arenas.

// fill writes a distinctive per-op pattern.
func fill(b []byte, op int) {
	for i := range b {
		b[i] = byte(op*31 + i)
	}
}

// TestArenaAliasingDuplicateDelivery duplicates every data packet at the
// switch while a stream of writes churns the pools. The duplicated message
// and payload are pinned (Message.NoRecycle); if they were recycled after
// the first delivery, the second delivery would commit whatever the pool's
// next tenant put in the buffer.
func TestArenaAliasingDuplicateDelivery(t *testing.T) {
	pe := newPair(t, nic.RC)
	pe.c.Fabric.SetInterceptor(func(m *fabric.Message) fabric.Verdict {
		return fabric.Verdict{Duplicate: true}
	})
	const ops = 40
	const sz = 128
	want := make([]byte, sz)
	for op := 0; op < ops; op++ {
		fill(pe.cli.Bytes()[:sz], op)
		if err := pe.qpA.PostSend(nic.SendWR{WRID: uint64(op), Op: nic.OpWrite, Signaled: true,
			LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: sz,
			RKey: pe.srv.RKey, RAddr: pe.srv.Base + uint64(op*sz)}); err != nil {
			t.Fatal(err)
		}
		pe.c.Env.Run()
		fill(want, op)
		if got := pe.srv.Bytes()[op*sz : (op+1)*sz]; !bytes.Equal(got, want) {
			t.Fatalf("op %d: committed %x..., want %x... — duplicate delivery read a recycled buffer", op, got[:8], want[:8])
		}
	}
	if pe.cqA.Len() != ops {
		t.Fatalf("completions = %d, want %d", pe.cqA.Len(), ops)
	}
}

// TestArenaAliasingTornWrite holds the last byte of every inbound write
// past its commit action (TornWriteDelay) while later writes recycle
// packets through the same pool. The torn packet is pinned via noRecycle;
// without the pin, the delayed byte would be read from a buffer already
// handed to another packet.
func TestArenaAliasingTornWrite(t *testing.T) {
	pe := newPair(t, nic.RC)
	pe.c.Hosts[1].NIC.Cfg.TornWriteDelay = 3 * sim.Microsecond
	const ops = 32
	const sz = 256
	for op := 0; op < ops; op++ {
		// Distinct source offsets: the NIC gathers a write's payload at
		// process time, so sources must stay stable while ops stream.
		fill(pe.cli.Bytes()[op*sz:(op+1)*sz], op)
		if err := pe.qpA.PostSend(nic.SendWR{WRID: uint64(op), Op: nic.OpWrite, Signaled: true,
			LKey: pe.cli.LKey, LAddr: pe.cli.Base + uint64(op*sz), Len: sz,
			RKey: pe.srv.RKey, RAddr: pe.srv.Base + uint64(op*sz)}); err != nil {
			t.Fatal(err)
		}
		// Deliberately do NOT drain between ops: the next packets must churn
		// the pool while this op's tail byte is still pending.
	}
	pe.c.Env.Run()
	want := make([]byte, sz)
	for op := 0; op < ops; op++ {
		fill(want, op)
		if got := pe.srv.Bytes()[op*sz : (op+1)*sz]; !bytes.Equal(got, want) {
			t.Fatalf("op %d: committed %x (tail %x), want %x (tail %x) — torn write read a recycled buffer",
				op, got[:4], got[sz-1], want[:4], want[sz-1])
		}
	}
}

// TestArenaAliasingMangledCopy corrupts one delivery's payload past the
// ICRC. The receiver must commit a PRIVATE pooled copy with exactly one
// flipped bit — and the flip must not leak into the sender's buffer (which
// RC retransmission would replay) or any other op's data.
func TestArenaAliasingMangledCopy(t *testing.T) {
	pe := newPair(t, nic.RC)
	n := 0
	pe.c.Fabric.SetInterceptor(func(m *fabric.Message) fabric.Verdict {
		n++
		if n == 1 {
			return fabric.Verdict{CorruptPayload: true}
		}
		return fabric.Verdict{}
	})
	const sz = 64
	fill(pe.cli.Bytes()[:sz], 1)
	src := append([]byte(nil), pe.cli.Bytes()[:sz]...)
	pe.qpA.PostSend(nic.SendWR{WRID: 1, Op: nic.OpWrite, Signaled: true,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: sz,
		RKey: pe.srv.RKey, RAddr: pe.srv.Base})
	pe.c.Env.Run()

	if !bytes.Equal(pe.cli.Bytes()[:sz], src) {
		t.Fatal("sender's source buffer changed — the mangled copy aliased it")
	}
	diff := 0
	for i := 0; i < sz; i++ {
		for b := pe.srv.Bytes()[i] ^ src[i]; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("committed data differs from source by %d bits, want exactly 1 (the injected flip)", diff)
	}
	if pe.c.Hosts[1].NIC.Stats.PayloadMangles != 1 {
		t.Fatalf("PayloadMangles = %d, want 1", pe.c.Hosts[1].NIC.Stats.PayloadMangles)
	}

	// A later clean write into the same region must land exact: the mangled
	// copy's pooled buffer gets reused here.
	fill(pe.cli.Bytes()[:sz], 2)
	pe.qpA.PostSend(nic.SendWR{WRID: 2, Op: nic.OpWrite, Signaled: true,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: sz,
		RKey: pe.srv.RKey, RAddr: pe.srv.Base})
	pe.c.Env.Run()
	if !bytes.Equal(pe.srv.Bytes()[:sz], pe.cli.Bytes()[:sz]) {
		t.Fatal("clean write after mangled delivery did not land exact")
	}
}

// TestArenaAliasingInlineRetransmit streams inline RC sends while the
// receiver periodically drops data packets, forcing timeout retransmission
// from the inflight entries' inline buffers. Those buffers retire into the
// pool only at ACK time; a premature retire would let a new send overwrite
// payload a pending retransmit still needs.
func TestArenaAliasingInlineRetransmit(t *testing.T) {
	pe := newPair(t, nic.RC)
	pe.c.Hosts[0].NIC.Cfg.RetransmitTimeout = 5 * sim.Microsecond
	const ops = 30
	const sz = 48
	bufs := make([][]byte, ops)
	for op := 0; op < ops; op++ {
		if op%3 == 0 {
			pe.c.Hosts[1].NIC.DropNextDataPackets(1)
		}
		fill(pe.cli.Bytes()[:sz], op)
		dst := pe.c.Hosts[1].Mem.Register(4096, memory.PageSize4K, memory.LocalWrite)
		bufs[op] = dst.Bytes()
		if err := pe.qpB.PostRecv(nic.RecvWR{WRID: uint64(op), LKey: dst.LKey, LAddr: dst.Base, Len: 4096}); err != nil {
			t.Fatal(err)
		}
		if err := pe.qpA.PostSend(nic.SendWR{WRID: uint64(op), Op: nic.OpSend, Signaled: true, Inline: true,
			LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: sz}); err != nil {
			t.Fatal(err)
		}
		// Immediately dirty the source region: an inline post must have
		// captured the payload at post time into its own buffer.
		fill(pe.cli.Bytes()[:sz], 999)
		pe.c.Env.Run()
	}
	want := make([]byte, sz)
	for op := 0; op < ops; op++ {
		fill(want, op)
		if !bytes.Equal(bufs[op][:sz], want) {
			t.Fatalf("op %d: received %x..., want %x... — inline buffer retired or reused too early", op, bufs[op][:8], want[:8])
		}
	}
	if pe.c.Hosts[0].NIC.Stats.QPRetransmits == 0 {
		t.Fatal("no retransmits happened; the drop schedule did not exercise the replay path")
	}
}

// TestArenaAliasingDuplicateOfMangled combines the two per-delivery hazards:
// a duplicated message whose first copy is payload-corrupted. The clean
// duplicate must still commit the original bytes after the mangled private
// copy committed its flip — ordering and buffer ownership must not tangle.
func TestArenaAliasingDuplicateOfMangled(t *testing.T) {
	pe := newPair(t, nic.RC)
	n := 0
	pe.c.Fabric.SetInterceptor(func(m *fabric.Message) fabric.Verdict {
		n++
		if n == 1 {
			return fabric.Verdict{CorruptPayload: true, Duplicate: true}
		}
		return fabric.Verdict{}
	})
	const sz = 64
	fill(pe.cli.Bytes()[:sz], 7)
	pe.qpA.PostSend(nic.SendWR{WRID: 1, Op: nic.OpWrite, Signaled: true,
		LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: sz,
		RKey: pe.srv.RKey, RAddr: pe.srv.Base})
	pe.c.Env.Run()
	// The mangled first copy commits, then the clean duplicate is rejected
	// as a PSN duplicate (RC) — so committed data carries the single flip,
	// and crucially no recycled-buffer garbage.
	diff := 0
	for i := 0; i < sz; i++ {
		for b := pe.srv.Bytes()[i] ^ pe.cli.Bytes()[i]; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff > 1 {
		t.Fatalf("committed data differs from source by %d bits, want ≤1 — a pooled buffer was reused while aliased", diff)
	}
	// Follow-on traffic over the reused arenas stays exact.
	for op := 0; op < 20; op++ {
		fill(pe.cli.Bytes()[:sz], 100+op)
		if err := pe.qpA.PostSend(nic.SendWR{WRID: uint64(2 + op), Op: nic.OpWrite, Signaled: true,
			LKey: pe.cli.LKey, LAddr: pe.cli.Base, Len: sz,
			RKey: pe.srv.RKey, RAddr: pe.srv.Base + uint64(sz)}); err != nil {
			t.Fatal(err)
		}
		pe.c.Env.Run()
		if !bytes.Equal(pe.srv.Bytes()[sz:2*sz], pe.cli.Bytes()[:sz]) {
			t.Fatalf("follow-on op %d corrupted", op)
		}
	}
}
