package bench

import (
	"fmt"

	"scalerpc/internal/faults"
)

func init() {
	register("faults", "ScaleRPC goodput and tail latency under injected message loss", runFaultSweep)
}

// runFaultSweep sweeps the uniform drop rate and reports ScaleRPC goodput
// (completed RPCs only — every drop is recovered by RC retransmission or the
// client's warmup retry, so nothing is lost, just late) and p99 batch
// latency. The curves show what the paper's lossless-fabric assumption is
// worth: RC absorbs sub-percent loss with a modest tail, while percent-level
// loss stretches the tail by the retransmit timeout per episode.
func runFaultSweep(opts Options) *Result {
	r := &Result{
		ID: "faults", Title: "ScaleRPC under uniform message loss (40 clients, batch 4, 32 B echo)",
		XLabel: "drop rate (%)", YLabel: "Mops/s or us",
	}
	rates := []float64{0, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05}
	if opts.Quick {
		rates = []float64{0, 0.01, 0.05}
	}
	for _, dr := range rates {
		o := opts
		if dr > 0 {
			o.Faults = faults.DropAll(fmt.Sprintf("drop%g", dr), dr)
		}
		out := runRPC(rpcRun{
			transport: "ScaleRPC", threads: 40, batch: 4, payload: 32, opts: o,
		})
		r.AddPoint("goodput", dr*100, out.tputMops)
		r.AddPoint("p50(us)", dr*100, float64(out.lat.Quantile(0.50))/1000)
		r.AddPoint("p99(us)", dr*100, float64(out.lat.Quantile(0.99))/1000)
	}
	r.Note("goodput counts completed RPCs only; zero are lost — drops are recovered via NAK/timeout retransmission and the warmup re-stage path")
	r.Note("p99 grows with drop rate: each loss episode costs at least one 20us retransmit timeout or a context-switch retry round")
	return r
}
