package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"scalerpc/internal/chaos"
	"scalerpc/internal/sim"
)

// schedFingerprint captures everything a scheduler swap could plausibly
// perturb: the full JSON artifact of each run (per-op latencies, violation
// lists, telemetry counters), the total number of dispatched events, and
// the final virtual clock. All fields are virtual-time deterministic —
// chaos.Result and loadgen.Report contain no wall-clock measurements — so
// byte equality across schedulers is a sound assertion.
type schedFingerprint struct {
	name      string
	chaosJSON [][]byte
	macroJSON []byte
	events    uint64
	virtualNs int64
}

// TestSchedulerEquivalence pins that the hierarchical timing wheel and the
// binary-heap scheduler produce byte-identical simulations. The wheel must
// be a pure performance substitution: same (at, seq) dispatch order, same
// event counts, same artifacts. It runs every chaos fault class plus the
// loadgen macro scenario under each scheduler and compares fingerprints.
func TestSchedulerEquivalence(t *testing.T) {
	run := func(sched string) schedFingerprint {
		prev := sim.SetDefaultScheduler(sched)
		defer sim.SetDefaultScheduler(prev)
		fp := schedFingerprint{name: sched}

		for _, class := range chaos.Classes() {
			res, err := chaos.Run(chaos.Config{Class: class, Seed: 5, Clients: 4, Calls: 20})
			if err != nil {
				t.Fatalf("%s/%s: %v", sched, class, err)
			}
			b, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			fp.chaosJSON = append(fp.chaosJSON, b)
		}

		m, rep := runSimSpeedMacroOnce(Options{Warmup: 200 * sim.Microsecond, Duration: 1 * sim.Millisecond, Seed: 7})
		fp.macroJSON = rep.JSON()
		fp.events = m.Events
		fp.virtualNs = m.VirtualNs
		return fp
	}

	heap := run("heap")
	wheel := run("wheel")

	for i, class := range chaos.Classes() {
		if !bytes.Equal(heap.chaosJSON[i], wheel.chaosJSON[i]) {
			t.Errorf("chaos class %q: result JSON differs between heap and wheel schedulers\nheap:  %s\nwheel: %s",
				class, heap.chaosJSON[i], wheel.chaosJSON[i])
		}
	}
	if !bytes.Equal(heap.macroJSON, wheel.macroJSON) {
		t.Errorf("loadgen macro report differs between heap and wheel schedulers\nheap:  %s\nwheel: %s",
			heap.macroJSON, wheel.macroJSON)
	}
	if heap.events != wheel.events {
		t.Errorf("macro dispatched events: heap=%d wheel=%d — schedulers disagree on event count", heap.events, wheel.events)
	}
	if heap.virtualNs != wheel.virtualNs {
		t.Errorf("macro final virtual clock: heap=%d wheel=%d", heap.virtualNs, wheel.virtualNs)
	}
}
