package bench

import (
	"encoding/binary"
	"fmt"
	"sort"

	"scalerpc/internal/chaos"
	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/mica"
	"scalerpc/internal/shard"
	"scalerpc/internal/sim"
	"scalerpc/internal/smallbank"
	"scalerpc/internal/stats"
	"scalerpc/internal/txn"
)

func init() {
	register("shardbench", "Sharded KV: SmallBank Mtxns/s vs shard hosts; hot-key coalescing p99", runShardBench)
	register("shardfailover", "Seeded shard-failover matrix: four invariants across crash schedules", runShardFailover)
}

// shardPartitions is fixed across the host sweep so the knee isolates the
// serving capacity, not the placement granularity.
const shardPartitions = 16

// shardStoreCfg sizes each per-partition store to hold its slice of the
// SmallBank table (2 rows per account over shardPartitions partitions).
func shardStoreCfg(quick bool) mica.Config {
	if quick {
		return mica.Config{Buckets: 1 << 10, Items: 1 << 12, SlotSize: 128}
	}
	return mica.Config{Buckets: 1 << 16, Items: 1 << 18, SlotSize: 128}
}

// shardSmallBankPoint runs nCoords routed coordinators against a sharded
// deployment on shardN hosts and returns committed Mtxns/s.
func shardSmallBankPoint(shardN, nCoords int, sbCfg smallbank.Config, opts Options) (float64, txn.CoordinatorStats) {
	const clientHosts = 4
	ccfg := cluster.Default(shardN + 1 + clientHosts)
	ccfg.Seed = opts.Seed + uint64(shardN)
	c := cluster.New(ccfg)
	defer c.Close()

	hosts := make([]int, shardN)
	for i := range hosts {
		hosts[i] = i
	}
	opts.instrument(c)
	dcfg := shard.DefaultDeployConfig(shardPartitions, hosts, shardN, shardStoreCfg(opts.Quick))
	d := shard.Deploy(c, dcfg)
	if err := smallbank.LoadWith(sbCfg, d.LoadKV); err != nil {
		panic(err)
	}

	horizon := opts.Warmup + opts.Duration
	commits := make([]uint64, nCoords)
	coords := make([]*txn.Coordinator, nCoords)
	for i := 0; i < nCoords; i++ {
		i := i
		ch := c.Hosts[shardN+1+i%clientHosts]
		ch.Spawn("shard-sb-coord", func(t *host.Thread) {
			r := d.NewRouter(ch, shard.DefaultRouterConfig())
			co := d.NewCoordinator(r, uint64(i+1))
			coords[i] = co
			gen := smallbank.NewGen(sbCfg, opts.Seed*733+uint64(i))
			t.P.Sleep(sim.Duration(i%64) * 311)
			var measured uint64
			started := false
			txn.RunLoop(t, co, gen.Next, func() bool {
				now := t.P.Now()
				if !started && now >= opts.Warmup {
					started = true
					measured = co.Stats.Commits
				}
				return now >= horizon
			})
			if started {
				commits[i] = co.Stats.Commits - measured
			}
		})
	}
	c.Env.RunUntil(horizon + 500*sim.Microsecond)
	opts.Metrics.Record(fmt.Sprintf("smallbank/hosts%d", shardN), c)
	var total uint64
	var agg txn.CoordinatorStats
	for i, co := range coords {
		total += commits[i]
		if co != nil {
			agg.Commits += co.Stats.Commits
			agg.LockAborts += co.Stats.LockAborts
			agg.ValidationAborts += co.Stats.ValidationAborts
		}
	}
	return mops(total, opts.Duration), agg
}

// shardHotKeyPoint drives worker threads sharing one router through a
// Zipf-skewed closed-loop read workload and returns the p50/p99 get
// latencies in microseconds.
func shardHotKeyPoint(coalesce bool, opts Options) (p50, p99 float64, coalesced uint64) {
	const (
		workers = 24
		keys    = 1024
		theta   = 1.35
	)
	ops := 400
	if opts.Quick {
		ops = 100
	}
	ccfg := cluster.Default(6) // 4 shard hosts + director + client
	ccfg.Seed = opts.Seed + 100
	c := cluster.New(ccfg)
	defer c.Close()
	opts.instrument(c)
	dcfg := shard.DefaultDeployConfig(shardPartitions, []int{0, 1, 2, 3}, 4, shardStoreCfg(true))
	d := shard.Deploy(c, dcfg)

	key := func(id uint64) []byte {
		k := make([]byte, 8)
		binary.LittleEndian.PutUint64(k, id)
		return k
	}
	for i := uint64(0); i < keys; i++ {
		if err := d.LoadKV(key(i), []byte(fmt.Sprintf("hot-%04d", i))); err != nil {
			panic(err)
		}
	}

	rcfg := shard.DefaultRouterConfig()
	rcfg.Coalesce = coalesce
	ch := c.Hosts[5]
	var lats []float64
	done := 0
	ch.Spawn("shard-hot-lead", func(t *host.Thread) {
		r := d.NewRouter(ch, rcfg)
		for w := 0; w < workers; w++ {
			w := w
			ch.Spawn("shard-hot-worker", func(t *host.Thread) {
				kv := r.KVClient(uint16(w + 1))
				z := stats.NewZipf(stats.NewRNG(opts.Seed*7919+uint64(w)+1), keys, theta)
				for s := 0; s < ops; s++ {
					k := key(z.Next())
					start := t.P.Now()
					if _, found, ok := kv.Get(t, k); ok && found {
						lats = append(lats, float64(t.P.Now()-start)/1000.0)
					}
				}
				done++
			})
		}
	})
	for done < workers && c.Env.Now() < 200*sim.Millisecond {
		c.Env.RunUntil(c.Env.Now() + sim.Time(sim.Millisecond))
	}
	opts.Metrics.Record(fmt.Sprintf("hotkey/coalesce=%v", coalesce), c)
	sort.Float64s(lats)
	q := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	return q(0.50), q(0.99), d.Stats.Coalesced
}

// shardBenchArtifact is the machine-readable record for BENCH_shard_smallbank.json.
type shardBenchArtifact struct {
	Accounts    int                  `json:"accounts"`
	Partitions  int                  `json:"partitions"`
	Coords      int                  `json:"coordinators"`
	Knee        []shardKneePoint     `json:"knee"`
	HotKey      []shardHotKeyResult  `json:"hot_key"`
	Coordinator txn.CoordinatorStats `json:"coordinator_totals"`
}

type shardKneePoint struct {
	ShardHosts int     `json:"shard_hosts"`
	MtxnsPerS  float64 `json:"mtxns_per_s"`
}

type shardHotKeyResult struct {
	Coalesce  bool    `json:"coalesce"`
	P50us     float64 `json:"p50_us"`
	P99us     float64 `json:"p99_us"`
	Coalesced uint64  `json:"coalesced"`
}

func runShardBench(opts Options) *Result {
	r := &Result{
		ID: "shardbench", Title: "Sharded SmallBank knee + Zipf hot-key coalescing",
		XLabel: "shard hosts", YLabel: "Mtxns/s",
	}
	sbCfg := smallbank.DefaultConfig()
	nCoords := 48
	hostCounts := []int{1, 2, 4, 6}
	if opts.Quick {
		sbCfg.Accounts = 20_000
		nCoords = 16
		hostCounts = []int{2, 4}
	} else {
		sbCfg.Accounts = 1_000_000
	}

	art := shardBenchArtifact{
		Accounts: sbCfg.Accounts, Partitions: shardPartitions, Coords: nCoords,
	}
	for _, n := range hostCounts {
		tput, agg := shardSmallBankPoint(n, nCoords, sbCfg, opts)
		r.AddPoint("SmallBank", float64(n), tput)
		art.Knee = append(art.Knee, shardKneePoint{ShardHosts: n, MtxnsPerS: tput})
		art.Coordinator.Commits += agg.Commits
		art.Coordinator.LockAborts += agg.LockAborts
		art.Coordinator.ValidationAborts += agg.ValidationAborts
		r.Notef("SmallBank %d accounts on %d shard hosts: %.3f Mtxns/s (commits=%d lock=%d val=%d)",
			sbCfg.Accounts, n, tput, agg.Commits, agg.LockAborts, agg.ValidationAborts)
	}

	tbl := Table{
		Title:  "Zipf(1.35) hot-key reads, 24 workers sharing one router",
		Header: []string{"coalesce", "p50_us", "p99_us", "coalesced"},
	}
	for _, co := range []bool{false, true} {
		p50, p99, merged := shardHotKeyPoint(co, opts)
		art.HotKey = append(art.HotKey, shardHotKeyResult{Coalesce: co, P50us: p50, P99us: p99, Coalesced: merged})
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%v", co), fmt.Sprintf("%.2f", p50), fmt.Sprintf("%.2f", p99),
			fmt.Sprintf("%d", merged),
		})
	}
	r.Tables = append(r.Tables, tbl)
	if len(art.HotKey) == 2 && art.HotKey[0].P99us > 0 {
		r.Notef("hot-key p99: %.2f µs uncoalesced vs %.2f µs coalesced (%d reads merged)",
			art.HotKey[0].P99us, art.HotKey[1].P99us, art.HotKey[1].Coalesced)
	}
	r.AddArtifact("BENCH_shard_smallbank.json", marshalArtifact(art))
	return r
}

// shardFailoverSeeds covers the acceptance matrix: 20 distinct crash
// schedules (the crash point cycles over 8 offsets as seed%8).
var shardFailoverSeeds = 20

func runShardFailover(opts Options) *Result {
	r := &Result{
		ID: "shardfailover", Title: "Seeded shard-failover invariants (crash primary mid-2PC)",
		XLabel: "seed", YLabel: "violations (must be 0)",
	}
	seeds := shardFailoverSeeds
	if opts.Quick {
		seeds = 4
	}
	tbl := Table{
		Title:  "per-seed verdicts",
		Header: []string{"seed", "crash_at_us", "acked", "exec", "repl", "dedup", "epoch", "commits", "violations"},
	}
	var results []*chaos.ShardResult
	var violations int
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		res, err := chaos.RunShard(chaos.ShardConfig{Seed: seed})
		if err != nil {
			panic(err)
		}
		results = append(results, res)
		violations += len(res.Violations)
		r.AddPoint("violations", float64(seed), float64(len(res.Violations)))
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", res.Seed), fmt.Sprintf("%d", res.CrashAtNs/1000),
			fmt.Sprintf("%d", res.Acked), fmt.Sprintf("%d", res.ExecApplies),
			fmt.Sprintf("%d", res.ReplApplies), fmt.Sprintf("%d", res.DedupHits),
			fmt.Sprintf("%d", res.FinalEpoch), fmt.Sprintf("%d", res.TxnCommits),
			fmt.Sprintf("%d", len(res.Violations)),
		})
	}
	r.Tables = append(r.Tables, tbl)
	r.AddArtifact("BENCH_shard_failover.json", marshalArtifact(results))
	r.Notef("%d seeded crash schedules, %d invariant violations", seeds, violations)
	return r
}
