package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"scalerpc/internal/cluster"
	"scalerpc/internal/loadgen"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
)

func init() {
	register("simspeed", "DES kernel raw speed: wall-clock events/sec driving a full ScaleRPC cluster", runSimSpeed)
}

// SimSpeedGate is the committed floor for the macro events/sec number,
// loaded from results/BENCH_simspeed.json by scalebench's -simspeed-gate
// flag. The CI smoke job fails when the current run regresses more than 20%
// below it. The floor is set well under the development-machine measurement
// to absorb runner-to-runner hardware variance; the normalized macro cost
// (calibration events per macro event) is recorded alongside for diagnosing
// whether a regression is machine speed or scheduler work.
type SimSpeedGate struct {
	EventsPerSec float64 `json:"gate_events_per_sec"`
}

// simSpeedStats is the machine-readable BENCH_simspeed.json payload.
type simSpeedStats struct {
	Schema    string   `json:"schema"`
	Scheduler string   `json:"scheduler"`
	GoMaxProc int      `json:"gomaxprocs,omitempty"`
	Macro     macroRun `json:"macro"`
	// Calib is a pure scheduler self-chained callback loop: it measures the
	// kernel's raw dispatch rate on this machine, so macro regressions can be
	// normalized against hardware speed.
	Calib calibRun `json:"calib"`
	// NormalizedMacroCost is calib events/sec divided by macro events/sec:
	// how many raw-dispatch-equivalents one macro (full cluster) event costs.
	// Unlike absolute events/sec this is stable across machines.
	NormalizedMacroCost float64 `json:"normalized_macro_cost"`
	// Baseline records the pre-refactor heap-scheduler measurement this PR
	// improved on, taken on the same machine as Macro at commit time.
	Baseline *baselineRec `json:"baseline_pre_refactor,omitempty"`
	// GateEventsPerSec is the regression floor for CI (see SimSpeedGate).
	GateEventsPerSec float64 `json:"gate_events_per_sec"`
}

type macroRun struct {
	Clients      int     `json:"clients"`
	OfferedRate  float64 `json:"offered_rate"`
	VirtualNs    int64   `json:"virtual_ns"`
	WallNs       int64   `json:"wall_ns"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	RPCsDone     uint64  `json:"rpcs_completed"`
	Callbacks    uint64  `json:"callback_events"`
	ProcWakes    uint64  `json:"proc_wake_events"`
	// WakesByTag breaks proc wakes down by source:
	// [start, timer, signal, queue, resource].
	WakesByTag [5]uint64 `json:"proc_wakes_by_tag"`
	// SpeedRatio is virtual ns simulated per wall ns spent.
	SpeedRatio float64 `json:"speed_ratio"`
	// Reps is how many times the identical scenario ran; WallNs is the
	// minimum (least-interference) wall time and all virtual results —
	// event count, RPC completions, final clock — matched across reps.
	Reps int `json:"reps"`
	// BaselineEquivEventsPerSec normalizes wall time to the scenario's
	// PRE-refactor event decomposition. The refactor deliberately removed
	// events (batched CPU charging collapses per-slot charge sleeps), so
	// raw events/sec undercounts progress: the same virtual scenario now
	// takes ~3.3x fewer events. This metric divides the baseline's event
	// count for the identical scenario by the current wall time — i.e. how
	// fast the refactored kernel chews through the same virtual work.
	BaselineEquivEventsPerSec float64 `json:"baseline_equiv_events_per_sec"`
	// SpeedupVsBaseline is baseline wall time / current wall time for the
	// identical scenario (equals BaselineEquivEventsPerSec / baseline
	// events/sec by construction).
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline"`
}

type calibRun struct {
	Events       uint64  `json:"events"`
	WallNs       int64   `json:"wall_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	// ProcWakesPerSec measures the goroutine-process resume/yield handshake,
	// the other kernel hot path (10k loadgen clients are all Procs).
	ProcWakesPerSec float64 `json:"proc_wakes_per_sec"`
}

type baselineRec struct {
	EventsPerSec float64 `json:"events_per_sec"`
	Events       uint64  `json:"events"`
	WallNs       int64   `json:"wall_ns"`
	Note         string  `json:"note"`
}

// Pre-refactor measurement of the identical macro scenario (256 clients,
// 2 Mops offered, full windows, seed 1), taken on the development machine
// immediately before this refactor landed: binary-heap scheduler, per-slot
// CPU charge sleeps, per-packet allocations. Kept in code so every
// regenerated BENCH_simspeed.json carries the comparison. Note the event
// count: the old charging discipline decomposed the same virtual work into
// 3.3x more events, which is why current raw events/sec is NOT comparable
// to preRefactorEventsPerSec — compare baseline_equiv_events_per_sec (or
// equivalently speedup_vs_baseline) instead.
const (
	preRefactorEvents       = 3_047_707
	preRefactorWallNs       = 3_505_000_000
	preRefactorEventsPerSec = float64(preRefactorEvents) / (float64(preRefactorWallNs) / 1e9)
)

// simSpeedGateFloor is the committed CI floor for RAW macro events/sec:
// conservative (≈1/4 of the post-refactor development-machine measurement,
// which runs 1.3-1.5 M events/s) so slower CI runners pass while a real
// scheduler regression still trips the -simspeed-gate comparison on
// like-for-like hardware.
const simSpeedGateFloor = 0.35e6

// runSimSpeedMacro executes the macro scenario macroReps times and reports
// the minimum wall time (the least-interference repetition; the virtual
// results are deterministic and are cross-checked to match across reps).
func runSimSpeedMacro(opts Options) (macroRun, *loadgen.Report) {
	best, rep := runSimSpeedMacroOnce(opts)
	for i := 1; i < macroReps; i++ {
		m, r := runSimSpeedMacroOnce(opts)
		if m.Events != best.Events || m.RPCsDone != best.RPCsDone || m.VirtualNs != best.VirtualNs {
			panic(fmt.Sprintf("simspeed: macro run not deterministic across reps: events %d vs %d, rpcs %d vs %d, end %d vs %d",
				m.Events, best.Events, m.RPCsDone, best.RPCsDone, m.VirtualNs, best.VirtualNs))
		}
		if m.WallNs < best.WallNs {
			best, rep = m, r
		}
	}
	best.Reps = macroReps
	best.BaselineEquivEventsPerSec = float64(preRefactorEvents) / (float64(best.WallNs) / 1e9)
	best.SpeedupVsBaseline = float64(preRefactorWallNs) / float64(best.WallNs)
	return best, rep
}

// macroReps is how many times the macro scenario repeats; wall time is
// min-of-reps so one noisy neighbor doesn't pollute the committed numbers.
const macroReps = 3

// runSimSpeedMacroOnce executes the macro scenario once and measures it.
func runSimSpeedMacroOnce(opts Options) (macroRun, *loadgen.Report) {
	const clients = 256
	const clientHosts = 8
	const offered = 2_000_000.0

	c := cluster.New(cluster.Default(1 + clientHosts))
	defer c.Close()
	opts.instrument(c)
	srv := c.Hosts[0]

	s := scalerpc.NewServer(srv, scalerpc.DefaultServerConfig())
	s.Register(1, echoHandler)
	s.Start()

	w := loadgen.Workload{
		Name:        "simspeed",
		OfferedRate: offered,
		Arrival:     loadgen.ArrivalPoisson,
		Warmup:      opts.Warmup,
		Duration:    opts.Duration,
		Seed:        opts.Seed,
		Handler:     1,
		Tenants:     []loadgen.TenantSpec{{Name: "all", Size: loadgen.FixedSize(32)}},
	}
	cl := make([]loadgen.Client, clients)
	for i := range cl {
		ch := c.Hosts[1+i%clientHosts]
		sig := sim.NewSignal(c.Env)
		cl[i] = loadgen.Client{Host: ch, Conn: s.Connect(ch, sig), Sig: sig}
	}
	runner := loadgen.NewRunner(w, cl, c.Telemetry.UniqueScope("loadgen"))
	runner.Start(c.Env)

	start := time.Now()
	end := c.Env.RunUntil(runner.DrainDeadline() + 100*sim.Microsecond)
	wall := time.Since(start)

	rep := runner.Report()
	cb, pr := c.Env.FiredBreakdown()
	m := macroRun{
		Callbacks:   cb,
		ProcWakes:   pr[0] + pr[1] + pr[2] + pr[3] + pr[4],
		WakesByTag:  pr,
		Clients:     clients,
		OfferedRate: offered,
		VirtualNs:   int64(end),
		WallNs:      wall.Nanoseconds(),
		Events:      c.Env.Fired(),
		RPCsDone:    rep.Completed,
	}
	if m.WallNs > 0 {
		m.EventsPerSec = float64(m.Events) / wall.Seconds()
		m.SpeedRatio = float64(m.VirtualNs) / float64(m.WallNs)
	}
	return m, rep
}

// runSimSpeedCalib measures the kernel's raw dispatch rate: a self-chained
// callback loop (pure scheduler, empty handlers) and a single process
// sleep/wake loop (the resume/yield handshake).
func runSimSpeedCalib() calibRun {
	const n = 2_000_000
	e := sim.NewEnv()
	left := n
	var fn func()
	fn = func() {
		left--
		if left > 0 {
			e.At(1, fn)
		}
	}
	e.At(1, fn)
	start := time.Now()
	e.Run()
	wall := time.Since(start)

	const wakes = 200_000
	pe := sim.NewEnv()
	pe.Spawn("calib", func(p *sim.Proc) {
		for i := 0; i < wakes; i++ {
			p.Sleep(1)
		}
	})
	pstart := time.Now()
	pe.Run()
	pwall := time.Since(pstart)
	pe.Close()

	cr := calibRun{Events: n, WallNs: wall.Nanoseconds()}
	if wall > 0 {
		cr.EventsPerSec = float64(n) / wall.Seconds()
	}
	if pwall > 0 {
		cr.ProcWakesPerSec = float64(wakes) / pwall.Seconds()
	}
	return cr
}

func runSimSpeed(opts Options) *Result {
	r := &Result{
		ID: "simspeed", Title: "Simulator raw speed: wall-clock events/sec (macro ScaleRPC cluster + kernel calibration)",
		XLabel: "metric (index)", YLabel: "millions/sec",
	}
	macro, rep := runSimSpeedMacro(opts)
	calib := runSimSpeedCalib()

	stats := simSpeedStats{
		Schema:    "simspeed/v1",
		Scheduler: sim.SchedulerName(),
		Macro:     macro,
		Calib:     calib,
		Baseline: &baselineRec{
			EventsPerSec: preRefactorEventsPerSec,
			Events:       preRefactorEvents,
			WallNs:       preRefactorWallNs,
			Note:         "container/heap scheduler, per-slot charge sleeps, per-packet allocations (pre-refactor), identical scenario",
		},
		GateEventsPerSec: simSpeedGateFloor,
	}
	if macro.EventsPerSec > 0 {
		stats.NormalizedMacroCost = calib.EventsPerSec / macro.EventsPerSec
	}
	b, err := json.MarshalIndent(&stats, "", " ")
	if err != nil {
		panic(err)
	}
	r.AddArtifact("BENCH_simspeed.json", b)

	r.AddPoint("macro-events-per-sec", 0, macro.EventsPerSec/1e6)
	r.AddPoint("calib-events-per-sec", 1, calib.EventsPerSec/1e6)
	r.AddPoint("proc-wakes-per-sec", 2, calib.ProcWakesPerSec/1e6)
	r.Notef("macro: %d clients, %.0f events (%d callbacks, %d proc wakes) in %.1f ms wall (min of %d reps) = %.2f M events/s, %d RPCs",
		macro.Clients, float64(macro.Events), macro.Callbacks, macro.ProcWakes, float64(macro.WallNs)/1e6, macro.Reps, macro.EventsPerSec/1e6, macro.RPCsDone)
	r.Notef("calib: raw dispatch %.2f M events/s, proc wake %.2f M/s; normalized macro cost %.2f dispatch-equivalents/event",
		calib.EventsPerSec/1e6, calib.ProcWakesPerSec/1e6, stats.NormalizedMacroCost)
	r.Notef("vs pre-refactor baseline (same scenario: %d events in %.0f ms): %.2f M baseline-equivalent events/s vs %.2f M = %.1fx speedup",
		int64(preRefactorEvents), float64(preRefactorWallNs)/1e6, macro.BaselineEquivEventsPerSec/1e6, preRefactorEventsPerSec/1e6, macro.SpeedupVsBaseline)
	if !rep.Pass {
		r.Note("warning: macro run failed its (trivial) completion check; events/sec may not reflect steady state")
	}
	return r
}
