package bench

import (
	"fmt"

	"scalerpc/internal/baseline/fasstrpc"
	"scalerpc/internal/baseline/herdrpc"
	"scalerpc/internal/baseline/rawrpc"
	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/mica"
	"scalerpc/internal/objstore"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
	"scalerpc/internal/smallbank"
	"scalerpc/internal/txn"
)

func init() {
	register("fig16a", "Object-store transactions: 5 systems", runFig16a)
	register("fig16b", "SmallBank transactions: 5 systems", runFig16b)
}

// txnSystems in presentation order. ScaleTX-O is ScaleRPC without
// one-sided verbs; ScaleTX co-uses them (§4.2).
var txnSystems = []string{"RawWrite", "HERD", "FaSST", "ScaleTX-O", "ScaleTX"}

const txnParticipants = 3

// buildTxnDeployment builds participants on hosts[0:3] with the named
// transport and returns a per-client connect function plus the
// participants.
func buildTxnDeployment(c *cluster.Cluster, system string, storeCfg mica.Config) ([]*txn.Participant, func(ch *host.Host, sig *sim.Signal) []rpccore.Conn, bool) {
	parts := make([]*txn.Participant, txnParticipants)
	oneSided := false
	var connFns []func(*host.Host, *sim.Signal) rpccore.Conn
	var scaleSrvs []*scalerpc.Server
	for i := 0; i < txnParticipants; i++ {
		h := c.Hosts[i]
		parts[i] = txn.NewParticipant(h, storeCfg)
		switch system {
		case "RawWrite":
			s := rawrpc.NewServer(h, rawrpc.DefaultServerConfig())
			parts[i].RegisterHandlers(s)
			s.Start()
			connFns = append(connFns, func(ch *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(ch, sig) })
		case "HERD":
			s := herdrpc.NewServer(h, herdrpc.DefaultServerConfig())
			parts[i].RegisterHandlers(s)
			s.Start()
			connFns = append(connFns, func(ch *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(ch, sig) })
		case "FaSST":
			s := fasstrpc.NewServer(h, fasstrpc.DefaultServerConfig())
			parts[i].RegisterHandlers(s)
			s.Start()
			connFns = append(connFns, func(ch *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(ch, sig) })
		case "ScaleTX-O", "ScaleTX":
			oneSided = system == "ScaleTX"
			cfg := scalerpc.DefaultServerConfig()
			// Multi-server deployments need identical group membership on
			// every server, so the per-server dynamic scheduler is off and
			// clients group statically by join order; the NTP-like sync
			// keeps the switch phases aligned (§4.2).
			cfg.Dynamic = false
			cfg.SyncPeriod = 2 * sim.Millisecond
			s := scalerpc.NewServer(h, cfg)
			parts[i].RegisterHandlers(s)
			s.Start()
			scaleSrvs = append(scaleSrvs, s)
			connFns = append(connFns, func(ch *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(ch, sig) })
		default:
			panic("bench: unknown txn system " + system)
		}
	}
	if len(scaleSrvs) > 1 {
		// Multi-server ScaleRPC needs global synchronization (§4.2).
		scalerpc.NewSyncGroup(scaleSrvs)
	}
	connect := func(ch *host.Host, sig *sim.Signal) []rpccore.Conn {
		conns := make([]rpccore.Conn, txnParticipants)
		for i, fn := range connFns {
			conns[i] = fn(ch, sig)
		}
		return conns
	}
	return parts, connect, oneSided
}

// runTxnPoint runs nCoords coordinators of the given system against a
// generator factory and returns committed Mtxns/s plus abort statistics.
func runTxnPoint(system string, nCoords int, storeCfg mica.Config,
	load func([]*txn.Participant) error,
	genFor func(i int) func() *txn.Txn, opts Options) (float64, txn.CoordinatorStats) {

	c := cluster.New(cluster.Default(12))
	defer c.Close()
	parts, connect, oneSided := buildTxnDeployment(c, system, storeCfg)
	if err := load(parts); err != nil {
		panic(err)
	}

	horizon := opts.Warmup + opts.Duration
	commits := make([]uint64, nCoords)
	coords := make([]*txn.Coordinator, nCoords)
	clientHosts := 9 // hosts 3..11
	for i := 0; i < nCoords; i++ {
		i := i
		ch := c.Hosts[txnParticipants+i%clientHosts]
		sig := sim.NewSignal(c.Env)
		co := txn.NewCoordinator(ch, uint64(i+1), parts, connect(ch, sig), oneSided, sig)
		coords[i] = co
		gen := genFor(i)
		co.Spawn(func(t *host.Thread, cc *txn.Coordinator) {
			t.P.Sleep(sim.Duration(i%64) * 311)
			var measured uint64
			started := false
			n, _ := txn.RunLoop(t, cc, gen, func() bool {
				now := t.P.Now()
				if !started && now >= opts.Warmup {
					started = true
					measured = cc.Stats.Commits
				}
				return now >= horizon
			})
			_ = n
			if started {
				commits[i] = cc.Stats.Commits - measured
			}
		})
	}
	c.Env.RunUntil(horizon + 500*sim.Microsecond)
	var total uint64
	var agg txn.CoordinatorStats
	for i, co := range coords {
		total += commits[i]
		agg.Commits += co.Stats.Commits
		agg.LockAborts += co.Stats.LockAborts
		agg.ValidationAborts += co.Stats.ValidationAborts
		agg.OneSidedReads += co.Stats.OneSidedReads
		agg.OneSidedWrites += co.Stats.OneSidedWrites
	}
	return mops(total, opts.Duration), agg
}

func txnStoreCfg(quick bool) mica.Config {
	if quick {
		return mica.Config{Buckets: 1 << 15, Items: 1 << 17, SlotSize: 128}
	}
	return mica.Config{Buckets: 1 << 18, Items: 1 << 21, SlotSize: 128}
}

func objKeys(quick bool) int {
	if quick {
		return 50_000
	}
	return 1 << 20
}

func runFig16a(opts Options) *Result {
	r := &Result{
		ID: "fig16a", Title: "Object-store transactions ((r,w) read/write sets)",
		XLabel: "clients", YLabel: "Mtxns/s",
	}
	mixes := []struct {
		name string
		r, w int
	}{{"r4w0", 4, 0}, {"r3w1", 3, 1}}
	counts := []int{80, 160}
	if opts.Quick {
		counts = []int{80}
	}
	for _, mix := range mixes {
		ocfg := objstore.Config{Keys: objKeys(opts.Quick), ValueSize: 40, ReadSet: mix.r, WriteSet: mix.w}
		for _, n := range counts {
			for _, sys := range txnSystems {
				tput, _ := runTxnPoint(sys, n, txnStoreCfg(opts.Quick),
					func(p []*txn.Participant) error { return objstore.Load(p, ocfg) },
					func(i int) func() *txn.Txn {
						g := objstore.NewGen(ocfg, opts.Seed*131+uint64(i))
						return g.Next
					}, opts)
				r.AddPoint(fmt.Sprintf("%s/%s", sys, mix.name), float64(n), tput)
			}
		}
	}
	r.Note("paper: read-only (a.1) ScaleTX == ScaleTX-O; read-write (a.2) ScaleTX beats RawWrite/HERD/FaSST/ScaleTX-O by 131%/60%/51%/10% at 160 clients")
	return r
}

func runFig16b(opts Options) *Result {
	r := &Result{
		ID: "fig16b", Title: "SmallBank transactions",
		XLabel: "clients", YLabel: "Mtxns/s",
	}
	sbCfg := smallbank.DefaultConfig()
	if opts.Quick {
		sbCfg.Accounts = 20_000
	} else {
		sbCfg.Accounts = 1_000_000
	}
	counts := []int{80, 160}
	if opts.Quick {
		counts = []int{80}
	}
	for _, n := range counts {
		for _, sys := range txnSystems {
			tput, agg := runTxnPoint(sys, n, txnStoreCfg(opts.Quick),
				func(p []*txn.Participant) error { return smallbank.Load(p, sbCfg) },
				func(i int) func() *txn.Txn {
					g := smallbank.NewGen(sbCfg, opts.Seed*733+uint64(i))
					return g.Next
				}, opts)
			r.AddPoint(sys, float64(n), tput)
			if sys == "ScaleTX" {
				r.Notef("ScaleTX@%d aborts: lock=%d validation=%d (one-sided reads=%d writes=%d)",
					n, agg.LockAborts, agg.ValidationAborts, agg.OneSidedReads, agg.OneSidedWrites)
			}
		}
	}
	r.Note("paper: at 160 clients ScaleTX beats RawWrite/HERD/FaSST/ScaleTX-O by 160%/73%/79%/26%")
	return r
}
