package bench

import (
	"fmt"

	"scalerpc/internal/cluster"
	"scalerpc/internal/loadgen"
	"scalerpc/internal/rds"
	"scalerpc/internal/sim"
)

func init() {
	register("rdscrossover", "Remote hash table: one-sided vs RPC vs adaptive across Zipf theta x value size x clients", runRDSCrossover)
}

// The crossover sweep holds the op mix fixed and varies the three axes the
// Brock et al. comparison turns on: contention (Zipf theta), transfer size
// (value bytes, which the one-sided backend amplifies into whole-bucket
// READs), and client count (which saturates the RPC server's workers while
// the one-sided path consumes no server CPU at all).
const (
	// rdsPutFraction is the deterministic put share of every workload.
	rdsPutFraction = 0.20
	// rdsKeys is the per-cell key population (all prepopulated, and sized
	// so no bucket of the 1024-bucket table overflows its 4 slots).
	rdsKeys = 512
	// rdsServerWork is the CPU charge per RPC-served op: the handler-side
	// dispatch + execution cost that one-sided operations avoid entirely.
	rdsServerWork = 2 * sim.Microsecond
	// rdsClientHosts spreads clients so their NICs never bottleneck.
	rdsClientHosts = 4
)

// rdsRatePerClient oversubscribes every backend moderately (~2-4x the
// slowest backend's per-client capacity, which is serial), so achieved
// throughput measures capacity without the warmup backlog swamping the
// measurement window: large values move 4 KB buckets per READ, so their
// per-client capacity is an order of magnitude lower.
func rdsRatePerClient(valSize int) float64 {
	if valSize >= 512 {
		return 250_000
	}
	return 600_000
}

// rdsLayout fixes the table geometry for a value size.
func rdsLayout(valSize int) rds.Layout {
	return rds.Layout{Buckets: 1024, SlotsPerBucket: 4, ValSize: valSize, QueueCap: 64}
}

// rdsCellRun is one (backend, theta, valSize, clients) measurement.
type rdsCellRun struct {
	Backend string  `json:"backend"`
	Theta   float64 `json:"theta"`
	ValSize int     `json:"val_size"`
	Clients int     `json:"clients"`

	OfferedMops  float64 `json:"offered_mops"`
	AchievedMops float64 `json:"achieved_mops"`
	P50Us        float64 `json:"p50_us"`
	P99Us        float64 `json:"p99_us"`
	Completed    uint64  `json:"completed"`
	Errors       uint64  `json:"errors"`

	// Subsystem counters for the cell: where the ops actually went and
	// what the contention machinery did.
	OneSidedOps uint64 `json:"onesided_ops"`
	RPCOps      uint64 `json:"rpc_ops"`
	CASRetries  uint64 `json:"cas_retries"`
	TornRetries uint64 `json:"torn_retries"`
	Switches    uint64 `json:"adaptive_switches,omitempty"`
	Probes      uint64 `json:"adaptive_probes,omitempty"`
	// PrefPutRPC counts adaptive clients that ended the run preferring the
	// RPC backend for puts.
	PrefPutRPC int `json:"adaptive_pref_put_rpc,omitempty"`
}

// rdsRegime summarizes one (theta, valSize, clients) cell across the three
// backends: who won on achieved throughput and how close adaptive came.
type rdsRegime struct {
	Theta   float64 `json:"theta"`
	ValSize int     `json:"val_size"`
	Clients int     `json:"clients"`

	OneSidedMops float64 `json:"onesided_mops"`
	RPCMops      float64 `json:"rpc_mops"`
	AdaptiveMops float64 `json:"adaptive_mops"`

	// Winner is the better pure backend; Margin is its lead over the other
	// (winner/loser - 1).
	Winner string  `json:"winner"`
	Margin float64 `json:"margin"`
	// AdaptiveRatio is adaptive's achieved throughput over the winner's
	// (the acceptance bar is >= 0.9 in every cell).
	AdaptiveRatio float64 `json:"adaptive_ratio"`
}

// rdsCrossArtifact is the machine-readable record for
// BENCH_rds_crossover.json.
type rdsCrossArtifact struct {
	Seed               uint64  `json:"seed"`
	PutFraction        float64 `json:"put_fraction"`
	Keys               int     `json:"keys"`
	ServerWorkNs       int64   `json:"server_work_ns"`
	RatePerClientSmall float64 `json:"rate_per_client_small"`
	RatePerClientLarge float64 `json:"rate_per_client_large"`

	Cells   []rdsCellRun `json:"cells"`
	Regimes []rdsRegime  `json:"regimes"`

	OneSidedWins     int  `json:"onesided_wins"`
	RPCWins          int  `json:"rpc_wins"`
	MinAdaptiveRatio f64s `json:"min_adaptive_ratio"`
	AdaptiveWithin10 bool `json:"adaptive_within_10pct"`
}

// f64s renders with enough precision for the acceptance check without
// drifting across encoders.
type f64s = float64

// rdsPoint runs one backend on one cell through loadgen's open-loop runner
// and returns the populated cell record.
func rdsPoint(kind rds.Kind, theta float64, valSize, clients int, opts Options) rdsCellRun {
	ccfg := cluster.Default(1 + rdsClientHosts)
	// One seed stream per cell shape, shared by the three backends so they
	// face the identical arrival and key sequences.
	ccfg.Seed = opts.Seed + uint64(valSize)*1000 + uint64(clients)*7 + uint64(theta*10)
	c := cluster.New(ccfg)
	defer c.Close()
	opts.instrument(c)

	rcfg := rds.Config{ServerHost: 0, Layout: rdsLayout(valSize), ServerWork: rdsServerWork}
	d := rds.Deploy(c, rcfg)
	d.Srv.Prepopulate(rdsKeys, 0xab)

	w := loadgen.Workload{
		Name:        fmt.Sprintf("rds-%s-t%.1f-v%d-c%d", kind, theta, valSize, clients),
		OfferedRate: rdsRatePerClient(valSize) * float64(clients),
		Arrival:     loadgen.ArrivalPoisson,
		Warmup:      opts.Warmup,
		Duration:    opts.Duration,
		Seed:        ccfg.Seed,
		Tenants: []loadgen.TenantSpec{{
			Name: "rds", Keys: rdsKeys, KeySkew: theta,
			Size: loadgen.FixedSize(valSize),
		}},
	}

	var adas []*rds.Adaptive
	lclients := make([]loadgen.Client, clients)
	for i := range lclients {
		ch := c.Hosts[1+i%rdsClientHosts]
		sig := sim.NewSignal(c.Env)
		cl := d.NewClient(kind, ch, sig)
		if a, ok := cl.(*rds.Adaptive); ok {
			adas = append(adas, a)
		}
		lclients[i] = loadgen.Client{
			Host: ch, Conn: d.NewLoadConn(ch, cl, sig, rdsPutFraction, 4), Sig: sig,
		}
	}
	runner := loadgen.NewRunner(w, lclients, c.Telemetry.UniqueScope("loadgen"))
	runner.Start(c.Env)
	c.Env.RunUntil(runner.DrainDeadline() + 100*sim.Microsecond)
	opts.Metrics.Record(fmt.Sprintf("rds/%s/t%.1f/v%d/c%d", kind, theta, valSize, clients), c)
	rep := runner.Report()

	cell := rdsCellRun{
		Backend: kind.String(), Theta: theta, ValSize: valSize, Clients: clients,
		OfferedMops: w.OfferedRate / 1e6, AchievedMops: rep.AchievedMops,
		P50Us: rep.Tenants[0].P50Us, P99Us: rep.Tenants[0].P99Us,
		Completed: rep.Completed, Errors: rep.Errors,
		OneSidedOps: d.Stats.OneSidedOps, RPCOps: d.Stats.RPCOps,
		CASRetries: d.Stats.CASRetries, TornRetries: d.Stats.TornRetries,
		Switches: d.Stats.Switches, Probes: d.Stats.Probes,
	}
	for _, a := range adas {
		if a.PreferredPut() == rds.KindRPC {
			cell.PrefPutRPC++
		}
	}
	return cell
}

func rdsAxes(quick bool) (thetas []float64, vals, clients []int) {
	thetas = []float64{0.5, 1.2}
	vals = []int{32, 1024}
	if quick {
		return thetas, vals, []int{16}
	}
	return thetas, vals, []int{8, 32}
}

func runRDSCrossover(opts Options) *Result {
	r := &Result{
		ID: "rdscrossover", Title: "Remote data structures: one-sided vs RPC vs adaptive (open-loop Zipf, saturating rate)",
		XLabel: "cell index", YLabel: "achieved Mops/s",
	}
	thetas, vals, clientCounts := rdsAxes(opts.Quick)

	art := rdsCrossArtifact{
		Seed: opts.Seed, PutFraction: rdsPutFraction, Keys: rdsKeys,
		ServerWorkNs:       int64(rdsServerWork),
		RatePerClientSmall: rdsRatePerClient(32), RatePerClientLarge: rdsRatePerClient(1024),
		MinAdaptiveRatio: 1, AdaptiveWithin10: true,
	}
	tbl := Table{
		Title:  fmt.Sprintf("achieved Mops/s (offered %.0fk/%.0fk ops/s/client small/large values, put fraction %.2f)", rdsRatePerClient(32)/1e3, rdsRatePerClient(1024)/1e3, rdsPutFraction),
		Header: []string{"theta", "val", "clients", "one-sided", "rpc", "adaptive", "winner", "ada/win"},
	}
	backends := []rds.Kind{rds.KindOneSided, rds.KindRPC, rds.KindAdaptive}
	cellIdx := 0
	for _, theta := range thetas {
		for _, val := range vals {
			for _, nc := range clientCounts {
				byKind := map[rds.Kind]rdsCellRun{}
				for _, k := range backends {
					cell := rdsPoint(k, theta, val, nc, opts)
					art.Cells = append(art.Cells, cell)
					byKind[k] = cell
					r.AddPoint(k.String(), float64(cellIdx), cell.AchievedMops)
				}
				one, rpc, ada := byKind[rds.KindOneSided], byKind[rds.KindRPC], byKind[rds.KindAdaptive]
				reg := rdsRegime{
					Theta: theta, ValSize: val, Clients: nc,
					OneSidedMops: one.AchievedMops, RPCMops: rpc.AchievedMops,
					AdaptiveMops: ada.AchievedMops,
				}
				win, lose := one.AchievedMops, rpc.AchievedMops
				reg.Winner = "onesided"
				if rpc.AchievedMops > one.AchievedMops {
					win, lose = rpc.AchievedMops, one.AchievedMops
					reg.Winner = "rpc"
					art.RPCWins++
				} else {
					art.OneSidedWins++
				}
				if lose > 0 {
					reg.Margin = win/lose - 1
				}
				if win > 0 {
					reg.AdaptiveRatio = ada.AchievedMops / win
				}
				if reg.AdaptiveRatio < art.MinAdaptiveRatio {
					art.MinAdaptiveRatio = reg.AdaptiveRatio
				}
				if reg.AdaptiveRatio < 0.9 {
					art.AdaptiveWithin10 = false
				}
				art.Regimes = append(art.Regimes, reg)
				tbl.Rows = append(tbl.Rows, []string{
					fmt.Sprintf("%.1f", theta), fmt.Sprintf("%d", val), fmt.Sprintf("%d", nc),
					fmt.Sprintf("%.3f", one.AchievedMops), fmt.Sprintf("%.3f", rpc.AchievedMops),
					fmt.Sprintf("%.3f", ada.AchievedMops),
					reg.Winner, fmt.Sprintf("%.2f", reg.AdaptiveRatio),
				})
				cellIdx++
			}
		}
	}
	r.Tables = append(r.Tables, tbl)
	r.AddArtifact("BENCH_rds_crossover.json", marshalArtifact(art))
	r.Notef("regimes: one-sided wins %d cells, RPC wins %d cells; min adaptive/winner ratio %.2f (acceptance floor 0.90)",
		art.OneSidedWins, art.RPCWins, art.MinAdaptiveRatio)
	r.Note("one-sided wins the small-value cells (a get is one READ, no server CPU) and loses the large-value cells to bucket-READ bandwidth amplification and the contended cells to CAS-retry convoys; the adaptive backend tracks the winner by steering per-op")
	return r
}
