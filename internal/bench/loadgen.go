package bench

import (
	"encoding/json"
	"fmt"

	"scalerpc/internal/cluster"
	"scalerpc/internal/faults"
	"scalerpc/internal/host"
	"scalerpc/internal/loadgen"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
)

func init() {
	register("loadlat", "Open-loop latency vs offered load: ScaleRPC vs RC/UD baselines", runLoadLat)
	register("loadknee", "Max sustainable throughput under a p99 SLO (knee search)", runLoadKnee)
	register("loadmix", "Tenant isolation: latency-sensitive tenant with and without reserved zones", runLoadMix)
	register("loadfaults", "Open-loop SLO compliance under injected message loss", runLoadFaults)
}

// loadRun describes one open-loop data point: a workload driven through a
// transport by loadgen's coordinated-omission-free clients.
type loadRun struct {
	transport   string
	clients     int
	clientHosts int
	w           loadgen.Workload
	// tenantOf maps a client index to its tenant. Defaults to round-robin
	// over the workload's tenants; loadmix overrides it to keep the
	// latency-sensitive population small enough for the reserved zones.
	tenantOf func(i int) int
	// pinned marks tenants admitted via ScaleRPC's reserved
	// (latency-sensitive) zones instead of the rotating groups. Ignored by
	// the baseline transports, which have no such distinction.
	pinned    func(tenant int) bool
	tuneScale func(*scalerpc.ServerConfig)
	// after, when non-nil, runs once the simulation has drained, before the
	// cluster is torn down — the hook for snapshotting reliability counters
	// and fault-plane stats into an experiment's artifact.
	after func(c *cluster.Cluster, plane *faults.Plane)
	opts  Options
}

// runLoad executes one open-loop run and returns its report.
func runLoad(r loadRun) *loadgen.Report {
	if r.clientHosts <= 0 {
		r.clientHosts = 4
	}
	c := cluster.New(cluster.Default(1 + r.clientHosts))
	defer c.Close()
	plane := r.opts.instrument(c)
	srv := c.Hosts[0]

	w := r.w
	if w.Warmup == 0 {
		w.Warmup = r.opts.Warmup
	}
	if w.Duration == 0 {
		w.Duration = r.opts.Duration
	}
	if w.Seed == 0 {
		w.Seed = r.opts.Seed
	}
	w.Handler = 1

	connect := func(ch *host.Host, sig *sim.Signal) rpccore.Conn { return nil }
	connectPinned := connect
	if r.transport == "ScaleRPC" {
		cfg := scalerpc.DefaultServerConfig()
		if r.tuneScale != nil {
			r.tuneScale(&cfg)
		}
		s := scalerpc.NewServer(srv, cfg)
		s.Register(1, echoHandler)
		s.Start()
		connect = func(ch *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(ch, sig) }
		connectPinned = func(ch *host.Host, sig *sim.Signal) rpccore.Conn {
			return s.ConnectLatencySensitive(ch, sig)
		}
	} else {
		connect = buildTransport(r.transport, srv)
		connectPinned = connect
	}

	nt := len(w.Tenants)
	if nt == 0 {
		nt = 1
	}
	clients := make([]loadgen.Client, r.clients)
	for i := range clients {
		tenant := i % nt
		if r.tenantOf != nil {
			tenant = r.tenantOf(i)
		}
		ch := c.Hosts[1+i%r.clientHosts]
		sig := sim.NewSignal(c.Env)
		cf := connect
		if r.pinned != nil && r.pinned(tenant) {
			cf = connectPinned
		}
		clients[i] = loadgen.Client{Host: ch, Conn: cf(ch, sig), Sig: sig, Tenant: tenant}
	}
	runner := loadgen.NewRunner(w, clients, c.Telemetry.UniqueScope("loadgen"))
	runner.Start(c.Env)
	c.Env.RunUntil(runner.DrainDeadline() + 100*sim.Microsecond)
	r.opts.Metrics.Record(fmt.Sprintf("%s/c%d/rate%g", r.transport, r.clients, w.OfferedRate), c)
	if r.after != nil {
		r.after(c, plane)
	}
	return runner.Report()
}

// loadPoint pairs one run's inputs with its full report for the artifact.
type loadPoint struct {
	Transport string          `json:"transport"`
	Rate      float64         `json:"rate"`
	Report    json.RawMessage `json:"report"`
}

func marshalArtifact(v interface{}) []byte {
	b, err := json.MarshalIndent(v, "", " ")
	if err != nil { // artifact types are plain structs; unreachable
		panic(err)
	}
	return b
}

// loadClients is the fixed population for the load experiments — twice the
// NIC's 64-entry QPC cache, so per-client RC connections thrash it (paper
// §2.2) and the open-loop sweeps separate the transports.
const loadClients = 128

func loadRates(quick bool) []float64 {
	if quick {
		return []float64{250_000, 1_000_000, 4_000_000}
	}
	return []float64{250_000, 500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000}
}

func runLoadLat(opts Options) *Result {
	r := &Result{
		ID: "loadlat", Title: "Open-loop p99 latency vs offered load (128 clients, 32 B echo)",
		XLabel: "offered Mops/s", YLabel: "p99 (us) / achieved Mops/s",
	}
	var points []loadPoint
	for _, tr := range []string{"RawWrite", "FaSST", "ScaleRPC"} {
		for _, rps := range loadRates(opts.Quick) {
			rep := runLoad(loadRun{
				transport: tr, clients: loadClients,
				w: loadgen.Workload{
					Name:        fmt.Sprintf("%s@%g", tr, rps),
					OfferedRate: rps,
					Arrival:     loadgen.ArrivalPoisson,
					Tenants:     []loadgen.TenantSpec{{Name: "all", Size: loadgen.FixedSize(32)}},
				},
				opts: opts,
			})
			x := rps / 1e6
			r.AddPoint(tr+"-p99us", x, rep.Tenants[0].P99Us)
			r.AddPoint(tr+"-achieved", x, rep.AchievedMops)
			points = append(points, loadPoint{Transport: tr, Rate: rps, Report: rep.JSON()})
		}
	}
	r.AddArtifact("BENCH_loadgen_lat.json", marshalArtifact(points))
	r.Note("latency is measured from intended arrival (coordinated-omission-free): past a transport's capacity the p99 is backlog-dominated and grows with the window length")
	r.Note("paper's closed-loop fig8 shows the same ordering at 64+ clients: per-client RC (RawWrite) saturates first, ScaleRPC tracks the UD baseline")
	return r
}

// The knee search runs at 400 clients — deep in the regime where per-client
// RC connections thrash the server NIC's 64-entry QPC cache (fig8's
// collapse) while ScaleRPC's rotating groups keep the active QP set
// cache-resident. The trial window is fixed (not Options-scaled): a knee
// trial must be long enough that supra-capacity backlog visibly diverges
// from a stable-but-rotating tail, and the drain must exceed ScaleRPC's
// full rotation cycle (10 groups × 50 us) so sub-capacity runs complete
// everything.
const (
	kneeClients = 400
	kneeHosts   = 10
)

// kneeSLO is the loadknee objective: p99 ≤ 2 ms at ≥ 97% completion. The
// latency limit sits above ScaleRPC's structural rotation tail at 400
// clients (~1.5 ms at mid load) but below the divergent backlog latency
// past either transport's capacity. The completion floor is relaxed from
// the 99.9% default because a stable ScaleRPC run still strands ~1% of
// requests in slice-boundary retries at the drain deadline; genuine
// overload drops completion below 0.96 within one trial window, so 0.97
// cleanly separates divergence from the rotation straggler tail.
func kneeSLO() loadgen.SLO {
	return loadgen.SLO{
		Targets:       []loadgen.SLOTarget{{Q: 0.99, LimitUs: 2000}},
		MinCompletion: 0.97,
	}
}

func runLoadKnee(opts Options) *Result {
	r := &Result{
		ID: "loadknee", Title: "Max sustainable throughput under p99<=2ms (400 clients, knee search)",
		XLabel: "transport (index)", YLabel: "sustainable Mops/s",
	}
	iters := 6
	if opts.Quick {
		iters = 4
	}
	type kneeOut struct {
		Transport string             `json:"transport"`
		Result    loadgen.KneeResult `json:"result"`
	}
	var outs []kneeOut
	for i, tr := range []string{"RawWrite", "ScaleRPC"} {
		tr := tr
		res := loadgen.FindKnee(loadgen.KneeOptions{Lo: 2_000_000, Hi: 6_000_000, Iters: iters},
			func(rate float64) *loadgen.Report {
				return runLoad(loadRun{
					transport: tr, clients: kneeClients, clientHosts: kneeHosts,
					w: loadgen.Workload{
						Name:        fmt.Sprintf("%s-knee@%g", tr, rate),
						OfferedRate: rate,
						Arrival:     loadgen.ArrivalPoisson,
						Duration:    6 * sim.Millisecond,
						Drain:       sim.Millisecond,
						Tenants: []loadgen.TenantSpec{{
							Name: "all", Size: loadgen.FixedSize(32), SLO: kneeSLO(),
						}},
					},
					// A 50 us slice halves the 10-group rotation cycle
					// (fig11a's latency/throughput trade), keeping the
					// rotation tail well inside the SLO so the knee reflects
					// capacity rather than scheduling phase.
					tuneScale: func(cfg *scalerpc.ServerConfig) {
						cfg.TimeSlice = 50 * sim.Microsecond
					},
					opts: opts,
				})
			})
		r.AddPoint(tr, float64(i), res.SustainableRate/1e6)
		r.Notef("%s: sustainable %.2f Mops/s over %d trials (saturated=%v)",
			tr, res.SustainableRate/1e6, len(res.Trials), res.Saturated)
		outs = append(outs, kneeOut{Transport: tr, Result: res})
	}
	r.AddArtifact("BENCH_loadgen_knee.json", marshalArtifact(outs))
	r.Note("the knee is the highest offered rate whose open-loop run still meets the SLO; the two transports hit it for different reasons — RawWrite is capacity-bound (~3.3 Mops/s achievable, backlog divergence beyond), while ScaleRPC has capacity to spare (>5.7 Mops/s achieved at 6 offered) but its rotation tail crosses the p99 limit just above its knee")
	return r
}

func runLoadMix(opts Options) *Result {
	r := &Result{
		ID: "loadmix", Title: "Latency-sensitive tenant vs bulk tenant, with and without reserved zones",
		XLabel: "config (0=shared groups, 1=reserved zones)", YLabel: "latsens p99 (us)",
	}
	var points []loadPoint
	for i, pinned := range []bool{false, true} {
		pinned := pinned
		rep := runLoad(loadRun{
			transport: "ScaleRPC", clients: loadClients,
			w: loadgen.Workload{
				Name:        fmt.Sprintf("mix-pinned=%v", pinned),
				OfferedRate: 1_500_000,
				Arrival:     loadgen.ArrivalPoisson,
				Tenants: []loadgen.TenantSpec{
					{Name: "bulk", Share: 0.94, Size: loadgen.FixedSize(512)},
					{Name: "latsens", Share: 0.06, Size: loadgen.FixedSize(32), SLO: loadgen.P99(100)},
				},
			},
			// 16 of 128 clients carry the latency-sensitive tenant (1 in 8);
			// they fit the reserved zones when pinned, and the bulk majority
			// keeps the rotation busy either way.
			tenantOf: func(i int) int {
				if i%8 == 7 {
					return 1
				}
				return 0
			},
			pinned: func(tenant int) bool { return pinned && tenant == 1 },
			tuneScale: func(cfg *scalerpc.ServerConfig) {
				cfg.ReservedZones = 16
			},
			opts: opts,
		})
		label := "shared"
		if pinned {
			label = "reserved"
		}
		r.AddPoint("latsens-p99us", float64(i), rep.Tenants[1].P99Us)
		r.AddPoint("bulk-achieved", float64(i), rep.Tenants[0].AchievedMops)
		r.Notef("%s: latsens p99 %.1fus (SLO pass=%v), bulk %.2f Mops/s",
			label, rep.Tenants[1].P99Us, rep.Tenants[1].SLOPass, rep.Tenants[0].AchievedMops)
		points = append(points, loadPoint{Transport: "ScaleRPC/" + label, Rate: 1_500_000, Report: rep.JSON()})
	}
	r.AddArtifact("BENCH_loadgen_mix.json", marshalArtifact(points))
	r.Note("reserved zones pin the latency-sensitive tenant's clients outside the rotating groups, so its requests never wait a full time-slice cycle behind the bulk tenant")
	return r
}

// faultsPoint extends loadPoint with the reliability counters and injected
// fault totals of one run, so the artifact shows the end-to-end story:
// every past-ICRC corruption detected (crc_drops) and none delivered, and
// duplicate deliveries from deadline-driven retries absorbed by the
// server's reply cache (dedup_hits).
type faultsPoint struct {
	Transport string            `json:"transport"`
	Rate      float64           `json:"rate"`
	Rel       rpccore.RelStats  `json:"rel"`
	Injected  faults.PlaneStats `json:"injected"`
	Report    json.RawMessage   `json:"report"`
}

func runLoadFaults(opts Options) *Result {
	r := &Result{
		ID: "loadfaults", Title: "Open-loop ScaleRPC under loss + past-ICRC corruption, per-call deadlines (128 clients, fixed rate)",
		XLabel: "drop rate (%)", YLabel: "p99 (us) / achieved Mops/s",
	}
	rates := []float64{0, 0.001, 0.005, 0.01, 0.02}
	if opts.Quick {
		rates = []float64{0, 0.01}
	}
	var points []faultsPoint
	var totalCRC, totalDedup uint64
	for _, dr := range rates {
		o := opts
		if dr > 0 {
			sc := faults.DropAll(fmt.Sprintf("drop%g", dr), dr)
			// Corruption past the NIC's ICRC rides along at the same rate:
			// the frame CRC must turn every such frame into loss for the
			// deadline/retry layer to recover.
			sc.Links[0].PayloadCorruptRate = dr
			// An ibverbs-realistic retransmit timeout (hundreds of µs, not
			// the fault plane's forgiving 20 µs default): a tail-packet drop
			// costs a full RTO, which is what pushes the p99 past the SLO.
			sc.NIC.RetransmitTimeoutNs = 800_000
			o.Faults = sc
		}
		var rel rpccore.RelStats
		var injected faults.PlaneStats
		rep := runLoad(loadRun{
			transport: "ScaleRPC", clients: loadClients,
			w: loadgen.Workload{
				Name:        fmt.Sprintf("faults@%g", dr),
				OfferedRate: 1_000_000,
				Arrival:     loadgen.ArrivalPoisson,
				Tenants: []loadgen.TenantSpec{{
					// p99 ≤ 1 ms: ~2.5× the fault-free rotation tail at 128
					// clients, so the verdict flips on recovery cost, not on
					// scheduling noise.
					Name: "all", Size: loadgen.FixedSize(32), SLO: loadgen.P99(1000),
				}},
				// Per-call deadlines with retries: a CRC-dropped frame (pure
				// end-to-end loss — RC retransmission never sees it) is
				// recovered by the Caller's resend instead of stranding its
				// slot. The retry interval sits just under the RTO, so a
				// tail-drop stall produces a duplicate delivery the server's
				// reply cache must absorb.
				Call: rpccore.CallOpts{
					Timeout:       2400 * sim.Microsecond,
					RetryInterval: 600 * sim.Microsecond,
					MaxRetries:    3,
				},
			},
			after: func(c *cluster.Cluster, plane *faults.Plane) {
				rel = *rpccore.SharedRel(c.Telemetry)
				if plane != nil {
					injected = plane.Stats
				}
			},
			opts: o,
		})
		pass := 0.0
		if rep.Pass {
			pass = 1.0
		}
		totalCRC += rel.CRCDrops
		totalDedup += rel.DedupHits
		r.AddPoint("p99us", dr*100, rep.Tenants[0].P99Us)
		r.AddPoint("achieved", dr*100, rep.AchievedMops)
		r.AddPoint("slo-pass", dr*100, pass)
		r.AddPoint("crc-drops", dr*100, float64(rel.CRCDrops))
		r.AddPoint("dedup-hits", dr*100, float64(rel.DedupHits))
		r.AddPoint("retries", dr*100, float64(rel.Retries))
		points = append(points, faultsPoint{Transport: "ScaleRPC", Rate: dr, Rel: rel, Injected: injected, Report: rep.JSON()})
	}
	r.AddArtifact("BENCH_loadgen_faults.json", marshalArtifact(points))
	r.Note("a fixed sub-knee offered rate isolates the fault cost: each tail-packet drop stalls its requester for a full retransmit timeout, inflating the p99 and stranding repeat victims past the drain — the SLO verdict flips on the completion floor once loss passes ~0.5%")
	r.Notef("corruption past the ICRC is 100%% detected: %d frames failed the wire CRC and were retried; zero corrupted payloads were delivered (the loadgen clients would count them as errors)", totalCRC)
	r.Notef("deadline-driven resends produced %d duplicate deliveries, every one absorbed by the reply cache instead of re-executing", totalDedup)
	return r
}
