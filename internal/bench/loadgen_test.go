package bench

import (
	"bytes"
	"testing"
)

func TestLoadgenExperimentsRegistered(t *testing.T) {
	for _, id := range []string{"loadlat", "loadknee", "loadmix", "loadfaults"} {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
}

// TestLoadmixQuickDeterministic reruns the cheapest artifact-emitting
// experiment and requires byte-identical output: the whole loadgen stack —
// arrival streams, tenant routing, transport, telemetry — must be a pure
// function of the seed.
func TestLoadmixQuickDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick runs")
	}
	run := func() []Artifact {
		e, _ := Lookup("loadmix")
		return e.Run(QuickOptions()).Artifacts
	}
	a, b := run(), run()
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("artifacts = %d, %d, want 1 each", len(a), len(b))
	}
	if a[0].Name != "BENCH_loadgen_mix.json" {
		t.Fatalf("artifact name = %q", a[0].Name)
	}
	if !bytes.Equal(a[0].Data, b[0].Data) {
		t.Fatal("same-seed loadmix runs produced different artifact bytes")
	}
}

// TestLoadmixReservedZonesIsolate asserts the experiment's headline claim:
// pinning the latency-sensitive tenant onto reserved zones cuts its p99 by
// an order of magnitude without costing the bulk tenant throughput.
func TestLoadmixReservedZonesIsolate(t *testing.T) {
	e, _ := Lookup("loadmix")
	res := e.Run(QuickOptions())
	var p99 []float64
	for _, s := range res.Series {
		if s.Label == "latsens-p99us" {
			p99 = s.Y
		}
	}
	if len(p99) != 2 {
		t.Fatalf("latsens-p99us series = %v", p99)
	}
	shared, reserved := p99[0], p99[1]
	if reserved*5 > shared {
		t.Fatalf("reserved zones p99 %.1fus not well under shared %.1fus", reserved, shared)
	}
}
