package bench

import (
	"fmt"

	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
)

func init() {
	register("sec51", "UD chunked large-message transfer vs RC (single thread)", runSec51)
	register("ablate", "ScaleRPC ablation: isolate each design mechanism", runAblate)
}

// runSec51 reproduces the §5.1 measurement: UD cannot carry >4 KB
// messages, so ordered large transfers must be cut into 4 KB chunks with
// per-chunk acknowledgement; a single thread then achieves a fraction of
// the RC streaming bandwidth.
func runSec51(opts Options) *Result {
	r := &Result{
		ID: "sec51", Title: "Large-message bandwidth: RC write vs UD 4KB stop-and-wait",
		XLabel: "transfer (MB)", YLabel: "GB/s",
	}
	const msg = 1 << 20 // 1 MB messages
	totalMB := 64
	if opts.Quick {
		totalMB = 16
	}

	// RC: stream 1 MB writes back to back.
	{
		c := cluster.New(cluster.Default(2))
		src := c.Hosts[0].Mem.Register(msg, memory.PageSize2M, memory.LocalWrite)
		dst := c.Hosts[1].Mem.Register(msg, memory.PageSize2M, memory.LocalWrite|memory.RemoteWrite)
		cq := c.Hosts[0].NIC.CreateCQ()
		qp := c.Hosts[0].NIC.CreateQP(nic.RC, cq, cq)
		rcq := c.Hosts[1].NIC.CreateCQ()
		rqp := c.Hosts[1].NIC.CreateQP(nic.RC, rcq, rcq)
		nic.Connect(qp, rqp)
		var done sim.Time
		c.Hosts[0].Spawn("rc-sender", func(t *host.Thread) {
			for sent := 0; sent < totalMB; sent++ {
				t.PostSend(qp, nic.SendWR{Op: nic.OpWrite, Signaled: sent == totalMB-1,
					LKey: src.LKey, LAddr: src.Base, Len: msg,
					RKey: dst.RKey, RAddr: dst.Base})
			}
			for len(t.PollCQ(cq, 1)) == 0 {
				cq.Sig.WaitTimeout(t.P, 50*sim.Microsecond)
			}
			done = t.P.Now()
		})
		c.Env.RunUntil(sim.Second)
		c.Close()
		gbps := float64(totalMB) / (float64(done) / 1e9) / 1024
		r.AddPoint("RC-write", float64(totalMB), gbps)
	}

	// UD: 4 KB chunks, each acknowledged by the receiver before the next
	// is sent (the ordered-transfer protocol §5.1 describes).
	{
		c := cluster.New(cluster.Default(2))
		a, b := c.Hosts[0], c.Hosts[1]
		const chunk = 4096
		src := a.Mem.Register(chunk, memory.PageSize4K, memory.LocalWrite)
		ackBuf := a.Mem.Register(64, memory.PageSize4K, memory.LocalWrite)
		rbuf := b.Mem.Register(chunk*4, memory.PageSize2M, memory.LocalWrite)
		ackSrc := b.Mem.Register(64, memory.PageSize4K, memory.LocalWrite)
		acq := a.NIC.CreateCQ()
		aqp := a.NIC.CreateQP(nic.UD, acq, acq)
		bcq := b.NIC.CreateCQ()
		bqp := b.NIC.CreateQP(nic.UD, bcq, bcq)
		for i := 0; i < 4; i++ {
			bqp.PostRecv(nic.RecvWR{WRID: uint64(i), LKey: rbuf.LKey,
				LAddr: rbuf.Base + uint64(i*chunk), Len: chunk})
		}
		// Receiver thread: ack every chunk.
		b.Spawn("ud-recv", func(t *host.Thread) {
			for {
				for _, e := range t.PollCQ(bcq, 4) {
					t.PostRecv(bqp, nic.RecvWR{WRID: e.WRID, LKey: rbuf.LKey,
						LAddr: rbuf.Base + e.WRID*chunk, Len: chunk})
					t.PostSend(bqp, nic.SendWR{Op: nic.OpSend, LKey: ackSrc.LKey,
						LAddr: ackSrc.Base, Len: 8, DstNIC: a.NIC.ID(), DstQPN: aqp.QPN})
				}
				bcq.Sig.WaitTimeout(t.P, 20*sim.Microsecond)
			}
		})
		var done sim.Time
		a.Spawn("ud-send", func(t *host.Thread) {
			chunks := totalMB * (1 << 20) / chunk
			for i := 0; i < chunks; i++ {
				t.PostRecv(aqp, nic.RecvWR{LKey: ackBuf.LKey, LAddr: ackBuf.Base, Len: 64})
				t.PostSend(aqp, nic.SendWR{Op: nic.OpSend, LKey: src.LKey, LAddr: src.Base,
					Len: chunk, DstNIC: b.NIC.ID(), DstQPN: bqp.QPN})
				for len(t.PollCQ(acq, 4)) == 0 {
					acq.Sig.WaitTimeout(t.P, 20*sim.Microsecond)
				}
			}
			done = t.P.Now()
		})
		c.Env.RunUntil(10 * sim.Second)
		c.Close()
		gbps := float64(totalMB) / (float64(done) / 1e9) / 1024
		r.AddPoint("UD-4KB-acked", float64(totalMB), gbps)
	}
	r.Note("paper: the UD prototype reached 0.8 GB/s with one thread, ~12.5% of RC bandwidth")
	return r
}

// runAblate isolates ScaleRPC's design mechanisms (DESIGN.md §4): warmup
// off (cold switches), dynamic scheduling off, grouping effectively off
// (one giant group = RawWrite-with-small-pool), and a 4 KB-page pool
// (MTT pressure instead of huge pages).
func runAblate(opts Options) *Result {
	r := &Result{
		ID: "ablate", Title: "ScaleRPC ablation (160 clients, batch 8)",
		XLabel: "variant", YLabel: "Mops/s",
	}
	n := 160
	variants := []struct {
		name string
		tune func(*scalerpc.ServerConfig)
	}{
		{"full", nil},
		{"no-warmup", func(cfg *scalerpc.ServerConfig) {
			// Effectively disable prefetching: entries are still read, but
			// only once per slice, right before the switch.
			cfg.WarmupPollInterval = cfg.TimeSlice
		}},
		{"static-sched", func(cfg *scalerpc.ServerConfig) { cfg.Dynamic = false }},
		{"one-group", func(cfg *scalerpc.ServerConfig) { cfg.GroupSize = 512 }},
		{"tiny-slice", func(cfg *scalerpc.ServerConfig) { cfg.TimeSlice = 20 * sim.Microsecond }},
	}
	tbl := Table{Header: []string{"variant", "Mops/s"}}
	for i, v := range variants {
		out := runRPC(rpcRun{
			transport: "ScaleRPC", threads: n, batch: 8, payload: 32,
			tuneScale: v.tune, opts: opts,
		})
		r.AddPoint(v.name, float64(i), out.tputMops)
		tbl.Rows = append(tbl.Rows, []string{v.name, fmt.Sprintf("%.3f", out.tputMops)})
	}
	r.Tables = append(r.Tables, tbl)
	r.Note("expected: full ≥ static-sched > no-warmup and tiny-slice; one-group approximates RawWrite behaviour at this client count")
	return r
}

func init() {
	register("ext-dct", "Extension: DCT vs RC outbound scaling (§5.1)", runExtDCT)
}

// runDCTOutbound measures 10 server threads writing 32 B messages to
// nClients DCT targets through one DCT initiator per thread: the NIC
// holds 10 contexts regardless of client count, but round-robin fan-out
// reconnects on every message.
func runDCTOutbound(nClients int, opts Options) (float64, float64) {
	c := cluster.New(cluster.Default(12))
	defer c.Close()
	srv := c.Hosts[0]
	src := srv.Mem.Register(64<<10, memory.PageSize2M, memory.LocalWrite)
	type target struct {
		qpn   uint32
		nicID int
		rkey  uint32
		raddr uint64
	}
	const threads = 10
	perThread := make([][]target, threads)
	cqs := make([]*nic.CQ, threads)
	inis := make([]*nic.QP, threads)
	for i := 0; i < threads; i++ {
		cqs[i] = srv.NIC.CreateCQ()
		inis[i] = srv.NIC.CreateDCTInitiator(cqs[i], cqs[i])
	}
	sinks := make([]*memory.Region, 12)
	for i := 0; i < nClients; i++ {
		ch := c.Hosts[1+i%11]
		if sinks[ch.ID] == nil {
			sinks[ch.ID] = ch.Mem.Register(4096*((nClients/11)+2), memory.PageSize2M,
				memory.LocalWrite|memory.RemoteWrite)
		}
		tcq := ch.NIC.CreateCQ()
		tq := ch.NIC.CreateDCTTarget(tcq, tcq)
		tid := i % threads
		perThread[tid] = append(perThread[tid], target{
			qpn: tq.QPN, nicID: ch.NIC.ID(),
			rkey: sinks[ch.ID].RKey, raddr: sinks[ch.ID].Base + uint64((i/11)*4096),
		})
	}
	for tid := 0; tid < threads; tid++ {
		tid := tid
		if len(perThread[tid]) == 0 {
			continue
		}
		srv.Spawn(fmt.Sprintf("dct-w%d", tid), func(t *host.Thread) {
			const window = 64
			outstanding, next := 0, 0
			for {
				tg := perThread[tid][next%len(perThread[tid])]
				next++
				t.PostSend(inis[tid], nic.SendWR{
					Op: nic.OpWrite, Signaled: true,
					LKey: src.LKey, LAddr: src.Base, Len: 32,
					RKey: tg.rkey, RAddr: tg.raddr,
					DstNIC: tg.nicID, DstQPN: tg.qpn,
				})
				outstanding++
				for outstanding >= window {
					outstanding -= len(t.WaitCQ(cqs[tid], window, 5*sim.Microsecond))
				}
			}
		})
	}
	cnt := measureWindow(c, opts, fmt.Sprintf("dct-outbound/c%d", nClients))
	packets := float64(c.Fabric.Port(0).Stats.TxMessages)
	return mops(cnt.outWQEs, opts.Duration), packets / float64(cnt.outWQEs+1)
}

// runExtDCT compares RC and DCT outbound fan-out: RC collapses with the
// client count while DCT stays flat at a lower peak, paying the doubled
// packet count and connect latency §5.1 describes.
func runExtDCT(opts Options) *Result {
	r := &Result{
		ID: "ext-dct", Title: "Extension: outbound 32 B writes, RC vs DCT",
		XLabel: "clients", YLabel: "Mops/s",
	}
	for _, n := range clientSweep(opts.Quick) {
		rc := runOutboundWrite(n, opts)
		r.AddPoint("RC", float64(n), mops(rc.outWQEs, opts.Duration))
		dct, pktRatio := runDCTOutbound(n, opts)
		r.AddPoint("DCT", float64(n), dct)
		r.AddPoint("DCT-pkts-per-op", float64(n), pktRatio)
	}
	r.Note("§5.1: DCT shares one context per initiator so it scales, but the per-message connect roughly doubles the packets of small requests and adds switch latency")
	return r
}

func init() {
	register("ext-latency", "Extension: latency-sensitive (pinned) clients vs rotation", runExtLatency)
}

// runExtLatency demonstrates the §3.6.2 future-work direction implemented
// in this repository: a handful of latency-sensitive clients connect to
// reserved zones and are served in every slice, getting RC-level tail
// latency while 160 regular clients rotate through groups around them.
func runExtLatency(opts Options) *Result {
	r := &Result{
		ID: "ext-latency", Title: "Pinned (latency-sensitive) vs rotating clients, 160-client background",
		XLabel: "percentile", YLabel: "latency (us)",
	}
	c := cluster.New(cluster.Default(12))
	defer c.Close()
	cfg := scalerpc.DefaultServerConfig()
	cfg.ReservedZones = 4
	s := scalerpc.NewServer(c.Hosts[0], cfg)
	s.Register(1, echoHandler)
	s.Start()

	horizon := opts.Warmup + opts.Duration
	spawn := func(conn rpccore.Conn, sig *sim.Signal, hi, seed int, out *rpccore.DriverStats) {
		c.Hosts[hi].Spawn("cli", func(t *host.Thread) {
			*out = rpccore.RunDriver(t, []rpccore.Conn{conn}, rpccore.DriverConfig{
				Batch: 1, Handler: 1, PayloadSize: 32, Seed: uint64(seed),
				MeasureFrom: opts.Warmup, StartDelay: sim.Duration(seed%64) * 311,
			}, sig, func() bool { return t.P.Now() >= horizon })
		})
	}
	regular := make([]rpccore.DriverStats, 160)
	for i := range regular {
		sig := sim.NewSignal(c.Env)
		spawn(s.Connect(c.Hosts[1+i%11], sig), sig, 1+i%11, i, &regular[i])
	}
	pinned := make([]rpccore.DriverStats, 4)
	for i := range pinned {
		sig := sim.NewSignal(c.Env)
		conn := s.ConnectLatencySensitive(c.Hosts[1+i], sig)
		if conn == nil {
			panic("bench: reserved zones exhausted")
		}
		spawn(conn, sig, 1+i, 1000+i, &pinned[i])
	}
	c.Env.RunUntil(horizon + 200*sim.Microsecond)

	regHist := stats.NewHistogram()
	pinHist := stats.NewHistogram()
	for i := range regular {
		regHist.Merge(regular[i].BatchLat)
	}
	for i := range pinned {
		pinHist.Merge(pinned[i].BatchLat)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		r.AddPoint("regular", q*100, float64(regHist.Quantile(q))/1000)
		r.AddPoint("pinned", q*100, float64(pinHist.Quantile(q))/1000)
	}
	r.Notef("regular tput %.2f Mops/s over %d clients; pinned tput %.2f Mops/s over %d clients",
		mops(sumCompleted(regular), opts.Duration), len(regular),
		mops(sumCompleted(pinned), opts.Duration), len(pinned))
	r.Note("expected: pinned tail latency stays near the RC round trip; regular tails stretch toward the rotation period")
	return r
}

func sumCompleted(sts []rpccore.DriverStats) uint64 {
	var n uint64
	for i := range sts {
		n += sts[i].Completed
	}
	return n
}
