package bench

import (
	"encoding/json"
	"os"

	"scalerpc/internal/cluster"
	"scalerpc/internal/faults"
	"scalerpc/internal/sim"
)

// MetricsRecorder collects full telemetry-registry dumps — counters, gauges,
// histograms, sampled time series and trace events — for every data point of
// the experiments it is attached to (via Options.Metrics). The result is a
// machine-readable JSON companion to the rendered tables, so a figure's
// shape can be traced back to the underlying NIC/PCIe/LLC/RPC counters.
type MetricsRecorder struct {
	Experiments []*ExperimentMetrics `json:"experiments"`
	cur         *ExperimentMetrics
}

// ExperimentMetrics groups one experiment's per-point dumps.
type ExperimentMetrics struct {
	ID     string         `json:"id"`
	Points []MetricsPoint `json:"points"`
}

// MetricsPoint is one data point's registry dump.
type MetricsPoint struct {
	Label   string          `json:"label"`
	Metrics json.RawMessage `json:"metrics"`
}

// Begin opens a new experiment group; subsequent Record calls append to it.
func (m *MetricsRecorder) Begin(id string) {
	if m == nil {
		return
	}
	e := &ExperimentMetrics{ID: id}
	m.Experiments = append(m.Experiments, e)
	m.cur = e
}

// Record captures one registry dump under the given point label.
func (m *MetricsRecorder) Record(label string, c *cluster.Cluster) {
	if m == nil {
		return
	}
	if m.cur == nil {
		m.Begin("adhoc")
	}
	b, err := json.Marshal(c.Telemetry)
	if err != nil { // all registry value types are marshalable; unreachable
		panic(err)
	}
	m.cur.Points = append(m.cur.Points, MetricsPoint{Label: label, Metrics: b})
}

// JSON returns the indented recorder dump.
func (m *MetricsRecorder) JSON() []byte {
	b, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		panic(err)
	}
	return b
}

// WriteFile writes the recorder dump to path.
func (m *MetricsRecorder) WriteFile(path string) error {
	return os.WriteFile(path, m.JSON(), 0o644)
}

// instrument applies the fault scenario (if any) to a freshly built
// cluster, and enables trace collection and interval sampling when metrics
// are being recorded. Server-side (host 0) hardware metrics and every
// RPC-transport scope are sampled; the horizon covers the warmup and
// measurement windows. The installed fault plane (nil without a scenario)
// is returned so experiments can report injected-fault counts.
func (o Options) instrument(c *cluster.Cluster) *faults.Plane {
	var plane *faults.Plane
	if o.Faults != nil {
		plane = c.InstallFaults(o.Faults)
	}
	if o.Metrics == nil {
		return plane
	}
	c.Telemetry.EnableTrace()
	// A full trace of a 400-client sweep point is megabytes of JSON; a few
	// thousand events already show the slice/switch cadence.
	c.Telemetry.Trace().Cap = 2048
	horizon := o.Warmup + o.Duration + 200*sim.Microsecond
	interval := (o.Warmup + o.Duration) / 24
	if interval <= 0 {
		interval = 1
	}
	// Server-scoped patterns only: per-client scopes (hundreds of series at
	// paper scale) still appear in the final dump, just not as time series.
	c.Telemetry.Sample(c.Env, interval, horizon,
		"nic0.*", "pcie.bus0.*", "llc0.*", "faults.*", "scalerpc.server.*",
		"rawrpc.server.*", "herdrpc.server.*", "fasstrpc.server.*", "selfrpc.server.*")
	return plane
}
