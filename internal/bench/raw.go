package bench

import (
	"fmt"

	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/sim"
)

func init() {
	register("fig1b", "Raw throughput of RDMA verbs vs number of clients", runFig1b)
	register("fig3a", "Inbound/outbound RC write throughput and PCIe read rates", runFig3a)
	register("fig3b", "Inbound RC write throughput and cache behaviour vs message block size", runFig3b)
}

// rawCounters snapshots the server-side counters a raw experiment reports.
type rawCounters struct {
	outWQEs    uint64
	inMsgs     uint64
	rnrDrops   uint64
	pcieRdCur  uint64
	pcieItoM   uint64
	dmaUpdates uint64
	dmaAllocs  uint64
}

func snapshotRaw(h *host.Host) rawCounters {
	llc := h.LLC.Snapshot()
	return rawCounters{
		outWQEs:    h.NIC.Stats.OutWQEs,
		inMsgs:     h.NIC.Stats.InMessages,
		rnrDrops:   h.NIC.Stats.RNRDrops,
		pcieRdCur:  h.Bus.Snapshot().PCIeRdCur,
		pcieItoM:   h.Bus.Snapshot().PCIeItoM,
		dmaUpdates: llc.DMAUpdates,
		dmaAllocs:  llc.DMAAllocs,
	}
}

func (a rawCounters) sub(b rawCounters) rawCounters {
	return rawCounters{
		outWQEs:    a.outWQEs - b.outWQEs,
		inMsgs:     a.inMsgs - b.inMsgs,
		rnrDrops:   a.rnrDrops - b.rnrDrops,
		pcieRdCur:  a.pcieRdCur - b.pcieRdCur,
		pcieItoM:   a.pcieItoM - b.pcieItoM,
		dmaUpdates: a.dmaUpdates - b.dmaUpdates,
		dmaAllocs:  a.dmaAllocs - b.dmaAllocs,
	}
}

// measureWindow runs warmup, snapshots, runs the measurement window, and
// returns the counter deltas at the server — warmup-window events never
// reach the reported rates. When metrics are being recorded the data
// point's registry dump is captured under label.
func measureWindow(c *cluster.Cluster, opts Options, label string) rawCounters {
	opts.instrument(c)
	c.Env.RunUntil(opts.Warmup)
	start := snapshotRaw(c.Hosts[0])
	c.Env.RunUntil(opts.Warmup + opts.Duration)
	out := snapshotRaw(c.Hosts[0]).sub(start)
	opts.Metrics.Record(label, c)
	return out
}

const rawMsgSize = 32

// runOutboundWrite measures the server posting 32 B RC writes to nClients
// remote QPs from 10 threads (the paper's outbound verb test).
func runOutboundWrite(nClients int, opts Options) rawCounters {
	c := cluster.New(cluster.Default(12))
	defer c.Close()
	srv := c.Hosts[0]
	src := srv.Mem.Register(64<<10, memory.PageSize2M, memory.LocalWrite)

	// One sink region per client host; each client gets a 4 KB slot.
	sinks := make([]*memory.Region, 12)
	type target struct {
		qp    *nic.QP
		rkey  uint32
		raddr uint64
	}
	const threads = 10
	perThread := make([][]target, threads)
	cqs := make([]*nic.CQ, threads)
	for i := 0; i < threads; i++ {
		cqs[i] = srv.NIC.CreateCQ()
	}
	for i := 0; i < nClients; i++ {
		ch := c.Hosts[1+i%11]
		if sinks[ch.ID] == nil {
			sinks[ch.ID] = ch.Mem.Register(4096*((nClients/11)+2), memory.PageSize2M,
				memory.LocalWrite|memory.RemoteWrite)
		}
		tid := i % threads
		sqp := srv.NIC.CreateQP(nic.RC, cqs[tid], cqs[tid])
		ccq := ch.NIC.CreateCQ()
		cqp := ch.NIC.CreateQP(nic.RC, ccq, ccq)
		if err := nic.Connect(sqp, cqp); err != nil {
			panic(err)
		}
		perThread[tid] = append(perThread[tid], target{
			qp: sqp, rkey: sinks[ch.ID].RKey, raddr: sinks[ch.ID].Base + uint64((i/11)*4096),
		})
	}
	for tid := 0; tid < threads; tid++ {
		tid := tid
		if len(perThread[tid]) == 0 {
			continue
		}
		srv.Spawn(fmt.Sprintf("out-w%d", tid), func(t *host.Thread) {
			const window = 64
			outstanding, next := 0, 0
			for {
				tg := perThread[tid][next%len(perThread[tid])]
				next++
				t.PostSend(tg.qp, nic.SendWR{
					Op: nic.OpWrite, Signaled: true,
					LKey: src.LKey, LAddr: src.Base, Len: rawMsgSize,
					RKey: tg.rkey, RAddr: tg.raddr,
				})
				outstanding++
				for outstanding >= window {
					outstanding -= len(t.WaitCQ(cqs[tid], window, 5*sim.Microsecond))
				}
			}
		})
	}
	return measureWindow(c, opts, fmt.Sprintf("outbound-write/c%d", nClients))
}

// runInboundWrite measures nClients remote QPs each RC-writing 32 B
// messages into the server. With rotate set, writers cycle through 20
// blocks of blockSize bytes (the Figure 3(b) layout); otherwise each
// client hammers a single fixed 64 B slot.
func runInboundWrite(nClients int, blockSize int, rotate bool, opts Options) rawCounters {
	c := cluster.New(cluster.Default(12))
	defer c.Close()
	srv := c.Hosts[0]
	const blocksPerClient = 20
	span := blockSize * blocksPerClient
	pool := srv.Mem.Register(span*nClients+4096, memory.PageSize2M,
		memory.LocalWrite|memory.RemoteWrite)
	for i := 0; i < nClients; i++ {
		i := i
		ch := c.Hosts[1+i%11]
		src := ch.Mem.Register(4096, memory.PageSize4K, memory.LocalWrite)
		ccq := ch.NIC.CreateCQ()
		cqp := ch.NIC.CreateQP(nic.RC, ccq, ccq)
		scq := srv.NIC.CreateCQ()
		sqp := srv.NIC.CreateQP(nic.RC, scq, scq)
		if err := nic.Connect(cqp, sqp); err != nil {
			panic(err)
		}
		base := pool.Base + uint64(i*span)
		ch.Spawn(fmt.Sprintf("in-c%d", i), func(t *host.Thread) {
			const window = 8
			outstanding, seq := 0, 0
			msgsPerBlock := blockSize / 64
			if msgsPerBlock < 1 {
				msgsPerBlock = 1
			}
			for {
				addr := base
				if rotate {
					blk := seq % blocksPerClient
					off := (seq / blocksPerClient % msgsPerBlock) * 64
					addr = base + uint64(blk*blockSize+off)
				}
				seq++
				t.PostSend(cqp, nic.SendWR{
					Op: nic.OpWrite, Signaled: true,
					LKey: src.LKey, LAddr: src.Base, Len: rawMsgSize,
					RKey: pool.RKey, RAddr: addr,
				})
				outstanding++
				for outstanding >= window {
					outstanding -= len(t.WaitCQ(ccq, window, 5*sim.Microsecond))
				}
			}
		})
	}
	return measureWindow(c, opts, fmt.Sprintf("inbound-write/c%d/bs%d", nClients, blockSize))
}

// runInboundUDSend measures nClients UD-sending 32 B messages to 10 server
// UD QPs whose recv rings are replenished by server threads.
func runInboundUDSend(nClients int, opts Options) rawCounters {
	c := cluster.New(cluster.Default(12))
	defer c.Close()
	srv := c.Hosts[0]
	const threads = 10
	const recvDepth = 512
	qpns := make([]uint32, threads)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		cq := srv.NIC.CreateCQ()
		qp := srv.NIC.CreateQP(nic.UD, cq, cq)
		qpns[tid] = qp.QPN
		ring := srv.Mem.Register(64*recvDepth, memory.PageSize2M, memory.LocalWrite)
		var wrs []nic.RecvWR
		for r := 0; r < recvDepth; r++ {
			wrs = append(wrs, nic.RecvWR{WRID: uint64(r), LKey: ring.LKey,
				LAddr: ring.Base + uint64(r*64), Len: 64})
		}
		qp.PostRecvBatch(wrs)
		srv.Spawn(fmt.Sprintf("ud-w%d", tid), func(t *host.Thread) {
			var repost []nic.RecvWR
			for {
				cqes := t.PollCQ(cq, 32)
				if len(cqes) == 0 {
					if len(repost) > 0 {
						t.PostRecvBatch(qp, repost)
						repost = repost[:0]
					}
					cq.Sig.WaitTimeout(t.P, 5*sim.Microsecond)
					continue
				}
				for _, e := range cqes {
					repost = append(repost, nic.RecvWR{WRID: e.WRID, LKey: ring.LKey,
						LAddr: ring.Base + e.WRID*64, Len: 64})
				}
				if len(repost) >= 32 {
					t.PostRecvBatch(qp, repost)
					repost = repost[:0]
				}
			}
		})
	}
	for i := 0; i < nClients; i++ {
		i := i
		ch := c.Hosts[1+i%11]
		src := ch.Mem.Register(4096, memory.PageSize4K, memory.LocalWrite)
		ccq := ch.NIC.CreateCQ()
		cqp := ch.NIC.CreateQP(nic.UD, ccq, ccq)
		dst := qpns[i%threads]
		ch.Spawn(fmt.Sprintf("ud-c%d", i), func(t *host.Thread) {
			const window = 8
			outstanding := 0
			for {
				t.PostSend(cqp, nic.SendWR{
					Op: nic.OpSend, Signaled: true,
					LKey: src.LKey, LAddr: src.Base, Len: rawMsgSize,
					DstNIC: 0, DstQPN: dst,
				})
				outstanding++
				for outstanding >= window {
					outstanding -= len(t.WaitCQ(ccq, window, 5*sim.Microsecond))
				}
			}
		})
	}
	return measureWindow(c, opts, fmt.Sprintf("ud-send/c%d", nClients))
}

func clientSweep(quick bool) []int {
	if quick {
		return []int{10, 40, 150, 400}
	}
	return []int{10, 20, 40, 80, 150, 200, 400, 600, 800}
}

func runFig1b(opts Options) *Result {
	r := &Result{
		ID: "fig1b", Title: "Raw throughput of RDMA verbs (32 B messages, 10 server threads)",
		XLabel: "clients", YLabel: "Mops/s",
	}
	for _, n := range clientSweep(opts.Quick) {
		out := runOutboundWrite(n, opts)
		r.AddPoint("outbound-write", float64(n), mops(out.outWQEs, opts.Duration))
		in := runInboundWrite(n, 64, false, opts)
		r.AddPoint("inbound-write", float64(n), mops(in.inMsgs, opts.Duration))
		ud := runInboundUDSend(n, opts)
		r.AddPoint("ud-send", float64(n), mops(ud.inMsgs-ud.rnrDrops, opts.Duration))
	}
	r.Note("paper: outbound write collapses ~20→2 Mops/s as clients grow 10→800; inbound write and UD send stay flat")
	return r
}

func runFig3a(opts Options) *Result {
	r := &Result{
		ID: "fig3a", Title: "RC write throughput and PCIe read rate (server-side counters)",
		XLabel: "clients", YLabel: "Mops/s or Mevents/s",
	}
	for _, n := range clientSweep(opts.Quick) {
		out := runOutboundWrite(n, opts)
		r.AddPoint("outbound-write", float64(n), mops(out.outWQEs, opts.Duration))
		r.AddPoint("outbound-PCIeRdCur", float64(n), rate(out.pcieRdCur, opts.Duration))
		in := runInboundWrite(n, 64, false, opts)
		r.AddPoint("inbound-write", float64(n), mops(in.inMsgs, opts.Duration))
		r.AddPoint("inbound-PCIeRdCur", float64(n), rate(in.pcieRdCur, opts.Duration))
	}
	r.Note("paper: before the knee PCIe reads track outbound throughput (payload DMA); past it they exceed it (QPC/WQE refetches); inbound PCIe reads stay low")
	return r
}

func runFig3b(opts Options) *Result {
	r := &Result{
		ID: "fig3b", Title: "Inbound RC write vs message block size (400 clients × 20 blocks)",
		XLabel: "block bytes", YLabel: "Mops/s or ratio",
	}
	nClients := 400
	sizes := []int{64, 256, 1024, 2048, 4096, 8192}
	if opts.Quick {
		nClients = 200
		sizes = []int{64, 1024, 4096}
	}
	for _, bs := range sizes {
		in := runInboundWrite(nClients, bs, true, opts)
		r.AddPoint("inbound-write", float64(bs), mops(in.inMsgs, opts.Duration))
		total := in.dmaUpdates + in.dmaAllocs
		missRate := 0.0
		if total > 0 {
			missRate = float64(in.dmaAllocs) / float64(total)
		}
		r.AddPoint("l3-miss-rate", float64(bs), missRate)
		r.AddPoint("PCIeItoM", float64(bs), rate(in.pcieItoM, opts.Duration))
	}
	r.Note("paper: throughput drops ~35→<10 Mops/s once pool (block×400×20) outgrows the LLC; L3 miss rate rises accordingly")
	r.Note("l3-miss-rate proxy: fraction of DDIO writes that had to Write Allocate")
	return r
}

// Exported raw-verb measurement wrappers for cmd/rawbench.

// MeasureOutboundWrite returns outbound RC write throughput (Mops/s) and
// the server-side PCIe read rate (Mevents/s) for nClients connections.
func MeasureOutboundWrite(nClients int, opts Options) (tput, pcieRd float64) {
	c := runOutboundWrite(nClients, opts)
	return mops(c.outWQEs, opts.Duration), rate(c.pcieRdCur, opts.Duration)
}

// MeasureInboundWrite returns inbound RC write throughput (Mops/s) and the
// DDIO write-allocate fraction for nClients writers over blocks of
// blockSize bytes (rotated, as in Figure 3(b)).
func MeasureInboundWrite(nClients, blockSize int, opts Options) (tput, allocFrac float64) {
	c := runInboundWrite(nClients, blockSize, true, opts)
	total := c.dmaUpdates + c.dmaAllocs
	frac := 0.0
	if total > 0 {
		frac = float64(c.dmaAllocs) / float64(total)
	}
	return mops(c.inMsgs, opts.Duration), frac
}

// MeasureInboundUDSend returns inbound UD send throughput (Mops/s).
func MeasureInboundUDSend(nClients int, opts Options) float64 {
	c := runInboundUDSend(nClients, opts)
	return mops(c.inMsgs-c.rnrDrops, opts.Duration)
}
