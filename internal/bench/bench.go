// Package bench is the experiment harness: one entry point per table and
// figure of the paper's evaluation, each rebuilding the corresponding
// workload on a simulated cluster and emitting the same rows/series the
// paper reports. EXPERIMENTS.md records how the measured shapes compare.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"scalerpc/internal/faults"
	"scalerpc/internal/sim"
)

// Options tune experiment cost. Durations are virtual time; client counts
// and cache-sensitive parameters are never scaled (the shapes depend on
// them).
type Options struct {
	// Warmup is excluded from measurement.
	Warmup sim.Duration
	// Duration is the measurement window per data point.
	Duration sim.Duration
	// Seed drives all randomness.
	Seed uint64
	// Quick shrinks sweeps (fewer points, smaller preloads) for CI and
	// `go test -bench`. The full sweeps reproduce the paper's axes.
	Quick bool
	// Metrics, when non-nil, collects a full telemetry dump (plus sampled
	// series and trace events) for every data point.
	Metrics *MetricsRecorder
	// Faults, when non-nil, installs this fault scenario on every cluster
	// the experiments build (the scalebench -faults flag).
	Faults *faults.Scenario
}

// DefaultOptions is the full-fidelity configuration.
func DefaultOptions() Options {
	return Options{
		Warmup:   1 * sim.Millisecond,
		Duration: 4 * sim.Millisecond,
		Seed:     1,
	}
}

// QuickOptions is the CI configuration.
func QuickOptions() Options {
	return Options{
		Warmup:   300 * sim.Microsecond,
		Duration: 1200 * sim.Microsecond,
		Seed:     1,
		Quick:    true,
	}
}

// Series is one plotted line: Y(X) with a label.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Table is free-form tabular output (e.g., the Figure 9 latency table).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Artifact is a machine-readable file an experiment emits alongside its
// rendered tables — e.g. the loadgen experiments attach their full open-loop
// reports as BENCH_loadgen_*.json. scalebench -artifacts writes them out.
type Artifact struct {
	Name string
	Data []byte
}

// Result is one experiment's output.
type Result struct {
	ID        string
	Title     string
	XLabel    string
	YLabel    string
	Series    []Series
	Tables    []Table
	Notes     []string
	Artifacts []Artifact
}

// AddPoint appends (x, y) to the named series, creating it if needed.
func (r *Result) AddPoint(label string, x, y float64) {
	for i := range r.Series {
		if r.Series[i].Label == label {
			r.Series[i].X = append(r.Series[i].X, x)
			r.Series[i].Y = append(r.Series[i].Y, y)
			return
		}
	}
	r.Series = append(r.Series, Series{Label: label, X: []float64{x}, Y: []float64{y}})
}

// AddArtifact attaches a machine-readable output file to the result.
func (r *Result) AddArtifact(name string, data []byte) {
	r.Artifacts = append(r.Artifacts, Artifact{Name: name, Data: data})
}

// Note records a verbatim observation (may contain literal % signs).
func (r *Result) Note(text string) { r.Notes = append(r.Notes, text) }

// Notef records a formatted observation.
func (r *Result) Notef(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render formats the result as an aligned text report: one column per
// series, one row per X value.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Series) > 0 {
		// Collect the union of X values.
		xs := map[float64]bool{}
		for _, s := range r.Series {
			for _, x := range s.X {
				xs[x] = true
			}
		}
		xvals := make([]float64, 0, len(xs))
		for x := range xs {
			xvals = append(xvals, x)
		}
		sort.Float64s(xvals)

		header := []string{r.XLabel}
		for _, s := range r.Series {
			header = append(header, s.Label)
		}
		rows := [][]string{}
		for _, x := range xvals {
			row := []string{trimFloat(x)}
			for _, s := range r.Series {
				cell := "-"
				for i := range s.X {
					if s.X[i] == x {
						cell = trimFloat(s.Y[i])
						break
					}
				}
				row = append(row, cell)
			}
			rows = append(rows, row)
		}
		b.WriteString(renderTable(header, rows))
		fmt.Fprintf(&b, "(y: %s)\n", r.YLabel)
	}
	for _, tbl := range r.Tables {
		if tbl.Title != "" {
			fmt.Fprintf(&b, "-- %s --\n", tbl.Title)
		}
		b.WriteString(renderTable(tbl.Header, tbl.Rows))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV emits the series in long format: series,x,y.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, s := range r.Series {
		for i := range s.X {
			fmt.Fprintf(&b, "%s,%g,%g\n", s.Label, s.X[i], s.Y[i])
		}
	}
	return b.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return b.String()
}

// Experiment is a registered experiment entry.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) *Result
}

var registry []Experiment

func register(id, title string, run func(Options) *Result) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// Experiments lists every registered experiment in registration order.
func Experiments() []Experiment {
	return append([]Experiment(nil), registry...)
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// mops converts an operation count over a window to millions of ops/sec.
func mops(ops uint64, window sim.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(ops) / (float64(window) / 1e9) / 1e6
}

// rate converts an event count over a window to millions of events/sec.
func rate(events uint64, window sim.Duration) float64 { return mops(events, window) }
