package bench

import (
	"fmt"

	"scalerpc/internal/chaos"
)

func init() {
	register("chaos", "Seeded chaos matrix: exactly-once, integrity and liveness invariants under faults", runChaos)
}

// chaosSeeds mirrors the acceptance matrix in internal/chaos's tests: 8
// seeds per fault class, 32 runs total. Kept literal so a failing artifact
// row can be replayed exactly (`chaos.Run(Config{Class, Seed})`).
var chaosSeeds = []uint64{1, 2, 3, 5, 8, 13, 21, 34}

// runChaos executes the full seeded chaos matrix — every fault class over
// every seed, plus the drop class on the RawWrite baseline — and reports
// the invariant verdicts alongside the reliability counters that show the
// machinery actually fired. The per-run Results (including the generated
// fault schedules) are attached verbatim as BENCH_chaos.json.
func runChaos(opts Options) *Result {
	r := &Result{
		ID: "chaos", Title: "Seeded chaos-invariant matrix (8 clients x 60 calls per run)",
		XLabel: "seed", YLabel: "violations (must be 0)",
	}
	seeds := chaosSeeds
	if opts.Quick {
		seeds = seeds[:2]
	}

	type run struct {
		cfg chaos.Config
	}
	var runs []run
	for _, class := range chaos.Classes() {
		for _, seed := range seeds {
			runs = append(runs, run{chaos.Config{Class: class, Seed: seed}})
		}
	}
	for _, seed := range seeds {
		runs = append(runs, run{chaos.Config{Class: chaos.ClassDrop, Seed: seed, Transport: "RawWrite"}})
	}

	var results []*chaos.Result
	var violations int
	var acked, retries, dedup, crcDrops, mismatches, injectedCorrupt uint64
	tbl := Table{
		Title:  "per-run invariant verdicts and reliability counters",
		Header: []string{"class", "transport", "seed", "acked", "retries", "dedup", "crc_drops", "echo_mism", "violations"},
	}
	for _, ru := range runs {
		res, err := chaos.Run(ru.cfg)
		if err != nil { // the matrix only uses supported (class, transport) pairs
			panic(err)
		}
		results = append(results, res)
		violations += len(res.Violations)
		acked += res.Acked
		retries += res.Retries
		dedup += res.DedupHits
		crcDrops += res.CRCDrops
		mismatches += res.EchoMismatches
		injectedCorrupt += res.Injected.PayloadCorrupts
		r.AddPoint(string(res.Class)+"/"+res.Transport, float64(res.Seed), float64(len(res.Violations)))
		tbl.Rows = append(tbl.Rows, []string{
			res.Class, res.Transport, fmt.Sprintf("%d", res.Seed),
			fmt.Sprintf("%d", res.Acked), fmt.Sprintf("%d", res.Retries),
			fmt.Sprintf("%d", res.DedupHits), fmt.Sprintf("%d", res.CRCDrops),
			fmt.Sprintf("%d", res.EchoMismatches), fmt.Sprintf("%d", len(res.Violations)),
		})
	}
	r.Tables = append(r.Tables, tbl)
	r.AddArtifact("BENCH_chaos.json", marshalArtifact(results))
	r.Notef("%d runs, %d invariant violations; %d calls acknowledged", len(results), violations, acked)
	r.Notef("corruption: %d past-ICRC corrupt frames injected, %d frames caught by the wire CRC, %d corrupted payloads delivered (detection must be 100%%)",
		injectedCorrupt, crcDrops, mismatches)
	r.Notef("exactly-once machinery under fire: %d retries, %d duplicate deliveries absorbed by the reply cache", retries, dedup)
	return r
}
