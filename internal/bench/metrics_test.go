package bench

import (
	"bytes"
	"strings"
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/faults"
	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/sim"
)

// TestMeasureWindowExcludesWarmupEvents drives a continuous inbound-write
// workload through measureWindow and checks that the reported deltas cover
// only the measurement window — warmup-window events show up in the raw
// cumulative counters but not in the delta.
func TestMeasureWindowExcludesWarmupEvents(t *testing.T) {
	opts := Options{Warmup: 200 * sim.Microsecond, Duration: 400 * sim.Microsecond, Seed: 1}
	rec := &MetricsRecorder{}
	opts.Metrics = rec

	c := cluster.New(cluster.Default(2))
	defer c.Close()
	srv := c.Hosts[0]
	pool := srv.Mem.Register(4096, memory.PageSize2M, memory.LocalWrite|memory.RemoteWrite)
	ch := c.Hosts[1]
	src := ch.Mem.Register(4096, memory.PageSize4K, memory.LocalWrite)
	ccq := ch.NIC.CreateCQ()
	cqp := ch.NIC.CreateQP(nic.RC, ccq, ccq)
	scq := srv.NIC.CreateCQ()
	sqp := srv.NIC.CreateQP(nic.RC, scq, scq)
	if err := nic.Connect(cqp, sqp); err != nil {
		t.Fatal(err)
	}
	ch.Spawn("writer", func(th *host.Thread) {
		outstanding := 0
		for {
			th.PostSend(cqp, nic.SendWR{
				Op: nic.OpWrite, Signaled: true,
				LKey: src.LKey, LAddr: src.Base, Len: 32,
				RKey: pool.RKey, RAddr: pool.Base,
			})
			outstanding++
			for outstanding >= 4 {
				outstanding -= len(th.WaitCQ(ccq, 4, 5*sim.Microsecond))
			}
		}
	})

	delta := measureWindow(c, opts, "warmup-window")
	total := snapshotRaw(srv)
	if delta.inMsgs == 0 {
		t.Fatal("no messages measured")
	}
	if delta.inMsgs >= total.inMsgs {
		t.Fatalf("warmup events leaked into the window: delta %d >= total %d",
			delta.inMsgs, total.inMsgs)
	}
	// The warmup and measurement windows see the same steady-state workload,
	// so the delta should be roughly Duration/(Warmup+Duration) of the total.
	frac := float64(delta.inMsgs) / float64(total.inMsgs)
	want := float64(opts.Duration) / float64(opts.Warmup+opts.Duration)
	if frac < want-0.15 || frac > want+0.15 {
		t.Fatalf("window fraction = %.2f, want ≈ %.2f", frac, want)
	}

	// The recorder captured the point, including at least one sampled series.
	if len(rec.Experiments) != 1 || len(rec.Experiments[0].Points) != 1 {
		t.Fatalf("recorder = %+v", rec)
	}
	pt := rec.Experiments[0].Points[0]
	if pt.Label != "warmup-window" {
		t.Fatalf("label = %q", pt.Label)
	}
	if !strings.Contains(string(pt.Metrics), `"series"`) ||
		!strings.Contains(string(pt.Metrics), "nic0.in.messages") {
		t.Fatalf("dump missing series or nic counters: %.200s", pt.Metrics)
	}
}

// TestDriverWarmupWindowExcluded checks the RPC path's window: the driver's
// MeasureFrom discards completions before the warmup boundary, so measured
// throughput reflects only the measurement window.
func TestDriverWarmupWindowExcluded(t *testing.T) {
	base := Options{Warmup: 100 * sim.Microsecond, Duration: 400 * sim.Microsecond, Seed: 1, Quick: true}
	long := base
	long.Warmup = 300 * sim.Microsecond
	run := func(o Options) rpcOut {
		return runRPC(rpcRun{transport: "ScaleRPC", threads: 8, batch: 1, payload: 32, opts: o})
	}
	a, b := run(base), run(long)
	if a.completed == 0 || b.completed == 0 {
		t.Fatal("no completions")
	}
	// Same measurement duration with different warmups → similar counts; if
	// warmup completions leaked, the longer-warmup run would report more.
	ra, rb := float64(a.completed), float64(b.completed)
	if rb > ra*1.3 || rb < ra*0.7 {
		t.Fatalf("window not isolated from warmup: %v vs %v completions", a.completed, b.completed)
	}
}

// TestMetricsJSONDeterministic guards the repo's determinism invariant end
// to end: two full data points with the same (Config, seed) must produce
// byte-identical metrics JSON, including sampled series and trace events.
func TestMetricsJSONDeterministic(t *testing.T) {
	run := func() []byte {
		rec := &MetricsRecorder{}
		rec.Begin("det")
		opts := Options{Warmup: 100 * sim.Microsecond, Duration: 300 * sim.Microsecond,
			Seed: 7, Quick: true, Metrics: rec}
		runRPC(rpcRun{transport: "ScaleRPC", threads: 8, batch: 1, payload: 32, opts: opts})
		return rec.JSON()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical runs produced different metrics JSON")
	}
	if !strings.Contains(string(a), "scalerpc.server.served") {
		t.Fatal("dump missing scalerpc counters")
	}
}

// TestMetricsJSONDeterministicUnderFaults extends the determinism invariant
// to a lossy run: with a fault scenario installed, every injected drop, every
// retransmission, and every recovery decision comes off the same seeded RNG
// in the same virtual-time order, so two runs still produce byte-identical
// metrics JSON.
func TestMetricsJSONDeterministicUnderFaults(t *testing.T) {
	run := func() []byte {
		rec := &MetricsRecorder{}
		rec.Begin("det-lossy")
		opts := Options{Warmup: 100 * sim.Microsecond, Duration: 300 * sim.Microsecond,
			Seed: 7, Quick: true, Metrics: rec,
			Faults: faults.DropAll("drop2pct", 0.02)}
		runRPC(rpcRun{transport: "ScaleRPC", threads: 8, batch: 1, payload: 32, opts: opts})
		return rec.JSON()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical lossy runs produced different metrics JSON")
	}
	dump := string(a)
	// The reliability counters ride in the same dump: every transport
	// registers the shared RelStats block, so the exactly-once layer's
	// counters must be present (if zero-valued) in any instrumented run.
	for _, name := range []string{
		"faults.injected.drops", "nic0.qp.retransmits",
		"nic0.atomic_ops", "nic0.qp.atomic_replays",
		"rpc.retries", "rpc.hedges", "rpc.dedup_hits",
		"rpc.deadline_exceeded", "rpc.late_drops", "wire.crc_drops",
	} {
		if !strings.Contains(dump, name) {
			t.Fatalf("lossy dump missing %q", name)
		}
	}
}
