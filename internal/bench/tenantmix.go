// The multi-tenant QoS experiments: a 64-tenant mix (1 latency-sensitive,
// 63 adversarial bulk) run through four arms — unmanaged, caps-only,
// quota (caps + reserved-zone placement) and fully managed (quota + the
// online SLO controller) — plus the tenant-shed chaos matrix as a
// registered experiment.
package bench

import (
	"fmt"

	"scalerpc/internal/chaos"
	"scalerpc/internal/cluster"
	"scalerpc/internal/faults"
	"scalerpc/internal/loadgen"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
	"scalerpc/internal/tenant"
)

func init() {
	register("tenantmix", "Multi-tenant QoS: 64 tenants, unmanaged vs caps vs quota vs managed (SLO controller)", runTenantMix)
	register("tenantfaults", "Tenant-shed chaos matrix: invariants hold while the controller sheds mid-run", runTenantFaults)
}

// tenantMixTenants is the tenant population: tenant 0 is the
// latency-sensitive tenant, the rest are adversarial bulk.
const tenantMixTenants = 64

// tenantMixArm is one arm's artifact row.
type tenantMixArm struct {
	Arm        string  `json:"arm"`
	LatP99Us   float64 `json:"lat_p99_us"`
	LatSLOPass bool    `json:"lat_slo_pass"`
	BulkMops   float64 `json:"bulk_mops"`
	// Churn counters: dials admitted, refused by per-tenant quota, and
	// refused because the controller held the bulk class at shed level.
	ChurnAdmitted uint64 `json:"churn_admitted"`
	QuotaRejects  uint64 `json:"quota_rejects"`
	ShedRejects   uint64 `json:"shed_rejects"`
	// Controller outcome (managed arm only).
	Actions    []tenant.Action `json:"actions,omitempty"`
	FinalLevel int             `json:"final_level"`
	Windows    uint64          `json:"windows"`
	Violations uint64          `json:"slo_violation_windows"`

	Rel      rpccore.RelStats  `json:"rel"`
	Injected faults.PlaneStats `json:"injected"`
	Report   interface{}       `json:"report"`
}

// tenantMixWorkload builds the 64-tenant open-loop mix: one small-message
// latency tenant holding 6% of the offered rate under a p99 ≤ 50 µs SLO,
// and 63 bulk tenants splitting the rest with 512-byte requests.
func tenantMixWorkload(opts Options) loadgen.Workload {
	tenants := make([]loadgen.TenantSpec, tenantMixTenants)
	tenants[0] = loadgen.TenantSpec{
		Name: "lat", Share: 0.06, Size: loadgen.FixedSize(32), SLO: loadgen.P99(50),
	}
	for i := 1; i < tenantMixTenants; i++ {
		tenants[i] = loadgen.TenantSpec{
			Name: fmt.Sprintf("b%02d", i), Share: 0.94 / float64(tenantMixTenants-1),
			Size: loadgen.FixedSize(512),
		}
	}
	return loadgen.Workload{
		Name:        "tenantmix",
		OfferedRate: 1_500_000,
		Arrival:     loadgen.ArrivalPoisson,
		Tenants:     tenants,
		Warmup:      opts.Warmup,
		Duration:    opts.Duration,
		Seed:        opts.Seed,
		// Per-call deadlines so injected drops are recovered by resend
		// instead of stranding a client slot past the drain.
		Call: rpccore.CallOpts{
			Timeout:       2400 * sim.Microsecond,
			RetryInterval: 600 * sim.Microsecond,
			MaxRetries:    3,
		},
	}
}

// runTenantMixArm executes one arm of the comparison. All arms see
// the same workload, fault schedule and seeded churn; they differ only in
// what stands between a dial and a group slot:
//
//   - "unmanaged": no authority — every dial lands a rotating-group slot.
//   - "caps": the tenant authority enforces connection quotas, weights and
//     class-pure grouping, but the latency tenant dials unpinned — no zone
//     reservation, no controller.
//   - "quota": caps plus the latency tenant's reserved-zone quota — its
//     clients are pinned outside the rotation; still no controller.
//   - "managed": quota plus the online SLO controller sampling the
//     latency tenant's sliding windows.
func runTenantMixArm(arm string, opts Options) tenantMixArm {
	out := tenantMixArm{Arm: arm}
	managed := arm != "unmanaged"
	controlled := arm == "managed"
	pinLat := arm == "quota" || arm == "managed"

	o := opts
	if o.Faults == nil {
		// A light injected-loss floor (recovered by RC retransmission at a
		// realistic RTO) so the arms are compared under fire, not in a
		// vacuum.
		sc := faults.DropAll("tenantmix-drop", 0.002)
		sc.NIC.RetransmitTimeoutNs = 800_000
		o.Faults = sc
	}

	ccfg := cluster.Default(1 + 4)
	ccfg.Seed = o.Seed
	c := cluster.New(ccfg)
	defer c.Close()
	plane := o.instrument(c)

	w := tenantMixWorkload(o)
	w.Handler = 1

	cfg := scalerpc.DefaultServerConfig()
	cfg.MaxClients = 256
	cfg.ReservedZones = 4
	s := scalerpc.NewServer(c.Hosts[0], cfg)
	s.Register(1, echoHandler)

	// The managed arms put a tenant authority between dials and zones:
	// the latency tenant gets a declared weight, latency class and two
	// reserved-zone slots; every bulk tenant gets a 3-connection quota
	// (its two load clients plus one spare the churn process fights for).
	var m *tenant.Manager
	ids := make([]uint16, tenantMixTenants)
	if managed {
		m = tenant.NewManager(c.Telemetry.Scope("qos"))
		ids[0] = m.Register(tenant.Spec{Name: "lat", Quota: tenant.Quota{
			MaxConns: 4, ReservedZones: 2, Weight: 8, Class: tenant.ClassLatency}})
		for i := 1; i < tenantMixTenants; i++ {
			ids[i] = m.Register(tenant.Spec{Name: fmt.Sprintf("b%02d", i), Quota: tenant.Quota{
				MaxConns: 3, Weight: 1, Class: tenant.ClassBulk}})
		}
		s.SetTenantAuthority(m)
	}
	s.Start()

	clients := make([]loadgen.Client, 2*tenantMixTenants)
	for i := range clients {
		tn := i / 2
		ch := c.Hosts[1+i%4]
		sig := sim.NewSignal(c.Env)
		var conn rpccore.Conn
		if managed {
			cc := s.ConnectTenant(ch, sig, ids[tn], tn == 0 && pinLat)
			if cc == nil {
				panic(fmt.Sprintf("tenantmix: client %d (tenant %d) refused at setup", i, tn))
			}
			conn = cc
		} else {
			conn = s.Connect(ch, sig)
		}
		clients[i] = loadgen.Client{Host: ch, Conn: conn, Sig: sig, Tenant: tn}
	}
	runner := loadgen.NewRunner(w, clients, c.Telemetry.UniqueScope("loadgen"))
	runner.Start(c.Env)

	// The online controller (managed arm only) samples the latency
	// tenant's live telemetry each window; the windowed completion floor
	// is relaxed to 50% because in-flight requests straddle the short
	// windows, while the *report* keeps the strict cumulative SLO.
	var ctl *tenant.Controller
	if controlled {
		slo := loadgen.SLO{Targets: []loadgen.SLOTarget{{Q: 0.99, LimitUs: 50}}, MinCompletion: 0.5}
		ctl = m.NewController(ids[0], slo, func() (*stats.Histogram, uint64, uint64) {
			h, off, comp, _ := runner.TenantSample("lat")
			return h, off, comp
		}, tenant.ControllerConfig{
			// The latency tenant offers ~90k req/s, so a 250 µs window
			// holds ~22 samples — comfortably past MinSamples, so every
			// window is actually evaluated rather than skipped as thin.
			Interval:     250 * sim.Microsecond,
			TripWindows:  2,
			ClearWindows: 5,
			MinSamples:   8,
			WeightFactor: 0.25,
		})
		ctl.Start(c.Env)
	}

	// The seeded churn/dial-spam process, identical across arms: it keeps
	// dialing bulk identities and dropping held ones. Unmanaged, every
	// dial lands in the rotation; managed, the spare-slot quota (and the
	// controller's shed level) refuses the excess at admission.
	stop := runner.DrainDeadline()
	{
		const churnCap = 24
		rng := stats.NewRNG(o.Seed ^ 0xc0ffee5eed)
		sig := sim.NewSignal(c.Env)
		var held []uint16
		c.Env.Spawn("tenantmix-churn", func(pr *sim.Proc) {
			for k := 0; pr.Now() < stop; k++ {
				if len(held) > 0 && (len(held) >= churnCap || rng.Float64() < 0.5) {
					j := rng.Intn(len(held))
					s.Disconnect(held[j])
					held = append(held[:j], held[j+1:]...)
				} else {
					ch := c.Hosts[1+k%4]
					var cc *scalerpc.Conn
					if managed {
						// Concentrate the spam on 8 bulk tenants so their
						// one-spare-slot quotas genuinely refuse dials once
						// the spares are held.
						cc = s.ConnectTenant(ch, sig, ids[1+k%8], false)
					} else {
						cc = s.Connect(ch, sig)
					}
					switch {
					case cc != nil:
						held = append(held, cc.ID())
						out.ChurnAdmitted++
					case ctl != nil && ctl.Level() >= 3:
						out.ShedRejects++
					default:
						out.QuotaRejects++
					}
				}
				pr.Sleep(sim.Duration(40+rng.Intn(60)) * sim.Microsecond)
			}
		})
	}

	c.Env.RunUntil(runner.DrainDeadline() + 100*sim.Microsecond)
	if ctl != nil {
		ctl.Stop()
		out.Actions = ctl.Actions
		out.FinalLevel = ctl.Level()
		out.Windows = ctl.Windows
		out.Violations = ctl.Violations
	}
	out.Rel = *rpccore.SharedRel(c.Telemetry)
	if plane != nil {
		out.Injected = plane.Stats
	}

	rep := runner.Report()
	out.LatP99Us = rep.Tenants[0].P99Us
	out.LatSLOPass = rep.Tenants[0].SLOPass
	for _, t := range rep.Tenants[1:] {
		out.BulkMops += t.AchievedMops
	}
	out.Report = rep
	return out
}

// runTenantMix executes the three-arm comparison and emits the headline
// artifact BENCH_tenantmix.json.
func runTenantMix(opts Options) *Result {
	r := &Result{
		ID: "tenantmix", Title: "64 tenants (1 latency-sensitive + 63 bulk) under churn and loss: unmanaged vs caps vs quota vs managed",
		XLabel: "arm (0=unmanaged 1=caps 2=quota 3=managed)", YLabel: "lat-tenant p99 (us)",
	}
	arms := []string{"unmanaged", "caps", "quota", "managed"}
	outs := make([]tenantMixArm, 0, len(arms))
	tbl := Table{
		Title:  "per-arm outcomes (lat tenant SLO: p99 <= 50us)",
		Header: []string{"arm", "lat_p99us", "slo", "bulk_mops", "churn_adm", "quota_rej", "shed_rej", "ladder", "final_lvl"},
	}
	for i, arm := range arms {
		out := runTenantMixArm(arm, opts)
		outs = append(outs, out)
		pass := 0.0
		if out.LatSLOPass {
			pass = 1.0
		}
		r.AddPoint("lat-p99us", float64(i), out.LatP99Us)
		r.AddPoint("lat-slo-pass", float64(i), pass)
		r.AddPoint("bulk-mops", float64(i), out.BulkMops)
		tbl.Rows = append(tbl.Rows, []string{
			arm, fmt.Sprintf("%.1f", out.LatP99Us), fmt.Sprintf("%v", out.LatSLOPass),
			fmt.Sprintf("%.2f", out.BulkMops), fmt.Sprintf("%d", out.ChurnAdmitted),
			fmt.Sprintf("%d", out.QuotaRejects), fmt.Sprintf("%d", out.ShedRejects),
			fmt.Sprintf("%d", len(out.Actions)), fmt.Sprintf("%d", out.FinalLevel),
		})
		r.Notef("%s: lat p99 %.1fus (SLO pass=%v), bulk %.2f Mops/s, churn admitted=%d quota_rej=%d shed_rej=%d",
			arm, out.LatP99Us, out.LatSLOPass, out.BulkMops,
			out.ChurnAdmitted, out.QuotaRejects, out.ShedRejects)
	}
	r.Tables = append(r.Tables, tbl)
	r.AddArtifact("BENCH_tenantmix.json", marshalArtifact(outs))
	r.Note("unmanaged, the latency tenant's clients share the rotating groups with 63 bulk tenants and every spam dial lands a group slot, so its p99 rides the full slice cycle; the caps arm adds connection quotas, weights and class-pure grouping but no placement — the tail still waits out the rotation; only the managed arm, which honors the tenant's reserved-zone quota and arms the online SLO controller, holds the p99 under the 50us objective")
	return r
}

// tenantFaultSeeds mirrors the tenant-shed test matrix, extended for the
// full run; each row is replayable as chaos.RunTenant(TenantConfig{Seed}).
var tenantFaultSeeds = []uint64{1, 2, 3, 5, 7, 8}

// runTenantFaults executes the tenant-shed chaos matrix: drop-class faults
// with the controller shedding mid-run, asserting the four reliability
// invariants hold and reporting the ladder activity per seed.
func runTenantFaults(opts Options) *Result {
	r := &Result{
		ID: "tenantfaults", Title: "Tenant-shed chaos: invariants under drop faults while the SLO controller sheds",
		XLabel: "seed", YLabel: "violations (must be 0)",
	}
	seeds := tenantFaultSeeds
	if opts.Quick {
		seeds = seeds[:2]
	}
	var outs []*chaos.TenantOutcome
	var violations int
	var moves, sheds, quotaRejs uint64
	tbl := Table{
		Title:  "per-seed verdicts and controller activity",
		Header: []string{"seed", "acked", "retries", "dedup", "windows", "slo_viol", "ladder", "final_lvl", "shed_rej", "quota_rej", "violations"},
	}
	for _, seed := range seeds {
		out, err := chaos.RunTenant(chaos.TenantConfig{Seed: seed})
		if err != nil { // the fixed config is always valid
			panic(err)
		}
		outs = append(outs, out)
		violations += len(out.Result.Violations)
		moves += uint64(len(out.Actions))
		sheds += out.ShedRejects
		quotaRejs += out.QuotaRejects
		r.AddPoint("violations", float64(seed), float64(len(out.Result.Violations)))
		r.AddPoint("ladder-moves", float64(seed), float64(len(out.Actions)))
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", seed), fmt.Sprintf("%d", out.Result.Acked),
			fmt.Sprintf("%d", out.Result.Retries), fmt.Sprintf("%d", out.Result.DedupHits),
			fmt.Sprintf("%d", out.Windows), fmt.Sprintf("%d", out.Violations),
			fmt.Sprintf("%d", len(out.Actions)), fmt.Sprintf("%d", out.FinalLevel),
			fmt.Sprintf("%d", out.ShedRejects), fmt.Sprintf("%d", out.QuotaRejects),
			fmt.Sprintf("%d", len(out.Result.Violations)),
		})
	}
	r.Tables = append(r.Tables, tbl)
	r.AddArtifact("BENCH_tenantfaults.json", marshalArtifact(outs))
	r.Notef("%d seeded runs, %d invariant violations; the controller moved the ladder %d times, refused %d dials at shed level and %d on plain quota",
		len(outs), violations, moves, sheds, quotaRejs)
	r.Note("admission shedding, weight shrinking and class demotion may slow bulk tenants down, but acknowledged work is never lost, duplicated or corrupted — the same four invariants as the plain chaos matrix")
	return r
}
