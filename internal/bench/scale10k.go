package bench

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"scalerpc/internal/loadgen"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
)

func init() {
	register("scale10k", "Fig 9 shape at 10,000 clients: latency distribution at simulator scale", runScale10k)
}

// The paper's Fig 9 measures the latency distribution at 120 clients — the
// largest population its testbed could drive. This experiment replays the
// same shape at populations the hardware could not reach, topping out at
// 10,000 clients on one server. It exists because of the kernel-speed
// refactor: before the timing wheel, batched charging and arena pooling,
// a 10k-client run did not finish in a CI budget.
//
// The windows are fixed per point (not Options-scaled): at GroupSize 40 /
// TimeSlice 100 µs, N clients form ceil(N/40) groups and a full rotation
// takes groups × 100 µs — 25 ms at 10k clients. The measurement window must
// cover at least one full rotation or some groups are never served inside
// it, and the drain must cover another so in-flight requests land.
func scale10kSweep(quick bool) []int {
	if quick {
		return []int{400, 2000, 10000}
	}
	return []int{400, 1000, 2500, 5000, 10000}
}

const (
	scale10kHosts   = 25
	scale10kOffered = 2_000_000.0 // total open-loop ops/s, shared by the population
)

func runScale10k(opts Options) *Result {
	r := &Result{
		ID: "scale10k", Title: "Latency distribution vs population: Fig 9 extended to 10,000 clients",
		XLabel: "latency (us)", YLabel: "CDF",
	}
	tbl := Table{
		Title:  "population sweep (open-loop, 2 Mops offered total, 32 B echo)",
		Header: []string{"clients", "groups", "rotation(us)", "achieved(Mops)", "completion", "p50(us)", "p99(us)", "p999(us)", "max(us)"},
	}
	var points []loadPoint
	for _, n := range scale10kSweep(opts.Quick) {
		cfg := scalerpc.DefaultServerConfig()
		groups := (n + cfg.GroupSize - 1) / cfg.GroupSize
		rotation := sim.Duration(groups) * cfg.TimeSlice
		// Response latency is rotation-dominated, so clients poll at a
		// granularity scaled to the rotation period (1% of it, min 5 µs):
		// a 10k-client request waits ~12 ms for its group's slice, and
		// polling its response zone every 5 µs all the while is 50× more
		// simulated work for ≤1% better latency resolution.
		poll := rotation / 100
		if poll < 5*sim.Microsecond {
			poll = 5 * sim.Microsecond
		}
		w := loadgen.Workload{
			Name:         fmt.Sprintf("scale@%d", n),
			OfferedRate:  scale10kOffered,
			Arrival:      loadgen.ArrivalPoisson,
			Seed:         opts.Seed,
			PollInterval: poll,
			// ≥1.2 rotations measured so every group is served in-window;
			// drain covers one more rotation so staged requests complete.
			Warmup:   1 * sim.Millisecond,
			Duration: maxDur(6*sim.Millisecond, rotation+rotation/5),
			Drain:    rotation + 2*sim.Millisecond,
			Tenants:  []loadgen.TenantSpec{{Name: "all", Size: loadgen.FixedSize(32)}},
		}
		rep := runLoad(loadRun{
			transport: "ScaleRPC", clients: n, clientHosts: scale10kHosts,
			w: w,
			tuneScale: func(cfg *scalerpc.ServerConfig) {
				cfg.MaxClients = n + 8
			},
			opts: opts,
		})
		t := rep.Tenants[0]
		completion := 0.0
		if t.Offered > 0 {
			completion = float64(t.Completed) / float64(t.Offered)
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(groups), fmt.Sprint(int64(rotation) / 1000),
			trimFloat(rep.AchievedMops), trimFloat(completion),
			trimFloat(t.P50Us), trimFloat(t.P99Us), trimFloat(t.P999Us), trimFloat(t.MaxUs),
		})
		for _, pt := range histCDF(t.LatHist) {
			r.AddPoint(fmt.Sprintf("c%d", n), pt.us, pt.cdf)
		}
		points = append(points, loadPoint{Transport: "ScaleRPC", Rate: float64(n), Report: rep.JSON()})
	}
	r.Tables = append(r.Tables, tbl)
	r.AddArtifact("BENCH_scale10k.json", marshalArtifact(points))
	r.Note("x in the artifact's points is the client count, not an offered rate")
	r.Note("latency is rotation-dominated: ceil(N/40) groups × 100 us per slice puts the p50 near half a rotation (25 ms cycle at 10k clients), the Fig 9 bimodal shape stretched by population")
	r.Note("the paper's Fig 9 stops at 120 clients (testbed limit); this run exists to show the reproduction's kernel sustains 25× that with the same per-group service guarantees")
	return r
}

// histCDF converts a log2 latency histogram ("bit%02d" label → count, see
// loadgen.histBuckets) into CDF points at bucket upper bounds: bucket bit
// holds observations 2^(bit-1) ≤ v < 2^bit nanoseconds.
type cdfPoint struct{ us, cdf float64 }

func histCDF(h map[string]uint64) []cdfPoint {
	if len(h) == 0 {
		return nil
	}
	bits := make([]int, 0, len(h))
	var total uint64
	for k, c := range h {
		b, err := strconv.Atoi(strings.TrimPrefix(k, "bit"))
		if err != nil { // labels are "bit"+zero-padded bucket number
			continue
		}
		bits = append(bits, b)
		total += c
	}
	sort.Ints(bits)
	out := make([]cdfPoint, 0, len(bits))
	var cum uint64
	for _, b := range bits {
		cum += h[fmt.Sprintf("bit%02d", b)]
		out = append(out, cdfPoint{us: float64(uint64(1)<<uint(b)) / 1000, cdf: float64(cum) / float64(total)})
	}
	return out
}

func maxDur(a, b sim.Duration) sim.Duration {
	if a > b {
		return a
	}
	return b
}
