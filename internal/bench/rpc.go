package bench

import (
	"fmt"

	"scalerpc/internal/baseline/fasstrpc"
	"scalerpc/internal/baseline/herdrpc"
	"scalerpc/internal/baseline/rawrpc"
	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
)

func init() {
	register("fig8", "RPC throughput: clients sweep and client-host sweep", runFig8)
	register("fig9", "RPC latency distribution at 120 clients", runFig9)
	register("fig10", "Hardware-counter analysis: RawWrite vs ScaleRPC", runFig10)
	register("fig11a", "ScaleRPC sensitivity to the time slice size", runFig11a)
	register("fig11b", "ScaleRPC sensitivity to the group size", runFig11b)
	register("fig12", "Priority scheduler under non-uniform access frequencies", runFig12)
}

// transportNames in the paper's presentation order.
var transportNames = []string{"RawWrite", "HERD", "FaSST", "ScaleRPC"}

// echoAppCost is the simulated application work per RPC.
const echoAppCost = 400

func echoHandler(t *host.Thread, _ uint16, req, out []byte) int {
	t.Work(echoAppCost)
	return copy(out, req)
}

// rpcRun describes one RPC throughput/latency data point.
type rpcRun struct {
	transport   string
	threads     int // client threads
	coroutines  int // RPCClients per thread
	clientHosts int
	batch       int
	payload     int
	busyPoll    bool
	// thinkFor, when set, returns client i's fixed think time between
	// batches (Figure 12's access-frequency injection).
	thinkFor func(i int) sim.Duration
	// tuneScale adjusts the ScaleRPC configuration (slice/group sweeps,
	// Static mode).
	tuneScale func(*scalerpc.ServerConfig)
	opts      Options
}

// rpcOut is one data point's measurements.
type rpcOut struct {
	tputMops  float64
	lat       *stats.Histogram
	pcieRd    float64 // Mevents/s at the server
	pcieItoM  float64
	completed uint64
}

// buildTransport constructs a started server of the named transport on h
// and returns its connect function.
func buildTransport(name string, h *host.Host) func(*host.Host, *sim.Signal) rpccore.Conn {
	switch name {
	case "RawWrite":
		cfg := rawrpc.DefaultServerConfig()
		s := rawrpc.NewServer(h, cfg)
		s.Register(1, echoHandler)
		s.Start()
		return func(ch *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(ch, sig) }
	case "HERD":
		cfg := herdrpc.DefaultServerConfig()
		s := herdrpc.NewServer(h, cfg)
		s.Register(1, echoHandler)
		s.Start()
		return func(ch *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(ch, sig) }
	case "FaSST":
		cfg := fasstrpc.DefaultServerConfig()
		s := fasstrpc.NewServer(h, cfg)
		s.Register(1, echoHandler)
		s.Start()
		return func(ch *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(ch, sig) }
	default:
		panic("bench: unknown transport " + name)
	}
}

// runRPC executes one data point.
func runRPC(r rpcRun) rpcOut {
	if r.coroutines <= 0 {
		r.coroutines = 1
	}
	if r.clientHosts <= 0 {
		r.clientHosts = 11
	}
	c := cluster.New(cluster.Default(1 + r.clientHosts))
	defer c.Close()
	r.opts.instrument(c)
	srv := c.Hosts[0]

	var connect func(*host.Host, *sim.Signal) rpccore.Conn
	if r.transport == "ScaleRPC" {
		cfg := scalerpc.DefaultServerConfig()
		if r.tuneScale != nil {
			r.tuneScale(&cfg)
		}
		s := scalerpc.NewServer(srv, cfg)
		s.Register(1, echoHandler)
		s.Start()
		connect = func(ch *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(ch, sig) }
	} else {
		connect = buildTransport(r.transport, srv)
	}

	horizon := r.opts.Warmup + r.opts.Duration
	results := make([]*rpccore.DriverStats, r.threads)
	cid := 0
	for ti := 0; ti < r.threads; ti++ {
		ti := ti
		ch := c.Hosts[1+ti%r.clientHosts]
		sig := sim.NewSignal(c.Env)
		conns := make([]rpccore.Conn, r.coroutines)
		for j := range conns {
			conns[j] = connect(ch, sig)
		}
		dcfg := rpccore.DriverConfig{
			Batch:       r.batch,
			Handler:     1,
			PayloadSize: r.payload,
			Seed:        r.opts.Seed*7919 + uint64(ti),
			BusyPoll:    r.busyPoll,
			MeasureFrom: r.opts.Warmup,
			StartDelay:  sim.Duration(ti%64) * 311,
		}
		if r.thinkFor != nil {
			think := r.thinkFor(cid)
			dcfg.ThinkTime = func(*stats.RNG) sim.Duration { return think }
		}
		cid += r.coroutines
		ch.Spawn(fmt.Sprintf("drv%d", ti), func(t *host.Thread) {
			st := rpccore.RunDriver(t, conns, dcfg, sig, func() bool { return t.P.Now() >= horizon })
			results[ti] = &st
		})
	}

	c.Env.RunUntil(r.opts.Warmup)
	rdStart := srv.Bus.Snapshot()
	c.Env.RunUntil(horizon + 200*sim.Microsecond)
	rdEnd := srv.Bus.Snapshot().Sub(rdStart)

	out := rpcOut{lat: stats.NewHistogram()}
	for _, st := range results {
		if st == nil {
			continue
		}
		out.completed += st.Completed
		out.lat.Merge(st.BatchLat)
	}
	out.tputMops = mops(out.completed, r.opts.Duration)
	out.pcieRd = rate(rdEnd.PCIeRdCur, r.opts.Duration)
	out.pcieItoM = rate(rdEnd.PCIeItoM, r.opts.Duration)
	r.opts.Metrics.Record(fmt.Sprintf("%s/t%d/co%d/h%d/b%d/p%d",
		r.transport, r.threads, r.coroutines, r.clientHosts, r.batch, r.payload), c)
	return out
}

func fig8ClientSweep(quick bool) []int {
	if quick {
		return []int{40, 160, 400}
	}
	return []int{40, 80, 120, 160, 200, 240, 280, 320, 360, 400}
}

func runFig8(opts Options) *Result {
	r := &Result{
		ID: "fig8", Title: "RPC throughput (32 B echo)",
		XLabel: "clients", YLabel: "Mops/s",
	}
	batches := []int{1, 8}
	for _, batch := range batches {
		for _, n := range fig8ClientSweep(opts.Quick) {
			for _, tr := range transportNames {
				out := runRPC(rpcRun{
					transport: tr, threads: n, batch: batch, payload: 32, opts: opts,
				})
				r.AddPoint(fmt.Sprintf("%s/b%d", tr, batch), float64(n), out.tputMops)
			}
		}
	}
	// Right half: 40 client threads × 8 coroutines over 1..5 physical
	// hosts, busy-polling (the paper's client-CPU-bound regime).
	hostSweep := []int{1, 2, 3, 4, 5}
	if opts.Quick {
		hostSweep = []int{1, 3, 5}
	}
	for _, hN := range hostSweep {
		for _, tr := range transportNames {
			out := runRPC(rpcRun{
				transport: tr, threads: 40, coroutines: 4, clientHosts: hN,
				batch: 8, payload: 32, busyPoll: true, opts: opts,
			})
			r.AddPoint(fmt.Sprintf("%s/hosts", tr), float64(hN)*1000, out.tputMops)
		}
	}
	r.Note("x values ≥1000 are the host sweep (x/1000 = physical client hosts, 40 threads × 4 coroutines, batch 8)")
	r.Note("paper: ScaleRPC ≈ FaSST flat 40–400 clients; RawWrite collapses; HERD degrades; RC RPCs saturate with ≤2 client hosts, UD RPCs need ≥4")
	return r
}

func runFig9(opts Options) *Result {
	r := &Result{
		ID: "fig9", Title: "Latency CDFs at 120 clients",
		XLabel: "latency (us)", YLabel: "CDF",
	}
	tbl := Table{
		Title:  "latency summary",
		Header: []string{"rpc", "batch", "median(us)", "avg(us)", "max(us)", "tput(Mops)"},
	}
	for _, batch := range []int{1, 8} {
		for _, tr := range transportNames {
			out := runRPC(rpcRun{
				transport: tr, threads: 120, batch: batch, payload: 32, opts: opts,
			})
			label := fmt.Sprintf("%s/b%d", tr, batch)
			xs, ys := out.lat.CDF()
			step := len(xs)/40 + 1
			for i := 0; i < len(xs); i += step {
				r.AddPoint(label, float64(xs[i])/1000, ys[i])
			}
			s := out.lat.Summarize()
			tbl.Rows = append(tbl.Rows, []string{
				tr, fmt.Sprint(batch),
				trimFloat(float64(s.MedianNs) / 1000),
				trimFloat(s.MeanNs / 1000),
				trimFloat(float64(s.MaxNs) / 1000),
				trimFloat(out.tputMops),
			})
		}
	}
	r.Tables = append(r.Tables, tbl)
	r.Note("paper: ScaleRPC bimodal — low median (~4us b1, ~15us b8), higher max at batch 1; UD RPCs show wide 20–200us spectra at batch 8")
	return r
}

func runFig10(opts Options) *Result {
	r := &Result{
		ID: "fig10", Title: "Server PCIe counters: RawWrite vs ScaleRPC",
		XLabel: "clients", YLabel: "Mops/s or Mevents/s",
	}
	for _, n := range fig8ClientSweep(opts.Quick) {
		for _, tr := range []string{"RawWrite", "ScaleRPC"} {
			out := runRPC(rpcRun{transport: tr, threads: n, batch: 8, payload: 32, opts: opts})
			r.AddPoint(tr+"-tput", float64(n), out.tputMops)
			r.AddPoint(tr+"-PCIeRdCur", float64(n), out.pcieRd)
			r.AddPoint(tr+"-PCIeItoM", float64(n), out.pcieItoM)
		}
	}
	r.Note("paper: RawWrite's PCIeRdCur spikes past ~40 clients (QPC/WQE refetches) and PCIeItoM grows with pool size; ScaleRPC keeps both proportional to throughput")
	return r
}

func runFig11a(opts Options) *Result {
	r := &Result{
		ID: "fig11a", Title: "Throughput vs time slice (80 clients, group 40, batch 1)",
		XLabel: "slice (us)", YLabel: "Mops/s",
	}
	slices := []int{30, 50, 100, 150, 200, 250}
	if opts.Quick {
		slices = []int{30, 100, 250}
	}
	for _, sl := range slices {
		sl := sl
		out := runRPC(rpcRun{
			transport: "ScaleRPC", threads: 80, batch: 1, payload: 32, opts: opts,
			tuneScale: func(cfg *scalerpc.ServerConfig) {
				cfg.TimeSlice = sim.Duration(sl) * sim.Microsecond
				cfg.GroupSize = 40
				cfg.Dynamic = false
			},
		})
		r.AddPoint("ScaleRPC", float64(sl), out.tputMops)
		r.AddPoint("p99(us)", float64(sl), float64(out.lat.Quantile(0.99))/1000)
	}
	r.Note("paper: throughput grows 7.6→8.9 Mops/s from 30 to 250us slices; tail latency grows with slice — 100us balances both")
	return r
}

func runFig11b(opts Options) *Result {
	r := &Result{
		ID: "fig11b", Title: "Throughput vs group size (two groups, batch 1)",
		XLabel: "group size", YLabel: "Mops/s",
	}
	groups := []int{10, 20, 30, 40, 50, 60, 70}
	if opts.Quick {
		groups = []int{10, 40, 70}
	}
	for _, g := range groups {
		g := g
		out := runRPC(rpcRun{
			transport: "ScaleRPC", threads: 2 * g, batch: 1, payload: 32, opts: opts,
			tuneScale: func(cfg *scalerpc.ServerConfig) {
				cfg.GroupSize = g
				cfg.Dynamic = false
			},
		})
		r.AddPoint("ScaleRPC", float64(g), out.tputMops)
	}
	r.Note("paper: rises to a peak at group ≈ 40 (small groups under-utilize the NIC; large ones contend in the NIC/CPU caches)")
	return r
}

func runFig12(opts Options) *Result {
	r := &Result{
		ID: "fig12", Title: "Dynamic vs Static scheduling under Gaussian access-frequency skew",
		XLabel: "sigma (x100)", YLabel: "Mops/s",
	}
	nClients := 160
	if opts.Quick {
		nClients = 80
	}
	for _, sigma := range []float64{0.8, 1.0} {
		// Per-client think time ~ |N(mean, sigma*mean)|: some clients post
		// constantly, others mostly idle.
		const meanThink = 40 * sim.Microsecond
		thinks := make([]sim.Duration, nClients)
		rng := stats.NewRNG(opts.Seed + uint64(sigma*100))
		for i := range thinks {
			v := float64(meanThink) * (1 + sigma*rng.NormFloat64())
			if v < 0 {
				v = 0
			}
			thinks[i] = sim.Duration(v)
		}
		for _, mode := range []string{"Static", "Dynamic"} {
			mode := mode
			out := runRPC(rpcRun{
				transport: "ScaleRPC", threads: nClients, batch: 4, payload: 32, opts: opts,
				thinkFor: func(i int) sim.Duration { return thinks[i%len(thinks)] },
				tuneScale: func(cfg *scalerpc.ServerConfig) {
					cfg.Dynamic = mode == "Dynamic"
				},
			})
			r.AddPoint(mode, sigma*100, out.tputMops)
		}
	}
	r.Note("paper: Dynamic outperforms Static by ~9% (sigma 0.8) and ~10% (sigma 1.0)")
	return r
}
