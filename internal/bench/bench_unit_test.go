package bench

import (
	"strings"
	"testing"

	"scalerpc/internal/sim"
)

func TestAddPointCreatesAndAppends(t *testing.T) {
	r := &Result{}
	r.AddPoint("a", 1, 10)
	r.AddPoint("a", 2, 20)
	r.AddPoint("b", 1, 5)
	if len(r.Series) != 2 {
		t.Fatalf("series = %d", len(r.Series))
	}
	if len(r.Series[0].X) != 2 || r.Series[0].Y[1] != 20 {
		t.Fatalf("series a = %+v", r.Series[0])
	}
}

func TestRenderAlignsSeriesByX(t *testing.T) {
	r := &Result{ID: "t", Title: "test", XLabel: "x", YLabel: "y"}
	r.AddPoint("a", 1, 10)
	r.AddPoint("a", 2, 20)
	r.AddPoint("b", 2, 200)
	out := r.Render()
	if !strings.Contains(out, "== t: test ==") {
		t.Fatal("missing header")
	}
	// x=1 row has '-' for series b.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "1 ") && !strings.Contains(line, "-") {
			t.Fatalf("missing placeholder in row: %q", line)
		}
	}
}

func TestCSVLongFormat(t *testing.T) {
	r := &Result{}
	r.AddPoint("s1", 40, 1.5)
	csv := r.CSV()
	if !strings.Contains(csv, "series,x,y\n") || !strings.Contains(csv, "s1,40,1.5\n") {
		t.Fatalf("csv = %q", csv)
	}
}

func TestRegistryCoversEveryPaperExperiment(t *testing.T) {
	want := []string{
		"fig1a", "fig1b", "fig3a", "fig3b", "fig8", "fig9", "fig10",
		"fig11a", "fig11b", "fig12", "fig13", "fig16a", "fig16b",
		"sec51", "ablate",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(Experiments()) < len(want) {
		t.Fatalf("registry has %d entries, want ≥ %d", len(Experiments()), len(want))
	}
}

func TestMopsMath(t *testing.T) {
	if got := mops(1000, sim.Millisecond); got != 1 {
		t.Fatalf("mops(1000, 1ms) = %f, want 1", got)
	}
	if got := mops(0, 0); got != 0 {
		t.Fatalf("mops(0,0) = %f", got)
	}
}

func TestNotes(t *testing.T) {
	r := &Result{}
	r.Note("has 50% literal")
	r.Notef("x=%d", 7)
	if r.Notes[0] != "has 50% literal" || r.Notes[1] != "x=7" {
		t.Fatalf("notes = %v", r.Notes)
	}
}
