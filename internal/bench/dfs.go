package bench

import (
	"fmt"

	"scalerpc/internal/baseline/selfrpc"
	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/mdtest"
	"scalerpc/internal/octofs"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
)

func init() {
	register("fig1a", "DFS metadata throughput vs clients (Octopus + selfRPC)", runFig1a)
	register("fig13", "DFS metadata: selfRPC vs ScaleRPC", runFig13)
}

// filesPerClient is each client's preloaded private directory size.
const filesPerClient = 128

// runDFS measures one (transport, op, clients) metadata point and returns
// kops/s.
func runDFS(transport string, op mdtest.Op, nClients int, opts Options) float64 {
	c := cluster.New(cluster.Default(12))
	defer c.Close()
	srv := c.Hosts[0]
	mdsCfg := octofs.DefaultConfig()
	mds := octofs.NewMDS(srv, mdsCfg)
	if !mds.Preload(nClients, filesPerClient) {
		panic("bench: inode table too small")
	}

	var connect func(*host.Host, *sim.Signal) rpccore.Conn
	switch transport {
	case "selfRPC":
		cfg := selfrpc.DefaultServerConfig()
		s := selfrpc.NewServer(srv, cfg)
		mds.RegisterHandlers(s)
		s.Start()
		connect = func(ch *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(ch, sig) }
	case "ScaleRPC":
		cfg := scalerpc.DefaultServerConfig()
		s := scalerpc.NewServer(srv, cfg)
		mds.RegisterHandlers(s)
		s.Start()
		connect = func(ch *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(ch, sig) }
	default:
		panic("bench: unknown DFS transport " + transport)
	}

	horizon := opts.Warmup + opts.Duration
	results := make([]*rpccore.DriverStats, nClients)
	for i := 0; i < nClients; i++ {
		i := i
		ch := c.Hosts[1+i%11]
		sig := sim.NewSignal(c.Env)
		conn := connect(ch, sig)
		w := mdtest.NewWorkload(op, i, filesPerClient, opts.Seed+uint64(i))
		dcfg := w.DriverConfig(1, opts.Seed+uint64(i))
		dcfg.MeasureFrom = opts.Warmup
		dcfg.StartDelay = sim.Duration(i%64) * 311
		ch.Spawn(fmt.Sprintf("md%d", i), func(t *host.Thread) {
			st := rpccore.RunDriver(t, []rpccore.Conn{conn}, dcfg, sig,
				func() bool { return t.P.Now() >= horizon })
			results[i] = &st
		})
	}
	c.Env.RunUntil(horizon + 200*sim.Microsecond)
	var completed uint64
	for _, st := range results {
		if st != nil {
			completed += st.Completed
		}
	}
	return mops(completed, opts.Duration) * 1000 // kops/s
}

func dfsClientSweep(quick bool) []int {
	if quick {
		return []int{40, 120}
	}
	return []int{40, 80, 120}
}

func runFig1a(opts Options) *Result {
	r := &Result{
		ID: "fig1a", Title: "Octopus metadata throughput (self-identified RPC)",
		XLabel: "clients", YLabel: "kops/s",
	}
	for _, n := range dfsClientSweep(opts.Quick) {
		for _, op := range []mdtest.Op{mdtest.Stat, mdtest.Readdir, mdtest.Mknod} {
			r.AddPoint(op.String(), float64(n), runDFS("selfRPC", op, n, opts))
		}
	}
	r.Note("paper: Stat and ReadDir drop ~50% from 40 to 120 clients (RPC-bound); Mknod only ~5% (software-bound)")
	return r
}

func runFig13(opts Options) *Result {
	r := &Result{
		ID: "fig13", Title: "DFS metadata: selfRPC vs ScaleRPC",
		XLabel: "clients", YLabel: "kops/s",
	}
	ops := []mdtest.Op{mdtest.Mknod, mdtest.Rmnod, mdtest.Stat, mdtest.Readdir}
	if opts.Quick {
		ops = []mdtest.Op{mdtest.Mknod, mdtest.Stat}
	}
	for _, n := range dfsClientSweep(opts.Quick) {
		for _, op := range ops {
			self := runDFS("selfRPC", op, n, opts)
			scale := runDFS("ScaleRPC", op, n, opts)
			r.AddPoint(op.String()+"/selfRPC", float64(n), self)
			r.AddPoint(op.String()+"/ScaleRPC", float64(n), scale)
		}
	}
	r.Note("paper: ScaleRPC beats selfRPC by 50–90% on Stat/ReadDir at 80–120 clients, and by 5–6.5% on Mknod/Rmnod")
	return r
}
