package bench

import (
	"fmt"

	"scalerpc/internal/baseline/rawrpc"
	"scalerpc/internal/cluster"
	"scalerpc/internal/ctrlplane"
	"scalerpc/internal/host"
	"scalerpc/internal/loadgen"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
)

func init() {
	register("connsetup", "Connection setup latency: cold handshake vs cached resume, vs cluster size", runConnSetup)
	register("churn", "Open-loop SLO under Poisson client join/leave churn: ScaleRPC vs RawWrite", runChurn)
}

// churnPlane builds a control plane provisioned for the experiments here,
// where the whole cluster dials one server manager at once. The serialized
// handshake loop holds the tail dialer for milliseconds (hence the longer
// dial timeout), and while it grinds through ModifyQPs the keepalives of
// already-admitted peers sit unprocessed — so the recv ring must absorb a
// full wave's worth and the lease TTL must outlast it, or the server
// expires clients it only just accepted.
func churnPlane(c *cluster.Cluster) *ctrlplane.Directory {
	cfg := ctrlplane.DefaultConfig()
	cfg.DialTimeout = 2 * sim.Millisecond
	cfg.DialRetries = 5
	cfg.RecvDepth = 1024
	cfg.LeaseTTL = 2 * sim.Millisecond
	dir := ctrlplane.NewDirectory()
	for _, h := range c.Hosts {
		ctrlplane.NewManager(h, cfg, dir).Start()
	}
	c.Ctrl = dir
	return dir
}

// connsetupPoint is one cluster size's measurements for the artifact.
type connsetupPoint struct {
	Clients      int     `json:"clients"`
	ColdMeanUs   float64 `json:"cold_mean_us"`
	ColdP99Us    float64 `json:"cold_p99_us"`
	CachedMeanUs float64 `json:"cached_mean_us"`
	CachedP99Us  float64 `json:"cached_p99_us"`
	// Ratio is cold mean over cached mean — the payoff of connection
	// caching (acceptance floor: >= 10x at full cluster size).
	Ratio     float64         `json:"ratio"`
	ColdNs    []int64         `json:"cold_ns"`
	CachedNs  []int64         `json:"cached_ns"`
	ServerCtl ctrlplane.Stats `json:"server_ctrl_stats"`
}

func connsetupSizes(quick bool) []int {
	if quick {
		return []int{1, 8}
	}
	return []int{1, 4, 16, 64}
}

func runConnSetup(opts Options) *Result {
	r := &Result{
		ID: "connsetup", Title: "Connection setup: cold in-band handshake vs cached resume",
		XLabel: "concurrent dialers (one per host)", YLabel: "setup latency (us)",
	}
	var points []connsetupPoint
	for _, n := range connsetupSizes(opts.Quick) {
		p := connSetupPoint(opts, n)
		r.AddPoint("cold-mean-us", float64(n), p.ColdMeanUs)
		r.AddPoint("cold-p99-us", float64(n), p.ColdP99Us)
		r.AddPoint("cached-mean-us", float64(n), p.CachedMeanUs)
		r.AddPoint("cached-p99-us", float64(n), p.CachedP99Us)
		r.Notef("n=%d: cold %.1fus mean / %.1fus p99, cached %.1fus mean / %.1fus p99 (%.1fx cheaper)",
			n, p.ColdMeanUs, p.ColdP99Us, p.CachedMeanUs, p.CachedP99Us, p.Ratio)
		points = append(points, p)
	}
	r.AddArtifact("BENCH_ctrlplane_connsetup.json", marshalArtifact(points))
	r.Note("cold setup pays CreateQP + the INIT/RTR/RTS ModifyQP ladder on both ends plus the UD handshake RTT, all serialized through the server's manager; a cached resume reuses the parked RTS pair and costs one request/reply exchange")
	return r
}

// connSetupPoint measures one cluster size: n hosts dial the server's echo
// service concurrently (cold), close — parking the pairs in both caches —
// then immediately re-dial (cached resume).
func connSetupPoint(opts Options, n int) connsetupPoint {
	c := cluster.New(cluster.Default(1 + n))
	defer c.Close()
	opts.instrument(c)
	dir := churnPlane(c)
	dir.Manager(0).RegisterService("echo", ctrlplane.NewEchoService())

	conns := make([]*ctrlplane.Conn, n)
	coldNs := make([]int64, n)
	cachedNs := make([]int64, n)
	payload := []byte("connsetup")

	dialAll := func(out []int64) {
		done := 0
		for i := 0; i < n; i++ {
			i := i
			ch := c.Hosts[1+i]
			ch.Spawn("dialer", func(t *host.Thread) {
				t0 := t.P.Now()
				cp, err := dir.Manager(ch.ID).Dial(t, 0, "echo", payload)
				if err != nil {
					panic(fmt.Sprintf("connsetup: dial failed on host %d: %v", ch.ID, err))
				}
				out[i] = int64(t.P.Now() - t0)
				conns[i] = cp
				done++
			})
		}
		deadline := c.Env.Now() + 50*sim.Millisecond
		for done < n && c.Env.Now() < deadline {
			c.Env.RunUntil(c.Env.Now() + 100*sim.Microsecond)
		}
		if done < n {
			panic(fmt.Sprintf("connsetup: only %d/%d dials finished", done, n))
		}
	}

	dialAll(coldNs)

	// Park every pair in the connection caches.
	closed := 0
	for i := 0; i < n; i++ {
		i := i
		c.Hosts[1+i].Spawn("closer", func(t *host.Thread) {
			conns[i].Close(t)
			closed++
		})
	}
	for closed < n {
		c.Env.RunUntil(c.Env.Now() + 100*sim.Microsecond)
	}

	dialAll(cachedNs)
	for i, cp := range conns {
		if !cp.Cached {
			panic(fmt.Sprintf("connsetup: re-dial %d missed the connection cache", i))
		}
	}

	cold, cached := stats.NewHistogram(), stats.NewHistogram()
	for i := 0; i < n; i++ {
		cold.Record(coldNs[i])
		cached.Record(cachedNs[i])
	}
	return connsetupPoint{
		Clients:      n,
		ColdMeanUs:   cold.Mean() / 1e3,
		ColdP99Us:    float64(cold.Quantile(0.99)) / 1e3,
		CachedMeanUs: cached.Mean() / 1e3,
		CachedP99Us:  float64(cached.Quantile(0.99)) / 1e3,
		Ratio:        cold.Mean() / cached.Mean(),
		ColdNs:       coldNs,
		CachedNs:     cachedNs,
		ServerCtl:    dir.Manager(0).Stats,
	}
}

// memberConn is the churnable subset both managed transports implement:
// an rpccore.Conn that can gracefully depart and later rejoin through the
// control plane.
type memberConn interface {
	rpccore.Conn
	Leave(t *host.Thread)
	Rejoin(t *host.Thread) error
	Left() bool
}

// churnConn drives a precomputed leave/rejoin schedule through a managed
// connection from inside the loadgen client loop: every TrySend/Poll first
// advances the schedule, so departures and (blocking, costed) rejoins
// happen on the owning client thread. While departed, TrySend refuses and
// arrivals pile into the loadgen backlog — the churn cost lands in the
// coordinated-omission-free latency like any other stall.
type churnConn struct {
	mc memberConn
	// schedule alternates absolute leave/rejoin times: [leave0, rejoin0,
	// leave1, rejoin1, ...].
	schedule []sim.Time
	idx      int
	leaves   int
	rejoins  int
}

func (c *churnConn) step(t *host.Thread) {
	for c.idx < len(c.schedule) && t.P.Now() >= c.schedule[c.idx] {
		if c.idx%2 == 0 {
			c.mc.Leave(t)
			c.leaves++
		} else {
			// Retry a failed rejoin on the next pass rather than stranding
			// the client offline for the rest of the run.
			if err := c.mc.Rejoin(t); err != nil {
				return
			}
			c.rejoins++
		}
		c.idx++
	}
}

func (c *churnConn) TrySend(t *host.Thread, handler uint8, payload []byte, reqID uint64) bool {
	c.step(t)
	return c.mc.TrySend(t, handler, payload, reqID)
}

func (c *churnConn) Poll(t *host.Thread, fn func(rpccore.Response)) int {
	c.step(t)
	return c.mc.Poll(t, fn)
}

func (c *churnConn) Outstanding() int { return c.mc.Outstanding() }
func (c *churnConn) SlotCount() int   { return c.mc.SlotCount() }

// churnSchedule draws one client's Poisson leave process over the
// measurement window: exponential gaps at perClientRate, each departure
// lasting downtime.
func churnSchedule(rng *stats.RNG, perClientRate float64, downtime sim.Duration, from, until sim.Time) []sim.Time {
	if perClientRate <= 0 {
		return nil
	}
	gap := 1e9 / perClientRate // mean inter-leave gap, ns
	var out []sim.Time
	at := from + sim.Duration(rng.Exp(gap))
	for at < until {
		out = append(out, at, at+downtime)
		at += downtime + sim.Duration(rng.Exp(gap))
	}
	return out
}

// churnPoint is one (transport, churn rate) cell of the artifact.
type churnPoint struct {
	Transport  string  `json:"transport"`
	ChurnRate  float64 `json:"churn_rate_per_s"`
	Leaves     int     `json:"leaves"`
	Rejoins    int     `json:"rejoins"`
	P99Us      float64 `json:"p99_us"`
	Completion float64 `json:"completion"`
	Pass       bool    `json:"pass"`
	// ServerCtl shows the control-plane work the churn generated: resumes
	// and cache hits on the server manager.
	ServerCtl ctrlplane.Stats `json:"server_ctrl_stats"`
	Report    *loadgen.Report `json:"report"`
}

const (
	churnClients     = 128
	churnClientHosts = 4
	churnDowntime    = 100 * sim.Microsecond
	churnRate        = 1_000_000 // offered load, requests/s
)

func churnRates(quick bool) []float64 {
	if quick {
		return []float64{0, 10_000}
	}
	return []float64{0, 5_000, 20_000}
}

func runChurn(opts Options) *Result {
	r := &Result{
		ID: "churn", Title: "Open-loop p99 and completion under client churn (128 clients, 1 Mops/s)",
		XLabel: "churn rate (leaves/s, cluster-wide)", YLabel: "p99 (us) / completion",
	}
	var points []churnPoint
	for _, tr := range []string{"RawWrite", "ScaleRPC"} {
		for _, cr := range churnRates(opts.Quick) {
			p := churnCell(opts, tr, cr)
			r.AddPoint(tr+"-p99us", cr, p.P99Us)
			r.AddPoint(tr+"-completion", cr, p.Completion)
			r.Notef("%s @ %g leaves/s: %d leaves / %d rejoins, p99 %.0fus, completion %.4f (SLO pass=%v)",
				tr, cr, p.Leaves, p.Rejoins, p.P99Us, p.Completion, p.Pass)
			points = append(points, p)
		}
	}
	r.AddArtifact("BENCH_ctrlplane_churn.json", marshalArtifact(points))
	r.Note("every departure parks its QP pair in the connection cache, so a rejoin is a cached resume (no CreateQP/ModifyQP); ScaleRPC regroups the survivors while RawWrite keeps sweeping departed zones")
	r.Note("the SLO is the knee objective (p99 <= 2ms at >= 97% completion): a ~100us downtime plus a cached resume stays well inside it, so churn shifts the tail without breaking the floor")
	r.Note("the churn tail is rotation-bound for ScaleRPC — a rejoined client waits out its group's next time slice before its staged requests are fetched — while RawWrite's statically mapped zone answers as soon as the resume lands, at the cost of a sweep footprint that never shrinks")
	return r
}

// churnCell runs one open-loop measurement: join every client through the
// control plane (inside the simulation — dialing blocks), then drive the
// loadgen workload with per-client Poisson leave/rejoin schedules.
func churnCell(opts Options, transport string, rate float64) churnPoint {
	c := cluster.New(cluster.Default(1 + churnClientHosts))
	defer c.Close()
	opts.instrument(c)
	dir := churnPlane(c)
	srv := c.Hosts[0]

	var join func(t *host.Thread, sig *sim.Signal) (memberConn, error)
	switch transport {
	case "ScaleRPC":
		cfg := scalerpc.DefaultServerConfig()
		s := scalerpc.NewServer(srv, cfg)
		s.Register(1, echoHandler)
		s.Start()
		s.BindControlPlane(dir.Manager(0))
		join = func(t *host.Thread, sig *sim.Signal) (memberConn, error) {
			return s.Join(t, dir, sig, false)
		}
	case "RawWrite":
		cfg := rawrpc.DefaultServerConfig()
		s := rawrpc.NewServer(srv, cfg)
		s.Register(1, echoHandler)
		s.Start()
		s.BindControlPlane(dir.Manager(0))
		join = func(t *host.Thread, sig *sim.Signal) (memberConn, error) {
			return s.Join(t, dir, sig)
		}
	default:
		panic("churn: unknown transport " + transport)
	}

	// Join wave: all clients admit themselves in-band. Starts stagger a
	// little so the serialized server manager sees a ramp, not one burst.
	sigs := make([]*sim.Signal, churnClients)
	mconns := make([]memberConn, churnClients)
	joined := 0
	for i := 0; i < churnClients; i++ {
		i := i
		ch := c.Hosts[1+i%churnClientHosts]
		sigs[i] = sim.NewSignal(c.Env)
		ch.Spawn("join", func(t *host.Thread) {
			t.P.Sleep(sim.Duration(i) * 5 * sim.Microsecond)
			mc, err := join(t, sigs[i])
			if err != nil {
				panic(fmt.Sprintf("churn: join %d failed: %v", i, err))
			}
			mconns[i] = mc
			joined++
		})
	}
	deadline := c.Env.Now() + 100*sim.Millisecond
	for joined < churnClients && c.Env.Now() < deadline {
		c.Env.RunUntil(c.Env.Now() + 200*sim.Microsecond)
	}
	if joined < churnClients {
		panic(fmt.Sprintf("churn: only %d/%d clients joined", joined, churnClients))
	}

	// The arrival streams run from virtual time 0, so the warmup must
	// cover the join wave plus a settling period; measurement starts after.
	w := loadgen.Workload{
		Name:        fmt.Sprintf("%s-churn@%g", transport, rate),
		OfferedRate: churnRate,
		Arrival:     loadgen.ArrivalPoisson,
		Handler:     1,
		Warmup:      sim.Duration(c.Env.Now()) + opts.Warmup,
		Duration:    opts.Duration,
		Seed:        opts.Seed,
		Tenants:     []loadgen.TenantSpec{{Name: "all", Size: loadgen.FixedSize(32), SLO: kneeSLO()}},
	}

	// Per-client Poisson leave schedules over the measurement window.
	rng := stats.NewRNG(opts.Seed + 7)
	perClient := rate / float64(churnClients)
	horizon := sim.Time(w.Warmup + w.Duration)
	clients := make([]loadgen.Client, churnClients)
	wrapped := make([]*churnConn, churnClients)
	for i := 0; i < churnClients; i++ {
		wrapped[i] = &churnConn{
			mc:       mconns[i],
			schedule: churnSchedule(rng.Split(), perClient, churnDowntime, sim.Time(w.Warmup), horizon),
		}
		clients[i] = loadgen.Client{
			Host:   c.Hosts[1+i%churnClientHosts],
			Conn:   wrapped[i],
			Sig:    sigs[i],
			Tenant: 0,
		}
	}

	runner := loadgen.NewRunner(w, clients, c.Telemetry.UniqueScope("loadgen"))
	runner.Start(c.Env)
	c.Env.RunUntil(runner.DrainDeadline() + 100*sim.Microsecond)
	opts.Metrics.Record(fmt.Sprintf("churn/%s/rate%g", transport, rate), c)

	rep := runner.Report()
	p := churnPoint{
		Transport: transport,
		ChurnRate: rate,
		P99Us:     rep.Tenants[0].P99Us,
		Pass:      rep.Pass,
		ServerCtl: dir.Manager(0).Stats,
		Report:    rep,
	}
	for _, cc := range wrapped {
		p.Leaves += cc.leaves
		p.Rejoins += cc.rejoins
	}
	if rep.Offered > 0 {
		p.Completion = float64(rep.Completed) / float64(rep.Offered)
	}
	return p
}
