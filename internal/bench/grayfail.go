package bench

import (
	"fmt"

	"scalerpc/internal/chaos"
)

func init() {
	register("grayfail", "Gray-failure matrix: fixed-TTL lease vs adaptive phi-accrual ladder", runGrayFail)
}

// grayFailSeeds mirrors the acceptance matrix in internal/chaos's gray
// tests. Kept literal so a failing artifact row can be replayed exactly
// (`chaos.RunGray(GrayConfig{Class, Seed, Detector})`).
var grayFailSeeds = []uint64{1, 2, 3, 5, 8}

// runGrayFail executes every gray-failure schedule class over every seed,
// once under the fixed-TTL lease baseline and once under the adaptive
// phi-accrual detector, and reports the three numbers the ladder is built
// to move: detection latency, false evictions of the slow-but-alive gray
// node, and the victim population's p99 (the bounded-disruption surface).
// All per-run GrayResults are attached verbatim as BENCH_grayfail.json.
func runGrayFail(opts Options) *Result {
	r := &Result{
		ID: "grayfail", Title: "Gray-failure detection: fixed-TTL lease vs adaptive phi-accrual ladder",
		XLabel: "seed", YLabel: "detection latency (us)",
	}
	seeds := grayFailSeeds
	if opts.Quick {
		seeds = seeds[:2]
	}

	type agg struct {
		runs, falseEv, victimEv, violations int
		detSumNs, detRuns                   int64
		p99MaxNs                            int64
		demotes, readmits                   uint64
	}
	aggs := map[string]*agg{}
	var results []*chaos.GrayResult
	tbl := Table{
		Title: "per-run detection outcome and victim disruption",
		Header: []string{"class", "detector", "seed", "detect_us", "false_ev", "victim_ev",
			"demote/evict/readmit", "victim_acked", "victim_p99_us", "violations"},
	}
	for _, class := range chaos.GrayClasses() {
		for _, det := range []string{"fixed", "adaptive"} {
			for _, seed := range seeds {
				res, err := chaos.RunGray(chaos.GrayConfig{Class: class, Seed: seed, Detector: det})
				if err != nil { // the matrix only uses supported (class, detector) pairs
					panic(err)
				}
				results = append(results, res)
				a := aggs[det]
				if a == nil {
					a = &agg{}
					aggs[det] = a
				}
				a.runs++
				a.falseEv += int(res.FalseEvictions)
				a.victimEv += int(res.VictimEvictions)
				a.violations += len(res.Violations)
				a.demotes += res.Demotions
				a.readmits += res.Readmits
				if res.DetectionNs >= 0 {
					a.detSumNs += res.DetectionNs
					a.detRuns++
				}
				if res.VictimP99Ns > a.p99MaxNs {
					a.p99MaxNs = res.VictimP99Ns
				}
				detUS := float64(-1)
				if res.DetectionNs >= 0 {
					detUS = float64(res.DetectionNs) / 1e3
				}
				r.AddPoint(string(class)+"/"+det, float64(seed), detUS)
				tbl.Rows = append(tbl.Rows, []string{
					string(class), det, fmt.Sprintf("%d", seed), fmt.Sprintf("%.1f", detUS),
					fmt.Sprintf("%d", res.FalseEvictions), fmt.Sprintf("%d", res.VictimEvictions),
					fmt.Sprintf("%d/%d/%d", res.Demotions, res.Evictions, res.Readmits),
					fmt.Sprintf("%d/%d", res.VictimAcked, res.VictimIssued),
					fmt.Sprintf("%.1f", float64(res.VictimP99Ns)/1e3),
					fmt.Sprintf("%d", len(res.Violations)),
				})
			}
		}
	}
	r.Tables = append(r.Tables, tbl)
	r.AddArtifact("BENCH_grayfail.json", marshalArtifact(results))
	for _, det := range []string{"fixed", "adaptive"} {
		a := aggs[det]
		meanDet := float64(-1)
		if a.detRuns > 0 {
			meanDet = float64(a.detSumNs) / float64(a.detRuns) / 1e3
		}
		r.Notef("%s: %d runs, mean detection %.1f us, %d false evictions, %d victim evictions, %d invariant violations, worst victim p99 %.1f us",
			det, a.runs, meanDet, a.falseEv, a.victimEv, a.violations, float64(a.p99MaxNs)/1e3)
	}
	r.Notef("the adaptive ladder demoted %d times and readmitted %d recovered peers; fixed TTL can only evict",
		aggs["adaptive"].demotes, aggs["adaptive"].readmits)
	return r
}
