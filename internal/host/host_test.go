package host_test

import (
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/sim"
)

func newHost(t *testing.T) (*cluster.Cluster, *host.Host) {
	t.Helper()
	c := cluster.New(cluster.Default(2))
	t.Cleanup(c.Close)
	return c, c.Hosts[0]
}

func TestWorkChargesCoreTime(t *testing.T) {
	c, h := newHost(t)
	h.Spawn("w", func(th *host.Thread) {
		th.Work(1000)
	})
	if end := c.Env.Run(); end != 1000 {
		t.Fatalf("end = %d, want 1000", end)
	}
}

func TestWorkZeroOrNegativeFree(t *testing.T) {
	c, h := newHost(t)
	h.Spawn("w", func(th *host.Thread) {
		th.Work(0)
		th.Work(-5)
	})
	if end := c.Env.Run(); end != 0 {
		t.Fatalf("end = %d, want 0", end)
	}
}

func TestCoreContentionSerializes(t *testing.T) {
	// More runnable threads than cores: total time = work / cores.
	cfg := cluster.Default(1)
	cfg.Host.Cores = 2
	c := cluster.New(cfg)
	defer c.Close()
	h := c.Hosts[0]
	for i := 0; i < 6; i++ {
		h.Spawn("w", func(th *host.Thread) { th.Work(100) })
	}
	if end := c.Env.Run(); end != 300 {
		t.Fatalf("end = %d, want 300 (6×100ns on 2 cores)", end)
	}
}

func TestReadMemColdVsWarm(t *testing.T) {
	c, h := newHost(t)
	reg := h.Mem.Register(4096, memory.PageSize4K, memory.LocalWrite)
	var cold, warm sim.Time
	h.Spawn("w", func(th *host.Thread) {
		start := th.P.Now()
		th.ReadMem(reg.Base, 512) // 8 cold lines
		cold = th.P.Now() - start
		start = th.P.Now()
		th.ReadMem(reg.Base, 512) // 8 warm lines
		warm = th.P.Now() - start
	})
	c.Env.Run()
	if cold != 8*h.Cfg.MemReadCost {
		t.Fatalf("cold = %d, want %d", cold, 8*h.Cfg.MemReadCost)
	}
	if warm != 8*h.Cfg.LLCHitCost {
		t.Fatalf("warm = %d, want %d", warm, 8*h.Cfg.LLCHitCost)
	}
}

func TestPollCQChargesAndDrains(t *testing.T) {
	c, h := newHost(t)
	b := c.Hosts[1]
	cqA := h.NIC.CreateCQ()
	qa := h.NIC.CreateQP(nic.RC, cqA, cqA)
	cqB := b.NIC.CreateCQ()
	qb := b.NIC.CreateQP(nic.RC, cqB, cqB)
	nic.Connect(qa, qb)
	src := h.Mem.Register(64, memory.PageSize4K, memory.LocalWrite)
	dst := b.Mem.Register(64, memory.PageSize4K, memory.LocalWrite|memory.RemoteWrite)

	var got int
	h.Spawn("w", func(th *host.Thread) {
		th.PostSend(qa, nic.SendWR{Op: nic.OpWrite, Signaled: true,
			LKey: src.LKey, LAddr: src.Base, Len: 32, RKey: dst.RKey, RAddr: dst.Base})
		cqes := th.WaitCQ(cqA, 8, sim.Millisecond)
		got = len(cqes)
	})
	c.Env.RunUntil(10 * sim.Millisecond)
	if got != 1 {
		t.Fatalf("got %d completions", got)
	}
}

func TestWaitCQTimesOutEmpty(t *testing.T) {
	c, h := newHost(t)
	cq := h.NIC.CreateCQ()
	var n int
	var at sim.Time
	h.Spawn("w", func(th *host.Thread) {
		n = len(th.WaitCQ(cq, 8, 100*sim.Microsecond))
		at = th.P.Now()
	})
	c.Env.Run()
	if n != 0 {
		t.Fatalf("n = %d", n)
	}
	if at < 100*sim.Microsecond {
		t.Fatalf("returned early at %d", at)
	}
}

func TestPostRecvBatchSingleDoorbell(t *testing.T) {
	c, h := newHost(t)
	cq := h.NIC.CreateCQ()
	qp := h.NIC.CreateQP(nic.UD, cq, cq)
	buf := h.Mem.Register(4096, memory.PageSize4K, memory.LocalWrite)
	before := h.Bus.Snapshot().MMIOWr
	h.Spawn("w", func(th *host.Thread) {
		var wrs []nic.RecvWR
		for i := 0; i < 16; i++ {
			wrs = append(wrs, nic.RecvWR{LKey: buf.LKey, LAddr: buf.Base, Len: 64})
		}
		th.PostRecvBatch(qp, wrs)
	})
	c.Env.Run()
	if d := h.Bus.Snapshot().MMIOWr - before; d != 1 {
		t.Fatalf("batch posted %d doorbells, want 1", d)
	}
	if qp.RecvQueueLen() != 16 {
		t.Fatalf("RecvQueueLen = %d", qp.RecvQueueLen())
	}
}
