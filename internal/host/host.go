// Package host models one machine: a pool of CPU cores, a last-level cache
// shared with the NIC via DDIO, a PCIe root complex, registered memory, and
// one RNIC. It also provides the Thread abstraction simulated software runs
// on: threads charge CPU time against the core pool and pay LLC-modelled
// costs for the memory they touch, which is how message-pool footprint
// turns into real slowdown (Figure 3(b)).
package host

import (
	"fmt"

	"scalerpc/internal/cachesim"
	"scalerpc/internal/fabric"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/pcie"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
	"scalerpc/internal/telemetry"
)

// Config describes a machine.
type Config struct {
	Cores int
	LLC   cachesim.Config

	// CPU memory access costs (per cacheline).
	LLCHitCost  sim.Duration
	MemReadCost sim.Duration

	// BaseOpCost approximates the instruction overhead of one software
	// operation (function call, branch, small compute) and is used by
	// upper layers as the unit of "handler work".
	BaseOpCost sim.Duration
}

// DefaultConfig matches the paper's dual E5-2650 v4 nodes: 24 cores and a
// 30 MB LLC (2×12-core sockets modelled as one pool), with DDIO limited to
// 10% of ways.
func DefaultConfig() Config {
	return Config{
		Cores: 24,
		LLC: cachesim.Config{
			SizeBytes: 30 << 20,
			Ways:      20,
			LineSize:  64,
			DDIOWays:  2,
		},
		LLCHitCost:  15,
		MemReadCost: 85,
		BaseOpCost:  25,
	}
}

// Host is one simulated machine.
type Host struct {
	ID    int
	Env   *sim.Env
	Cfg   Config
	Cores *sim.Resource
	LLC   *cachesim.Cache
	Bus   *pcie.Bus
	Mem   *memory.Registry
	NIC   *nic.NIC
	RNG   *stats.RNG

	// Tel is the host's telemetry scope ("host<id>"); software layers
	// derive their scopes from Tel.Registry(). Detached when the host is
	// built without a registry.
	Tel telemetry.Scope

	// CPU time accounting across all of the host's threads, in virtual ns.
	CPUWorkNs  uint64 // time charged against the core pool
	CPUSleepNs uint64 // time blocked waiting for completions

	// cpuScale multiplies every Work charge when > 1 — a straggling host
	// whose cores run below nominal speed (thermal throttling, a noisy
	// neighbour VM). 0 or 1 is nominal. Set via SetCPUScale.
	cpuScale float64
}

// New assembles a host attached to fabric port id. reg may be nil; the host
// then runs with detached telemetry at no cost. With a registry, the host
// claims the scopes nic<id>, pcie.bus<id>, llc<id> and host<id>.
func New(env *sim.Env, id int, cfg Config, nicCfg nic.Config, cost pcie.CostModel, fab *fabric.Fabric, rng *stats.RNG, reg *telemetry.Registry) *Host {
	h := &Host{
		ID:    id,
		Env:   env,
		Cfg:   cfg,
		Cores: sim.NewResource(env, cfg.Cores),
		LLC:   cachesim.New(cfg.LLC),
		Bus:   pcie.NewBus(),
		Mem:   memory.NewRegistry(),
		RNG:   rng,
	}
	h.NIC = nic.New(nicCfg, nic.Deps{
		Env:  env,
		Port: fab.Port(id),
		Fab:  fab,
		Mem:  h.Mem,
		Bus:  h.Bus,
		LLC:  h.LLC,
		Cost: cost,
		RNG:  rng.Split(),
	})
	if reg != nil {
		h.Tel = reg.Scope(fmt.Sprintf("host%d", id))
		h.NIC.Register(reg.Scope(fmt.Sprintf("nic%d", id)))
		h.Bus.Register(reg.Scope(fmt.Sprintf("pcie.bus%d", id)))
		h.LLC.Register(reg.Scope(fmt.Sprintf("llc%d", id)))
		cpu := h.Tel.Scope("cpu")
		cpu.CounterVar("work_ns", &h.CPUWorkNs)
		cpu.CounterVar("sleep_ns", &h.CPUSleepNs)
	}
	return h
}

// Thread is a software thread running on a host. All simulated software
// (RPC clients, server workers, transaction coordinators) runs as Threads.
type Thread struct {
	P    *sim.Proc
	Host *Host

	// Deferred-charge state (see BeginWork): while batchDepth > 0, Work
	// accumulates cost here instead of sleeping on the core pool per call.
	batchDepth int
	deferred   sim.Duration
}

// BeginWork opens a deferred-charge region: until the matching EndWork,
// Work (and ReadMem/WriteMem, which charge through it) accumulates CPU cost
// instead of blocking on the core pool once per call. The accumulated cost
// is settled in a single Cores.Use at EndWork, or earlier at any externally
// visible action (PostSend's doorbell, a blocking wait) via FlushWork.
//
// This is the batching half of the simulator's poll-loop hot path: a pool
// sweep touching hundreds of slots pays one scheduler round trip for the
// whole scan instead of one per slot. Within the region virtual time stands
// still between touches, so a scan observes one consistent snapshot — reads
// that must see concurrent progress (and any block/sleep) belong after
// EndWork or an explicit FlushWork.
func (t *Thread) BeginWork() { t.batchDepth++ }

// EndWork closes a deferred-charge region and settles the remainder.
func (t *Thread) EndWork() {
	if t.batchDepth <= 0 {
		panic("host: EndWork without BeginWork")
	}
	t.batchDepth--
	if t.batchDepth == 0 {
		t.FlushWork()
	}
}

// EndWorkLazy closes a deferred-charge region WITHOUT settling: the
// accumulated cost stays pending and is folded into the thread's next Work
// charge, next FlushWork (all blocking wrappers flush), or — the point of
// this variant — absorbed into a WaitSignal park. Poll loops use it so an
// empty scan-then-wait cycle costs one scheduler wake-up instead of two.
func (t *Thread) EndWorkLazy() {
	if t.batchDepth <= 0 {
		panic("host: EndWorkLazy without BeginWork")
	}
	t.batchDepth--
}

// WaitSignal parks the thread on sig for at most d, absorbing any pending
// deferred charge into the wait: the cost occupies a core via a pure
// scheduler callback while the thread is already parked, instead of a
// separate charge-sleep before parking. Under core contention — all units
// busy, or acquirers already queued for a freed one — it falls back to the
// blocking flush first so FIFO admission is preserved. The
// thread becomes signal-responsive at the park time rather than after the
// charge — an overlap of at most the deferred tens of nanoseconds, well
// under every poll interval in the model. Reports whether the wait timed
// out.
func (t *Thread) WaitSignal(sig *sim.Signal, d sim.Duration) (timedOut bool) {
	if w := t.deferred; w > 0 {
		if t.Host.Cores.UseAsync(w) {
			t.deferred = 0
		} else {
			t.FlushWork()
		}
	}
	return sig.WaitTimeout(t.P, d)
}

// FlushWork settles any accumulated deferred cost now (one Cores.Use).
// No-op outside a deferred-charge region or when nothing has accrued.
func (t *Thread) FlushWork() {
	if t.deferred > 0 {
		d := t.deferred
		t.deferred = 0
		t.Host.Cores.Use(t.P, d)
	}
}

// Spawn starts a thread on the host.
func (h *Host) Spawn(name string, fn func(*Thread)) *Thread {
	t := &Thread{Host: h}
	t.P = h.Env.Spawn(fmt.Sprintf("h%d/%s", h.ID, name), func(p *sim.Proc) {
		fn(t)
	})
	return t
}

// SetCPUScale makes every subsequent Work charge cost f times its nominal
// duration (f > 1 slows the host; f <= 1 restores nominal speed). Used by
// the fault plane's straggler episodes.
func (h *Host) SetCPUScale(f float64) {
	if f <= 1 {
		f = 0
	}
	h.cpuScale = f
}

// Work charges d of CPU time on the host's core pool. Inside a BeginWork
// region the charge is deferred (see BeginWork).
func (t *Thread) Work(d sim.Duration) {
	if d <= 0 {
		return
	}
	if s := t.Host.cpuScale; s > 1 {
		d = sim.Duration(float64(d) * s)
	}
	t.Host.CPUWorkNs += uint64(d)
	if t.batchDepth > 0 {
		t.deferred += d
		return
	}
	if t.deferred > 0 {
		// Residue from an EndWorkLazy region: settle it together with this
		// charge in one sleep so charges stay ordered.
		d += t.deferred
		t.deferred = 0
	}
	t.Host.Cores.Use(t.P, d)
}

// ReadMem models the CPU reading [addr, addr+size): it runs the access
// through the LLC and charges hit/miss costs.
func (t *Thread) ReadMem(addr uint64, size int) {
	h, m := t.Host.LLC.CPURead(addr, uint64(size))
	t.Work(sim.Duration(h)*t.Host.Cfg.LLCHitCost + sim.Duration(m)*t.Host.Cfg.MemReadCost)
}

// WriteMem models the CPU writing [addr, addr+size).
func (t *Thread) WriteMem(addr uint64, size int) {
	h, m := t.Host.LLC.CPUWrite(addr, uint64(size))
	t.Work(sim.Duration(h)*t.Host.Cfg.LLCHitCost + sim.Duration(m)*t.Host.Cfg.MemReadCost)
}

// PostSend charges the CPU cost of assembling and doorbelling one work
// request (MMIO write) and posts it. Any deferred charges are settled
// first: the doorbell must ring at the virtual time all preceding CPU work
// has been paid for.
func (t *Thread) PostSend(qp *nic.QP, wr nic.SendWR) error {
	t.Work(t.Host.Cfg.BaseOpCost + 100) // WQE build + MMIO
	t.FlushWork()
	return qp.PostSend(wr)
}

// CreateQP allocates a queue pair, charging the modeled QP-creation
// latency (a command-queue round trip to NIC firmware) as blocked time.
func (t *Thread) CreateQP(typ nic.QPType, sendCQ, recvCQ *nic.CQ) *nic.QP {
	t.Work(t.Host.Cfg.BaseOpCost)
	if d := t.Host.NIC.Cfg.CreateQPCost; d > 0 {
		t.FlushWork()
		t.P.Sleep(d)
	}
	return t.Host.NIC.CreateQP(typ, sendCQ, recvCQ)
}

// ModifyQP drives one QP state transition, charging the modeled ModifyQP
// verb latency as blocked time so connection setup is visible in virtual
// time.
func (t *Thread) ModifyQP(qp *nic.QP, to nic.QPState, attr nic.ModifyAttr) error {
	t.Work(t.Host.Cfg.BaseOpCost)
	d, err := qp.Modify(to, attr)
	if err != nil {
		return err
	}
	if d > 0 {
		t.FlushWork()
		t.P.Sleep(d)
	}
	return nil
}

// PostRecv charges CPU cost and posts a receive.
func (t *Thread) PostRecv(qp *nic.QP, wr nic.RecvWR) error {
	t.Work(t.Host.Cfg.BaseOpCost + 100)
	t.FlushWork()
	return qp.PostRecv(wr)
}

// PostRecvBatch posts a batch of receives with one doorbell.
func (t *Thread) PostRecvBatch(qp *nic.QP, wrs []nic.RecvWR) error {
	t.Work(t.Host.Cfg.BaseOpCost*sim.Duration(len(wrs)) + 100)
	t.FlushWork()
	return qp.PostRecvBatch(wrs)
}

// PollCQ polls up to max completions, charging the poll cost: one ring
// check plus an LLC-modelled read per returned CQE, settled as a single
// charge.
func (t *Thread) PollCQ(cq *nic.CQ, max int) []nic.CQE {
	t.BeginWork()
	t.Work(t.Host.Cfg.BaseOpCost)
	cqes := cq.Poll(max)
	if len(cqes) > 0 {
		t.ReadMem(cq.RingBase(), len(cqes)*64)
	}
	t.EndWork()
	return cqes
}

// WaitCQ blocks until the CQ has completions or d elapses, then polls.
func (t *Thread) WaitCQ(cq *nic.CQ, max int, d sim.Duration) []nic.CQE {
	t.FlushWork()
	if cq.Len() == 0 {
		start := t.P.Now()
		cq.Sig.WaitTimeout(t.P, d)
		t.Host.CPUSleepNs += uint64(t.P.Now() - start)
	}
	return t.PollCQ(cq, max)
}
