package shard

import (
	"scalerpc/internal/ctrlplane"
	"scalerpc/internal/host"
	"scalerpc/internal/nic"
	"scalerpc/internal/sim"
)

// Control-plane service names the shard subsystem registers.
const (
	// SvcMap serves the current map to routers (director side).
	SvcMap = "shard.map"
	// SvcLease is the liveness anchor nodes dial and hold (director side).
	SvcLease = "shard.lease"
	// SvcNodePush receives map versions from the director (node side).
	SvcNodePush = "shard.node"
)

// Event is one entry in the director's deterministic decision log.
type Event struct {
	At        sim.Time
	Kind      string // failover, promote, degrade, restore, push, publish
	Host      int
	Partition int
	Epoch     uint32
}

// DirectorConfig holds the director's liveness tunables, extracted so
// experiments can sweep them independently of the control-plane defaults.
type DirectorConfig struct {
	// FailTTL is the lease silence after which a node is declared dead in
	// fixed-TTL mode; 0 means the manager default (ctrlplane LeaseTTL).
	// Ignored when the manager runs the adaptive detector — eviction then
	// comes from the ladder, not a fixed clock.
	FailTTL sim.Duration
	// Interval is the liveness sweep period; 0 means 100 µs.
	Interval sim.Duration
}

// DefaultDirectorConfig mirrors the pre-extraction hardcoded values.
func DefaultDirectorConfig() DirectorConfig {
	return DirectorConfig{
		FailTTL:  ctrlplane.DefaultConfig().LeaseTTL,
		Interval: 100 * sim.Microsecond,
	}
}

// Director owns the authoritative shard map: it serves fetches, watches
// node liveness through the control plane's lease stream, and on expiry
// runs the failover protocol — bump the epoch, promote backups, push the
// new map to every live node, and only then publish it to routers
// (push-before-publish closes the window where a client knows a map the
// serving node has not installed yet).
type Director struct {
	Events []Event

	mgr       *ctrlplane.Manager
	cur       *Map // authoritative, already pushed to nodes
	nodeHosts []int
	down      map[int]bool

	// FailTTL is the lease silence after which a node is declared dead;
	// defaults to the manager's LeaseTTL.
	FailTTL sim.Duration
	// Interval is the liveness sweep period.
	Interval sim.Duration

	// Ladder transitions queued by the manager's OnPeerState hook (which
	// must not block) and drained by the sweep thread, which can dial.
	pendFail    []int
	pendDegrade []int
	pendRestore []int

	stats     *Stats
	started   bool
	svcHandle uint64
}

// NewDirector builds a director for m on the given control-plane manager
// and registers its fetch and lease services.
func NewDirector(mgr *ctrlplane.Manager, m *Map) *Director {
	return NewDirectorWith(mgr, m, DefaultDirectorConfig())
}

// NewDirectorWith is NewDirector with explicit liveness tunables. When the
// manager runs the adaptive failure detector, the director also subscribes
// to its ladder: a demoted node host is marked degraded in an epoch-bumped
// map (routers then steer its reads to backups), a restored one is
// cleared, and eviction triggers the same failover the fixed TTL would.
func NewDirectorWith(mgr *ctrlplane.Manager, m *Map, cfg DirectorConfig) *Director {
	def := DefaultDirectorConfig()
	if cfg.FailTTL <= 0 {
		cfg.FailTTL = def.FailTTL
	}
	if cfg.Interval <= 0 {
		cfg.Interval = def.Interval
	}
	d := &Director{
		mgr:       mgr,
		cur:       m.Clone(),
		nodeHosts: append([]int(nil), m.Hosts...),
		down:      make(map[int]bool),
		FailTTL:   cfg.FailTTL,
		Interval:  cfg.Interval,
		stats:     SharedStats(mgr.Host().Tel.Registry()),
	}
	mgr.RegisterService(SvcMap, mapSvc{d})
	mgr.RegisterService(SvcLease, leaseSvc{d})
	if mgr.DetectorEnabled() {
		mgr.OnPeerState(func(peer int, old, new ctrlplane.PeerState) {
			if !d.isNodeHost(peer) {
				return
			}
			switch new {
			case ctrlplane.PeerDemoted:
				d.pendDegrade = append(d.pendDegrade, peer)
			case ctrlplane.PeerHealthy:
				d.pendRestore = append(d.pendRestore, peer)
			case ctrlplane.PeerEvicted:
				d.pendFail = append(d.pendFail, peer)
			}
		})
	}
	return d
}

func (d *Director) isNodeHost(h int) bool {
	for _, n := range d.nodeHosts {
		if n == h {
			return true
		}
	}
	return false
}

// Map returns the published map.
func (d *Director) Map() *Map { return d.cur }

// Start launches the liveness sweep thread.
func (d *Director) Start() {
	if d.started {
		return
	}
	d.started = true
	d.mgr.Host().Spawn("shard-director", d.run)
}

func (d *Director) run(t *host.Thread) {
	for {
		t.P.Sleep(d.Interval)
		now := t.P.Now()
		// Drain ladder transitions queued since the last sweep (adaptive
		// mode): failovers first so a host that raced through
		// demote→evict is not pointlessly degraded after its death.
		for _, h := range takeInts(&d.pendFail) {
			if !d.down[h] {
				d.failover(t, h)
			}
		}
		for _, h := range takeInts(&d.pendDegrade) {
			d.setDegraded(t, h, true)
		}
		for _, h := range takeInts(&d.pendRestore) {
			d.setDegraded(t, h, false)
		}
		if d.mgr.DetectorEnabled() {
			continue // eviction comes from the ladder, not the fixed TTL
		}
		for _, h := range d.nodeHosts {
			if d.down[h] {
				continue
			}
			at, ok := d.mgr.PeerLease(h)
			if ok && now-at > d.FailTTL {
				d.failover(t, h)
			}
		}
	}
}

func takeInts(p *[]int) []int {
	out := *p
	*p = nil
	return out
}

// setDegraded flips a host's degraded mark and distributes the new map
// version (push-before-publish, same as failover). No-op when the mark
// already matches or the host is down.
func (d *Director) setDegraded(t *host.Thread, h int, degraded bool) {
	if d.down[h] {
		return
	}
	next := d.cur.Clone()
	if !next.SetDegraded(h, degraded) {
		return
	}
	kind := "degrade"
	if !degraded {
		kind = "restore"
	}
	d.event(kind, h, -1, next.Epoch)
	d.distribute(t, next)
	d.cur = next
	if degraded {
		d.stats.Degrades++
	} else {
		d.stats.Restores++
	}
	d.event("publish", h, -1, next.Epoch)
}

// failover promotes around a dead host and distributes the new map.
func (d *Director) failover(t *host.Thread, dead int) {
	d.down[dead] = true
	next := d.cur.Clone()
	promoted := next.Failover(dead)
	d.event("failover", dead, -1, next.Epoch)
	for _, p := range promoted {
		d.event("promote", next.Primary[p], p, next.Epoch)
	}
	// Push to every live node first, then publish to routers.
	d.distribute(t, next)
	d.cur = next
	d.stats.Failovers++
	d.event("publish", dead, -1, next.Epoch)
}

// distribute pushes a new map version to every live node (sorted order:
// deterministic log) — publication to routers is the caller's d.cur swap,
// after every push, closing the window where a client knows a map the
// serving node has not installed yet.
func (d *Director) distribute(t *host.Thread, next *Map) {
	for _, h := range d.nodeHosts {
		if d.down[h] {
			continue
		}
		if conn, err := d.mgr.Dial(t, h, SvcNodePush, next.Encode()); err == nil {
			conn.Close(t)
			d.event("push", h, -1, next.Epoch)
		}
	}
}

func (d *Director) event(kind string, hostID, part int, epoch uint32) {
	d.Events = append(d.Events, Event{
		At: d.mgr.Host().Env.Now(), Kind: kind, Host: hostID, Partition: part, Epoch: epoch,
	})
}

// mapSvc serves the published map to routers.
type mapSvc struct{ d *Director }

func (s mapSvc) Accept(t *host.Thread, peer int, qp *nic.QP, payload []byte) ([]byte, uint64, error) {
	s.d.svcHandle++
	return s.d.cur.Encode(), s.d.svcHandle, nil
}

func (s mapSvc) Resume(t *host.Thread, peer int, qp *nic.QP, payload []byte, handle uint64) ([]byte, uint64, error) {
	return s.d.cur.Encode(), handle, nil
}

func (s mapSvc) Closed(peer int, handle uint64, reason ctrlplane.CloseReason) {}

// leaseSvc anchors node liveness: nodes dial it once and hold the
// connection, so their managers' keepalives reach the director.
type leaseSvc struct{ d *Director }

func (s leaseSvc) Accept(t *host.Thread, peer int, qp *nic.QP, payload []byte) ([]byte, uint64, error) {
	s.d.svcHandle++
	return nil, s.d.svcHandle, nil
}

func (s leaseSvc) Resume(t *host.Thread, peer int, qp *nic.QP, payload []byte, handle uint64) ([]byte, uint64, error) {
	return nil, handle, nil
}

func (s leaseSvc) Closed(peer int, handle uint64, reason ctrlplane.CloseReason) {}
