package shard

import (
	"scalerpc/internal/ctrlplane"
	"scalerpc/internal/host"
	"scalerpc/internal/nic"
	"scalerpc/internal/sim"
)

// Control-plane service names the shard subsystem registers.
const (
	// SvcMap serves the current map to routers (director side).
	SvcMap = "shard.map"
	// SvcLease is the liveness anchor nodes dial and hold (director side).
	SvcLease = "shard.lease"
	// SvcNodePush receives map versions from the director (node side).
	SvcNodePush = "shard.node"
)

// Event is one entry in the director's deterministic decision log.
type Event struct {
	At        sim.Time
	Kind      string // failover, promote, push, publish
	Host      int
	Partition int
	Epoch     uint32
}

// Director owns the authoritative shard map: it serves fetches, watches
// node liveness through the control plane's lease stream, and on expiry
// runs the failover protocol — bump the epoch, promote backups, push the
// new map to every live node, and only then publish it to routers
// (push-before-publish closes the window where a client knows a map the
// serving node has not installed yet).
type Director struct {
	Events []Event

	mgr       *ctrlplane.Manager
	cur       *Map // authoritative, already pushed to nodes
	nodeHosts []int
	down      map[int]bool

	// FailTTL is the lease silence after which a node is declared dead;
	// defaults to the manager's LeaseTTL.
	FailTTL sim.Duration
	// Interval is the liveness sweep period.
	Interval sim.Duration

	stats     *Stats
	started   bool
	svcHandle uint64
}

// NewDirector builds a director for m on the given control-plane manager
// and registers its fetch and lease services.
func NewDirector(mgr *ctrlplane.Manager, m *Map) *Director {
	d := &Director{
		mgr:       mgr,
		cur:       m.Clone(),
		nodeHosts: append([]int(nil), m.Hosts...),
		down:      make(map[int]bool),
		FailTTL:   ctrlplane.DefaultConfig().LeaseTTL,
		Interval:  100 * sim.Microsecond,
		stats:     SharedStats(mgr.Host().Tel.Registry()),
	}
	mgr.RegisterService(SvcMap, mapSvc{d})
	mgr.RegisterService(SvcLease, leaseSvc{d})
	return d
}

// Map returns the published map.
func (d *Director) Map() *Map { return d.cur }

// Start launches the liveness sweep thread.
func (d *Director) Start() {
	if d.started {
		return
	}
	d.started = true
	d.mgr.Host().Spawn("shard-director", d.run)
}

func (d *Director) run(t *host.Thread) {
	for {
		t.P.Sleep(d.Interval)
		now := t.P.Now()
		for _, h := range d.nodeHosts {
			if d.down[h] {
				continue
			}
			at, ok := d.mgr.PeerLease(h)
			if ok && now-at > d.FailTTL {
				d.failover(t, h)
			}
		}
	}
}

// failover promotes around a dead host and distributes the new map.
func (d *Director) failover(t *host.Thread, dead int) {
	d.down[dead] = true
	next := d.cur.Clone()
	promoted := next.Failover(dead)
	d.event("failover", dead, -1, next.Epoch)
	for _, p := range promoted {
		d.event("promote", next.Primary[p], p, next.Epoch)
	}
	// Push to every live node first (sorted order: deterministic log)…
	for _, h := range d.nodeHosts {
		if d.down[h] {
			continue
		}
		if conn, err := d.mgr.Dial(t, h, SvcNodePush, next.Encode()); err == nil {
			conn.Close(t)
			d.event("push", h, -1, next.Epoch)
		}
	}
	// …then publish to routers.
	d.cur = next
	d.stats.Failovers++
	d.event("publish", dead, -1, next.Epoch)
}

func (d *Director) event(kind string, hostID, part int, epoch uint32) {
	d.Events = append(d.Events, Event{
		At: d.mgr.Host().Env.Now(), Kind: kind, Host: hostID, Partition: part, Epoch: epoch,
	})
}

// mapSvc serves the published map to routers.
type mapSvc struct{ d *Director }

func (s mapSvc) Accept(t *host.Thread, peer int, qp *nic.QP, payload []byte) ([]byte, uint64, error) {
	s.d.svcHandle++
	return s.d.cur.Encode(), s.d.svcHandle, nil
}

func (s mapSvc) Resume(t *host.Thread, peer int, qp *nic.QP, payload []byte, handle uint64) ([]byte, uint64, error) {
	return s.d.cur.Encode(), handle, nil
}

func (s mapSvc) Closed(peer int, handle uint64, reason ctrlplane.CloseReason) {}

// leaseSvc anchors node liveness: nodes dial it once and hold the
// connection, so their managers' keepalives reach the director.
type leaseSvc struct{ d *Director }

func (s leaseSvc) Accept(t *host.Thread, peer int, qp *nic.QP, payload []byte) ([]byte, uint64, error) {
	s.d.svcHandle++
	return nil, s.d.svcHandle, nil
}

func (s leaseSvc) Resume(t *host.Thread, peer int, qp *nic.QP, payload []byte, handle uint64) ([]byte, uint64, error) {
	return nil, handle, nil
}

func (s leaseSvc) Closed(peer int, handle uint64, reason ctrlplane.CloseReason) {}
