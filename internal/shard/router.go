package shard

import (
	"encoding/binary"
	"sort"

	"scalerpc/internal/host"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/sim"
)

// RouterConfig shapes a client-side router.
type RouterConfig struct {
	// Opts reuses the exactly-once caller's knobs: Timeout is the
	// per-attempt deadline, MaxRetries the extra attempts (each retargeted
	// against the then-current map), RetryInterval the backoff after a
	// node answered RRetry.
	Opts rpccore.CallOpts
	// MaxRedirects caps wrong-shard/stale bounces per call before the
	// router fails it back to the application.
	MaxRedirects int
	// Coalesce piggybacks identical in-flight hot-key reads on one wire
	// request (KV endpoints only).
	Coalesce bool
	// CoalesceWindow bounds how old a leader may be before a duplicate read
	// stops joining it and goes to the wire itself: joining an attempt that
	// is already stalled (scheduler rotation, lost frame) would chain the
	// follower to the leader's retry latency. Defaults to 30µs.
	CoalesceWindow sim.Duration
	// Window is each endpoint's outstanding-call cap.
	Window int
}

// DefaultRouterConfig returns deadlines wide enough for loaded ScaleRPC
// rotations while still riding through a failover within a few attempts.
func DefaultRouterConfig() RouterConfig {
	return RouterConfig{
		Opts: rpccore.CallOpts{
			Timeout:       2 * sim.Millisecond,
			RetryInterval: 30 * sim.Microsecond,
			MaxRetries:    6,
		},
		MaxRedirects: 5,
		Window:       64,
	}
}

// rcall is one routed call.
type rcall struct {
	ep      *endpoint
	origID  uint64
	part    int
	inner   uint8
	body    []byte
	target  int
	epoch   uint32
	wireIDs []uint64
	posted  bool

	attempts  int
	redirects int
	deadline  sim.Time
	postedAt  sim.Time

	done     bool
	resp     []byte
	errResp  bool
	timedOut bool

	coKey   coKey
	leader  bool
	waiters []*rcall
}

type coKey struct {
	part int
	key  string
}

// Router multiplexes routed calls from any number of endpoints (fixed-
// partition connections for 2PC coordinators, per-key KV connections for
// load generators) over one wire connection per shard host. Every request
// is stamped with the router's map epoch; stale and wrong-shard feedback
// re-route in place, timeouts refetch the map and retarget, so a call
// started before a failover completes against the promoted primary.
type Router struct {
	cfg   RouterConfig
	h     *host.Host
	cur   *Map
	conns map[int]rpccore.Conn
	hosts []int
	sig   *sim.Signal
	stats *Stats

	// fetch pulls a fresh map from the director; nil pins the bootstrap
	// map (static deployments and unit tests).
	fetch func(t *host.Thread) *Map

	nextWire  uint64
	wires     map[uint64]*rcall
	order     []*rcall
	coal      map[coKey]*rcall
	lastFetch sim.Time
	fetched   bool

	// locked serializes wire-conn access. The scalerpc conn yields inside
	// its send and poll paths (simulated memory charges), so two client
	// threads interleaving mid-send would claim the same staging slot and
	// one frame would silently overwrite the other.
	locked bool
}

// NewRouter builds a router over per-host wire connections (each created
// with sig so arrivals wake blocked callers). m is the bootstrap map.
func NewRouter(h *host.Host, m *Map, conns map[int]rpccore.Conn, sig *sim.Signal, cfg RouterConfig, fetch func(t *host.Thread) *Map) *Router {
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	r := &Router{
		cfg:   cfg,
		h:     h,
		cur:   m.Clone(),
		conns: conns,
		sig:   sig,
		stats: SharedStats(h.Tel.Registry()),
		fetch: fetch,
		wires: make(map[uint64]*rcall),
		coal:  make(map[coKey]*rcall),
	}
	for hid := range conns {
		r.hosts = append(r.hosts, hid)
	}
	sort.Ints(r.hosts)
	return r
}

// Map returns the router's current view of the placement.
func (r *Router) Map() *Map { return r.cur }

// Host returns the client host the router runs on.
func (r *Router) Host() *host.Host { return r.h }

// Signal returns the activity signal shared with the wire connections.
func (r *Router) Signal() *sim.Signal { return r.sig }

// Epoch returns the epoch the router is stamping requests with.
func (r *Router) Epoch() uint32 { return r.cur.Epoch }

// PartConn returns an rpccore.Conn bound to one partition: handler ids
// pass through as the inner op (this is what a routed ScaleTX coordinator
// drives).
func (r *Router) PartConn(part int) rpccore.Conn {
	return &endpoint{r: r, part: part}
}

// KVConn returns an rpccore.Conn that routes per key: the first 8 payload
// bytes are the key (the loadgen convention), the rest is the put value.
// client namespaces put tokens.
func (r *Router) KVConn(client uint16) rpccore.Conn {
	return &endpoint{r: r, part: -1, client: client}
}

// acquire takes the wire lock; release drops it and wakes waiting threads.
func (r *Router) acquire(t *host.Thread) {
	for r.locked {
		t.WaitSignal(r.sig, 5*sim.Microsecond)
	}
	r.locked = true
}

func (r *Router) release() {
	r.locked = false
	r.sig.Broadcast()
}

// submit accepts one call from an endpoint. body is copied.
func (r *Router) submit(t *host.Thread, ep *endpoint, part int, inner uint8, body []byte, origID uint64) bool {
	if ep.out >= r.cfg.Window {
		return false
	}
	rc := &rcall{
		ep:     ep,
		origID: origID,
		part:   part,
		inner:  inner,
		body:   append([]byte(nil), body...),
	}
	if r.cfg.Coalesce && inner == HKVGet && ep.part < 0 {
		window := r.cfg.CoalesceWindow
		if window <= 0 {
			window = 30 * sim.Microsecond
		}
		ck := coKey{part, string(body)}
		if leader := r.coal[ck]; leader != nil && !leader.done &&
			leader.attempts == 0 && t.P.Now()-leader.postedAt <= window {
			leader.waiters = append(leader.waiters, rc)
			r.stats.Coalesced++
			ep.out++
			return true
		}
		rc.coKey, rc.leader = ck, true
		r.coal[ck] = rc
	}
	rc.postedAt = t.P.Now()
	r.stats.Routed++
	ep.out++
	r.acquire(t)
	rc.target = r.targetFor(part, inner)
	rc.epoch = r.cur.Epoch
	rc.deadline = t.P.Now() + r.cfg.Opts.Timeout
	r.order = append(r.order, rc)
	r.post(t, rc)
	r.release()
	return true
}

// post stamps and sends rc's current attempt; a full wire window leaves it
// queued for the sweep.
func (r *Router) post(t *host.Thread, rc *rcall) {
	conn := r.conns[rc.target]
	if conn == nil {
		rc.posted = false
		return
	}
	buf := make([]byte, envSize+len(rc.body))
	n := EncodeEnv(buf, rc.epoch, rc.part, rc.inner, rc.body)
	r.nextWire++
	wireID := r.nextWire
	if conn.TrySend(t, HShard, buf[:n], wireID) {
		r.wires[wireID] = rc
		rc.wireIDs = append(rc.wireIDs, wireID)
		rc.posted = true
	} else {
		rc.posted = false
	}
}

// pollAll drains every wire connection and sweeps deadlines. Called from
// every endpoint Poll (the calling thread is the client thread, so
// blocking map refetches are safe here). The wire lock covers the whole
// pass: conn polls yield mid-scan, and an interleaved poster or a second
// poller would race the conn's slot bookkeeping.
func (r *Router) pollAll(t *host.Thread) {
	r.acquire(t)
	defer r.release()
	for _, hid := range r.hosts {
		r.conns[hid].Poll(t, func(resp rpccore.Response) {
			r.onWire(t, resp)
		})
	}

	now := t.P.Now()
	for i := 0; i < len(r.order); i++ {
		rc := r.order[i]
		if rc.done {
			continue
		}
		if !rc.posted {
			r.post(t, rc)
		}
		if now < rc.deadline {
			continue
		}
		rc.attempts++
		if rc.attempts > r.cfg.Opts.MaxRetries {
			r.stats.Timeouts++
			r.fail(rc)
			continue
		}
		// The attempt expired: the primary may be gone. Refresh the map
		// and retarget against the current owner.
		r.refetch(t)
		r.retarget(t, rc)
	}
	if len(r.order) > 2*(len(r.wires)+1) {
		keep := r.order[:0]
		for _, rc := range r.order {
			if !rc.done {
				keep = append(keep, rc)
			}
		}
		r.order = keep
	}
}

// onWire handles one wire response.
func (r *Router) onWire(t *host.Thread, resp rpccore.Response) {
	rc := r.wires[resp.ReqID]
	if rc == nil || rc.done {
		return // late response for a completed or superseded attempt
	}
	if resp.Err || resp.TimedOut || len(resp.Payload) < 1 {
		// Transport-level failure: force a retry at the sweep.
		rc.deadline = t.P.Now()
		return
	}
	switch resp.Payload[0] {
	case ROK:
		r.complete(rc, resp.Payload[1:], false, false)
	case RStale:
		rc.redirects++
		if rc.redirects > r.cfg.MaxRedirects {
			r.fail(rc)
			return
		}
		r.refetch(t)
		r.retarget(t, rc)
	case RWrongShard:
		rc.redirects++
		r.stats.Redirects++
		if rc.redirects > r.cfg.MaxRedirects || len(resp.Payload) < 7 {
			r.fail(rc)
			return
		}
		// Follow the responder's hint: its epoch and the owner it names.
		rc.epoch = binary.LittleEndian.Uint32(resp.Payload[1:])
		rc.target = int(binary.LittleEndian.Uint16(resp.Payload[5:]))
		rc.deadline = t.P.Now() + r.cfg.Opts.Timeout
		r.post(t, rc)
	case RRetry:
		backoff := r.cfg.Opts.RetryInterval
		if backoff <= 0 {
			backoff = 20 * sim.Microsecond
		}
		rc.deadline = t.P.Now() + backoff
	default:
		r.fail(rc)
	}
}

// retarget re-stamps rc against the current map and re-sends.
func (r *Router) retarget(t *host.Thread, rc *rcall) {
	rc.target = r.targetFor(rc.part, rc.inner)
	rc.epoch = r.cur.Epoch
	rc.deadline = t.P.Now() + r.cfg.Opts.Timeout
	r.post(t, rc)
}

// targetFor picks a call's destination: the partition's primary, except
// reads of a degraded primary, which steer to the backup — synchronous
// replication keeps it current for every acked write, so a gray primary
// (straggling CPU, lossy link) stops sitting on the read path while it
// still absorbs writes. Writes always go to the primary: the replication
// topology is unchanged by a demotion.
func (r *Router) targetFor(part int, inner uint8) int {
	p := r.cur.Primary[part]
	if inner != HKVGet || !r.cur.IsDegraded(p) {
		return p
	}
	b := r.cur.Backup[part]
	if b == NoHost || b == p || r.cur.IsDegraded(b) || r.conns[b] == nil {
		return p
	}
	r.stats.SteeredReads++
	return b
}

// refetch pulls a fresh map from the director, rate-limited so a burst of
// expiries costs one control-plane dial.
func (r *Router) refetch(t *host.Thread) {
	if r.fetch == nil {
		return
	}
	now := t.P.Now()
	if r.fetched && now-r.lastFetch < 20*sim.Microsecond {
		return
	}
	r.lastFetch, r.fetched = now, true
	if m := r.fetch(t); m != nil && m.Epoch > r.cur.Epoch {
		r.cur = m
	}
	r.stats.MapFetches++
}

func (r *Router) fail(rc *rcall) {
	r.complete(rc, nil, true, true)
}

// complete finishes rc (and any coalesced followers) and queues delivery
// on the owning endpoints.
func (r *Router) complete(rc *rcall, payload []byte, errResp, timedOut bool) {
	rc.done = true
	rc.resp = append([]byte(nil), payload...)
	rc.errResp, rc.timedOut = errResp, timedOut
	for _, id := range rc.wireIDs {
		delete(r.wires, id)
	}
	if rc.leader && r.coal[rc.coKey] == rc {
		delete(r.coal, rc.coKey)
	}
	rc.ep.ready = append(rc.ep.ready, rc)
	for _, w := range rc.waiters {
		w.done = true
		w.resp = rc.resp
		w.errResp, w.timedOut = errResp, timedOut
		w.ep.ready = append(w.ep.ready, w)
	}
	rc.waiters = nil
}

// endpoint is one rpccore.Conn face of the router.
type endpoint struct {
	r      *Router
	part   int // fixed partition, or -1 for per-key KV routing
	client uint16
	out    int
	ready  []*rcall
}

// TrySend accepts one call. In KV mode the handler must be HKVGet/HKVPut
// and the payload starts with the 8-byte key.
func (e *endpoint) TrySend(t *host.Thread, handler uint8, payload []byte, reqID uint64) bool {
	part, body := e.part, payload
	if e.part < 0 {
		if len(payload) < 8 {
			return false
		}
		key := payload[:8]
		part = e.r.cur.PartitionOf(key)
		switch handler {
		case HKVPut:
			token := uint64(e.client)<<32 | (reqID & 0xffffffff)
			buf := make([]byte, 9+len(payload))
			body = buf[:EncodeKVPut(buf, token, key, payload[8:])]
		default:
			handler = HKVGet
			body = key
		}
	}
	return e.r.submit(t, e, part, handler, body, reqID)
}

// Poll advances the router and delivers this endpoint's completions.
func (e *endpoint) Poll(t *host.Thread, fn func(rpccore.Response)) int {
	e.r.pollAll(t)
	n := 0
	for len(e.ready) > 0 {
		rc := e.ready[0]
		e.ready = e.ready[1:]
		e.out--
		n++
		fn(rpccore.Response{ReqID: rc.origID, Payload: rc.resp, Err: rc.errResp, TimedOut: rc.timedOut})
	}
	return n
}

func (e *endpoint) Outstanding() int { return e.out }
func (e *endpoint) SlotCount() int   { return e.r.cfg.Window }

var _ rpccore.Conn = (*endpoint)(nil)

// KVClient is a blocking convenience wrapper over a KV endpoint for
// examples and harnesses: sequential Get/Put with explicit tokens.
type KVClient struct {
	r      *Router
	ep     *endpoint
	client uint16
	nextID uint64
}

// KVClient builds a blocking client in token namespace client.
func (r *Router) KVClient(client uint16) *KVClient {
	return &KVClient{r: r, ep: &endpoint{r: r, part: -1, client: client}, client: client}
}

// Token returns the token the n-th Put (1-based reqID) uses.
func Token(client uint16, reqID uint64) uint64 {
	return uint64(client)<<32 | (reqID & 0xffffffff)
}

func (c *KVClient) do(t *host.Thread, handler uint8, payload []byte) ([]byte, bool) {
	c.nextID++
	id := c.nextID
	for !c.ep.TrySend(t, handler, payload, id) {
		c.ep.Poll(t, func(rpccore.Response) {})
		t.WaitSignal(c.r.sig, 5*sim.Microsecond)
	}
	var out []byte
	ok, got := false, false
	for !got {
		c.ep.Poll(t, func(resp rpccore.Response) {
			if resp.ReqID != id || got {
				return
			}
			got = true
			ok = !resp.Err
			out = append([]byte(nil), resp.Payload...)
		})
		if !got {
			t.WaitSignal(c.r.sig, 5*sim.Microsecond)
		}
	}
	return out, ok
}

// Get reads key (8 bytes). found reports presence; ok reports the call
// completed (vs. exhausting the retry budget).
func (c *KVClient) Get(t *host.Thread, key []byte) (value []byte, found, ok bool) {
	resp, ok := c.do(t, HKVGet, key)
	if !ok || len(resp) < 1 || resp[0] == 0 {
		return nil, false, ok
	}
	return resp[1:], true, true
}

// Put writes key (8 bytes) → value, returning the token the write was
// stamped with and whether it was acked.
func (c *KVClient) Put(t *host.Thread, key, value []byte) (token uint64, ok bool) {
	payload := make([]byte, 8+len(value))
	copy(payload, key)
	copy(payload[8:], value)
	token = Token(c.client, c.nextID+1)
	_, ok = c.do(t, HKVPut, payload)
	return token, ok
}
