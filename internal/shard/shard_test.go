package shard

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/mica"
	"scalerpc/internal/sim"
	"scalerpc/internal/txn"
)

func testStoreCfg() mica.Config {
	return mica.Config{Buckets: 1 << 10, Items: 1 << 12, SlotSize: 128}
}

func key8(id uint64) []byte {
	k := make([]byte, 8)
	binary.LittleEndian.PutUint64(k, id)
	return k
}

func TestMapPlacementDeterministicAndBalanced(t *testing.T) {
	hosts := []int{0, 1, 2, 3}
	m1 := NewMap(16, hosts)
	m2 := NewMap(16, hosts)
	perHost := map[int]int{}
	for p := 0; p < 16; p++ {
		if m1.Primary[p] != m2.Primary[p] || m1.Backup[p] != m2.Backup[p] {
			t.Fatalf("placement not deterministic at partition %d", p)
		}
		if m1.Primary[p] == m1.Backup[p] {
			t.Fatalf("partition %d: primary == backup == %d", p, m1.Primary[p])
		}
		perHost[m1.Primary[p]]++
	}
	for _, h := range hosts {
		if perHost[h] == 0 {
			t.Fatalf("host %d owns no partitions: %v", h, perHost)
		}
	}
}

func TestMapCodecRoundTrip(t *testing.T) {
	m := NewMap(8, []int{2, 5, 7})
	m.Failover(5)
	enc := m.Encode()
	got, err := DecodeMap(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != m.Epoch || got.Partitions != m.Partitions {
		t.Fatalf("header mismatch: %+v vs %+v", got, m)
	}
	for p := 0; p < m.Partitions; p++ {
		if got.Primary[p] != m.Primary[p] || got.Backup[p] != m.Backup[p] {
			t.Fatalf("partition %d mismatch", p)
		}
	}
	if len(got.Down) != 1 || got.Down[0] != 5 {
		t.Fatalf("down set lost: %v", got.Down)
	}
}

func TestMapFailoverPromotesBackups(t *testing.T) {
	m := NewMap(12, []int{0, 1, 2, 3})
	dead := m.Primary[0]
	oldBackup := m.Backup[0]
	promoted := m.Failover(dead)
	if m.Epoch != 2 {
		t.Fatalf("epoch = %d, want 2", m.Epoch)
	}
	if len(promoted) == 0 {
		t.Fatal("nothing promoted")
	}
	if m.Primary[0] != oldBackup {
		t.Fatalf("partition 0 primary = %d, want promoted backup %d", m.Primary[0], oldBackup)
	}
	for p := 0; p < m.Partitions; p++ {
		if m.Primary[p] == dead {
			t.Fatalf("partition %d still on dead host", p)
		}
		if m.Backup[p] == dead {
			t.Fatalf("partition %d backup still on dead host", p)
		}
		if m.Backup[p] == m.Primary[p] {
			t.Fatalf("partition %d primary==backup", p)
		}
	}
}

// buildDeployment stands up a 4-shard-host deployment with a director and
// returns it plus a client host.
func buildDeployment(t *testing.T, partitions int) (*cluster.Cluster, *Deployment, *host.Host) {
	t.Helper()
	c := cluster.New(cluster.Default(7))
	cfg := DefaultDeployConfig(partitions, []int{0, 1, 2, 3}, 4, testStoreCfg())
	d := Deploy(c, cfg)
	return c, d, c.Hosts[5]
}

func TestKVPutGetThroughRouter(t *testing.T) {
	c, d, ch := buildDeployment(t, 8)
	defer c.Close()

	done := false
	ch.Spawn("client", func(th *host.Thread) {
		r := d.NewRouter(ch, DefaultRouterConfig())
		kv := r.KVClient(1)
		for i := uint64(0); i < 50; i++ {
			val := []byte(fmt.Sprintf("value-%03d", i))
			if _, ok := kv.Put(th, key8(i), val); !ok {
				t.Errorf("put %d failed", i)
			}
		}
		for i := uint64(0); i < 50; i++ {
			want := []byte(fmt.Sprintf("value-%03d", i))
			got, found, ok := kv.Get(th, key8(i))
			if !ok || !found || !bytes.Equal(got, want) {
				t.Errorf("get %d: found=%v ok=%v got=%q want=%q", i, found, ok, got, want)
			}
		}
		done = true
	})
	c.Env.RunUntil(200 * sim.Millisecond)
	if !done {
		t.Fatal("client did not finish")
	}
	if d.Stats.Routed == 0 {
		t.Fatal("no routed ops counted")
	}
	if d.Stats.ReplForwards == 0 {
		t.Fatal("no replication forwards counted")
	}
	// Every put must be on the backup replica too.
	for i := uint64(0); i < 50; i++ {
		k := key8(i)
		p := d.Map.PartitionOf(k)
		b := d.Map.Backup[p]
		it, err := d.Nodes[b].Store(p).Get(nil, k)
		if err != nil {
			t.Fatalf("key %d missing on backup host %d: %v", i, b, err)
		}
		if want := []byte(fmt.Sprintf("value-%03d", i)); !bytes.Equal(it.Value, want) {
			t.Fatalf("backup value mismatch for key %d", i)
		}
	}
}

func TestCrossShardTransactions(t *testing.T) {
	c, d, ch := buildDeployment(t, 8)
	defer c.Close()

	// Load 100 accounts with balance 1000 on primaries and backups.
	const accounts = 100
	acct := func(i int) []byte { return []byte(fmt.Sprintf("acct%04d", i)) }
	bal := func(v int64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, uint64(v))
		return b
	}
	for i := 0; i < accounts; i++ {
		if err := d.LoadKV(acct(i), bal(1000)); err != nil {
			t.Fatal(err)
		}
	}

	commits := 0
	ch.Spawn("coord", func(th *host.Thread) {
		r := d.NewRouter(ch, DefaultRouterConfig())
		co := d.NewCoordinator(r, 1)
		for i := 0; i < 60; i++ {
			from, to := acct(i%accounts), acct((i*7+13)%accounts)
			if bytes.Equal(from, to) {
				continue
			}
			tx := &txn.Txn{
				Writes: [][]byte{from, to},
				Apply: func(rv, wv [][]byte) [][]byte {
					a := int64(binary.LittleEndian.Uint64(wv[0]))
					b := int64(binary.LittleEndian.Uint64(wv[1]))
					return [][]byte{bal(a - 1), bal(b + 1)}
				},
			}
			for {
				err := co.Run(th, tx)
				if err == nil {
					commits++
					break
				}
				if err != txn.ErrAborted {
					t.Errorf("txn %d: %v", i, err)
					break
				}
				th.P.Sleep(10 * sim.Microsecond)
			}
		}
	})
	c.Env.RunUntil(500 * sim.Millisecond)
	if commits == 0 {
		t.Fatal("no commits")
	}

	// Conservation: total balance unchanged.
	var total int64
	for i := 0; i < accounts; i++ {
		v, err := d.ReadKV(acct(i))
		if err != nil {
			t.Fatalf("account %d: %v", i, err)
		}
		total += int64(binary.LittleEndian.Uint64(v))
	}
	if total != accounts*1000 {
		t.Fatalf("conservation broken: total=%d want %d (commits=%d)", total, accounts*1000, commits)
	}
}
