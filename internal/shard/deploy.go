package shard

import (
	"fmt"

	"scalerpc/internal/baseline/rawrpc"
	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/mica"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
	"scalerpc/internal/txn"
)

// DeployConfig shapes a sharded deployment on a cluster.
type DeployConfig struct {
	Partitions   int
	ShardHosts   []int
	DirectorHost int
	Node         NodeConfig
	// Srv is the client-facing ScaleRPC server config per shard host.
	Srv scalerpc.ServerConfig
	// Repl is the dedicated replication-plane server config. It is a
	// separate raw-write server so client-facing handlers that block on a
	// synchronous forward can never starve the plane that acks it.
	Repl rawrpc.ServerConfig
	// Director holds the liveness tunables; the zero value means the
	// defaults (ctrlplane LeaseTTL, 100 µs sweep).
	Director DirectorConfig
}

// DefaultDeployConfig mirrors the multi-server ScaleRPC setup the txn
// benchmarks use (static grouping + NTP-like sync) and a slim replication
// plane.
func DefaultDeployConfig(partitions int, shardHosts []int, directorHost int, store mica.Config) DeployConfig {
	srv := scalerpc.DefaultServerConfig()
	srv.Dynamic = false
	srv.SyncPeriod = 2 * sim.Millisecond
	repl := rawrpc.DefaultServerConfig()
	repl.Workers = 4
	repl.MaxClients = 64
	return DeployConfig{
		Partitions:   partitions,
		ShardHosts:   shardHosts,
		DirectorHost: directorHost,
		Node:         DefaultNodeConfig(store),
		Srv:          srv,
		Repl:         repl,
	}
}

// Deployment is a running sharded store: one node (ScaleRPC server +
// replication server) per shard host, a full primary→backup replication
// mesh, and a director distributing the map through the control plane.
type Deployment struct {
	Cluster  *cluster.Cluster
	Cfg      DeployConfig
	Map      *Map // bootstrap map (epoch 1); the live map is at the director
	Nodes    map[int]*Node
	Servers  map[int]*scalerpc.Server
	ReplSrvs map[int]*rawrpc.Server
	Director *Director
	Stats    *Stats
}

// Deploy builds and starts a sharded store on cl.
func Deploy(cl *cluster.Cluster, cfg DeployConfig) *Deployment {
	m := NewMap(cfg.Partitions, cfg.ShardHosts)
	ctrl := cl.CtrlPlane()
	d := &Deployment{
		Cluster:  cl,
		Cfg:      cfg,
		Map:      m,
		Nodes:    make(map[int]*Node),
		Servers:  make(map[int]*scalerpc.Server),
		ReplSrvs: make(map[int]*rawrpc.Server),
		Stats:    SharedStats(cl.Telemetry),
	}
	var scaleSrvs []*scalerpc.Server
	for _, hid := range cfg.ShardHosts {
		h := cl.Hosts[hid]
		n := NewNode(h, m, cfg.Node)
		srv := scalerpc.NewServer(h, cfg.Srv)
		rsrv := rawrpc.NewServer(h, cfg.Repl)
		n.RegisterOn(srv, rsrv)
		srv.Start()
		rsrv.Start()
		n.InstallPushService(ctrl.Manager(hid))
		n.StartLease(ctrl.Manager(hid), cfg.DirectorHost)
		d.Nodes[hid] = n
		d.Servers[hid] = srv
		d.ReplSrvs[hid] = rsrv
		scaleSrvs = append(scaleSrvs, srv)
	}
	if len(scaleSrvs) > 1 {
		scalerpc.NewSyncGroup(scaleSrvs)
	}
	// Full replication mesh: any node may be drafted as any partition's
	// backup after a failover.
	for _, a := range cfg.ShardHosts {
		for _, b := range cfg.ShardHosts {
			if a == b {
				continue
			}
			conn := d.ReplSrvs[b].Connect(cl.Hosts[a], d.Nodes[a].ReplSignal())
			d.Nodes[a].AddReplLink(b, conn)
		}
	}
	d.Director = NewDirectorWith(ctrl.Manager(cfg.DirectorHost), m, cfg.Director)
	d.Director.Start()
	return d
}

// NewRouter builds a router on a client host: one ScaleRPC connection per
// shard host plus a control-plane map fetch against the director.
func (d *Deployment) NewRouter(ch *host.Host, cfg RouterConfig) *Router {
	sig := sim.NewSignal(d.Cluster.Env)
	conns := make(map[int]rpccore.Conn, len(d.Cfg.ShardHosts))
	for _, hid := range d.Cfg.ShardHosts {
		conns[hid] = d.Servers[hid].Connect(ch, sig)
	}
	mgr := d.Cluster.Ctrl.Manager(ch.ID)
	dirHost := d.Cfg.DirectorHost
	fetch := func(t *host.Thread) *Map {
		conn, err := mgr.Dial(t, dirHost, SvcMap, nil)
		if err != nil {
			return nil
		}
		m, derr := DecodeMap(conn.Payload)
		conn.Close(t)
		if derr != nil {
			return nil
		}
		return m
	}
	return NewRouter(ch, d.Map, conns, sig, cfg, fetch)
}

// NewCoordinator threads a routed ScaleTX coordinator through r: one
// partition-bound connection per partition, with the shard map as the
// placement function — SmallBank and the objstore workloads run unmodified
// against the sharded store.
func (d *Deployment) NewCoordinator(r *Router, id uint64) *txn.Coordinator {
	conns := make([]rpccore.Conn, d.Cfg.Partitions)
	for p := range conns {
		conns[p] = r.PartConn(p)
	}
	place := func(key []byte) int { return r.Map().PartitionOf(key) }
	return txn.NewRoutedCoordinator(r.Host(), id, conns, place, r.Signal())
}

// LoadKV writes one row directly into the primary and backup stores
// (deploy-time bulk loading, bypassing the wire).
func (d *Deployment) LoadKV(key, value []byte) error {
	p := d.Map.PartitionOf(key)
	prim := d.Nodes[d.Map.Primary[p]]
	if prim == nil {
		return fmt.Errorf("shard: partition %d primary host %d has no node", p, d.Map.Primary[p])
	}
	if _, err := prim.Store(p).Put(nil, key, value); err != nil {
		return err
	}
	if b := d.Map.Backup[p]; b != NoHost {
		if _, err := d.Nodes[b].Store(p).Put(nil, key, value); err != nil {
			return err
		}
	}
	return nil
}

// LiveMap returns the director's current (post-failover) map.
func (d *Deployment) LiveMap() *Map {
	if d.Director != nil {
		return d.Director.Map()
	}
	return d.Map
}

// ReadKV reads a row directly from its current primary store (audits and
// balance sweeps, bypassing the wire).
func (d *Deployment) ReadKV(key []byte) ([]byte, error) {
	m := d.LiveMap()
	p := m.PartitionOf(key)
	it, err := d.Nodes[m.Primary[p]].Store(p).Get(nil, key)
	if err != nil {
		return nil, err
	}
	return it.Value, nil
}
