package shard

import (
	"encoding/binary"

	"scalerpc/internal/ctrlplane"
	"scalerpc/internal/host"
	"scalerpc/internal/mica"
	"scalerpc/internal/nic"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/sim"
	"scalerpc/internal/txn"
)

// handlerTab captures a participant's handlers without a real server: it
// implements rpccore.Server so txn.Participant.RegisterHandlers lands in a
// plain dispatch table the node indexes per partition.
type handlerTab map[uint8]rpccore.Handler

func (h handlerTab) Register(id uint8, fn rpccore.Handler) { h[id] = fn }
func (h handlerTab) Start()                                {}

// NodeConfig shapes one shard server.
type NodeConfig struct {
	// StoreCfg sizes each partition's MICA store.
	StoreCfg mica.Config
	// ReplTimeout bounds one synchronous primary→backup forward; past it
	// the primary answers the client RRetry (puts) or proceeds without the
	// backup (2PC commits, which are already decided).
	ReplTimeout sim.Duration
	// ReplOpts are the exactly-once caller knobs on the replication link.
	ReplOpts rpccore.CallOpts
}

// DefaultNodeConfig returns replication timing that resolves well under
// the default fault schedules: a forward retries twice inside a 200 µs
// envelope.
func DefaultNodeConfig(store mica.Config) NodeConfig {
	return NodeConfig{
		StoreCfg:    store,
		ReplTimeout: 200 * sim.Microsecond,
		ReplOpts: rpccore.CallOpts{
			Timeout:       60 * sim.Microsecond,
			RetryInterval: 25 * sim.Microsecond,
			MaxRetries:    2,
		},
	}
}

type txnTok struct {
	id   uint64
	part int
}

// Node is one shard server: MICA partitions with their ScaleTX
// participants (primary or backup role per the installed map), the routed
// request handler for its ScaleRPC server, and the replication handler for
// its dedicated raw-write replication server. Primaries forward every
// write synchronously to the partition's backup before applying, so the
// backup always holds a token before the client can see its ack — the
// property that keeps the exactly-once invariants across a failover.
type Node struct {
	HostID int
	Host   *host.Host

	cfg   NodeConfig
	stats *Stats
	cur   *Map

	parts map[int]*txn.Participant
	tabs  map[int]handlerTab

	// appliedKV caches replies by put token; appliedTxn records applied
	// 2PC commits by (txnID, partition). Both are fed by the client path
	// on the primary and the replication path on the backup, which is
	// what lets a promoted backup dedup a retried request it only ever
	// saw as a replica.
	appliedKV  map[uint64][]byte
	appliedTxn map[txnTok]bool

	links   map[int]*replLink
	replSig *sim.Signal

	// ApplyHook observes fresh write applies for invariant accounting:
	// kind is "exec" on the primary client path, "repl" on the backup
	// replication path.
	ApplyHook func(token uint64, kind string)

	pushHandle uint64
}

// NewNode builds a node serving its slice of m on host h.
func NewNode(h *host.Host, m *Map, cfg NodeConfig) *Node {
	n := &Node{
		HostID:     h.ID,
		Host:       h,
		cfg:        cfg,
		stats:      SharedStats(h.Tel.Registry()),
		cur:        m.Clone(),
		parts:      make(map[int]*txn.Participant),
		tabs:       make(map[int]handlerTab),
		appliedKV:  make(map[uint64][]byte),
		appliedTxn: make(map[txnTok]bool),
		links:      make(map[int]*replLink),
		replSig:    sim.NewSignal(h.Env),
	}
	prim, back := n.cur.HostPartitions(n.HostID)
	for _, p := range append(append([]int(nil), prim...), back...) {
		n.ensurePart(p)
	}
	return n
}

// Epoch returns the installed map epoch.
func (n *Node) Epoch() uint32 { return n.cur.Epoch }

// Map returns the installed map (read-only).
func (n *Node) Map() *Map { return n.cur }

// Store returns the partition's store, creating it if the node was just
// assigned the partition (deploy-time loading and replica audits).
func (n *Node) Store(part int) *mica.Store {
	n.ensurePart(part)
	return n.parts[part].Store
}

func (n *Node) ensurePart(p int) {
	if n.parts[p] != nil {
		return
	}
	part := txn.NewParticipant(n.Host, n.cfg.StoreCfg)
	tab := handlerTab{}
	part.RegisterHandlers(tab)
	n.parts[p] = part
	n.tabs[p] = tab
}

// applyMap installs a newer map version, creating stores for any
// partitions the node just picked up (they start empty: a drafted backup
// only catches writes from its promotion onward).
func (n *Node) applyMap(m *Map) {
	if m.Epoch <= n.cur.Epoch {
		return
	}
	n.cur = m.Clone()
	prim, back := n.cur.HostPartitions(n.HostID)
	for _, p := range append(append([]int(nil), prim...), back...) {
		n.ensurePart(p)
	}
	n.stats.MapPushes++
}

// AddReplLink wires the outbound replication connection toward peer. conn
// must terminate at peer's replication server; it is wrapped in the
// exactly-once caller with the node's ReplOpts.
func (n *Node) AddReplLink(peer int, conn rpccore.Conn) {
	n.links[peer] = &replLink{
		caller:  rpccore.NewCaller(conn, n.cfg.ReplOpts, rpccore.SharedRel(n.Host.Tel.Registry())),
		sig:     n.replSig,
		results: make(map[uint64]*replResult),
	}
}

// ReplSignal is the activity signal replication connections must be
// created with, so responses wake blocked forwards.
func (n *Node) ReplSignal() *sim.Signal { return n.replSig }

// RegisterOn installs the node's planes: the routed envelope handler on
// the client-facing server and the replication handler on the replication
// server.
func (n *Node) RegisterOn(client, repl rpccore.Server) {
	client.Register(HShard, n.handleShard)
	repl.Register(HRepl, n.handleRepl)
}

// InstallPushService registers the "shard.node" control-plane service the
// director pushes new map versions through.
func (n *Node) InstallPushService(mgr *ctrlplane.Manager) {
	mgr.RegisterService(SvcNodePush, nodePushSvc{n})
}

// StartLease dials the director's lease service once and holds the
// connection open, so the node's control-plane manager keepalives carry
// its liveness to the director from then on.
func (n *Node) StartLease(mgr *ctrlplane.Manager, directorHost int) {
	n.Host.Spawn("shard-lease", func(t *host.Thread) {
		for {
			if _, err := mgr.Dial(t, directorHost, SvcLease, nil); err == nil {
				return // hold the connection forever; never Close
			}
			t.P.Sleep(50 * sim.Microsecond)
		}
	})
}

// handleShard serves one routed request on the client-facing plane.
func (n *Node) handleShard(t *host.Thread, clientID uint16, req, out []byte) int {
	epoch, part, inner, body, err := DecodeEnv(req)
	if err != nil || part < 0 || part >= n.cur.Partitions {
		out[0] = RRetry
		return 1
	}
	if epoch != n.cur.Epoch {
		n.stats.EpochMismatches++
		out[0] = RStale
		binary.LittleEndian.PutUint32(out[1:], n.cur.Epoch)
		return 5
	}
	if n.cur.Primary[part] != n.HostID {
		// A backup answers reads for a partition whose primary the map
		// marks degraded (the router's steering target); everything else
		// bounces to the owner.
		steered := inner == HKVGet && n.cur.Backup[part] == n.HostID &&
			n.cur.IsDegraded(n.cur.Primary[part])
		if !steered {
			out[0] = RWrongShard
			binary.LittleEndian.PutUint32(out[1:], n.cur.Epoch)
			binary.LittleEndian.PutUint16(out[5:], uint16(n.cur.Primary[part]))
			return 7
		}
	}

	switch inner {
	case HKVGet:
		it, err := n.parts[part].Store.Get(t, body)
		out[0] = ROK
		if err != nil {
			out[1] = 0
			return 2
		}
		out[1] = 1
		return 2 + copy(out[2:], it.Value)

	case HKVPut:
		token, key, value, err := DecodeKVPut(body)
		if err != nil {
			out[0] = RRetry
			return 1
		}
		if rep, ok := n.appliedKV[token]; ok {
			n.stats.DedupHits++
			return copy(out, rep)
		}
		kvs := []txn.KV{{Key: key, Value: value}}
		if !n.replicate(t, part, ReplKV, token, kvs) {
			out[0] = RRetry
			return 1
		}
		if _, err := n.parts[part].Store.Put(t, key, value); err != nil {
			out[0] = RRetry
			return 1
		}
		if n.ApplyHook != nil {
			n.ApplyHook(token, "exec")
		}
		n.appliedKV[token] = []byte{ROK}
		out[0] = ROK
		return 1

	case txn.HCommit:
		txnID, kvs, err := txn.DecodeWriteReq(body)
		if err != nil {
			out[0] = RRetry
			return 1
		}
		key := txnTok{txnID, part}
		if n.appliedTxn[key] {
			n.stats.DedupHits++
			out[0], out[1] = ROK, 1
			return 2
		}
		// The commit is already decided (logged everywhere), so a backup
		// that cannot be reached must not block it: forward best-effort
		// and apply regardless.
		n.replicate(t, part, ReplTxn, txnID, kvs)
		m := n.tabs[part][txn.HCommit](t, clientID, body, out[1:])
		n.appliedTxn[key] = true
		out[0] = ROK
		return 1 + m

	default:
		fn := n.tabs[part][inner]
		if fn == nil {
			out[0] = RRetry
			return 1
		}
		m := fn(t, clientID, body, out[1:])
		out[0] = ROK
		return 1 + m
	}
}

// replicate synchronously forwards one write set to the partition's
// backup. True means the backup holds it (or there is no backup to hold
// it); false means the forward could not be confirmed in time.
func (n *Node) replicate(t *host.Thread, part int, kind uint8, token uint64, kvs []txn.KV) bool {
	b := n.cur.Backup[part]
	if b == NoHost {
		return true
	}
	link := n.links[b]
	if link == nil {
		return true // deployed without a replication mesh
	}
	size := 7 + 16
	for _, kv := range kvs {
		size += 3 + len(kv.Key) + len(kv.Value)
	}
	buf := make([]byte, size)
	m := EncodeRepl(buf, n.cur.Epoch, part, kind, token, kvs)
	start := t.P.Now()
	n.stats.ReplForwards++
	status, ok := link.call(t, buf[:m], n.cfg.ReplTimeout)
	if !ok || status != ROK {
		n.stats.ReplFailures++
		return false
	}
	n.stats.ObserveReplLag(uint64(t.P.Now() - start))
	return true
}

// handleRepl applies one forwarded write set on the backup role's plane.
func (n *Node) handleRepl(t *host.Thread, clientID uint16, req, out []byte) int {
	epoch, part, kind, token, kvs, err := DecodeRepl(req)
	if err != nil {
		out[0] = RRetry
		return 1
	}
	// Fence stale primaries: a forward stamped below our epoch comes from
	// a node that lost its partition in a failover we already installed.
	if epoch < n.cur.Epoch {
		out[0] = RStale
		return 1
	}
	n.ensurePart(part)
	switch kind {
	case ReplTxn:
		key := txnTok{token, part}
		if n.appliedTxn[key] {
			out[0] = ROK
			return 1
		}
		for _, kv := range kvs {
			n.parts[part].Store.Put(t, kv.Key, kv.Value)
		}
		n.appliedTxn[key] = true
	default: // ReplKV
		if _, ok := n.appliedKV[token]; ok {
			out[0] = ROK
			return 1
		}
		for _, kv := range kvs {
			n.parts[part].Store.Put(t, kv.Key, kv.Value)
		}
		if n.ApplyHook != nil {
			n.ApplyHook(token, "repl")
		}
		n.appliedKV[token] = []byte{ROK}
	}
	out[0] = ROK
	return 1
}

// replResult is one forward's completion state.
type replResult struct {
	done   bool
	err    bool
	status uint8
}

// replLink is one node→peer replication connection: an exactly-once
// caller over the raw-write plane, shared by every handler thread on the
// node (each call matches its own request id out of the demux table).
type replLink struct {
	caller  *rpccore.Caller
	sig     *sim.Signal
	nextReq uint64
	results map[uint64]*replResult
}

// call sends one replication record and blocks until its ack, a caller
// timeout, or the outer deadline.
func (l *replLink) call(t *host.Thread, payload []byte, timeout sim.Duration) (uint8, bool) {
	l.nextReq++
	reqID := l.nextReq
	res := &replResult{}
	l.results[reqID] = res
	deadline := t.P.Now() + timeout
	posted := false
	for {
		if !posted {
			posted = l.caller.TrySend(t, HRepl, payload, reqID)
		}
		l.poll(t)
		if res.done {
			delete(l.results, reqID)
			if res.err {
				return 0, false
			}
			return res.status, true
		}
		if t.P.Now() >= deadline {
			delete(l.results, reqID)
			return 0, false
		}
		wait := deadline - t.P.Now()
		if wait > 5*sim.Microsecond {
			wait = 5 * sim.Microsecond
		}
		t.WaitSignal(l.sig, wait)
	}
}

func (l *replLink) poll(t *host.Thread) {
	l.caller.Poll(t, func(r rpccore.Response) {
		res := l.results[r.ReqID]
		if res == nil || res.done {
			return
		}
		res.done = true
		if r.Err || r.TimedOut || len(r.Payload) < 1 {
			res.err = true
			return
		}
		res.status = r.Payload[0]
	})
}

// nodePushSvc receives map versions the director pushes.
type nodePushSvc struct{ n *Node }

func (s nodePushSvc) Accept(t *host.Thread, peer int, qp *nic.QP, payload []byte) ([]byte, uint64, error) {
	if m, err := DecodeMap(payload); err == nil {
		s.n.applyMap(m)
	}
	s.n.pushHandle++
	return nil, s.n.pushHandle, nil
}

func (s nodePushSvc) Resume(t *host.Thread, peer int, qp *nic.QP, payload []byte, handle uint64) ([]byte, uint64, error) {
	if m, err := DecodeMap(payload); err == nil {
		s.n.applyMap(m)
	}
	return nil, handle, nil
}

func (s nodePushSvc) Closed(peer int, handle uint64, reason ctrlplane.CloseReason) {}
