package shard

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/faults"
	"scalerpc/internal/host"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/sim"
)

// runFailoverScenario stands up a 4-host deployment, crashes partition 0's
// primary mid-run while a client keeps writing and reading, and returns
// the deployment's event log plus the client's last acked value per key.
func runFailoverScenario(t *testing.T, seed uint64) (epochAfter uint32, events []Event, lastAcked map[uint64][]byte, failures int) {
	t.Helper()
	c := cluster.New(cluster.Default(7))
	defer c.Close()

	cfg := DefaultDeployConfig(8, []int{0, 1, 2, 3}, 4, testStoreCfg())
	d := Deploy(c, cfg)
	dead := d.Map.Primary[0]
	c.InstallFaults(&faults.Scenario{
		Name: "shard-failover", Seed: seed,
		Crashes: []faults.Crash{{Node: dead, At: int64(3 * sim.Millisecond)}},
	})

	rcfg := DefaultRouterConfig()
	rcfg.Opts.Timeout = 500 * sim.Microsecond
	rcfg.Opts.MaxRetries = 20

	const keys = 24
	lastAcked = make(map[uint64][]byte)
	finished := false
	ch := c.Hosts[5]
	ch.Spawn("client", func(th *host.Thread) {
		r := d.NewRouter(ch, rcfg)
		kv := r.KVClient(1)
		seq := 0
		for th.P.Now() < 8*sim.Millisecond {
			k := uint64(seq % keys)
			val := []byte(fmt.Sprintf("v-%d-%06d", k, seq))
			if _, ok := kv.Put(th, key8(k), val); ok {
				lastAcked[k] = val
			} else {
				failures++
			}
			seq++
		}
		// Post-failover read check through the router.
		for k := uint64(0); k < keys; k++ {
			want, okWant := lastAcked[k]
			got, found, ok := kv.Get(th, key8(k))
			if !ok {
				t.Errorf("key %d: read failed after failover", k)
				continue
			}
			if okWant && (!found || !bytes.Equal(got, want)) {
				t.Errorf("key %d: got %q found=%v, want acked %q", k, got, found, want)
			}
		}
		finished = true
	})
	c.Env.RunUntil(20 * sim.Millisecond)
	if !finished {
		t.Fatal("client never finished (liveness violated)")
	}
	return d.LiveMap().Epoch, append([]Event(nil), d.Director.Events...), lastAcked, failures
}

func TestFailoverServesThroughPromotion(t *testing.T) {
	epoch, events, lastAcked, failures := runFailoverScenario(t, 7)
	if epoch != 2 {
		t.Fatalf("live epoch = %d, want 2 (one failover)", epoch)
	}
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	if kinds["failover"] != 1 || kinds["promote"] == 0 || kinds["publish"] != 1 {
		t.Fatalf("unexpected event mix: %v", kinds)
	}
	if kinds["push"] == 0 {
		t.Fatalf("no map pushes before publish: %v", kinds)
	}
	// Push-before-publish ordering.
	seenPublish := false
	for _, e := range events {
		if e.Kind == "publish" {
			seenPublish = true
		}
		if e.Kind == "push" && seenPublish {
			t.Fatal("push after publish")
		}
	}
	if len(lastAcked) == 0 {
		t.Fatal("no acked writes")
	}
	if failures == 0 {
		t.Log("note: no client-visible failures (crash window fully absorbed by retries)")
	}
}

// TestFailoverEventLogDeterministic mirrors the ctrlplane churn test: the
// same seed must produce a byte-identical director decision log.
func TestFailoverEventLogDeterministic(t *testing.T) {
	_, ev1, _, _ := runFailoverScenario(t, 21)
	_, ev2, _, _ := runFailoverScenario(t, 21)
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("event logs differ across identical seeded runs:\n%v\nvs\n%v", ev1, ev2)
	}
}

// TestStaleRouterRedirects pins a router to the pre-failover map (no fetch
// function) and checks that epoch-stale requests to a moved partition are
// redirected/refused in bounded attempts rather than looping.
func TestStaleRouterRedirects(t *testing.T) {
	c := cluster.New(cluster.Default(7))
	defer c.Close()

	cfg := DefaultDeployConfig(8, []int{0, 1, 2, 3}, 4, testStoreCfg())
	d := Deploy(c, cfg)

	finished := false
	ch := c.Hosts[5]
	ch.Spawn("client", func(th *host.Thread) {
		r := d.NewRouter(ch, DefaultRouterConfig())
		kv := r.KVClient(1)
		// Seed one key, then force a failover by feeding the director an
		// artificial expiry: simplest deterministic path is to drive the
		// map forward directly and push it to the nodes, leaving this
		// router stale.
		if _, ok := kv.Put(th, key8(1), []byte("before")); !ok {
			t.Error("seed put failed")
		}

		next := d.LiveMap().Clone()
		next.Epoch++
		// Rotate every partition's primary/backup among live hosts so the
		// stale router's target is wrong for at least some partitions.
		for p := 0; p < next.Partitions; p++ {
			next.Primary[p], next.Backup[p] = next.Backup[p], next.Primary[p]
		}
		for _, n := range d.Nodes {
			n.applyMap(next)
		}
		d.Director.cur = next

		// The router still stamps epoch 1: nodes answer RStale, the router
		// refetches from the director and succeeds against the new owner.
		got, found, ok := kv.Get(th, key8(1))
		if !ok || !found || !bytes.Equal(got, []byte("before")) {
			t.Errorf("stale-epoch read: ok=%v found=%v got=%q", ok, found, got)
		}
		if r.Epoch() != next.Epoch {
			t.Errorf("router epoch = %d, want refreshed %d", r.Epoch(), next.Epoch)
		}
		finished = true
	})
	c.Env.RunUntil(50 * sim.Millisecond)
	if !finished {
		t.Fatal("client never finished")
	}
	if d.Stats.EpochMismatches == 0 {
		t.Fatal("no epoch mismatches counted at nodes")
	}
}

// TestRedirectLoopCapped drives a router with no fetch function and a map
// whose primaries are all wrong: every node keeps naming another owner, and
// the call must fail back in bounded redirects instead of looping forever.
func TestRedirectLoopCapped(t *testing.T) {
	c := cluster.New(cluster.Default(7))
	defer c.Close()

	cfg := DefaultDeployConfig(4, []int{0, 1}, 4, testStoreCfg())
	d := Deploy(c, cfg)

	// A wrong map that disagrees with the nodes: swap primary/backup but
	// keep the node-side maps at the real assignment, and give the router
	// no way to refresh.
	wrong := d.Map.Clone()
	for p := 0; p < wrong.Partitions; p++ {
		if wrong.Backup[p] != NoHost {
			wrong.Primary[p], wrong.Backup[p] = wrong.Backup[p], wrong.Primary[p]
		}
	}
	// Nodes move ahead to epoch 2 with the same (correct) placement, so a
	// request stamped with the wrong map's epoch 1 gets RStale, and the
	// router can never learn better (fetch == nil).
	ahead := d.Map.Clone()
	ahead.Epoch = 2
	for _, n := range d.Nodes {
		n.applyMap(ahead)
	}

	finished := false
	ch := c.Hosts[5]
	sig := sim.NewSignal(c.Env)
	conns := make(map[int]rpccore.Conn)
	for _, hid := range cfg.ShardHosts {
		conns[hid] = d.Servers[hid].Connect(ch, sig)
	}
	ch.Spawn("client", func(th *host.Thread) {
		rcfg := DefaultRouterConfig()
		rcfg.MaxRedirects = 3
		r := NewRouter(ch, wrong, conns, sig, rcfg, nil)
		kv := r.KVClient(9)
		_, found, ok := kv.Get(th, key8(5))
		if ok && found {
			t.Error("read unexpectedly succeeded against a permanently stale map")
		}
		finished = true
	})
	c.Env.RunUntil(100 * sim.Millisecond)
	if !finished {
		t.Fatal("client never finished — redirect loop not capped")
	}
}
