package shard

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/sim"
)

// TestMapDegradedRoundTrip checks the degraded set through the map's
// wire format and mutation helpers.
func TestMapDegradedRoundTrip(t *testing.T) {
	m := NewMap(8, []int{0, 1, 2, 3})
	e0 := m.Epoch
	if !m.SetDegraded(2, true) || m.Epoch != e0+1 || !m.IsDegraded(2) {
		t.Fatalf("SetDegraded(2, true): epoch=%d degraded=%v", m.Epoch, m.Degraded)
	}
	if m.SetDegraded(2, true) {
		t.Fatal("re-degrading the same host must be a no-op")
	}
	dec, err := DecodeMap(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec.Degraded, m.Degraded) || dec.Epoch != m.Epoch {
		t.Fatalf("round trip lost degraded set: %v vs %v", dec.Degraded, m.Degraded)
	}
	if !m.SetDegraded(2, false) || m.IsDegraded(2) || m.Epoch != e0+2 {
		t.Fatalf("SetDegraded(2, false): epoch=%d degraded=%v", m.Epoch, m.Degraded)
	}
	// Down supersedes degraded.
	m.SetDegraded(1, true)
	m.Failover(1)
	if m.IsDegraded(1) {
		t.Fatal("failed host must leave the degraded set")
	}
}

// TestDegradedReadSteering degrades one primary through the director's
// real push-before-publish path and checks that reads of its partitions
// steer to the backup (which synchronous replication kept current),
// writes keep landing on the primary, and a restore returns reads to it.
func TestDegradedReadSteering(t *testing.T) {
	c := cluster.New(cluster.Default(7))
	defer c.Close()

	cfg := DefaultDeployConfig(8, []int{0, 1, 2, 3}, 4, testStoreCfg())
	d := Deploy(c, cfg)
	gray := d.Map.Primary[0]

	// Director-host thread drives the degrade window: the ladder hook
	// queues the same transitions in production, but driving setDegraded
	// directly keeps this test independent of detector timing.
	dh := c.Hosts[cfg.DirectorHost]
	dh.Spawn("gray-driver", func(th *host.Thread) {
		th.P.Sleep(2 * sim.Millisecond)
		d.Director.setDegraded(th, gray, true)
		th.P.Sleep(4 * sim.Millisecond)
		d.Director.setDegraded(th, gray, false)
	})

	const keys = 16
	finished := false
	ch := c.Hosts[5]
	ch.Spawn("client", func(th *host.Thread) {
		r := d.NewRouter(ch, DefaultRouterConfig())
		kv := r.KVClient(1)
		// Seed every key while healthy, so backups hold replicated values.
		for k := uint64(0); k < keys; k++ {
			if _, ok := kv.Put(th, key8(k), []byte(fmt.Sprintf("seed-%d", k))); !ok {
				t.Errorf("seed put %d failed", k)
			}
		}

		// Inside the degrade window: reads of the gray primary's
		// partitions must still answer correctly (from the backup), and a
		// fresh write through the gray primary must be visible to a
		// steered read immediately (replicate-before-ack).
		for th.P.Now() < 2500*sim.Microsecond {
			th.P.Sleep(100 * sim.Microsecond)
		}
		for k := uint64(0); k < keys; k++ {
			got, found, ok := kv.Get(th, key8(k))
			if !ok || !found || !bytes.Equal(got, []byte(fmt.Sprintf("seed-%d", k))) {
				t.Errorf("degraded read %d: ok=%v found=%v got=%q", k, ok, found, got)
			}
		}
		if !r.Map().IsDegraded(gray) {
			t.Errorf("router never learned the degraded map (epoch %d)", r.Epoch())
		}
		if _, ok := kv.Put(th, key8(3), []byte("during-gray")); !ok {
			t.Error("write to degraded primary failed")
		}
		if got, found, ok := kv.Get(th, key8(3)); !ok || !found || !bytes.Equal(got, []byte("during-gray")) {
			t.Errorf("read-your-write across steering: ok=%v found=%v got=%q", ok, found, got)
		}

		// After restore: reads return to the primary and still answer.
		for th.P.Now() < 6500*sim.Microsecond {
			th.P.Sleep(100 * sim.Microsecond)
		}
		for k := uint64(0); k < keys; k++ {
			if _, _, ok := kv.Get(th, key8(k)); !ok {
				t.Errorf("post-restore read %d failed", k)
			}
		}
		if r.Map().IsDegraded(gray) {
			t.Errorf("router still sees %d degraded after restore", gray)
		}
		finished = true
	})
	c.Env.RunUntil(30 * sim.Millisecond)
	if !finished {
		t.Fatal("client never finished")
	}

	if d.Stats.Degrades != 1 || d.Stats.Restores != 1 {
		t.Fatalf("degrades=%d restores=%d, want 1/1", d.Stats.Degrades, d.Stats.Restores)
	}
	if d.Stats.SteeredReads == 0 {
		t.Fatal("no reads were steered to the backup")
	}
	kinds := map[string]int{}
	for _, e := range d.Director.Events {
		kinds[e.Kind]++
	}
	if kinds["degrade"] != 1 || kinds["restore"] != 1 || kinds["push"] == 0 {
		t.Fatalf("unexpected director event mix: %v", kinds)
	}
	if kinds["failover"] != 0 {
		t.Fatalf("degradation must not trigger failover: %v", kinds)
	}
}
