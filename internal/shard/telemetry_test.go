package shard

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/faults"
	"scalerpc/internal/host"
	"scalerpc/internal/sim"
)

// TestShardTelemetryDeterministic extends the repo's determinism invariant
// to the shard scope: two identical seeded failover runs must produce
// byte-identical telemetry JSON, and the dump must carry every shard.*
// counter the subsystem promises (mirroring the rpc.* assertions in
// internal/bench).
func TestShardTelemetryDeterministic(t *testing.T) {
	run := func() []byte {
		ccfg := cluster.Default(7)
		ccfg.Seed = 9
		c := cluster.New(ccfg)
		defer c.Close()
		cfg := DefaultDeployConfig(8, []int{0, 1, 2, 3}, 4, testStoreCfg())
		d := Deploy(c, cfg)
		dead := d.Map.Primary[0]
		c.InstallFaults(&faults.Scenario{
			Name: "shard-telemetry", Seed: 9,
			Crashes: []faults.Crash{{Node: dead, At: int64(2 * sim.Millisecond)}},
		})

		rcfg := DefaultRouterConfig()
		rcfg.Opts.Timeout = 500 * sim.Microsecond
		rcfg.Opts.MaxRetries = 20
		ch := c.Hosts[5]
		ch.Spawn("client", func(th *host.Thread) {
			r := d.NewRouter(ch, rcfg)
			kv := r.KVClient(1)
			for s := 0; th.P.Now() < 6*sim.Millisecond; s++ {
				k := key8(uint64(s % 16))
				kv.Put(th, k, []byte(fmt.Sprintf("v%06d", s)))
				kv.Get(th, k)
				th.P.Sleep(60 * sim.Microsecond)
			}
		})
		c.Env.RunUntil(10 * sim.Millisecond)
		return c.Telemetry.JSON()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical seeded shard runs produced different telemetry JSON")
	}
	dump := string(a)
	for _, name := range []string{
		"shard.routed", "shard.redirects", "shard.epoch_mismatches",
		"shard.map_fetches", "shard.map_pushes", "shard.failovers",
		"shard.repl_forwards", "shard.repl_failures", "shard.dedup_hits",
		"shard.coalesced", "shard.timeouts", "shard.repl_lag_ns",
	} {
		if !strings.Contains(dump, name) {
			t.Fatalf("dump missing %q", name)
		}
	}
}
