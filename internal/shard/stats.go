package shard

import "scalerpc/internal/telemetry"

// Stats counts shard dataplane events. One block is shared per telemetry
// registry (à la rpccore.SharedRel) so routers, nodes and the director on
// one cluster aggregate into a single deterministic dump line each.
type Stats struct {
	// Routed counts requests a router stamped and sent toward a primary.
	Routed uint64
	// Redirects counts wrong-shard responses that bounced a request to the
	// owner the node named.
	Redirects uint64
	// EpochMismatches counts requests a node refused because the stamped
	// epoch differed from its installed map.
	EpochMismatches uint64
	// MapFetches counts shard-map fetches from the director (bootstrap and
	// refresh).
	MapFetches uint64
	// MapPushes counts map installs accepted by nodes from the director.
	MapPushes uint64
	// Failovers counts primary promotions driven by lease expiry.
	Failovers uint64
	// Degrades counts hosts the director marked degraded on a detector
	// demotion; Restores counts the marks cleared on recovery.
	Degrades uint64
	Restores uint64
	// SteeredReads counts reads the router sent to a backup because the
	// partition's primary was degraded.
	SteeredReads uint64
	// ReplForwards counts synchronous primary→backup forwards.
	ReplForwards uint64
	// ReplFailures counts forwards that exhausted the replication caller's
	// deadline (the primary answers the client with a retryable status).
	ReplFailures uint64
	// DedupHits counts requests answered from a node's applied-token table
	// instead of re-executing (exactly-once across retries and failover).
	DedupHits uint64
	// Coalesced counts hot-key reads that piggybacked on an identical
	// in-flight read instead of going to the wire.
	Coalesced uint64
	// Timeouts counts routed calls the router failed back to the
	// application after exhausting its attempt budget.
	Timeouts uint64

	replLag *telemetry.Histogram
}

// ObserveReplLag records one primary→backup forward round trip.
func (s *Stats) ObserveReplLag(d uint64) {
	if s.replLag != nil {
		s.replLag.Observe(d)
	}
}

const auxKey = "shard.stats"

// SharedStats returns the registry's shared shard Stats block, creating
// and registering it under the "shard" scope on first use. A nil registry
// returns a detached block.
func SharedStats(reg *telemetry.Registry) *Stats {
	if reg == nil {
		return &Stats{}
	}
	return reg.Aux(auxKey, func() interface{} {
		s := &Stats{}
		sc := reg.Scope("shard")
		sc.CounterVar("routed", &s.Routed)
		sc.CounterVar("redirects", &s.Redirects)
		sc.CounterVar("epoch_mismatches", &s.EpochMismatches)
		sc.CounterVar("map_fetches", &s.MapFetches)
		sc.CounterVar("map_pushes", &s.MapPushes)
		sc.CounterVar("failovers", &s.Failovers)
		sc.CounterVar("degrades", &s.Degrades)
		sc.CounterVar("restores", &s.Restores)
		sc.CounterVar("steered_reads", &s.SteeredReads)
		sc.CounterVar("repl_forwards", &s.ReplForwards)
		sc.CounterVar("repl_failures", &s.ReplFailures)
		sc.CounterVar("dedup_hits", &s.DedupHits)
		sc.CounterVar("coalesced", &s.Coalesced)
		sc.CounterVar("timeouts", &s.Timeouts)
		s.replLag = sc.Histogram("repl_lag_ns")
		return s
	}).(*Stats)
}
