// Package shard turns the repository's single-node pieces — the MICA
// store, the ScaleTX 2PC participants and the exactly-once RPC machinery —
// into a distributed store over ScaleRPC: a versioned shard map places
// MICA partitions on server hosts, a client-side router stamps requests
// with the map epoch and follows redirects, primaries replicate writes
// synchronously to a backup, and a director drives lease-expiry failover
// through the connection control plane.
package shard

import (
	"encoding/binary"
	"fmt"
	"sort"

	"scalerpc/internal/txn"
)

// NoHost marks an unassigned replica slot in a Map.
const NoHost = -1

// Map is one version of the partition placement. Partition count and the
// host universe are fixed for the deployment's lifetime; only the replica
// assignment (and the epoch) change, via failover.
type Map struct {
	Epoch      uint32
	Partitions int
	Hosts      []int // candidate server hosts (sorted, fixed universe)
	Primary    []int // per-partition primary host
	Backup     []int // per-partition backup host, NoHost if none
	Down       []int // hosts declared failed (sorted)

	// Degraded lists hosts the failure detector has demoted but not
	// evicted (sorted): they still own their partitions and serve writes —
	// a gray node is usually still doing useful work — but routers steer
	// reads of their partitions to the backup, which synchronous
	// replication keeps current for every acked write.
	Degraded []int
}

// NewMap places partitions across hosts by rendezvous hashing: each
// partition ranks every host by a mixed hash and takes the top two as
// primary and backup. Epoch starts at 1.
func NewMap(partitions int, hosts []int) *Map {
	if partitions <= 0 || len(hosts) == 0 {
		panic("shard: empty map")
	}
	m := &Map{
		Epoch:      1,
		Partitions: partitions,
		Hosts:      append([]int(nil), hosts...),
		Primary:    make([]int, partitions),
		Backup:     make([]int, partitions),
	}
	sort.Ints(m.Hosts)
	for p := 0; p < partitions; p++ {
		ranked := m.rank(p, nil)
		m.Primary[p] = ranked[0]
		m.Backup[p] = NoHost
		if len(ranked) > 1 {
			m.Backup[p] = ranked[1]
		}
	}
	return m
}

// rank orders the live hosts for one partition by rendezvous score,
// highest first. exclude (optional) removes one additional host.
func (m *Map) rank(part int, exclude map[int]bool) []int {
	type scored struct {
		host  int
		score uint64
	}
	var cand []scored
	for _, h := range m.Hosts {
		if m.isDown(h) || exclude[h] {
			continue
		}
		cand = append(cand, scored{h, rendezvous(uint64(part), uint64(h))})
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].score != cand[j].score {
			return cand[i].score > cand[j].score
		}
		return cand[i].host < cand[j].host
	})
	out := make([]int, len(cand))
	for i, c := range cand {
		out[i] = c.host
	}
	return out
}

// rendezvous mixes (partition, host) into a placement score.
func rendezvous(part, host uint64) uint64 {
	h := part*0x9e3779b97f4a7c15 ^ host*0xc2b2ae3d27d4eb4f
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

func (m *Map) isDown(host int) bool {
	for _, d := range m.Down {
		if d == host {
			return true
		}
	}
	return false
}

// IsDegraded reports whether the detector has demoted a host in this map
// version.
func (m *Map) IsDegraded(host int) bool {
	for _, d := range m.Degraded {
		if d == host {
			return true
		}
	}
	return false
}

// SetDegraded adds or removes a host from the degraded set, bumping the
// epoch when the set changed. Returns whether anything changed.
func (m *Map) SetDegraded(host int, degraded bool) bool {
	if degraded == m.IsDegraded(host) {
		return false
	}
	if degraded {
		m.Degraded = append(m.Degraded, host)
		sort.Ints(m.Degraded)
	} else {
		for i, d := range m.Degraded {
			if d == host {
				m.Degraded = append(m.Degraded[:i], m.Degraded[i+1:]...)
				break
			}
		}
	}
	m.Epoch++
	return true
}

// PartitionOf maps a key to its partition using the same placement
// function ScaleTX coordinators use (txn.ShardKey), so transactional and
// KV routing agree on ownership.
func (m *Map) PartitionOf(key []byte) int { return txn.ShardKey(key, m.Partitions) }

// PrimaryOf returns the host owning a key's partition.
func (m *Map) PrimaryOf(key []byte) int { return m.Primary[m.PartitionOf(key)] }

// Clone deep-copies the map.
func (m *Map) Clone() *Map {
	n := *m
	n.Hosts = append([]int(nil), m.Hosts...)
	n.Primary = append([]int(nil), m.Primary...)
	n.Backup = append([]int(nil), m.Backup...)
	n.Down = append([]int(nil), m.Down...)
	n.Degraded = append([]int(nil), m.Degraded...)
	return &n
}

// Failover marks dead as failed and reassigns every partition that used it:
// a dead primary's backup is promoted, and a fresh backup is drafted from
// the remaining live hosts by rendezvous rank (it starts empty — it only
// catches writes from its promotion onward, which is safe because backups
// never serve reads). Returns the partitions whose primary moved; the
// epoch bumps once if anything changed.
func (m *Map) Failover(dead int) (promoted []int) {
	if m.isDown(dead) {
		return nil
	}
	m.Down = append(m.Down, dead)
	sort.Ints(m.Down)
	// Down supersedes degraded: a failed host leaves the degraded set.
	for i, d := range m.Degraded {
		if d == dead {
			m.Degraded = append(m.Degraded[:i], m.Degraded[i+1:]...)
			break
		}
	}
	changed := false
	for p := 0; p < m.Partitions; p++ {
		if m.Primary[p] == dead {
			if m.Backup[p] == NoHost || m.Backup[p] == dead {
				// No live replica: the partition is lost until the host
				// returns. Leave the dead primary in place; routers will
				// keep timing out on it.
				continue
			}
			m.Primary[p] = m.Backup[p]
			m.Backup[p] = m.nextBackup(p)
			promoted = append(promoted, p)
			changed = true
		} else if m.Backup[p] == dead {
			m.Backup[p] = m.nextBackup(p)
			changed = true
		}
	}
	if changed {
		m.Epoch++
	}
	return promoted
}

// nextBackup picks the highest-ranked live host that is not the primary.
func (m *Map) nextBackup(part int) int {
	for _, h := range m.rank(part, nil) {
		if h != m.Primary[part] {
			return h
		}
	}
	return NoHost
}

// HostPartitions lists the partitions a host serves as primary and backup.
func (m *Map) HostPartitions(host int) (primary, backup []int) {
	for p := 0; p < m.Partitions; p++ {
		if m.Primary[p] == host {
			primary = append(primary, p)
		}
		if m.Backup[p] == host {
			backup = append(backup, p)
		}
	}
	return primary, backup
}

// Encode serializes the map for control-plane distribution.
func (m *Map) Encode() []byte {
	buf := make([]byte, 0, 14+2*len(m.Hosts)+4*m.Partitions+2*len(m.Down)+2*len(m.Degraded))
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], m.Epoch)
	buf = append(buf, w[:4]...)
	binary.LittleEndian.PutUint16(w[:], uint16(m.Partitions))
	buf = append(buf, w[:2]...)
	binary.LittleEndian.PutUint16(w[:], uint16(len(m.Hosts)))
	buf = append(buf, w[:2]...)
	binary.LittleEndian.PutUint16(w[:], uint16(len(m.Down)))
	buf = append(buf, w[:2]...)
	binary.LittleEndian.PutUint16(w[:], uint16(len(m.Degraded)))
	buf = append(buf, w[:2]...)
	put16 := func(v int) {
		binary.LittleEndian.PutUint16(w[:], uint16(v))
		buf = append(buf, w[:2]...)
	}
	for _, h := range m.Hosts {
		put16(h)
	}
	for _, d := range m.Down {
		put16(d)
	}
	for _, d := range m.Degraded {
		put16(d)
	}
	for p := 0; p < m.Partitions; p++ {
		put16(m.Primary[p])
		if m.Backup[p] == NoHost {
			put16(0xffff)
		} else {
			put16(m.Backup[p])
		}
	}
	return buf
}

// DecodeMap parses an encoded map.
func DecodeMap(buf []byte) (*Map, error) {
	if len(buf) < 12 {
		return nil, fmt.Errorf("shard: short map")
	}
	m := &Map{
		Epoch:      binary.LittleEndian.Uint32(buf),
		Partitions: int(binary.LittleEndian.Uint16(buf[4:])),
	}
	nHosts := int(binary.LittleEndian.Uint16(buf[6:]))
	nDown := int(binary.LittleEndian.Uint16(buf[8:]))
	nDegraded := int(binary.LittleEndian.Uint16(buf[10:]))
	need := 12 + 2*nHosts + 2*nDown + 2*nDegraded + 4*m.Partitions
	if len(buf) < need {
		return nil, fmt.Errorf("shard: truncated map (%d < %d)", len(buf), need)
	}
	off := 12
	get16 := func() int {
		v := int(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
		return v
	}
	for i := 0; i < nHosts; i++ {
		m.Hosts = append(m.Hosts, get16())
	}
	for i := 0; i < nDown; i++ {
		m.Down = append(m.Down, get16())
	}
	for i := 0; i < nDegraded; i++ {
		m.Degraded = append(m.Degraded, get16())
	}
	for p := 0; p < m.Partitions; p++ {
		m.Primary = append(m.Primary, get16())
		b := get16()
		if b == 0xffff {
			b = NoHost
		}
		m.Backup = append(m.Backup, b)
	}
	return m, nil
}
