package shard

import (
	"encoding/binary"
	"fmt"

	"scalerpc/internal/txn"
)

// Handler ids on the two shard planes. HShard is the single client-facing
// entry on each node's ScaleRPC server; HRepl is the primary→backup
// forward on the dedicated replication server. Inner ids below HShard
// share the request's envelope: the txn handlers (txn.HExec…txn.HGet)
// pass through to the partition's participant, the HKV ops are the plain
// KV surface.
const (
	HShard uint8 = 40
	HRepl  uint8 = 41

	HKVGet uint8 = 30
	HKVPut uint8 = 31
)

// Routed response status codes. Anything except ROK carries routing
// feedback instead of an inner response.
const (
	ROK         uint8 = 0
	RStale      uint8 = 1 // stamped epoch ≠ node epoch; body = node epoch u32
	RWrongShard uint8 = 2 // node not primary; body = node epoch u32 + owner u16
	RRetry      uint8 = 3 // transient (replication unavailable); retry later
)

// envSize is the routed request envelope: epoch u32, partition u16,
// inner handler u8.
const envSize = 7

// EncodeEnv stamps the envelope ahead of body.
func EncodeEnv(buf []byte, epoch uint32, part int, inner uint8, body []byte) int {
	binary.LittleEndian.PutUint32(buf, epoch)
	binary.LittleEndian.PutUint16(buf[4:], uint16(part))
	buf[6] = inner
	copy(buf[envSize:], body)
	return envSize + len(body)
}

// DecodeEnv splits a routed request.
func DecodeEnv(buf []byte) (epoch uint32, part int, inner uint8, body []byte, err error) {
	if len(buf) < envSize {
		return 0, 0, 0, nil, fmt.Errorf("shard: short envelope")
	}
	return binary.LittleEndian.Uint32(buf),
		int(binary.LittleEndian.Uint16(buf[4:])),
		buf[6], buf[envSize:], nil
}

// EncodeKVPut builds an HKVPut body: token, then key and value.
func EncodeKVPut(buf []byte, token uint64, key, value []byte) int {
	binary.LittleEndian.PutUint64(buf, token)
	buf[8] = byte(len(key))
	n := 9 + copy(buf[9:], key)
	return n + copy(buf[n:], value)
}

// DecodeKVPut parses an HKVPut body.
func DecodeKVPut(buf []byte) (token uint64, key, value []byte, err error) {
	if len(buf) < 9 {
		return 0, nil, nil, fmt.Errorf("shard: short kv put")
	}
	token = binary.LittleEndian.Uint64(buf)
	kl := int(buf[8])
	if len(buf) < 9+kl {
		return 0, nil, nil, fmt.Errorf("shard: truncated kv put key")
	}
	return token, buf[9 : 9+kl], buf[9+kl:], nil
}

// Replication record kinds: a client KV put or a 2PC commit write set.
// The backup records the token in the matching dedup table so a client
// retry after promotion is answered from cache, not re-executed.
const (
	ReplKV  uint8 = 0
	ReplTxn uint8 = 1
)

// EncodeRepl builds an HRepl request: the map epoch the primary holds, the
// partition, the record kind, then the token and write set in txn
// write-request format.
func EncodeRepl(buf []byte, epoch uint32, part int, kind uint8, token uint64, kvs []txn.KV) int {
	binary.LittleEndian.PutUint32(buf, epoch)
	binary.LittleEndian.PutUint16(buf[4:], uint16(part))
	buf[6] = kind
	return 7 + txn.EncodeWriteReq(buf[7:], token, kvs)
}

// DecodeRepl parses an HRepl request.
func DecodeRepl(buf []byte) (epoch uint32, part int, kind uint8, token uint64, kvs []txn.KV, err error) {
	if len(buf) < 7 {
		return 0, 0, 0, 0, nil, fmt.Errorf("shard: short repl request")
	}
	epoch = binary.LittleEndian.Uint32(buf)
	part = int(binary.LittleEndian.Uint16(buf[4:]))
	kind = buf[6]
	token, kvs, err = txn.DecodeWriteReq(buf[7:])
	return epoch, part, kind, token, kvs, err
}
