package memory

import (
	"errors"
	"testing"
)

func TestRegisterAndTranslate(t *testing.T) {
	g := NewRegistry()
	r := g.Register(4096, PageSize4K, LocalWrite|RemoteRead|RemoteWrite)
	if r.Base == 0 {
		t.Fatal("region base must be nonzero")
	}
	if r.Len() != 4096 {
		t.Fatalf("Len = %d", r.Len())
	}
	_, b, err := g.TranslateRemote(r.RKey, r.Base+100, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	copy(b, []byte("hello"))
	if string(r.Bytes()[100:105]) != "hello" {
		t.Fatal("translated slice does not alias the region")
	}
}

func TestTranslateBadKey(t *testing.T) {
	g := NewRegistry()
	_, _, err := g.TranslateRemote(999, 0, 1, false)
	if !errors.Is(err, ErrBadKey) {
		t.Fatalf("err = %v, want ErrBadKey", err)
	}
}

func TestTranslateOutOfBounds(t *testing.T) {
	g := NewRegistry()
	r := g.Register(128, PageSize4K, RemoteRead|RemoteWrite)
	if _, _, err := g.TranslateRemote(r.RKey, r.Base+120, 16, false); !errors.Is(err, ErrOutOfband) {
		t.Fatalf("err = %v, want ErrOutOfband", err)
	}
	if _, _, err := g.TranslateRemote(r.RKey, r.Base-1, 1, false); !errors.Is(err, ErrOutOfband) {
		t.Fatalf("err = %v, want ErrOutOfband", err)
	}
}

func TestPermissionEnforcement(t *testing.T) {
	g := NewRegistry()
	ro := g.Register(64, PageSize4K, RemoteRead)
	if _, _, err := g.TranslateRemote(ro.RKey, ro.Base, 8, true); !errors.Is(err, ErrPerm) {
		t.Fatalf("write to read-only region: err = %v, want ErrPerm", err)
	}
	wo := g.Register(64, PageSize4K, RemoteWrite)
	if _, _, err := g.TranslateRemote(wo.RKey, wo.Base, 8, false); !errors.Is(err, ErrPerm) {
		t.Fatalf("read of write-only region: err = %v, want ErrPerm", err)
	}
}

func TestRemoteOpPermissions(t *testing.T) {
	g := NewRegistry()
	cases := []struct {
		name  string
		flags Access
		op    RemoteOp
		ok    bool
	}{
		{"read-granted", RemoteRead, RemoteOpRead, true},
		{"read-denied", RemoteWrite | RemoteAtomic, RemoteOpRead, false},
		{"write-granted", RemoteWrite, RemoteOpWrite, true},
		{"write-denied", RemoteRead | RemoteAtomic, RemoteOpWrite, false},
		{"atomic-granted", RemoteAtomic, RemoteOpAtomic, true},
		// Atomics must not ride the write permission: a region opened
		// for RemoteWrite only still rejects CAS/FetchAdd.
		{"atomic-denied-write-only", RemoteRead | RemoteWrite, RemoteOpAtomic, false},
		{"atomic-denied-read-only", RemoteRead, RemoteOpAtomic, false},
		{"all-atomic", RemoteRead | RemoteWrite | RemoteAtomic, RemoteOpAtomic, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := g.Register(64, PageSize4K, tc.flags)
			_, _, err := g.TranslateRemoteOp(r.RKey, r.Base, 8, tc.op)
			if tc.ok && err != nil {
				t.Fatalf("%s on %v region: unexpected error %v", tc.op, tc.flags, err)
			}
			if !tc.ok && !errors.Is(err, ErrPerm) {
				t.Fatalf("%s on %v region: err = %v, want ErrPerm", tc.op, tc.flags, err)
			}
		})
	}
}

func TestTranslateRemoteDelegates(t *testing.T) {
	g := NewRegistry()
	r := g.Register(64, PageSize4K, RemoteRead|RemoteWrite)
	if _, _, err := g.TranslateRemote(r.RKey, r.Base, 8, false); err != nil {
		t.Fatalf("read: %v", err)
	}
	if _, _, err := g.TranslateRemote(r.RKey, r.Base, 8, true); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func TestDeregister(t *testing.T) {
	g := NewRegistry()
	r := g.Register(64, PageSize4K, RemoteRead)
	g.Deregister(r)
	if _, _, err := g.TranslateRemote(r.RKey, r.Base, 8, false); !errors.Is(err, ErrBadKey) {
		t.Fatalf("err = %v, want ErrBadKey after deregister", err)
	}
}

func TestPagesAndPageOf(t *testing.T) {
	g := NewRegistry()
	r := g.Register(3*PageSize4K+1, PageSize4K, RemoteRead)
	if r.Pages() != 4 {
		t.Fatalf("Pages = %d, want 4", r.Pages())
	}
	if r.PageOf(r.Base) != 0 || r.PageOf(r.Base+PageSize4K) != 1 {
		t.Fatal("PageOf wrong")
	}
	huge := g.Register(8<<20, PageSize2M, RemoteRead)
	if huge.Pages() != 4 {
		t.Fatalf("huge Pages = %d, want 4", huge.Pages())
	}
}

func TestRegionsDontOverlap(t *testing.T) {
	g := NewRegistry()
	a := g.Register(1<<20, PageSize4K, RemoteRead)
	b := g.Register(1<<20, PageSize4K, RemoteRead)
	aEnd := a.Base + uint64(a.Len())
	if b.Base < aEnd {
		t.Fatalf("regions overlap: a=[%#x,%#x) b starts %#x", a.Base, aEnd, b.Base)
	}
}

func TestTranslateLocal(t *testing.T) {
	g := NewRegistry()
	r := g.Register(256, PageSize4K, LocalWrite)
	_, b, err := g.TranslateLocal(r.LKey, r.Base+10, 5)
	if err != nil || len(b) != 5 {
		t.Fatalf("TranslateLocal: %v len=%d", err, len(b))
	}
	if _, _, err := g.TranslateLocal(12345, r.Base, 1); !errors.Is(err, ErrBadKey) {
		t.Fatalf("err = %v, want ErrBadKey", err)
	}
}
