// Package memory models registered memory regions ("MRs") of a simulated
// host. Each region is a flat byte arena placed in the host's virtual
// address space; RDMA verbs address it with (rkey, virtual address) pairs,
// exactly as ibverbs does. Registration records the page size, because the
// number of page-table entries determines pressure on the NIC's MTT cache
// (the paper notes FaRM's 2 GB pages and LITE's physical registration as
// ways to shrink it; ScaleRPC registers 2 MB huge pages).
package memory

import (
	"errors"
	"fmt"
)

// Page sizes supported by registration.
const (
	PageSize4K = 4 << 10
	PageSize2M = 2 << 20
	PageSize1G = 1 << 30
)

// Errors returned by translation.
var (
	ErrBadKey    = errors.New("memory: unknown protection key")
	ErrOutOfband = errors.New("memory: access outside registered region")
	ErrPerm      = errors.New("memory: access violates region permissions")
)

// Access flags for registered regions.
type Access uint8

const (
	LocalWrite Access = 1 << iota
	RemoteRead
	RemoteWrite
	RemoteAtomic
)

// Region is a registered memory region.
type Region struct {
	LKey     uint32
	RKey     uint32
	Base     uint64 // virtual base address
	PageSize int
	Flags    Access
	buf      []byte
}

// Len returns the region length in bytes.
func (r *Region) Len() int { return len(r.buf) }

// Bytes exposes the backing store. Local software uses this for direct
// access; remote access must go through the verbs layer.
func (r *Region) Bytes() []byte { return r.buf }

// Pages returns the number of page-table entries the region occupies.
func (r *Region) Pages() int {
	return (len(r.buf) + r.PageSize - 1) / r.PageSize
}

// PageOf returns the index of the page containing virtual address addr,
// used as the NIC MTT cache key.
func (r *Region) PageOf(addr uint64) int {
	return int((addr - r.Base) / uint64(r.PageSize))
}

// Slice returns the backing bytes for [addr, addr+size).
func (r *Region) Slice(addr uint64, size int) ([]byte, error) {
	if addr < r.Base || addr+uint64(size) > r.Base+uint64(len(r.buf)) {
		return nil, fmt.Errorf("%w: [%#x,+%d) not in [%#x,+%d)", ErrOutOfband, addr, size, r.Base, len(r.buf))
	}
	off := addr - r.Base
	return r.buf[off : off+uint64(size)], nil
}

// Registry is one host's MR table and virtual address allocator.
type Registry struct {
	nextKey  uint32
	nextAddr uint64
	byRKey   map[uint32]*Region
	byLKey   map[uint32]*Region
}

// NewRegistry returns an empty registry. Virtual addresses start high so
// zero is never a valid address (catching uninitialized-address bugs).
func NewRegistry() *Registry {
	return &Registry{
		nextKey:  1,
		nextAddr: 0x10_0000_0000,
		byRKey:   make(map[uint32]*Region),
		byLKey:   make(map[uint32]*Region),
	}
}

// Register allocates and registers a region of size bytes with the given
// page size and access flags, returning the region.
func (g *Registry) Register(size int, pageSize int, flags Access) *Region {
	if size <= 0 {
		panic("memory: non-positive region size")
	}
	if pageSize != PageSize4K && pageSize != PageSize2M && pageSize != PageSize1G {
		panic(fmt.Sprintf("memory: unsupported page size %d", pageSize))
	}
	r := &Region{
		LKey:     g.nextKey,
		RKey:     g.nextKey,
		Base:     g.nextAddr,
		PageSize: pageSize,
		Flags:    flags,
		buf:      make([]byte, size),
	}
	g.nextKey++
	// Keep regions page-aligned and well separated.
	span := (uint64(size)/uint64(pageSize) + 2) * uint64(pageSize)
	g.nextAddr += span
	g.byRKey[r.RKey] = r
	g.byLKey[r.LKey] = r
	return r
}

// Deregister removes a region. Outstanding accesses to it will fail.
func (g *Registry) Deregister(r *Region) {
	delete(g.byRKey, r.RKey)
	delete(g.byLKey, r.LKey)
}

// RemoteOp classifies a remote access for permission checking. Atomics
// are their own class: ibverbs grants them with IBV_ACCESS_REMOTE_ATOMIC,
// not with the write permission, and the NIC enforces the distinction in
// hardware — a CAS against a write-only region is a remote access error.
type RemoteOp int

// Remote access classes.
const (
	RemoteOpRead RemoteOp = iota
	RemoteOpWrite
	RemoteOpAtomic
)

func (o RemoteOp) String() string {
	switch o {
	case RemoteOpRead:
		return "READ"
	case RemoteOpWrite:
		return "WRITE"
	case RemoteOpAtomic:
		return "ATOMIC"
	}
	return "?"
}

// TranslateRemote resolves an (rkey, addr, size) triple for a remote
// read or write, enforcing permissions. CAS/FetchAdd targets go through
// TranslateRemoteOp with RemoteOpAtomic instead — atomics do not ride the
// write permission.
func (g *Registry) TranslateRemote(rkey uint32, addr uint64, size int, write bool) (*Region, []byte, error) {
	op := RemoteOpRead
	if write {
		op = RemoteOpWrite
	}
	return g.TranslateRemoteOp(rkey, addr, size, op)
}

// TranslateRemoteOp resolves an (rkey, addr, size) triple for a remote
// operation of the given class, enforcing the matching access flag:
// RemoteRead for READs, RemoteWrite for WRITEs, RemoteAtomic for
// CAS/FetchAdd.
func (g *Registry) TranslateRemoteOp(rkey uint32, addr uint64, size int, op RemoteOp) (*Region, []byte, error) {
	r, ok := g.byRKey[rkey]
	if !ok {
		return nil, nil, fmt.Errorf("%w: rkey %d", ErrBadKey, rkey)
	}
	switch op {
	case RemoteOpRead:
		if r.Flags&RemoteRead == 0 {
			return nil, nil, fmt.Errorf("%w: remote read of rkey %d", ErrPerm, rkey)
		}
	case RemoteOpWrite:
		if r.Flags&RemoteWrite == 0 {
			return nil, nil, fmt.Errorf("%w: remote write to rkey %d", ErrPerm, rkey)
		}
	case RemoteOpAtomic:
		if r.Flags&RemoteAtomic == 0 {
			return nil, nil, fmt.Errorf("%w: remote atomic on rkey %d", ErrPerm, rkey)
		}
	}
	b, err := r.Slice(addr, size)
	if err != nil {
		return nil, nil, err
	}
	return r, b, nil
}

// TranslateLocal resolves an (lkey, addr, size) triple for a local
// scatter/gather element.
func (g *Registry) TranslateLocal(lkey uint32, addr uint64, size int) (*Region, []byte, error) {
	r, ok := g.byLKey[lkey]
	if !ok {
		return nil, nil, fmt.Errorf("%w: lkey %d", ErrBadKey, lkey)
	}
	b, err := r.Slice(addr, size)
	if err != nil {
		return nil, nil, err
	}
	return r, b, nil
}
