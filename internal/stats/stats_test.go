package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("adjacent seeds produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	err := quick.Check(func(seed uint64, n uint16) bool {
		nn := int(n%1000) + 1
		r := NewRNG(seed)
		v := r.Intn(nn)
		return v >= 0 && v < nn
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %f, want ~1", variance)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(5)
	z := NewZipf(r, 1000, 0.99)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Item 0 must be far more popular than item 500.
	if counts[0] < 20*counts[500]+1 {
		t.Fatalf("zipf not skewed: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
	// Top 5% of keys should absorb the majority of accesses.
	top := 0
	for i := 0; i < 50; i++ {
		top += counts[i]
	}
	if float64(top)/n < 0.5 {
		t.Fatalf("top 5%% keys got only %.1f%% of accesses", 100*float64(top)/n)
	}
}

func TestZipfRange(t *testing.T) {
	r := NewRNG(9)
	z := NewZipf(r, 50, 0.9)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v >= 50 {
			t.Fatalf("zipf out of range: %d", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Median() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %d/%d, want 1/100", h.Min(), h.Max())
	}
	if m := h.Mean(); math.Abs(m-50.5) > 0.01 {
		t.Fatalf("Mean = %f, want 50.5", m)
	}
	med := h.Median()
	if med < 45 || med > 55 {
		t.Fatalf("Median = %d, want ~50", med)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram()
	r := NewRNG(21)
	for i := 0; i < 5000; i++ {
		h.Record(int64(r.Intn(1000000)) + 1)
	}
	prev := int64(0)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%f: %d < %d", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramRelativeError(t *testing.T) {
	// Property: a recorded value's bucket lower bound is within ~7% below it.
	err := quick.Check(func(raw uint32) bool {
		v := int64(raw%100000000) + 1
		idx := bucketIndex(v)
		low := bucketLow(idx)
		if low > v {
			return false
		}
		return float64(v-low)/float64(v) < 0.07
	}, &quick.Config{MaxCount: 5000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	// Interpolated quantiles must track an exact sorted-sample reference to
	// well under one bucket width (~6.25% relative at 16 buckets/octave),
	// across distribution shapes.
	dists := map[string]func(r *RNG) int64{
		"uniform":   func(r *RNG) int64 { return int64(r.Intn(1_000_000)) + 1 },
		"exp":       func(r *RNG) int64 { return int64(r.Exp(50_000)) + 1 },
		"lognormal": func(r *RNG) int64 { return int64(r.LogNormal(10, 1.5)) + 1 },
	}
	for name, gen := range dists {
		h := NewHistogram()
		r := NewRNG(99)
		samples := make([]int64, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := gen(r)
			h.Record(v)
			samples = append(samples, v)
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			got := h.Quantile(q)
			want := Percentile(samples, q*100)
			relErr := math.Abs(float64(got-want)) / float64(want)
			if relErr > 0.07 {
				t.Errorf("%s q=%v: interpolated %d vs exact %d (rel err %.3f)", name, q, got, want, relErr)
			}
		}
	}
}

func TestHistogramQuantileSpansBucket(t *testing.T) {
	// All mass in one bucket: quantiles must move within the bucket rather
	// than snapping to its lower bound.
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Record(1 << 20) // single value, single bucket
	}
	lo := h.Quantile(0.01)
	hi := h.Quantile(0.99)
	if hi < lo {
		t.Fatalf("quantiles not monotone: %d > %d", lo, hi)
	}
	// Clamped to observed min/max despite interpolation.
	if lo < h.Min() || hi > h.Max() {
		t.Fatalf("quantiles escaped [min,max]: %d..%d vs %d..%d", lo, hi, h.Min(), h.Max())
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Record(10)
	}
	for i := 0; i < 100; i++ {
		h.Record(1000)
	}
	vals, fracs := h.CDF()
	if len(vals) != 2 {
		t.Fatalf("CDF points = %d, want 2", len(vals))
	}
	if math.Abs(fracs[0]-0.5) > 1e-9 || math.Abs(fracs[1]-1.0) > 1e-9 {
		t.Fatalf("CDF fractions = %v, want [0.5 1.0]", fracs)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(5)
	a.Record(10)
	b.Record(1000)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("Count = %d, want 3", a.Count())
	}
	if a.Max() < 900 {
		t.Fatalf("Max = %d, want ~1000", a.Max())
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(42)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear the histogram")
	}
}

func TestPercentileExact(t *testing.T) {
	s := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(s, 50); got != 5 {
		t.Fatalf("P50 = %d, want 5", got)
	}
	if got := Percentile(s, 100); got != 10 {
		t.Fatalf("P100 = %d, want 10", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("P50(nil) = %d, want 0", got)
	}
}

func TestSummary(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 1000)
	}
	s := h.Summarize()
	if s.Count != 1000 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.P99Ns < s.MedianNs {
		t.Fatal("P99 < median")
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}
