package stats

import (
	"math"
	"testing"
)

func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(NewRNG(77), 4096, 0.99)
	b := NewZipf(NewRNG(77), 4096, 0.99)
	for i := 0; i < 10000; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatalf("same-seed Zipf diverged at draw %d: %d != %d", i, va, vb)
		}
	}
}

func TestZipfFrequencyDistribution(t *testing.T) {
	// Empirical rank frequencies should track the closed-form shares: rank
	// popularity decreasing, and the head ranks near their expected mass.
	const n, theta, draws = 100, 0.99, 200000
	z := NewZipf(NewRNG(31), n, theta)
	counts := make([]float64, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	shares := ZipfShares(n, theta)
	for rank := 0; rank < 5; rank++ {
		got := counts[rank] / draws
		want := shares[rank]
		if math.Abs(got-want) > 0.25*want+0.005 {
			t.Fatalf("rank %d frequency %.4f, want ~%.4f", rank, got, want)
		}
	}
	// Popularity must decay: the first decile out-draws the last decile by
	// a wide margin under theta 0.99.
	var head, tail float64
	for i := 0; i < n/10; i++ {
		head += counts[i]
		tail += counts[n-1-i]
	}
	if head < 5*tail {
		t.Fatalf("head decile %v not ≫ tail decile %v", head, tail)
	}
}

func TestZipfSharesProperties(t *testing.T) {
	shares := ZipfShares(64, 0.9)
	sum := 0.0
	for i, s := range shares {
		sum += s
		if s <= 0 {
			t.Fatalf("share[%d] = %g, want > 0", i, s)
		}
		if i > 0 && s > shares[i-1] {
			t.Fatalf("shares not decreasing at %d: %g > %g", i, s, shares[i-1])
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %g, want 1", sum)
	}
	// Ratio between rank 0 and rank 9 must follow 10^theta.
	want := math.Pow(10, 0.9)
	if got := shares[0] / shares[9]; math.Abs(got-want) > 1e-6 {
		t.Fatalf("share ratio 0/9 = %g, want %g", got, want)
	}
	// theta 0 is uniform.
	for _, s := range ZipfShares(10, 0) {
		if math.Abs(s-0.1) > 1e-12 {
			t.Fatalf("theta=0 share %g, want 0.1", s)
		}
	}
	if ZipfShares(0, 1) != nil {
		t.Fatal("ZipfShares(0) must be nil")
	}
}
