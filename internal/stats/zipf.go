package stats

import "math"

// This file is the repository's one Zipf implementation, shared by every
// skewed-workload generator (key popularity in the KV/metadata benches,
// tenant and key mixes in internal/loadgen). Two forms are provided:
//
//   - Zipf, a sampler producing Zipf-distributed ranks in [0, n) from a
//     seeded RNG — deterministic for a given (seed, n, theta), so the same
//     run replays byte-identically;
//   - ZipfShares, the closed-form probability mass of each rank — for
//     callers that want deterministic *shares* (e.g. splitting an offered
//     load across tenants by popularity) rather than a sample stream.
//
// Skew convention follows the YCSB/Gray parameterization: rank i is drawn
// with probability proportional to 1/i^theta, theta in [0, 1). theta→0
// approaches uniform; theta 0.99 is the standard "heavily skewed" setting.

// Zipf generates Zipf-distributed integers in [0, n) with exponent theta.
// This implementation precomputes the normalization constant and samples by
// inversion with the harmonic approximation (Gray et al.'s method, as used
// by YCSB), which is accurate enough for workload skew modelling and costs
// one RNG draw plus one Pow per sample.
type Zipf struct {
	rng   *RNG
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipf returns a Zipf sampler over [0, n) with skew theta (0 ≤ theta < 1;
// theta→0 approaches uniform). The sampler draws exclusively from rng, so
// two samplers built over equal (seed, n, theta) produce identical
// sequences.
func NewZipf(rng *RNG, n uint64, theta float64) *Zipf {
	z := &Zipf{rng: rng, n: n, theta: theta}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zetaStatic(n uint64, theta float64) float64 {
	// Exact for small n; integral approximation beyond a cutoff keeps setup
	// cost bounded for large key spaces.
	const cutoff = 1 << 20
	if n <= cutoff {
		sum := 0.0
		for i := uint64(1); i <= n; i++ {
			sum += 1 / math.Pow(float64(i), theta)
		}
		return sum
	}
	sum := 0.0
	for i := uint64(1); i <= cutoff; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	// ∫ x^-theta dx from cutoff to n.
	sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(cutoff), 1-theta)) / (1 - theta)
	return sum
}

// Next returns the next Zipf variate in [0, n). Rank 0 is the most popular.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// ZipfShares returns the exact probability mass of each rank in a Zipf
// distribution over n items with skew theta: shares[i] ∝ 1/(i+1)^theta,
// normalized to sum to 1. It involves no randomness — the workhorse for
// deterministically splitting an aggregate rate across n tenants by
// popularity rank. theta 0 yields equal shares; n ≤ 0 returns nil.
func ZipfShares(n int, theta float64) []float64 {
	if n <= 0 {
		return nil
	}
	shares := make([]float64, n)
	sum := 0.0
	for i := range shares {
		shares[i] = 1 / math.Pow(float64(i+1), theta)
		sum += shares[i]
	}
	for i := range shares {
		shares[i] /= sum
	}
	return shares
}
