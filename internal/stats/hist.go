package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Histogram records latency samples (nanoseconds) in logarithmic buckets
// with bounded relative error, plus exact min/max/sum, so the harness can
// extract medians, averages, tails, and full CDFs cheaply.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    float64
	min    int64
	max    int64
}

// bucketsPerOctave controls resolution: 16 sub-buckets per power of two
// bounds relative error to ~4%.
const bucketsPerOctave = 16

func bucketIndex(v int64) int {
	if v < 1 {
		v = 1
	}
	// Position = octave*bucketsPerOctave + fraction within octave.
	oct := 63 - bits.LeadingZeros64(uint64(v))
	if oct == 0 {
		return 0 // v == 1
	}
	frac := (uint64(v) - (1 << uint(oct))) * bucketsPerOctave >> uint(oct)
	return oct*bucketsPerOctave + int(frac)
}

// bucketLow returns the inclusive lower bound of bucket i.
func bucketLow(i int) int64 {
	oct := i / bucketsPerOctave
	frac := i % bucketsPerOctave
	if oct == 0 {
		return 1
	}
	base := int64(1) << uint(oct)
	return base + base*int64(frac)/bucketsPerOctave
}

// bucketHigh returns the exclusive upper bound of bucket i.
func bucketHigh(i int) int64 { return bucketLow(i + 1) }

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64, max: math.MinInt64}
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	idx := bucketIndex(v)
	if idx >= len(h.counts) {
		grown := make([]uint64, idx+16)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min returns the smallest sample, or 0 when empty.
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 when empty.
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the approximate q-quantile (0 ≤ q ≤ 1), interpolating
// linearly within the winning bucket: the target rank's position among the
// bucket's samples picks a proportional point in [bucketLow, bucketHigh)
// instead of snapping to the bucket boundary, so quantiles move smoothly
// with q rather than in bucket-sized steps.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.total)
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) > target {
			lo, hi := bucketLow(i), bucketHigh(i)
			frac := (target - float64(cum)) / float64(c)
			v := lo + int64(frac*float64(hi-lo))
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += c
	}
	return h.max
}

// Median returns the 0.5 quantile.
func (h *Histogram) Median() int64 { return h.Quantile(0.5) }

// CDF returns (value, cumulative fraction) points suitable for plotting.
func (h *Histogram) CDF() (values []int64, fractions []float64) {
	if h.total == 0 {
		return nil, nil
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		values = append(values, bucketLow(i))
		fractions = append(fractions, float64(cum)/float64(h.total))
	}
	return values, fractions
}

// Merge adds all samples of o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.total == 0 {
		return
	}
	if len(o.counts) > len(h.counts) {
		grown := make([]uint64, len(o.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// Clone returns a deep copy of the histogram, suitable as a snapshot for
// windowed delta evaluation.
func (h *Histogram) Clone() *Histogram {
	cp := &Histogram{
		counts: append([]uint64(nil), h.counts...),
		total:  h.total,
		sum:    h.sum,
		min:    h.min,
		max:    h.max,
	}
	return cp
}

// DeltaSince returns a histogram holding only the samples recorded in h
// after the snapshot prev was taken. prev must be an earlier snapshot of
// the same histogram (e.g. from Clone); buckets that shrank are clamped to
// zero. The delta's min/max are approximated from its occupied bucket
// bounds, clamped to the live histogram's exact extremes.
func (h *Histogram) DeltaSince(prev *Histogram) *Histogram {
	d := NewHistogram()
	if prev == nil {
		return h.Clone()
	}
	d.counts = make([]uint64, len(h.counts))
	first, last := -1, -1
	for i, c := range h.counts {
		var old uint64
		if i < len(prev.counts) {
			old = prev.counts[i]
		}
		if c > old {
			d.counts[i] = c - old
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return d
	}
	if h.total > prev.total {
		d.total = h.total - prev.total
	}
	if h.sum > prev.sum {
		d.sum = h.sum - prev.sum
	}
	d.min = bucketLow(first)
	if d.min < h.min {
		d.min = h.min
	}
	d.max = bucketHigh(last) - 1
	if d.max > h.max {
		d.max = h.max
	}
	return d
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = math.MinInt64
}

// Summary is a compact latency digest.
type Summary struct {
	Count    uint64
	MeanNs   float64
	MedianNs int64
	P99Ns    int64
	MaxNs    int64
	MinNs    int64
}

// Summarize extracts a Summary from the histogram.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count:    h.total,
		MeanNs:   h.Mean(),
		MedianNs: h.Median(),
		P99Ns:    h.Quantile(0.99),
		MaxNs:    h.Max(),
		MinNs:    h.Min(),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1fus median=%.1fus p99=%.1fus max=%.1fus",
		s.Count, s.MeanNs/1e3, float64(s.MedianNs)/1e3, float64(s.P99Ns)/1e3, float64(s.MaxNs)/1e3)
}

// Percentile computes the p-th percentile (0–100) of a raw sample slice,
// used in tests where exact values matter; sorts a copy.
func Percentile(samples []int64, p float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	cp := make([]int64, len(samples))
	copy(cp, samples)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := int(p / 100 * float64(len(cp)-1))
	return cp[idx]
}
