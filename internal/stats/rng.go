// Package stats provides deterministic random number generation,
// workload distributions, and latency/throughput accounting used by the
// simulator and the benchmark harness.
package stats

import "math"

// RNG is a small, fast, deterministic PRNG (xoshiro256**). Every simulated
// entity derives its own RNG via Split, so adding or removing entities never
// perturbs the random streams of others.
type RNG struct {
	s [4]uint64
	// spare Gaussian value from the Box-Muller pair.
	gauss    float64
	hasGauss bool
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns an RNG seeded from seed via splitmix64 (so adjacent seeds
// yield uncorrelated streams).
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	for i := range r.s {
		r.s[i] = splitmix64(&seed)
	}
	// Avoid the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent child RNG; the parent advances once.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// LogNormal returns exp(N(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Exp returns an exponential variate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	return -mean * math.Log(1-r.Float64())
}

// Shuffle permutes indices [0,n) via swap, Fisher-Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
