// Package telemetry is the unified instrumentation layer: one registry of
// named counters, gauges and log-bucket histograms that every simulated
// component (NIC, PCIe bus, LLC, host CPU accounting, the RPC transports)
// registers into under a hierarchical component scope — `nic0.qpc.miss`,
// `pcie.bus0.rdcur`, `llc0.cpu.read.miss`, `scalerpc.server.switches`,
// `scalerpc.client.17.retries`.
//
// Design constraints, in order:
//
//   - The hot path must stay hot. Metrics are plain uint64/float64 cells
//     behind per-component handles: a component either asks the scope for a
//     registry-owned *Counter and increments through the handle, or
//     registers a field of its existing stats struct with CounterVar so the
//     struct stays the one true storage and the registry merely observes
//     it. The simulator is single-threaded virtual time, so there are no
//     atomics anywhere.
//
//   - Observation is pull-based. Snapshot structs (nic.Stats,
//     pcie.Counters, cachesim.Stats, scalerpc.Stats) remain the typed views
//     the figure code consumes; the registry adds a uniform dump (JSON),
//     virtual-time interval sampling (Sampler), and structured trace
//     events (Trace) on top, without a second bookkeeping path.
//
//   - Output is deterministic. Dumps are sorted by metric name, series
//     follow registration order, and trace events follow emission order,
//     so two runs with the same (Config, seed) produce byte-identical
//     metrics JSON.
//
// The zero Scope is valid and detached: handles it returns still work as
// plain cells, they are just not registered anywhere. Components can
// therefore be constructed without a registry (unit tests) at zero cost.
package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ v uint64 }

// NewCounter returns a detached counter.
func NewCounter() *Counter { return &Counter{} }

// Inc adds 1.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Reset zeroes the counter (for measurement windowing).
func (c *Counter) Reset() { c.v = 0 }

// Gauge is a float64 metric that can move in both directions.
type Gauge struct{ v float64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the gauge value by d.
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// histBuckets is one bucket per bit length of the observed value: bucket i
// holds observations v with bits.Len64(v) == i, i.e. [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a log2-bucket histogram of uint64 observations (typically
// virtual-time durations in ns).
type Histogram struct {
	count   uint64
	sum     uint64
	buckets [histBuckets]uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count++
	h.sum += v
	h.buckets[bits.Len64(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Bucket returns the count in log2 bucket bit: observations v with
// bits.Len64(v) == bit, i.e. 2^(bit-1) ≤ v < 2^bit (bit 0 holds v == 0).
func (h *Histogram) Bucket(bit int) uint64 {
	if bit < 0 || bit >= histBuckets {
		return 0
	}
	return h.buckets[bit]
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the mean observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the approximate q-quantile (0 ≤ q ≤ 1) of the recorded
// observations. The target rank selects a log2 bucket [2^(bit-1), 2^bit);
// the rank's position among that bucket's observations then interpolates
// linearly inside the bucket, so quantiles do not snap to powers of two.
// Accuracy is bounded by the bucket width (a factor of two), adequate for
// SLO-style latency thresholds; use stats.Histogram where ~4% relative
// error matters.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.count)
	var cum uint64
	for bit, c := range h.buckets {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			if bit == 0 {
				return 0
			}
			lo := float64(uint64(1) << uint(bit-1))
			frac := (target - float64(cum)) / float64(c)
			return lo + frac*lo // bucket spans [lo, 2*lo)
		}
		cum += c
	}
	return 0
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Kind discriminates metric types in the registry.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "?"
}

// entry is one registered metric: exactly one of c, g, h is set.
type entry struct {
	kind Kind
	c    *uint64
	g    *float64
	h    *Histogram
}

// value returns the entry's current value as a float64 (histograms report
// their observation count).
func (e *entry) value() float64 {
	switch e.kind {
	case KindCounter:
		return float64(*e.c)
	case KindGauge:
		return *e.g
	case KindHistogram:
		return float64(e.h.count)
	}
	return 0
}

// Registry holds every registered metric of one simulation. It is not safe
// for concurrent use; in the simulator all registration and observation
// happens on the single scheduler goroutine.
type Registry struct {
	entries  map[string]*entry
	order    []string // registration order, for deterministic iteration
	scopeUse map[string]int
	samplers []*Sampler
	trace    Trace
	aux      map[string]interface{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		entries:  make(map[string]*entry),
		scopeUse: make(map[string]int),
	}
}

// Aux returns the registry-attached singleton under key, calling make on
// first use. Components that must share one stats block per registry (e.g.
// the RPC reliability counters, incremented by every transport on a
// cluster) anchor it here instead of in a package global, which would leak
// across simulations.
func (r *Registry) Aux(key string, make func() interface{}) interface{} {
	if r.aux == nil {
		r.aux = map[string]interface{}{}
	}
	v, ok := r.aux[key]
	if !ok {
		v = make()
		r.aux[key] = v
	}
	return v
}

// Trace returns the registry's trace sink (disabled until EnableTrace).
func (r *Registry) Trace() *Trace { return &r.trace }

// EnableTrace turns on structured trace-event collection.
func (r *Registry) EnableTrace() { r.trace.Enabled = true }

// register installs e under name, panicking on duplicates: metric names
// identify exactly one cell, and silent merging would corrupt per-component
// snapshots. Use UniqueScope for components that may be instantiated more
// than once per registry.
func (r *Registry) register(name string, e *entry) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	if _, dup := r.entries[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.entries[name] = e
	r.order = append(r.order, name)
}

// Names returns all registered metric names, sorted.
func (r *Registry) Names() []string {
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}

// Value returns the current value of a registered metric and whether it
// exists.
func (r *Registry) Value(name string) (float64, bool) {
	e, ok := r.entries[name]
	if !ok {
		return 0, false
	}
	return e.value(), true
}

// Reset zeroes every registered metric (counters, gauges, histograms) —
// the registry-wide analogue of the per-component Reset methods.
func (r *Registry) Reset() {
	for _, e := range r.entries {
		switch e.kind {
		case KindCounter:
			*e.c = 0
		case KindGauge:
			*e.g = 0
		case KindHistogram:
			e.h.Reset()
		}
	}
}

// Scope returns a child scope of the registry root. Multiple path segments
// are joined with dots: r.Scope("pcie", "bus0") names "pcie.bus0.*".
func (r *Registry) Scope(parts ...string) Scope {
	return Scope{reg: r, prefix: strings.Join(parts, ".")}
}

// UniqueScope returns a scope with the given name, or name#2, name#3, …
// when earlier instances already claimed it — how components that can be
// instantiated several times per cluster (RPC servers) stay collision-free
// while the common single-instance case keeps the clean name.
func (r *Registry) UniqueScope(name string) Scope {
	r.scopeUse[name]++
	if n := r.scopeUse[name]; n > 1 {
		name = fmt.Sprintf("%s#%d", name, n)
	}
	return Scope{reg: r, prefix: name}
}

// Scope is a naming context inside a registry. The zero Scope is valid and
// detached: metric constructors return working cells that are simply not
// registered, and Trace() returns a shared disabled sink.
type Scope struct {
	reg    *Registry
	prefix string
}

// Registry returns the owning registry (nil for a detached scope).
func (s Scope) Registry() *Registry { return s.reg }

// Name returns the scope's full prefix.
func (s Scope) Name() string { return s.prefix }

// Scope returns a child scope.
func (s Scope) Scope(parts ...string) Scope {
	child := strings.Join(parts, ".")
	if s.prefix != "" && child != "" {
		child = s.prefix + "." + child
	} else if child == "" {
		child = s.prefix
	}
	return Scope{reg: s.reg, prefix: child}
}

func (s Scope) full(name string) string {
	if s.prefix == "" {
		return name
	}
	return s.prefix + "." + name
}

// Counter creates and registers a registry-owned counter.
func (s Scope) Counter(name string) *Counter {
	c := &Counter{}
	if s.reg != nil {
		s.reg.register(s.full(name), &entry{kind: KindCounter, c: &c.v})
	}
	return c
}

// CounterVar registers an existing uint64 cell — typically a field of a
// component's stats struct — as a counter. The struct remains the storage;
// the registry observes it through the pointer.
func (s Scope) CounterVar(name string, v *uint64) {
	if s.reg != nil && v != nil {
		s.reg.register(s.full(name), &entry{kind: KindCounter, c: v})
	}
}

// Gauge creates and registers a registry-owned gauge.
func (s Scope) Gauge(name string) *Gauge {
	g := &Gauge{}
	if s.reg != nil {
		s.reg.register(s.full(name), &entry{kind: KindGauge, g: &g.v})
	}
	return g
}

// GaugeVar registers an existing float64 cell as a gauge.
func (s Scope) GaugeVar(name string, v *float64) {
	if s.reg != nil && v != nil {
		s.reg.register(s.full(name), &entry{kind: KindGauge, g: v})
	}
}

// Histogram creates and registers a log-bucket histogram.
func (s Scope) Histogram(name string) *Histogram {
	h := &Histogram{}
	if s.reg != nil {
		s.reg.register(s.full(name), &entry{kind: KindHistogram, h: h})
	}
	return h
}

// noTrace is the shared disabled sink detached scopes hand out, so callers
// can always test `trace.Enabled` without a nil check.
var noTrace = &Trace{}

// Trace returns the registry's trace sink, or a shared disabled sink for a
// detached scope.
func (s Scope) Trace() *Trace {
	if s.reg == nil {
		return noTrace
	}
	return &s.reg.trace
}
