package telemetry

import "scalerpc/internal/sim"

// DefaultTraceCap bounds how many trace events a Trace retains; further
// emissions are counted in Dropped. The cap keeps metrics-enabled runs of
// high-rate workloads (a warmup fetch per RDMA READ, a state transition
// per request) from growing without bound.
const DefaultTraceCap = 65536

// Attr is one key/value attribute of a trace event. Values are int64 —
// enough for ids, zones, epochs and virtual-time stamps.
type Attr struct {
	K string
	V int64
}

// A builds an attribute.
func A(k string, v int64) Attr { return Attr{K: k, V: v} }

// Event is one structured trace event.
type Event struct {
	At    sim.Time
	Kind  string
	Attrs []Attr
}

// Trace collects structured events (context switches, warmup fetches,
// QP-cache evictions, client state transitions). Emission is gated on
// Enabled; callers on hot paths should check Enabled before building
// attributes so a disabled trace costs one predictable branch.
type Trace struct {
	Enabled bool
	// Cap overrides DefaultTraceCap when positive.
	Cap     int
	Events  []Event
	Dropped uint64
}

// Emit appends one event if the trace is enabled and under its cap.
func (t *Trace) Emit(at sim.Time, kind string, attrs ...Attr) {
	if !t.Enabled {
		return
	}
	cap := t.Cap
	if cap <= 0 {
		cap = DefaultTraceCap
	}
	if len(t.Events) >= cap {
		t.Dropped++
		return
	}
	t.Events = append(t.Events, Event{At: at, Kind: kind, Attrs: attrs})
}

// Reset discards collected events but keeps the enabled state.
func (t *Trace) Reset() {
	t.Events = nil
	t.Dropped = 0
}
