package telemetry

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"scalerpc/internal/sim"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope("nic0")
	c := sc.Counter("qpc.miss")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if v, ok := r.Value("nic0.qpc.miss"); !ok || v != 5 {
		t.Fatalf("registry value = %v, %v", v, ok)
	}

	g := sc.Gauge("priority")
	g.Set(1.5)
	g.Add(0.5)
	if g.Value() != 2 {
		t.Fatalf("gauge = %g", g.Value())
	}

	h := sc.Histogram("lat")
	h.Observe(0)
	h.Observe(1)
	h.Observe(3)
	h.Observe(1 << 40)
	if h.Count() != 4 || h.Sum() != 4+1<<40 {
		t.Fatalf("hist count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.buckets[0] != 1 || h.buckets[1] != 1 || h.buckets[2] != 1 || h.buckets[41] != 1 {
		t.Fatalf("buckets = %v", h.buckets[:42])
	}
}

func TestCounterVarObservesStructField(t *testing.T) {
	type statsStruct struct{ Hits uint64 }
	var st statsStruct
	r := NewRegistry()
	r.Scope("llc0").CounterVar("hit", &st.Hits)
	st.Hits = 7
	if v, _ := r.Value("llc0.hit"); v != 7 {
		t.Fatalf("value through pointer = %g, want 7", v)
	}
	// Zero-value struct assignment (the component Reset idiom) must be
	// visible through the registered pointer.
	st = statsStruct{}
	if v, _ := r.Value("llc0.hit"); v != 0 {
		t.Fatalf("value after reset = %g, want 0", v)
	}
}

func TestRegistryResetZeroesAllKinds(t *testing.T) {
	r := NewRegistry()
	var raw uint64 = 9
	sc := r.Scope("x")
	sc.CounterVar("raw", &raw)
	c := sc.Counter("c")
	c.Add(3)
	g := sc.Gauge("g")
	g.Set(2)
	h := sc.Histogram("h")
	h.Observe(10)
	r.Reset()
	if raw != 0 || c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("reset left raw=%d c=%d g=%g h=%d", raw, c.Value(), g.Value(), h.Count())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate metric name")
		}
	}()
	r := NewRegistry()
	r.Scope("a").Counter("x")
	r.Scope("a").Counter("x")
}

func TestUniqueScopeSuffixesRepeats(t *testing.T) {
	r := NewRegistry()
	a := r.UniqueScope("scalerpc")
	b := r.UniqueScope("scalerpc")
	if a.Name() != "scalerpc" || b.Name() != "scalerpc#2" {
		t.Fatalf("scopes = %q, %q", a.Name(), b.Name())
	}
	a.Counter("server.switches")
	b.Counter("server.switches") // must not collide
}

func TestDetachedScopeIsFreeAndSafe(t *testing.T) {
	var sc Scope // zero value: no registry
	c := sc.Counter("x")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("detached counter does not count")
	}
	var v uint64
	sc.CounterVar("y", &v) // no-op, no panic
	tr := sc.Trace()
	if tr == nil || tr.Enabled {
		t.Fatal("detached trace must be a disabled sink")
	}
	tr.Emit(0, "nope")
	if len(tr.Events) != 0 {
		t.Fatal("disabled trace recorded an event")
	}
}

func TestTraceCapAndReset(t *testing.T) {
	tr := &Trace{Enabled: true, Cap: 2}
	tr.Emit(1, "a", A("k", 1))
	tr.Emit(2, "b")
	tr.Emit(3, "c")
	if len(tr.Events) != 2 || tr.Dropped != 1 {
		t.Fatalf("events=%d dropped=%d", len(tr.Events), tr.Dropped)
	}
	tr.Reset()
	if len(tr.Events) != 0 || tr.Dropped != 0 || !tr.Enabled {
		t.Fatal("reset broke trace state")
	}
}

func TestSamplerRecordsSeries(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	r := NewRegistry()
	c := r.Scope("nic0").Counter("out.wqes")
	r.Scope("other").Counter("ignored")
	s := r.Sample(env, 100, 1000, "nic0.*")

	env.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			c.Add(2)
			p.Sleep(100)
		}
	})
	env.RunUntil(1000)

	list := s.SeriesList()
	if len(list) != 1 || list[0].Metric != "nic0.out.wqes" {
		t.Fatalf("series = %+v", list)
	}
	se := list[0]
	if len(se.T) != 10 {
		t.Fatalf("ticks = %d, want 10", len(se.T))
	}
	if se.T[0] != 100 || se.V[0] != 2 {
		// The t=100 tick was scheduled at Sample() time, before the
		// process's t=100 wake-up, so same-instant ordering lets the
		// sampler observe only the t=0 increment.
		t.Fatalf("first sample = (%d, %g)", se.T[0], se.V[0])
	}
	if se.V[len(se.V)-1] != 20 {
		t.Fatalf("last sample = %g, want 20", se.V[len(se.V)-1])
	}
}

func TestSamplerStopsAtHorizon(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	r := NewRegistry()
	r.Scope("a").Counter("x")
	s := r.Sample(env, 100, 250, "*")
	// Run to exhaustion: the sampler must not keep the env alive forever.
	env.Run()
	if n := len(s.SeriesList()[0].T); n != 2 {
		t.Fatalf("samples = %d, want 2 (t=100, t=200)", n)
	}
}

func TestJSONDumpDeterministicAndComplete(t *testing.T) {
	build := func() *Registry {
		env := sim.NewEnv()
		defer env.Close()
		r := NewRegistry()
		r.EnableTrace()
		c := r.Scope("nic0").Counter("out.wqes")
		g := r.Scope("scalerpc.client", "17").Gauge("priority")
		h := r.Scope("scalerpc.server").Histogram("handler_ns")
		r.Sample(env, 50, 200, "nic0.*")
		env.Spawn("w", func(p *sim.Proc) {
			for i := 0; i < 4; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(uint64(100 * i))
				r.Trace().Emit(p.Now(), "tick", A("i", int64(i)))
				p.Sleep(50)
			}
		})
		env.RunUntil(200)
		return r
	}
	j1 := build().JSON()
	j2 := build().JSON()
	if !bytes.Equal(j1, j2) {
		t.Fatal("two identical runs produced different JSON")
	}
	var d map[string]any
	if err := json.Unmarshal(j1, &d); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	s := string(j1)
	for _, want := range []string{"nic0.out.wqes", "scalerpc.client.17.priority", "scalerpc.server.handler_ns", `"series"`, `"trace"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("dump missing %q:\n%s", want, s)
		}
	}
}

func TestHistogramQuantileInterpolates(t *testing.T) {
	// Against an exact sorted reference over a uniform distribution the
	// log2-bucket interpolation should land well inside the factor-of-two
	// bucket width (uniform mass is the interpolation's model, so the error
	// is dominated by within-bucket density mismatch at the extremes).
	h := &Histogram{}
	const n = 100000
	samples := make([]uint64, 0, n)
	seed := uint64(12345)
	for i := 0; i < n; i++ {
		// splitmix-style scramble for a cheap deterministic uniform stream.
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		v := (z^(z>>27))%1_000_000 + 1
		h.Observe(v)
		samples = append(samples, v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		want := float64(samples[int(q*float64(n-1))])
		relErr := got/want - 1
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > 0.30 {
			t.Errorf("q=%v: interpolated %.0f vs exact %.0f (rel err %.3f)", q, got, want, relErr)
		}
	}
	// Monotone in q and bounded by the bucket ceiling.
	prev := 0.0
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %f < %f", q, v, prev)
		}
		prev = v
	}
	if h.Quantile(1) > 1<<21 {
		t.Fatalf("q=1 escaped the top bucket: %f", h.Quantile(1))
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestHistogramQuantileZeroBucket(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 10; i++ {
		h.Observe(0)
	}
	h.Observe(1024)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("median of mostly-zero observations = %f, want 0", got)
	}
	if got := h.Quantile(0.99); got < 1024 || got >= 2048 {
		t.Fatalf("p99 = %f, want within [1024, 2048)", got)
	}
}
