package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// jsonHistBucket is one non-empty log2 bucket: values v with
// bits.Len64(v) == Bit, i.e. 2^(Bit-1) ≤ v < 2^Bit (Bit 0 holds v == 0).
type jsonHistBucket struct {
	Bit int    `json:"bit"`
	N   uint64 `json:"n"`
}

type jsonHist struct {
	Count   uint64           `json:"count"`
	Sum     uint64           `json:"sum"`
	Buckets []jsonHistBucket `json:"buckets"`
}

type jsonSeries struct {
	Metric     string    `json:"metric"`
	IntervalNs int64     `json:"interval_ns"`
	T          []int64   `json:"t_ns"`
	V          []float64 `json:"v"`
}

type jsonAttrs map[string]int64

type jsonEvent struct {
	AtNs  int64     `json:"t_ns"`
	Kind  string    `json:"kind"`
	Attrs jsonAttrs `json:"attrs,omitempty"`
}

type jsonDump struct {
	Counters     map[string]uint64   `json:"counters"`
	Gauges       map[string]float64  `json:"gauges,omitempty"`
	Histograms   map[string]jsonHist `json:"histograms,omitempty"`
	Series       []jsonSeries        `json:"series,omitempty"`
	Trace        []jsonEvent         `json:"trace,omitempty"`
	TraceDropped uint64              `json:"trace_dropped,omitempty"`
}

// dump builds the serializable view of the registry. encoding/json emits
// map keys in sorted order, which (with the sorted series slice and the
// emission-ordered trace) makes the output deterministic byte-for-byte.
func (r *Registry) dump() jsonDump {
	d := jsonDump{Counters: map[string]uint64{}}
	for name, e := range r.entries {
		switch e.kind {
		case KindCounter:
			d.Counters[name] = *e.c
		case KindGauge:
			if d.Gauges == nil {
				d.Gauges = map[string]float64{}
			}
			d.Gauges[name] = *e.g
		case KindHistogram:
			if d.Histograms == nil {
				d.Histograms = map[string]jsonHist{}
			}
			jh := jsonHist{Count: e.h.count, Sum: e.h.sum}
			for bit, n := range e.h.buckets {
				if n > 0 {
					jh.Buckets = append(jh.Buckets, jsonHistBucket{Bit: bit, N: n})
				}
			}
			d.Histograms[name] = jh
		}
	}
	for _, s := range r.samplers {
		for _, se := range s.SeriesList() {
			js := jsonSeries{Metric: se.Metric, IntervalNs: int64(s.Interval)}
			for i := range se.T {
				js.T = append(js.T, int64(se.T[i]))
				js.V = append(js.V, se.V[i])
			}
			d.Series = append(d.Series, js)
		}
	}
	sort.SliceStable(d.Series, func(i, j int) bool { return d.Series[i].Metric < d.Series[j].Metric })
	for _, ev := range r.trace.Events {
		je := jsonEvent{AtNs: int64(ev.At), Kind: ev.Kind}
		if len(ev.Attrs) > 0 {
			je.Attrs = jsonAttrs{}
			for _, a := range ev.Attrs {
				je.Attrs[a.K] = a.V
			}
		}
		d.Trace = append(d.Trace, je)
	}
	d.TraceDropped = r.trace.Dropped
	return d
}

// MarshalJSON implements json.Marshaler with deterministic output.
func (r *Registry) MarshalJSON() ([]byte, error) { return json.Marshal(r.dump()) }

// JSON returns the indented registry dump.
func (r *Registry) JSON() []byte {
	b, err := json.MarshalIndent(r.dump(), "", " ")
	if err != nil { // all value types are marshalable; unreachable
		panic(err)
	}
	return b
}

// WriteJSON writes the indented registry dump to w.
func (r *Registry) WriteJSON(w io.Writer) error {
	_, err := w.Write(r.JSON())
	return err
}
