package telemetry

import (
	"strings"

	"scalerpc/internal/sim"
)

// Series is one sampled time series of a registered metric: cumulative
// values at each tick of virtual time.
type Series struct {
	Metric string
	T      []sim.Time
	V      []float64
}

// Sampler records time series of registered metrics at a fixed virtual-time
// interval. Metrics are selected by pattern: an exact name, a prefix ending
// in '*' ("nic0.*"), or the lone "*" for everything. Patterns are
// re-evaluated at every tick, so metrics registered mid-run (per-client
// scopes) join their series at the next tick.
type Sampler struct {
	Interval sim.Duration

	reg      *Registry
	patterns []string
	until    sim.Time
	stopped  bool

	series map[string]*Series
	order  []string // series creation order, deterministic
}

// Sample starts a sampler on env that ticks every interval up to and
// including the until horizon (a positive until is required so an
// Env.Run() to exhaustion cannot be kept alive forever by the sampler).
// The first tick fires at t=interval.
func (r *Registry) Sample(env *sim.Env, interval sim.Duration, until sim.Time, patterns ...string) *Sampler {
	if interval <= 0 {
		panic("telemetry: non-positive sample interval")
	}
	if until <= 0 {
		panic("telemetry: sampler needs a positive horizon")
	}
	s := &Sampler{
		Interval: interval,
		reg:      r,
		patterns: patterns,
		until:    until,
		series:   make(map[string]*Series),
	}
	r.samplers = append(r.samplers, s)
	var tick func()
	tick = func() {
		if s.stopped || env.Now() > s.until {
			return
		}
		s.record(env.Now())
		if env.Now()+interval <= s.until {
			env.At(interval, tick)
		}
	}
	env.At(interval, tick)
	return s
}

// Stop ends sampling early; already recorded points are kept.
func (s *Sampler) Stop() { s.stopped = true }

// Series returns the recorded series in first-match order.
func (s *Sampler) SeriesList() []*Series {
	out := make([]*Series, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, s.series[name])
	}
	return out
}

func (s *Sampler) match(name string) bool {
	for _, p := range s.patterns {
		if p == "*" || p == name {
			return true
		}
		if strings.HasSuffix(p, "*") && strings.HasPrefix(name, p[:len(p)-1]) {
			return true
		}
	}
	return false
}

// record appends one sample of every matching metric.
func (s *Sampler) record(now sim.Time) {
	for _, name := range s.reg.order {
		if !s.match(name) {
			continue
		}
		se := s.series[name]
		if se == nil {
			se = &Series{Metric: name}
			s.series[name] = se
			s.order = append(s.order, name)
		}
		se.T = append(se.T, now)
		se.V = append(se.V, s.reg.entries[name].value())
	}
}
