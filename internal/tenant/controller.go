// The online SLO controller: loadgen.SLO promoted from offline judge to a
// control loop. Every Interval of virtual time it closes a sliding window
// over the protected tenant's latency telemetry (histogram delta since the
// previous tick) and walks an escalation ladder against the bulk tenants
// when the window violates, with hysteresis so a single bad or good window
// cannot flap the levers. Everything is driven by the simulation clock and
// the sampled counters, so a run is byte-deterministic per seed.
package tenant

import (
	"fmt"

	"scalerpc/internal/loadgen"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
)

// Sample reads the protected tenant's cumulative telemetry: its latency
// histogram and offered/completed totals. The controller windows the
// cumulative values itself (loadgen.Runner.TenantSample and the chaos
// driver's recorder both fit).
type Sample func() (lat *stats.Histogram, offered, completed uint64)

// ControllerConfig tunes the control loop.
type ControllerConfig struct {
	// Interval is the sampling period (virtual time).
	Interval sim.Duration
	// TripWindows is how many consecutive violating windows escalate one
	// ladder level; ClearWindows is how many consecutive passing windows
	// de-escalate one level. ClearWindows > TripWindows gives downward
	// hysteresis: relief must hold longer than pressure did.
	TripWindows  int
	ClearWindows int
	// MinSamples ignores windows with fewer completions (no evidence
	// either way — streaks are left untouched).
	MinSamples uint64
	// WeightFactor is the level-1 slice-weight multiplier applied to the
	// shedding targets.
	WeightFactor float64
}

// DefaultControllerConfig samples every 200µs and needs two bad windows
// to escalate, four good ones to recover.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{
		Interval:     200 * sim.Microsecond,
		TripWindows:  2,
		ClearWindows: 4,
		MinSamples:   16,
		WeightFactor: 0.25,
	}
}

// maxLevel is the top of the escalation ladder.
const maxLevel = 3

// Action is one ladder move, logged for attribution and testing.
type Action struct {
	At    sim.Time
	Level int // ladder level after the move
	What  string
}

// Controller protects one latency tenant's SLO by shedding the bulk
// tenants. Ladder levels, cumulative:
//
//	0: hands off (declared weights and classes, admissions open)
//	1: shrink the targets' slice weights by WeightFactor
//	2: demote the targets to ClassBestEffort
//	3: shed the targets' new admissions (queued or rejected per quota)
//
// Existing connections are never torn down — level 3 stops the bleeding
// at the door while levels 1–2 squeeze the rotation share of what is
// already inside.
type Controller struct {
	M   *Manager
	Cfg ControllerConfig

	protected uint16
	targets   []uint16
	src       Sample
	win       loadgen.SLOWindow

	level      int
	failStreak int
	passStreak int
	stopped    bool

	// Actions is the deterministic log of ladder moves.
	Actions []Action
	// Windows counts evaluated (non-skipped) windows; Violations counts
	// the ones that failed.
	Windows    uint64
	Violations uint64
}

// NewController builds a controller protecting tenant `protected` against
// every registered tenant of ClassBulk or below (by declared class). Call
// after all tenants are registered.
func (m *Manager) NewController(protected uint16, slo loadgen.SLO, src Sample, cfg ControllerConfig) *Controller {
	if cfg.Interval <= 0 {
		cfg = DefaultControllerConfig()
	}
	if cfg.WeightFactor <= 0 {
		cfg.WeightFactor = 0.25
	}
	if cfg.TripWindows <= 0 {
		cfg.TripWindows = 1
	}
	if cfg.ClearWindows <= 0 {
		cfg.ClearWindows = 1
	}
	c := &Controller{
		M:         m,
		Cfg:       cfg,
		protected: protected,
		src:       src,
		win:       loadgen.SLOWindow{SLO: slo},
	}
	for id, st := range m.tenants {
		if uint16(id) != protected && id != 0 && st.spec.Quota.Class >= ClassBulk {
			c.targets = append(c.targets, uint16(id))
		}
	}
	return c
}

// Start arms the control loop on env's virtual clock.
func (c *Controller) Start(env *sim.Env) {
	var tick func()
	tick = func() {
		if c.stopped {
			return
		}
		c.Step(env.Now())
		env.At(c.Cfg.Interval, tick)
	}
	env.At(c.Cfg.Interval, tick)
}

// Stop disarms the loop (the pending callback becomes a no-op).
func (c *Controller) Stop() { c.stopped = true }

// Step evaluates one window and moves the ladder. Exposed so tests and
// custom drivers can clock the controller directly.
func (c *Controller) Step(now sim.Time) {
	lat, offered, completed := c.src()
	pass, _, n := c.win.Advance(lat, offered, completed)
	if n < c.Cfg.MinSamples {
		return
	}
	c.Windows++
	if pass {
		c.failStreak = 0
		c.passStreak++
		if c.passStreak >= c.Cfg.ClearWindows && c.level > 0 {
			c.passStreak = 0
			c.setLevel(now, c.level-1)
		}
		return
	}
	c.Violations++
	c.passStreak = 0
	c.failStreak++
	if c.failStreak >= c.Cfg.TripWindows && c.level < maxLevel {
		c.failStreak = 0
		c.setLevel(now, c.level+1)
	}
}

// Level returns the current ladder level.
func (c *Controller) Level() int { return c.level }

// setLevel applies every lever for the new level to all targets and logs
// the move.
func (c *Controller) setLevel(now sim.Time, level int) {
	c.level = level
	for _, id := range c.targets {
		st := c.M.state(id)
		if level >= 1 {
			c.M.setWeightScale(id, c.Cfg.WeightFactor)
		} else {
			c.M.setWeightScale(id, 1)
		}
		if level >= 2 {
			c.M.setClass(id, ClassBestEffort)
		} else {
			c.M.setClass(id, st.spec.Quota.Class)
		}
		c.M.setShed(id, level >= 3)
	}
	c.Actions = append(c.Actions, Action{At: now, Level: level, What: levelWhat(level)})
}

func levelWhat(level int) string {
	switch level {
	case 0:
		return "restore declared weights, classes and admissions"
	case 1:
		return "shrink bulk slice weights"
	case 2:
		return "demote bulk tenants to best-effort"
	case 3:
		return "shed new bulk admissions"
	}
	return fmt.Sprintf("level %d", level)
}
