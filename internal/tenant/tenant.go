// Package tenant is the multi-tenant QoS and admission-control subsystem:
// a registry of tenants with declarative quotas (connections, reserved
// zones, fair-share weight, scheduling class), enforced at connection
// setup through the control plane's pre-admission gate and at steady
// state through the ScaleRPC scheduler's tenant hooks.
//
// The Manager satisfies scalerpc.TenantAuthority and rawrpc.TenantGate
// structurally — both packages declare their own interface, so neither
// depends on this one. Admission decisions are a pure function (Decide)
// over the tenant's quota and live usage, which keeps the control plane's
// repeated gate checks (pre-admit, queue retries, Accept/Resume) free of
// side effects and makes the decision table directly testable.
//
// The online SLO controller lives in controller.go.
package tenant

import (
	"fmt"

	"scalerpc/internal/ctrlplane"
	"scalerpc/internal/telemetry"
)

// Class is a tenant's scheduling class. The ScaleRPC scheduler never mixes
// classes inside one group, so lower classes rotate in groups that higher
// (bulk) classes cannot inflate; the class also orders groups within the
// rotation. Lower value = more latency-sensitive.
type Class uint8

const (
	// ClassLatency tenants get class-pure groups at the front of the
	// rotation and are the SLO controller's protected parties.
	ClassLatency Class = iota
	// ClassBulk tenants are throughput-oriented and the controller's
	// shedding targets.
	ClassBulk
	// ClassBestEffort is where the controller demotes misbehaving bulk
	// tenants; it sorts last and holds no service guarantee.
	ClassBestEffort
)

func (c Class) String() string {
	switch c {
	case ClassLatency:
		return "latency"
	case ClassBulk:
		return "bulk"
	case ClassBestEffort:
		return "best-effort"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Quota declares a tenant's resource envelope.
type Quota struct {
	// MaxConns caps live connections (0 = unlimited). On the RawWrite
	// baseline every connection owns a statically mapped zone for the
	// lifetime of its identity, so MaxConns doubles as the zone-footprint
	// cap there.
	MaxConns int
	// ReservedZones caps how many reserved (pinned) ScaleRPC zones the
	// tenant may hold; a pinned join beyond the cap is admitted degraded
	// to the shared rotation rather than refused.
	ReservedZones int
	// Weight is the fair-share weight of the tenant's time slices
	// (0 means 1). The scheduler scales a group's slice by the ratio of
	// the group's mean member weight to the population mean.
	Weight float64
	// Class is the tenant's scheduling class.
	Class Class
	// QueueOverQuota parks over-quota dials in the control plane's
	// admission queue (released when quota frees, rejected on timeout)
	// instead of rejecting them immediately.
	QueueOverQuota bool
}

// Spec names a tenant and its quota.
type Spec struct {
	Name  string
	Quota Quota
}

// Decision is the outcome of an admission check.
type Decision uint8

const (
	// Admit lets the connection in as requested.
	Admit Decision = iota
	// AdmitUnpinned lets the connection in but denies its reserved-zone
	// request (degraded to the shared rotation).
	AdmitUnpinned
	// Queue parks the dial in the control plane's admission queue.
	Queue
	// Reject refuses the dial outright.
	Reject
)

func (d Decision) String() string {
	switch d {
	case Admit:
		return "admit"
	case AdmitUnpinned:
		return "admit-unpinned"
	case Queue:
		return "queue"
	case Reject:
		return "reject"
	}
	return fmt.Sprintf("decision(%d)", uint8(d))
}

// Decide is the pure admission rule: given a tenant's quota, its live
// usage (connections, pinned zones held), whether the dial requests a
// pinned zone, and whether the controller is shedding the tenant, it
// returns the decision and whether a pinned request is granted.
// Shedding and connection overflow refuse the dial (queued or rejected
// per QueueOverQuota); a pinned request beyond the zone quota merely
// degrades to unpinned.
func Decide(q Quota, live, pinnedLive int, pinned, shed bool) (Decision, bool) {
	refuse := func() (Decision, bool) {
		if q.QueueOverQuota {
			return Queue, false
		}
		return Reject, false
	}
	if shed {
		return refuse()
	}
	if q.MaxConns > 0 && live >= q.MaxConns {
		return refuse()
	}
	if pinned {
		if pinnedLive >= q.ReservedZones {
			return AdmitUnpinned, false
		}
		return Admit, true
	}
	return Admit, false
}

// state is the Manager's live view of one tenant.
type state struct {
	spec Spec

	// Live usage, maintained by ConnOpened/ConnClosed (the servers
	// guarantee they pair).
	live       int
	pinnedLive int

	// Controller levers (controller.go). weightScale multiplies the
	// declared weight; class overrides the declared class; shed refuses
	// new admissions.
	weightScale float64
	class       Class
	shed        bool

	// Attribution counters, registered under the tenant's telemetry scope.
	opened, closed uint64
	served, bytes  uint64

	gConns  *telemetry.Gauge
	gWeight *telemetry.Gauge
	gClass  *telemetry.Gauge
	gShed   *telemetry.Gauge
}

func (st *state) weight() float64 {
	w := st.spec.Quota.Weight
	if w <= 0 {
		w = 1
	}
	return w * st.weightScale
}

// Manager is the tenant registry and the admission/scheduling authority
// handed to servers. All methods run on server-host threads inside the
// single-threaded simulation; no locking.
type Manager struct {
	tenants []*state
	byName  map[string]uint16
	tel     telemetry.Scope
}

// NewManager builds a registry with tenant 0 pre-registered as the
// unlimited "default" tenant, the attribution bucket for unmanaged
// clients (legacy Join paths stamp tenant 0).
func NewManager(tel telemetry.Scope) *Manager {
	m := &Manager{byName: make(map[string]uint16), tel: tel}
	m.Register(Spec{Name: "default", Quota: Quota{ReservedZones: 1 << 20}})
	return m
}

// Register adds a tenant and returns its id (stamped into join payloads).
// Names must be unique; registration order fixes ids, so register in a
// deterministic order.
func (m *Manager) Register(spec Spec) uint16 {
	if _, dup := m.byName[spec.Name]; dup {
		panic("tenant: duplicate tenant name " + spec.Name)
	}
	id := uint16(len(m.tenants))
	st := &state{spec: spec, weightScale: 1, class: spec.Quota.Class}
	sc := m.tel.Scope("tenant", spec.Name)
	sc.CounterVar("conns_opened", &st.opened)
	sc.CounterVar("conns_closed", &st.closed)
	sc.CounterVar("served", &st.served)
	sc.CounterVar("bytes", &st.bytes)
	st.gConns = sc.Gauge("conns")
	st.gWeight = sc.Gauge("weight")
	st.gClass = sc.Gauge("class")
	st.gShed = sc.Gauge("shed")
	st.gWeight.Set(st.weight())
	st.gClass.Set(float64(st.class))
	m.tenants = append(m.tenants, st)
	m.byName[spec.Name] = id
	return id
}

// Lookup returns a registered tenant's id by name.
func (m *Manager) Lookup(name string) (uint16, bool) {
	id, ok := m.byName[name]
	return id, ok
}

// state clamps unknown ids to the default tenant so a stray payload
// cannot index out of range.
func (m *Manager) state(tenant uint16) *state {
	if int(tenant) >= len(m.tenants) {
		tenant = 0
	}
	return m.tenants[tenant]
}

// AdmitConn implements the admission gate (scalerpc.TenantAuthority,
// rawrpc.TenantGate). Side-effect free: the control plane calls it in the
// pre-admission gate, on every admission-queue retry, and again in
// Accept/Resume.
func (m *Manager) AdmitConn(tenant uint16, pinned bool) (bool, error) {
	st := m.state(tenant)
	d, granted := Decide(st.spec.Quota, st.live, st.pinnedLive, pinned, st.shed)
	switch d {
	case Queue:
		return false, fmt.Errorf("tenant %s over quota: %w", st.spec.Name, ctrlplane.ErrAdmitQueue)
	case Reject:
		if st.shed {
			return false, fmt.Errorf("tenant %s: shed by SLO controller", st.spec.Name)
		}
		return false, fmt.Errorf("tenant %s: connection quota exceeded (%d live, max %d)",
			st.spec.Name, st.live, st.spec.Quota.MaxConns)
	}
	return granted, nil
}

// Decide exposes the decision (without the error mapping) for tests and
// diagnostics.
func (m *Manager) Decide(tenant uint16, pinned bool) (Decision, bool) {
	st := m.state(tenant)
	return Decide(st.spec.Quota, st.live, st.pinnedLive, pinned, st.shed)
}

// ConnOpened records an admitted connection (pinned = it holds a reserved
// zone, or any RawWrite zone).
func (m *Manager) ConnOpened(tenant uint16, pinned bool) {
	st := m.state(tenant)
	st.live++
	st.opened++
	if pinned {
		st.pinnedLive++
	}
	st.gConns.Set(float64(st.live))
}

// ConnClosed records a departed connection.
func (m *Manager) ConnClosed(tenant uint16, pinned bool) {
	st := m.state(tenant)
	st.live--
	st.closed++
	if pinned {
		st.pinnedLive--
	}
	st.gConns.Set(float64(st.live))
}

// Live returns a tenant's live connection and pinned-zone counts.
func (m *Manager) Live(tenant uint16) (conns, pinned int) {
	st := m.state(tenant)
	return st.live, st.pinnedLive
}

// SliceWeight returns the tenant's effective fair-share weight: the
// declared weight scaled by the controller's lever.
func (m *Manager) SliceWeight(tenant uint16) float64 { return m.state(tenant).weight() }

// GroupClass returns the tenant's effective scheduling class (the
// controller may have demoted it).
func (m *Manager) GroupClass(tenant uint16) int { return int(m.state(tenant).class) }

// SliceAccount attributes one client's slice window to its tenant.
func (m *Manager) SliceAccount(tenant uint16, served, bytes uint64) {
	st := m.state(tenant)
	st.served += served
	st.bytes += bytes
}

// Served returns a tenant's attributed request and byte totals.
func (m *Manager) Served(tenant uint16) (served, bytes uint64) {
	st := m.state(tenant)
	return st.served, st.bytes
}

// setWeightScale, setClass and setShed are the controller's levers.
func (m *Manager) setWeightScale(tenant uint16, scale float64) {
	st := m.state(tenant)
	st.weightScale = scale
	st.gWeight.Set(st.weight())
}

func (m *Manager) setClass(tenant uint16, c Class) {
	st := m.state(tenant)
	st.class = c
	st.gClass.Set(float64(c))
}

func (m *Manager) setShed(tenant uint16, shed bool) {
	st := m.state(tenant)
	st.shed = shed
	if shed {
		st.gShed.Set(1)
	} else {
		st.gShed.Set(0)
	}
}
