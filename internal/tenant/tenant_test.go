package tenant_test

import (
	"errors"
	"testing"

	"scalerpc/internal/baseline/rawrpc"
	"scalerpc/internal/cluster"
	"scalerpc/internal/ctrlplane"
	"scalerpc/internal/host"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
	"scalerpc/internal/telemetry"
	"scalerpc/internal/tenant"
)

// The Manager must satisfy both data planes' locally declared interfaces.
var (
	_ scalerpc.TenantAuthority = (*tenant.Manager)(nil)
	_ rawrpc.TenantGate        = (*tenant.Manager)(nil)
)

// TestDecideTable pins the pure admission rule across the quota/usage
// space: admit, degrade (pinned denied), queue and reject.
func TestDecideTable(t *testing.T) {
	cases := []struct {
		name             string
		q                tenant.Quota
		live, pinnedLive int
		pinned, shed     bool
		want             tenant.Decision
		wantGrant        bool
	}{
		{name: "unlimited admits", q: tenant.Quota{}, live: 1000, want: tenant.Admit},
		{name: "under conn quota", q: tenant.Quota{MaxConns: 4}, live: 3, want: tenant.Admit},
		{name: "at conn quota rejects", q: tenant.Quota{MaxConns: 4}, live: 4, want: tenant.Reject},
		{name: "at conn quota queues", q: tenant.Quota{MaxConns: 4, QueueOverQuota: true}, live: 4, want: tenant.Queue},
		{name: "pinned granted under zone quota", q: tenant.Quota{ReservedZones: 2}, pinnedLive: 1, pinned: true,
			want: tenant.Admit, wantGrant: true},
		{name: "pinned degrades at zone quota", q: tenant.Quota{ReservedZones: 2}, pinnedLive: 2, pinned: true,
			want: tenant.AdmitUnpinned},
		{name: "pinned degrades with no zone quota", q: tenant.Quota{}, pinned: true, want: tenant.AdmitUnpinned},
		{name: "shed rejects under quota", q: tenant.Quota{MaxConns: 8}, live: 0, shed: true, want: tenant.Reject},
		{name: "shed queues when queueing", q: tenant.Quota{MaxConns: 8, QueueOverQuota: true}, shed: true,
			want: tenant.Queue},
		{name: "conn quota beats pinned grant", q: tenant.Quota{MaxConns: 1, ReservedZones: 4}, live: 1, pinned: true,
			want: tenant.Reject},
	}
	for _, tc := range cases {
		d, grant := tenant.Decide(tc.q, tc.live, tc.pinnedLive, tc.pinned, tc.shed)
		if d != tc.want || grant != tc.wantGrant {
			t.Errorf("%s: Decide = (%v, %v), want (%v, %v)", tc.name, d, grant, tc.want, tc.wantGrant)
		}
	}
}

// TestManagerAdmitConnMapping checks the decision→error mapping the
// control plane keys on: queueing tenants wrap ErrAdmitQueue, rejecting
// tenants return a plain reason, and usage from ConnOpened/ConnClosed
// moves the decision.
func TestManagerAdmitConnMapping(t *testing.T) {
	m := tenant.NewManager(telemetry.Scope{})
	rej := m.Register(tenant.Spec{Name: "rej", Quota: tenant.Quota{MaxConns: 1}})
	qu := m.Register(tenant.Spec{Name: "qu", Quota: tenant.Quota{MaxConns: 1, QueueOverQuota: true}})

	if _, err := m.AdmitConn(rej, false); err != nil {
		t.Fatalf("under-quota admit: %v", err)
	}
	m.ConnOpened(rej, false)
	if _, err := m.AdmitConn(rej, false); err == nil || errors.Is(err, ctrlplane.ErrAdmitQueue) {
		t.Fatalf("over-quota rejecting tenant: err = %v, want plain reject", err)
	}
	m.ConnClosed(rej, false)
	if _, err := m.AdmitConn(rej, false); err != nil {
		t.Fatalf("admit after close: %v", err)
	}

	m.ConnOpened(qu, false)
	if _, err := m.AdmitConn(qu, false); !errors.Is(err, ctrlplane.ErrAdmitQueue) {
		t.Fatalf("over-quota queueing tenant: err = %v, want ErrAdmitQueue", err)
	}

	// Unknown ids clamp to the unlimited default tenant.
	if _, err := m.AdmitConn(9999, false); err != nil {
		t.Fatalf("unknown tenant: %v", err)
	}
}

// planeServer builds a 3-host cluster with a ScaleRPC server on host 0,
// a tenant authority installed, and control-plane managers everywhere.
func planeServer(t *testing.T, m *tenant.Manager, cfg ctrlplane.Config) (*cluster.Cluster, *scalerpc.Server, *ctrlplane.Directory) {
	t.Helper()
	c := cluster.New(cluster.Default(3))
	scfg := scalerpc.DefaultServerConfig()
	scfg.Workers = 2
	scfg.GroupSize = 8
	scfg.TimeSlice = 50 * sim.Microsecond
	scfg.BlocksPerClient = 8
	scfg.MaxClients = 64
	s := scalerpc.NewServer(c.Hosts[0], scfg)
	s.SetTenantAuthority(m)
	s.Start()
	dir := ctrlplane.NewDirectory()
	for _, h := range c.Hosts {
		ctrlplane.NewManager(h, cfg, dir).Start()
	}
	s.BindControlPlane(dir.Manager(0))
	return c, s, dir
}

func stepUntil(t *testing.T, env *sim.Env, limit sim.Duration, cond func() bool) {
	t.Helper()
	deadline := env.Now() + limit
	for !cond() {
		if env.Now() >= deadline {
			t.Fatalf("condition not reached within %d ns", limit)
		}
		env.RunUntil(env.Now() + 20_000)
	}
}

// TestScaleRPCAdmissionRejectAndDegrade drives the full handshake: a
// rejecting tenant's second dial fails with the quota reason before any
// data-plane state exists, and a pinned join beyond the tenant's zone
// quota is admitted degraded to the shared rotation.
func TestScaleRPCAdmissionRejectAndDegrade(t *testing.T) {
	m := tenant.NewManager(telemetry.Scope{})
	lat := m.Register(tenant.Spec{Name: "lat", Quota: tenant.Quota{MaxConns: 1, ReservedZones: 1}})
	c, s, dir := planeServer(t, m, ctrlplane.DefaultConfig())
	defer c.Close()

	done := 0
	c.Hosts[1].Spawn("dialer", func(th *host.Thread) {
		sig := sim.NewSignal(c.Env)
		conn, err := s.JoinTenant(th, dir, sig, true, lat)
		if err != nil {
			t.Errorf("first join: %v", err)
			done = -1
			return
		}
		if conns, pinned := m.Live(lat); conns != 1 || pinned != 1 {
			t.Errorf("live = (%d, %d), want (1, 1)", conns, pinned)
		}
		// Second connection: over MaxConns, rejected at the gate.
		if _, err := s.JoinTenant(th, dir, sig, false, lat); err == nil {
			t.Error("second join admitted over quota")
		} else {
			var rej *ctrlplane.RejectError
			if !errors.As(err, &rej) {
				t.Errorf("second join error = %v, want RejectError", err)
			}
		}
		// Free the connection; a pinned rejoin now exceeds the zone quota
		// only if the pin were double-counted — it must come back pinned.
		conn.Leave(th)
		th.P.Sleep(100 * sim.Microsecond)
		if conns, pinned := m.Live(lat); conns != 0 || pinned != 0 {
			t.Errorf("live after leave = (%d, %d), want (0, 0)", conns, pinned)
		}
		done = 1
	})
	stepUntil(t, c.Env, 50*sim.Millisecond, func() bool { return done != 0 })

	// Zone-quota degrade: a fresh tenant with no reserved zones joining
	// pinned is admitted unpinned.
	deg := m.Register(tenant.Spec{Name: "deg", Quota: tenant.Quota{MaxConns: 2}})
	done = 0
	c.Hosts[2].Spawn("degraded", func(th *host.Thread) {
		sig := sim.NewSignal(c.Env)
		if _, err := s.JoinTenant(th, dir, sig, true, deg); err != nil {
			t.Errorf("degraded join: %v", err)
			done = -1
			return
		}
		if conns, pinned := m.Live(deg); conns != 1 || pinned != 0 {
			t.Errorf("degraded live = (%d, %d), want (1, 0)", conns, pinned)
		}
		done = 1
	})
	stepUntil(t, c.Env, 50*sim.Millisecond, func() bool { return done != 0 })
}

// TestScaleRPCAdmissionQueue parks an over-quota dial of a queueing
// tenant in the control plane's admission queue and releases it when the
// first connection leaves.
func TestScaleRPCAdmissionQueue(t *testing.T) {
	m := tenant.NewManager(telemetry.Scope{})
	bulk := m.Register(tenant.Spec{Name: "bulk", Quota: tenant.Quota{MaxConns: 1, QueueOverQuota: true}})
	cfg := ctrlplane.DefaultConfig()
	cfg.AdmitQueueTimeout = 2 * sim.Millisecond
	c, s, dir := planeServer(t, m, cfg)
	defer c.Close()

	holder, waiter := 0, 0
	c.Hosts[1].Spawn("holder", func(th *host.Thread) {
		sig := sim.NewSignal(c.Env)
		conn, err := s.JoinTenant(th, dir, sig, false, bulk)
		if err != nil {
			t.Errorf("holder join: %v", err)
			holder = -1
			return
		}
		th.P.Sleep(300 * sim.Microsecond)
		conn.Leave(th)
		holder = 1
	})
	c.Hosts[2].Spawn("waiter", func(th *host.Thread) {
		th.P.Sleep(50 * sim.Microsecond) // let the holder win the slot
		sig := sim.NewSignal(c.Env)
		if _, err := s.JoinTenant(th, dir, sig, false, bulk); err != nil {
			t.Errorf("queued join: %v", err)
			waiter = -1
			return
		}
		waiter = 1
	})
	stepUntil(t, c.Env, 50*sim.Millisecond, func() bool { return holder != 0 && waiter != 0 })
	mgr := dir.Manager(0)
	if mgr.Stats.AdmitQueued == 0 || mgr.Stats.AdmitReleased == 0 {
		t.Fatalf("admit queue stats = %d queued / %d released, want both > 0",
			mgr.Stats.AdmitQueued, mgr.Stats.AdmitReleased)
	}
}

// TestRawWriteZoneQuotaPersistsAcrossLeave pins RawWrite's tenant
// accounting to its non-shrinking footprint: a graceful leave keeps the
// zone charged, so the tenant stays at quota until the identity is
// administratively forgotten.
func TestRawWriteZoneQuotaPersistsAcrossLeave(t *testing.T) {
	m := tenant.NewManager(telemetry.Scope{})
	bulk := m.Register(tenant.Spec{Name: "bulk", Quota: tenant.Quota{MaxConns: 1}})

	c := cluster.New(cluster.Default(3))
	defer c.Close()
	s := rawrpc.NewServer(c.Hosts[0], rawrpc.DefaultServerConfig())
	s.SetTenantGate(m)
	s.Start()
	dir := ctrlplane.NewDirectory()
	for _, h := range c.Hosts {
		ctrlplane.NewManager(h, ctrlplane.DefaultConfig(), dir).Start()
	}
	s.BindControlPlane(dir.Manager(0))

	done := 0
	var heldID uint16
	c.Hosts[1].Spawn("bulk0", func(th *host.Thread) {
		sig := sim.NewSignal(c.Env)
		conn, err := s.JoinTenant(th, dir, sig, bulk)
		if err != nil {
			t.Errorf("first join: %v", err)
			done = -1
			return
		}
		heldID = conn.ID()
		conn.Leave(th)
		done = 1
	})
	stepUntil(t, c.Env, 50*sim.Millisecond, func() bool { return done != 0 })

	// The zone outlives the connection: a second identity of the same
	// tenant is refused even though no connection is live. Dial from the
	// same host as the first identity so the fresh response region cannot
	// alias the parked one (per-host address spaces restart identically).
	done = 0
	c.Hosts[1].Spawn("bulk1", func(th *host.Thread) {
		sig := sim.NewSignal(c.Env)
		if _, err := s.JoinTenant(th, dir, sig, bulk); err == nil {
			t.Error("second identity admitted while the parked zone holds the quota")
		}
		if conns, _ := m.Live(bulk); conns != 1 {
			t.Errorf("live = %d, want 1 (parked zone still charged)", conns)
		}
		// Forgetting the parked identity releases the charge.
		s.Forget(heldID)
		if conns, _ := m.Live(bulk); conns != 0 {
			t.Errorf("live after Forget = %d, want 0", conns)
		}
		if _, err := s.JoinTenant(th, dir, sig, bulk); err != nil {
			t.Errorf("join after Forget: %v", err)
		}
		done = 1
	})
	stepUntil(t, c.Env, 50*sim.Millisecond, func() bool { return done != 0 })
}
