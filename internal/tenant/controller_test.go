package tenant_test

import (
	"testing"

	"scalerpc/internal/loadgen"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
	"scalerpc/internal/telemetry"
	"scalerpc/internal/tenant"
)

// ladderRig builds a manager with one protected latency tenant and one
// bulk target, plus a synthetic cumulative telemetry source the test
// feeds window by window.
type ladderRig struct {
	m    *tenant.Manager
	c    *tenant.Controller
	lat  uint16
	bulk uint16

	hist      *stats.Histogram
	offered   uint64
	completed uint64
	now       sim.Time
}

func newLadderRig(t *testing.T, cfg tenant.ControllerConfig) *ladderRig {
	t.Helper()
	r := &ladderRig{hist: stats.NewHistogram()}
	r.m = tenant.NewManager(telemetry.Scope{})
	r.lat = r.m.Register(tenant.Spec{Name: "lat", Quota: tenant.Quota{Weight: 2, Class: tenant.ClassLatency}})
	r.bulk = r.m.Register(tenant.Spec{Name: "bulk",
		Quota: tenant.Quota{MaxConns: 64, Weight: 1, Class: tenant.ClassBulk}})
	r.c = r.m.NewController(r.lat, loadgen.P99(50), func() (*stats.Histogram, uint64, uint64) {
		return r.hist, r.offered, r.completed
	}, cfg)
	return r
}

// window appends n samples at latUs microseconds to the cumulative
// telemetry and steps the controller once.
func (r *ladderRig) window(n int, latUs int64) {
	for i := 0; i < n; i++ {
		r.hist.Record(latUs * 1000)
	}
	r.offered += uint64(n)
	r.completed += uint64(n)
	r.now += 200_000
	r.c.Step(r.now)
}

// TestControllerEscalationLadder walks the full ladder up under sustained
// violation and back down under sustained relief, checking every lever at
// every level.
func TestControllerEscalationLadder(t *testing.T) {
	cfg := tenant.DefaultControllerConfig()
	cfg.TripWindows = 2
	cfg.ClearWindows = 3
	cfg.MinSamples = 10
	r := newLadderRig(t, cfg)

	check := func(level int, weight float64, class tenant.Class, shed bool) {
		t.Helper()
		if r.c.Level() != level {
			t.Fatalf("level = %d, want %d", r.c.Level(), level)
		}
		if w := r.m.SliceWeight(r.bulk); w != weight {
			t.Fatalf("level %d: bulk weight = %v, want %v", level, w, weight)
		}
		if c := r.m.GroupClass(r.bulk); c != int(class) {
			t.Fatalf("level %d: bulk class = %d, want %d", level, c, class)
		}
		d, _ := r.m.Decide(r.bulk, false)
		if shed && d != tenant.Reject {
			t.Fatalf("level %d: bulk admission = %v, want reject (shed)", level, d)
		}
		if !shed && d != tenant.Admit {
			t.Fatalf("level %d: bulk admission = %v, want admit", level, d)
		}
	}

	// Healthy windows: hands off.
	r.window(100, 10)
	r.window(100, 10)
	check(0, 1, tenant.ClassBulk, false)

	// One bad window is not enough (hysteresis)...
	r.window(100, 400)
	check(0, 1, tenant.ClassBulk, false)
	// ...two consecutive trip level 1: weights shrink.
	r.window(100, 400)
	check(1, 0.25, tenant.ClassBulk, false)

	// Sustained violation climbs to 2 (demotion) then 3 (shedding).
	r.window(100, 400)
	r.window(100, 400)
	check(2, 0.25, tenant.ClassBestEffort, false)
	r.window(100, 400)
	r.window(100, 400)
	check(3, 0.25, tenant.ClassBestEffort, true)
	// The ladder tops out.
	r.window(100, 400)
	r.window(100, 400)
	check(3, 0.25, tenant.ClassBestEffort, true)

	// Relief: three good windows per step back down, full restoration at 0.
	r.window(100, 10)
	r.window(100, 10)
	check(3, 0.25, tenant.ClassBestEffort, true)
	r.window(100, 10)
	check(2, 0.25, tenant.ClassBestEffort, false)
	r.window(100, 10)
	r.window(100, 10)
	r.window(100, 10)
	check(1, 0.25, tenant.ClassBulk, false)
	r.window(100, 10)
	r.window(100, 10)
	r.window(100, 10)
	check(0, 1, tenant.ClassBulk, false)

	// The action log recorded every move in order.
	wantLevels := []int{1, 2, 3, 2, 1, 0}
	if len(r.c.Actions) != len(wantLevels) {
		t.Fatalf("actions = %d, want %d: %+v", len(r.c.Actions), len(wantLevels), r.c.Actions)
	}
	for i, a := range r.c.Actions {
		if a.Level != wantLevels[i] {
			t.Fatalf("action %d level = %d, want %d", i, a.Level, wantLevels[i])
		}
		if i > 0 && a.At <= r.c.Actions[i-1].At {
			t.Fatalf("action %d not after its predecessor", i)
		}
	}
}

// TestControllerHysteresisAndMinSamples checks that alternating windows
// never trip the ladder and that thin windows are ignored entirely.
func TestControllerHysteresisAndMinSamples(t *testing.T) {
	cfg := tenant.DefaultControllerConfig()
	cfg.TripWindows = 2
	cfg.ClearWindows = 2
	cfg.MinSamples = 50
	r := newLadderRig(t, cfg)

	// Alternating good/bad: the fail streak never reaches 2.
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			r.window(100, 400)
		} else {
			r.window(100, 10)
		}
	}
	if r.c.Level() != 0 {
		t.Fatalf("alternating windows tripped the ladder to %d", r.c.Level())
	}
	if r.c.Violations == 0 {
		t.Fatal("violating windows not counted")
	}

	// Thin windows (below MinSamples) are no evidence: two bad-but-thin
	// windows between two bad ones must not break the streak — but must
	// not advance it either.
	evaluated := r.c.Windows
	r.window(10, 400) // thin: skipped
	if r.c.Windows != evaluated {
		t.Fatal("thin window was evaluated")
	}
	r.window(100, 400)
	r.window(100, 400)
	if r.c.Level() != 1 {
		t.Fatalf("two full bad windows after thin ones: level = %d, want 1", r.c.Level())
	}
}

// TestControllerTransientViolationDetectedThenClears is the windowed-SLO
// satellite end to end: a transient burst of bad latency inside an
// otherwise healthy run is caught by the sliding window (the cumulative
// histogram would dilute it away) and the controller recovers once the
// burst passes.
func TestControllerTransientViolationDetectedThenClears(t *testing.T) {
	cfg := tenant.DefaultControllerConfig()
	cfg.TripWindows = 1
	cfg.ClearWindows = 2
	cfg.MinSamples = 10
	r := newLadderRig(t, cfg)

	// A long healthy prefix.
	for i := 0; i < 30; i++ {
		r.window(1000, 10)
	}
	if r.c.Level() != 0 || r.c.Violations != 0 {
		t.Fatalf("healthy prefix: level %d, violations %d", r.c.Level(), r.c.Violations)
	}

	// The transient: ~0.5% of cumulative traffic, but 100% of its window.
	r.window(150, 400)
	if r.c.Level() != 1 {
		t.Fatalf("transient violation missed: level = %d, want 1", r.c.Level())
	}
	// The cumulative histogram would have passed: p99 over all samples is
	// still healthy, so only the windowed view can see the burst.
	if pass, _ := (loadgen.P99(50)).Evaluate(r.hist, r.offered, r.completed); !pass {
		t.Fatal("cumulative SLO also failed — transient not transient enough for the test's premise")
	}

	// Recovery clears it.
	r.window(1000, 10)
	r.window(1000, 10)
	if r.c.Level() != 0 {
		t.Fatalf("controller stuck at level %d after recovery", r.c.Level())
	}
	if r.c.Violations != 1 {
		t.Fatalf("violations = %d, want exactly 1", r.c.Violations)
	}
}
