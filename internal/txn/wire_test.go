package txn

import (
	"bytes"
	"testing"
	"testing/quick"
)

func clampKeys(raw [][]byte, max int) [][]byte {
	var out [][]byte
	for _, k := range raw {
		if len(k) == 0 {
			continue
		}
		if len(k) > 64 {
			k = k[:64]
		}
		out = append(out, k)
		if len(out) == max {
			break
		}
	}
	return out
}

func TestExecReqRoundTrip(t *testing.T) {
	err := quick.Check(func(id uint64, rawR, rawW [][]byte) bool {
		reads := clampKeys(rawR, 8)
		writes := clampKeys(rawW, 8)
		buf := make([]byte, 4096)
		n := EncodeExecReq(buf, id, reads, writes)
		gotID, gotR, gotW, err := DecodeExecReq(buf[:n])
		if err != nil || gotID != id || len(gotR) != len(reads) || len(gotW) != len(writes) {
			return false
		}
		for i := range reads {
			if !bytes.Equal(gotR[i], reads[i]) {
				return false
			}
		}
		for i := range writes {
			if !bytes.Equal(gotW[i], writes[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExecRespRoundTrip(t *testing.T) {
	items := []ItemResult{
		{Found: true, Version: 42, Addr: 0x10_0000_1234, Value: []byte("v-one")},
		{Found: false},
		{Found: true, Version: ^uint64(0), Addr: 1, Value: nil},
	}
	buf := make([]byte, 1024)
	n := EncodeExecResp(buf, StOK, items)
	status, got, err := DecodeExecResp(buf[:n], len(items))
	if err != nil || status != StOK {
		t.Fatalf("status=%d err=%v", status, err)
	}
	for i := range items {
		if got[i].Found != items[i].Found || got[i].Version != items[i].Version ||
			got[i].Addr != items[i].Addr || !bytes.Equal(got[i].Value, items[i].Value) {
			t.Fatalf("item %d: %+v != %+v", i, got[i], items[i])
		}
	}
}

func TestExecRespErrorStatusShortCircuits(t *testing.T) {
	buf := make([]byte, 16)
	n := EncodeExecResp(buf, StLockConflict, nil)
	status, items, err := DecodeExecResp(buf[:n], 5)
	if err != nil || status != StLockConflict || items != nil {
		t.Fatalf("status=%d items=%v err=%v", status, items, err)
	}
}

func TestExecRespTruncationDetected(t *testing.T) {
	buf := make([]byte, 1024)
	n := EncodeExecResp(buf, StOK, []ItemResult{{Found: true, Value: []byte("abcdef")}})
	if _, _, err := DecodeExecResp(buf[:n-3], 1); err == nil {
		t.Fatal("truncated response accepted")
	}
	if _, _, err := DecodeExecResp(buf[:n], 2); err == nil {
		t.Fatal("over-count accepted")
	}
}

func TestKeysReqRoundTrip(t *testing.T) {
	err := quick.Check(func(id uint64, raw [][]byte) bool {
		keys := clampKeys(raw, 12)
		buf := make([]byte, 4096)
		n := EncodeKeysReq(buf, id, keys)
		gotID, got, err := DecodeKeysReq(buf[:n])
		if err != nil || gotID != id || len(got) != len(keys) {
			return false
		}
		for i := range keys {
			if !bytes.Equal(got[i], keys[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVersionsRespRoundTrip(t *testing.T) {
	vers := []uint64{0, 1, ^uint64(0), 12345}
	buf := make([]byte, 256)
	n := EncodeVersionsResp(buf, vers)
	got, err := DecodeVersionsResp(buf[:n])
	if err != nil || len(got) != len(vers) {
		t.Fatalf("err=%v len=%d", err, len(got))
	}
	for i := range vers {
		if got[i] != vers[i] {
			t.Fatalf("version %d: %d != %d", i, got[i], vers[i])
		}
	}
	if _, err := DecodeVersionsResp(buf[:n-2]); err == nil {
		t.Fatal("truncated versions accepted")
	}
}

func TestWriteReqRoundTrip(t *testing.T) {
	err := quick.Check(func(id uint64, rawK, rawV [][]byte) bool {
		keys := clampKeys(rawK, 6)
		kvs := make([]KV, len(keys))
		for i, k := range keys {
			var v []byte
			if i < len(rawV) {
				v = rawV[i]
				if len(v) > 100 {
					v = v[:100]
				}
			}
			kvs[i] = KV{Key: k, Value: v}
		}
		buf := make([]byte, 8192)
		n := EncodeWriteReq(buf, id, kvs)
		gotID, got, err := DecodeWriteReq(buf[:n])
		if err != nil || gotID != id || len(got) != len(kvs) {
			return false
		}
		for i := range kvs {
			if !bytes.Equal(got[i].Key, kvs[i].Key) || !bytes.Equal(got[i].Value, kvs[i].Value) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDecodersRejectGarbage(t *testing.T) {
	garbage := [][]byte{nil, {}, {1}, {1, 2, 3}, bytes.Repeat([]byte{0xFF}, 9)}
	for _, g := range garbage {
		DecodeExecReq(g)
		DecodeKeysReq(g)
		DecodeWriteReq(g)
		DecodeVersionsResp(g)
		DecodeExecResp(g, 3)
	}
	// Reaching here without panics is the assertion.
}
