package txn

import (
	"errors"
	"fmt"

	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/mica"
	"scalerpc/internal/nic"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/sim"
)

// ErrAborted reports a transaction abort (lock conflict or validation
// failure); the caller may retry.
var ErrAborted = errors.New("txn: aborted")

// Txn is one transaction specification. Apply receives the execution-phase
// values of Reads and Writes (in order) and returns the new values for
// Writes.
type Txn struct {
	Reads  [][]byte
	Writes [][]byte
	Apply  func(readVals, writeVals [][]byte) [][]byte
}

// ShardKey maps a key to one of n participants; loaders and coordinators
// must agree on it.
func ShardKey(key []byte, n int) int {
	h := uint64(14695981039346656037)
	for _, c := range key {
		h ^= uint64(c)
		h *= 1099511628211
	}
	// Decorrelate from mica's bucket index (same FNV) by mixing.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	return int(h % uint64(n))
}

// PartRef is the coordinator's handle to one participant.
type PartRef struct {
	Part   *Participant
	Conn   rpccore.Conn
	qp     *nic.QP
	kvRKey uint32
}

// CoordinatorStats counts transaction outcomes.
type CoordinatorStats struct {
	Commits          uint64
	LockAborts       uint64
	ValidationAborts uint64
	NotFoundAborts   uint64
	OneSidedReads    uint64
	OneSidedWrites   uint64
}

// Coordinator drives transactions from a client host (§4.2). With OneSided
// set it follows the ScaleTX protocol (RDMA READ validation, RDMA WRITE
// commit); otherwise it is ScaleTX-O (RPC everywhere).
type Coordinator struct {
	ID       uint64
	OneSided bool
	Stats    CoordinatorStats

	// Place maps a key to the participant index that owns it. It defaults
	// to ShardKey over the participant count; a sharded deployment swaps
	// in its shard-map placement so txn and KV routing agree on ownership.
	Place func(key []byte) int

	h       *host.Host
	parts   []*PartRef
	sig     *sim.Signal
	cq      *nic.CQ
	scratch *memory.Region
	nextReq uint64
	nextTxn uint64

	// AfterExec, when set, runs between the execution and validation
	// phases — a deterministic injection point for concurrency tests.
	AfterExec func(t *host.Thread)
}

// NewCoordinator wires a coordinator to its participants: the supplied RPC
// connections (one per participant, same order) plus dedicated RC QPs for
// the one-sided phases.
func NewCoordinator(h *host.Host, id uint64, parts []*Participant, conns []rpccore.Conn, oneSided bool, sig *sim.Signal) *Coordinator {
	if len(parts) != len(conns) {
		panic("txn: participants/conns mismatch")
	}
	c := &Coordinator{
		ID:       id,
		OneSided: oneSided,
		h:        h,
		sig:      sig,
		scratch:  h.Mem.Register(16<<10, memory.PageSize2M, memory.LocalWrite),
	}
	c.cq = h.NIC.CreateCQ()
	c.cq.Sig = sig
	for i, p := range parts {
		ref := &PartRef{Part: p, Conn: conns[i], kvRKey: p.Store.Region().RKey}
		pcq := p.Host.NIC.CreateCQ()
		pqp := p.Host.NIC.CreateQP(nic.RC, pcq, pcq)
		cqp := h.NIC.CreateQP(nic.RC, c.cq, c.cq)
		if err := nic.Connect(cqp, pqp); err != nil {
			panic(err)
		}
		ref.qp = cqp
		c.parts = append(c.parts, ref)
	}
	n := len(c.parts)
	c.Place = func(key []byte) int { return ShardKey(key, n) }
	return c
}

// NewRoutedCoordinator wires a coordinator to opaque RPC connections only —
// no local Participant handles and no one-sided QPs — so it can drive 2PC
// through a shard router where the participants live behind the wire. place
// decides which connection owns each key; the coordinator is RPC-only
// (OneSided must stay false).
func NewRoutedCoordinator(h *host.Host, id uint64, conns []rpccore.Conn, place func(key []byte) int, sig *sim.Signal) *Coordinator {
	c := &Coordinator{
		ID:    id,
		Place: place,
		h:     h,
		sig:   sig,
	}
	if c.Place == nil {
		n := len(conns)
		c.Place = func(key []byte) int { return ShardKey(key, n) }
	}
	for _, conn := range conns {
		c.parts = append(c.parts, &PartRef{Conn: conn})
	}
	return c
}

// Spawn starts fn as a thread on the coordinator's host.
func (c *Coordinator) Spawn(fn func(*host.Thread, *Coordinator)) {
	c.h.Spawn("coordinator", func(t *host.Thread) { fn(t, c) })
}

// pendingCall tracks one in-flight RPC.
type pendingCall struct {
	pi      int
	handler uint8
	req     []byte
	reqID   uint64
	resp    []byte
	done    bool
	errResp bool
}

// doCalls posts all calls and blocks until every response arrived.
func (c *Coordinator) doCalls(t *host.Thread, calls []*pendingCall) {
	posted := make([]bool, len(calls))
	for {
		progress := false
		allDone := true
		for i, call := range calls {
			if !posted[i] {
				if c.parts[call.pi].Conn.TrySend(t, call.handler, call.req, call.reqID) {
					posted[i] = true
					progress = true
				}
			}
			if !call.done {
				allDone = false
			}
		}
		if c.pollConns(t, calls) > 0 {
			progress = true
		}
		if allDone {
			allPosted := true
			for _, p := range posted {
				allPosted = allPosted && p
			}
			if allPosted {
				return
			}
		}
		if !progress {
			t.WaitSignal(c.sig, 10*sim.Microsecond)
		}
	}
}

// pollConns drains every participant connection, matching responses to
// pending calls.
func (c *Coordinator) pollConns(t *host.Thread, calls []*pendingCall) int {
	got := 0
	for pi, ref := range c.parts {
		ref.Conn.Poll(t, func(r rpccore.Response) {
			for _, call := range calls {
				if call.pi == pi && call.reqID == r.ReqID && !call.done {
					call.resp = append(call.resp[:0], r.Payload...)
					call.errResp = r.Err
					call.done = true
					got++
					return
				}
			}
		})
	}
	return got
}

func (c *Coordinator) reqID() uint64 {
	c.nextReq++
	return c.ID<<40 | c.nextReq
}

// perPart groups a transaction's keys by owning participant.
type perPart struct {
	reads, writes     [][]byte
	readIdx, writeIdx []int // positions in the txn's global key lists
	execCall          *pendingCall
	items             []ItemResult
}

// Run executes one transaction to commit or abort.
func (c *Coordinator) Run(t *host.Thread, txn *Txn) error {
	c.nextTxn++
	txnID := c.ID<<40 | c.nextTxn
	parts := make([]*perPart, len(c.parts))
	involved := make([]int, 0, len(c.parts))
	need := func(pi int) *perPart {
		if parts[pi] == nil {
			parts[pi] = &perPart{}
			involved = append(involved, pi)
		}
		return parts[pi]
	}
	for i, k := range txn.Reads {
		pp := need(c.Place(k))
		pp.reads = append(pp.reads, k)
		pp.readIdx = append(pp.readIdx, i)
	}
	for i, k := range txn.Writes {
		pp := need(c.Place(k))
		pp.writes = append(pp.writes, k)
		pp.writeIdx = append(pp.writeIdx, i)
	}

	// --- Phase 1: Execution (read R∪W, lock W) ---
	var calls []*pendingCall
	for _, pi := range involved {
		pp := parts[pi]
		req := make([]byte, 16+totalKeyBytes(pp.reads)+totalKeyBytes(pp.writes))
		n := EncodeExecReq(req, txnID, pp.reads, pp.writes)
		pp.execCall = &pendingCall{pi: pi, handler: HExec, req: req[:n], reqID: c.reqID()}
		calls = append(calls, pp.execCall)
	}
	c.doCalls(t, calls)

	readVals := make([][]byte, len(txn.Reads))
	writeVals := make([][]byte, len(txn.Writes))
	readVers := make([]uint64, len(txn.Reads))
	readAddr := make([]uint64, len(txn.Reads))
	readPart := make([]int, len(txn.Reads))
	writeVers := make([]uint64, len(txn.Writes))
	writeAddr := make([]uint64, len(txn.Writes))

	conflict, missing := false, false
	for _, pi := range involved {
		pp := parts[pi]
		status, items, err := DecodeExecResp(pp.execCall.resp, len(pp.reads)+len(pp.writes))
		if err != nil || pp.execCall.errResp {
			missing = true
			continue
		}
		switch status {
		case StLockConflict:
			conflict = true
			continue
		case StNotFound:
			missing = true
			continue
		}
		pp.items = items
		for j, gi := range pp.readIdx {
			if !items[j].Found {
				missing = true
				continue
			}
			readVals[gi] = append([]byte(nil), items[j].Value...)
			readVers[gi] = items[j].Version
			readAddr[gi] = items[j].Addr
			readPart[gi] = pi
		}
		for j, gi := range pp.writeIdx {
			it := items[len(pp.reads)+j]
			if !it.Found {
				missing = true
				continue
			}
			writeVals[gi] = append([]byte(nil), it.Value...)
			writeVers[gi] = it.Version
			writeAddr[gi] = it.Addr
		}
	}
	if conflict || missing {
		// Release locks on participants whose exec succeeded.
		c.unlockAll(t, txnID, parts, involved)
		if conflict {
			c.Stats.LockAborts++
		} else {
			c.Stats.NotFoundAborts++
		}
		return ErrAborted
	}

	if c.AfterExec != nil {
		c.AfterExec(t)
	}

	// --- Phase 2: Validate R (§4.2 step 2) ---
	if len(txn.Reads) > 0 {
		ok := false
		if c.OneSided {
			ok = c.validateOneSided(t, readAddr, readVers, readPart)
		} else {
			ok = c.validateRPC(t, txnID, parts, involved, readVers)
		}
		if !ok {
			c.unlockAll(t, txnID, parts, involved)
			c.Stats.ValidationAborts++
			return ErrAborted
		}
	}

	if len(txn.Writes) == 0 {
		c.Stats.Commits++
		return nil
	}

	// --- Phase 3a: Log ---
	newVals := txn.Apply(readVals, writeVals)
	if len(newVals) != len(txn.Writes) {
		panic("txn: Apply returned wrong write count")
	}
	calls = calls[:0]
	for _, pi := range involved {
		pp := parts[pi]
		if len(pp.writes) == 0 {
			continue
		}
		kvs := make([]KV, len(pp.writes))
		for j, gi := range pp.writeIdx {
			kvs[j] = KV{Key: txn.Writes[gi], Value: newVals[gi]}
		}
		req := make([]byte, 16+writeReqBytes(kvs))
		n := EncodeWriteReq(req, txnID, kvs)
		calls = append(calls, &pendingCall{pi: pi, handler: HLog, req: req[:n], reqID: c.reqID()})
	}
	c.doCalls(t, calls)

	// --- Phase 3b: Commit ---
	if c.OneSided {
		// One RDMA WRITE per item installs value+version and zeroes the
		// lock, with no response to wait for (§4.2's key optimization).
		for gi := range txn.Writes {
			pi := c.Place(txn.Writes[gi])
			img := c.scratch.Bytes()[4096+gi*256:]
			n := mica.BuildCommitImage(img, txn.Writes[gi], newVals[gi], writeVers[gi]+1)
			t.WriteMem(c.scratch.Base+uint64(4096+gi*256), n)
			wr := nic.SendWR{
				Op:    nic.OpWrite,
				LKey:  c.scratch.LKey,
				LAddr: c.scratch.Base + uint64(4096+gi*256),
				Len:   n,
				RKey:  c.parts[pi].kvRKey,
				RAddr: writeAddr[gi],
			}
			if n <= c.h.NIC.Cfg.MaxInline {
				wr.Inline = true
			}
			t.PostSend(c.parts[pi].qp, wr)
			c.Stats.OneSidedWrites++
		}
	} else {
		calls = calls[:0]
		for _, pi := range involved {
			pp := parts[pi]
			if len(pp.writes) == 0 {
				continue
			}
			kvs := make([]KV, len(pp.writes))
			for j, gi := range pp.writeIdx {
				kvs[j] = KV{Key: txn.Writes[gi], Value: newVals[gi]}
			}
			req := make([]byte, 16+writeReqBytes(kvs))
			n := EncodeWriteReq(req, txnID, kvs)
			calls = append(calls, &pendingCall{pi: pi, handler: HCommit, req: req[:n], reqID: c.reqID()})
		}
		c.doCalls(t, calls)
	}
	c.Stats.Commits++
	return nil
}

// validateOneSided posts one RDMA READ per read item's version word and
// compares against the execution-phase versions.
func (c *Coordinator) validateOneSided(t *host.Thread, addrs []uint64, vers []uint64, part []int) bool {
	for i := range addrs {
		wr := nic.SendWR{
			WRID:     uint64(i),
			Op:       nic.OpRead,
			Signaled: true,
			LKey:     c.scratch.LKey,
			LAddr:    c.scratch.Base + uint64(i*8),
			Len:      8,
			RKey:     c.parts[part[i]].kvRKey,
			RAddr:    addrs[i] + mica.OffVersion,
		}
		if err := t.PostSend(c.parts[part[i]].qp, wr); err != nil {
			return false
		}
		c.Stats.OneSidedReads++
	}
	need := len(addrs)
	for need > 0 {
		cqes := t.WaitCQ(c.cq, need, 20*sim.Microsecond)
		need -= len(cqes)
	}
	for i := range addrs {
		t.ReadMem(c.scratch.Base+uint64(i*8), 8)
		if mica.ParseVersion(c.scratch.Bytes()[i*8:]) != vers[i] {
			return false
		}
	}
	return true
}

// validateRPC is the ScaleTX-O validation: HValidate calls per participant.
func (c *Coordinator) validateRPC(t *host.Thread, txnID uint64, parts []*perPart, involved []int, readVers []uint64) bool {
	var calls []*pendingCall
	var order [][]int
	for _, pi := range involved {
		pp := parts[pi]
		if len(pp.reads) == 0 {
			continue
		}
		req := make([]byte, 16+totalKeyBytes(pp.reads))
		n := EncodeKeysReq(req, txnID, pp.reads)
		calls = append(calls, &pendingCall{pi: pi, handler: HValidate, req: req[:n], reqID: c.reqID()})
		order = append(order, pp.readIdx)
	}
	c.doCalls(t, calls)
	for ci, call := range calls {
		vers, err := DecodeVersionsResp(call.resp)
		if err != nil || len(vers) != len(order[ci]) {
			return false
		}
		for j, gi := range order[ci] {
			if vers[j] != readVers[gi] {
				return false
			}
		}
	}
	return true
}

// unlockAll releases W locks on every participant whose exec succeeded.
func (c *Coordinator) unlockAll(t *host.Thread, txnID uint64, parts []*perPart, involved []int) {
	var calls []*pendingCall
	for _, pi := range involved {
		pp := parts[pi]
		if len(pp.writes) == 0 || pp.items == nil {
			continue
		}
		req := make([]byte, 16+totalKeyBytes(pp.writes))
		n := EncodeKeysReq(req, txnID, pp.writes)
		calls = append(calls, &pendingCall{pi: pi, handler: HUnlock, req: req[:n], reqID: c.reqID()})
	}
	if len(calls) > 0 {
		c.doCalls(t, calls)
	}
}

func totalKeyBytes(keys [][]byte) int {
	n := 0
	for _, k := range keys {
		n += 1 + len(k)
	}
	return n
}

func writeReqBytes(kvs []KV) int {
	n := 0
	for _, kv := range kvs {
		n += 3 + len(kv.Key) + len(kv.Value)
	}
	return n
}

// String renders coordinator stats.
func (s CoordinatorStats) String() string {
	return fmt.Sprintf("commits=%d lockAborts=%d valAborts=%d notFound=%d 1sR=%d 1sW=%d",
		s.Commits, s.LockAborts, s.ValidationAborts, s.NotFoundAborts, s.OneSidedReads, s.OneSidedWrites)
}
