package txn

import (
	"scalerpc/internal/host"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
)

// RunLoop drives a coordinator: it draws transactions from gen and runs
// each to commit (retrying aborts with a short backoff) until stop returns
// true. It returns the number of committed transactions and a latency
// histogram over committed transactions.
func RunLoop(t *host.Thread, c *Coordinator, gen func() *Txn, stop func() bool) (uint64, *stats.Histogram) {
	var committed uint64
	lat := stats.NewHistogram()
	for !stop() {
		txn := gen()
		start := t.P.Now()
		for {
			err := c.Run(t, txn)
			if err == nil {
				committed++
				lat.Record(int64(t.P.Now() - start))
				break
			}
			if stop() {
				return committed, lat
			}
			t.P.Sleep(2 * sim.Microsecond) // abort backoff
		}
	}
	return committed, lat
}
