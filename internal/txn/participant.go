package txn

import (
	"errors"

	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/mica"
	"scalerpc/internal/rpccore"
)

// ParticipantStats counts participant-side events.
type ParticipantStats struct {
	Execs         uint64
	LockConflicts uint64
	Validates     uint64
	Logs          uint64
	CommitsRPC    uint64
	Unlocks       uint64
}

// Participant is one ScaleTX storage server: a MICA shard plus the
// transaction handlers, registered on any RPC transport.
type Participant struct {
	Host  *host.Host
	Store *mica.Store
	Stats ParticipantStats

	log    *memory.Region
	logOff int
}

// logSize is the per-participant redo-log ring capacity.
const logSize = 8 << 20

// NewParticipant builds a participant with its own store and log.
func NewParticipant(h *host.Host, storeCfg mica.Config) *Participant {
	return &Participant{
		Host:  h,
		Store: mica.New(h, storeCfg),
		log:   h.Mem.Register(logSize, memory.PageSize2M, memory.LocalWrite),
	}
}

// RegisterHandlers installs the transaction handlers on an RPC server.
func (p *Participant) RegisterHandlers(s rpccore.Server) {
	s.Register(HExec, p.handleExec)
	s.Register(HValidate, p.handleValidate)
	s.Register(HLog, p.handleLog)
	s.Register(HCommit, p.handleCommit)
	s.Register(HUnlock, p.handleUnlock)
	s.Register(HGet, p.handleGet)
}

// handleExec reads R∪W items, locking W (§4.2 step 1). On a lock conflict
// everything locked so far is rolled back and StLockConflict returned.
func (p *Participant) handleExec(t *host.Thread, clientID uint16, req, out []byte) int {
	p.Stats.Execs++
	txnID, reads, writes, err := DecodeExecReq(req)
	if err != nil {
		return EncodeExecResp(out, StNotFound, nil)
	}
	items := make([]ItemResult, 0, len(reads)+len(writes))
	for _, k := range reads {
		it, err := p.Store.Get(t, k)
		if err != nil {
			items = append(items, ItemResult{Found: false})
			continue
		}
		items = append(items, ItemResult{Found: true, Version: it.Version, Addr: it.Addr, Value: it.Value})
	}
	locked := make([][]byte, 0, len(writes))
	for _, k := range writes {
		it, err := p.Store.TryLock(t, k, txnID)
		if err != nil {
			// Roll back locks taken by this request.
			for _, lk := range locked {
				p.Store.Unlock(t, lk, txnID)
			}
			if errors.Is(err, mica.ErrLocked) {
				p.Stats.LockConflicts++
				return EncodeExecResp(out, StLockConflict, nil)
			}
			return EncodeExecResp(out, StNotFound, nil)
		}
		locked = append(locked, k)
		items = append(items, ItemResult{Found: true, Version: it.Version, Addr: it.Addr, Value: it.Value})
	}
	return EncodeExecResp(out, StOK, items)
}

// handleValidate re-reads versions (the ScaleTX-O validation path).
func (p *Participant) handleValidate(t *host.Thread, clientID uint16, req, out []byte) int {
	p.Stats.Validates++
	_, keys, err := DecodeKeysReq(req)
	if err != nil {
		return EncodeVersionsResp(out, nil)
	}
	versions := make([]uint64, len(keys))
	for i, k := range keys {
		if it, err := p.Store.Get(t, k); err == nil {
			versions[i] = it.Version
		}
	}
	return EncodeVersionsResp(out, versions)
}

// handleLog appends redo records to the participant log (§4.2 step 3a).
func (p *Participant) handleLog(t *host.Thread, clientID uint16, req, out []byte) int {
	p.Stats.Logs++
	_, kvs, err := DecodeWriteReq(req)
	if err != nil {
		out[0] = 0
		return 1
	}
	for _, kv := range kvs {
		rec := 16 + len(kv.Key) + len(kv.Value)
		if p.logOff+rec > logSize {
			p.logOff = 0 // ring wrap
		}
		dst := p.log.Bytes()[p.logOff:]
		copy(dst, kv.Key)
		copy(dst[len(kv.Key):], kv.Value)
		t.WriteMem(p.log.Base+uint64(p.logOff), rec)
		p.logOff += rec
	}
	out[0] = 1
	return 1
}

// handleCommit applies writes and releases locks via RPC (ScaleTX-O).
func (p *Participant) handleCommit(t *host.Thread, clientID uint16, req, out []byte) int {
	p.Stats.CommitsRPC++
	txnID, kvs, err := DecodeWriteReq(req)
	if err != nil {
		out[0] = 0
		return 1
	}
	ok := byte(1)
	for _, kv := range kvs {
		if err := p.Store.CommitWrite(t, kv.Key, kv.Value, txnID); err != nil {
			ok = 0
		}
	}
	out[0] = ok
	return 1
}

// handleUnlock releases W locks on abort.
func (p *Participant) handleUnlock(t *host.Thread, clientID uint16, req, out []byte) int {
	p.Stats.Unlocks++
	txnID, keys, err := DecodeKeysReq(req)
	if err != nil {
		out[0] = 0
		return 1
	}
	for _, k := range keys {
		p.Store.Unlock(t, k, txnID)
	}
	out[0] = 1
	return 1
}

// handleGet is a plain non-transactional read (used by examples).
func (p *Participant) handleGet(t *host.Thread, clientID uint16, req, out []byte) int {
	it, err := p.Store.Get(t, req)
	if err != nil {
		out[0] = 0
		return 1
	}
	out[0] = 1
	copy(out[1:], it.Value)
	return 1 + len(it.Value)
}
