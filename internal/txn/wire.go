// Package txn implements ScaleTX (§4.2): a distributed transactional
// system running OCC with two-phase commit over any of this repository's
// RPC transports, with the paper's co-use of one-sided verbs:
//
//  1. Execution — the coordinator RPCs each participant to read the items
//     of R and W; participants lock W items and return each item's value,
//     version and memory address.
//  2. Validate — the coordinator re-reads R versions with one-sided RDMA
//     READs at the collected addresses; any change aborts.
//  3. Log & Commit — the coordinator RPCs log records to W participants,
//     then installs each W item with a single one-sided RDMA WRITE whose
//     image sets the new value and version and zeroes the lock word.
//
// ScaleTX-O (the comparison mode) replaces the one-sided validate/commit
// with RPCs.
package txn

import (
	"encoding/binary"
	"fmt"
)

// Handler ids registered on each participant's RPC server.
const (
	HExec     = 10
	HValidate = 11
	HLog      = 12
	HCommit   = 13
	HUnlock   = 14
	HGet      = 15
)

// Exec response status codes.
const (
	StOK           = 0
	StLockConflict = 1
	StNotFound     = 2
)

// KV is one key/value pair on the wire.
type KV struct {
	Key   []byte
	Value []byte
}

// ItemResult is one item's execution-phase result.
type ItemResult struct {
	Found   bool
	Version uint64
	Addr    uint64 // item slot address on the participant
	Value   []byte
}

// --- encoding helpers -------------------------------------------------

func putKey(buf []byte, key []byte) int {
	buf[0] = byte(len(key))
	copy(buf[1:], key)
	return 1 + len(key)
}

func getKey(buf []byte) ([]byte, int, error) {
	if len(buf) < 1 {
		return nil, 0, fmt.Errorf("txn: truncated key")
	}
	n := int(buf[0])
	if len(buf) < 1+n {
		return nil, 0, fmt.Errorf("txn: truncated key body")
	}
	return buf[1 : 1+n], 1 + n, nil
}

// EncodeExecReq builds an execution-phase request.
func EncodeExecReq(buf []byte, txnID uint64, reads, writes [][]byte) int {
	binary.LittleEndian.PutUint64(buf, txnID)
	buf[8] = byte(len(reads))
	buf[9] = byte(len(writes))
	n := 10
	for _, k := range append(append([][]byte{}, reads...), writes...) {
		n += putKey(buf[n:], k)
	}
	return n
}

// DecodeExecReq parses an execution-phase request.
func DecodeExecReq(buf []byte) (txnID uint64, reads, writes [][]byte, err error) {
	if len(buf) < 10 {
		return 0, nil, nil, fmt.Errorf("txn: short exec request")
	}
	txnID = binary.LittleEndian.Uint64(buf)
	nR, nW := int(buf[8]), int(buf[9])
	n := 10
	for i := 0; i < nR+nW; i++ {
		k, adv, e := getKey(buf[n:])
		if e != nil {
			return 0, nil, nil, e
		}
		n += adv
		if i < nR {
			reads = append(reads, k)
		} else {
			writes = append(writes, k)
		}
	}
	return txnID, reads, writes, nil
}

// EncodeExecResp builds an execution-phase response.
func EncodeExecResp(buf []byte, status byte, items []ItemResult) int {
	buf[0] = status
	n := 1
	for _, it := range items {
		if it.Found {
			buf[n] = 1
		} else {
			buf[n] = 0
		}
		binary.LittleEndian.PutUint64(buf[n+1:], it.Version)
		binary.LittleEndian.PutUint64(buf[n+9:], it.Addr)
		binary.LittleEndian.PutUint16(buf[n+17:], uint16(len(it.Value)))
		copy(buf[n+19:], it.Value)
		n += 19 + len(it.Value)
	}
	return n
}

// DecodeExecResp parses an execution-phase response carrying count items.
func DecodeExecResp(buf []byte, count int) (status byte, items []ItemResult, err error) {
	if len(buf) < 1 {
		return 0, nil, fmt.Errorf("txn: short exec response")
	}
	status = buf[0]
	if status != StOK {
		return status, nil, nil
	}
	n := 1
	for i := 0; i < count; i++ {
		if len(buf) < n+19 {
			return 0, nil, fmt.Errorf("txn: truncated exec response")
		}
		it := ItemResult{
			Found:   buf[n] == 1,
			Version: binary.LittleEndian.Uint64(buf[n+1:]),
			Addr:    binary.LittleEndian.Uint64(buf[n+9:]),
		}
		vl := int(binary.LittleEndian.Uint16(buf[n+17:]))
		if len(buf) < n+19+vl {
			return 0, nil, fmt.Errorf("txn: truncated value")
		}
		it.Value = buf[n+19 : n+19+vl]
		n += 19 + vl
		items = append(items, it)
	}
	return status, items, nil
}

// EncodeKeysReq builds a validate/unlock request: txnID plus a key list.
func EncodeKeysReq(buf []byte, txnID uint64, keys [][]byte) int {
	binary.LittleEndian.PutUint64(buf, txnID)
	buf[8] = byte(len(keys))
	n := 9
	for _, k := range keys {
		n += putKey(buf[n:], k)
	}
	return n
}

// DecodeKeysReq parses a validate/unlock request.
func DecodeKeysReq(buf []byte) (txnID uint64, keys [][]byte, err error) {
	if len(buf) < 9 {
		return 0, nil, fmt.Errorf("txn: short keys request")
	}
	txnID = binary.LittleEndian.Uint64(buf)
	n := 9
	for i := 0; i < int(buf[8]); i++ {
		k, adv, e := getKey(buf[n:])
		if e != nil {
			return 0, nil, e
		}
		n += adv
		keys = append(keys, k)
	}
	return txnID, keys, nil
}

// EncodeVersionsResp builds a validate response.
func EncodeVersionsResp(buf []byte, versions []uint64) int {
	buf[0] = byte(len(versions))
	n := 1
	for _, v := range versions {
		binary.LittleEndian.PutUint64(buf[n:], v)
		n += 8
	}
	return n
}

// DecodeVersionsResp parses a validate response.
func DecodeVersionsResp(buf []byte) ([]uint64, error) {
	if len(buf) < 1 {
		return nil, fmt.Errorf("txn: short versions response")
	}
	count := int(buf[0])
	if len(buf) < 1+8*count {
		return nil, fmt.Errorf("txn: truncated versions response")
	}
	out := make([]uint64, count)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(buf[1+8*i:])
	}
	return out, nil
}

// EncodeWriteReq builds a log/commit request: txnID plus key/value pairs.
func EncodeWriteReq(buf []byte, txnID uint64, kvs []KV) int {
	binary.LittleEndian.PutUint64(buf, txnID)
	buf[8] = byte(len(kvs))
	n := 9
	for _, kv := range kvs {
		n += putKey(buf[n:], kv.Key)
		binary.LittleEndian.PutUint16(buf[n:], uint16(len(kv.Value)))
		copy(buf[n+2:], kv.Value)
		n += 2 + len(kv.Value)
	}
	return n
}

// DecodeWriteReq parses a log/commit request.
func DecodeWriteReq(buf []byte) (txnID uint64, kvs []KV, err error) {
	if len(buf) < 9 {
		return 0, nil, fmt.Errorf("txn: short write request")
	}
	txnID = binary.LittleEndian.Uint64(buf)
	n := 9
	for i := 0; i < int(buf[8]); i++ {
		k, adv, e := getKey(buf[n:])
		if e != nil {
			return 0, nil, e
		}
		n += adv
		if len(buf) < n+2 {
			return 0, nil, fmt.Errorf("txn: truncated write value length")
		}
		vl := int(binary.LittleEndian.Uint16(buf[n:]))
		if len(buf) < n+2+vl {
			return 0, nil, fmt.Errorf("txn: truncated write value")
		}
		kvs = append(kvs, KV{Key: k, Value: buf[n+2 : n+2+vl]})
		n += 2 + vl
	}
	return txnID, kvs, nil
}
