package txn_test

import (
	"encoding/binary"
	"fmt"
	"testing"

	"scalerpc/internal/baseline/rawrpc"
	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/mica"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/sim"
	"scalerpc/internal/txn"
)

// testRig is a 3-participant, N-coordinator ScaleTX deployment over the
// RawWrite transport (simplest correct transport; transport-specific
// behaviour is covered by the rpctest conformance suite).
type testRig struct {
	c      *cluster.Cluster
	parts  []*txn.Participant
	coords []*txn.Coordinator
}

func newRig(t *testing.T, nParts, nCoords int, oneSided bool) *testRig {
	t.Helper()
	// Hosts: participants first, then one client host per 8 coordinators.
	clientHosts := (nCoords + 7) / 8
	c := cluster.New(cluster.Default(nParts + clientHosts))
	rig := &testRig{c: c}
	var servers []*rawrpc.Server
	for i := 0; i < nParts; i++ {
		p := txn.NewParticipant(c.Hosts[i], mica.Config{Buckets: 1 << 12, Items: 1 << 14, SlotSize: 128})
		cfg := rawrpc.DefaultServerConfig()
		cfg.Workers = 4
		cfg.MaxClients = 64
		srv := rawrpc.NewServer(c.Hosts[i], cfg)
		p.RegisterHandlers(srv)
		srv.Start()
		rig.parts = append(rig.parts, p)
		servers = append(servers, srv)
	}
	for ci := 0; ci < nCoords; ci++ {
		ch := c.Hosts[nParts+ci/8]
		sig := sim.NewSignal(c.Env)
		var conns []rpccore.Conn
		for _, srv := range servers {
			conns = append(conns, srv.Connect(ch, sig))
		}
		co := txn.NewCoordinator(ch, uint64(ci+1), rig.parts, conns, oneSided, sig)
		rig.coords = append(rig.coords, co)
	}
	t.Cleanup(c.Close)
	return rig
}

// load puts `accounts` keys, each holding a uint64 balance, into the right
// shards.
func (r *testRig) load(accounts int, balance uint64) {
	val := make([]byte, 8)
	binary.LittleEndian.PutUint64(val, balance)
	for i := 0; i < accounts; i++ {
		k := acctKey(i)
		p := r.parts[txn.ShardKey(k, len(r.parts))]
		if _, err := p.Store.Put(nil, k, val); err != nil {
			panic(err)
		}
	}
}

func (r *testRig) totalBalance(accounts int) uint64 {
	var sum uint64
	for i := 0; i < accounts; i++ {
		k := acctKey(i)
		p := r.parts[txn.ShardKey(k, len(r.parts))]
		it, err := p.Store.Get(nil, k)
		if err != nil {
			panic(err)
		}
		sum += binary.LittleEndian.Uint64(it.Value)
	}
	return sum
}

func acctKey(i int) []byte { return []byte(fmt.Sprintf("acct%06d", i)) }

// transfer builds a balance-transfer transaction moving amount from a to b.
func transfer(a, b int, amount uint64) *txn.Txn {
	return &txn.Txn{
		Writes: [][]byte{acctKey(a), acctKey(b)},
		Apply: func(readVals, writeVals [][]byte) [][]byte {
			av := binary.LittleEndian.Uint64(writeVals[0])
			bv := binary.LittleEndian.Uint64(writeVals[1])
			out := [][]byte{make([]byte, 8), make([]byte, 8)}
			binary.LittleEndian.PutUint64(out[0], av-amount)
			binary.LittleEndian.PutUint64(out[1], bv+amount)
			return out
		},
	}
}

func TestReadOnlyTxn(t *testing.T) {
	for _, oneSided := range []bool{true, false} {
		name := "scaletx-o"
		if oneSided {
			name = "scaletx"
		}
		t.Run(name, func(t *testing.T) {
			rig := newRig(t, 3, 1, oneSided)
			rig.load(100, 500)
			var got uint64
			done := false
			rig.coords[0].Spawn(func(th *host.Thread, co *txn.Coordinator) {
				tx := &txn.Txn{Reads: [][]byte{acctKey(1), acctKey(2), acctKey(3)}}
				if err := co.Run(th, tx); err != nil {
					t.Errorf("read-only txn: %v", err)
				}
				got = co.Stats.Commits
				done = true
			})
			rig.c.Env.RunUntil(50 * sim.Millisecond)
			if !done || got != 1 {
				t.Fatalf("done=%v commits=%d", done, got)
			}
		})
	}
}

func TestTransferPreservesTotalBalance(t *testing.T) {
	for _, oneSided := range []bool{true, false} {
		name := map[bool]string{true: "scaletx", false: "scaletx-o"}[oneSided]
		t.Run(name, func(t *testing.T) {
			rig := newRig(t, 3, 4, oneSided)
			const accounts = 200
			rig.load(accounts, 1000)
			horizon := 5 * sim.Millisecond
			var committed uint64
			for ci, co := range rig.coords {
				ci, co := ci, co
				co.Spawn(func(th *host.Thread, c *txn.Coordinator) {
					seed := uint64(ci)*2654435761 + 12345
					n, _ := txn.RunLoop(th, c, func() *txn.Txn {
						seed = seed*6364136223846793005 + 1442695040888963407
						a := int(seed>>33) % accounts
						b := (a + 1 + int(seed>>13)%(accounts-1)) % accounts
						return transfer(a, b, 1)
					}, func() bool { return th.P.Now() >= horizon })
					committed += n
				})
			}
			rig.c.Env.RunUntil(horizon + 2*sim.Millisecond)
			if committed < 50 {
				t.Fatalf("committed only %d transfers", committed)
			}
			if got := rig.totalBalance(accounts); got != accounts*1000 {
				t.Fatalf("total balance = %d, want %d (money created/destroyed!)", got, accounts*1000)
			}
			// No locks may remain held.
			for i := 0; i < accounts; i++ {
				k := acctKey(i)
				p := rig.parts[txn.ShardKey(k, len(rig.parts))]
				if _, err := p.Store.TryLock(nil, k, 999999); err != nil {
					t.Fatalf("account %d still locked after run: %v", i, err)
				}
				p.Store.Unlock(nil, k, 999999)
			}
		})
	}
}

func TestLockConflictAborts(t *testing.T) {
	rig := newRig(t, 3, 1, true)
	rig.load(10, 100)
	// Pre-lock an account directly so the coordinator's exec must abort.
	k := acctKey(1)
	p := rig.parts[txn.ShardKey(k, len(rig.parts))]
	p.Store.TryLock(nil, k, 4242)
	var err error
	done := false
	rig.coords[0].Spawn(func(th *host.Thread, co *txn.Coordinator) {
		err = co.Run(th, transfer(1, 2, 5))
		done = true
	})
	rig.c.Env.RunUntil(50 * sim.Millisecond)
	if !done || err != txn.ErrAborted {
		t.Fatalf("done=%v err=%v, want ErrAborted", done, err)
	}
	if rig.coords[0].Stats.LockAborts != 1 {
		t.Fatalf("LockAborts = %d", rig.coords[0].Stats.LockAborts)
	}
	// The other account of the pair must not be left locked.
	k2 := acctKey(2)
	p2 := rig.parts[txn.ShardKey(k2, len(rig.parts))]
	if _, lerr := p2.Store.TryLock(nil, k2, 777); lerr != nil {
		t.Fatalf("partner account left locked: %v", lerr)
	}
}

func TestValidationAbortOnConcurrentWrite(t *testing.T) {
	// A read-set item changed between execution and validation must abort.
	rig := newRig(t, 3, 1, true)
	rig.load(10, 100)
	readKey := acctKey(3)
	p := rig.parts[txn.ShardKey(readKey, len(rig.parts))]

	var err error
	done := false
	// Inject a conflicting write deterministically between the execution
	// and validation phases.
	rig.coords[0].AfterExec = func(t *host.Thread) {
		p.Store.Put(nil, readKey, []byte("CONFLICT"))
	}
	rig.coords[0].Spawn(func(th *host.Thread, co *txn.Coordinator) {
		err = co.Run(th, &txn.Txn{
			Reads:  [][]byte{readKey},
			Writes: [][]byte{acctKey(4)},
			Apply: func(rv, wv [][]byte) [][]byte {
				return [][]byte{[]byte("newval!!")}
			},
		})
		done = true
	})
	rig.c.Env.RunUntil(50 * sim.Millisecond)
	if !done {
		t.Fatal("txn never finished")
	}
	if err != txn.ErrAborted {
		t.Fatalf("err = %v, want ErrAborted (validation must catch the version bump)", err)
	}
	if rig.coords[0].Stats.ValidationAborts != 1 {
		t.Fatalf("ValidationAborts = %d", rig.coords[0].Stats.ValidationAborts)
	}
}

func TestOneSidedCounters(t *testing.T) {
	rig := newRig(t, 3, 1, true)
	rig.load(10, 100)
	rig.coords[0].Spawn(func(th *host.Thread, co *txn.Coordinator) {
		co.Run(th, &txn.Txn{
			Reads:  [][]byte{acctKey(1)},
			Writes: [][]byte{acctKey(2)},
			Apply:  func(rv, wv [][]byte) [][]byte { return [][]byte{[]byte("x")} },
		})
	})
	rig.c.Env.RunUntil(50 * sim.Millisecond)
	st := rig.coords[0].Stats
	if st.OneSidedReads != 1 || st.OneSidedWrites != 1 {
		t.Fatalf("one-sided ops: %+v", st)
	}
	// ScaleTX-O must use none.
	rig2 := newRig(t, 3, 1, false)
	rig2.load(10, 100)
	rig2.coords[0].Spawn(func(th *host.Thread, co *txn.Coordinator) {
		co.Run(th, &txn.Txn{
			Reads:  [][]byte{acctKey(1)},
			Writes: [][]byte{acctKey(2)},
			Apply:  func(rv, wv [][]byte) [][]byte { return [][]byte{[]byte("x")} },
		})
	})
	rig2.c.Env.RunUntil(50 * sim.Millisecond)
	st2 := rig2.coords[0].Stats
	if st2.OneSidedReads != 0 || st2.OneSidedWrites != 0 {
		t.Fatalf("ScaleTX-O used one-sided ops: %+v", st2)
	}
	if st2.Commits != 1 {
		t.Fatalf("ScaleTX-O commits = %d", st2.Commits)
	}
}

func TestShardKeyStable(t *testing.T) {
	for i := 0; i < 1000; i++ {
		k := acctKey(i)
		a := txn.ShardKey(k, 3)
		b := txn.ShardKey(k, 3)
		if a != b || a < 0 || a > 2 {
			t.Fatalf("ShardKey unstable or out of range: %d/%d", a, b)
		}
	}
	// Roughly balanced.
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[txn.ShardKey(acctKey(i), 3)]++
	}
	for p, n := range counts {
		if n < 700 || n > 1300 {
			t.Fatalf("shard %d has %d/3000 keys", p, n)
		}
	}
}
