// Package rpccore defines the interfaces every RPC implementation in this
// repository (ScaleRPC and the RawWrite/HERD/FaSST baselines) satisfies,
// plus the client-side coroutine driver the benchmarks use, mirroring the
// paper's methodology (§3.6.1): client threads schedule coroutines round
// robin; each coroutine posts a batch of asynchronous requests, yields,
// and collects its responses before posting the next batch.
package rpccore

import (
	"scalerpc/internal/host"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
)

// Handler processes one request on a server worker thread. It writes the
// response into out and returns its length. The handler charges its own
// compute via t.Work.
type Handler func(t *host.Thread, clientID uint16, req []byte, out []byte) int

// Server is the service side of an RPC transport.
type Server interface {
	// Register installs a handler under an id. Must be called before Start.
	Register(handler uint8, fn Handler)
	// Start launches the server's worker threads.
	Start()
}

// Response is a completed call delivered to the client.
type Response struct {
	ReqID   uint64
	Payload []byte // valid only during the delivery callback
	Err     bool
	// TimedOut marks a synthetic failure a Caller delivers when the call
	// exhausted its deadline and retry budget; no server response arrived
	// (one may still trickle in later and be counted as a late drop).
	TimedOut bool
}

// Conn is a client endpoint (the paper's RPCClient): one logical caller
// with a bounded window of outstanding requests.
type Conn interface {
	// TrySend posts one asynchronous request if the connection can accept
	// it right now (free slot, and — for ScaleRPC — a state that permits
	// sending). It returns false otherwise.
	TrySend(t *host.Thread, handler uint8, payload []byte, reqID uint64) bool
	// Poll drains arrived responses, invoking fn for each, and returns the
	// number delivered. It also advances the connection's state machine.
	Poll(t *host.Thread, fn func(Response)) int
	// Outstanding returns the number of in-flight requests.
	Outstanding() int
	// SlotCount returns the maximum request window.
	SlotCount() int
}

// ActivitySignal is shared by all connections owned by one client thread;
// transports broadcast it whenever something arrives so the thread can
// sleep instead of spin.
type ActivitySignal = sim.Signal

// DriverConfig shapes a benchmark client thread.
type DriverConfig struct {
	// Batch is the number of requests each coroutine keeps outstanding
	// (posted together, collected together — the paper's batch size).
	Batch int
	// Handler is the RPC handler id to invoke.
	Handler uint8
	// PayloadSize is the request size in bytes.
	PayloadSize int
	// PayloadFn, when set, generates the payload for each call (overrides
	// PayloadSize).
	PayloadFn func(rng *stats.RNG, buf []byte) int
	// ThinkTime, when set, returns an injected idle delay before a
	// coroutine posts its next batch (used for the non-uniform workloads
	// of Figure 12).
	ThinkTime func(rng *stats.RNG) sim.Duration
	// WarmupOps are completed before measurement starts.
	WarmupOps int
	// Seed drives the payload and think-time generators.
	Seed uint64
	// IdlePoll bounds how long the thread sleeps when nothing is ready.
	IdlePoll sim.Duration
	// BusyPoll makes the thread spin (holding a core, charging SpinCost
	// per idle pass) instead of blocking — how the paper's clients
	// actually behave, and the reason UD RPC clients bottleneck on CPU
	// (§3.6.2). Enable when modelling core contention; leave off for
	// cheap functional tests.
	BusyPoll bool
	// SpinCost is the CPU charge per empty busy-poll pass.
	SpinCost sim.Duration
	// MeasureFrom, when nonzero, excludes completions and latencies
	// recorded before that virtual time (time-based warmup).
	MeasureFrom sim.Time
	// StartDelay staggers the thread's first post, breaking the phase
	// lock that forms when every client starts at the same instant.
	StartDelay sim.Duration
}

// DriverStats aggregates one client thread's measurements.
type DriverStats struct {
	Completed uint64
	Bytes     uint64
	BatchLat  *stats.Histogram // per-batch latency, as the paper measures
}

// coState tracks one coroutine inside the driver.
type coState struct {
	conn       Conn
	inFlight   int
	batchStart sim.Time
	warmupLeft int
	nextReqID  uint64
	thinkUntil sim.Time
}

// RunDriver runs the benchmark loop over the given connections (coroutines)
// on the calling thread until stop returns true. Measurement excludes each
// coroutine's warmup operations.
func RunDriver(t *host.Thread, conns []Conn, cfg DriverConfig, sig *sim.Signal, stop func() bool) DriverStats {
	if cfg.Batch <= 0 {
		cfg.Batch = 1
	}
	if cfg.IdlePoll <= 0 {
		cfg.IdlePoll = 5 * sim.Microsecond
	}
	res := DriverStats{BatchLat: stats.NewHistogram()}
	if cfg.StartDelay > 0 {
		t.P.Sleep(cfg.StartDelay)
	}
	rng := stats.NewRNG(cfg.Seed)
	cos := make([]*coState, len(conns))
	payload := make([]byte, 4096)
	for i, c := range conns {
		cos[i] = &coState{conn: c, warmupLeft: cfg.WarmupOps}
	}
	makePayload := func() []byte {
		n := cfg.PayloadSize
		if cfg.PayloadFn != nil {
			n = cfg.PayloadFn(rng, payload)
		}
		return payload[:n]
	}

	for !stop() {
		progress := false
		for _, co := range cos {
			co := co
			// Collect responses.
			got := co.conn.Poll(t, func(r Response) {
				co.inFlight--
				if co.warmupLeft > 0 {
					co.warmupLeft--
					return
				}
				if t.P.Now() < cfg.MeasureFrom {
					return
				}
				res.Completed++
				res.Bytes += uint64(len(r.Payload))
			})
			if got > 0 {
				progress = true
			}
			// A batch completes when everything posted has returned.
			if co.inFlight == 0 && co.batchStart != 0 {
				if co.warmupLeft == 0 && t.P.Now() >= cfg.MeasureFrom && co.batchStart >= cfg.MeasureFrom {
					res.BatchLat.Record(int64(t.P.Now() - co.batchStart))
				}
				co.batchStart = 0
				if cfg.ThinkTime != nil {
					co.thinkUntil = t.P.Now() + cfg.ThinkTime(rng)
				}
			}
			// Post the next batch.
			if co.inFlight == 0 && co.batchStart == 0 && t.P.Now() >= co.thinkUntil {
				posted := 0
				for posted < cfg.Batch {
					if !co.conn.TrySend(t, cfg.Handler, makePayload(), co.nextReqID) {
						break
					}
					co.nextReqID++
					co.inFlight++
					posted++
				}
				if posted > 0 {
					co.batchStart = t.P.Now()
					progress = true
				}
			}
		}
		if !progress {
			if cfg.BusyPoll {
				spin := cfg.SpinCost
				if spin <= 0 {
					spin = 100
				}
				t.Work(spin)
			} else {
				t.WaitSignal(sig, cfg.IdlePoll)
			}
		}
	}
	return res
}
