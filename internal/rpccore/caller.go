package rpccore

import (
	"scalerpc/internal/host"
	"scalerpc/internal/sim"
)

// CallOpts are per-connection deadline and retry knobs, all in virtual
// time. The zero value disables everything (calls wait forever, as before).
type CallOpts struct {
	// Timeout is the per-call deadline, measured from the first send. When
	// it expires the Caller fails the call back to the application with
	// Response.TimedOut set, regardless of retries still in flight.
	Timeout sim.Duration `json:"timeout_ns,omitempty"`
	// RetryInterval is the delay before the first re-send; it doubles
	// after every retry (bounded exponential backoff).
	RetryInterval sim.Duration `json:"retry_interval_ns,omitempty"`
	// MaxRetries bounds re-sends per call. 0 means no retries: the call
	// either completes or times out on its original send.
	MaxRetries int `json:"max_retries,omitempty"`
	// Hedge, when > 0, issues one speculative duplicate send if no
	// response arrived this long after the first send — ahead of the
	// retry schedule, against the straggler tail. Server-side dedup makes
	// the duplicate safe.
	Hedge sim.Duration `json:"hedge_ns,omitempty"`
	// MaxRetryInterval caps the doubling backoff; 0 leaves it unbounded
	// (the pre-cap behavior).
	MaxRetryInterval sim.Duration `json:"max_retry_interval_ns,omitempty"`
	// RetryJitter spreads each backoff delay by up to this fraction of the
	// interval (e.g. 0.5 draws from [interval, 1.5*interval)), breaking up
	// the synchronized retry waves a recovered link otherwise sees from
	// every client at once. The draw is a stateless hash of
	// (JitterSalt, reqID, attempt), so runs stay deterministic and two
	// callers with different salts never stampede in phase.
	RetryJitter float64 `json:"retry_jitter,omitempty"`
	// JitterSalt seeds the jitter hash; give each client a distinct salt.
	JitterSalt uint64 `json:"jitter_salt,omitempty"`
}

// jitterHash mixes (salt, reqID, attempt) into a uniform [0,1) fraction —
// splitmix64-style finalization, stateless so the retry schedule is a pure
// function of the call identity.
func jitterHash(salt, reqID uint64, attempt int) float64 {
	z := salt ^ reqID*0x9e3779b97f4a7c15 ^ uint64(attempt)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// nextInterval applies the cap and jitter to a call's current backoff.
func (o CallOpts) nextInterval(interval sim.Duration, reqID uint64, attempt int) sim.Duration {
	if o.MaxRetryInterval > 0 && interval > o.MaxRetryInterval {
		interval = o.MaxRetryInterval
	}
	if o.RetryJitter > 0 {
		interval += sim.Duration(float64(interval) * o.RetryJitter * jitterHash(o.JitterSalt, reqID, attempt))
	}
	return interval
}

// Resender is implemented by transports whose in-flight requests can be
// re-issued in place: Resend re-posts the request occupying the slot that
// reqID holds, without consuming a new slot. Retries and hedges prefer it;
// on a transport without it the Caller can only enforce deadlines.
type Resender interface {
	Resend(t *host.Thread, reqID uint64) bool
}

// Canceler is implemented by transports that can withdraw an in-flight
// request. The Caller invokes it when a call's deadline expires: the
// application has been told TimedOut and moved on, so the request must
// not linger in the transport's retry surface — a frame that keeps being
// re-offered (e.g. restaged across context switches) can outlive the
// server's bounded dedup window and re-execute long after the app gave
// up, breaking at-most-once.
type Canceler interface {
	Cancel(t *host.Thread, reqID uint64) bool
}

// pendingCall tracks one outstanding request's timers.
type pendingCall struct {
	reqID     uint64
	deadline  sim.Time
	nextRetry sim.Time
	interval  sim.Duration
	retries   int
	hedgeAt   sim.Time
	hedged    bool
	done      bool
}

// Caller wraps a Conn with per-call deadlines, retry/backoff and hedging.
// It implements Conn itself, so drivers and the loadgen runner can slot it
// in transparently: Poll delivers normal responses for calls still
// pending, synthesizes TimedOut failures for expired ones, and silently
// drops responses for calls already completed or failed (retry races).
type Caller struct {
	Conn Conn
	Opts CallOpts
	Rel  *RelStats

	pending map[uint64]*pendingCall
	// order preserves insertion order for the timer sweep — iterating the
	// map would break run determinism.
	order []*pendingCall
}

// NewCaller wraps conn. rel may be nil (detached counters).
func NewCaller(conn Conn, opts CallOpts, rel *RelStats) *Caller {
	if rel == nil {
		rel = &RelStats{}
	}
	return &Caller{Conn: conn, Opts: opts, Rel: rel, pending: make(map[uint64]*pendingCall)}
}

// TrySend posts the request through the wrapped Conn and, on success,
// starts the call's deadline and retry clocks.
func (c *Caller) TrySend(t *host.Thread, handler uint8, payload []byte, reqID uint64) bool {
	if !c.Conn.TrySend(t, handler, payload, reqID) {
		return false
	}
	now := t.P.Now()
	pc := &pendingCall{reqID: reqID, interval: c.Opts.RetryInterval}
	if c.Opts.Timeout > 0 {
		pc.deadline = now + c.Opts.Timeout
	}
	if c.Opts.Hedge > 0 {
		pc.hedgeAt = now + c.Opts.Hedge
	}
	if c.Opts.RetryInterval > 0 {
		pc.nextRetry = now + c.Opts.nextInterval(c.Opts.RetryInterval, reqID, 0)
	}
	if old, ok := c.pending[reqID]; ok {
		old.done = true // the application reused a reqID; supersede
	}
	c.pending[reqID] = pc
	c.order = append(c.order, pc)
	return true
}

// Poll drains the wrapped Conn, delivering responses for pending calls and
// counting the rest as late drops, then sweeps the timers: expired calls
// fail with TimedOut, due retries and hedges re-send in place.
func (c *Caller) Poll(t *host.Thread, fn func(Response)) int {
	delivered := 0
	c.Conn.Poll(t, func(r Response) {
		pc, ok := c.pending[r.ReqID]
		if !ok || pc.done {
			// A late response: its call completed via an earlier copy or
			// already timed out.
			c.Rel.LateDrops++
			return
		}
		c.complete(pc)
		delivered++
		fn(r)
	})

	if len(c.order) > 2*(len(c.pending)+1) {
		keep := c.order[:0]
		for _, pc := range c.order {
			if !pc.done {
				keep = append(keep, pc)
			}
		}
		c.order = keep
	}
	now := t.P.Now()
	for i := 0; i < len(c.order); i++ {
		pc := c.order[i]
		if pc.done {
			continue
		}
		if c.Opts.Timeout > 0 && now >= pc.deadline {
			c.complete(pc)
			if cn, ok := c.Conn.(Canceler); ok {
				cn.Cancel(t, pc.reqID)
			}
			c.Rel.DeadlineExceeded++
			delivered++
			fn(Response{ReqID: pc.reqID, Err: true, TimedOut: true})
			continue
		}
		if c.Opts.Hedge > 0 && !pc.hedged && now >= pc.hedgeAt {
			pc.hedged = true
			if c.resend(t, pc.reqID) {
				c.Rel.Hedges++
			}
		}
		if c.Opts.RetryInterval > 0 && pc.retries < c.Opts.MaxRetries && now >= pc.nextRetry {
			if c.resend(t, pc.reqID) {
				pc.retries++
				c.Rel.Retries++
			}
			pc.interval *= 2
			pc.nextRetry = now + c.Opts.nextInterval(pc.interval, pc.reqID, pc.retries)
		}
	}
	return delivered
}

func (c *Caller) complete(pc *pendingCall) {
	pc.done = true
	delete(c.pending, pc.reqID)
}

func (c *Caller) resend(t *host.Thread, reqID uint64) bool {
	if rs, ok := c.Conn.(Resender); ok {
		return rs.Resend(t, reqID)
	}
	return false
}

// Pending returns the number of calls awaiting a response or deadline.
func (c *Caller) Pending() int { return len(c.pending) }

// Outstanding forwards the wrapped Conn's slot usage. After a timeout this
// can exceed Pending: the slot stays occupied until a (late) response or a
// reconnect reclaims it.
func (c *Caller) Outstanding() int { return c.Conn.Outstanding() }

// SlotCount forwards the wrapped Conn's window size.
func (c *Caller) SlotCount() int { return c.Conn.SlotCount() }

var _ Conn = (*Caller)(nil)
