package rpccore_test

import (
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
)

// loopConn is an in-memory Conn that answers every request after a fixed
// simulated delay — enough to exercise the driver's batching, warmup, and
// measurement-window logic without a transport.
type loopConn struct {
	env     *sim.Env
	sig     *sim.Signal
	delay   sim.Duration
	slots   int
	pending []rpccore.Response
	inUse   int
}

func newLoopConn(env *sim.Env, sig *sim.Signal, delay sim.Duration, slots int) *loopConn {
	return &loopConn{env: env, sig: sig, delay: delay, slots: slots}
}

func (l *loopConn) TrySend(t *host.Thread, h uint8, payload []byte, reqID uint64) bool {
	if l.inUse >= l.slots {
		return false
	}
	l.inUse++
	body := append([]byte(nil), payload...)
	l.env.At(l.delay, func() {
		l.pending = append(l.pending, rpccore.Response{ReqID: reqID, Payload: body})
		l.sig.Broadcast()
	})
	return true
}

func (l *loopConn) Poll(t *host.Thread, fn func(rpccore.Response)) int {
	n := len(l.pending)
	for _, r := range l.pending {
		l.inUse--
		fn(r)
	}
	l.pending = l.pending[:0]
	return n
}

func (l *loopConn) Outstanding() int { return l.inUse }
func (l *loopConn) SlotCount() int   { return l.slots }

func TestDriverBatchSemantics(t *testing.T) {
	c := cluster.New(cluster.Default(1))
	defer c.Close()
	sig := sim.NewSignal(c.Env)
	conn := newLoopConn(c.Env, sig, 10*sim.Microsecond, 16)
	var st rpccore.DriverStats
	horizon := sim.Millisecond
	c.Hosts[0].Spawn("drv", func(th *host.Thread) {
		st = rpccore.RunDriver(th, []rpccore.Conn{conn}, rpccore.DriverConfig{
			Batch: 4, Handler: 1, PayloadSize: 8,
		}, sig, func() bool { return th.P.Now() >= horizon })
	})
	c.Env.RunUntil(horizon + 100*sim.Microsecond)
	// Each batch takes ~10us (+ poll wake), so ~100 batches of 4.
	if st.Completed < 300 || st.Completed > 450 {
		t.Fatalf("Completed = %d, want ~400", st.Completed)
	}
	// Batch latency ≈ response delay.
	if med := st.BatchLat.Median(); med < 10000 || med > 20000 {
		t.Fatalf("median batch latency = %d, want ~10-20us", med)
	}
}

func TestDriverMeasureFromExcludesWarmup(t *testing.T) {
	c := cluster.New(cluster.Default(1))
	defer c.Close()
	sig := sim.NewSignal(c.Env)
	conn := newLoopConn(c.Env, sig, 10*sim.Microsecond, 16)
	var st rpccore.DriverStats
	horizon := sim.Millisecond
	c.Hosts[0].Spawn("drv", func(th *host.Thread) {
		st = rpccore.RunDriver(th, []rpccore.Conn{conn}, rpccore.DriverConfig{
			Batch: 1, MeasureFrom: horizon / 2,
		}, sig, func() bool { return th.P.Now() >= horizon })
	})
	c.Env.RunUntil(horizon + 100*sim.Microsecond)
	// Only the second half counts: ~500us / ~11us per op.
	if st.Completed < 30 || st.Completed > 60 {
		t.Fatalf("Completed = %d, want ~45 (half the window)", st.Completed)
	}
}

func TestDriverThinkTimeThrottles(t *testing.T) {
	c := cluster.New(cluster.Default(1))
	defer c.Close()
	sig := sim.NewSignal(c.Env)
	conn := newLoopConn(c.Env, sig, sim.Microsecond, 16)
	var st rpccore.DriverStats
	horizon := sim.Millisecond
	c.Hosts[0].Spawn("drv", func(th *host.Thread) {
		st = rpccore.RunDriver(th, []rpccore.Conn{conn}, rpccore.DriverConfig{
			Batch:     1,
			ThinkTime: func(*stats.RNG) sim.Duration { return 100 * sim.Microsecond },
		}, sig, func() bool { return th.P.Now() >= horizon })
	})
	c.Env.RunUntil(horizon + 100*sim.Microsecond)
	if st.Completed > 15 {
		t.Fatalf("Completed = %d, want ≤ ~10 with 100us think time", st.Completed)
	}
}

func TestDriverStartDelay(t *testing.T) {
	c := cluster.New(cluster.Default(1))
	defer c.Close()
	sig := sim.NewSignal(c.Env)
	conn := newLoopConn(c.Env, sig, sim.Microsecond, 16)
	var first sim.Time
	horizon := 100 * sim.Microsecond
	probe := &probeConn{inner: conn, onSend: func(at sim.Time) {
		if first == 0 {
			first = at
		}
	}}
	c.Hosts[0].Spawn("drv", func(th *host.Thread) {
		rpccore.RunDriver(th, []rpccore.Conn{probe}, rpccore.DriverConfig{
			Batch: 1, StartDelay: 30 * sim.Microsecond,
		}, sig, func() bool { return th.P.Now() >= horizon })
	})
	c.Env.RunUntil(horizon + 10*sim.Microsecond)
	if first < 30*sim.Microsecond {
		t.Fatalf("first post at %d, want ≥ 30us", first)
	}
}

func TestDriverMultipleCoroutines(t *testing.T) {
	c := cluster.New(cluster.Default(1))
	defer c.Close()
	sig := sim.NewSignal(c.Env)
	conns := []rpccore.Conn{
		newLoopConn(c.Env, sig, 10*sim.Microsecond, 4),
		newLoopConn(c.Env, sig, 10*sim.Microsecond, 4),
		newLoopConn(c.Env, sig, 10*sim.Microsecond, 4),
	}
	var st rpccore.DriverStats
	horizon := sim.Millisecond
	c.Hosts[0].Spawn("drv", func(th *host.Thread) {
		st = rpccore.RunDriver(th, conns, rpccore.DriverConfig{Batch: 2}, sig,
			func() bool { return th.P.Now() >= horizon })
	})
	c.Env.RunUntil(horizon + 100*sim.Microsecond)
	// Three coroutines overlap their batches: ~3× single-conn throughput.
	if st.Completed < 400 {
		t.Fatalf("Completed = %d, want ≥ 400 with 3 coroutines", st.Completed)
	}
}

// probeConn wraps a Conn to observe send times.
type probeConn struct {
	inner  rpccore.Conn
	onSend func(sim.Time)
}

func (p *probeConn) TrySend(t *host.Thread, h uint8, payload []byte, reqID uint64) bool {
	ok := p.inner.TrySend(t, h, payload, reqID)
	if ok {
		p.onSend(t.P.Now())
	}
	return ok
}
func (p *probeConn) Poll(t *host.Thread, fn func(rpccore.Response)) int { return p.inner.Poll(t, fn) }
func (p *probeConn) Outstanding() int                                   { return p.inner.Outstanding() }
func (p *probeConn) SlotCount() int                                     { return p.inner.SlotCount() }
