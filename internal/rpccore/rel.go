// End-to-end reliability counters shared by every transport on a cluster:
// one RelStats block per telemetry registry, so `rpc.retries`,
// `rpc.dedup_hits` etc. aggregate across servers, callers and baselines in
// a single dump line each.
package rpccore

import "scalerpc/internal/telemetry"

// RelStats counts end-to-end reliability events: client-side retries,
// hedges and deadline expiries, server-side dedup hits, and frames
// discarded by the wire CRC on either side.
type RelStats struct {
	// Retries counts requests re-sent by the Caller after a timeout.
	Retries uint64
	// Hedges counts speculative duplicate sends issued before the deadline.
	Hedges uint64
	// DedupHits counts requests a server recognized as already executed
	// (or executing) and answered from the reply cache instead of
	// re-running the handler.
	DedupHits uint64
	// DeadlineExceeded counts calls that exhausted their deadline and
	// retry budget and were failed back to the application.
	DeadlineExceeded uint64
	// CRCDrops counts frames whose trailer CRC failed verification and
	// were treated as loss (cleared, never delivered).
	CRCDrops uint64
	// LateDrops counts responses that arrived for a call the Caller had
	// already failed or completed (a retry racing its original).
	LateDrops uint64
}

const relAuxKey = "rpccore.rel"

// SharedRel returns the registry's shared RelStats block, creating and
// registering it on first use — under "rpc" for the call-level counters
// and "wire" for the CRC drops, matching the dump names the determinism
// tests assert. A nil registry returns a detached block.
func SharedRel(reg *telemetry.Registry) *RelStats {
	if reg == nil {
		return &RelStats{}
	}
	return reg.Aux(relAuxKey, func() interface{} {
		rs := &RelStats{}
		rpc := reg.Scope("rpc")
		rpc.CounterVar("retries", &rs.Retries)
		rpc.CounterVar("hedges", &rs.Hedges)
		rpc.CounterVar("dedup_hits", &rs.DedupHits)
		rpc.CounterVar("deadline_exceeded", &rs.DeadlineExceeded)
		rpc.CounterVar("late_drops", &rs.LateDrops)
		reg.Scope("wire").CounterVar("crc_drops", &rs.CRCDrops)
		return rs
	}).(*RelStats)
}
