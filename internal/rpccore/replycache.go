package rpccore

// CachedReply is one committed response retained for dedup replay.
type CachedReply struct {
	Payload []byte
	Err     bool
}

type cacheEntry struct {
	reqID uint64
	ready bool
	rep   CachedReply
}

// clientCache is one client's dedup window: entries by reqID plus admit
// order for FIFO eviction. Lookup-only maps keep determinism.
type clientCache struct {
	entries map[uint64]*cacheEntry
	order   []uint64
}

// ReplyCache is the server-side exactly-once filter: a bounded
// per-(clientID, reqID) record of executed (or executing) requests and
// their committed responses. A server consults it before running a
// handler; duplicates — client retries after a timeout, a context-switch
// race, or a reconnect/rejoin — are answered from cache instead of
// re-executed, upgrading the transports' at-least-once retry windows to
// at-most-once execution with exactly-once results for acknowledged work.
//
// Sizing: a client retries only requests still occupying one of its W
// request slots, so its live reqIDs always fall within its last W distinct
// ones. Retaining 2W entries per client therefore guarantees no
// false re-execution: by the time an entry is evicted the client has
// issued ≥ W newer requests, which it could only do after the evicted
// one's response freed its slot.
type ReplyCache struct {
	perClient int
	clients   map[uint16]*clientCache
}

// NewReplyCache sizes the cache for clients with the given request-window
// size (slots per client).
func NewReplyCache(window int) *ReplyCache {
	per := 2 * window
	if per < 4 {
		per = 4
	}
	return &ReplyCache{perClient: per, clients: make(map[uint16]*clientCache)}
}

// Admit records the arrival of (client, reqID). New requests are marked
// in-flight and dup=false: the caller must run the handler and Commit.
// Known requests return dup=true; if the first execution already committed,
// ready is true and rep holds the response to replay. dup && !ready means
// the original is still executing (a legacy-mode handler in progress) —
// the caller drops the duplicate silently; the in-flight execution's
// response is on its way.
func (rc *ReplyCache) Admit(client uint16, reqID uint64) (dup bool, rep CachedReply, ready bool) {
	cc := rc.clients[client]
	if cc == nil {
		cc = &clientCache{entries: make(map[uint64]*cacheEntry)}
		rc.clients[client] = cc
	}
	if e, ok := cc.entries[reqID]; ok {
		return true, e.rep, e.ready
	}
	if len(cc.order) >= rc.perClient {
		oldest := cc.order[0]
		cc.order = cc.order[1:]
		delete(cc.entries, oldest)
	}
	cc.entries[reqID] = &cacheEntry{reqID: reqID}
	cc.order = append(cc.order, reqID)
	return false, CachedReply{}, false
}

// Commit stores the executed response for (client, reqID), copying the
// payload (the caller's buffer is reused per request). A commit for an
// entry the window already evicted is dropped.
func (rc *ReplyCache) Commit(client uint16, reqID uint64, payload []byte, errFlag bool) {
	cc := rc.clients[client]
	if cc == nil {
		return
	}
	e, ok := cc.entries[reqID]
	if !ok {
		return
	}
	e.ready = true
	e.rep = CachedReply{Payload: append([]byte(nil), payload...), Err: errFlag}
}

// Drop forgets everything recorded for a client id. Call when the id is
// released for reuse (lease expiry, cache teardown, zone reclamation) —
// a fresh client under the same id starts its own reqID space.
func (rc *ReplyCache) Drop(client uint16) { delete(rc.clients, client) }
