package rpccore

import (
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/sim"
)

func TestJitterHashDeterministicAndBounded(t *testing.T) {
	for salt := uint64(0); salt < 4; salt++ {
		for req := uint64(1); req < 64; req++ {
			for attempt := 1; attempt < 8; attempt++ {
				f := jitterHash(salt, req, attempt)
				if f < 0 || f >= 1 {
					t.Fatalf("jitterHash(%d,%d,%d) = %v out of [0,1)", salt, req, attempt, f)
				}
				if f != jitterHash(salt, req, attempt) {
					t.Fatalf("jitterHash not deterministic at (%d,%d,%d)", salt, req, attempt)
				}
			}
		}
	}
	// Distinct salts must decorrelate the schedule for the same call.
	same := 0
	for req := uint64(1); req <= 100; req++ {
		a := jitterHash(1, req, 1)
		b := jitterHash(2, req, 1)
		if a == b {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 draws collided across salts", same)
	}
}

func TestNextIntervalCapAndJitter(t *testing.T) {
	o := CallOpts{MaxRetryInterval: 100, RetryJitter: 0.5, JitterSalt: 7}
	for _, in := range []sim.Duration{10, 100, 1000, 1 << 40} {
		got := o.nextInterval(in, 42, 3)
		base := in
		if base > 100 {
			base = 100
		}
		if got < base || got > base+base/2 {
			t.Fatalf("nextInterval(%d) = %d, want in [%d, %d]", in, got, base, base+base/2)
		}
	}
	// Zero-value opts: pure doubling, untouched.
	if got := (CallOpts{}).nextInterval(1<<40, 42, 3); got != 1<<40 {
		t.Fatalf("zero opts changed the interval: %d", got)
	}
}

// deadConn swallows every send and resend until recoverAt, recording the
// virtual time of each resend attempt; the first resend after recovery is
// answered. It models one client's requests through a link that comes back
// while the whole fleet is in backoff.
type deadConn struct {
	env       *sim.Env
	sig       *sim.Signal
	recoverAt sim.Time
	resendLog *[]sim.Time
	answered  bool
	ready     []Response
}

func (d *deadConn) TrySend(t *host.Thread, h uint8, payload []byte, reqID uint64) bool {
	return true
}

func (d *deadConn) Resend(t *host.Thread, reqID uint64) bool {
	*d.resendLog = append(*d.resendLog, d.env.Now())
	if d.env.Now() >= d.recoverAt && !d.answered {
		d.answered = true
		d.ready = append(d.ready, Response{ReqID: reqID})
		d.sig.Broadcast()
	}
	return true
}

func (d *deadConn) Poll(t *host.Thread, fn func(Response)) int {
	n := len(d.ready)
	for _, r := range d.ready {
		fn(r)
	}
	d.ready = d.ready[:0]
	return n
}

func (d *deadConn) Outstanding() int { return 0 }
func (d *deadConn) SlotCount() int   { return 1 }

// runRetryWave drives 64 clients, all posting at t=0 through a link that
// recovers at 2 ms, and returns the largest number of resend attempts
// sharing one virtual instant plus the largest gap between consecutive
// retries of any single client.
func runRetryWave(t *testing.T, opts func(client int) CallOpts) (maxBurst int, maxGap sim.Duration) {
	t.Helper()
	c := cluster.New(cluster.Default(1))
	defer c.Close()
	sig := sim.NewSignal(c.Env)
	const clients = 64
	recoverAt := sim.Time(2 * sim.Millisecond)

	logs := make([][]sim.Time, clients)
	done := 0
	for i := 0; i < clients; i++ {
		i := i
		conn := &deadConn{env: c.Env, sig: sig, recoverAt: recoverAt, resendLog: &logs[i]}
		caller := NewCaller(conn, opts(i), nil)
		c.Hosts[0].Spawn("client", func(th *host.Thread) {
			if !caller.TrySend(th, 1, nil, uint64(i)+1) {
				t.Error("send refused")
			}
			got := false
			for !got && th.P.Now() < 20*sim.Millisecond {
				caller.Poll(th, func(Response) { got = true })
				if !got {
					th.WaitSignal(sig, 5*sim.Microsecond)
				}
			}
			if got {
				done++
			}
		})
	}
	c.Env.RunUntil(25 * sim.Millisecond)
	if done != clients {
		t.Fatalf("only %d/%d clients completed through the recovered link", done, clients)
	}

	byInstant := map[sim.Time]int{}
	for i, log := range logs {
		for j, at := range log {
			byInstant[at]++
			if j > 0 {
				if gap := sim.Duration(at - log[j-1]); gap > maxGap {
					maxGap = gap
				}
			}
		}
		if len(log) == 0 {
			t.Fatalf("client %d never retried", i)
		}
	}
	for _, n := range byInstant {
		if n > maxBurst {
			maxBurst = n
		}
	}
	return maxBurst, maxGap
}

// TestRetryJitterBreaksStampede runs the 64-client recovered-link wave
// twice: the unjittered schedule must produce fully synchronized retry
// bursts (the regression this guards), and salted jitter plus the interval
// cap must both spread the bursts and bound any client's backoff gap.
func TestRetryJitterBreaksStampede(t *testing.T) {
	plain := CallOpts{Timeout: 50 * sim.Millisecond, RetryInterval: 40 * sim.Microsecond, MaxRetries: 12}
	burst, _ := runRetryWave(t, func(int) CallOpts { return plain })
	if burst != 64 {
		t.Fatalf("unjittered wave: max burst %d, want the full 64 (schedule should be synchronized)", burst)
	}

	jittered := plain
	jittered.MaxRetryInterval = 160 * sim.Microsecond
	jittered.RetryJitter = 1.0
	burst, gap := runRetryWave(t, func(i int) CallOpts {
		o := jittered
		o.JitterSalt = uint64(i) + 1
		return o
	})
	if burst > 24 {
		t.Fatalf("jittered wave: max burst %d, want the stampede broken up (≤ 24)", burst)
	}
	// Cap: interval can reach at most MaxRetryInterval*(1+jitter), plus the
	// 5 µs poll grid.
	if limit := sim.Duration(2*160+10) * sim.Microsecond; gap > limit {
		t.Fatalf("max backoff gap %d ns exceeds capped schedule %d ns", gap, limit)
	}
}
