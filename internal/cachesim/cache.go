// Package cachesim implements a set-associative last-level-cache simulator
// with an Intel DDIO-style DMA write path.
//
// The model distinguishes two agents:
//
//   - CPU accesses (Read/Write) may allocate in any way of a set.
//   - DMA writes from the NIC follow DDIO: if the target line is already
//     resident it is updated in place ("Write Update"); otherwise the line
//     is allocated ("Write Allocate"), but DDIO-allocated lines may occupy
//     at most DDIOWays ways of each set — the "10% of the LLC" restriction
//     the paper cites from the Intel DDIO primer. When that budget is
//     exhausted the allocation evicts the oldest DDIO line of the set,
//     which is exactly the churn that shows up as PCIeItoM traffic and CPU
//     read misses in Figures 3(b) and 10.
//
// A CPU read hit on a DDIO-allocated line "adopts" it: the line is then
// ordinary cached data and no longer counts against the DDIO budget.
package cachesim

import (
	"fmt"

	"scalerpc/internal/telemetry"
)

// Stats counts cache events. All counters are cumulative.
type Stats struct {
	CPUReadHits    uint64
	CPUReadMisses  uint64
	CPUWriteHits   uint64
	CPUWriteMisses uint64
	DMAUpdates     uint64 // DMA write hit: in-place update (Write Update)
	DMAAllocs      uint64 // DMA write miss: Write Allocate
	DMAEvictions   uint64 // DDIO allocations that displaced another DDIO line
	Evictions      uint64 // all line replacements
}

// MissRate returns the CPU read miss ratio in [0,1].
func (s Stats) MissRate() float64 {
	total := s.CPUReadHits + s.CPUReadMisses
	if total == 0 {
		return 0
	}
	return float64(s.CPUReadMisses) / float64(total)
}

type line struct {
	tag   uint64 // tag+1; 0 means invalid
	stamp uint64 // per-set LRU clock value at last touch
	ddio  bool   // allocated by DMA and not yet read by the CPU
}

// Cache is a set-associative LRU cache. It is not safe for concurrent use;
// in the simulator all accesses happen on the single scheduler goroutine.
type Cache struct {
	Stats
	lineSize uint64
	sets     uint64
	ways     int
	ddioWays int
	lines    []line // sets × ways
	clock    uint64
}

// Config describes a cache geometry.
type Config struct {
	SizeBytes int // total capacity
	Ways      int // associativity
	LineSize  int // bytes per line (typically 64)
	DDIOWays  int // max ways per set occupied by unread DMA data
}

// New builds a cache. Size must be divisible by Ways*LineSize; the set
// count is rounded down to a power of two for cheap indexing.
func New(cfg Config) *Cache {
	if cfg.LineSize <= 0 || cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic("cachesim: invalid config")
	}
	if cfg.DDIOWays <= 0 || cfg.DDIOWays > cfg.Ways {
		panic(fmt.Sprintf("cachesim: DDIOWays %d out of range (ways=%d)", cfg.DDIOWays, cfg.Ways))
	}
	sets := uint64(cfg.SizeBytes / (cfg.Ways * cfg.LineSize))
	if sets == 0 {
		sets = 1
	}
	// Round down to a power of two.
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	return &Cache{
		lineSize: uint64(cfg.LineSize),
		sets:     sets,
		ways:     cfg.Ways,
		ddioWays: cfg.DDIOWays,
		lines:    make([]line, int(sets)*cfg.Ways),
	}
}

// SizeBytes returns the effective capacity after set rounding.
func (c *Cache) SizeBytes() int { return int(c.sets) * c.ways * int(c.lineSize) }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return int(c.lineSize) }

func (c *Cache) set(addr uint64) (setBase int, tag uint64) {
	lineNo := addr / c.lineSize
	return int(lineNo&(c.sets-1)) * c.ways, lineNo/c.sets + 1
}

// lookup returns the way index holding tag in the set, or -1.
func (c *Cache) lookup(setBase int, tag uint64) int {
	for w := 0; w < c.ways; w++ {
		if c.lines[setBase+w].tag == tag {
			return w
		}
	}
	return -1
}

// victim returns the way to replace for a CPU allocation: an invalid way if
// any, else the LRU way.
func (c *Cache) victim(setBase int) int {
	best, bestStamp := 0, ^uint64(0)
	for w := 0; w < c.ways; w++ {
		l := &c.lines[setBase+w]
		if l.tag == 0 {
			return w
		}
		if l.stamp < bestStamp {
			best, bestStamp = w, l.stamp
		}
	}
	return best
}

// CPURead touches [addr, addr+size) as CPU loads and returns the number of
// lines that hit and missed.
func (c *Cache) CPURead(addr, size uint64) (hits, misses int) {
	c.forEachLine(addr, size, func(setBase int, tag uint64) {
		c.clock++
		if w := c.lookup(setBase, tag); w >= 0 {
			l := &c.lines[setBase+w]
			l.stamp = c.clock
			l.ddio = false // adopted by the CPU
			hits++
			c.CPUReadHits++
			return
		}
		misses++
		c.CPUReadMisses++
		w := c.victim(setBase)
		l := &c.lines[setBase+w]
		if l.tag != 0 {
			c.Evictions++
		}
		*l = line{tag: tag, stamp: c.clock}
	})
	return hits, misses
}

// CPUWrite touches [addr, addr+size) as CPU stores (write-allocate policy).
func (c *Cache) CPUWrite(addr, size uint64) (hits, misses int) {
	c.forEachLine(addr, size, func(setBase int, tag uint64) {
		c.clock++
		if w := c.lookup(setBase, tag); w >= 0 {
			l := &c.lines[setBase+w]
			l.stamp = c.clock
			l.ddio = false
			hits++
			c.CPUWriteHits++
			return
		}
		misses++
		c.CPUWriteMisses++
		w := c.victim(setBase)
		l := &c.lines[setBase+w]
		if l.tag != 0 {
			c.Evictions++
		}
		*l = line{tag: tag, stamp: c.clock}
	})
	return hits, misses
}

// DMAWrite performs a DDIO write of [addr, addr+size) and returns how many
// lines were updated in place versus write-allocated.
func (c *Cache) DMAWrite(addr, size uint64) (updates, allocs int) {
	c.forEachLine(addr, size, func(setBase int, tag uint64) {
		c.clock++
		if w := c.lookup(setBase, tag); w >= 0 {
			// Write Update: in-place, keeps current DDIO status.
			l := &c.lines[setBase+w]
			l.stamp = c.clock
			updates++
			c.DMAUpdates++
			return
		}
		allocs++
		c.DMAAllocs++
		// Write Allocate, restricted to the DDIO way budget: prefer an
		// invalid way; otherwise, if the set already holds DDIOWays dma
		// lines, replace the oldest of those; otherwise replace global LRU.
		invalid, oldestDDIO, ddioCount := -1, -1, 0
		var oldestDDIOStamp uint64 = ^uint64(0)
		for w := 0; w < c.ways; w++ {
			l := &c.lines[setBase+w]
			if l.tag == 0 {
				if invalid < 0 {
					invalid = w
				}
				continue
			}
			if l.ddio {
				ddioCount++
				if l.stamp < oldestDDIOStamp {
					oldestDDIO, oldestDDIOStamp = w, l.stamp
				}
			}
		}
		var w int
		switch {
		case invalid >= 0:
			w = invalid
		case ddioCount >= c.ddioWays:
			w = oldestDDIO
			c.DMAEvictions++
			c.Evictions++
		default:
			w = c.victim(setBase)
			c.Evictions++
		}
		c.lines[setBase+w] = line{tag: tag, stamp: c.clock, ddio: true}
	})
	return updates, allocs
}

// Contains reports whether the line holding addr is resident (no LRU touch).
func (c *Cache) Contains(addr uint64) bool {
	setBase, tag := c.set(addr)
	return c.lookup(setBase, tag) >= 0
}

// Flush invalidates the whole cache but keeps statistics.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// Reset zeroes the counters.
func (c *Cache) Reset() { c.Stats = Stats{} }

// Snapshot returns a copy of the counters.
func (c *Cache) Snapshot() Stats { return c.Stats }

// Register publishes the cache counters into a telemetry scope
// (conventionally "llc<hostID>"). The embedded Stats struct remains the
// storage; the registry observes the fields in place.
func (c *Cache) Register(sc telemetry.Scope) {
	sc.CounterVar("cpu.read.hit", &c.CPUReadHits)
	sc.CounterVar("cpu.read.miss", &c.CPUReadMisses)
	sc.CounterVar("cpu.write.hit", &c.CPUWriteHits)
	sc.CounterVar("cpu.write.miss", &c.CPUWriteMisses)
	sc.CounterVar("dma.update", &c.DMAUpdates)
	sc.CounterVar("dma.alloc", &c.DMAAllocs)
	sc.CounterVar("dma.evict", &c.DMAEvictions)
	sc.CounterVar("evictions", &c.Evictions)
}

func (c *Cache) forEachLine(addr, size uint64, fn func(setBase int, tag uint64)) {
	if size == 0 {
		return
	}
	first := addr / c.lineSize
	last := (addr + size - 1) / c.lineSize
	for lineNo := first; lineNo <= last; lineNo++ {
		a := lineNo * c.lineSize
		setBase, tag := c.set(a)
		fn(setBase, tag)
	}
}
