// Package cachesim implements a set-associative last-level-cache simulator
// with an Intel DDIO-style DMA write path.
//
// The model distinguishes two agents:
//
//   - CPU accesses (Read/Write) may allocate in any way of a set.
//   - DMA writes from the NIC follow DDIO: if the target line is already
//     resident it is updated in place ("Write Update"); otherwise the line
//     is allocated ("Write Allocate"), but DDIO-allocated lines may occupy
//     at most DDIOWays ways of each set — the "10% of the LLC" restriction
//     the paper cites from the Intel DDIO primer. When that budget is
//     exhausted the allocation evicts the oldest DDIO line of the set,
//     which is exactly the churn that shows up as PCIeItoM traffic and CPU
//     read misses in Figures 3(b) and 10.
//
// A CPU read hit on a DDIO-allocated line "adopts" it: the line is then
// ordinary cached data and no longer counts against the DDIO budget.
package cachesim

import (
	"fmt"
	"math/bits"

	"scalerpc/internal/telemetry"
)

// Stats counts cache events. All counters are cumulative.
type Stats struct {
	CPUReadHits    uint64
	CPUReadMisses  uint64
	CPUWriteHits   uint64
	CPUWriteMisses uint64
	DMAUpdates     uint64 // DMA write hit: in-place update (Write Update)
	DMAAllocs      uint64 // DMA write miss: Write Allocate
	DMAEvictions   uint64 // DDIO allocations that displaced another DDIO line
	Evictions      uint64 // all line replacements
}

// MissRate returns the CPU read miss ratio in [0,1].
func (s Stats) MissRate() float64 {
	total := s.CPUReadHits + s.CPUReadMisses
	if total == 0 {
		return 0
	}
	return float64(s.CPUReadMisses) / float64(total)
}

// Cache is a set-associative LRU cache. It is not safe for concurrent use;
// in the simulator all accesses happen on the single scheduler goroutine.
//
// Line state is stored structure-of-arrays: tag lookups — the hot operation
// of every simulated memory touch — scan a contiguous run of 8-byte tags
// instead of striding over a struct array.
type Cache struct {
	Stats
	lineSize uint64
	sets     uint64
	ways     int
	ddioWays int
	// linePow2/lineShift: fast path for the (universal) power-of-two line
	// size; setShift is always valid since the set count is a power of two.
	linePow2  bool
	lineShift uint
	setShift  uint
	tags      []uint64 // tag+1; 0 means invalid
	stamps    []uint64 // per-set LRU clock value at last touch
	ddio      []bool   // allocated by DMA and not yet read by the CPU
	// mru caches the last way touched per set (indexed by setBase, so the
	// slice is sets×ways with only every ways-th entry used — trades a
	// little memory for division-free indexing). Poll loops touch the same
	// handful of lines over and over; checking the hinted way first turns
	// the common lookup into one compare instead of a full way scan. Purely
	// an accelerator: hit/miss/eviction decisions are unchanged.
	mru   []int32
	clock uint64
}

// Config describes a cache geometry.
type Config struct {
	SizeBytes int // total capacity
	Ways      int // associativity
	LineSize  int // bytes per line (typically 64)
	DDIOWays  int // max ways per set occupied by unread DMA data
}

// New builds a cache. Size must be divisible by Ways*LineSize; the set
// count is rounded down to a power of two for cheap indexing.
func New(cfg Config) *Cache {
	if cfg.LineSize <= 0 || cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic("cachesim: invalid config")
	}
	if cfg.DDIOWays <= 0 || cfg.DDIOWays > cfg.Ways {
		panic(fmt.Sprintf("cachesim: DDIOWays %d out of range (ways=%d)", cfg.DDIOWays, cfg.Ways))
	}
	sets := uint64(cfg.SizeBytes / (cfg.Ways * cfg.LineSize))
	if sets == 0 {
		sets = 1
	}
	// Round down to a power of two.
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	n := int(sets) * cfg.Ways
	c := &Cache{
		lineSize: uint64(cfg.LineSize),
		sets:     sets,
		ways:     cfg.Ways,
		ddioWays: cfg.DDIOWays,
		setShift: uint(bits.TrailingZeros64(sets)),
		tags:     make([]uint64, n),
		stamps:   make([]uint64, n),
		ddio:     make([]bool, n),
		mru:      make([]int32, n),
	}
	if c.lineSize&(c.lineSize-1) == 0 {
		c.linePow2 = true
		c.lineShift = uint(bits.TrailingZeros64(c.lineSize))
	}
	return c
}

// SizeBytes returns the effective capacity after set rounding.
func (c *Cache) SizeBytes() int { return int(c.sets) * c.ways * int(c.lineSize) }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return int(c.lineSize) }

func (c *Cache) lineNo(addr uint64) uint64 {
	if c.linePow2 {
		return addr >> c.lineShift
	}
	return addr / c.lineSize
}

// setOf maps a line number to its set's base index in the SoA arrays and
// the line's tag (tag+1, so 0 stays "invalid").
func (c *Cache) setOf(lineNo uint64) (setBase int, tag uint64) {
	return int(lineNo&(c.sets-1)) * c.ways, lineNo>>c.setShift + 1
}

// lookup returns the way index holding tag in the set, or -1. The MRU hint
// is checked first; on a full-scan hit the hint is refreshed.
func (c *Cache) lookup(setBase int, tag uint64) int {
	if m := c.mru[setBase]; c.tags[setBase+int(m)] == tag {
		return int(m)
	}
	tags := c.tags[setBase : setBase+c.ways]
	for w, t := range tags {
		if t == tag {
			c.mru[setBase] = int32(w)
			return w
		}
	}
	return -1
}

// victim returns the way to replace for a CPU allocation: an invalid way if
// any, else the LRU way.
func (c *Cache) victim(setBase int) int {
	best, bestStamp := 0, ^uint64(0)
	for w := 0; w < c.ways; w++ {
		if c.tags[setBase+w] == 0 {
			return w
		}
		if s := c.stamps[setBase+w]; s < bestStamp {
			best, bestStamp = w, s
		}
	}
	return best
}

// touchRead handles one line of a CPU read; reports whether it hit.
func (c *Cache) touchRead(setBase int, tag uint64) bool {
	c.clock++
	if w := c.lookup(setBase, tag); w >= 0 {
		i := setBase + w
		c.stamps[i] = c.clock
		c.ddio[i] = false // adopted by the CPU
		c.CPUReadHits++
		return true
	}
	c.CPUReadMisses++
	i := setBase + c.victim(setBase)
	if c.tags[i] != 0 {
		c.Evictions++
	}
	c.tags[i], c.stamps[i], c.ddio[i] = tag, c.clock, false
	c.mru[setBase] = int32(i - setBase)
	return false
}

// CPURead touches [addr, addr+size) as CPU loads and returns the number of
// lines that hit and missed.
func (c *Cache) CPURead(addr, size uint64) (hits, misses int) {
	if size == 0 {
		return
	}
	first, last := c.lineNo(addr), c.lineNo(addr+size-1)
	for lineNo := first; lineNo <= last; lineNo++ {
		if c.touchRead(c.setOf(lineNo)) {
			hits++
		} else {
			misses++
		}
	}
	return hits, misses
}

// touchWrite handles one line of a CPU store; reports whether it hit.
func (c *Cache) touchWrite(setBase int, tag uint64) bool {
	c.clock++
	if w := c.lookup(setBase, tag); w >= 0 {
		i := setBase + w
		c.stamps[i] = c.clock
		c.ddio[i] = false
		c.CPUWriteHits++
		return true
	}
	c.CPUWriteMisses++
	i := setBase + c.victim(setBase)
	if c.tags[i] != 0 {
		c.Evictions++
	}
	c.tags[i], c.stamps[i], c.ddio[i] = tag, c.clock, false
	c.mru[setBase] = int32(i - setBase)
	return false
}

// CPUWrite touches [addr, addr+size) as CPU stores (write-allocate policy).
func (c *Cache) CPUWrite(addr, size uint64) (hits, misses int) {
	if size == 0 {
		return
	}
	first, last := c.lineNo(addr), c.lineNo(addr+size-1)
	for lineNo := first; lineNo <= last; lineNo++ {
		if c.touchWrite(c.setOf(lineNo)) {
			hits++
		} else {
			misses++
		}
	}
	return hits, misses
}

// touchDMA handles one line of a DDIO write; reports whether it updated in
// place (versus write-allocated).
func (c *Cache) touchDMA(setBase int, tag uint64) bool {
	c.clock++
	if w := c.lookup(setBase, tag); w >= 0 {
		// Write Update: in-place, keeps current DDIO status.
		c.stamps[setBase+w] = c.clock
		c.DMAUpdates++
		return true
	}
	c.DMAAllocs++
	// Write Allocate, restricted to the DDIO way budget: prefer an
	// invalid way; otherwise, if the set already holds DDIOWays dma
	// lines, replace the oldest of those; otherwise replace global LRU.
	invalid, oldestDDIO, ddioCount := -1, -1, 0
	var oldestDDIOStamp uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := setBase + w
		if c.tags[i] == 0 {
			if invalid < 0 {
				invalid = w
			}
			continue
		}
		if c.ddio[i] {
			ddioCount++
			if s := c.stamps[i]; s < oldestDDIOStamp {
				oldestDDIO, oldestDDIOStamp = w, s
			}
		}
	}
	var w int
	switch {
	case invalid >= 0:
		w = invalid
	case ddioCount >= c.ddioWays:
		w = oldestDDIO
		c.DMAEvictions++
		c.Evictions++
	default:
		w = c.victim(setBase)
		c.Evictions++
	}
	i := setBase + w
	c.tags[i], c.stamps[i], c.ddio[i] = tag, c.clock, true
	c.mru[setBase] = int32(i - setBase)
	return false
}

// DMAWrite performs a DDIO write of [addr, addr+size) and returns how many
// lines were updated in place versus write-allocated.
func (c *Cache) DMAWrite(addr, size uint64) (updates, allocs int) {
	if size == 0 {
		return
	}
	first, last := c.lineNo(addr), c.lineNo(addr+size-1)
	for lineNo := first; lineNo <= last; lineNo++ {
		if c.touchDMA(c.setOf(lineNo)) {
			updates++
		} else {
			allocs++
		}
	}
	return updates, allocs
}

// Contains reports whether the line holding addr is resident (no LRU touch).
func (c *Cache) Contains(addr uint64) bool {
	setBase, tag := c.setOf(c.lineNo(addr))
	return c.lookup(setBase, tag) >= 0
}

// Flush invalidates the whole cache but keeps statistics.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i], c.stamps[i], c.ddio[i] = 0, 0, false
	}
}

// Reset zeroes the counters.
func (c *Cache) Reset() { c.Stats = Stats{} }

// Snapshot returns a copy of the counters.
func (c *Cache) Snapshot() Stats { return c.Stats }

// Register publishes the cache counters into a telemetry scope
// (conventionally "llc<hostID>"). The embedded Stats struct remains the
// storage; the registry observes the fields in place.
func (c *Cache) Register(sc telemetry.Scope) {
	sc.CounterVar("cpu.read.hit", &c.CPUReadHits)
	sc.CounterVar("cpu.read.miss", &c.CPUReadMisses)
	sc.CounterVar("cpu.write.hit", &c.CPUWriteHits)
	sc.CounterVar("cpu.write.miss", &c.CPUWriteMisses)
	sc.CounterVar("dma.update", &c.DMAUpdates)
	sc.CounterVar("dma.alloc", &c.DMAAllocs)
	sc.CounterVar("dma.evict", &c.DMAEvictions)
	sc.CounterVar("evictions", &c.Evictions)
}
