package cachesim

import (
	"testing"
	"testing/quick"
)

func small() *Cache {
	// 4 sets × 4 ways × 64 B = 1 KiB, DDIO budget 1 way.
	return New(Config{SizeBytes: 1024, Ways: 4, LineSize: 64, DDIOWays: 1})
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	_, m := c.CPURead(0, 64)
	if m != 1 {
		t.Fatalf("cold read misses = %d, want 1", m)
	}
	h, m := c.CPURead(0, 64)
	if h != 1 || m != 0 {
		t.Fatalf("warm read = %d hits %d misses, want 1,0", h, m)
	}
}

func TestMultiLineAccessCounts(t *testing.T) {
	c := small()
	h, m := c.CPURead(0, 256) // 4 lines
	if h != 0 || m != 4 {
		t.Fatalf("got %d/%d, want 0 hits 4 misses", h, m)
	}
	h, m = c.CPURead(32, 64) // straddles lines 0 and 1
	if h != 2 || m != 0 {
		t.Fatalf("straddling read: %d/%d, want 2 hits", h, m)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()
	// Fill set 0 (addresses with same set index: stride = sets*lineSize = 256).
	for i := uint64(0); i < 4; i++ {
		c.CPURead(i*256, 1)
	}
	// Touch line 0 so line at 256 becomes LRU.
	c.CPURead(0, 1)
	// Insert a 5th line: must evict addr 256.
	c.CPURead(4*256, 1)
	if !c.Contains(0) {
		t.Fatal("recently used line was evicted")
	}
	if c.Contains(256) {
		t.Fatal("LRU line survived eviction")
	}
}

func TestWorkingSetFitsNoMisses(t *testing.T) {
	c := New(Config{SizeBytes: 1 << 20, Ways: 16, LineSize: 64, DDIOWays: 2})
	// 256 KiB working set inside a 1 MiB cache: after warmup, zero misses.
	warm := func() (hits, misses int) {
		for a := uint64(0); a < 256<<10; a += 64 {
			h, m := c.CPURead(a, 64)
			hits += h
			misses += m
		}
		return
	}
	warm()
	h, m := warm()
	if m != 0 {
		t.Fatalf("resident working set produced %d misses (hits %d)", m, h)
	}
}

func TestWorkingSetExceedsThrashes(t *testing.T) {
	c := New(Config{SizeBytes: 1 << 20, Ways: 16, LineSize: 64, DDIOWays: 2})
	// 4 MiB working set through a 1 MiB cache, sequential scan: ~every
	// access misses once warm (LRU worst case).
	scan := func() (misses int) {
		for a := uint64(0); a < 4<<20; a += 64 {
			_, m := c.CPURead(a, 64)
			misses += m
		}
		return
	}
	scan()
	m := scan()
	total := (4 << 20) / 64
	if float64(m)/float64(total) < 0.99 {
		t.Fatalf("oversized scan missed only %d/%d", m, total)
	}
}

func TestDMAWriteUpdateInPlace(t *testing.T) {
	c := small()
	c.CPURead(0, 64) // make line resident
	u, a := c.DMAWrite(0, 64)
	if u != 1 || a != 0 {
		t.Fatalf("DMA to resident line: updates=%d allocs=%d, want 1,0", u, a)
	}
}

func TestDMAWriteAllocate(t *testing.T) {
	c := small()
	u, a := c.DMAWrite(0, 64)
	if u != 0 || a != 1 {
		t.Fatalf("DMA to absent line: updates=%d allocs=%d, want 0,1", u, a)
	}
	if !c.Contains(0) {
		t.Fatal("write-allocated line not resident")
	}
}

func TestDDIOWayBudget(t *testing.T) {
	c := small() // 4 ways, DDIO budget 1
	// Fill set 0 with CPU data.
	for i := uint64(0); i < 4; i++ {
		c.CPURead(i*256, 1)
	}
	// Two DMA writes to new lines in the same set: the second must evict
	// the first (DDIO budget exhausted), never a second CPU line.
	c.DMAWrite(4*256, 64)
	before := c.Snapshot()
	c.DMAWrite(5*256, 64)
	after := c.Snapshot()
	if after.DMAEvictions != before.DMAEvictions+1 {
		t.Fatalf("second DMA alloc should evict the DDIO line: %+v", after)
	}
	if c.Contains(4 * 256) {
		t.Fatal("older DDIO line should have been displaced")
	}
	// Three of the four original CPU lines survive (one was displaced by
	// the first DMA alloc since the set was full).
	survivors := 0
	for i := uint64(0); i < 4; i++ {
		if c.Contains(i * 256) {
			survivors++
		}
	}
	if survivors < 3 {
		t.Fatalf("CPU lines displaced by DDIO beyond budget: %d/4 survive", survivors)
	}
}

func TestCPUReadAdoptsDDIOLine(t *testing.T) {
	c := small()
	for i := uint64(0); i < 4; i++ {
		c.CPURead(i*256, 1)
	}
	c.DMAWrite(4*256, 64) // DDIO line
	c.CPURead(4*256, 64)  // CPU adopts it
	// A further DMA alloc in this set now has no DDIO victim, so it evicts
	// the set LRU instead — the adopted line must survive (it is MRU).
	c.DMAWrite(5*256, 64)
	if !c.Contains(4 * 256) {
		t.Fatal("adopted line was evicted as if still DDIO")
	}
}

func TestStatsAccumulate(t *testing.T) {
	c := small()
	c.CPURead(0, 64)
	c.CPURead(0, 64)
	c.CPUWrite(64, 64)
	c.DMAWrite(128, 64)
	s := c.Snapshot()
	if s.CPUReadHits != 1 || s.CPUReadMisses != 1 {
		t.Fatalf("read stats %+v", s)
	}
	if s.CPUWriteMisses != 1 {
		t.Fatalf("write stats %+v", s)
	}
	if s.DMAAllocs != 1 {
		t.Fatalf("dma stats %+v", s)
	}
	if mr := s.MissRate(); mr != 0.5 {
		t.Fatalf("MissRate = %f, want 0.5", mr)
	}
	c.Reset()
	if c.Snapshot() != (Stats{}) {
		t.Fatal("Reset did not zero counters")
	}
}

func TestFlushInvalidates(t *testing.T) {
	c := small()
	c.CPURead(0, 64)
	c.Flush()
	if c.Contains(0) {
		t.Fatal("line survived Flush")
	}
}

func TestSetRoundingPowerOfTwo(t *testing.T) {
	// 30 MiB, 20 ways, 64 B lines → 24576 sets → rounded to 16384.
	c := New(Config{SizeBytes: 30 << 20, Ways: 20, LineSize: 64, DDIOWays: 2})
	if c.SizeBytes() != 16384*20*64 {
		t.Fatalf("SizeBytes = %d", c.SizeBytes())
	}
}

func TestPropertyReadAfterWriteAlwaysHits(t *testing.T) {
	c := New(Config{SizeBytes: 1 << 16, Ways: 8, LineSize: 64, DDIOWays: 2})
	err := quick.Check(func(a uint32) bool {
		addr := uint64(a) % (1 << 24)
		c.CPUWrite(addr, 64)
		h, _ := c.CPURead(addr, 1)
		return h == 1
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyResidencyNeverExceedsCapacity(t *testing.T) {
	c := New(Config{SizeBytes: 1 << 12, Ways: 4, LineSize: 64, DDIOWays: 1})
	touched := map[uint64]bool{}
	q := NewRNGLike(99)
	for i := 0; i < 10000; i++ {
		addr := uint64(q.next()%(1<<20)) &^ 63
		c.CPURead(addr, 64)
		touched[addr] = true
	}
	resident := 0
	for a := range touched {
		if c.Contains(a) {
			resident++
		}
	}
	max := c.SizeBytes() / c.LineSize()
	if resident > max {
		t.Fatalf("resident lines %d exceed capacity %d", resident, max)
	}
}

// NewRNGLike is a tiny local PRNG to avoid an import cycle with stats.
type rngLike struct{ s uint64 }

func NewRNGLike(seed uint64) *rngLike { return &rngLike{s: seed} }
func (r *rngLike) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}
