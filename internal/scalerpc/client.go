package scalerpc

import (
	"encoding/binary"

	"scalerpc/internal/ctrlplane"
	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/rpcwire"
	"scalerpc/internal/sim"
	"scalerpc/internal/telemetry"
)

// ClientState is the Figure 7 state of an RPCClient.
type ClientState int

// Client states (Figure 7).
const (
	StateIdle ClientState = iota
	StateWarmup
	StateProcess
)

func (s ClientState) String() string {
	switch s {
	case StateIdle:
		return "IDLE"
	case StateWarmup:
		return "WARMUP"
	case StateProcess:
		return "PROCESS"
	}
	return "?"
}

type connSlot struct {
	busy   bool
	reqID  uint64
	staged bool // encoded request sits in the staging block (re-sendable)
	msgLen int  // encoded message length, for re-compaction
}

// Conn is a ScaleRPC RPCClient endpoint. It is driven by a single client
// thread; Poll advances the state machine.
type Conn struct {
	id  uint16
	h   *host.Host
	s   *Server
	qp  *nic.QP
	sig *sim.Signal

	stage *memory.Region
	// entryScratch is a tiny staging area for the endpoint-entry tuple.
	entryScratch *memory.Region
	resp         *rpcwire.Pool
	buf          []byte // request assembly buffer (no memory-model cost)
	// respBuf holds a stable snapshot of the response frame being
	// delivered: the response block is live RDMA-writable memory, and
	// ReadMem/WriteMem below yield virtual time during which a late
	// duplicate response may overwrite the slot in place.
	respBuf []byte

	state       ClientState
	zone        int
	poolIdx     int
	stagedCount int
	stagedSpan  int // max encoded span among staged requests this round
	round       uint32
	entryDirty  bool

	slots       []connSlot
	outstanding int

	// pinned marks a latency-sensitive connection: always PROCESS, always
	// pool 0, never context-switched.
	pinned bool

	// Control-plane membership state (membership.go). mgr/cp are nil for
	// connections admitted through the legacy Connect backdoor. left is
	// true between Leave and Rejoin: the QP is parked in the connection
	// cache and TrySend/Poll are inert.
	mgr        *ctrlplane.Manager
	cp         *ctrlplane.Conn
	joinPinned bool
	joinTenant uint16
	left       bool

	// Named-API state (api.go).
	nextHandle  uint64
	completions []Completion

	// Retries counts requests re-staged after a context switch found them
	// unanswered (the §3.5 at-least-once window).
	Retries uint64
	// Switches counts context_switch_events observed.
	Switches uint64
	// Reconnects counts connection rebuilds after a QP error.
	Reconnects uint64

	// trace is the server registry's event sink (always non-nil).
	trace *telemetry.Trace
}

// traceState emits a client_state transition event.
func (c *Conn) traceState(to ClientState) {
	if c.trace.Enabled {
		c.trace.Emit(c.h.Env.Now(), "client_state",
			telemetry.A("client", int64(c.id)), telemetry.A("state", int64(to)))
	}
}

// State returns the connection's Figure 7 state.
func (c *Conn) State() ClientState { return c.state }

// Zone returns the current zone assignment (-1 when not in PROCESS).
func (c *Conn) Zone() int {
	if c.state != StateProcess {
		return -1
	}
	return c.zone
}

// SlotCount returns the request window size.
func (c *Conn) SlotCount() int { return len(c.slots) }

// Outstanding returns the number of in-flight requests.
func (c *Conn) Outstanding() int { return c.outstanding }

// TrySend posts one request. In IDLE it opens a new warmup round; in WARMUP
// it stages locally (step 1 of Figure 6) for the server to fetch; in
// PROCESS it RDMA-writes directly into the processing pool.
func (c *Conn) TrySend(t *host.Thread, handler uint8, payload []byte, reqID uint64) bool {
	if c.left {
		return false
	}
	// Batch the staging-area writes with the doorbell (direct sends) or the
	// end of the call (warmup staging) — one core charge per send. The lazy
	// close leaves any residue to be absorbed into the caller's next park.
	t.BeginWork()
	defer t.EndWorkLazy()
	switch c.state {
	case StateIdle:
		c.beginWarmup()
		return c.stageRequest(t, handler, payload, reqID)
	case StateWarmup:
		return c.stageRequest(t, handler, payload, reqID)
	case StateProcess:
		return c.directSend(t, handler, payload, reqID)
	}
	return false
}

// beginWarmup opens a new warmup round (IDLE → WARMUP).
func (c *Conn) beginWarmup() {
	c.round++
	c.stagedCount = 0
	c.stagedSpan = 0
	c.state = StateWarmup
	c.entryDirty = true
	c.traceState(StateWarmup)
}

// stageRequest encodes the request into the next contiguous staging block.
func (c *Conn) stageRequest(t *host.Thread, handler uint8, payload []byte, reqID uint64) bool {
	if c.stagedCount >= len(c.slots) {
		return false
	}
	b := c.stagedCount
	if c.slots[b].busy {
		return false // occupied by an unanswered request awaiting its turn
	}
	msgLen, ok := c.encodeInto(t, b, handler, payload, reqID)
	if !ok {
		return false
	}
	c.slots[b] = connSlot{busy: true, reqID: reqID, staged: true, msgLen: msgLen}
	c.stagedCount++
	if sp := msgLen + rpcwire.TrailerSize; sp > c.stagedSpan {
		c.stagedSpan = sp
	}
	c.outstanding++
	c.entryDirty = true
	return true
}

// directSend writes the request straight into the client's zone of the
// processing pool (PROCESS state).
func (c *Conn) directSend(t *host.Thread, handler uint8, payload []byte, reqID uint64) bool {
	b := -1
	for i := range c.slots {
		if !c.slots[i].busy {
			b = i
			break
		}
	}
	if b < 0 {
		return false
	}
	msgLen, ok := c.encodeInto(t, b, handler, payload, reqID)
	if !ok {
		return false
	}
	pool := c.s.pools[c.poolIdx]
	off, span := rpcwire.EncodedSpan(c.s.Cfg.BlockSize, msgLen)
	wr := nic.SendWR{
		Op:    nic.OpWrite,
		LKey:  c.stage.LKey,
		LAddr: c.stage.Base + uint64(b*c.s.Cfg.BlockSize+off),
		Len:   span,
		RKey:  pool.RKey(),
		RAddr: pool.BlockAddr(c.zone, b) + uint64(off),
	}
	if span <= c.h.NIC.Cfg.MaxInline {
		wr.Inline = true
	}
	if err := t.PostSend(c.qp, wr); err != nil {
		return false
	}
	c.slots[b] = connSlot{busy: true, reqID: reqID, staged: true, msgLen: msgLen}
	c.outstanding++
	return true
}

// encodeInto builds the framed request in staging block b.
func (c *Conn) encodeInto(t *host.Thread, b int, handler uint8, payload []byte, reqID uint64) (int, bool) {
	msgLen := rpcwire.HeaderSize + len(payload)
	if msgLen > rpcwire.MaxPayload(c.s.Cfg.BlockSize) {
		return 0, false
	}
	blockOff := b * c.s.Cfg.BlockSize
	block := c.stage.Bytes()[blockOff : blockOff+c.s.Cfg.BlockSize]
	rpcwire.PutHeader(c.buf, rpcwire.Header{ReqID: reqID, Handler: handler, ClientID: c.id})
	copy(c.buf[rpcwire.HeaderSize:], payload)
	if err := rpcwire.Encode(block, c.buf[:msgLen], 0); err != nil {
		return 0, false
	}
	off, span := rpcwire.EncodedSpan(c.s.Cfg.BlockSize, msgLen)
	t.WriteMem(c.stage.Base+uint64(blockOff+off), span)
	return msgLen, true
}

// flushEndpointEntry RDMA-writes the <staged count, round> tuple to the
// server's endpoint entry (Figure 6 step 2). Inline: 8 bytes.
func (c *Conn) flushEndpointEntry(t *host.Thread) {
	if !c.entryDirty || c.state != StateWarmup {
		return
	}
	c.entryDirty = false
	b := c.entryScratch.Bytes()
	binary.LittleEndian.PutUint32(b, uint32(c.stagedCount))
	binary.LittleEndian.PutUint32(b[4:], c.round)
	binary.LittleEndian.PutUint32(b[8:], uint32(c.stagedSpan))
	t.WriteMem(c.entryScratch.Base, endpointEntrySize)
	wr := nic.SendWR{
		Op:     nic.OpWrite,
		LKey:   c.entryScratch.LKey,
		LAddr:  c.entryScratch.Base,
		Len:    endpointEntrySize,
		RKey:   c.s.EndpointRKey(),
		RAddr:  c.s.EndpointEntryAddr(c.id),
		Inline: true,
	}
	t.PostSend(c.qp, wr)
}

// Poll drains responses, advances the state machine, flushes any pending
// endpoint-entry update, and — after a QP error — rebuilds the connection.
func (c *Conn) Poll(t *host.Thread, fn func(rpccore.Response)) int {
	if c.left {
		return 0
	}
	if c.qp.Err() != nil {
		c.reconnect(t)
		return 0
	}
	c.flushEndpointEntry(t)
	// The whole poll scan is one deferred-charge region: the per-block valid
	// checks settle as a single core charge instead of one scheduler round
	// trip each. PostSend (via flushEndpointEntry in onContextSwitch) and any
	// blocking path flush first, so externally visible actions still land at
	// fully-charged virtual times. The lazy close leaves an empty scan's
	// residue pending so the caller's park absorbs it (host.Thread.WaitSignal)
	// instead of paying a second scheduler wake-up.
	t.BeginWork()
	defer t.EndWorkLazy()
	got := 0
	switched := false

	// Control block: explicit context_switch_event.
	ctrl := c.resp.Block(0, c.s.Cfg.BlocksPerClient)
	t.ReadMem(c.resp.ValidAddr(0, c.s.Cfg.BlocksPerClient), 1)
	if rpcwire.Valid(ctrl) {
		if _, flags, err := rpcwire.Decode(ctrl); err == nil {
			if flags&rpcwire.FlagContextSwitch != 0 {
				switched = true
			}
		} else {
			c.s.rel.CRCDrops++
		}
		rpcwire.Clear(ctrl)
		t.WriteMem(c.resp.ValidAddr(0, c.s.Cfg.BlocksPerClient), 1)
	}

	for b := range c.slots {
		if !c.slots[b].busy {
			continue
		}
		t.ReadMem(c.resp.ValidAddr(0, b), 1)
		block := c.resp.Block(0, b)
		if !rpcwire.Valid(block) {
			continue
		}
		payload, flags, err := rpcwire.Decode(block)
		if err != nil {
			// A corrupted response: treat as loss; the deadline/retry layer
			// (or the context-switch re-stage) recovers the call.
			c.s.rel.CRCDrops++
			rpcwire.Clear(block)
			t.WriteMem(c.resp.ValidAddr(0, b), 1)
			continue
		}
		// Snapshot the CRC-validated frame before yielding: ReadMem and
		// the Clear/WriteMem below advance virtual time, and a late
		// duplicate response write may overwrite the block under us.
		c.respBuf = append(c.respBuf[:0], payload...)
		t.ReadMem(c.resp.BlockAddr(0, b), len(payload)+rpcwire.TrailerSize)
		hdr, body, herr := rpcwire.ParseHeader(c.respBuf)
		if herr != nil || hdr.ReqID != c.slots[b].reqID {
			// A stale response from a previous occupant of this slot.
			rpcwire.Clear(block)
			t.WriteMem(c.resp.ValidAddr(0, b), 1)
			continue
		}
		rpcwire.Clear(block)
		t.WriteMem(c.resp.ValidAddr(0, b), 1)
		// Invalidate the staged copy as well. Round bumps (retry resends,
		// switch restages) make the server re-fetch every staging block up
		// to the advertised count, holes included; a completed frame left
		// valid in its hole would be re-offered and — once the server's
		// bounded dedup window rotates past it — re-executed.
		stageOff := b * c.s.Cfg.BlockSize
		rpcwire.Clear(c.stage.Bytes()[stageOff : stageOff+c.s.Cfg.BlockSize])
		t.WriteMem(c.stage.Base+uint64(stageOff+rpcwire.ValidOffset(c.s.Cfg.BlockSize)), 1)
		c.slots[b] = connSlot{}
		c.outstanding--
		got++
		// Zone/pool assignment rides on responses (WARMUP → PROCESS);
		// late-swept responses carry no assignment.
		if hdr.ClientID&^poolBit != zoneNone {
			c.zone = int(hdr.ClientID &^ poolBit)
			c.poolIdx = 0
			if hdr.ClientID&poolBit != 0 {
				c.poolIdx = 1
			}
			if c.state == StateWarmup {
				c.state = StateProcess
				c.traceState(StateProcess)
			}
		}
		if flags&rpcwire.FlagContextSwitch != 0 {
			switched = true
		}
		fn(rpccore.Response{ReqID: hdr.ReqID, Payload: body, Err: flags&rpcwire.FlagError != 0})
	}

	if switched {
		c.Switches++
		c.onContextSwitch(t)
	}
	return got
}

// onContextSwitch moves PROCESS/WARMUP → IDLE; unanswered requests are
// compacted to the front of the staging area and re-offered in a fresh
// warmup round (the at-least-once retry covering the switch race).
func (c *Conn) onContextSwitch(t *host.Thread) {
	c.state = StateIdle
	c.zone = -1
	c.poolIdx = -1
	c.traceState(StateIdle)
	// Compact surviving requests to staging blocks 0..m-1.
	m := 0
	for b := range c.slots {
		if !c.slots[b].busy {
			continue
		}
		if b != m {
			src := c.stage.Bytes()[b*c.s.Cfg.BlockSize : (b+1)*c.s.Cfg.BlockSize]
			dst := c.stage.Bytes()[m*c.s.Cfg.BlockSize : (m+1)*c.s.Cfg.BlockSize]
			copy(dst, src)
			off, span := rpcwire.EncodedSpan(c.s.Cfg.BlockSize, c.slots[b].msgLen)
			t.ReadMem(c.stage.Base+uint64(b*c.s.Cfg.BlockSize+off), span)
			t.WriteMem(c.stage.Base+uint64(m*c.s.Cfg.BlockSize+off), span)
			c.slots[m] = c.slots[b]
			c.slots[b] = connSlot{}
			// The move leaves a byte-identical residue at the source block;
			// invalidate it so a later round whose count spans this far
			// cannot re-offer the frame a second time.
			rpcwire.Clear(src)
			t.WriteMem(c.stage.Base+uint64(b*c.s.Cfg.BlockSize+rpcwire.ValidOffset(c.s.Cfg.BlockSize)), 1)
		}
		c.Retries++
		m++
	}
	if m > 0 {
		c.round++
		c.stagedCount = m
		c.stagedSpan = 0
		for b := 0; b < m; b++ {
			if sp := c.slots[b].msgLen + rpcwire.TrailerSize; sp > c.stagedSpan {
				c.stagedSpan = sp
			}
		}
		c.state = StateWarmup
		c.entryDirty = true
		c.traceState(StateWarmup)
		c.flushEndpointEntry(t)
	}
}

// reconnect rebuilds the connection after a QP error (timeout/RNR retries
// exhausted or a remote access error): back off, re-admit through the
// server, then treat the failure like a context switch — every unanswered
// request is compacted into the staging area and re-offered in a fresh
// warmup round, giving the same at-least-once semantics as the switch race.
// If the link is still down the new QP errors too and the next Poll retries,
// so the backoff paces reconnect attempts through an outage.
func (c *Conn) reconnect(t *host.Thread) {
	if d := c.s.Cfg.Failure.ReconnectBackoff; d > 0 {
		t.P.Sleep(d)
	}
	if c.mgr != nil {
		// Control-plane-admitted connections re-dial through the in-band
		// handshake; on failure the next Poll retries (paced by the
		// backoff above).
		if err := c.Rejoin(t); err == nil {
			c.Reconnects++
		}
		return
	}
	c.s.Reconnect(c)
	c.Reconnects++
	c.traceState(StateIdle)
	if c.pinned {
		// Pinned clients skip warmup; pick up the (possibly new) reserved
		// zone and resend in place.
		cs := c.s.clients[c.id]
		c.state = StateProcess
		c.zone = cs.zone
		c.poolIdx = 0
		c.pinned = cs.pinned
		if cs.pinned {
			return
		}
		// Reserved zones were exhausted on readmission; fall back to the
		// grouped path below.
		c.state = StateIdle
	}
	c.onContextSwitch(t)
}

// Reconnect forces a teardown and readmission even if the QP has not errored
// yet. Poll calls the same path automatically after a QP error; consumers
// that learn of a failure out of band (an application-level timeout, a
// cluster-membership notification) use this instead of waiting for Poll to
// notice.
func (c *Conn) Reconnect(t *host.Thread) { c.reconnect(t) }

// Resend re-issues the in-flight request identified by reqID without
// consuming a new slot (the rpccore.Resender hook behind Caller retries
// and hedges). In PROCESS the staged frame is RDMA-written to the same
// pool slot again; in WARMUP/IDLE the staged batch is re-offered by
// opening a fresh warmup round, which makes the scheduler re-fetch every
// staged block. Server-side dedup absorbs any duplicate delivery.
func (c *Conn) Resend(t *host.Thread, reqID uint64) bool {
	if c.left || c.qp.Err() != nil {
		return false
	}
	b := -1
	for i := range c.slots {
		if c.slots[i].busy && c.slots[i].reqID == reqID {
			b = i
			break
		}
	}
	if b < 0 || !c.slots[b].staged {
		return false
	}
	if c.state != StateProcess {
		// Staged but not yet (or no longer) deliverable directly: bump the
		// round so the server's warmup fetch re-reads the staging area.
		if c.state == StateIdle {
			c.beginWarmup()
			c.stagedCount = c.slotSpanEnd()
			c.refreshStagedSpan()
		} else {
			c.round++
			c.entryDirty = true
		}
		c.flushEndpointEntry(t)
		return true
	}
	pool := c.s.pools[c.poolIdx]
	off, span := rpcwire.EncodedSpan(c.s.Cfg.BlockSize, c.slots[b].msgLen)
	wr := nic.SendWR{
		Op:    nic.OpWrite,
		LKey:  c.stage.LKey,
		LAddr: c.stage.Base + uint64(b*c.s.Cfg.BlockSize+off),
		Len:   span,
		RKey:  pool.RKey(),
		RAddr: pool.BlockAddr(c.zone, b) + uint64(off),
	}
	if span <= c.h.NIC.Cfg.MaxInline {
		wr.Inline = true
	}
	return t.PostSend(c.qp, wr) == nil
}

// Cancel withdraws the in-flight request identified by reqID (the
// rpccore.Canceler hook behind Caller deadlines). The slot is freed and
// its staged frame invalidated in place, so later warmup restages stop
// re-offering a request the application has already written off — an
// abandoned frame that keeps circulating can outlive the server's dedup
// window and re-execute. A copy already fetched into the processing pool
// may still run once; cancellation only guarantees the request stops
// being offered from here on.
func (c *Conn) Cancel(t *host.Thread, reqID uint64) bool {
	b := -1
	for i := range c.slots {
		if c.slots[i].busy && c.slots[i].reqID == reqID {
			b = i
			break
		}
	}
	if b < 0 {
		return false
	}
	blockOff := b * c.s.Cfg.BlockSize
	block := c.stage.Bytes()[blockOff : blockOff+c.s.Cfg.BlockSize]
	rpcwire.Clear(block)
	t.WriteMem(c.stage.Base+uint64(blockOff+rpcwire.ValidOffset(c.s.Cfg.BlockSize)), 1)
	c.slots[b] = connSlot{}
	c.outstanding--
	c.entryDirty = true
	return true
}

// slotSpanEnd returns one past the highest busy staged slot — the staged
// count a fresh warmup round must advertise to cover every survivor.
func (c *Conn) slotSpanEnd() int {
	end := 0
	for i := range c.slots {
		if c.slots[i].busy && c.slots[i].staged {
			end = i + 1
		}
	}
	return end
}

// refreshStagedSpan recomputes the max encoded span over staged slots.
func (c *Conn) refreshStagedSpan() {
	c.stagedSpan = 0
	for i := range c.slots {
		if !c.slots[i].busy || !c.slots[i].staged {
			continue
		}
		if sp := c.slots[i].msgLen + rpcwire.TrailerSize; sp > c.stagedSpan {
			c.stagedSpan = sp
		}
	}
}

var _ rpccore.Conn = (*Conn)(nil)
var _ rpccore.Resender = (*Conn)(nil)
