// Multi-tenant hooks: the scheduler and the membership adapter consult an
// optional TenantAuthority so a tenant manager (internal/tenant) can
// enforce connection quotas at admission, reserve zones per tenant, weight
// the rotation's time slices, keep tenant classes in separate groups, and
// attribute served work for noisy-neighbor accounting — without scalerpc
// depending on the tenant package.
package scalerpc

import (
	"scalerpc/internal/host"
	"scalerpc/internal/sim"
)

// TenantAuthority shapes admission and scheduling per tenant. All methods
// run on server-host threads (manager or scheduler); implementations need
// no locking. Tenant 0 is the default tenant for unmanaged clients.
type TenantAuthority interface {
	// AdmitConn decides whether one more connection from the tenant may be
	// admitted, and whether a requested reserved (pinned) zone is within
	// the tenant's zone quota. A nil error admits; ctrlplane.ErrAdmitQueue
	// (possibly wrapped) parks the dial in the control plane's admission
	// queue; any other error rejects with that reason. The call must be
	// side-effect free: it runs once in the handshake's pre-admission gate
	// and again in Accept/Resume.
	AdmitConn(tenant uint16, pinned bool) (pinnedGranted bool, err error)
	// ConnOpened/ConnClosed track the tenant's live connection count (and
	// pinned-zone occupancy). The server guarantees they pair.
	ConnOpened(tenant uint16, pinned bool)
	ConnClosed(tenant uint16, pinned bool)
	// SliceWeight returns the tenant's fair-share weight (1 = neutral).
	// The scheduler scales a group's time slice by the ratio of its mean
	// member weight to the population mean, so shrinking a bulk tenant's
	// weight shortens every slice its clients appear in.
	SliceWeight(tenant uint16) float64
	// GroupClass partitions tenants into scheduling classes: regroup never
	// mixes classes in one group, so a latency class rotates in groups a
	// bulk tenant cannot inflate. Lower classes sort first.
	GroupClass(tenant uint16) int
	// SliceAccount attributes one client's slice window (requests served,
	// payload bytes) to its tenant, sampled at every slice boundary before
	// the window resets.
	SliceAccount(tenant uint16, served, bytes uint64)
}

// SetTenantAuthority installs the tenant manager. Must be called before
// clients join; a nil authority disables all tenant machinery (the
// default).
func (s *Server) SetTenantAuthority(a TenantAuthority) { s.tenantAuth = a }

// tenantOpen reports an admitted client to the authority, at most once per
// open/close cycle.
func (s *Server) tenantOpen(cs *clientState) {
	if s.tenantAuth != nil && !cs.counted {
		cs.counted = true
		s.tenantAuth.ConnOpened(cs.tenant, cs.pinned)
	}
}

// tenantClose reports a departed client to the authority; safe to call on
// every teardown path (only the first after an open counts).
func (s *Server) tenantClose(cs *clientState) {
	if s.tenantAuth != nil && cs.counted {
		cs.counted = false
		s.tenantAuth.ConnClosed(cs.tenant, cs.pinned)
	}
}

// settlePinned closes the slice accounting window for reserved-zone
// clients. Pinned clients never pass through settleSlice (they are in no
// group), so without this their served/bytes would accumulate unsampled
// forever. Their priority is deliberately not EWMA-updated: pinned clients
// do not compete in the rotation, and folding them into the priority
// population would shift every dynamic slice ratio. Runs only when an
// authority is installed, preserving legacy accounting otherwise.
func (s *Server) settlePinned() {
	if s.tenantAuth == nil {
		return
	}
	for z := s.Cfg.maxZones(); z < s.Cfg.totalZones(); z++ {
		owner := s.zoneOwner[z]
		if owner < 0 || s.clients[owner] == nil {
			continue
		}
		cs := s.clients[owner]
		if cs.served > 0 || cs.bytes > 0 {
			s.tenantAuth.SliceAccount(cs.tenant, cs.served, cs.bytes)
			cs.served = 0
			cs.bytes = 0
		}
	}
}

// tenantClassOf returns the scheduling class for a grouped client.
func (s *Server) tenantClassOf(cid uint16) int {
	cs := s.clients[cid]
	if cs == nil {
		return 0
	}
	return s.tenantAuth.GroupClass(cs.tenant)
}

// ConnectTenant is the backdoor counterpart of Connect for tests and
// benchmarks that want tenant attribution without the control plane: the
// authority's quota still gates admission (nil is returned when it
// rejects or queues), and the connection is opened against the tenant.
func (s *Server) ConnectTenant(ch *host.Host, sig *sim.Signal, tenant uint16, pinned bool) *Conn {
	wantPinned := pinned
	if s.tenantAuth != nil {
		granted, err := s.tenantAuth.AdmitConn(tenant, pinned)
		if err != nil {
			return nil
		}
		wantPinned = granted
	}
	c := s.connect(ch, sig, wantPinned, tenant)
	if c == nil {
		return nil
	}
	c.joinTenant = tenant
	s.tenantOpen(s.clients[c.id])
	return c
}
