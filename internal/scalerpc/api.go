package scalerpc

import (
	"errors"

	"scalerpc/internal/host"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/sim"
)

// This file provides the paper's named client API (§3.5): SyncCall posts a
// remote procedure call and blocks until its response; AsyncCall posts one
// of a batch of calls; PollCompletion collects finished calls. They are
// thin wrappers over the connection's TrySend/Poll machinery, so the
// IDLE/WARMUP/PROCESS state machine behaves identically underneath.

// ErrTimeout reports that a synchronous call did not complete in time.
var ErrTimeout = errors.New("scalerpc: call timed out")

// Completion is one finished asynchronous call.
type Completion struct {
	Handle  uint64
	Payload []byte
	Err     bool
}

// AsyncCall posts one asynchronous call and returns its handle. It blocks
// only while the connection's request window is full or the client is
// waiting out a context switch (it keeps polling meanwhile); the response
// is collected later with PollCompletion.
func (c *Conn) AsyncCall(t *host.Thread, handler uint8, req []byte) uint64 {
	c.nextHandle++
	h := c.nextHandle
	for !c.TrySend(t, handler, req, h) {
		c.pollIntoCompletions(t)
		t.WaitSignal(c.sig, 5*sim.Microsecond)
	}
	return h
}

// PollCompletion returns up to max finished calls, without blocking.
// Returned payloads are copies and remain valid.
func (c *Conn) PollCompletion(t *host.Thread, max int) []Completion {
	c.pollIntoCompletions(t)
	n := len(c.completions)
	if n > max {
		n = max
	}
	out := c.completions[:n:n]
	c.completions = append([]Completion(nil), c.completions[n:]...)
	return out
}

// SyncCall posts one call and blocks until its response arrives or timeout
// elapses (0 means a generous default covering several group rotations).
func (c *Conn) SyncCall(t *host.Thread, handler uint8, req []byte, timeout sim.Duration) ([]byte, error) {
	if timeout <= 0 {
		timeout = 50 * sim.Millisecond
	}
	deadline := t.P.Now() + timeout
	h := c.AsyncCall(t, handler, req)
	for {
		c.pollIntoCompletions(t)
		for i, comp := range c.completions {
			if comp.Handle == h {
				c.completions = append(c.completions[:i], c.completions[i+1:]...)
				if comp.Err {
					return nil, errors.New("scalerpc: remote error")
				}
				return comp.Payload, nil
			}
		}
		remain := deadline - t.P.Now()
		if remain <= 0 {
			return nil, ErrTimeout
		}
		if remain > 5*sim.Microsecond {
			remain = 5 * sim.Microsecond
		}
		t.WaitSignal(c.sig, remain)
	}
}

// pollIntoCompletions drains the transport into the completion buffer.
func (c *Conn) pollIntoCompletions(t *host.Thread) {
	c.Poll(t, func(r rpccore.Response) {
		c.completions = append(c.completions, Completion{
			Handle:  r.ReqID,
			Payload: append([]byte(nil), r.Payload...),
			Err:     r.Err,
		})
	})
}
