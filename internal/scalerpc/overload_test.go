package scalerpc_test

import (
	"testing"

	"scalerpc/internal/host"
	"scalerpc/internal/loadgen"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
)

// TestRegroupUnderOpenLoopOverload drives a dynamic-scheduler server with a
// sustained open-loop load well above its capacity — the regime where the
// priority regroup runs every cycle and a buggy scheduler would either let
// group sizes drift outside the lazy [G/2, 3G/2] bounds or starve the
// low-priority tenant entirely.
func TestRegroupUnderOpenLoopOverload(t *testing.T) {
	c, s := buildServer(4, func(cfg *scalerpc.ServerConfig) {
		cfg.Dynamic = true
	})
	defer c.Close()
	s.Register(2, func(th *host.Thread, clientID uint16, req []byte, out []byte) int {
		th.Work(2000) // 2µs of service: 4 workers cap capacity well below the offered load
		return copy(out, req[:16])
	})

	const nClients = 24
	clients := make([]loadgen.Client, nClients)
	for i := range clients {
		h := c.Hosts[1+i%3]
		sig := sim.NewSignal(c.Env)
		clients[i] = loadgen.Client{
			Host:   h,
			Conn:   s.Connect(h, sig),
			Sig:    sig,
			Tenant: i % 2, // even clients bulk, odd clients light
		}
	}

	w := loadgen.Workload{
		Name:        "overload",
		OfferedRate: 4_000_000, // ≫ capacity at 2µs/request
		Arrival:     loadgen.ArrivalPoisson,
		Tenants: []loadgen.TenantSpec{
			{Name: "bulk", Share: 0.9, Size: loadgen.FixedSize(512)},
			{Name: "light", Share: 0.1, Size: loadgen.FixedSize(32)},
		},
		Handler:  2,
		Warmup:   200 * sim.Microsecond,
		Duration: 3 * sim.Millisecond,
		Drain:    300 * sim.Microsecond,
		Seed:     11,
	}
	r := loadgen.NewRunner(w, clients, c.Telemetry.UniqueScope("loadgen"))
	r.Start(c.Env)
	c.Env.RunUntil(r.DrainDeadline() + 100*sim.Microsecond)
	rep := r.Report()

	// The run must actually have been overloaded: the server fell behind
	// the arrival process and clients accumulated backlog.
	if rep.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if rep.Completed >= rep.Offered {
		t.Fatalf("not overloaded: completed %d of %d offered", rep.Completed, rep.Offered)
	}
	var peak uint64
	for _, tr := range rep.Tenants {
		if tr.BacklogPeak > peak {
			peak = tr.BacklogPeak
		}
	}
	if peak < uint64(nClients) {
		t.Fatalf("backlog peak %d, want sustained queueing", peak)
	}

	// Priority regroups ran and the lazy size bounds held: every group in
	// [G/2, 3G/2], except that the trailing group may be a runt when the
	// population is not a multiple of G.
	if s.Stats.Regroups == 0 {
		t.Fatal("dynamic scheduler never regrouped under sustained load")
	}
	g := s.Cfg.GroupSize
	sizes := s.GroupSizes()
	total := 0
	for i, n := range sizes {
		total += n
		if n > g*3/2 {
			t.Fatalf("group %d size %d above 3G/2=%d (groups %v)", i, n, g*3/2, sizes)
		}
		if n < g/2 && i != len(sizes)-1 {
			t.Fatalf("group %d size %d below G/2=%d (groups %v)", i, n, g/2, sizes)
		}
	}
	if total != nClients {
		t.Fatalf("groups hold %d clients, want %d (groups %v)", total, nClients, sizes)
	}

	// No starvation: the low-share tenant still completes a meaningful
	// fraction of its offered load — the priority scheduler reorders
	// groups, it does not stop scheduling anyone.
	for _, tr := range rep.Tenants {
		if tr.Completed == 0 {
			t.Fatalf("tenant %s starved: 0 of %d offered completed", tr.Name, tr.Offered)
		}
	}
	light := rep.Tenants[1]
	if frac := float64(light.Completed) / float64(light.Offered); frac < 0.05 {
		t.Fatalf("light tenant completed only %.1f%% of its load", frac*100)
	}
}
