package scalerpc_test

import (
	"testing"

	"scalerpc/internal/faults"
	"scalerpc/internal/host"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
)

// TestDropScenarioZeroLostRPCs is the headline acceptance test: a 1% uniform
// drop rate across every link, and every client keeps completing RPCs for the
// whole run — drops are recovered by RC retransmission (NAK or timeout), not
// surfaced as lost calls, and nobody gets evicted over transient loss.
func TestDropScenarioZeroLostRPCs(t *testing.T) {
	c, s := buildServer(3, nil)
	defer c.Close()
	p := c.InstallFaults(faults.DropAll("drop1pct", 0.01))
	horizon := 2 * sim.Millisecond
	res1 := spawnClients(c, s, 1, 8, rpccore.DriverConfig{Batch: 4, Handler: 1, PayloadSize: 32, Seed: 1}, horizon)
	res2 := spawnClients(c, s, 2, 8, rpccore.DriverConfig{Batch: 4, Handler: 1, PayloadSize: 32, Seed: 2}, horizon)
	c.Env.RunUntil(horizon + 2*sim.Millisecond)

	if p.Stats.Drops == 0 {
		t.Fatal("scenario injected no drops — test proves nothing")
	}
	var total uint64
	for i, r := range append(res1, res2...) {
		if r == nil {
			t.Fatalf("driver %d never finished (an RPC was lost, not recovered)", i)
		}
		if r.Completed == 0 {
			t.Fatalf("driver %d completed nothing under 1%% loss", i)
		}
		total += r.Completed
	}
	if total < 500 {
		t.Fatalf("completed only %d ops under 1%% loss", total)
	}
	var retrans uint64
	for _, h := range c.Hosts {
		retrans += h.NIC.Stats.QPRetransmits
	}
	if retrans == 0 {
		t.Fatal("no RC retransmissions despite injected drops")
	}
	if s.Stats.Evictions != 0 {
		t.Fatalf("Evictions = %d under recoverable loss, want 0", s.Stats.Evictions)
	}
	if s.Stats.Switches == 0 {
		t.Fatal("no context switches (workload degenerate)")
	}
}

// TestNodeCrashEvictsAndRegroups crashes one client host mid-run: the server
// must notice (failed writes / probe to the silent clients error the QP),
// evict the dead clients within two context-switch rounds of the first
// post-crash switch, and regroup the survivors.
func TestNodeCrashEvictsAndRegroups(t *testing.T) {
	c, s := buildServer(3, nil)
	defer c.Close()
	crashAt := sim.Time(sim.Millisecond)
	sc := &faults.Scenario{
		Name:    "crash",
		Crashes: []faults.Crash{{Node: 2, At: int64(crashAt)}},
		// Fast retry budget so a dead peer is detected well within a slice.
		NIC: faults.NICTuning{RetransmitTimeoutNs: 5000, RetryCount: 3},
	}
	p := c.InstallFaults(sc)
	var crashed bool
	var switchesAtCrash, regroupsAtCrash uint64
	p.OnCrash(func(int) {
		crashed = true
		switchesAtCrash = s.Stats.Switches
		regroupsAtCrash = s.Stats.Regroups
	})
	horizon := 4 * sim.Millisecond
	live := spawnClients(c, s, 1, 8, rpccore.DriverConfig{Batch: 4, Handler: 1, PayloadSize: 32, Seed: 1}, horizon)
	// The doomed clients stop driving when their node dies (the process
	// crashed with it); their server-side state must be cleaned up remotely.
	for i := 0; i < 8; i++ {
		sig := sim.NewSignal(c.Env)
		conn := s.Connect(c.Hosts[2], sig)
		c.Hosts[2].Spawn("doomed", func(th *host.Thread) {
			rpccore.RunDriver(th, []rpccore.Conn{conn},
				rpccore.DriverConfig{Batch: 4, Handler: 1, PayloadSize: 32, Seed: 2},
				sig, func() bool { return crashed || th.P.Now() >= horizon })
		})
	}
	groups := uint64(s.GroupCount())

	for end := crashAt; s.Stats.Evictions == 0 && end < crashAt+2*sim.Time(sim.Millisecond); end += sim.Time(5 * sim.Microsecond) {
		c.Env.RunUntil(end)
	}
	if s.Stats.Evictions == 0 {
		t.Fatal("server never evicted the crashed node's clients")
	}
	// "Within two rounds": the dead group's slice must come up (≤1 round),
	// the probe/notify write must error, and the next visit evicts (≤1 more
	// round). +1 covers the switch in flight at the crash instant.
	if d := s.Stats.Switches - switchesAtCrash; d > 2*groups+1 {
		t.Fatalf("first eviction took %d switches (%d groups), want ≤ two rounds", d, groups)
	}

	c.Env.RunUntil(horizon + sim.Millisecond)
	if s.Stats.Evictions != 8 {
		t.Fatalf("Evictions = %d, want all 8 dead clients gone", s.Stats.Evictions)
	}
	if s.Stats.Regroups <= regroupsAtCrash {
		t.Fatal("no regroup after evictions")
	}
	sum := 0
	for _, sz := range s.GroupSizes() {
		sum += sz
	}
	if sum != 8 {
		t.Fatalf("group membership = %d after cleanup, want the 8 survivors", sum)
	}
	for i, r := range live {
		if r == nil || r.Completed == 0 {
			t.Fatalf("surviving driver %d starved after the crash", i)
		}
	}
}

// TestClientsReconnectAfterFlap takes the client host's link down for 100µs:
// client QPs error out, Poll notices, and each client reconnects (fresh QP
// pair, warmup re-stage) once the link returns — the server readmits them and
// service resumes.
func TestClientsReconnectAfterFlap(t *testing.T) {
	c, s := buildServer(2, nil)
	defer c.Close()
	flapEnd := sim.Time(600 * sim.Microsecond)
	sc := &faults.Scenario{
		Name:  "flap",
		Flaps: []faults.Flap{{Node: 1, At: int64(500 * sim.Microsecond), DownNs: int64(100 * sim.Microsecond)}},
		NIC:   faults.NICTuning{RetransmitTimeoutNs: 5000, RetryCount: 3},
	}
	c.InstallFaults(sc)
	horizon := 3 * sim.Millisecond
	res := spawnClients(c, s, 1, 12, rpccore.DriverConfig{Batch: 4, Handler: 1, PayloadSize: 32, Seed: 3}, horizon)

	c.Env.RunUntil(flapEnd + sim.Time(100*sim.Microsecond))
	servedMid := s.Stats.Served
	c.Env.RunUntil(horizon + sim.Millisecond)

	if s.Stats.Readmits == 0 {
		t.Fatal("no client reconnected after the flap")
	}
	if s.Stats.Served <= servedMid {
		t.Fatal("no RPCs served after the flap — reconnect did not restore service")
	}
	for i, r := range res {
		if r == nil {
			t.Fatalf("driver %d never finished", i)
		}
		if r.Completed == 0 {
			t.Fatalf("driver %d completed nothing across the flap", i)
		}
	}
}

// TestChurnStormKeepsGroupInvariants hammers connect/disconnect while load
// runs: the scheduler must keep merging undersized groups, never dereference
// evicted state (the nil-guard paths), and keep serving the stable clients.
func TestChurnStormKeepsGroupInvariants(t *testing.T) {
	c, s := buildServer(2, nil) // GroupSize 8
	defer c.Close()
	sig := sim.NewSignal(c.Env)
	for i := 0; i < 40; i++ {
		s.Connect(c.Hosts[1], sig)
	}
	horizon := 3 * sim.Millisecond
	// spawnClients connects 8 more (ids 40..47) and drives them the whole
	// time; ids 0..39 stay idle and are churn fodder.
	stable := spawnClients(c, s, 1, 8, rpccore.DriverConfig{Batch: 2, Handler: 1, PayloadSize: 16, Seed: 4}, horizon)
	// Churn: one disconnect every 60µs, a fresh connect every other round —
	// 24 disconnects + 12 connects over ~1.4ms of the run.
	c.Env.Spawn("churn", func(pr *sim.Proc) {
		for k := 0; k < 24; k++ {
			s.Disconnect(uint16(16 + k)) // ids 16..39
			if k%2 == 0 {
				s.Connect(c.Hosts[1], sig)
			}
			pr.Sleep(60 * sim.Microsecond)
		}
	})
	c.Env.RunUntil(horizon + sim.Millisecond)

	if s.Stats.Regroups == 0 {
		t.Fatal("churn never forced a regroup")
	}
	sizes := s.GroupSizes()
	sum := 0
	for _, sz := range sizes {
		if sz < 4 && len(sizes) > 1 {
			t.Fatalf("undersized group survived churn: %v", sizes)
		}
		sum += sz
	}
	// 40 initial + 8 driven + 12 churn connects − 24 disconnects.
	if want := 40 + 8 + 12 - 24; sum != want {
		t.Fatalf("membership = %d, want %d", sum, want)
	}
	for i, r := range stable {
		if r == nil || r.Completed == 0 {
			t.Fatalf("stable driver %d starved during churn", i)
		}
	}
	if s.Stats.Evictions != 0 {
		t.Fatalf("Evictions = %d during clean churn, want 0 (no QP ever errored)", s.Stats.Evictions)
	}
}

// TestDisconnectUnknownAndDoubleDisconnect pins the eviction path's
// idempotence: disconnecting a ghost or a twice-removed client must be a
// no-op, not a panic, even with traffic in flight.
func TestDisconnectUnknownAndDoubleDisconnect(t *testing.T) {
	c, s := buildServer(2, nil)
	defer c.Close()
	horizon := sim.Millisecond
	spawnClients(c, s, 1, 8, rpccore.DriverConfig{Batch: 2, Handler: 1, PayloadSize: 16, Seed: 5}, horizon)
	c.Env.At(300*sim.Microsecond, func() {
		s.Disconnect(500) // never existed
		s.Disconnect(3)
		s.Disconnect(3) // already gone
	})
	c.Env.RunUntil(horizon + sim.Millisecond)
	sum := 0
	for _, sz := range s.GroupSizes() {
		sum += sz
	}
	if sum != 7 {
		t.Fatalf("membership = %d, want 7", sum)
	}
	if s.Stats.Served == 0 {
		t.Fatal("no service after disconnects")
	}
}

// TestReconnectKeepsPinnedZone: a latency-sensitive client whose QP dies must
// come back still pinned to a reserved zone (or gracefully fall back to the
// rotation if the zones are gone).
func TestReconnectKeepsPinnedZone(t *testing.T) {
	c, s := buildServer(2, func(cfg *scalerpc.ServerConfig) { cfg.ReservedZones = 2 })
	defer c.Close()
	sig := sim.NewSignal(c.Env)
	pin := s.ConnectLatencySensitive(c.Hosts[1], sig)
	if pin == nil {
		t.Fatal("no reserved zone")
	}
	done := false
	c.Hosts[1].Spawn("pin", func(th *host.Thread) {
		if _, err := pin.SyncCall(th, 1, []byte("before"), 0); err != nil {
			t.Errorf("pre-reconnect call: %v", err)
			return
		}
		pin.Reconnect(th)
		if pin.State() != scalerpc.StateProcess {
			t.Errorf("state after pinned reconnect = %v, want PROCESS", pin.State())
		}
		if _, err := pin.SyncCall(th, 1, []byte("after"), 0); err != nil {
			t.Errorf("post-reconnect call: %v", err)
			return
		}
		done = true
	})
	c.Env.RunUntil(20 * sim.Millisecond)
	if !done {
		t.Fatal("pinned client did not complete both calls")
	}
	if pin.Reconnects != 1 {
		t.Fatalf("Reconnects = %d, want 1", pin.Reconnects)
	}
	if s.Stats.Readmits != 1 {
		t.Fatalf("Readmits = %d, want 1", s.Stats.Readmits)
	}
}
