package scalerpc_test

import (
	"bytes"
	"testing"

	"scalerpc/internal/baseline/rawrpc"
	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
)

func echoHandler(t *host.Thread, clientID uint16, req []byte, out []byte) int {
	t.Work(100)
	return copy(out, req)
}

// buildServer creates a ScaleRPC server on host 0 of a fresh cluster.
func buildServer(hosts int, mutate func(*scalerpc.ServerConfig)) (*cluster.Cluster, *scalerpc.Server) {
	c := cluster.New(cluster.Default(hosts))
	cfg := scalerpc.DefaultServerConfig()
	cfg.Workers = 4
	cfg.GroupSize = 8
	cfg.TimeSlice = 50 * sim.Microsecond
	cfg.BlocksPerClient = 8
	cfg.MaxClients = 256
	if mutate != nil {
		mutate(&cfg)
	}
	s := scalerpc.NewServer(c.Hosts[0], cfg)
	s.Register(1, echoHandler)
	s.Start()
	return c, s
}

// spawnClients launches n driver threads of m conns each on host hi.
func spawnClients(c *cluster.Cluster, s *scalerpc.Server, hi, n int, dcfg rpccore.DriverConfig, horizon sim.Time) []*rpccore.DriverStats {
	out := make([]*rpccore.DriverStats, n)
	for i := 0; i < n; i++ {
		i := i
		sig := sim.NewSignal(c.Env)
		conn := s.Connect(c.Hosts[hi], sig)
		c.Hosts[hi].Spawn("drv", func(th *host.Thread) {
			st := rpccore.RunDriver(th, []rpccore.Conn{conn}, dcfg, sig, func() bool {
				return th.P.Now() >= horizon
			})
			out[i] = &st
		})
	}
	return out
}

func TestSingleGroupEchoRoundTrip(t *testing.T) {
	c, s := buildServer(2, nil)
	defer c.Close()
	sig := sim.NewSignal(c.Env)
	conn := s.Connect(c.Hosts[1], sig)

	var got []byte
	c.Hosts[1].Spawn("client", func(th *host.Thread) {
		if conn.State() != scalerpc.StateIdle {
			t.Error("new conn must be IDLE")
		}
		if !conn.TrySend(th, 1, []byte("warm me up"), 5) {
			t.Error("TrySend failed")
			return
		}
		if conn.State() != scalerpc.StateWarmup {
			t.Errorf("state after first send = %v, want WARMUP", conn.State())
		}
		for got == nil {
			conn.Poll(th, func(r rpccore.Response) {
				got = append([]byte(nil), r.Payload...)
			})
			if got == nil {
				sig.WaitTimeout(th.P, 10*sim.Microsecond)
			}
		}
		if conn.State() != scalerpc.StateProcess {
			t.Errorf("state after first response = %v, want PROCESS", conn.State())
		}
		// Second call goes direct (PROCESS path).
		conn.TrySend(th, 1, []byte("direct"), 6)
	})
	c.Env.RunUntil(5 * sim.Millisecond)
	if !bytes.Equal(got, []byte("warm me up")) {
		t.Fatalf("response = %q", got)
	}
	if s.Stats.WarmupReads == 0 {
		t.Fatal("no warmup RDMA READs issued")
	}
}

func TestMultiGroupAllClientsProgress(t *testing.T) {
	c, s := buildServer(3, nil)
	defer c.Close()
	horizon := 2 * sim.Millisecond
	// 24 clients with group size 8 → 3 groups, real context switching.
	res1 := spawnClients(c, s, 1, 12, rpccore.DriverConfig{Batch: 4, Handler: 1, PayloadSize: 32, Seed: 1}, horizon)
	res2 := spawnClients(c, s, 2, 12, rpccore.DriverConfig{Batch: 4, Handler: 1, PayloadSize: 32, Seed: 2}, horizon)
	c.Env.RunUntil(horizon + sim.Millisecond)

	if s.GroupCount() < 3 {
		t.Fatalf("groups = %d, want ≥3", s.GroupCount())
	}
	if s.Stats.Switches == 0 {
		t.Fatal("no context switches with 3 groups")
	}
	var total uint64
	for _, r := range append(res1, res2...) {
		if r == nil {
			t.Fatal("a driver never finished")
		}
		if r.Completed == 0 {
			t.Fatal("a client made no progress across context switches")
		}
		total += r.Completed
	}
	if total < 500 {
		t.Fatalf("completed only %d ops", total)
	}
	if s.Stats.Piggybacked == 0 {
		t.Fatal("no piggybacked context_switch_events")
	}
}

func TestVirtualizedMappingPoolFootprintConstant(t *testing.T) {
	// The whole point of virtualized mapping: pool bytes depend on group
	// size, not client count.
	_, s8 := buildServer(2, nil)
	poolZones := func(s *scalerpc.Server) int { return s.Cfg.GroupSize*3/2 + 1 }
	if poolZones(s8) != 13 {
		t.Fatalf("zones = %d", poolZones(s8))
	}
	// Connecting many more clients than zones must not grow the pool (it
	// can't: the pools were allocated in NewServer).
	c, s := buildServer(2, nil)
	defer c.Close()
	sig := sim.NewSignal(c.Env)
	for i := 0; i < 100; i++ {
		s.Connect(c.Hosts[1], sig)
	}
	if got := s.GroupCount(); got != 13 {
		t.Fatalf("100 clients / group 8 → %d groups, want 13", got)
	}
}

func TestContextSwitchNotifiesIdleClients(t *testing.T) {
	c, s := buildServer(2, nil)
	defer c.Close()
	// Two groups of mostly idle clients (long think times), so switches
	// often find members with nothing in flight and must notify them via
	// explicit control writes.
	horizon := 2 * sim.Millisecond
	spawnClients(c, s, 1, 16, rpccore.DriverConfig{
		Batch: 1, Handler: 1, PayloadSize: 16, Seed: 3,
		ThinkTime: func(r *stats.RNG) sim.Duration { return 300 * sim.Microsecond },
	}, horizon)
	c.Env.RunUntil(horizon + sim.Millisecond)
	if s.Stats.Switches == 0 {
		t.Fatal("no switches")
	}
	if s.Stats.Notifies+s.Stats.Piggybacked == 0 {
		t.Fatal("nobody was told about context switches")
	}
}

func TestClientStateMachineSwitchCycle(t *testing.T) {
	c, s := buildServer(2, nil)
	defer c.Close()
	horizon := 1 * sim.Millisecond
	sig := sim.NewSignal(c.Env)
	// Enough clients for 2 groups.
	conns := make([]*scalerpc.Conn, 16)
	for i := range conns {
		conns[i] = s.Connect(c.Hosts[1], sig)
	}
	sawIdleAgain := false
	c.Hosts[1].Spawn("drv", func(th *host.Thread) {
		rpcConns := make([]rpccore.Conn, len(conns))
		for i, cn := range conns {
			rpcConns[i] = cn
		}
		rpccore.RunDriver(th, rpcConns, rpccore.DriverConfig{Batch: 2, Handler: 1, PayloadSize: 16, Seed: 4},
			sig, func() bool {
				for _, cn := range conns {
					if cn.Switches > 0 {
						sawIdleAgain = true
					}
				}
				return th.P.Now() >= horizon
			})
	})
	c.Env.RunUntil(horizon + sim.Millisecond)
	if !sawIdleAgain {
		t.Fatal("no client ever observed a context_switch_event")
	}
}

func TestLegacyModeMarksAndExecutesLongCalls(t *testing.T) {
	c, s := buildServer(2, func(cfg *scalerpc.ServerConfig) {
		cfg.LegacyThreshold = 5 * sim.Microsecond
	})
	defer c.Close()
	s.Register(2, func(t *host.Thread, id uint16, req, out []byte) int {
		t.Work(50 * sim.Microsecond) // far over threshold
		out[0] = 0xEE
		return 1
	})
	sig := sim.NewSignal(c.Env)
	conn := s.Connect(c.Hosts[1], sig)
	got := 0
	c.Hosts[1].Spawn("client", func(th *host.Thread) {
		next := uint64(0)
		for got < 4 {
			if conn.Outstanding() == 0 {
				for !conn.TrySend(th, 2, []byte("slow"), next) {
					conn.Poll(th, func(r rpccore.Response) {})
					sig.WaitTimeout(th.P, 20*sim.Microsecond)
				}
				next++
			}
			conn.Poll(th, func(r rpccore.Response) {
				if len(r.Payload) == 1 && r.Payload[0] == 0xEE {
					got++
				}
			})
			sig.WaitTimeout(th.P, 20*sim.Microsecond)
		}
	})
	c.Env.RunUntil(20 * sim.Millisecond)
	if got < 4 {
		t.Fatalf("completed %d long calls", got)
	}
	if s.Stats.LegacyMarked != 1 {
		t.Fatalf("LegacyMarked = %d, want 1", s.Stats.LegacyMarked)
	}
	if s.Stats.LegacyCalls < 2 {
		t.Fatalf("LegacyCalls = %d, want ≥2 (calls after marking)", s.Stats.LegacyCalls)
	}
}

func TestGroupPlacementAndSizes(t *testing.T) {
	c, s := buildServer(2, func(cfg *scalerpc.ServerConfig) { cfg.GroupSize = 40 })
	defer c.Close()
	sig := sim.NewSignal(c.Env)
	for i := 0; i < 100; i++ {
		s.Connect(c.Hosts[1], sig)
	}
	sizes := s.GroupSizes()
	if len(sizes) != 3 || sizes[0] != 40 || sizes[1] != 40 || sizes[2] != 20 {
		t.Fatalf("group sizes = %v, want [40 40 20]", sizes)
	}
}

func TestDisconnectTriggersLazyMerge(t *testing.T) {
	c, s := buildServer(2, func(cfg *scalerpc.ServerConfig) {
		cfg.GroupSize = 8
		cfg.Dynamic = false
	})
	defer c.Close()
	sig := sim.NewSignal(c.Env)
	conns := make([]*scalerpc.Conn, 16)
	for i := range conns {
		conns[i] = s.Connect(c.Hosts[1], sig)
	}
	// Kill most of group 0 (ids 0..7): its size drops below G/2 = 4.
	for id := uint16(0); id < 6; id++ {
		s.Disconnect(id)
	}
	// Drive the remaining clients so the scheduler switches and regroups.
	horizon := 1 * sim.Millisecond
	c.Hosts[1].Spawn("drv", func(th *host.Thread) {
		rc := make([]rpccore.Conn, 0, 10)
		for _, cn := range conns[6:] {
			rc = append(rc, cn)
		}
		rpccore.RunDriver(th, rc, rpccore.DriverConfig{Batch: 1, Handler: 1, PayloadSize: 8, Seed: 5},
			sig, func() bool { return th.P.Now() >= horizon })
	})
	c.Env.RunUntil(horizon + sim.Millisecond)
	for _, sz := range s.GroupSizes() {
		if sz < 4 && s.GroupCount() > 1 {
			t.Fatalf("undersized group survived merges: %v", s.GroupSizes())
		}
	}
	if s.Stats.Regroups == 0 {
		t.Fatal("no regroup happened")
	}
}

func TestGlobalSyncAlignsSwitchPhases(t *testing.T) {
	c := cluster.New(cluster.Default(4))
	defer c.Close()
	cfg := scalerpc.DefaultServerConfig()
	cfg.Workers = 2
	cfg.GroupSize = 4
	cfg.TimeSlice = 100 * sim.Microsecond
	cfg.SyncPeriod = 2 * sim.Millisecond
	var servers []*scalerpc.Server
	for i := 0; i < 2; i++ {
		s := scalerpc.NewServer(c.Hosts[i], cfg)
		s.Register(1, echoHandler)
		s.Start()
		servers = append(servers, s)
	}
	g := scalerpc.NewSyncGroup(servers)
	// Both servers need ≥2 groups so they actually switch.
	for i, s := range servers {
		horizon := 20 * sim.Millisecond
		for j := 0; j < 8; j++ {
			sig := sim.NewSignal(c.Env)
			conn := s.Connect(c.Hosts[2+i], sig)
			c.Hosts[2+i].Spawn("drv", func(th *host.Thread) {
				rpccore.RunDriver(th, []rpccore.Conn{conn},
					rpccore.DriverConfig{Batch: 1, Handler: 1, PayloadSize: 16, Seed: uint64(j)},
					sig, func() bool { return th.P.Now() >= horizon })
			})
		}
	}
	c.Env.RunUntil(25 * sim.Millisecond)
	if g.Exchanges == 0 {
		t.Fatal("no sync exchanges happened")
	}
	// After several exchanges the servers' next-switch phases should be
	// within a small fraction of the slice.
	a := servers[0].NextSwitchAt() % cfg.TimeSlice
	b := servers[1].NextSwitchAt() % cfg.TimeSlice
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if diff > cfg.TimeSlice/2 {
		diff = cfg.TimeSlice - diff
	}
	if diff > cfg.TimeSlice/5 {
		t.Fatalf("switch phases diverge by %d ns (slice %d)", diff, cfg.TimeSlice)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		c, s := buildServer(2, nil)
		defer c.Close()
		horizon := 1 * sim.Millisecond
		res := spawnClients(c, s, 1, 10, rpccore.DriverConfig{Batch: 2, Handler: 1, PayloadSize: 32, Seed: 7}, horizon)
		c.Env.RunUntil(horizon + sim.Millisecond)
		var total uint64
		for _, r := range res {
			total += r.Completed
		}
		return total, s.Stats.Switches
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 || c1 == 0 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", c1, s1, c2, s2)
	}
}

func TestLatencySensitiveClientBypassesRotation(t *testing.T) {
	c, s := buildServer(3, func(cfg *scalerpc.ServerConfig) {
		cfg.ReservedZones = 2
	})
	defer c.Close()
	horizon := 3 * sim.Millisecond

	// 24 regular clients fill 3 groups so real switching happens.
	regular := spawnClients(c, s, 1, 24, rpccore.DriverConfig{Batch: 4, Handler: 1, PayloadSize: 32, Seed: 1}, horizon)

	// One pinned client alongside them.
	sig := sim.NewSignal(c.Env)
	pin := s.ConnectLatencySensitive(c.Hosts[2], sig)
	if pin == nil {
		t.Fatal("no reserved zone available")
	}
	if pin.State() != scalerpc.StateProcess {
		t.Fatalf("pinned conn state = %v, want PROCESS", pin.State())
	}
	var pinStats rpccore.DriverStats
	c.Hosts[2].Spawn("pin", func(th *host.Thread) {
		pinStats = rpccore.RunDriver(th, []rpccore.Conn{pin}, rpccore.DriverConfig{
			Batch: 1, Handler: 1, PayloadSize: 32, Seed: 9,
		}, sig, func() bool { return th.P.Now() >= horizon })
	})
	c.Env.RunUntil(horizon + sim.Millisecond)

	if s.Stats.Switches == 0 {
		t.Fatal("no context switches happened")
	}
	if pin.Switches != 0 {
		t.Fatalf("pinned client saw %d context_switch_events", pin.Switches)
	}
	if s.Stats.PinnedServed == 0 {
		t.Fatal("no requests served on reserved zones")
	}
	if pinStats.Completed == 0 {
		t.Fatal("pinned client made no progress")
	}
	// The pinned client's worst batch must be far below the rotation
	// period (its regular peers wait out whole rotations).
	rotation := int64(3 * 50 * sim.Microsecond)
	if max := pinStats.BatchLat.Max(); max > rotation/2 {
		t.Fatalf("pinned max latency %dns, want ≪ rotation %dns", max, rotation)
	}
	var regularMax int64
	for _, r := range regular {
		if r != nil && r.BatchLat.Max() > regularMax {
			regularMax = r.BatchLat.Max()
		}
	}
	if regularMax <= pinStats.BatchLat.Max() {
		t.Fatalf("regular max (%d) should exceed pinned max (%d)", regularMax, pinStats.BatchLat.Max())
	}
}

func TestReservedZonesExhaust(t *testing.T) {
	c, s := buildServer(2, func(cfg *scalerpc.ServerConfig) {
		cfg.ReservedZones = 1
	})
	defer c.Close()
	sig := sim.NewSignal(c.Env)
	if s.ConnectLatencySensitive(c.Hosts[1], sig) == nil {
		t.Fatal("first pinned connect failed")
	}
	if s.ConnectLatencySensitive(c.Hosts[1], sig) != nil {
		t.Fatal("second pinned connect should fail (1 reserved zone)")
	}
	// Regular connects still work.
	if s.Connect(c.Hosts[1], sig) == nil {
		t.Fatal("regular connect failed")
	}
}

func TestSyncAndAsyncCallAPI(t *testing.T) {
	c, s := buildServer(2, nil)
	defer c.Close()
	sig := sim.NewSignal(c.Env)
	conn := s.Connect(c.Hosts[1], sig)
	fail := ""
	c.Hosts[1].Spawn("api-client", func(th *host.Thread) {
		// Synchronous call.
		resp, err := conn.SyncCall(th, 1, []byte("sync-payload"), 0)
		if err != nil || string(resp) != "sync-payload" {
			fail = "SyncCall failed"
			return
		}
		// A batch of asynchronous calls collected via PollCompletion.
		handles := map[uint64]bool{}
		for i := 0; i < 6; i++ {
			handles[conn.AsyncCall(th, 1, []byte("async"))] = true
		}
		got := 0
		for got < 6 {
			for _, comp := range conn.PollCompletion(th, 8) {
				if !handles[comp.Handle] {
					fail = "unknown completion handle"
					return
				}
				if string(comp.Payload) != "async" {
					fail = "async payload corrupted"
					return
				}
				got++
			}
			if got < 6 {
				sig.WaitTimeout(th.P, 10*sim.Microsecond)
			}
		}
		// Unknown handler surfaces as a remote error.
		if _, err := conn.SyncCall(th, 200, []byte("x"), 0); err == nil {
			fail = "remote error not reported"
		}
	})
	c.Env.RunUntil(100 * sim.Millisecond)
	if fail != "" {
		t.Fatal(fail)
	}
}

func TestSyncCallTimeout(t *testing.T) {
	c, s := buildServer(2, func(cfg *scalerpc.ServerConfig) {
		cfg.LegacyThreshold = sim.Second // keep the slow handler inline
	})
	defer c.Close()
	s.Register(3, func(th *host.Thread, id uint16, req, out []byte) int {
		th.Work(5 * sim.Millisecond) // far beyond the timeout
		return 0
	})
	sig := sim.NewSignal(c.Env)
	conn := s.Connect(c.Hosts[1], sig)
	var err error
	c.Hosts[1].Spawn("cli", func(th *host.Thread) {
		_, err = conn.SyncCall(th, 3, []byte("slow"), 200*sim.Microsecond)
	})
	c.Env.RunUntil(20 * sim.Millisecond)
	if err != scalerpc.ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestLateSweepAnswersSwitchRacers(t *testing.T) {
	// Under continuous multi-group load, some requests inevitably race the
	// context switch; the late sweep must answer them (LateServed > 0) so
	// client-side retries stay rare.
	c, s := buildServer(3, nil)
	defer c.Close()
	horizon := 3 * sim.Millisecond
	res := spawnClients(c, s, 1, 24, rpccore.DriverConfig{Batch: 8, Handler: 1, PayloadSize: 32, Seed: 11}, horizon)
	c.Env.RunUntil(horizon + sim.Millisecond)
	if s.Stats.Switches == 0 {
		t.Fatal("no switches")
	}
	if s.Stats.LateServed == 0 {
		t.Fatal("late sweep never served anything under load")
	}
	var total uint64
	for _, r := range res {
		total += r.Completed
	}
	if total == 0 {
		t.Fatal("no progress")
	}
}

func TestWarmupLargeMessagesUseContiguousFetch(t *testing.T) {
	// Payloads whose encoded span exceeds half the block trigger the
	// whole-block contiguous warmup READ path; they must still round-trip
	// intact through staging, fetch, and response.
	c, s := buildServer(2, nil)
	defer c.Close()
	sig := sim.NewSignal(c.Env)
	conn := s.Connect(c.Hosts[1], sig)
	payload := make([]byte, 3000) // span ≈ 3 KB ≥ BlockSize/2
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got []byte
	c.Hosts[1].Spawn("cli", func(th *host.Thread) {
		resp, err := conn.SyncCall(th, 1, payload, 0)
		if err != nil {
			t.Errorf("SyncCall: %v", err)
			return
		}
		got = resp
	})
	c.Env.RunUntil(50 * sim.Millisecond)
	if !bytes.Equal(got, payload) {
		t.Fatalf("large warmup payload corrupted (%d bytes back)", len(got))
	}
}

func TestVirtualizedMappingBoundsDDIOAllocs(t *testing.T) {
	// The Figure 10 mechanism as a unit test: with many clients, RawWrite's
	// per-client pools force DDIO write-allocates at the server, while
	// ScaleRPC's single physical pool stays resident (allocs ≈ 0 after
	// warmup).
	measure := func(scale bool) float64 {
		c := cluster.New(cluster.Default(12))
		defer c.Close()
		var connect func(i int, sig *sim.Signal) rpccore.Conn
		if scale {
			cfg := scalerpc.DefaultServerConfig()
			srv := scalerpc.NewServer(c.Hosts[0], cfg)
			srv.Register(1, echoHandler)
			srv.Start()
			connect = func(i int, sig *sim.Signal) rpccore.Conn { return srv.Connect(c.Hosts[1+i%11], sig) }
		} else {
			cfg := rawrpc.DefaultServerConfig()
			srv := rawrpc.NewServer(c.Hosts[0], cfg)
			srv.Register(1, echoHandler)
			srv.Start()
			connect = func(i int, sig *sim.Signal) rpccore.Conn { return srv.Connect(c.Hosts[1+i%11], sig) }
		}
		horizon := 3 * sim.Millisecond
		for i := 0; i < 320; i++ {
			i := i
			sig := sim.NewSignal(c.Env)
			conn := connect(i, sig)
			c.Hosts[1+i%11].Spawn("drv", func(th *host.Thread) {
				rpccore.RunDriver(th, []rpccore.Conn{conn}, rpccore.DriverConfig{
					Batch: 8, Handler: 1, PayloadSize: 32, Seed: uint64(i),
					StartDelay: sim.Duration(i%64) * 311,
				}, sig, func() bool { return th.P.Now() >= horizon })
			})
		}
		c.Env.RunUntil(sim.Millisecond)
		startAllocs := c.Hosts[0].LLC.Snapshot().DMAAllocs
		startMsgs := c.Hosts[0].NIC.Stats.InMessages
		c.Env.RunUntil(horizon)
		allocs := c.Hosts[0].LLC.Snapshot().DMAAllocs - startAllocs
		msgs := c.Hosts[0].NIC.Stats.InMessages - startMsgs
		if msgs == 0 {
			return 0
		}
		return float64(allocs) / float64(msgs)
	}
	raw := measure(false)
	scale := measure(true)
	if scale >= raw/2 {
		t.Fatalf("ScaleRPC alloc rate %.4f should be far below RawWrite's %.4f", scale, raw)
	}
}

func TestCrossClientPayloadIsolation(t *testing.T) {
	// Every client embeds its identity in every request; echoes must never
	// leak between clients across pools, switches, and retries.
	c, s := buildServer(3, nil)
	defer c.Close()
	horizon := 2 * sim.Millisecond
	fails := make([]int, 20)
	for i := 0; i < 20; i++ {
		i := i
		sig := sim.NewSignal(c.Env)
		conn := s.Connect(c.Hosts[1+i%2], sig)
		c.Hosts[1+i%2].Spawn("cli", func(th *host.Thread) {
			tag := byte(0x40 + i)
			payload := bytes.Repeat([]byte{tag}, 24)
			next := uint64(0)
			for th.P.Now() < horizon {
				for conn.Outstanding() < 4 {
					if !conn.TrySend(th, 1, payload, next) {
						break
					}
					next++
				}
				conn.Poll(th, func(r rpccore.Response) {
					for _, b := range r.Payload {
						if b != tag {
							fails[i]++
							return
						}
					}
				})
				sig.WaitTimeout(th.P, 10*sim.Microsecond)
			}
		})
	}
	c.Env.RunUntil(horizon + sim.Millisecond)
	for i, f := range fails {
		if f > 0 {
			t.Fatalf("client %d received %d foreign/corrupted payloads", i, f)
		}
	}
}
