package scalerpc

import (
	"encoding/binary"
	"fmt"

	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/rpcwire"
	"scalerpc/internal/sim"
	"scalerpc/internal/telemetry"
)

// endpointEntrySize is the per-client endpoint entry: staged-request
// count, warmup round number, and the largest encoded span staged —
// RDMA-written by clients (§3.3, Figure 6). The span lets the scheduler
// fetch only the right-aligned tail of each staged block instead of whole
// blocks, keeping warmup traffic proportional to message size.
const endpointEntrySize = 12

// scratchRing is the per-worker response staging depth.
const scratchRing = 64

// poolBit marks which physical pool a zone assignment refers to, packed
// into the response header's ClientID field alongside the zone index.
const poolBit = 1 << 15

// zoneNone in a response header's ClientID field means "no zone
// assignment in this response".
const zoneNone = uint16(0x7FFF)

// clientState is the server-side record for one connected RPCClient.
type clientState struct {
	id uint16
	qp *nic.QP

	// Client-exported regions (exchanged at connect).
	respAddr  uint64
	respRKey  uint32
	stageAddr uint64
	stageRKey uint32

	// Group/zone placement.
	group int
	zone  int // zone in the current processing pool, -1 if not current

	// Warmup bookkeeping.
	lastRound    uint32
	fetchedUpTo  int
	warmZone     int // zone in the warmup pool, -1 if not warming
	pendingFetch int // outstanding warmup READs

	// Metrics for the priority scheduler (per current slice window).
	served   uint64
	bytes    uint64
	priority float64

	// tenant is the owning tenant id (0 = default tenant); counted marks
	// that the TenantAuthority has been told this connection is open and
	// must be told when it closes (whichever teardown path fires first).
	tenant  uint16
	counted bool

	// notifiedEpoch is the last switch epoch whose context_switch_event
	// reached this client piggybacked on a response.
	notifiedEpoch uint64

	// missedSlices counts consecutive slices in which this client had zero
	// requests served; at Cfg.Failure.ProbeSlices the scheduler posts a liveness
	// probe (see detectFailures).
	missedSlices int

	// peerHost is the client's host id as seen by the control plane, -1 for
	// clients admitted through the legacy Connect backdoor. DemotePeer and
	// RestorePeer act on every client of the named peer.
	peerHost int

	// demoted marks a client whose peer the failure detector has demoted:
	// it keeps full service, but liveness probes are suppressed (a probe on
	// a lossy link exhausts the RC retry budget and falsely evicts) and the
	// scheduler isolates it into suspect-only groups so healthy clients
	// never share a slice with it.
	demoted bool

	// pinned marks a latency-sensitive client on a reserved zone: it is
	// never grouped, never switched, and always served from pool 0.
	pinned bool

	// parked marks a control-plane-admitted client that gracefully left
	// (Conn.Leave): its QP sits in the connection cache and its id stays
	// reserved so staged requests survive a Rejoin, but the scheduler
	// skips it entirely until the control plane resumes it.
	parked bool

	// limbo marks an identity quarantined after an ungraceful departure
	// (lease expiry, QP error, cache teardown): the id and its dedup
	// window stay reserved so a crash-recovered client that dials back in
	// resumes exactly-once, until the bounded quarantine releases it.
	limbo bool
}

type worker struct {
	s          *Server
	idx        int
	sig        *sim.Signal
	scratch    *memory.Region
	scratchIdx int
	buf        []byte
	// req holds a stable snapshot of the frame being served: the pool
	// block is live RDMA-writable memory, and the serve path yields
	// virtual time (ReadMem, ParseCost, the handler's own Work), during
	// which an in-flight write may overwrite the block in place.
	req      []byte
	drainAck uint64
	Served   uint64
	Sweeps   uint64
	Sleeps   uint64
}

type legacyJob struct {
	cs      *clientState
	slot    int
	handler uint8
	reqID   uint64
	body    []byte
}

// Server is a ScaleRPC RPCServer.
type Server struct {
	Cfg   ServerConfig
	Host  *host.Host
	Stats Stats

	pools    [2]*rpcwire.Pool
	procIdx  int // pools[procIdx] is the processing pool
	endpoint *memory.Region

	handlers [256]rpccore.Handler
	legacy   [256]bool
	legacyQ  *sim.Queue[legacyJob]

	clients []*clientState
	groups  [][]uint16
	cur     int // index of the group being served

	// freeIDs holds client ids released by the control-plane adapter
	// (lease expiry, cache teardown) for reuse by later joins. Legacy
	// Disconnect does not free ids: Reconnect may resurrect them.
	freeIDs []uint16
	// limbo is the FIFO of quarantined identities (see clientState.limbo):
	// ungracefully departed ids waiting for their client to dial back in,
	// released for reuse when the quarantine overflows.
	limbo []uint16

	// zoneOwner maps processing-pool zones to client ids (the context
	// metadata of §3.3); warmOwner is the same for the warmup pool.
	zoneOwner []int // -1 = unowned
	warmOwner []int
	// warmEpoch stamps each warmup-pool zone with the switch epoch during
	// which assignWarm last (re)asserted its binding. Promotion trusts a
	// zone's resident frames only if it was warmed during the slice that
	// just ended; anything older — a pool frozen out of rotation while the
	// cluster ran single-group, a binding left over from before a regroup —
	// is wiped before the zone is served, because its frames were fetched
	// for a round the clients have long since retired.
	warmEpoch []uint64

	workers []*worker

	// regroupDue forces a regroup at the next context switch — set when a
	// demotion or restore changes the partition key of grouped clients, so
	// the re-partition happens on the switch path (where departing groups
	// are notified) instead of yanking zones mid-slice.
	regroupDue bool

	// Switch coordination.
	epoch      uint64
	draining   bool
	drainCount int
	schedSig   *sim.Signal
	resumeSig  *sim.Signal

	// Global synchronization phase adjustment (applied to the next slice).
	phaseAdjust sim.Duration
	nextSwitch  sim.Time

	// Scheduler-owned response staging for explicit notifications.
	schedScratch    *memory.Region
	schedScratchIdx int
	schedBuf        []byte
	// schedReq is the late sweep's stable request snapshot (same aliasing
	// hazard as worker.req).
	schedReq []byte

	// Telemetry: tel is this server's scope ("scalerpc", or "scalerpc#N"
	// for later instances on the same registry); trace is always non-nil.
	tel       telemetry.Scope
	trace     *telemetry.Trace
	handlerNs *telemetry.Histogram

	// tenantAuth, when set, gates admission and shapes scheduling per
	// tenant (see tenancy.go). Nil disables all tenant machinery.
	tenantAuth TenantAuthority

	// rel is the registry-shared end-to-end reliability counter block;
	// replies is the bounded exactly-once reply cache consulted before
	// every handler execution (worker sweep, legacy thread, late sweep).
	rel     *rpccore.RelStats
	replies *rpccore.ReplyCache

	started bool
}

// NewServer allocates pools and bookkeeping on h.
func NewServer(h *host.Host, cfg ServerConfig) *Server {
	zones := cfg.totalZones()
	poolBytes := cfg.BlockSize * cfg.BlocksPerClient * zones
	s := &Server{
		Cfg:       cfg,
		Host:      h,
		endpoint:  h.Mem.Register(endpointEntrySize*cfg.MaxClients, memory.PageSize2M, memory.LocalWrite|memory.RemoteWrite),
		legacyQ:   sim.NewQueue[legacyJob](h.Env),
		zoneOwner: make([]int, zones),
		warmOwner: make([]int, zones),
		warmEpoch: make([]uint64, zones),
		schedSig:  sim.NewSignal(h.Env),
		resumeSig: sim.NewSignal(h.Env),
		replies:   rpccore.NewReplyCache(cfg.BlocksPerClient),
	}
	s.rel = rpccore.SharedRel(h.Tel.Registry())
	if reg := h.Tel.Registry(); reg != nil {
		s.tel = reg.UniqueScope("scalerpc")
	}
	s.trace = s.tel.Trace()
	srv := s.tel.Scope("server")
	srv.CounterVar("switches", &s.Stats.Switches)
	srv.CounterVar("warmup_reads", &s.Stats.WarmupReads)
	srv.CounterVar("notifies", &s.Stats.Notifies)
	srv.CounterVar("piggybacked", &s.Stats.Piggybacked)
	srv.CounterVar("stale_drops", &s.Stats.StaleDrops)
	srv.CounterVar("legacy_calls", &s.Stats.LegacyCalls)
	srv.CounterVar("legacy_marked", &s.Stats.LegacyMarked)
	srv.CounterVar("regroups", &s.Stats.Regroups)
	srv.CounterVar("served", &s.Stats.Served)
	srv.CounterVar("pinned_served", &s.Stats.PinnedServed)
	srv.CounterVar("late_served", &s.Stats.LateServed)
	srv.CounterVar("probes", &s.Stats.Probes)
	srv.CounterVar("demotes", &s.Stats.Demotes)
	srv.CounterVar("restores", &s.Stats.Restores)
	srv.CounterVar("evictions", &s.Stats.Evictions)
	srv.CounterVar("readmits", &s.Stats.Readmits)
	srv.CounterVar("joins", &s.Stats.Joins)
	srv.CounterVar("leaves", &s.Stats.Leaves)
	srv.CounterVar("expires", &s.Stats.Expires)
	s.handlerNs = srv.Histogram("handler_ns")
	for i := range s.zoneOwner {
		s.zoneOwner[i] = -1
		s.warmOwner[i] = -1
	}
	for p := 0; p < 2; p++ {
		reg := h.Mem.Register(poolBytes, memory.PageSize2M, memory.LocalWrite|memory.RemoteWrite)
		s.pools[p] = rpcwire.NewPool(reg, cfg.BlockSize, cfg.BlocksPerClient, zones)
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			s:       s,
			idx:     i,
			sig:     sim.NewSignal(h.Env),
			scratch: h.Mem.Register(cfg.BlockSize*scratchRing, memory.PageSize2M, memory.LocalWrite),
			buf:     make([]byte, cfg.BlockSize),
		}
		// Workers wake on writes into either pool.
		h.NIC.WatchRegion(s.pools[0].RKey(), w.sig)
		h.NIC.WatchRegion(s.pools[1].RKey(), w.sig)
		ws := srv.Scope(fmt.Sprintf("w%d", i))
		ws.CounterVar("sweeps", &w.Sweeps)
		ws.CounterVar("sleeps", &w.Sleeps)
		ws.CounterVar("served", &w.Served)
		s.workers = append(s.workers, w)
	}
	return s
}

// Snapshot returns a copy of the server counters.
func (s *Server) Snapshot() Stats { return s.Stats }

// Reset zeroes the server counters (per-worker and per-client counters
// included, so a measurement window starts clean everywhere).
func (s *Server) Reset() {
	s.Stats = Stats{}
	for _, w := range s.workers {
		w.Sweeps, w.Sleeps, w.Served = 0, 0, 0
	}
}

// Register installs a handler. Must precede Start.
func (s *Server) Register(id uint8, fn rpccore.Handler) { s.handlers[id] = fn }

// Start launches the worker threads, the scheduler, and the legacy-mode
// executor.
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	for i, w := range s.workers {
		w := w
		s.Host.Spawn(fmt.Sprintf("scalerpc-w%d", i), w.run)
	}
	s.Host.Spawn("scalerpc-sched", s.runScheduler)
	s.Host.Spawn("scalerpc-legacy", s.runLegacy)
}

// processingPool returns the pool currently being served.
func (s *Server) processingPool() *rpcwire.Pool { return s.pools[s.procIdx] }

// warmupPool returns the pool being pre-filled for the next group.
func (s *Server) warmupPool() *rpcwire.Pool { return s.pools[s.procIdx^1] }

func (w *worker) run(t *host.Thread) {
	s := w.s
	for {
		n := w.sweep(t)
		if s.draining && w.drainAck != s.epoch {
			// Finish the pool (sweep returned the last finds), then park
			// until the scheduler completes the switch.
			w.drainAck = s.epoch
			s.drainCount++
			if s.drainCount == len(s.workers) {
				s.schedSig.Broadcast()
			}
			t.FlushWork()
			for s.draining {
				s.resumeSig.Wait(t.P)
			}
			continue
		}
		if n == 0 {
			w.Sleeps++
			t.WaitSignal(w.sig, s.Cfg.PollTimeout)
		}
	}
}

// WorkerDebug reports (sweeps, sleeps, served) summed over workers.
func (s *Server) WorkerDebug() (sweeps, sleeps, served uint64) {
	for _, w := range s.workers {
		sweeps += w.Sweeps
		sleeps += w.Sleeps
		served += w.Served
	}
	return
}

// sweep scans this worker's zones of the processing pool once.
func (w *worker) sweep(t *host.Thread) int {
	// Zones are striped across workers so all worker threads share the
	// group's load evenly.
	s := w.s
	w.Sweeps++
	pool := s.processingPool()
	served := 0
	// The scan touches one valid byte per owned slot; charging each touch
	// individually would cost a scheduler round trip per slot. Defer the
	// charges and settle them in bulk — at the doorbell when a request is
	// found, or absorbed into the worker's idle park for an empty sweep (the
	// lazy close leaves the residue pending for run's WaitSignal).
	t.BeginWork()
	defer t.EndWorkLazy()
	// Block-major scan, symmetric with the baselines (ScaleRPC's per-slice
	// QP set fits the NIC caches either way). Reserved (pinned) zones sit
	// past maxZones and always live in pool 0.
	pinnedPool := s.pools[0]
	for b := 0; b < s.Cfg.BlocksPerClient; b++ {
		for z := w.idx; z < s.Cfg.totalZones(); z += s.Cfg.Workers {
			owner := s.zoneOwner[z]
			if owner < 0 {
				continue
			}
			cs := s.clients[owner]
			if cs == nil {
				// The owner was evicted mid-slice; the zone is reassigned at
				// the next switch.
				continue
			}
			if cs.pinned {
				pool = pinnedPool
			} else {
				pool = s.processingPool()
			}
			t.ReadMem(pool.ValidAddr(z, b), 1)
			block := pool.Block(z, b)
			if !rpcwire.Valid(block) {
				continue
			}
			payload, _, err := rpcwire.Decode(block)
			if err != nil {
				// Valid landed but the frame failed its CRC: corruption past
				// the NIC. Treat as loss — the client's retry re-delivers.
				s.rel.CRCDrops++
				rpcwire.Clear(block)
				t.WriteMem(pool.ValidAddr(z, b), 1)
				continue
			}
			// Snapshot the CRC-validated frame before yielding: ReadMem,
			// ParseCost and the handler all advance virtual time, and a
			// concurrent RDMA write (duplicate delivery, stale warmup
			// fetch) may overwrite the pool block under us.
			w.req = append(w.req[:0], payload...)
			t.ReadMem(pool.BlockAddr(z, b)+uint64(s.Cfg.BlockSize-rpcwire.TrailerSize-len(payload)),
				len(payload)+rpcwire.TrailerSize)
			t.Work(s.Cfg.ParseCost)
			hdr, body, herr := rpcwire.ParseHeader(w.req)
			if herr != nil || int(hdr.ClientID) != owner {
				// A late write from a previous occupant of this zone: the
				// sender will retry after its context_switch_event.
				s.Stats.StaleDrops++
				rpcwire.Clear(block)
				t.WriteMem(pool.ValidAddr(z, b), 1)
				continue
			}
			s.serve(t, w, cs, b, hdr, body)
			rpcwire.Clear(block)
			t.WriteMem(pool.ValidAddr(z, b), 1)
			served++
			w.Served++
		}
	}
	return served
}

// serve executes one request (inline or via legacy mode) and responds.
// Duplicates — retries after a switch race, a timeout, or a reconnect —
// are answered from the reply cache without re-running the handler
// (at-most-once execution, §3.5 upgraded to exactly-once results).
func (s *Server) serve(t *host.Thread, w *worker, cs *clientState, slot int, hdr rpcwire.Header, body []byte) {
	if dup, rep, ready := s.replies.Admit(cs.id, hdr.ReqID); dup {
		s.rel.DedupHits++
		if ready {
			var flags byte
			if rep.Err {
				flags = rpcwire.FlagError
			}
			n := copy(w.buf[rpcwire.HeaderSize:len(w.buf)-rpcwire.TrailerSize], rep.Payload)
			s.respond(t, w.scratch, &w.scratchIdx, cs, slot, hdr, w.buf, n, flags)
		}
		// !ready: the first copy is still executing (legacy thread); its
		// response covers this duplicate too.
		return
	}
	s.Stats.Served++
	if cs.pinned {
		s.Stats.PinnedServed++
	}
	cs.served++
	cs.bytes += uint64(len(body))
	if s.handlers[hdr.Handler] == nil {
		s.replies.Commit(cs.id, hdr.ReqID, nil, true)
		s.respond(t, w.scratch, &w.scratchIdx, cs, slot, hdr, w.buf, 0, rpcwire.FlagError)
		return
	}
	if s.legacy[hdr.Handler] {
		// Recorded long-running call type: hand to the legacy thread. The
		// reply-cache entry stays in-flight until it commits there.
		s.Stats.LegacyCalls++
		// Settle sweep charges before the hand-off: the legacy thread wakes
		// at the virtual time the request was actually parsed.
		t.FlushWork()
		s.legacyQ.Push(legacyJob{cs: cs, slot: slot, handler: hdr.Handler, reqID: hdr.ReqID,
			body: append([]byte(nil), body...)})
		return
	}
	// Settle deferred sweep charges around the handler so its measured
	// duration (which drives legacy-mode detection) reflects its own work.
	t.FlushWork()
	start := t.P.Now()
	n := s.handlers[hdr.Handler](t, cs.id, body, w.buf[rpcwire.HeaderSize:len(w.buf)-rpcwire.TrailerSize])
	t.FlushWork()
	s.handlerNs.Observe(uint64(t.P.Now() - start))
	if t.P.Now()-start > s.Cfg.LegacyThreshold && !s.legacy[hdr.Handler] {
		// Record this call type (§3.5); subsequent requests run in legacy
		// mode on a separate thread.
		s.legacy[hdr.Handler] = true
		s.Stats.LegacyMarked++
	}
	s.replies.Commit(cs.id, hdr.ReqID, w.buf[rpcwire.HeaderSize:rpcwire.HeaderSize+n], false)
	s.respond(t, w.scratch, &w.scratchIdx, cs, slot, hdr, w.buf, n, 0)
}

// runLegacy executes recorded long-running calls on a dedicated thread so
// they never straddle a context switch (§3.5).
func (s *Server) runLegacy(t *host.Thread) {
	scratch := s.Host.Mem.Register(s.Cfg.BlockSize*scratchRing, memory.PageSize2M, memory.LocalWrite)
	buf := make([]byte, s.Cfg.BlockSize)
	idx := 0
	for {
		job := s.legacyQ.Pop(t.P)
		n := s.handlers[job.handler](t, job.cs.id, job.body, buf[rpcwire.HeaderSize:len(buf)-rpcwire.TrailerSize])
		hdr := rpcwire.Header{ReqID: job.reqID, Handler: job.handler}
		s.replies.Commit(job.cs.id, job.reqID, buf[rpcwire.HeaderSize:rpcwire.HeaderSize+n], false)
		s.respond(t, scratch, &idx, job.cs, job.slot, hdr, buf, n, 0)
	}
}

// respond assembles a response in buf (whose first HeaderSize bytes it
// overwrites), encodes it into the caller's scratch ring, and RDMA-writes
// it to the client's response slot. The header's ClientID field carries the
// client's current zone and pool assignment — how a WARMUP client learns
// where to write directly — and during a drain the context_switch_event is
// piggybacked on every response (§3.3).
func (s *Server) respond(t *host.Thread, scratch *memory.Region, idx *int, cs *clientState, slot int, req rpcwire.Header, buf []byte, bodyLen int, flags byte) {
	// zoneNone tells the client this response carries no (valid) zone
	// assignment — e.g. a late-swept request answered after its group was
	// switched out.
	zoneInfo := zoneNone
	if cs.zone >= 0 {
		zoneInfo = uint16(cs.zone)
		if s.procIdx == 1 && !cs.pinned {
			zoneInfo |= poolBit
		}
	}
	// Pinned clients are never switched out, so they never see the event.
	if s.draining && !cs.pinned {
		flags |= rpcwire.FlagContextSwitch
		if cs.notifiedEpoch != s.epoch {
			cs.notifiedEpoch = s.epoch
			s.Stats.Piggybacked++
		}
	}
	rpcwire.PutHeader(buf, rpcwire.Header{ReqID: req.ReqID, Handler: req.Handler, ClientID: zoneInfo})
	msg := buf[:rpcwire.HeaderSize+bodyLen]
	blockOff := *idx * s.Cfg.BlockSize
	*idx = (*idx + 1) % scratchRing
	block := scratch.Bytes()[blockOff : blockOff+s.Cfg.BlockSize]
	if err := rpcwire.Encode(block, msg, flags); err != nil {
		return
	}
	off, span := rpcwire.EncodedSpan(s.Cfg.BlockSize, len(msg))
	t.WriteMem(scratch.Base+uint64(blockOff+off), span)
	wr := nic.SendWR{
		Op:    nic.OpWrite,
		LKey:  scratch.LKey,
		LAddr: scratch.Base + uint64(blockOff+off),
		Len:   span,
		RKey:  cs.respRKey,
		RAddr: cs.respAddr + uint64(slot*s.Cfg.BlockSize+off),
	}
	if span <= s.Host.NIC.Cfg.MaxInline {
		wr.Inline = true
	}
	t.PostSend(cs.qp, wr)
}

// readEndpointEntry decodes client cid's endpoint entry from server memory.
func (s *Server) readEndpointEntry(cid uint16) (count, round, span uint32) {
	b := s.endpoint.Bytes()[int(cid)*endpointEntrySize:]
	return binary.LittleEndian.Uint32(b), binary.LittleEndian.Uint32(b[4:]), binary.LittleEndian.Uint32(b[8:])
}

// EndpointEntryAddr returns the address a client RDMA-writes its warmup
// tuple to.
func (s *Server) EndpointEntryAddr(cid uint16) uint64 {
	return s.endpoint.Base + uint64(cid)*endpointEntrySize
}

// EndpointRKey returns the endpoint table's rkey.
func (s *Server) EndpointRKey() uint32 { return s.endpoint.RKey }

var _ rpccore.Server = (*Server)(nil)
