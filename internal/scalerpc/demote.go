// Graceful degradation: the middle rung of the failure detector's ladder.
// When the control plane's phi-accrual detector demotes a peer (suspect,
// but not yet evictable), the server keeps serving that peer's clients —
// a gray node is often still doing useful work — but stops trusting its
// link enough to probe it, and quarantines its clients into suspect-only
// groups so a straggling or lossy peer cannot inflate the slices of
// healthy clients. Restore undoes both when the peer clears.
package scalerpc

// DemotePeer marks every active client dialed from the given control-plane
// peer as demoted: liveness probes are suppressed (a probe on a lossy link
// exhausts the RC retry budget, errors the QP, and falsely evicts an
// alive client) and grouped clients move into suspect-only groups, taking
// effect at the next context switch. Pinned (reserved-zone) clients keep
// their zone — they are never probed or grouped — and parked or
// quarantined identities are left for the resume path to sort out.
func (s *Server) DemotePeer(peer int) {
	for _, cs := range s.clients {
		if cs == nil || cs.peerHost != peer || cs.demoted || cs.parked || cs.limbo {
			continue
		}
		cs.demoted = true
		cs.missedSlices = 0
		s.Stats.Demotes++
		if cs.pinned || cs.group < 0 {
			continue
		}
		// Regrouping is deferred to the next context switch rather than done
		// here with an unplace/place: yanking an active client out of its
		// group mid-slice revokes its zone without the context-switch
		// notification, so a PROCESS-state client keeps direct-writing into
		// a pool nobody serves for it and stalls until some unrelated event
		// shakes it loose. The switch path re-partitions via regroup, whose
		// moves only affect clients already notified when their group
		// rotated out.
		s.regroupDue = true
	}
}

// RestorePeer re-admits a demoted peer's clients to normal scheduling:
// probes resume and grouped clients are re-placed among healthy groups at
// the next context switch.
func (s *Server) RestorePeer(peer int) {
	for _, cs := range s.clients {
		if cs == nil || cs.peerHost != peer || !cs.demoted {
			continue
		}
		cs.demoted = false
		cs.missedSlices = 0
		s.Stats.Restores++
		if cs.pinned || cs.parked || cs.limbo || cs.group < 0 {
			continue
		}
		// Deferred for the same reason as DemotePeer: the switch-path
		// regroup is the only safe place to move an active client.
		s.regroupDue = true
	}
}

// groupDemoted reports whether a group holds suspect (demoted) clients.
// Groups are kept partition-pure by place and regroup, so the first member
// speaks for the group.
func (s *Server) groupDemoted(grp []uint16) bool {
	return len(grp) > 0 && s.clients[grp[0]] != nil && s.clients[grp[0]].demoted
}

// partKey is the regroup partition key: chunks never span a key boundary.
// Demoted clients partition away from healthy ones within each tenant
// scheduling class; without a tenant authority the class component is
// zero.
func (s *Server) partKey(cid uint16) int {
	k := 0
	if s.tenantAuth != nil {
		k = s.tenantClassOf(cid) << 1
	}
	if s.clients[cid] != nil && s.clients[cid].demoted {
		k |= 1
	}
	return k
}
