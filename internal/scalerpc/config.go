// Package scalerpc implements ScaleRPC, the paper's contribution: a
// scalable RPC primitive over RC one-sided RDMA writes that multiplexes
// the NIC cache, CPU cache and memory across connections through
//
//   - connection grouping (§3.2): clients are organized into groups served
//     round-robin in time slices, bounding the number of QPs the NIC
//     touches per slice;
//   - virtualized mapping (§3.3): one physical message pool (sized for a
//     single group) is mapped to a different logical pool each slice, so
//     the server's working set stays inside the LLC no matter how many
//     clients connect;
//   - priority-based scheduling (§3.2): group membership and slice length
//     adapt to each client's measured request rate and size;
//   - request warmup (§3.3): while group k is served from the processing
//     pool, group k+1's staged requests are prefetched with RDMA READs
//     into the warmup pool, hiding the context switch from the critical
//     path;
//   - legacy mode (§3.5): call types whose handlers overrun a threshold
//     are recorded and subsequently executed on a dedicated thread so they
//     cannot straddle a context switch.
package scalerpc

import "scalerpc/internal/sim"

// ServerConfig holds every ScaleRPC tunable. Defaults follow the paper's
// evaluation settings (§3.6.1): group size 40, time slice 100 µs, 4 KB
// message blocks.
type ServerConfig struct {
	// Workers is the number of server worker threads (paper: 10).
	Workers int
	// GroupSize is the default connection group size (paper: 40).
	GroupSize int
	// TimeSlice is the default per-group slice (paper: 100 µs).
	TimeSlice sim.Duration
	// BlockSize is the message block size (paper default: 4 KB).
	BlockSize int
	// BlocksPerClient is each client's request window (batching depth).
	BlocksPerClient int
	// MaxClients bounds the endpoint-entry table.
	MaxClients int
	// Dynamic enables the priority-based scheduler; when false the static
	// grouping of the paper's "Static" comparison mode is used (Fig 12).
	Dynamic bool
	// PollTimeout bounds worker sleep while its zones are quiet.
	PollTimeout sim.Duration
	// ParseCost is CPU time to parse/dispatch one request.
	ParseCost sim.Duration
	// WarmupPollInterval is how often, within a slice, the scheduler
	// re-scans endpoint entries of the warming group for late joiners.
	WarmupPollInterval sim.Duration
	// SwitchGuard is the delay between a context switch and the reuse of
	// the old processing pool for warmup fetches, covering in-flight
	// writes from just-notified clients.
	SwitchGuard sim.Duration
	// LegacyThreshold is the handler runtime beyond which a call type is
	// recorded and executed in legacy mode thereafter (§3.5).
	LegacyThreshold sim.Duration
	// SyncPeriod is the global-synchronization exchange interval for
	// multi-server deployments (paper: 100 ms).
	SyncPeriod sim.Duration
	// ReservedZones is the number of pool zones set aside for
	// latency-sensitive clients (the paper's §3.6.2 future-work
	// direction): pinned clients are never context-switched out, trading
	// a little NIC-cache headroom for RC-level tail latency.
	ReservedZones int
	// Failure groups the failure-detection knobs so experiments can sweep
	// them independently of the scheduling parameters.
	Failure FailureConfig
}

// FailureConfig holds ScaleRPC's failure-detection and recovery tunables.
type FailureConfig struct {
	// ProbeSlices is how many consecutive slices a client may go without a
	// single served request before the scheduler posts a liveness probe (a
	// 0-byte RC write) on its QP. A dead client's probe exhausts the RC
	// retry budget and errors the QP, which evicts it at its group's next
	// switch; an idle-but-alive client absorbs the probe invisibly.
	// 0 disables probing (dead clients are then only caught when a
	// response or warmup READ happens to fail).
	ProbeSlices int
	// ReconnectBackoff is how long a client waits after finding its QP in
	// the error state before rebuilding the connection.
	ReconnectBackoff sim.Duration
}

// DefaultFailureConfig returns the standard failure-detection parameters.
func DefaultFailureConfig() FailureConfig {
	return FailureConfig{
		ProbeSlices:      1,
		ReconnectBackoff: 20 * sim.Microsecond,
	}
}

// DefaultServerConfig returns the paper's evaluation configuration.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		Workers:            10,
		GroupSize:          40,
		TimeSlice:          100 * sim.Microsecond,
		BlockSize:          4096,
		BlocksPerClient:    16,
		MaxClients:         512,
		Dynamic:            true,
		PollTimeout:        20 * sim.Microsecond,
		ParseCost:          60,
		WarmupPollInterval: 20 * sim.Microsecond,
		SwitchGuard:        3 * sim.Microsecond,
		LegacyThreshold:    20 * sim.Microsecond,
		SyncPeriod:         100 * sim.Millisecond,
		ReservedZones:      4,
		Failure:            DefaultFailureConfig(),
	}
}

// maxZones returns the physical pool's rotating-zone capacity: the lazy
// group-size bound of §3.2 allows groups up to 3/2 of the default size.
func (c ServerConfig) maxZones() int {
	return c.GroupSize*3/2 + 1
}

// totalZones adds the reserved (pinned) zones after the rotating ones.
func (c ServerConfig) totalZones() int {
	return c.maxZones() + c.ReservedZones
}

// Stats counts ScaleRPC server events.
type Stats struct {
	Switches     uint64 // context switches performed
	WarmupReads  uint64 // RDMA READs issued to prefetch staged requests
	Notifies     uint64 // explicit context_switch_event writes
	Piggybacked  uint64 // context_switch_events piggybacked on responses
	StaleDrops   uint64 // stale blocks dropped by zone-owner check
	LegacyCalls  uint64 // requests executed in legacy mode
	LegacyMarked uint64 // call types marked legacy
	Regroups     uint64 // group rebuilds (priority or size bounds)
	Served       uint64 // requests answered
	PinnedServed uint64 // requests answered on reserved (latency-sensitive) zones
	LateServed   uint64 // switch-racing requests answered by the late sweep
	Probes       uint64 // liveness probes posted to silent clients
	Demotes      uint64 // clients isolated into suspect groups (gray peer demoted)
	Restores     uint64 // demoted clients re-placed after their peer recovered
	Evictions    uint64 // clients evicted after their QP errored
	Readmits     uint64 // failed clients re-admitted via Reconnect
	Joins        uint64 // control-plane admissions (cold joins and resumes)
	Leaves       uint64 // graceful departures parked in the connection cache
	Expires      uint64 // control-plane clients dropped by lease expiry
}
