package scalerpc

import (
	"fmt"
	"sort"

	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/rpcwire"
	"scalerpc/internal/sim"
	"scalerpc/internal/telemetry"
)

// runScheduler is the priority-based scheduler (§3.2): it times the slices,
// warms the next group during each slice, and performs context switches.
func (s *Server) runScheduler(t *host.Thread) {
	for {
		sliceLen := s.sliceFor(s.cur) + s.phaseAdjust
		if sliceLen < s.Cfg.TimeSlice/4 {
			sliceLen = s.Cfg.TimeSlice / 4
		}
		s.phaseAdjust = 0
		s.nextSwitch = t.P.Now() + sliceLen
		for t.P.Now() < s.nextSwitch {
			s.assignWarm(t)
			s.fetchWarmups(t)
			remain := s.nextSwitch - t.P.Now()
			d := s.Cfg.WarmupPollInterval
			if d > remain {
				d = remain
			}
			if d > 0 {
				t.P.Sleep(d)
			}
		}
		if len(s.groups) >= 2 {
			s.contextSwitch(t)
		} else if len(s.groups) == 1 {
			s.soloScan(t)
		}
	}
}

// soloScan keeps failure detection alive when a single group means no
// context switches ever run: dead members must still be probed and evicted
// at slice boundaries, or a crashed client would hold its zone forever.
// The slice window settles through the same settleSlice path as a real
// switch — it used to reset served/bytes inline, which zeroed per-tenant
// byte attribution before anything could sample it.
func (s *Server) soloScan(t *host.Thread) {
	out := append([]uint16(nil), s.groups[0]...)
	evict := s.scanFailures(t, out)
	s.settleSlice(out)
	for _, cid := range evict {
		s.Stats.Evictions++
		if s.trace.Enabled {
			s.trace.Emit(t.P.Now(), "client_evicted", telemetry.A("client", int64(cid)))
		}
		s.Disconnect(cid)
	}
}

// sliceFor returns the slice length for group g. Under the priority
// scheduler, groups whose clients post small requests frequently (high
// P_i = T_i/S_i) receive a longer slice, squeezing shared time away from
// idle clients (§3.2).
func (s *Server) sliceFor(g int) sim.Duration {
	if g >= len(s.groups) || len(s.groups) < 2 {
		return s.Cfg.TimeSlice
	}
	ratio := 1.0
	if s.Cfg.Dynamic {
		var sum, all float64
		var n, m int
		for _, cid := range s.groups[g] {
			sum += s.clients[cid].priority
			n++
		}
		for _, cs := range s.clients {
			if cs != nil && !cs.parked && !cs.limbo {
				all += cs.priority
				m++
			}
		}
		if n > 0 && m > 0 && all > 0 {
			ratio = (sum / float64(n)) / (all / float64(m))
			if ratio < 0.75 {
				ratio = 0.75
			}
			if ratio > 1.5 {
				ratio = 1.5
			}
		}
	}
	ratio *= s.tenantWeightRatio(g)
	if ratio == 1 && !s.Cfg.Dynamic {
		return s.Cfg.TimeSlice
	}
	return sim.Duration(float64(s.Cfg.TimeSlice) * ratio)
}

// tenantWeightRatio is the weighted-fair term of the slice budget: the
// group's mean tenant weight over the grouped population's mean, clamped
// to [1/4, 2]. An authority that shrinks a bulk tenant's weight to 0.25
// therefore cuts that tenant's groups to quarter slices (the scheduler
// floor, TimeSlice/4) while the latency tenant's groups stretch toward 2x.
func (s *Server) tenantWeightRatio(g int) float64 {
	if s.tenantAuth == nil {
		return 1
	}
	var sum float64
	var n int
	for _, cid := range s.groups[g] {
		if cs := s.clients[cid]; cs != nil {
			sum += s.tenantAuth.SliceWeight(cs.tenant)
			n++
		}
	}
	var all float64
	var m int
	for _, cs := range s.clients {
		if cs != nil && !cs.parked && !cs.pinned && cs.group >= 0 {
			all += s.tenantAuth.SliceWeight(cs.tenant)
			m++
		}
	}
	if n == 0 || m == 0 || all == 0 {
		return 1
	}
	ratio := (sum / float64(n)) / (all / float64(m))
	if ratio < 0.25 {
		ratio = 0.25
	}
	if ratio > 2 {
		ratio = 2
	}
	return ratio
}

// warmTarget returns the pool and group receiving warmup fetches. With a
// single group the processing pool doubles as the warmup target (clients
// still bootstrap through WARMUP, there is just no switching).
func (s *Server) warmTarget() (*rpcwire.Pool, int) {
	if len(s.groups) < 2 {
		return s.processingPool(), s.cur
	}
	return s.warmupPool(), (s.cur + 1) % len(s.groups)
}

// assignWarm gives each member of the warming group its zone in the warmup
// pool (the virtualized mapping's context metadata, §3.3). A zone is wiped
// when it is (re)bound: the fetches for the new binding only start after
// this, so anything still valid in the zone was fetched for an earlier
// occupant or an earlier round — and a frame that lingers past the reply
// cache's dedup horizon (a pool dropping out of rotation when groups
// collapse, a zone unbound by a mid-slice demotion) re-executes when the
// zone rotates back in, breaking at-most-once.
func (s *Server) assignWarm(t *host.Thread) {
	if len(s.groups) == 0 {
		return
	}
	pool, g := s.warmTarget()
	if len(s.groups) < 2 {
		// Single group: zones in the processing pool, assigned directly.
		for i, cid := range s.groups[g] {
			cs := s.clients[cid]
			if cs.zone != i {
				cs.zone = i
				s.zoneOwner[i] = int(cid)
				s.wipeZone(t, pool, i)
			}
		}
		return
	}
	for i, cid := range s.groups[g] {
		cs := s.clients[cid]
		if cs.warmZone != i {
			cs.warmZone = i
			s.warmOwner[i] = int(cid)
			s.wipeZone(t, pool, i)
		}
		// Re-stamped every pass, not just on rebind: promotion trusts the
		// zone only if this slice's scheduler loop asserted the binding.
		s.warmEpoch[i] = s.epoch
	}
}

// wipeZone invalidates every block of one pool zone (stale frames from a
// previous binding; see assignWarm).
func (s *Server) wipeZone(t *host.Thread, pool *rpcwire.Pool, z int) {
	for b := 0; b < s.Cfg.BlocksPerClient; b++ {
		block := pool.Block(z, b)
		if rpcwire.Valid(block) {
			rpcwire.Clear(block)
			t.WriteMem(pool.ValidAddr(z, b), 1)
		}
	}
}

// fetchWarmups scans endpoint entries and prefetches newly staged requests
// with one-sided RDMA READs (§3.3, Figure 6 step 4). Two groups are
// polled: the warming group (fetched into the warmup pool, ready at the
// next switch) and the current group (fetched straight into the
// processing pool — a member that went IDLE and staged a fresh batch
// mid-slice is served within its own slice).
func (s *Server) fetchWarmups(t *host.Thread) {
	if len(s.groups) == 0 {
		return
	}
	s.fetchGroup(t, s.processingPool(), s.cur, func(cs *clientState) int { return cs.zone })
	if len(s.groups) >= 2 {
		g := (s.cur + 1) % len(s.groups)
		s.fetchGroup(t, s.warmupPool(), g, func(cs *clientState) int { return cs.warmZone })
	}
}

// fetchGroup prefetches one group's staged requests into pool.
func (s *Server) fetchGroup(t *host.Thread, pool *rpcwire.Pool, g int, zoneOf func(*clientState) int) {
	// Snapshot the membership: the READs below yield, and a client may
	// disconnect (shrinking the live group slice in place) while this
	// thread is blocked — iterating the live slice would then read a
	// stale id past the new length. Members that depart mid-fetch show
	// up as nil client states and are skipped.
	grp := append([]uint16(nil), s.groups[g]...)
	for _, cid := range grp {
		cs := s.clients[cid]
		if cs == nil {
			continue
		}
		zone := zoneOf(cs)
		if zone < 0 {
			continue
		}
		t.ReadMem(s.EndpointEntryAddr(cid), endpointEntrySize)
		count32, round, span32 := s.readEndpointEntry(cid)
		count := int(count32)
		if count > s.Cfg.BlocksPerClient {
			count = s.Cfg.BlocksPerClient
		}
		if round != cs.lastRound {
			cs.lastRound = round
			cs.fetchedUpTo = 0
		}
		if count <= cs.fetchedUpTo {
			continue
		}
		span := int(span32)
		if span <= 0 || span > s.Cfg.BlockSize {
			span = s.Cfg.BlockSize
		}
		if s.trace.Enabled {
			s.trace.Emit(t.P.Now(), "warmup_fetch",
				telemetry.A("client", int64(cid)), telemetry.A("blocks", int64(count-cs.fetchedUpTo)))
		}
		if span >= s.Cfg.BlockSize/2 {
			// Large messages: one contiguous READ of whole blocks.
			n := count - cs.fetchedUpTo
			wr := nic.SendWR{
				Op:    nic.OpRead,
				LKey:  pool.Region.LKey,
				LAddr: pool.BlockAddr(zone, cs.fetchedUpTo),
				Len:   n * s.Cfg.BlockSize,
				RKey:  cs.stageRKey,
				RAddr: cs.stageAddr + uint64(cs.fetchedUpTo*s.Cfg.BlockSize),
			}
			if err := t.PostSend(cs.qp, wr); err == nil {
				cs.fetchedUpTo = count
				s.Stats.WarmupReads++
			}
			continue
		}
		// Small messages: fetch only each block's right-aligned tail.
		off := s.Cfg.BlockSize - span
		ok := true
		for b := cs.fetchedUpTo; b < count; b++ {
			wr := nic.SendWR{
				Op:    nic.OpRead,
				LKey:  pool.Region.LKey,
				LAddr: pool.BlockAddr(zone, b) + uint64(off),
				Len:   span,
				RKey:  cs.stageRKey,
				RAddr: cs.stageAddr + uint64(b*s.Cfg.BlockSize+off),
			}
			if err := t.PostSend(cs.qp, wr); err != nil {
				ok = false
				break
			}
			s.Stats.WarmupReads++
		}
		if ok {
			cs.fetchedUpTo = count
		}
	}
}

// contextSwitch drains the workers, notifies the outgoing group, swaps the
// pools, promotes the warmed group, and rebuilds groups if needed (§3.3
// "Context Switch").
func (s *Server) contextSwitch(t *host.Thread) {
	s.epoch++
	s.draining = true
	s.drainCount = 0
	for _, w := range s.workers {
		w.sig.Broadcast()
	}
	for s.drainCount < len(s.workers) {
		s.schedSig.Wait(t.P)
	}

	// Remember the outgoing pool's zone map: writes that raced the switch
	// are answered from it by the late sweep below.
	oldPool := s.processingPool()
	oldOwners := append([]int(nil), s.zoneOwner[:s.Cfg.maxZones()]...)

	// Outgoing group: zones revoked; members whose drain responses did not
	// carry the event get an explicit context_switch_event write.
	out := append([]uint16(nil), s.groups[s.cur]...)
	for _, cid := range out {
		cs := s.clients[cid]
		if cs == nil {
			continue
		}
		cs.zone = -1
		if cs.notifiedEpoch != s.epoch {
			s.notifyControl(t, cs)
			s.Stats.Notifies++
		}
	}
	// Failure detection reads cs.served, so it must precede settleSlice
	// (which samples tenant attribution and then zeroes the slice window).
	evict := s.scanFailures(t, out)
	s.settleSlice(out)

	// Promote the warmed group.
	s.cur = (s.cur + 1) % len(s.groups)
	s.procIdx ^= 1
	s.zoneOwner, s.warmOwner = s.warmOwner, s.zoneOwner
	// Reserved (pinned) zones past maxZones keep their owners forever.
	for i := 0; i < s.Cfg.maxZones(); i++ {
		s.warmOwner[i] = -1
	}
	for i, cid := range s.groups[s.cur] {
		cs := s.clients[cid]
		cs.zone = i
		cs.warmZone = -1
		s.zoneOwner[i] = int(cid)
		// Trust the warmed frames only if the binding was asserted during
		// the slice that just ended (epoch was incremented above). A pool
		// that sat out of rotation — the cluster fell back to a single
		// group, or this zone was simply never warmed — holds frames from
		// retired rounds; serving those would duplicate executions the
		// reply cache rotated out long ago.
		if s.warmEpoch[i]+1 != s.epoch {
			s.wipeZone(t, s.processingPool(), i)
		}
		s.warmEpoch[i] = 0
	}
	s.Stats.Switches++
	if s.trace.Enabled {
		s.trace.Emit(t.P.Now(), "context_switch",
			telemetry.A("epoch", int64(s.epoch)), telemetry.A("group", int64(s.cur)))
	}
	s.draining = false
	s.resumeSig.Broadcast()

	// Evictions happen after the promotion so group/zone bookkeeping is
	// settled; a forced regroup then redistributes the survivors.
	for _, cid := range evict {
		s.Stats.Evictions++
		if s.trace.Enabled {
			s.trace.Emit(t.P.Now(), "client_evicted", telemetry.A("client", int64(cid)))
		}
		s.Disconnect(cid)
	}

	// Rebuild groups once per full rotation (so every group is served each
	// rotation regardless of priority), immediately when the lazy size
	// bounds are violated by joins/leaves, or after an eviction.
	if s.cur == 0 || len(evict) > 0 || s.regroupDue || s.sizeBoundsViolated() {
		s.regroup()
	}

	// Guard window before the old processing pool is reused for warmup:
	// covers writes already in flight from just-notified clients. The late
	// sweep then answers any such stragglers (with the switch event set),
	// so clients almost never need the retry path.
	if s.Cfg.SwitchGuard > 0 {
		t.P.Sleep(s.Cfg.SwitchGuard)
	}
	s.lateSweep(t, oldPool, oldOwners)
}

// lateSweep serves requests that landed in the outgoing pool between the
// workers' drain and the clients' receipt of the context_switch_event
// ("process and clear the suspended requests", §3.3).
func (s *Server) lateSweep(t *host.Thread, pool *rpcwire.Pool, owners []int) {
	if s.schedScratch == nil {
		s.schedScratch = s.Host.Mem.Register(s.Cfg.BlockSize*scratchRing, memory.PageSize2M, memory.LocalWrite)
		s.schedBuf = make([]byte, s.Cfg.BlockSize)
	}
	for z, owner := range owners {
		if owner < 0 || s.clients[owner] == nil {
			continue
		}
		cs := s.clients[owner]
		for b := 0; b < s.Cfg.BlocksPerClient; b++ {
			t.ReadMem(pool.ValidAddr(z, b), 1)
			block := pool.Block(z, b)
			if !rpcwire.Valid(block) {
				continue
			}
			payload, _, err := rpcwire.Decode(block)
			if err == nil {
				// Same aliasing hazard as the worker sweep: snapshot the
				// validated frame before ReadMem/handler yields let an
				// in-flight write overwrite the pool block.
				s.schedReq = append(s.schedReq[:0], payload...)
				if hdr, body, herr := rpcwire.ParseHeader(s.schedReq); herr == nil && int(hdr.ClientID) == owner {
					t.ReadMem(pool.BlockAddr(z, b), len(payload)+rpcwire.TrailerSize)
					s.lateServe(t, cs, b, hdr, body)
				} else {
					s.Stats.StaleDrops++
				}
			} else {
				s.rel.CRCDrops++
			}
			rpcwire.Clear(block)
			t.WriteMem(pool.ValidAddr(z, b), 1)
		}
	}
}

// lateServe executes one late-swept request on the scheduler thread,
// with the same dedup gate as the worker path: a request the workers
// already executed before the switch is answered from cache, not re-run.
func (s *Server) lateServe(t *host.Thread, cs *clientState, slot int, hdr rpcwire.Header, body []byte) {
	if dup, rep, ready := s.replies.Admit(cs.id, hdr.ReqID); dup {
		s.rel.DedupHits++
		if ready {
			flags := byte(rpcwire.FlagContextSwitch)
			if rep.Err {
				flags |= rpcwire.FlagError
			}
			n := copy(s.schedBuf[rpcwire.HeaderSize:len(s.schedBuf)-rpcwire.TrailerSize], rep.Payload)
			s.respond(t, s.schedScratch, &s.schedScratchIdx, cs, slot, hdr, s.schedBuf, n, flags)
		}
		return
	}
	s.Stats.LateServed++
	s.Stats.Served++
	switch {
	case s.handlers[hdr.Handler] == nil:
		s.replies.Commit(cs.id, hdr.ReqID, nil, true)
		s.respond(t, s.schedScratch, &s.schedScratchIdx, cs, slot, hdr, s.schedBuf, 0, rpcwire.FlagError|rpcwire.FlagContextSwitch)
	case s.legacy[hdr.Handler]:
		// Long-running call types go to the legacy thread, never onto the
		// scheduler's critical path (the cache entry commits there).
		s.Stats.LegacyCalls++
		s.legacyQ.Push(legacyJob{cs: cs, slot: slot, handler: hdr.Handler, reqID: hdr.ReqID,
			body: append([]byte(nil), body...)})
	default:
		n := s.handlers[hdr.Handler](t, cs.id, body, s.schedBuf[rpcwire.HeaderSize:len(s.schedBuf)-rpcwire.TrailerSize])
		s.replies.Commit(cs.id, hdr.ReqID, s.schedBuf[rpcwire.HeaderSize:rpcwire.HeaderSize+n], false)
		s.respond(t, s.schedScratch, &s.schedScratchIdx, cs, slot, hdr, s.schedBuf, n, rpcwire.FlagContextSwitch)
	}
}

// notifyControl sends an explicit context_switch_event to a client with no
// in-flight responses to piggyback on: a small RDMA write into the client's
// control block (§3.3).
func (s *Server) notifyControl(t *host.Thread, cs *clientState) {
	if s.schedScratch == nil {
		s.schedScratch = s.Host.Mem.Register(s.Cfg.BlockSize*scratchRing, memory.PageSize2M, memory.LocalWrite)
		s.schedBuf = make([]byte, s.Cfg.BlockSize)
	}
	hdr := rpcwire.Header{ReqID: ^uint64(0), Handler: 0}
	s.respond(t, s.schedScratch, &s.schedScratchIdx, cs, s.Cfg.BlocksPerClient, hdr, s.schedBuf, 0, rpcwire.FlagContextSwitch)
	cs.notifiedEpoch = s.epoch
}

// scanFailures inspects the outgoing group for dead clients: members whose
// QP already sits in the error state (their NIC stopped acknowledging —
// crashed node, downed link, invalidated response region) are returned for
// eviction, and members who went Cfg.Failure.ProbeSlices consecutive slices without
// a single served request get a liveness probe — a 0-byte unsignaled RC
// write to the response region that either lands invisibly (the client is
// merely idle) or exhausts the RC retry budget and errors the QP before the
// group's next slice, so the eviction completes one rotation later.
func (s *Server) scanFailures(t *host.Thread, out []uint16) []uint16 {
	var evict []uint16
	for _, cid := range out {
		cs := s.clients[cid]
		if cs == nil {
			continue
		}
		if cs.qp.Err() != nil {
			evict = append(evict, cid)
			continue
		}
		if cs.served > 0 {
			cs.missedSlices = 0
			continue
		}
		cs.missedSlices++
		if !cs.demoted && s.Cfg.Failure.ProbeSlices > 0 && cs.missedSlices >= s.Cfg.Failure.ProbeSlices {
			s.Stats.Probes++
			t.PostSend(cs.qp, nic.SendWR{Op: nic.OpWrite, RKey: cs.respRKey, RAddr: cs.respAddr})
		}
	}
	return evict
}

// settleSlice closes one slice's accounting window for the given members:
// per-tenant byte attribution is sampled first, then each outgoing
// client's priority P_i = T_i / S_i folds in the observations (§3.2), and
// only then does the window reset. Both switch paths (contextSwitch and
// soloScan) must come through here — resetting served/bytes anywhere else
// silently destroys the attribution the fair scheduler depends on.
func (s *Server) settleSlice(group []uint16) {
	for _, cid := range group {
		cs := s.clients[cid]
		if cs == nil {
			continue
		}
		if s.tenantAuth != nil && (cs.served > 0 || cs.bytes > 0) {
			s.tenantAuth.SliceAccount(cs.tenant, cs.served, cs.bytes)
		}
		avgSize := 1.0
		if cs.served > 0 {
			avgSize = float64(cs.bytes) / float64(cs.served)
			if avgSize < 1 {
				avgSize = 1
			}
		}
		inst := float64(cs.served) / avgSize
		cs.priority = 0.7*cs.priority + 0.3*inst
		cs.served = 0
		cs.bytes = 0
	}
	s.settlePinned()
}

// regroup rebuilds group membership. The current (just-promoted) group is
// frozen — its members already occupy the processing pool — and the rest
// are re-partitioned: by priority class under the dynamic scheduler, or
// only when the lazy size bounds [G/2, 3G/2] are violated otherwise.
func (s *Server) regroup() {
	cur := s.groups[s.cur]
	inCur := make(map[uint16]bool, len(cur))
	for _, cid := range cur {
		inCur[cid] = true
	}
	var rest []uint16
	for _, cs := range s.clients {
		// Quarantined (limbo) identities are departed, not schedulable:
		// sweeping one back into a group would hand a dead QP to the
		// failure scanner and a zone to a client that cannot stage.
		if cs != nil && !cs.pinned && !cs.parked && !cs.limbo && !inCur[cs.id] {
			rest = append(rest, cs.id)
		}
	}
	if !s.Cfg.Dynamic && !s.sizeBoundsViolated() && s.tenantAuth == nil {
		return
	}
	if s.Cfg.Dynamic {
		sort.SliceStable(rest, func(i, j int) bool {
			return s.clients[rest[i]].priority > s.clients[rest[j]].priority
		})
	}
	// Partition sort: a stable sort by the partition key keeps the priority
	// order within each partition, and the chunking below never lets a
	// chunk span a partition boundary — so a bulk tenant can never ride in
	// (and inflate) a latency-class group, and a demoted (suspect) client
	// never shares a slice with healthy ones. With no tenant authority and
	// no demotions every key is zero and the sort is a no-op.
	sort.SliceStable(rest, func(i, j int) bool {
		return s.partKey(rest[i]) < s.partKey(rest[j])
	})
	g := s.Cfg.GroupSize
	// The current group is frozen so a mid-rotation rebuild never disturbs
	// the slice being served — but an emptied group (every member evicted
	// or departed) earns no such protection. Keeping it would leave a
	// zero-member group in rotation that regroup itself re-freezes each
	// pass: the scheduler then burns entire slices serving nobody while
	// the populated groups starve.
	newGroups := [][]uint16{}
	if len(cur) > 0 {
		newGroups = append(newGroups, cur)
	}
	for len(rest) > 0 {
		n := g
		if n > len(rest) {
			n = len(rest)
		}
		// Cut the chunk at the first partition change.
		for i := 1; i < n; i++ {
			if s.partKey(rest[i]) != s.partKey(rest[0]) {
				n = i
				break
			}
		}
		// Absorb a would-be trailing runt into this group (lazy merge) —
		// only within one partition (rest is key-sorted, so the last
		// element matching the first means the whole tail does).
		if len(rest)-n < g/2 && len(rest)-n > 0 && len(rest) <= g*3/2 &&
			s.partKey(rest[len(rest)-1]) == s.partKey(rest[0]) {
			n = len(rest)
		}
		newGroups = append(newGroups, append([]uint16(nil), rest[:n]...))
		rest = rest[n:]
	}
	// A runt at the very end (including a lone runt after the frozen
	// current group) merges backwards while the bound allows — never
	// across a class boundary.
	for len(newGroups) >= 2 {
		last := newGroups[len(newGroups)-1]
		prev := newGroups[len(newGroups)-2]
		if len(last) >= g/2 || len(prev)+len(last) > g*3/2 {
			break
		}
		if len(prev) > 0 && s.partKey(prev[0]) != s.partKey(last[0]) {
			break
		}
		newGroups[len(newGroups)-2] = append(prev, last...)
		newGroups = newGroups[:len(newGroups)-1]
	}
	changed := len(newGroups) != len(s.groups)
	if !changed {
		for i := range newGroups {
			if len(newGroups[i]) != len(s.groups[i]) {
				changed = true
				break
			}
		}
	}
	for i, grp := range newGroups {
		for _, cid := range grp {
			s.clients[cid].group = i
		}
	}
	s.groups = newGroups
	s.cur = 0
	s.regroupDue = false
	if changed || s.Cfg.Dynamic {
		s.Stats.Regroups++
	}
}

// sizeBoundsViolated reports whether any group is outside [G/2, 3G/2]
// (§3.2's lazy split/merge rule). The final group may legitimately be
// small when the client population is not a multiple of the group size;
// under class partitioning every class's trailing group may be a runt, so
// only the upper bound triggers a mid-rotation regroup there (the
// per-rotation regroup at cur==0 still re-balances within classes).
func (s *Server) sizeBoundsViolated() bool {
	g := s.Cfg.GroupSize
	for i, grp := range s.groups {
		if len(grp) > g*3/2 {
			return true
		}
		if len(grp) < g/2 && i != len(s.groups)-1 && s.tenantAuth == nil && !s.groupDemoted(grp) {
			return true
		}
	}
	return false
}

// Connect admits a new RPCClient: an RC QP pair, the client's staged and
// response regions, a group placement, and an endpoint entry slot.
func (s *Server) Connect(ch *host.Host, sig *sim.Signal) *Conn {
	return s.connect(ch, sig, false, 0)
}

// ConnectLatencySensitive admits a client onto a reserved zone: it is
// never grouped or context-switched, so its requests are served in every
// slice — the fine-grained, per-client sensitivity scheduling the paper
// sketches as future work (§3.6.2). It fails (returns nil) when all
// reserved zones are taken.
func (s *Server) ConnectLatencySensitive(ch *host.Host, sig *sim.Signal) *Conn {
	return s.connect(ch, sig, true, 0)
}

// connect builds the client's state and places it. The tenant must be
// known here, before place(): class-pure grouping reads the joining
// client's class, and a late tenant assignment would seed a mismatched
// singleton group per join — with regroup only running at rotation start,
// a large join wave would leave the rotation cycling one-member groups.
func (s *Server) connect(ch *host.Host, sig *sim.Signal, pinned bool, tenant uint16) *Conn {
	if len(s.clients) >= s.Cfg.MaxClients {
		panic("scalerpc: server full")
	}
	id := uint16(len(s.clients))
	scq := s.Host.NIC.CreateCQ()
	ccq := ch.NIC.CreateCQ()
	sqp := s.Host.NIC.CreateQP(nic.RC, scq, scq)
	cqp := ch.NIC.CreateQP(nic.RC, ccq, ccq)
	if err := nic.Connect(sqp, cqp); err != nil {
		panic(err)
	}
	stage := ch.Mem.Register(s.Cfg.BlockSize*s.Cfg.BlocksPerClient, memory.PageSize2M,
		memory.LocalWrite|memory.RemoteRead)
	respReg := ch.Mem.Register(s.Cfg.BlockSize*(s.Cfg.BlocksPerClient+1), memory.PageSize2M,
		memory.LocalWrite|memory.RemoteWrite)
	cs := &clientState{
		id:        id,
		qp:        sqp,
		respAddr:  respReg.Base,
		respRKey:  respReg.RKey,
		stageAddr: stage.Base,
		stageRKey: stage.RKey,
		zone:      -1,
		warmZone:  -1,
		pinned:    pinned,
		tenant:    tenant,
		peerHost:  -1,
	}
	s.clients = append(s.clients, cs)
	if pinned {
		z := s.reservedZoneFor(cs)
		if z < 0 {
			s.clients = s.clients[:len(s.clients)-1]
			s.Host.NIC.DestroyQP(sqp)
			return nil
		}
		cs.zone = z
		cs.group = -1
	} else {
		s.place(cs)
	}

	conn := &Conn{
		id:           id,
		h:            ch,
		s:            s,
		qp:           cqp,
		sig:          sig,
		stage:        stage,
		entryScratch: ch.Mem.Register(64, memory.PageSize4K, memory.LocalWrite),
		resp:         rpcwire.NewPool(respReg, s.Cfg.BlockSize, s.Cfg.BlocksPerClient+1, 1),
		buf:          make([]byte, s.Cfg.BlockSize),
		slots:        make([]connSlot, s.Cfg.BlocksPerClient),
		zone:         -1,
		poolIdx:      -1,
	}
	if pinned {
		conn.pinned = true
		conn.state = StateProcess
		conn.zone = cs.zone
		conn.poolIdx = 0
	}
	cl := s.tel.Scope("client", fmt.Sprintf("%d", id))
	cl.GaugeVar("priority", &cs.priority)
	cl.CounterVar("retries", &conn.Retries)
	cl.CounterVar("switches", &conn.Switches)
	cl.CounterVar("reconnects", &conn.Reconnects)
	conn.trace = s.trace
	ch.NIC.WatchRegion(respReg.RKey, sig)
	return conn
}

// reservedZoneFor claims a free reserved zone (in both ownership arrays,
// which swap at every switch) or returns -1.
func (s *Server) reservedZoneFor(cs *clientState) int {
	for z := s.Cfg.maxZones(); z < s.Cfg.totalZones(); z++ {
		if s.zoneOwner[z] < 0 && s.warmOwner[z] < 0 {
			s.zoneOwner[z] = int(cs.id)
			s.warmOwner[z] = int(cs.id)
			return z
		}
	}
	return -1
}

// place assigns a new client to a group: the last group if it is below the
// default size, otherwise a fresh group. (The 3/2 bound governs lazy
// splits of groups that grow later; admission fills to the default size.)
// Under a tenant authority only groups of the client's scheduling class
// are candidates, so groups stay class-pure from the first join — regroup
// preserves the invariant thereafter.
func (s *Server) place(cs *clientState) {
	if s.tenantAuth == nil {
		if len(s.groups) > 0 {
			last := len(s.groups) - 1
			if len(s.groups[last]) < s.Cfg.GroupSize && s.groupDemoted(s.groups[last]) == cs.demoted {
				s.groups[last] = append(s.groups[last], cs.id)
				cs.group = last
				return
			}
		}
	} else {
		class := s.tenantAuth.GroupClass(cs.tenant)
		for i := len(s.groups) - 1; i >= 0; i-- {
			grp := s.groups[i]
			if len(grp) == 0 || len(grp) >= s.Cfg.GroupSize || s.tenantClassOf(grp[0]) != class ||
				s.groupDemoted(grp) != cs.demoted {
				continue
			}
			s.groups[i] = append(grp, cs.id)
			cs.group = i
			return
		}
	}
	s.groups = append(s.groups, []uint16{cs.id})
	cs.group = len(s.groups) - 1
	s.Stats.Regroups++
}

// Disconnect removes a client (log-out); groups merge lazily at the next
// switch if the departure violates the size bounds.
func (s *Server) Disconnect(id uint16) {
	if int(id) >= len(s.clients) {
		return
	}
	cs := s.clients[id]
	if cs == nil {
		return
	}
	s.tenantClose(cs)
	s.unplace(cs)
	s.clients[id] = nil
	s.Host.NIC.DestroyQP(cs.qp)
}

// unplace removes a client from its group and releases its zone claims in
// both ownership arrays; in-flight slices are untouched (stale blocks from
// the departed client are dropped by the zone-owner check).
func (s *Server) unplace(cs *clientState) {
	if cs.group >= 0 {
		grp := s.groups[cs.group]
		for i, cid := range grp {
			if cid == cs.id {
				s.groups[cs.group] = append(grp[:i], grp[i+1:]...)
				break
			}
		}
		cs.group = -1
	}
	if cs.zone >= 0 {
		s.zoneOwner[cs.zone] = -1
		cs.zone = -1
	}
	if cs.warmZone >= 0 {
		s.warmOwner[cs.warmZone] = -1
		cs.warmZone = -1
	}
}

// Reconnect re-admits an existing Conn whose QP failed (retry-count
// exceeded, remote access error, or the server evicted it while its link
// was down). Both ends get fresh QPs and CQs; the client keeps its identity
// and its staging/response regions, so requests still held in the staging
// area survive the reconnect and go back out through a fresh warmup round.
func (s *Server) Reconnect(c *Conn) {
	c.h.NIC.DestroyQP(c.qp)
	cs := s.clients[c.id]
	if cs != nil {
		s.Host.NIC.DestroyQP(cs.qp)
	}
	scq := s.Host.NIC.CreateCQ()
	ccq := c.h.NIC.CreateCQ()
	sqp := s.Host.NIC.CreateQP(nic.RC, scq, scq)
	cqp := c.h.NIC.CreateQP(nic.RC, ccq, ccq)
	if err := nic.Connect(sqp, cqp); err != nil {
		panic(err)
	}
	if cs == nil {
		// Evicted while away: rejoin under the same id with the same
		// regions. The warmup round counter keeps increasing client-side,
		// so the fresh clientState's round mismatch makes the first
		// endpoint-entry fetch idempotent.
		cs = &clientState{
			id:        c.id,
			qp:        sqp,
			respAddr:  c.resp.Region.Base,
			respRKey:  c.resp.Region.RKey,
			stageAddr: c.stage.Base,
			stageRKey: c.stage.RKey,
			zone:      -1,
			warmZone:  -1,
			pinned:    c.pinned,
			tenant:    c.joinTenant,
			peerHost:  -1,
		}
		s.clients[c.id] = cs
		if c.pinned {
			if z := s.reservedZoneFor(cs); z >= 0 {
				cs.zone = z
				cs.group = -1
			} else {
				cs.pinned = false
				s.place(cs)
			}
		} else {
			s.place(cs)
		}
		s.tenantOpen(cs)
	} else {
		cs.qp = sqp
		cs.fetchedUpTo = 0
		cs.missedSlices = 0
	}
	c.qp = cqp
	s.Stats.Readmits++
	if s.trace.Enabled {
		s.trace.Emit(c.h.Env.Now(), "client_readmit", telemetry.A("client", int64(c.id)))
	}
}

// GroupCount returns the number of connection groups.
func (s *Server) GroupCount() int { return len(s.groups) }

// GroupSizes returns the current group cardinalities.
func (s *Server) GroupSizes() []int {
	var out []int
	for _, g := range s.groups {
		out = append(out, len(g))
	}
	return out
}

// NextSwitchAt exposes the scheduler's next planned switch time (used by
// global synchronization).
func (s *Server) NextSwitchAt() sim.Time { return s.nextSwitch }

// AdjustPhase shifts the next slice by delta (global synchronization).
func (s *Server) AdjustPhase(delta sim.Duration) { s.phaseAdjust += delta }
