// Elastic membership: ScaleRPC admission over the connection control
// plane. A server binds itself to its host's ctrlplane.Manager under
// ServiceName; clients then Join through the in-band, costed handshake
// instead of the zero-cost Connect backdoor, Leave gracefully (the QP pair
// parks in the connection cache, the id stays reserved), and Rejoin —
// resuming from the cache when possible, falling back to a cold handshake
// (with a fresh id and a ClientID restamp of staged requests) when the
// cache evicted or the lease expired. Group membership regroups lazily at
// the next context switch; in-flight slices are never disturbed.
package scalerpc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"scalerpc/internal/ctrlplane"
	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/rpcwire"
	"scalerpc/internal/sim"
	"scalerpc/internal/telemetry"
)

// ServiceName is the control-plane service a ScaleRPC server registers.
const ServiceName = "scalerpc"

// Join request payload: respAddr u64 | respRKey u32 | stageAddr u64 |
// stageRKey u32 | pinned u8 | tenant u16 — the region exchange that
// Connect performs out of band, carried in the connect-request instead,
// plus the tenant identity the admission gate and fair scheduler key on.
const joinReqSize = 8 + 4 + 8 + 4 + 1 + 2

// Join/resume response payload: id u16 | pinnedGranted u8 | zone i16.
const joinRespSize = 2 + 1 + 2

// ErrNotManaged is returned by Rejoin on a connection that was admitted
// through the legacy Connect backdoor rather than the control plane.
var ErrNotManaged = errors.New("scalerpc: connection not admitted through the control plane")

// BindControlPlane registers this server with its host's control-plane
// manager so clients can Join in-band, and subscribes to the manager's
// failure-detector ladder: a demoted peer's clients are isolated into
// suspect groups (probes suppressed, service continues) and restored when
// the peer clears. Eviction needs no hook — the manager's expiry sweep
// tears the connection down through the normal Closed path.
func (s *Server) BindControlPlane(m *ctrlplane.Manager) {
	if m.Host() != s.Host {
		panic("scalerpc: control-plane manager runs on a different host")
	}
	m.RegisterService(ServiceName, &ctrlAdapter{s: s, m: m})
	m.OnPeerState(func(peer int, old, new ctrlplane.PeerState) {
		switch new {
		case ctrlplane.PeerDemoted:
			s.DemotePeer(peer)
		case ctrlplane.PeerHealthy:
			s.RestorePeer(peer)
		}
	})
}

// ctrlAdapter implements ctrlplane.Service (and ctrlplane.Gatekeeper) for
// a ScaleRPC server.
type ctrlAdapter struct {
	s *Server
	m *ctrlplane.Manager
}

// PreAdmit screens a dial before the control plane builds any QP state:
// with a tenant authority installed, an over-quota tenant's dial is queued
// (ctrlplane.ErrAdmitQueue) or rejected here, before the handshake spends
// a single ModifyQP. Side-effect free; Accept/Resume re-run the decision
// authoritatively.
func (a *ctrlAdapter) PreAdmit(peer int, service string, payload []byte) error {
	s := a.s
	if s.tenantAuth == nil || len(payload) != joinReqSize {
		return nil
	}
	_, err := s.tenantAuth.AdmitConn(binary.LittleEndian.Uint16(payload[25:]), payload[24] != 0)
	return err
}

// Accept admits a new client: allocate an id (reusing ids released by
// lease expiry or cache teardown), record its regions, and place it in a
// group — or on a reserved zone when it asks for latency sensitivity and
// one is free. A cold rejoin — same regions, but the cached pair is gone —
// reclaims the still-parked identity instead of allocating a fresh id.
// The handle is id+1 so a zero handle is never valid.
func (a *ctrlAdapter) Accept(t *host.Thread, peer int, qp *nic.QP, payload []byte) ([]byte, uint64, error) {
	s := a.s
	if len(payload) != joinReqSize {
		return nil, 0, fmt.Errorf("scalerpc: join payload is %d bytes, want %d", len(payload), joinReqSize)
	}
	tenant := binary.LittleEndian.Uint16(payload[25:])
	pinReq := payload[24] != 0
	if s.tenantAuth != nil {
		granted, err := s.tenantAuth.AdmitConn(tenant, pinReq)
		if err != nil {
			return nil, 0, err
		}
		pinReq = granted
	}
	if cs := s.findParked(payload); cs != nil {
		// The tenant and peer identity must be set before rebind places the
		// client: class-pure grouping and suspect isolation both read the
		// joining client's state at placement.
		cs.tenant = tenant
		a.stamp(cs, peer)
		a.rebind(t, cs, qp, pinReq)
		s.tenantOpen(cs)
		return joinResp(cs), uint64(cs.id) + 1, nil
	}
	id, err := s.allocID()
	if err != nil {
		return nil, 0, err
	}
	cs := &clientState{
		id:        id,
		qp:        qp,
		respAddr:  binary.LittleEndian.Uint64(payload),
		respRKey:  binary.LittleEndian.Uint32(payload[8:]),
		stageAddr: binary.LittleEndian.Uint64(payload[12:]),
		stageRKey: binary.LittleEndian.Uint32(payload[20:]),
		zone:      -1,
		warmZone:  -1,
		tenant:    tenant,
	}
	a.stamp(cs, peer)
	if int(id) == len(s.clients) {
		s.clients = append(s.clients, cs)
	} else {
		s.clients[id] = cs
	}
	a.placeJoined(cs, pinReq)
	s.tenantOpen(cs)
	s.Stats.Joins++
	if s.trace.Enabled {
		s.trace.Emit(t.P.Now(), "client_join", telemetry.A("client", int64(id)))
	}
	return joinResp(cs), uint64(id) + 1, nil
}

// Resume reactivates a parked client from the connection cache. Cached
// pairs are fungible across clients of the same service, so the caller is
// identified by its region payload — not by the handle recorded when the
// pair parked, which may belong to a different client whose pair was
// consumed by an earlier resume. The matched client's id becomes the
// connection's new handle.
func (a *ctrlAdapter) Resume(t *host.Thread, peer int, qp *nic.QP, payload []byte, handle uint64) ([]byte, uint64, error) {
	s := a.s
	cs := s.findParked(payload)
	if cs == nil {
		return nil, 0, errors.New("scalerpc: no parked client matches the resume payload")
	}
	pinReq := cs.pinned
	if s.tenantAuth != nil {
		granted, err := s.tenantAuth.AdmitConn(cs.tenant, pinReq)
		if err != nil {
			return nil, 0, err
		}
		pinReq = granted
	}
	a.stamp(cs, peer)
	a.rebind(t, cs, qp, pinReq)
	s.tenantOpen(cs)
	return joinResp(cs), uint64(cs.id) + 1, nil
}

// stamp records the dialing peer on a (re)admitted client and inherits the
// peer's current detector state, so a client joining from an
// already-demoted peer lands in a suspect group rather than a healthy one.
func (a *ctrlAdapter) stamp(cs *clientState, peer int) {
	cs.peerHost = peer
	cs.demoted = a.m.PeerStateOf(peer) == ctrlplane.PeerDemoted
}

// rebind reactivates a parked client on the given (possibly different)
// QP and places it back into the scheduler.
func (a *ctrlAdapter) rebind(t *host.Thread, cs *clientState, qp *nic.QP, pinned bool) {
	s := a.s
	if !cs.parked && !cs.limbo {
		// The client dialed back in before the server noticed its dead
		// pair: retire the stale activation in place so the rebind below
		// is not a double placement. The errored pair's eventual Closed
		// sweep finds an already-rebound client and stands down.
		s.tenantClose(cs)
		s.unplace(cs)
	}
	cs.parked = false
	if cs.limbo {
		cs.limbo = false
		for i, id := range s.limbo {
			if id == cs.id {
				s.limbo = append(s.limbo[:i], s.limbo[i+1:]...)
				break
			}
		}
	}
	cs.qp = qp
	cs.fetchedUpTo = 0
	cs.missedSlices = 0
	a.placeJoined(cs, pinned)
	s.Stats.Joins++
	if s.trace.Enabled {
		s.trace.Emit(t.P.Now(), "client_rejoin", telemetry.A("client", int64(cs.id)))
	}
}

// findParked returns the parked or quarantined client whose registered
// regions match the join payload, scanning in id order for determinism.
// The regions are the durable identity: a crash-recovered client dialing
// cold presents the same regions and reclaims its id (and dedup window).
// An *active* client whose QP has errored matches too: a client that
// re-dials before the server's sweep notices the dead pair is the same
// client, and handing it a fresh id would silently drop its dedup window
// — the retried in-flight request would re-execute.
func (s *Server) findParked(payload []byte) *clientState {
	if len(payload) != joinReqSize {
		return nil
	}
	respAddr := binary.LittleEndian.Uint64(payload)
	respRKey := binary.LittleEndian.Uint32(payload[8:])
	stageAddr := binary.LittleEndian.Uint64(payload[12:])
	stageRKey := binary.LittleEndian.Uint32(payload[20:])
	for _, cs := range s.clients {
		if cs == nil || cs.respAddr != respAddr || cs.respRKey != respRKey ||
			cs.stageAddr != stageAddr || cs.stageRKey != stageRKey {
			continue
		}
		if cs.parked || cs.limbo || (cs.qp != nil && cs.qp.Err() != nil) {
			return cs
		}
	}
	return nil
}

// limboCap bounds the identity quarantine: at most this many ungracefully
// departed ids wait for their client to return before the oldest is
// released for real.
const limboCap = 64

// Closed handles every departure. A graceful leave parks the client: it
// drops out of its group (taking effect at the next switch) but keeps its
// id and regions so a later Resume is cheap. Every other reason — lease
// expiry, QP error, cache eviction of a parked entry — quarantines the
// identity: the id and the reply cache's dedup window stay reserved so a
// crash-recovered client that dials back in (cold, matched by its regions)
// resumes exactly-once execution across the outage. The quarantine is
// FIFO-bounded; overflow releases the oldest identity and drops its dedup
// state, after which a returning client starts a fresh reqID space.
func (a *ctrlAdapter) Closed(peer int, handle uint64, reason ctrlplane.CloseReason) {
	s := a.s
	cs := s.lookupHandle(handle)
	if cs == nil {
		return
	}
	if reason == ctrlplane.CloseLeave {
		s.tenantClose(cs)
		s.unplace(cs)
		cs.parked = true
		s.Stats.Leaves++
		return
	}
	if cs.limbo {
		// Another stale pair of an already-quarantined identity went away.
		return
	}
	if reason == ctrlplane.CloseError && cs.qp.Err() == nil {
		// The errored pair is an orphan: the client already rebound onto a
		// fresh QP before the sweep got to the dead one.
		return
	}
	if reason == ctrlplane.CloseTeardown && !cs.parked {
		// The cache tore down an orphaned pair: its recorded handle points
		// at a client that has since resumed on a different cached pair.
		// The teardown does not concern the (active) client.
		return
	}
	if reason == ctrlplane.CloseExpired {
		s.Stats.Expires++
	}
	s.tenantClose(cs)
	s.unplace(cs)
	cs.parked = false
	cs.limbo = true
	s.limbo = append(s.limbo, cs.id)
	for len(s.limbo) > limboCap {
		id := s.limbo[0]
		s.limbo = s.limbo[1:]
		s.releaseID(id)
	}
}

// Forget administratively releases a parked or quarantined identity: the
// id returns to the pool and its dedup window is dropped, as if the
// quarantine had aged it out. Active clients are untouched.
func (s *Server) Forget(id uint16) {
	if int(id) >= len(s.clients) {
		return
	}
	cs := s.clients[id]
	if cs == nil || (!cs.parked && !cs.limbo) {
		return
	}
	s.unplace(cs)
	cs.parked = false
	cs.limbo = true
	for i, l := range s.limbo {
		if l == id {
			s.limbo = append(s.limbo[:i], s.limbo[i+1:]...)
			break
		}
	}
	s.releaseID(id)
}

// releaseID frees a quarantined identity for good: the id returns to the
// pool and the dedup window is dropped (a future client under this id
// starts a fresh reqID space).
func (s *Server) releaseID(id uint16) {
	cs := s.clients[id]
	if cs == nil || !cs.limbo {
		return
	}
	s.clients[id] = nil
	s.freeIDs = append(s.freeIDs, id)
	s.replies.Drop(id)
}

// placeJoined places a (re)admitted client: a reserved zone when requested
// and available, otherwise the grouped path.
func (a *ctrlAdapter) placeJoined(cs *clientState, pinned bool) {
	s := a.s
	if pinned {
		if z := s.reservedZoneFor(cs); z >= 0 {
			cs.pinned = true
			cs.zone = z
			cs.group = -1
			return
		}
	}
	cs.pinned = false
	s.place(cs)
}

func joinResp(cs *clientState) []byte {
	resp := make([]byte, joinRespSize)
	binary.LittleEndian.PutUint16(resp, cs.id)
	if cs.pinned {
		resp[2] = 1
	}
	binary.LittleEndian.PutUint16(resp[3:], uint16(int16(cs.zone)))
	return resp
}

// allocID returns the next client id: released ids first, then fresh ones.
func (s *Server) allocID() (uint16, error) {
	if n := len(s.freeIDs); n > 0 {
		id := s.freeIDs[n-1]
		s.freeIDs = s.freeIDs[:n-1]
		return id, nil
	}
	if len(s.clients) >= s.Cfg.MaxClients {
		return 0, fmt.Errorf("scalerpc: server full (%d clients)", s.Cfg.MaxClients)
	}
	return uint16(len(s.clients)), nil
}

func (s *Server) lookupHandle(handle uint64) *clientState {
	if handle == 0 || handle > uint64(len(s.clients)) {
		return nil
	}
	return s.clients[handle-1]
}

// Join admits a client through the control plane: register the staging and
// response regions on the client host, dial the server's manager (cold
// handshake with modeled QP-setup latency, or a cached resume), and build
// a Conn on the dialed QP. t must run on the client host. pinned requests
// a reserved zone; like ConnectLatencySensitive it degrades to the grouped
// path when none is free (check Conn.Pinned for the outcome).
func (s *Server) Join(t *host.Thread, dir *ctrlplane.Directory, sig *sim.Signal, pinned bool) (*Conn, error) {
	return s.JoinTenant(t, dir, sig, pinned, 0)
}

// JoinTenant is Join with an explicit tenant identity: the tenant id rides
// in the connect-request payload, so the server-side admission gate can
// queue or reject the dial against the tenant's quota before any QP is
// built, and every request the client later stages is attributed to the
// tenant. Tenant 0 is the default tenant.
func (s *Server) JoinTenant(t *host.Thread, dir *ctrlplane.Directory, sig *sim.Signal, pinned bool, tenant uint16) (*Conn, error) {
	ch := t.Host
	mgr := dir.Manager(ch.ID)
	if mgr == nil {
		return nil, fmt.Errorf("scalerpc: no control-plane manager on host %d", ch.ID)
	}
	stage := ch.Mem.Register(s.Cfg.BlockSize*s.Cfg.BlocksPerClient, memory.PageSize2M,
		memory.LocalWrite|memory.RemoteRead)
	respReg := ch.Mem.Register(s.Cfg.BlockSize*(s.Cfg.BlocksPerClient+1), memory.PageSize2M,
		memory.LocalWrite|memory.RemoteWrite)
	c := &Conn{
		h:            ch,
		s:            s,
		sig:          sig,
		stage:        stage,
		entryScratch: ch.Mem.Register(64, memory.PageSize4K, memory.LocalWrite),
		resp:         rpcwire.NewPool(respReg, s.Cfg.BlockSize, s.Cfg.BlocksPerClient+1, 1),
		buf:          make([]byte, s.Cfg.BlockSize),
		slots:        make([]connSlot, s.Cfg.BlocksPerClient),
		zone:         -1,
		poolIdx:      -1,
		mgr:          mgr,
		joinPinned:   pinned,
		joinTenant:   tenant,
	}
	c.trace = s.trace
	cp, err := mgr.Dial(t, s.Host.ID, ServiceName, c.joinPayload())
	if err != nil {
		return nil, err
	}
	if err := c.adoptDial(cp); err != nil {
		return nil, err
	}
	ch.NIC.WatchRegion(respReg.RKey, sig)
	return c, nil
}

// Pinned reports whether the connection holds a reserved zone.
func (c *Conn) Pinned() bool { return c.pinned }

// ID returns the server-assigned client id.
func (c *Conn) ID() uint16 { return c.id }

// Left reports whether the connection is currently departed (between
// Leave and Rejoin).
func (c *Conn) Left() bool { return c.left }

// Leave departs gracefully: the QP pair parks in the connection cache on
// both sides and the server drops this client from its group at the next
// switch. Unanswered requests stay in the staging area; Rejoin re-offers
// them. TrySend and Poll are inert until then.
func (c *Conn) Leave(t *host.Thread) {
	if c.cp == nil || c.left {
		return
	}
	c.cp.Close(t)
	c.left = true
	c.state = StateIdle
	c.zone = -1
	c.poolIdx = -1
	c.traceState(StateIdle)
}

// Rejoin re-admits a departed (or failed) connection through the control
// plane. A cache hit resumes the parked QP pair under the same id in one
// round trip; a miss (evicted, expired, or errored) runs the cold
// handshake, and if the server issued a new id the staged requests are
// restamped before they go back out. Surviving requests re-offer through
// a fresh warmup round, same as the context-switch race.
func (c *Conn) Rejoin(t *host.Thread) error {
	if c.mgr == nil {
		return ErrNotManaged
	}
	if !c.left && c.qp.Err() == nil {
		return nil
	}
	oldID := c.id
	cp, err := c.mgr.Dial(t, c.s.Host.ID, ServiceName, c.joinPayload())
	if err != nil {
		return err
	}
	if err := c.adoptDial(cp); err != nil {
		return err
	}
	c.left = false
	if c.id != oldID {
		c.restampID(t)
	}
	if c.pinned {
		// Reserved-zone clients skip warmup and resend in place.
		return nil
	}
	c.state = StateIdle
	c.zone = -1
	c.poolIdx = -1
	c.onContextSwitch(t)
	return nil
}

// joinPayload encodes the client's region exchange for Dial.
func (c *Conn) joinPayload() []byte {
	p := make([]byte, joinReqSize)
	binary.LittleEndian.PutUint64(p, c.resp.Region.Base)
	binary.LittleEndian.PutUint32(p[8:], c.resp.Region.RKey)
	binary.LittleEndian.PutUint64(p[12:], c.stage.Base)
	binary.LittleEndian.PutUint32(p[20:], c.stage.RKey)
	if c.joinPinned {
		p[24] = 1
	}
	binary.LittleEndian.PutUint16(p[25:], c.joinTenant)
	return p
}

// adoptDial installs the dialed control-plane connection and parses the
// server's admission response.
func (c *Conn) adoptDial(cp *ctrlplane.Conn) error {
	if len(cp.Payload) != joinRespSize {
		return fmt.Errorf("scalerpc: join response is %d bytes, want %d", len(cp.Payload), joinRespSize)
	}
	c.cp = cp
	c.qp = cp.QP
	c.id = binary.LittleEndian.Uint16(cp.Payload)
	c.pinned = cp.Payload[2] != 0
	if c.pinned {
		c.state = StateProcess
		c.zone = int(int16(binary.LittleEndian.Uint16(cp.Payload[3:])))
		c.poolIdx = 0
	}
	return nil
}

// restampID rewrites the ClientID field of every staged, unanswered
// request after a cold rejoin handed out a new id. The header sits at the
// front of the right-aligned encoded message; ClientID is 2 bytes at
// message offset 9 (after ReqID u64 and Handler u8). The rewrite changes
// CRC-covered bytes, so the frame is resealed and the CRC word flushed too.
func (c *Conn) restampID(t *host.Thread) {
	for b := range c.slots {
		if !c.slots[b].busy || !c.slots[b].staged {
			continue
		}
		off, _ := rpcwire.EncodedSpan(c.s.Cfg.BlockSize, c.slots[b].msgLen)
		at := b*c.s.Cfg.BlockSize + off + 9
		binary.LittleEndian.PutUint16(c.stage.Bytes()[at:], c.id)
		t.WriteMem(c.stage.Base+uint64(at), 2)
		block := c.stage.Bytes()[b*c.s.Cfg.BlockSize : (b+1)*c.s.Cfg.BlockSize]
		crcAt := b*c.s.Cfg.BlockSize + rpcwire.Reseal(block)
		t.WriteMem(c.stage.Base+uint64(crcAt), 4)
	}
}
