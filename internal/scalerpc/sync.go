package scalerpc

import (
	"encoding/binary"

	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/sim"
)

// Global synchronization (§4.2, Figure 14). When clients talk to several
// RPCServers at once (as in ScaleTX), independent schedulers would leave a
// client in PROCESS on one server but WARMUP on another, stalling it.
// The servers therefore run an NTP-like exchange: one is the predefined
// time server; the others (followers) periodically send sync requests,
// measure T1/T4 locally while the time server stamps T2/T3, and adjust
// the sleep before their next context switch by
//
//	D_i = D − (T4 − T1 − ΔT)/2,   ΔT = T3 − T2
//
// so every server switches groups at the same pace and phase.

// syncMsg layout: kind(1) | T1(8) | T2(8) | T3(8) | deltaT(8) | phase(8).
const syncMsgSize = 1 + 5*8

const (
	syncReq  = 1
	syncResp = 2
)

// SyncGroup couples a set of ScaleRPC servers so their schedulers switch
// in phase. Servers[0] is the time server (chosen by configuration
// scripts, per the paper).
type SyncGroup struct {
	Servers []*Server
	// Exchanges counts completed sync rounds (per follower).
	Exchanges uint64
	// LastOffset records each follower's most recent phase correction.
	LastOffset []sim.Duration
}

// NewSyncGroup wires the servers' sync endpoints together and starts the
// exchange processes. Call before the cluster runs.
func NewSyncGroup(servers []*Server) *SyncGroup {
	g := &SyncGroup{Servers: servers, LastOffset: make([]sim.Duration, len(servers))}
	if len(servers) < 2 {
		return g
	}
	ts := servers[0]
	for i, follower := range servers[1:] {
		i := i
		follower := follower
		// A dedicated RC QP pair and mailbox regions per follower.
		tsCQ := ts.Host.NIC.CreateCQ()
		foCQ := follower.Host.NIC.CreateCQ()
		tsQP := ts.Host.NIC.CreateQP(nic.RC, tsCQ, tsCQ)
		foQP := follower.Host.NIC.CreateQP(nic.RC, foCQ, foCQ)
		if err := nic.Connect(tsQP, foQP); err != nil {
			panic(err)
		}
		tsBox := ts.Host.Mem.Register(syncMsgSize, memory.PageSize4K, memory.LocalWrite|memory.RemoteWrite)
		foBox := follower.Host.Mem.Register(syncMsgSize, memory.PageSize4K, memory.LocalWrite|memory.RemoteWrite)
		tsScratch := ts.Host.Mem.Register(syncMsgSize, memory.PageSize4K, memory.LocalWrite)
		foScratch := follower.Host.Mem.Register(syncMsgSize, memory.PageSize4K, memory.LocalWrite)

		tsSig := sim.NewSignal(ts.Host.Env)
		foSig := sim.NewSignal(follower.Host.Env)
		ts.Host.NIC.WatchRegion(tsBox.RKey, tsSig)
		follower.Host.NIC.WatchRegion(foBox.RKey, foSig)

		// Time-server side: answer sync requests with T2/T3/ΔT and its
		// scheduler phase.
		ts.Host.Spawn("sync-ts", func(t *host.Thread) {
			for {
				if tsBox.Bytes()[0] != syncReq {
					tsSig.WaitTimeout(t.P, 50*sim.Microsecond)
					continue
				}
				t.ReadMem(tsBox.Base, syncMsgSize)
				t2 := t.P.Now()
				req := tsBox.Bytes()
				t1 := binary.LittleEndian.Uint64(req[1:])
				tsBox.Bytes()[0] = 0
				t.Work(100) // request handling
				t3 := t.P.Now()
				resp := tsScratch.Bytes()
				resp[0] = syncResp
				binary.LittleEndian.PutUint64(resp[1:], t1)
				binary.LittleEndian.PutUint64(resp[9:], uint64(t2))
				binary.LittleEndian.PutUint64(resp[17:], uint64(t3))
				binary.LittleEndian.PutUint64(resp[25:], uint64(t3-t2))
				binary.LittleEndian.PutUint64(resp[33:], uint64(ts.NextSwitchAt()))
				t.WriteMem(tsScratch.Base, syncMsgSize)
				t.PostSend(tsQP, nic.SendWR{
					Op: nic.OpWrite, LKey: tsScratch.LKey, LAddr: tsScratch.Base,
					Len: syncMsgSize, RKey: foBox.RKey, RAddr: foBox.Base, Inline: true,
				})
			}
		})

		// Follower side: periodic sync exchange.
		follower.Host.Spawn("sync-follower", func(t *host.Thread) {
			for {
				t.P.Sleep(follower.Cfg.SyncPeriod)
				t1 := t.P.Now()
				req := foScratch.Bytes()
				req[0] = syncReq
				binary.LittleEndian.PutUint64(req[1:], uint64(t1))
				t.WriteMem(foScratch.Base, syncMsgSize)
				t.PostSend(foQP, nic.SendWR{
					Op: nic.OpWrite, LKey: foScratch.LKey, LAddr: foScratch.Base,
					Len: syncMsgSize, RKey: tsBox.RKey, RAddr: tsBox.Base, Inline: true,
				})
				// Await the response.
				for foBox.Bytes()[0] != syncResp {
					foSig.WaitTimeout(t.P, 50*sim.Microsecond)
				}
				t.ReadMem(foBox.Base, syncMsgSize)
				resp := foBox.Bytes()
				deltaT := sim.Duration(binary.LittleEndian.Uint64(resp[25:]))
				tsPhase := sim.Time(binary.LittleEndian.Uint64(resp[33:]))
				foBox.Bytes()[0] = 0
				t4 := t.P.Now()

				// D_i = D − (T4 − T1 − ΔT)/2: shorten the next slice by the
				// one-way delay estimate, then align phases modulo the
				// slice length using the time server's advertised phase.
				oneWay := (t4 - t1 - deltaT) / 2
				slice := follower.Cfg.TimeSlice
				phaseErr := (tsPhase - follower.NextSwitchAt()) % slice
				if phaseErr > slice/2 {
					phaseErr -= slice
				}
				if phaseErr < -slice/2 {
					phaseErr += slice
				}
				adj := phaseErr - oneWay
				follower.AdjustPhase(adj)
				g.LastOffset[i] = adj
				g.Exchanges++
			}
		})
	}
	return g
}
