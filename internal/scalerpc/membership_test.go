package scalerpc_test

import (
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/ctrlplane"
	"scalerpc/internal/host"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
)

// stepUntil drives the simulation in small increments until cond holds or
// limit elapses (server procs run forever, so Env.Run never idles).
func stepUntil(t *testing.T, c *cluster.Cluster, limit sim.Duration, cond func() bool) {
	t.Helper()
	deadline := c.Env.Now() + limit
	for !cond() {
		if c.Env.Now() >= deadline {
			t.Fatalf("condition not reached within %d ns", limit)
		}
		c.Env.RunUntil(c.Env.Now() + 20_000)
	}
}

// echoOnce sends one echo request and polls until its response arrives.
func echoOnce(t *testing.T, th *host.Thread, conn *scalerpc.Conn, sig *sim.Signal, payload string, reqID uint64) string {
	t.Helper()
	deadline := th.P.Now() + 20*sim.Millisecond
	for !conn.TrySend(th, 1, []byte(payload), reqID) {
		if th.P.Now() > deadline {
			return "<send-timeout>"
		}
		conn.Poll(th, func(rpccore.Response) {})
		sig.WaitTimeout(th.P, 10*sim.Microsecond)
	}
	got := ""
	for got == "" {
		if th.P.Now() > deadline {
			return "<poll-timeout>"
		}
		conn.Poll(th, func(r rpccore.Response) {
			if r.ReqID == reqID {
				got = string(r.Payload)
			}
		})
		if got == "" {
			sig.WaitTimeout(th.P, 10*sim.Microsecond)
		}
	}
	return got
}

// bindPlane installs control-plane managers with cfg on every host and
// binds the server on host 0.
func bindPlane(c *cluster.Cluster, s *scalerpc.Server, cfg ctrlplane.Config) *ctrlplane.Directory {
	dir := ctrlplane.NewDirectory()
	for _, h := range c.Hosts {
		ctrlplane.NewManager(h, cfg, dir).Start()
	}
	s.BindControlPlane(dir.Manager(0))
	return dir
}

// TestJoinLeaveRejoinResume covers the happy elastic-membership path: an
// in-band join, traffic, a graceful leave that parks the pair in the
// connection cache, and a rejoin that resumes it under the same id.
func TestJoinLeaveRejoinResume(t *testing.T) {
	c, s := buildServer(2, nil)
	defer c.Close()
	dir := bindPlane(c, s, ctrlplane.DefaultConfig())

	sig := sim.NewSignal(c.Env)
	phase := 0
	var id0, id1 uint16
	c.Hosts[1].Spawn("member", func(th *host.Thread) {
		conn, err := s.Join(th, dir, sig, false)
		if err != nil {
			t.Error(err)
			phase = -1
			return
		}
		id0 = conn.ID()
		if got := echoOnce(t, th, conn, sig, "first", 1); got != "first" {
			t.Errorf("echo before leave = %q", got)
		}
		conn.Leave(th)
		if !conn.Left() {
			t.Error("conn not marked departed after Leave")
		}
		if conn.TrySend(th, 1, []byte("x"), 99) {
			t.Error("TrySend succeeded while departed")
		}
		if conn.Poll(th, func(rpccore.Response) {}) != 0 {
			t.Error("Poll made progress while departed")
		}
		th.P.Sleep(200 * sim.Microsecond)
		if err := conn.Rejoin(th); err != nil {
			t.Error(err)
			phase = -1
			return
		}
		id1 = conn.ID()
		if got := echoOnce(t, th, conn, sig, "second", 2); got != "second" {
			t.Errorf("echo after rejoin = %q", got)
		}
		phase = 1
	})
	stepUntil(t, c, 100*sim.Millisecond, func() bool { return phase != 0 })
	if phase != 1 {
		t.Fatal("member thread failed")
	}
	if id1 != id0 {
		t.Fatalf("id changed across cached rejoin: %d -> %d", id0, id1)
	}
	if s.Stats.Joins != 2 || s.Stats.Leaves != 1 {
		t.Fatalf("joins=%d leaves=%d, want 2/1", s.Stats.Joins, s.Stats.Leaves)
	}
	mgr := dir.Manager(0)
	if mgr.Stats.Resumes != 1 {
		t.Fatalf("manager resumes = %d, want 1 (rejoin must hit the cache)", mgr.Stats.Resumes)
	}
}

// TestColdRejoinRestampsStagedRequests forces the cache-miss rejoin: the
// parked entry is idle-torn-down and its quarantined identity explicitly
// Forgotten (releasing the id, which a second client takes), so Rejoin
// runs a cold handshake under a fresh id and the staged unanswered
// request must be restamped before it is re-offered.
func TestColdRejoinRestampsStagedRequests(t *testing.T) {
	c, s := buildServer(2, nil)
	defer c.Close()
	cfg := ctrlplane.DefaultConfig()
	cfg.IdleTimeout = 200 * sim.Microsecond
	dir := bindPlane(c, s, cfg)

	sig := sim.NewSignal(c.Env)
	phase := 0
	var oldID, newID uint16
	c.Hosts[1].Spawn("member", func(th *host.Thread) {
		a, err := s.Join(th, dir, sig, false)
		if err != nil {
			t.Error(err)
			phase = -1
			return
		}
		oldID = a.ID()
		// Stage a request and depart before it can be served: the slot
		// stays busy across the leave.
		if !a.TrySend(th, 1, []byte("survivor"), 7) {
			t.Error("TrySend failed")
			phase = -1
			return
		}
		a.Leave(th)
		// Wait out the idle teardown: the parked pair is destroyed and
		// the identity moves to quarantine. Forget releases it so the id
		// returns to the free list.
		th.P.Sleep(10 * cfg.IdleTimeout)
		s.Forget(oldID)
		// A second client takes the freed id.
		b, err := s.Join(th, dir, sim.NewSignal(c.Env), false)
		if err != nil {
			t.Error(err)
			phase = -1
			return
		}
		if b.ID() != oldID {
			t.Errorf("second join got id %d, want freed id %d", b.ID(), oldID)
		}
		// Rejoin is now a cold handshake under a fresh id; the staged
		// request is restamped and still gets answered.
		if err := a.Rejoin(th); err != nil {
			t.Error(err)
			phase = -1
			return
		}
		newID = a.ID()
		got := ""
		deadline := th.P.Now() + 20*sim.Millisecond
		for got == "" && th.P.Now() < deadline {
			a.Poll(th, func(r rpccore.Response) {
				if r.ReqID == 7 {
					got = string(r.Payload)
				}
			})
			if got == "" {
				sig.WaitTimeout(th.P, 10*sim.Microsecond)
			}
		}
		if got != "survivor" {
			t.Errorf("staged request answer = %q, want %q", got, "survivor")
		}
		phase = 1
	})
	stepUntil(t, c, 200*sim.Millisecond, func() bool { return phase != 0 })
	if phase != 1 {
		t.Fatal("member thread failed")
	}
	if newID == oldID {
		t.Fatalf("cold rejoin kept id %d; want a fresh id", oldID)
	}
	if s.Stats.Joins != 3 {
		t.Fatalf("joins = %d, want 3 (join, second join, cold rejoin)", s.Stats.Joins)
	}
	if dir.Manager(0).Stats.IdleTeardowns == 0 {
		t.Fatal("parked pair was never idle-torn-down")
	}
}

// TestQuarantineReclaimKeepsIdentity covers the crash-recovery contract:
// when a parked pair is idle-torn-down without an explicit Forget, the
// identity is quarantined rather than freed, and a cold rejoin that
// matches the client's registered regions reclaims the same id. The
// staged request — already executed before the departure — is answered
// from the retained dedup window without running the handler again.
func TestQuarantineReclaimKeepsIdentity(t *testing.T) {
	c, s := buildServer(2, nil)
	defer c.Close()
	execs := 0
	s.Register(2, func(th *host.Thread, clientID uint16, req []byte, out []byte) int {
		execs++
		th.Work(100)
		return copy(out, req)
	})
	cfg := ctrlplane.DefaultConfig()
	cfg.IdleTimeout = 200 * sim.Microsecond
	dir := bindPlane(c, s, cfg)

	sig := sim.NewSignal(c.Env)
	phase := 0
	var oldID, newID uint16
	c.Hosts[1].Spawn("member", func(th *host.Thread) {
		a, err := s.Join(th, dir, sig, false)
		if err != nil {
			t.Error(err)
			phase = -1
			return
		}
		oldID = a.ID()
		// Let one request complete so its reply sits in the dedup window,
		// then depart without consuming the answer.
		if !a.TrySend(th, 2, []byte("phoenix"), 11) {
			t.Error("TrySend failed")
			phase = -1
			return
		}
		th.P.Sleep(5 * sim.Millisecond)
		a.Leave(th)
		// Idle teardown destroys the parked pair; the identity moves to
		// quarantine with its id and dedup window intact.
		th.P.Sleep(10 * cfg.IdleTimeout)
		if err := a.Rejoin(th); err != nil {
			t.Error(err)
			phase = -1
			return
		}
		newID = a.ID()
		got := ""
		deadline := th.P.Now() + 20*sim.Millisecond
		for got == "" && th.P.Now() < deadline {
			a.Poll(th, func(r rpccore.Response) {
				if r.ReqID == 11 {
					got = string(r.Payload)
				}
			})
			if got == "" {
				sig.WaitTimeout(th.P, 10*sim.Microsecond)
			}
		}
		if got != "phoenix" {
			t.Errorf("staged request answer = %q, want %q", got, "phoenix")
		}
		phase = 1
	})
	stepUntil(t, c, 200*sim.Millisecond, func() bool { return phase != 0 })
	if phase != 1 {
		t.Fatal("member thread failed")
	}
	if newID != oldID {
		t.Fatalf("quarantine reclaim changed id %d -> %d; want the same identity", oldID, newID)
	}
	if execs != 1 {
		t.Fatalf("handler executed %d times, want exactly 1 (replay must come from the dedup window)", execs)
	}
	if dir.Manager(0).Stats.IdleTeardowns == 0 {
		t.Fatal("parked pair was never idle-torn-down")
	}
}

// TestChurnEventLogDeterministic runs the same seeded churn schedule twice
// and requires bit-identical control-plane event logs — the per-seed
// determinism bar for join/leave/evict ordering.
func TestChurnEventLogDeterministic(t *testing.T) {
	run := func() []ctrlplane.Event {
		c, s := buildServer(3, nil)
		defer c.Close()
		cfg := ctrlplane.DefaultConfig()
		cfg.IdleTimeout = 400 * sim.Microsecond
		dir := bindPlane(c, s, cfg)

		rng := stats.NewRNG(42)
		for i := 0; i < 6; i++ {
			i := i
			hi := 1 + i%2
			leaveAt := sim.Time(200_000 + rng.Intn(400_000))
			down := sim.Duration(100_000 + rng.Intn(400_000))
			sig := sim.NewSignal(c.Env)
			c.Hosts[hi].Spawn("member", func(th *host.Thread) {
				conn, err := s.Join(th, dir, sig, false)
				if err != nil {
					t.Error(err)
					return
				}
				req := uint64(i+1) << 32
				for th.P.Now() < leaveAt {
					req++
					conn.TrySend(th, 1, []byte("ping"), req)
					conn.Poll(th, func(rpccore.Response) {})
					sig.WaitTimeout(th.P, 20*sim.Microsecond)
				}
				conn.Leave(th)
				th.P.Sleep(down)
				if err := conn.Rejoin(th); err != nil {
					t.Error(err)
					return
				}
				req++
				if got := echoOnce(t, th, conn, sig, "back", req); got != "back" {
					t.Errorf("client %d echo after rejoin = %q", i, got)
				}
				conn.Leave(th)
			})
		}
		c.Env.RunUntil(25 * sim.Millisecond)
		return append([]ctrlplane.Event(nil), dir.Manager(0).Events...)
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no control-plane events logged")
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	var joins, leaves int
	for _, e := range a {
		switch e.Kind {
		case "accept", "resume":
			joins++
		case "leave":
			leaves++
		}
	}
	if joins < 12 || leaves < 12 {
		t.Fatalf("log too quiet: %d joins, %d leaves (want >= 12 each)", joins, leaves)
	}
}
