// The rds chaos variant: drop and duplication faults run against the
// one-sided path of internal/rds's remote MPMC queue. Producers claim
// tail tickets with FetchAdd and consumers claim head tickets the same
// way, so the fault plane attacks exactly the operations that are NOT
// idempotent: a retransmitted FetchAdd that re-executed would hand two
// producers the same slot (an element lost to overwrite) or hand one
// consumer two tickets (an element double-applied). The NIC's atomic
// replay cache is what makes the protocol hold — duplicates are answered
// from the cache, never re-executed — and the run asserts it fired.
//
// Invariants per seeded run:
//
//  1. No lost elements: every token a producer enqueued is dequeued by
//     exactly one consumer.
//  2. No double-applied elements: no token is dequeued twice, and no
//     dequeue returns bytes matching no enqueued token.
//  3. Liveness: every producer and consumer drains its budget before the
//     hard stop, despite drops stalling individual verbs on the
//     retransmit timer.
//
// One seed derives the fault rates, the cluster RNG and the workload
// pacing, so the same RDSConfig produces a byte-identical RDSResult.
package chaos

import (
	"encoding/binary"
	"fmt"
	"sort"

	"scalerpc/internal/cluster"
	"scalerpc/internal/faults"
	"scalerpc/internal/host"
	"scalerpc/internal/rds"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
)

// saltRDS keeps the rds schedule generator independent of the other
// chaos classes when the matrix reuses seeds.
const saltRDS = 0xa0761d6478bd642f

// RDSConfig selects one seeded rds-queue chaos run. Seed is required;
// everything else defaults.
type RDSConfig struct {
	Seed uint64 `json:"seed"`
	// Producers each enqueue Elems unique tokens (defaults 4 × 30).
	Producers int `json:"producers,omitempty"`
	Elems     int `json:"elems,omitempty"`
	// Consumers split the total dequeue quota evenly (default 4).
	Consumers int `json:"consumers,omitempty"`
	// Budget is the hard stop (default 80 ms of virtual time).
	Budget sim.Duration `json:"budget_ns,omitempty"`
}

// RDSResult is one run's outcome. Same RDSConfig ⇒ byte-identical JSON.
type RDSResult struct {
	Seed      uint64  `json:"seed"`
	Producers int     `json:"producers"`
	Elems     int     `json:"elems"`
	Consumers int     `json:"consumers"`
	DropRate  float64 `json:"drop_rate"`
	DupRate   float64 `json:"dup_rate"`

	Enqueued uint64 `json:"enqueued"`
	Dequeued uint64 `json:"dequeued"`

	// Server-NIC responder counters: every ticket claim is an AtomicOp;
	// AtomicReplays counts duplicated claims absorbed by the replay cache.
	AtomicOps     uint64 `json:"atomic_ops"`
	AtomicReplays uint64 `json:"atomic_replays"`
	QueueSpins    uint64 `json:"queue_spins"`
	Retransmits   uint64 `json:"retransmits"`

	StuckClients int      `json:"stuck_clients"`
	Violations   []string `json:"violations,omitempty"`
	ElapsedNs    int64    `json:"elapsed_ns"`
}

// Pass reports whether every invariant held.
func (r *RDSResult) Pass() bool { return len(r.Violations) == 0 }

// rdsToken encodes producer p's k-th element: unique across the run and
// self-describing, so the multiset check can name what went missing.
func rdsToken(p, k int) uint64 { return uint64(p+1)<<32 | uint64(k+1) }

// RunRDS executes one seeded drop+dup schedule against the one-sided
// remote queue.
func RunRDS(cfg RDSConfig) (*RDSResult, error) {
	if cfg.Producers <= 0 {
		cfg.Producers = 4
	}
	if cfg.Elems <= 0 {
		cfg.Elems = 30
	}
	if cfg.Consumers <= 0 {
		cfg.Consumers = 4
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 80 * sim.Millisecond
	}
	total := cfg.Producers * cfg.Elems

	rng := stats.NewRNG(cfg.Seed ^ saltRDS)
	// Duplication is the star of this schedule (it is what exercises the
	// atomic replay cache), with a drop rate on top so retransmitted —
	// not just duplicated — atomics are in play too. No payload
	// corruption: the one-sided path carries no app-level checksum, and
	// past-ICRC mangling is the transport matrix's concern.
	dropRate := 0.002 + 0.010*rng.Float64()
	dupRate := 0.030 + 0.030*rng.Float64()

	// Topology: server 0, producer host 1, consumer host 2.
	ccfg := cluster.Default(3)
	ccfg.Seed = cfg.Seed + 1
	c := cluster.New(ccfg)
	defer c.Close()

	d := rds.Deploy(c, rds.Config{
		ServerHost: 0,
		// A ring smaller than the total element count, so slot reuse (and
		// the lap protocol's commit words) is part of every run.
		Layout: rds.Layout{Buckets: 16, SlotsPerBucket: 4, ValSize: 16, QueueCap: 32},
	})

	c.InstallFaults(&faults.Scenario{
		Name: fmt.Sprintf("chaos-rds-%d", cfg.Seed),
		Seed: rng.Uint64() | 1,
		Links: []faults.LinkFault{{
			Src: -1, Dst: -1,
			DropRate: dropRate,
			DupRate:  dupRate,
		}},
		// The forgiving retransmit timer recovers drops without erroring
		// QPs; raise the retry budget for unlucky runs.
		NIC: faults.NICTuning{RetransmitTimeoutNs: 20_000, RetryCount: 7},
	})

	hardStop := c.Env.Now() + sim.Time(cfg.Budget)

	prodDone := make([]bool, cfg.Producers)
	for p := 0; p < cfg.Producers; p++ {
		p := p
		prng := stats.NewRNG(cfg.Seed ^ saltRDS ^ uint64(0x1000+p))
		cl := d.NewOneSided(c.Hosts[1])
		c.Hosts[1].Spawn(fmt.Sprintf("rds-chaos-prod%d", p), func(th *host.Thread) {
			buf := make([]byte, 8)
			for k := 0; k < cfg.Elems; k++ {
				if th.P.Now() >= hardStop {
					return
				}
				binary.LittleEndian.PutUint64(buf, rdsToken(p, k))
				if err := cl.Enqueue(th, buf); err != nil {
					// Enqueue blocks on a full ring and the NIC retries
					// drops, so any surfaced error is an invariant
					// violation reported by the multiset check.
					return
				}
				// Jittered pacing interleaves producers' ticket claims.
				th.P.Sleep(sim.Duration(5+prng.Intn(40)) * sim.Microsecond)
			}
			prodDone[p] = true
		})
	}

	// Fixed quotas: each consumer dequeues exactly its share of the total,
	// so no consumer claims a head ticket that no producer will ever fill.
	consDone := make([]bool, cfg.Consumers)
	got := make([]map[uint64]int, cfg.Consumers)
	for q := 0; q < cfg.Consumers; q++ {
		q := q
		quota := total / cfg.Consumers
		if q < total%cfg.Consumers {
			quota++
		}
		crng := stats.NewRNG(cfg.Seed ^ saltRDS ^ uint64(0x2000+q))
		cl := d.NewOneSided(c.Hosts[2])
		got[q] = make(map[uint64]int)
		c.Hosts[2].Spawn(fmt.Sprintf("rds-chaos-cons%d", q), func(th *host.Thread) {
			buf := make([]byte, 16)
			for k := 0; k < quota; k++ {
				if th.P.Now() >= hardStop {
					return
				}
				n, err := cl.Dequeue(th, buf)
				if err != nil {
					return
				}
				if n != 8 {
					got[q][^uint64(0)]++ // malformed element; fails integrity
					continue
				}
				got[q][binary.LittleEndian.Uint64(buf)]++
				th.P.Sleep(sim.Duration(5+crng.Intn(40)) * sim.Microsecond)
			}
			consDone[q] = true
		})
	}

	allDone := func() bool {
		for _, ok := range prodDone {
			if !ok {
				return false
			}
		}
		for _, ok := range consDone {
			if !ok {
				return false
			}
		}
		return true
	}
	for !allDone() && c.Env.Now() < hardStop {
		c.Env.RunUntil(c.Env.Now() + 200*sim.Microsecond)
	}
	// Let trailing completions (slot frees, retransmits in flight) settle.
	c.Env.RunUntil(c.Env.Now() + sim.Time(sim.Millisecond))

	srvNIC := c.Hosts[0].NIC
	res := &RDSResult{
		Seed: cfg.Seed, Producers: cfg.Producers, Elems: cfg.Elems,
		Consumers: cfg.Consumers, DropRate: dropRate, DupRate: dupRate,
		QueueSpins:    d.Stats.QueueSpins,
		AtomicOps:     srvNIC.Stats.AtomicOps,
		AtomicReplays: srvNIC.Stats.AtomicReplays,
		Retransmits:   c.Hosts[1].NIC.Stats.QPRetransmits + c.Hosts[2].NIC.Stats.QPRetransmits,
		ElapsedNs:     int64(c.Env.Now()),
	}
	violate := func(format string, args ...interface{}) {
		if len(res.Violations) < 16 {
			res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
		}
	}

	// Invariant 3: liveness.
	for p, ok := range prodDone {
		if !ok {
			res.StuckClients++
			violate("producer %d stuck within the budget", p)
		}
	}
	for q, ok := range consDone {
		if !ok {
			res.StuckClients++
			violate("consumer %d stuck within the budget", q)
		}
	}

	// Invariants 1 and 2: exact multiset equality between the enqueued and
	// dequeued token sets.
	counts := make(map[uint64]int)
	for _, m := range got {
		for tok, n := range m {
			counts[tok] += n
			res.Dequeued += uint64(n)
		}
	}
	res.Enqueued = uint64(total)
	expected := make([]uint64, 0, total)
	for p := 0; p < cfg.Producers; p++ {
		for k := 0; k < cfg.Elems; k++ {
			expected = append(expected, rdsToken(p, k))
		}
	}
	sort.Slice(expected, func(i, j int) bool { return expected[i] < expected[j] })
	for _, tok := range expected {
		switch counts[tok] {
		case 1:
		case 0:
			violate("token %#x enqueued but never dequeued (lost element)", tok)
		default:
			violate("token %#x dequeued %d times (double-applied)", tok, counts[tok])
		}
		delete(counts, tok)
	}
	// Anything left was delivered but never enqueued.
	strays := make([]uint64, 0, len(counts))
	for tok := range counts {
		strays = append(strays, tok)
	}
	sort.Slice(strays, func(i, j int) bool { return strays[i] < strays[j] })
	for _, tok := range strays {
		violate("token %#x dequeued %d times but never enqueued", tok, counts[tok])
	}
	return res, nil
}
