// Gray-failure chaos: seeded asymmetric-fault schedules against a ScaleRPC
// server whose clients are admitted through the control plane, with the
// adaptive phi-accrual detector (or the fixed-TTL lease baseline) deciding
// liveness. On top of the four reliability invariants of the plain matrix,
// a gray run must hold two more:
//
//  5. No eviction of a healthy node: the detector may suspect, probe and
//     demote the gray node, but only a genuinely unreachable peer may be
//     evicted — and victim hosts (never touched by the schedule) must not
//     be evicted under any schedule. The one-way partition class exempts
//     the gray node itself: total inbound silence is indistinguishable
//     from death, and evicting it is the *correct* call.
//  6. Bounded disruption: the gray node's sickness must not leak into the
//     victim population — every victim drains its full call budget with at
//     least 90% of calls acknowledged.
//
// The fixed-TTL baseline is expected to violate invariant 5 on the
// straggler, degraded-link and keepalive-loss schedules (that misfire is
// the point of the comparison); the tests assert the adaptive detector
// holds all six where the baseline demonstrably evicts.
package chaos

import (
	"encoding/binary"
	"fmt"

	"scalerpc/internal/cluster"
	"scalerpc/internal/ctrlplane"
	"scalerpc/internal/faults"
	"scalerpc/internal/host"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
)

// GrayClass selects a gray-failure schedule family. Every class afflicts
// host 1 (the "gray" client host) and leaves the victim hosts untouched.
type GrayClass string

const (
	// GrayStraggler slows the gray host: CPU scaled down, every wire
	// message gains fixed delay plus heavy jitter. Nothing is lost — the
	// node is just late, which is exactly what widens keepalive
	// inter-arrival gaps past a fixed TTL.
	GrayStraggler GrayClass = "straggler"
	// GrayOneWay silences the gray→server direction completely while the
	// reverse flows: the asymmetric partition where the server must
	// eventually evict (and quarantine) a node that still hears it.
	GrayOneWay GrayClass = "oneway"
	// GrayDegraded keeps the gray↔server links alive but sick in both
	// directions: delay, jitter, and serialization stretched below nominal
	// rate. Everything arrives, just late and irregular.
	GrayDegraded GrayClass = "degraded"
	// GrayKALoss drops only keepalive-class frames gray→server; data flows
	// untouched. The lease protocol starves while the service is perfect —
	// the purest fixed-TTL false-eviction trap.
	GrayKALoss GrayClass = "kaloss"
)

// GrayClasses lists the schedule families in matrix order.
func GrayClasses() []GrayClass {
	return []GrayClass{GrayStraggler, GrayOneWay, GrayDegraded, GrayKALoss}
}

// Per-class schedule salts (same trick as the plain matrix: independent
// streams per class even at equal seeds).
const (
	saltGrayStraggler = 0xd1b54a32d192ed03
	saltGrayOneWay    = 0x8cb92ba72f3d8dd7
	saltGrayDegraded  = 0xaef17502108ef2d9
	saltGrayKALoss    = 0x9e6c63d0876a9a47
)

// grayHost is the afflicted client host; victims run on the other client
// hosts of the 4-host cluster (server = 0, gray = 1, victims = 2 and 3).
const grayHost = 1

// GenGrayScenario derives a gray schedule from the class and seed: the
// episode window and every rate/delay are drawn from one seeded RNG, and
// the scenario pins its own plane seed for bit-identical injection replay.
// The window always closes well before the run budget, so recovery (ladder
// step-down, quarantine rejoin) is part of every run.
func GenGrayScenario(class GrayClass, seed uint64) (sc *faults.Scenario, from, until int64) {
	var salt uint64
	switch class {
	case GrayStraggler:
		salt = saltGrayStraggler
	case GrayOneWay:
		salt = saltGrayOneWay
	case GrayDegraded:
		salt = saltGrayDegraded
	case GrayKALoss:
		salt = saltGrayKALoss
	}
	rng := stats.NewRNG(seed ^ salt)
	sc = &faults.Scenario{
		Name: fmt.Sprintf("gray-%s-%d", class, seed),
		Seed: rng.Uint64() | 1,
	}
	from = us(1500 + rng.Intn(1000)) // past detector warmup (MinSamples)

	switch class {
	case GrayStraggler:
		until = from + us(4000+rng.Intn(3000))
		// Jitter is capped so the widest possible keepalive gap (interval +
		// jitter) stays under the adaptive evict floor (phi≥8 ramp + dwell ≈
		// 812 µs on a tight window) while routinely clearing the 400 µs TTL.
		sc.Stragglers = []faults.Straggler{{
			Node: grayHost, At: from, DurNs: until - from,
			CPUFactor:   1.5 + rng.Float64(),
			NICDelayNs:  us(100 + rng.Intn(100)),
			NICJitterNs: us(600 + rng.Intn(50)),
		}}
		// "Slow but alive": the RC retransmit window on both ends of the
		// jittered path must sit far above the worst jitter, or the
		// transport itself declares the straggler dead (QP error) and the
		// detectors never get to disagree. Scoped to the gray host and the
		// server (the other endpoint of every gray link); victims keep
		// stock tuning.
		sc.NIC = faults.NICTuning{RetransmitTimeoutNs: 5_000_000, RetryCount: 7,
			Nodes: []int{grayHost, 0}}

	case GrayOneWay:
		until = from + us(2500+rng.Intn(1500))
		sc.Links = []faults.LinkFault{faults.OneWayPartition(grayHost, 0, from, until)}
		// The gray host's RC sends into the silenced direction must error
		// fast so its reconnect path runs instead of a wedged QP. Scoped:
		// victims keep stock retry budgets, or the tight timer would error
		// *their* QPs under ordinary congestion — a leak of its own.
		sc.NIC = faults.NICTuning{RetransmitTimeoutNs: 5_000, RetryCount: 3,
			Nodes: []int{grayHost}}

	case GrayDegraded:
		until = from + us(4000+rng.Intn(3000))
		delay := us(150 + rng.Intn(100))
		jitter := us(500 + rng.Intn(150)) // same evict-floor cap as straggler
		scale := 2 + 2*rng.Float64()
		sc.Links = []faults.LinkFault{
			faults.DegradedLink(grayHost, 0, from, until, delay, jitter, scale),
			faults.DegradedLink(0, grayHost, from, until, delay, jitter, scale),
		}
		// Same "slow but alive" contract as the straggler class.
		sc.NIC = faults.NICTuning{RetransmitTimeoutNs: 5_000_000, RetryCount: 7,
			Nodes: []int{grayHost, 0}}

	case GrayKALoss:
		until = from + us(4000+rng.Intn(3000))
		sc.Links = []faults.LinkFault{{
			Src: grayHost, Dst: 0, From: from, Until: until,
			DropRate: 0.7 + 0.1*rng.Float64(), Class: faults.ClassKeepalive,
		}}
	}
	return sc, from, until
}

// GrayConfig selects one gray-failure run. Class and Seed are required.
type GrayConfig struct {
	Class GrayClass `json:"class"`
	Seed  uint64    `json:"seed"`
	// Detector is "adaptive" (default: the phi-accrual ladder) or "fixed"
	// (the lease-TTL baseline the ladder replaces).
	Detector string `json:"detector,omitempty"`
	// Victims is the measured population on the healthy hosts (default 6);
	// Calls their per-client budget (default 40). GrayCalls is the budget
	// of the single client on the gray host (default 30).
	Victims   int `json:"victims,omitempty"`
	Calls     int `json:"calls,omitempty"`
	GrayCalls int `json:"gray_calls,omitempty"`
	// Budget is the hard stop (default 40 ms of virtual time).
	Budget sim.Duration `json:"budget_ns,omitempty"`
}

// GrayResult is one run's outcome. Same GrayConfig ⇒ byte-identical JSON.
type GrayResult struct {
	Class    string           `json:"class"`
	Seed     uint64           `json:"seed"`
	Detector string           `json:"detector"`
	Scenario *faults.Scenario `json:"scenario"`
	// GrayFromNs/GrayUntilNs bound the episode window.
	GrayFromNs  int64 `json:"gray_from_ns"`
	GrayUntilNs int64 `json:"gray_until_ns"`

	// Victim workload (the bounded-disruption surface).
	VictimIssued   uint64 `json:"victim_issued"`
	VictimAcked    uint64 `json:"victim_acked"`
	VictimTimedOut uint64 `json:"victim_timed_out"`
	VictimErrors   uint64 `json:"victim_errors"`
	VictimP99Ns    int64  `json:"victim_p99_ns"`
	StuckVictims   int    `json:"stuck_victims"`

	// Gray-host workload (best effort: the one-way class takes it down for
	// the whole window plus quarantine).
	GrayIssued   uint64 `json:"gray_issued"`
	GrayAcked    uint64 `json:"gray_acked"`
	GrayTimedOut uint64 `json:"gray_timed_out"`
	GrayDone     bool   `json:"gray_done"`

	// Correctness counters, whole population.
	Executions          uint64 `json:"executions"`
	DuplicateExecutions uint64 `json:"duplicate_executions"`
	EchoMismatches      uint64 `json:"echo_mismatches"`
	Retries             uint64 `json:"retries"`
	DedupHits           uint64 `json:"dedup_hits"`

	// Failure-detection outcome at the server's manager.
	Suspicions     uint64 `json:"suspicions"`
	Demotions      uint64 `json:"demotions"`
	Evictions      uint64 `json:"evictions"` // detector evictions (adaptive)
	LeaseExpiries  uint64 `json:"lease_expiries"`
	FalseEvictions uint64 `json:"false_evictions"`
	Readmits       uint64 `json:"readmits"`
	Probes         uint64 `json:"probes"`
	// ServerDemotes/ServerRestores count the ScaleRPC scheduler's suspect
	// isolation acting on the ladder hooks.
	ServerDemotes  uint64 `json:"server_demotes"`
	ServerRestores uint64 `json:"server_restores"`
	// VictimEvictions counts evictions/expiries of victim-host peers — any
	// nonzero value is an invariant-5 violation in either mode.
	VictimEvictions uint64 `json:"victim_evictions"`
	// DetectionNs is the delay from episode onset to the server's first
	// protective action against the gray peer (demote under the adaptive
	// ladder, lease expiry under fixed TTL); -1 when it never reacted.
	DetectionNs int64 `json:"detection_ns"`

	Violations []string `json:"violations,omitempty"`
	ElapsedNs  int64    `json:"elapsed_ns"`
}

// Pass reports whether every invariant held.
func (r *GrayResult) Pass() bool { return len(r.Violations) == 0 }

// grayPace is the think time between a gray-run client's calls: it
// stretches every client's budget across the whole episode window, so the
// schedule acts on live traffic instead of an idle, already-drained conn.
const grayPace = 150 * sim.Microsecond

// grayCallOpts is the per-call policy for gray runs: the chaos deadlines
// plus the capped, salted retry jitter (each client gets its own salt, so
// a recovered link never sees a synchronized retry wave).
func grayCallOpts(client int) rpccore.CallOpts {
	o := callOpts(ClassDrop)
	o.Hedge = 0
	o.MaxRetryInterval = 480 * sim.Microsecond
	o.RetryJitter = 0.3
	o.JitterSalt = uint64(client) + 1
	return o
}

// RunGray executes one seeded gray-failure schedule and returns its result.
func RunGray(cfg GrayConfig) (*GrayResult, error) {
	switch cfg.Class {
	case GrayStraggler, GrayOneWay, GrayDegraded, GrayKALoss:
	case "":
		return nil, fmt.Errorf("chaos: missing gray class")
	default:
		return nil, fmt.Errorf("chaos: unknown gray class %q", cfg.Class)
	}
	switch cfg.Detector {
	case "":
		cfg.Detector = "adaptive"
	case "adaptive", "fixed":
	default:
		return nil, fmt.Errorf("chaos: unknown detector %q (want adaptive or fixed)", cfg.Detector)
	}
	if cfg.Victims <= 0 {
		cfg.Victims = 6
	}
	if cfg.Calls <= 0 {
		cfg.Calls = 40
	}
	if cfg.GrayCalls <= 0 {
		cfg.GrayCalls = 30
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 40 * sim.Millisecond
	}

	scen, grayFrom, grayUntil := GenGrayScenario(cfg.Class, cfg.Seed)
	if err := scen.Validate(); err != nil {
		return nil, err
	}

	ccfg := cluster.Default(4) // server, gray client host, two victim hosts
	ccfg.Seed = cfg.Seed + 1
	c := cluster.New(ccfg)
	defer c.Close()
	c.InstallFaults(scen)

	// The control plane must be built with the detector choice before
	// anything else touches it (first CtrlPlaneWith wins).
	ctrlCfg := ctrlplane.DefaultConfig()
	if cfg.Detector == "adaptive" {
		det := ctrlplane.DefaultDetectorConfig()
		ctrlCfg.Detector = &det
	}
	dir := c.CtrlPlaneWith(ctrlCfg)
	mgr := dir.Manager(0)
	// Every gray class keeps the node alive, so any eviction is false by
	// ground truth — in both modes, which is what makes them comparable.
	mgr.SetGroundTruth(func(int) bool { return false })

	rel := rpccore.SharedRel(c.Telemetry)
	execs := make(map[uint64]uint32)
	handler := func(t *host.Thread, clientID uint16, req []byte, out []byte) int {
		t.Work(100)
		if len(req) >= 8 {
			tok := binary.LittleEndian.Uint64(req)
			execs[tok]++
		}
		return copy(out, req)
	}

	scfg := scalerpc.DefaultServerConfig()
	scfg.Workers = 4
	scfg.GroupSize = 8
	scfg.TimeSlice = 50 * sim.Microsecond
	scfg.BlocksPerClient = 8
	scfg.MaxClients = 256
	s := scalerpc.NewServer(c.Hosts[0], scfg)
	s.Register(1, handler)
	s.BindControlPlane(mgr)
	s.Start()

	hardStop := c.Env.Now() + sim.Time(cfg.Budget)
	victimHist := stats.NewHistogram()
	rec := &latRecorder{hist: victimHist}

	// Victims join through the control plane from the healthy hosts.
	victims := make([]*clientRun, cfg.Victims)
	for i := 0; i < cfg.Victims; i++ {
		i := i
		cr := &clientRun{}
		victims[i] = cr
		ch := c.Hosts[2+i%2]
		sig := sim.NewSignal(c.Env)
		ch.Spawn("gray-victim", func(th *host.Thread) {
			conn, err := s.Join(th, dir, sig, false)
			if err != nil {
				cr.errs++
				cr.done = true
				return
			}
			caller := rpccore.NewCaller(conn, grayCallOpts(i), rel)
			driveClient(th, caller, sig, i, cfg.Calls, grayPace, hardStop, cr, rec)
		})
	}

	// The single client on the gray host: best-effort through the episode.
	// Its QP may error (one-way class); Poll then rejoins through the
	// control plane — into the quarantine gate, if the detector evicted it.
	grayRun := &clientRun{}
	{
		sig := sim.NewSignal(c.Env)
		gh := c.Hosts[grayHost]
		gh.Spawn("gray-client", func(th *host.Thread) {
			conn, err := s.Join(th, dir, sig, false)
			if err != nil {
				grayRun.errs++
				grayRun.done = true
				return
			}
			caller := rpccore.NewCaller(conn, grayCallOpts(1000), rel)
			driveClient(th, caller, sig, 1000, cfg.GrayCalls, grayPace, hardStop, grayRun, nil)
		})
	}

	victimsDone := func() bool {
		for _, cr := range victims {
			if !cr.done {
				return false
			}
		}
		return grayRun.done
	}
	// Hold the simulation open past the episode close even once every
	// client has drained: ladder step-down (restore) and quarantine rejoin
	// ride on keepalives, not on workload traffic.
	settleUntil := sim.Time(grayUntil) + 4*sim.Millisecond
	for (!victimsDone() || c.Env.Now() < settleUntil) && c.Env.Now() < hardStop {
		c.Env.RunUntil(c.Env.Now() + 100*sim.Microsecond)
	}
	c.Env.RunUntil(c.Env.Now() + sim.Time(sim.Millisecond))

	return assembleGray(cfg, scen, grayFrom, grayUntil, mgr, s, rel, victims, grayRun, execs, victimHist, int64(c.Env.Now())), nil
}

// assembleGray computes the six invariant verdicts from the raw run state.
func assembleGray(cfg GrayConfig, scen *faults.Scenario, grayFrom, grayUntil int64,
	mgr *ctrlplane.Manager, s *scalerpc.Server, rel *rpccore.RelStats,
	victims []*clientRun, grayRun *clientRun, execs map[uint64]uint32,
	victimHist *stats.Histogram, elapsed int64) *GrayResult {

	r := &GrayResult{
		Class: string(cfg.Class), Seed: cfg.Seed, Detector: cfg.Detector,
		Scenario: scen, GrayFromNs: grayFrom, GrayUntilNs: grayUntil,
		Retries: rel.Retries, DedupHits: rel.DedupHits,
		Suspicions: mgr.Stats.DetectorSuspicions, Demotions: mgr.Stats.DetectorDemotions,
		Evictions: mgr.Stats.DetectorEvictions, LeaseExpiries: mgr.Stats.LeaseExpiries,
		FalseEvictions: mgr.Stats.FalseEvictions, Readmits: mgr.Stats.DetectorReadmits,
		Probes:        mgr.Stats.DetectorProbes,
		ServerDemotes: s.Stats.Demotes, ServerRestores: s.Stats.Restores,
		DetectionNs: -1, ElapsedNs: elapsed,
	}
	if victimHist.Count() > 0 {
		r.VictimP99Ns = victimHist.Quantile(0.99)
	}

	violate := func(format string, args ...interface{}) {
		if len(r.Violations) < 16 {
			r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
		}
	}

	// Invariant 1: at-most-once execution (whole population).
	for _, n := range execs {
		r.Executions++
		if n > 1 {
			r.DuplicateExecutions += uint64(n - 1)
		}
	}
	if r.DuplicateExecutions > 0 {
		violate("%d duplicate executions (at-most-once broken)", r.DuplicateExecutions)
	}

	checkAcked := func(cr *clientRun, who string) {
		// Invariant 2: acknowledged ⇒ executed.
		for _, tok := range cr.acked {
			if execs[tok] == 0 {
				violate("%s token (client %d, seq %d) acked but never executed", who, tok>>32, tok&0xffffffff)
			}
		}
		r.EchoMismatches += cr.mismatch
	}

	for i, cr := range victims {
		r.VictimIssued += uint64(cfg.Calls)
		r.VictimAcked += uint64(len(cr.acked))
		r.VictimTimedOut += cr.timedOut
		r.VictimErrors += cr.errs
		checkAcked(cr, "victim")
		// Invariant 4 (liveness) for the measured population.
		if !cr.done {
			r.StuckVictims++
			violate("victim %d stuck: %d/%d calls resolved within the budget",
				i, len(cr.acked)+int(cr.timedOut)+int(cr.errs)+int(cr.mismatch), cfg.Calls)
		}
	}
	r.GrayIssued = uint64(cfg.GrayCalls)
	r.GrayAcked = uint64(len(grayRun.acked))
	r.GrayTimedOut = grayRun.timedOut
	r.GrayDone = grayRun.done
	checkAcked(grayRun, "gray")

	// Invariant 3: integrity.
	if r.EchoMismatches > 0 {
		violate("%d corrupted payloads delivered", r.EchoMismatches)
	}

	// Invariant 5: no eviction of a healthy node. Victim hosts are never
	// touched by any schedule, so their eviction is a violation in both
	// modes. The gray host is alive in every class too — only the one-way
	// class (total inbound silence) excuses evicting it, and only then
	// does the quarantined-rejoin machinery legitimately engage.
	grayEvictExempt := cfg.Class == GrayOneWay
	for _, e := range mgr.Events {
		if e.Kind != "det_evict" && e.Kind != "expire" {
			continue
		}
		if e.Peer != grayHost {
			r.VictimEvictions++
			violate("victim host %d evicted at %d ns (%s)", e.Peer, e.At, e.Kind)
			continue
		}
		if cfg.Detector == "adaptive" && !grayEvictExempt {
			violate("gray host evicted at %d ns under class %s — alive nodes must be demoted, not evicted",
				e.At, cfg.Class)
		}
		// Fixed-TTL evictions of the gray host are the baseline misfire the
		// matrix documents, not a violation of the baseline's own contract.
	}

	// DetectionNs: first protective action against the gray peer after
	// episode onset.
	reactKind := "demote"
	if cfg.Detector == "fixed" {
		reactKind = "expire"
	}
	for _, e := range mgr.Events {
		if e.Kind == reactKind && e.Peer == grayHost && int64(e.At) >= grayFrom {
			r.DetectionNs = int64(e.At) - grayFrom
			break
		}
	}

	// Invariant 6: bounded disruption — victims drain their budgets nearly
	// unscathed no matter how sick the gray node is.
	if r.VictimAcked*10 < r.VictimIssued*9 {
		violate("victim population acked %d/%d (< 90%%): the gray node's sickness leaked",
			r.VictimAcked, r.VictimIssued)
	}
	return r
}
