// The tenant-shed chaos variant: drop-class faults run against a server
// whose scheduler is under a tenant authority while the online SLO
// controller sheds bulk load mid-run. The four reliability invariants
// must hold exactly as in the plain matrix — admission shedding, weight
// shrinking and class demotion may slow tenants down, but they must never
// lose, duplicate or corrupt acknowledged work.
package chaos

import (
	"encoding/binary"
	"fmt"

	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/loadgen"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
	"scalerpc/internal/tenant"
)

// TenantConfig selects one tenant-shed chaos run. Seed is required.
type TenantConfig struct {
	Seed uint64 `json:"seed"`
	// Clients is the measured latency-tenant population (default 4);
	// Calls is the per-client budget (default 150).
	Clients int `json:"clients,omitempty"`
	Calls   int `json:"calls,omitempty"`
	// Bulk is the steadily loaded bulk population (default 8); Churn is
	// the additional bulk fodder the churn process connects and
	// disconnects throughout the run (default 6), whose reconnects are
	// what level-3 shedding refuses.
	Bulk  int `json:"bulk,omitempty"`
	Churn int `json:"churn,omitempty"`
	// Budget is the hard stop (default 40 ms of virtual time).
	Budget sim.Duration `json:"budget_ns,omitempty"`
}

// TenantOutcome is the run's artifact: the standard invariant Result plus
// the controller's deterministic action log and shed counters. Same
// TenantConfig ⇒ byte-identical JSON.
type TenantOutcome struct {
	Result *Result `json:"result"`
	// Actions is the controller's ladder log; a run that never trips has
	// an empty log (the test asserts the tight SLO does trip).
	Actions []tenant.Action `json:"actions"`
	// ShedRejects counts churn reconnects refused while the controller
	// held the bulk tenant at level 3; QuotaRejects counts refusals by
	// the tenant's own connection quota at lower levels.
	ShedRejects  uint64 `json:"shed_rejects"`
	QuotaRejects uint64 `json:"quota_rejects"`
	FinalLevel   int    `json:"final_level"`
	Windows      uint64 `json:"windows"`
	Violations   uint64 `json:"slo_violations"`
}

// latRecorder aggregates the measured tenant's telemetry for the
// controller's sampling window.
type latRecorder struct {
	hist      *stats.Histogram
	offered   uint64
	completed uint64
}

// RunTenant executes one seeded tenant-shed schedule.
func RunTenant(cfg TenantConfig) (*TenantOutcome, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Calls <= 0 {
		cfg.Calls = 150
	}
	if cfg.Bulk <= 0 {
		cfg.Bulk = 8
	}
	if cfg.Churn <= 0 {
		cfg.Churn = 6
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 40 * sim.Millisecond
	}
	scen := GenScenario(ClassDrop, cfg.Seed)
	if err := scen.Validate(); err != nil {
		return nil, err
	}

	ccfg := cluster.Default(3)
	ccfg.Seed = cfg.Seed + 1
	c := cluster.New(ccfg)
	defer c.Close()
	p := c.InstallFaults(scen)
	rel := rpccore.SharedRel(c.Telemetry)

	m := tenant.NewManager(c.Telemetry.Scope("qos"))
	latID := m.Register(tenant.Spec{Name: "lat",
		Quota: tenant.Quota{MaxConns: cfg.Clients + 2, Weight: 4, Class: tenant.ClassLatency}})
	bulkID := m.Register(tenant.Spec{Name: "bulk",
		Quota: tenant.Quota{MaxConns: cfg.Bulk + cfg.Churn + 2, Weight: 1, Class: tenant.ClassBulk}})

	execs := make(map[uint64]uint32)
	handler := func(t *host.Thread, clientID uint16, req []byte, out []byte) int {
		t.Work(100)
		if len(req) >= 8 {
			execs[binary.LittleEndian.Uint64(req)]++
		}
		return copy(out, req)
	}

	scfg := scalerpc.DefaultServerConfig()
	scfg.Workers = 4
	scfg.GroupSize = 8
	scfg.TimeSlice = 50 * sim.Microsecond
	scfg.BlocksPerClient = 8
	scfg.MaxClients = 256
	s := scalerpc.NewServer(c.Hosts[0], scfg)
	s.SetTenantAuthority(m)
	s.Register(1, handler)
	s.Start()

	hardStop := c.Env.Now() + sim.Time(cfg.Budget)
	opts := callOpts(ClassDrop)

	// The steadily loaded bulk population: fire-and-forget echo traffic
	// for the whole run, the noisy neighbor the controller squeezes.
	for i := 0; i < cfg.Bulk; i++ {
		i := i
		ch := c.Hosts[1+i%2]
		sig := sim.NewSignal(c.Env)
		bc := s.ConnectTenant(ch, sig, bulkID, false)
		if bc == nil {
			return nil, fmt.Errorf("chaos: bulk client %d refused at setup", i)
		}
		caller := rpccore.NewCaller(bc, opts, rel)
		ch.Spawn("tenant-bulk", func(th *host.Thread) {
			payload := make([]byte, payloadLen)
			for seq := 0; th.P.Now() < hardStop; seq++ {
				fillPayload(payload, token(1000+i, seq))
				if !caller.TrySend(th, 1, payload, uint64(seq)) {
					caller.Poll(th, func(rpccore.Response) {})
					th.WaitSignal(sig, 20*sim.Microsecond)
					continue
				}
				resolved := false
				for !resolved && th.P.Now() < hardStop {
					caller.Poll(th, func(r rpccore.Response) {
						if r.ReqID == uint64(seq) {
							resolved = true
						}
					})
					if !resolved {
						th.WaitSignal(sig, 20*sim.Microsecond)
					}
				}
			}
		})
	}

	// The measured latency tenant's windowed telemetry and the controller
	// protecting it. The SLO is deliberately tight for a run under
	// injected loss — retry spikes blow through it, so the ladder must
	// move (and recover in quiet stretches).
	rec := &latRecorder{hist: stats.NewHistogram()}
	slo := loadgen.SLO{Targets: []loadgen.SLOTarget{{Q: 0.99, LimitUs: 30}}, MinCompletion: 0.5}
	ctlCfg := tenant.ControllerConfig{
		Interval:     100 * sim.Microsecond,
		TripWindows:  1,
		ClearWindows: 4,
		MinSamples:   4,
		WeightFactor: 0.25,
	}
	ctl := m.NewController(latID, slo, func() (*stats.Histogram, uint64, uint64) {
		return rec.hist, rec.offered, rec.completed
	}, ctlCfg)
	ctl.Start(c.Env)

	// The churn fodder: a seeded process connects and disconnects bulk
	// identities all run long; while the controller holds level 3 these
	// reconnects are refused at admission (ShedRejects — refusals below
	// level 3 are plain quota rejects and counted separately).
	out := &TenantOutcome{}
	{
		sig := sim.NewSignal(c.Env)
		ids := make([]uint16, 0, cfg.Churn)
		for i := 0; i < cfg.Churn; i++ {
			if bc := s.ConnectTenant(c.Hosts[1+i%2], sig, bulkID, false); bc != nil {
				ids = append(ids, bc.ID())
			}
		}
		rng := stats.NewRNG(cfg.Seed ^ saltChurn ^ 0x7e7e7e7e)
		c.Env.Spawn("tenant-churn", func(pr *sim.Proc) {
			for k := 0; pr.Now() < hardStop; k++ {
				if len(ids) > 0 && rng.Float64() < 0.6 {
					j := rng.Intn(len(ids))
					s.Disconnect(ids[j])
					ids = append(ids[:j], ids[j+1:]...)
				} else {
					if bc := s.ConnectTenant(c.Hosts[1+k%2], sig, bulkID, false); bc != nil {
						ids = append(ids, bc.ID())
					} else if ctl.Level() >= 3 {
						out.ShedRejects++
					} else {
						out.QuotaRejects++
					}
				}
				pr.Sleep(sim.Duration(80+rng.Intn(80)) * sim.Microsecond)
			}
		})
	}

	runs := make([]*clientRun, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		i := i
		cr := &clientRun{}
		runs[i] = cr
		ch := c.Hosts[1+i%2]
		sig := sim.NewSignal(c.Env)
		lc := s.ConnectTenant(ch, sig, latID, false)
		if lc == nil {
			return nil, fmt.Errorf("chaos: latency client %d refused at setup", i)
		}
		caller := rpccore.NewCaller(lc, opts, rel)
		ch.Spawn("tenant-lat", func(th *host.Thread) {
			driveClient(th, caller, sig, i, cfg.Calls, 0, hardStop, cr, rec)
		})
	}

	allDone := func() bool {
		for _, cr := range runs {
			if !cr.done {
				return false
			}
		}
		return true
	}
	for !allDone() && c.Env.Now() < hardStop {
		c.Env.RunUntil(c.Env.Now() + 100*sim.Microsecond)
	}
	ctl.Stop()
	c.Env.RunUntil(c.Env.Now() + sim.Time(sim.Millisecond))

	res := assemble(Config{Class: ClassDrop, Seed: cfg.Seed, Transport: "ScaleRPC",
		Clients: cfg.Clients, Calls: cfg.Calls}, scen, p, rel, runs, execs, int64(c.Env.Now()))
	out.Result = res
	out.Actions = ctl.Actions
	out.FinalLevel = ctl.Level()
	out.Windows = ctl.Windows
	out.Violations = ctl.Violations
	return out, nil
}
