package chaos

import (
	"fmt"

	"scalerpc/internal/cluster"
	"scalerpc/internal/faults"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
)

// Per-class RNG salts keep the four schedule generators statistically
// independent even when the matrix reuses the same seed across classes.
const (
	saltDrop  = 0x9e3779b97f4a7c15
	saltFlap  = 0xbf58476d1ce4e5b9
	saltCrash = 0x94d049bb133111eb
	saltChurn = 0xd6e8feb86659fd93
)

func us(n int) int64 { return int64(n) * int64(sim.Microsecond) }

// GenScenario derives a fault schedule for the class from the seed alone:
// rates, windows and restart delays are all drawn from one seeded RNG, and
// the scenario pins its own plane seed so injection decisions replay
// bit-for-bit.
func GenScenario(class Class, seed uint64) *faults.Scenario {
	var salt uint64
	switch class {
	case ClassDrop:
		salt = saltDrop
	case ClassFlap:
		salt = saltFlap
	case ClassCrash:
		salt = saltCrash
	case ClassChurn:
		salt = saltChurn
	}
	rng := stats.NewRNG(seed ^ salt)
	sc := &faults.Scenario{
		Name: fmt.Sprintf("chaos-%s-%d", class, seed),
		Seed: rng.Uint64() | 1, // pin the plane RNG (nonzero)
	}
	// Every class carries past-ICRC payload corruption so the integrity
	// invariant (zero delivered corruption) is exercised across the whole
	// matrix, not just the drop runs.
	payloadCorrupt := 0.002 + 0.006*rng.Float64()

	switch class {
	case ClassDrop:
		sc.Links = []faults.LinkFault{{
			Src: -1, Dst: -1,
			DropRate:           0.002 + 0.018*rng.Float64(),
			CorruptRate:        0.004 * rng.Float64(),
			PayloadCorruptRate: payloadCorrupt,
			DupRate:            0.004 * rng.Float64(),
		}}
		// The forgiving 20 µs default retransmit timer recovers drops
		// without erroring QPs; raise the retry budget for unlucky runs.
		sc.NIC = faults.NICTuning{RetransmitTimeoutNs: 20_000, RetryCount: 7}

	case ClassFlap:
		n := 2 + rng.Intn(3)
		for k := 0; k < n; k++ {
			sc.Flaps = append(sc.Flaps, faults.Flap{
				// Flap any of the three nodes; windows are spread out so
				// recovery from one completes before the next begins.
				Node:   rng.Intn(3),
				At:     us(300+900*k) + us(rng.Intn(400)),
				DownNs: us(40 + rng.Intn(80)),
			})
		}
		sc.Links = []faults.LinkFault{{Src: -1, Dst: -1, PayloadCorruptRate: payloadCorrupt}}
		// Fast failure detection: QPs sending into a downed link error
		// quickly, so clients reconnect instead of stalling.
		sc.NIC = faults.NICTuning{RetransmitTimeoutNs: 5_000, RetryCount: 3}

	case ClassCrash:
		at := us(400 + rng.Intn(400))
		restart := us(150 + rng.Intn(250))
		sc.Crashes = []faults.Crash{{Node: 0, At: at, RestartAfterNs: restart}}
		if rng.Float64() < 0.5 {
			// A second outage after full recovery, same node.
			at2 := at + restart + us(800+rng.Intn(600))
			sc.Crashes = append(sc.Crashes, faults.Crash{
				Node: 0, At: at2, RestartAfterNs: us(150 + rng.Intn(250)),
			})
		}
		sc.Links = []faults.LinkFault{{
			Src: -1, Dst: -1,
			DropRate:           0.002 * rng.Float64(),
			PayloadCorruptRate: payloadCorrupt,
		}}
		sc.NIC = faults.NICTuning{RetransmitTimeoutNs: 5_000, RetryCount: 3}

	case ClassChurn:
		sc.Links = []faults.LinkFault{{
			Src: -1, Dst: -1,
			DropRate:           0.003 + 0.005*rng.Float64(),
			PayloadCorruptRate: payloadCorrupt,
		}}
		sc.NIC = faults.NICTuning{RetransmitTimeoutNs: 20_000, RetryCount: 7}
	}
	return sc
}

// startChurn connects a fodder population ahead of the measured clients
// and then churns it from a seeded background process: disconnects and
// fresh connects force regroups while the measured ids stay untouched.
func startChurn(c *cluster.Cluster, s *scalerpc.Server, seed uint64) {
	sig := sim.NewSignal(c.Env)
	const fodder = 16
	for i := 0; i < fodder; i++ {
		s.Connect(c.Hosts[1+i%2], sig)
	}
	rng := stats.NewRNG(seed ^ saltChurn ^ 0xa5a5a5a5)
	c.Env.Spawn("chaos-churn", func(pr *sim.Proc) {
		for k := 0; k < 24; k++ {
			// Double-disconnects are no-ops, so random targets are fine.
			s.Disconnect(uint16(rng.Intn(fodder)))
			if k%2 == 0 {
				s.Connect(c.Hosts[1+k%2], sig)
			}
			pr.Sleep(sim.Duration(60+rng.Intn(60)) * sim.Microsecond)
		}
	})
}
