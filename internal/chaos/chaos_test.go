package chaos

import (
	"encoding/json"
	"fmt"
	"testing"
)

// matrixSeeds are the per-class seeds of the 32-run acceptance matrix
// (4 classes × 8 seeds). Kept literal so a failing run's schedule can be
// regenerated exactly from the test name.
var matrixSeeds = []uint64{1, 2, 3, 5, 8, 13, 21, 34}

func runOne(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("chaos.Run: %v", err)
	}
	if !res.Pass() {
		t.Fatalf("invariant violations:\n%v\n(schedule: %s)", res.Violations, res.Scenario.JSON())
	}
	if res.Acked == 0 {
		t.Fatal("no call was ever acknowledged — the run proves nothing")
	}
	return res
}

// TestChaosMatrix is the acceptance matrix: 8 seeds per fault class, zero
// invariant violations anywhere. Aggregate assertions make sure the
// schedules actually bite: faults were injected, corruption was detected
// (never delivered), and the retry/dedup machinery fired.
func TestChaosMatrix(t *testing.T) {
	seeds := matrixSeeds
	if testing.Short() {
		seeds = seeds[:2]
	}
	var dedup, retries, crcDrops, payloadCorrupts, injected uint64
	for _, class := range Classes() {
		for _, seed := range seeds {
			class, seed := class, seed
			t.Run(fmt.Sprintf("%s/seed%d", class, seed), func(t *testing.T) {
				res := runOne(t, Config{Class: class, Seed: seed})
				dedup += res.DedupHits
				retries += res.Retries
				crcDrops += res.CRCDrops
				payloadCorrupts += res.Injected.PayloadCorrupts
				injected += res.Injected.Drops + res.Injected.Corrupts +
					res.Injected.PayloadCorrupts + res.Injected.Dups +
					res.Injected.LinkDownDrops
			})
		}
	}
	if injected == 0 {
		t.Fatal("matrix injected no faults at all")
	}
	if payloadCorrupts == 0 {
		t.Fatal("no past-ICRC corruption injected — integrity invariant untested")
	}
	if crcDrops == 0 {
		t.Fatal("frame CRC never fired despite injected payload corruption")
	}
	if retries == 0 {
		t.Fatal("no retries across the whole matrix — deadlines untested")
	}
	if dedup == 0 {
		t.Fatal("no dedup hits across the whole matrix — exactly-once untested")
	}
}

// TestChaosDeterministicPerSeed runs one seed of every class twice and
// requires byte-identical Result JSON — the same bar the simulator's
// metrics dumps are held to.
func TestChaosDeterministicPerSeed(t *testing.T) {
	for _, class := range Classes() {
		class := class
		t.Run(string(class), func(t *testing.T) {
			cfg := Config{Class: class, Seed: 42}
			a := runOne(t, cfg)
			b := runOne(t, cfg)
			aj, _ := json.Marshal(a)
			bj, _ := json.Marshal(b)
			if string(aj) != string(bj) {
				t.Fatalf("same seed, different results:\n%s\n%s", aj, bj)
			}
		})
	}
}

// TestChaosRawWriteDrop runs the drop class over the RawWrite baseline:
// the reply cache and frame CRC are transport-independent, so the same
// invariants must hold there.
func TestChaosRawWriteDrop(t *testing.T) {
	res := runOne(t, Config{Class: ClassDrop, Seed: 7, Transport: "RawWrite"})
	if res.Injected.Drops == 0 {
		t.Fatal("no drops injected")
	}
}

// TestChaosConfigRejectsUnsupported pins the validation paths.
func TestChaosConfigRejectsUnsupported(t *testing.T) {
	if _, err := Run(Config{Class: ClassCrash, Transport: "RawWrite", Seed: 1}); err == nil {
		t.Fatal("RawWrite crash class must be rejected (no reconnect path)")
	}
	if _, err := Run(Config{Seed: 1}); err == nil {
		t.Fatal("missing class must be rejected")
	}
	if _, err := Run(Config{Class: ClassDrop, Transport: "bogus", Seed: 1}); err == nil {
		t.Fatal("unknown transport must be rejected")
	}
}
