package chaos

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRDSQueueMatrix drives the seeded drop+dup schedule across 12 seeds:
// no run may lose or double-apply an element, every worker must drain its
// budget, and — because duplication is the schedule's star — the matrix
// as a whole must show the NIC atomic replay cache absorbing duplicated
// ticket claims.
func TestRDSQueueMatrix(t *testing.T) {
	var replays, ops uint64
	for seed := uint64(0); seed < 12; seed++ {
		res, err := RunRDS(RDSConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Pass() {
			t.Errorf("seed %d: invariants violated: %v", seed, res.Violations)
		}
		if res.Dequeued != res.Enqueued {
			t.Errorf("seed %d: enqueued %d != dequeued %d", seed, res.Enqueued, res.Dequeued)
		}
		if res.AtomicOps == 0 {
			t.Errorf("seed %d: no atomics reached the server NIC", seed)
		}
		replays += res.AtomicReplays
		ops += res.AtomicOps
	}
	if replays == 0 {
		t.Errorf("no atomic replays across the matrix (ops=%d): dup schedule never hit a ticket claim", ops)
	}
}

// TestRDSQueueReplayAbsorbed pins seeds whose schedules duplicate at least
// one FetchAdd: the replay cache must answer those without re-executing,
// and the multiset invariant proves no ticket was handed out twice.
func TestRDSQueueReplayAbsorbed(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		res, err := RunRDS(RDSConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Pass() {
			t.Errorf("seed %d: invariants violated: %v", seed, res.Violations)
		}
		if res.AtomicReplays == 0 {
			t.Errorf("seed %d: expected duplicated atomics absorbed by the replay cache, saw none", seed)
		}
	}
}

// TestRDSQueueDeterministic asserts byte-identical result JSON for the
// same seed.
func TestRDSQueueDeterministic(t *testing.T) {
	for _, seed := range []uint64{2, 7} {
		run := func() []byte {
			res, err := RunRDS(RDSConfig{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		a, b := run(), run()
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: two identical runs produced different JSON:\n%s\nvs\n%s", seed, a, b)
		}
	}
}
