package chaos

// Shard-failover chaos: crash a shard primary mid-run — including mid-2PC —
// while tokened KV writers and a cross-shard transfer coordinator keep
// driving the deployment, then hold the sharded store to the same four
// invariants the transport-level matrix enforces:
//
//  1. At-most-once execution: no put token is fresh-applied by the client
//     path ("exec") more than once, across retries and promotion.
//  2. Acknowledged work durable: every acked put was applied at least once
//     (exec on the primary or repl on the promoted backup).
//  3. Integrity: every value a read delivers is the deterministic fill of
//     some put the workload actually attempted — nothing invented, nothing
//     corrupted.
//  4. Liveness: every client (KV writers and the transfer coordinator)
//     drains its budget before the hard stop.
//
// One seed derives the crash schedule, the cluster RNG and the workload, so
// the same ShardConfig produces a byte-identical ShardResult.

import (
	"encoding/binary"
	"fmt"
	"sort"

	"scalerpc/internal/cluster"
	"scalerpc/internal/faults"
	"scalerpc/internal/host"
	"scalerpc/internal/mica"
	"scalerpc/internal/shard"
	"scalerpc/internal/sim"
	"scalerpc/internal/txn"
)

// chaosShardStore sizes the per-partition stores for chaos runs: small but
// roomy enough that inserts never evict.
func chaosShardStore() mica.Config {
	return mica.Config{Buckets: 1 << 10, Items: 1 << 12, SlotSize: 128}
}

// ShardConfig selects one seeded shard-failover run. Seed is required;
// everything else defaults.
type ShardConfig struct {
	Seed uint64 `json:"seed"`
	// Clients is the number of tokened KV writers (default 4).
	Clients int `json:"clients,omitempty"`
	// Ops is the put/get pairs per KV client (default 40).
	Ops int `json:"ops,omitempty"`
	// Transfers is the cross-shard 2PC transfer budget (default 30).
	Transfers int `json:"transfers,omitempty"`
	// Partitions in the shard map (default 8).
	Partitions int `json:"partitions,omitempty"`
	// Budget is the hard stop (default 60 ms of virtual time).
	Budget sim.Duration `json:"budget_ns,omitempty"`
}

// ShardResult is one run's outcome. Same ShardConfig ⇒ byte-identical JSON.
type ShardResult struct {
	Seed       uint64 `json:"seed"`
	Clients    int    `json:"clients"`
	Ops        int    `json:"ops"`
	Transfers  int    `json:"transfers"`
	Partitions int    `json:"partitions"`
	CrashHost  int    `json:"crash_host"`
	CrashAtNs  int64  `json:"crash_at_ns"`

	Acked       uint64 `json:"acked"`
	PutFailures uint64 `json:"put_failures"`
	Gets        uint64 `json:"gets"`
	GetMisses   uint64 `json:"get_misses"`
	ExecApplies uint64 `json:"exec_applies"`
	ReplApplies uint64 `json:"repl_applies"`

	TxnCommits uint64 `json:"txn_commits"`
	TxnAborts  uint64 `json:"txn_aborts"`

	Failovers  uint64 `json:"failovers"`
	FinalEpoch uint32 `json:"final_epoch"`
	Routed     uint64 `json:"routed"`
	Redirects  uint64 `json:"redirects"`
	DedupHits  uint64 `json:"dedup_hits"`

	StuckClients int      `json:"stuck_clients"`
	Violations   []string `json:"violations,omitempty"`
	ElapsedNs    int64    `json:"elapsed_ns"`
}

// Pass reports whether every invariant held.
func (r *ShardResult) Pass() bool { return len(r.Violations) == 0 }

// shardKVRun tracks one KV writer's progress.
type shardKVRun struct {
	acked     []uint64 // tokens acked, in completion order
	putFails  uint64
	gets      uint64
	misses    uint64
	badValues []string // delivered values matching no attempted put
	done      bool
}

// shardKey gives client c's k-th key: distinct per writer so the integrity
// check can compare against that writer's own attempted values.
func shardKey(c, k int) []byte {
	key := make([]byte, 8)
	binary.LittleEndian.PutUint64(key, uint64(c)<<16|uint64(k))
	return key
}

// shardValue is the deterministic fill for client c's seq-th put.
func shardValue(c, seq int) []byte {
	return []byte(fmt.Sprintf("c%02d-s%06d", c, seq))
}

// RunShard executes one seeded shard-failover schedule.
func RunShard(cfg ShardConfig) (*ShardResult, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 40
	}
	if cfg.Transfers <= 0 {
		cfg.Transfers = 30
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 8
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 60 * sim.Millisecond
	}

	// Topology: shard hosts 0-3, director 4, clients 5-6.
	ccfg := cluster.Default(7)
	ccfg.Seed = cfg.Seed + 1
	c := cluster.New(ccfg)
	defer c.Close()

	dcfg := shard.DefaultDeployConfig(cfg.Partitions, []int{0, 1, 2, 3}, 4,
		chaosShardStore())
	d := shard.Deploy(c, dcfg)

	// Crash partition 0's primary at a seeded point inside the workload
	// window — mid-run, so in-flight puts and 2PC rounds straddle it.
	crashHost := d.Map.Primary[0]
	crashAt := int64(2*sim.Millisecond) + int64(cfg.Seed%8)*int64(250*sim.Microsecond)
	c.InstallFaults(&faults.Scenario{
		Name: "shard-crash", Seed: cfg.Seed,
		Crashes: []faults.Crash{{Node: crashHost, At: crashAt}},
	})

	// Fresh-apply accounting for invariants 1 and 2: every node reports
	// exec (client-path) and repl (backup-path) applies per token.
	execs := make(map[uint64]uint32)
	repls := make(map[uint64]uint32)
	for _, n := range d.Nodes {
		n.ApplyHook = func(token uint64, kind string) {
			if kind == "exec" {
				execs[token]++
			} else {
				repls[token]++
			}
		}
	}

	rcfg := shard.DefaultRouterConfig()
	rcfg.Opts.Timeout = 500 * sim.Microsecond
	rcfg.Opts.MaxRetries = 25

	// Transfer accounts, preloaded on primaries and backups.
	const accounts = 64
	acct := func(i int) []byte { return []byte(fmt.Sprintf("xfer%04d", i)) }
	money := func(v int64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, uint64(v))
		return b
	}
	for i := 0; i < accounts; i++ {
		if err := d.LoadKV(acct(i), money(1000)); err != nil {
			return nil, err
		}
	}

	hardStop := c.Env.Now() + sim.Time(cfg.Budget)
	runs := make([]*shardKVRun, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		i := i
		cr := &shardKVRun{}
		runs[i] = cr
		ch := c.Hosts[5+i%2]
		ch.Spawn("shard-chaos-kv", func(th *host.Thread) {
			r := d.NewRouter(ch, rcfg)
			kv := r.KVClient(uint16(i + 1))
			attempted := make(map[string]bool)
			for s := 0; s < cfg.Ops && th.P.Now() < hardStop; s++ {
				k := shardKey(i, s%8)
				val := shardValue(i, s)
				attempted[string(val)] = true
				if tok, ok := kv.Put(th, k, val); ok {
					cr.acked = append(cr.acked, tok)
				} else {
					cr.putFails++
				}
				if got, found, ok := kv.Get(th, k); ok {
					cr.gets++
					if !found {
						cr.misses++
					} else if !attempted[string(got)] {
						cr.badValues = append(cr.badValues, string(got))
					}
				}
				// Pace the workload so ops straddle the crash window and
				// the failover happens under live traffic.
				th.P.Sleep(120 * sim.Microsecond)
			}
			cr.done = true
		})
	}

	// Cross-shard 2PC disturbance: transfers keep running through the
	// crash, so prepares and commits are in flight when the primary dies.
	var commits, aborts uint64
	txnDone := false
	c.Hosts[6].Spawn("shard-chaos-txn", func(th *host.Thread) {
		r := d.NewRouter(c.Hosts[6], rcfg)
		co := d.NewCoordinator(r, 99)
		for i := 0; i < cfg.Transfers && th.P.Now() < hardStop; i++ {
			from, to := acct(i%accounts), acct((i*11+5)%accounts)
			if string(from) == string(to) {
				continue
			}
			tx := &txn.Txn{
				Writes: [][]byte{from, to},
				Apply: func(rv, wv [][]byte) [][]byte {
					a := int64(binary.LittleEndian.Uint64(wv[0]))
					b := int64(binary.LittleEndian.Uint64(wv[1]))
					return [][]byte{money(a - 1), money(b + 1)}
				},
			}
			for th.P.Now() < hardStop {
				err := co.Run(th, tx)
				if err == nil {
					commits++
					break
				}
				aborts++
				if err != txn.ErrAborted {
					break
				}
				th.P.Sleep(20 * sim.Microsecond)
			}
			th.P.Sleep(120 * sim.Microsecond)
		}
		txnDone = true
	})

	allDone := func() bool {
		if !txnDone {
			return false
		}
		for _, cr := range runs {
			if !cr.done {
				return false
			}
		}
		return true
	}
	for !allDone() && c.Env.Now() < hardStop {
		c.Env.RunUntil(c.Env.Now() + 200*sim.Microsecond)
	}
	// Run past crash detection even if the workload drained early, so the
	// failover (and its event log) is always part of the result, then let
	// in-flight completions settle.
	if settle := sim.Time(crashAt) + sim.Time(3*sim.Millisecond); c.Env.Now() < settle {
		c.Env.RunUntil(settle)
	}
	c.Env.RunUntil(c.Env.Now() + sim.Time(sim.Millisecond))

	res := &ShardResult{
		Seed: cfg.Seed, Clients: cfg.Clients, Ops: cfg.Ops,
		Transfers: cfg.Transfers, Partitions: cfg.Partitions,
		CrashHost: crashHost, CrashAtNs: crashAt,
		TxnCommits: commits, TxnAborts: aborts,
		Failovers: d.Stats.Failovers, FinalEpoch: d.LiveMap().Epoch,
		Routed: d.Stats.Routed, Redirects: d.Stats.Redirects,
		DedupHits: d.Stats.DedupHits,
		ElapsedNs: int64(c.Env.Now()),
	}
	violate := func(format string, args ...interface{}) {
		if len(res.Violations) < 16 {
			res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
		}
	}

	// Invariant 1: at-most-once fresh client-path application.
	toks := make([]uint64, 0, len(execs))
	for tok := range execs {
		toks = append(toks, tok)
	}
	sort.Slice(toks, func(i, j int) bool { return toks[i] < toks[j] })
	for _, tok := range toks {
		res.ExecApplies += uint64(execs[tok])
		if execs[tok] > 1 {
			violate("token %#x exec-applied %d times", tok, execs[tok])
		}
	}
	for _, n := range repls {
		res.ReplApplies += uint64(n)
	}

	for i, cr := range runs {
		res.Acked += uint64(len(cr.acked))
		res.PutFailures += cr.putFails
		res.Gets += cr.gets
		res.GetMisses += cr.misses
		// Invariant 2: acked ⇒ applied somewhere.
		for _, tok := range cr.acked {
			if execs[tok] == 0 && repls[tok] == 0 {
				violate("token %#x acked but never applied", tok)
			}
		}
		// Invariant 3: delivered values are attempted fills.
		for _, v := range cr.badValues {
			violate("client %d read value %q matching no attempted put", i, v)
		}
		// Invariant 4: liveness.
		if !cr.done {
			res.StuckClients++
			violate("kv client %d stuck within the budget", i)
		}
	}
	if !txnDone {
		res.StuckClients++
		violate("transfer coordinator stuck within the budget")
	}
	if res.Failovers == 0 {
		violate("crash at %d ns never produced a failover", crashAt)
	}
	return res, nil
}
