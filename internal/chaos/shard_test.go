package chaos

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestShardFailoverMatrix drives the seeded crash schedule across 20 seeds:
// every run must fail over and keep all four invariants.
func TestShardFailoverMatrix(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		res, err := RunShard(ShardConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Pass() {
			t.Errorf("seed %d: invariants violated: %v", seed, res.Violations)
		}
		if res.Failovers == 0 || res.FinalEpoch < 2 {
			t.Errorf("seed %d: no failover (epoch %d)", seed, res.FinalEpoch)
		}
		if res.Acked == 0 {
			t.Errorf("seed %d: no acked puts", seed)
		}
		if res.TxnCommits == 0 {
			t.Errorf("seed %d: no cross-shard commits", seed)
		}
	}
}

// TestShardFailoverDeterministic asserts byte-identical result JSON for the
// same seed.
func TestShardFailoverDeterministic(t *testing.T) {
	for _, seed := range []uint64{3, 11} {
		run := func() []byte {
			res, err := RunShard(ShardConfig{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		a, b := run(), run()
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: two identical runs produced different JSON:\n%s\nvs\n%s", seed, a, b)
		}
	}
}
