package chaos_test

import (
	"encoding/json"
	"testing"

	"scalerpc/internal/chaos"
)

// graySeeds is the gray-matrix seed set; truncated under -short.
var graySeeds = []uint64{1, 2, 3, 5, 8}

func runGrayOne(t *testing.T, class chaos.GrayClass, seed uint64, detector string) *chaos.GrayResult {
	t.Helper()
	r, err := chaos.RunGray(chaos.GrayConfig{Class: class, Seed: seed, Detector: detector})
	if err != nil {
		t.Fatalf("%s/%d/%s: %v", class, seed, detector, err)
	}
	return r
}

// TestGrayMatrix sweeps every gray class across the seed set under the
// adaptive detector and requires all six invariants to hold on every run:
// the four reliability invariants, no healthy-node eviction, and bounded
// victim disruption. It also asserts, in aggregate, that the ladder
// actually engaged (the schedules are not too gentle to matter).
func TestGrayMatrix(t *testing.T) {
	seeds := graySeeds
	if testing.Short() {
		seeds = seeds[:2]
	}
	type agg struct {
		suspicions, demotions, probes uint64
		serverDemotes, restores       uint64
		evictions, readmits           uint64
		falseEvictions                uint64
		detected                      int
	}
	sums := map[chaos.GrayClass]*agg{}
	for _, class := range chaos.GrayClasses() {
		sums[class] = &agg{}
		for _, seed := range seeds {
			r := runGrayOne(t, class, seed, "adaptive")
			if !r.Pass() {
				t.Errorf("%s/%d: invariants violated: %v", class, seed, r.Violations)
			}
			a := sums[class]
			a.suspicions += r.Suspicions
			a.demotions += r.Demotions
			a.probes += r.Probes
			a.serverDemotes += r.ServerDemotes
			a.restores += r.ServerRestores
			a.evictions += r.Evictions
			a.readmits += r.Readmits
			a.falseEvictions += r.FalseEvictions
			if r.DetectionNs >= 0 {
				a.detected++
			}
		}
	}

	for class, a := range sums {
		// Every class must at least raise suspicion and trigger probing;
		// that is the floor for "the schedule was felt".
		if a.suspicions == 0 || a.probes == 0 {
			t.Errorf("%s: detector never engaged across %d seeds: %+v", class, len(seeds), *a)
		}
		switch class {
		case chaos.GrayOneWay:
			// Total inbound silence must walk the whole ladder: demote,
			// evict, quarantine, and — because the client auto-rejoins —
			// readmit after the lockout.
			if a.demotions == 0 || a.evictions == 0 || a.readmits == 0 {
				t.Errorf("oneway: ladder did not complete (demote/evict/readmit = %d/%d/%d)",
					a.demotions, a.evictions, a.readmits)
			}
		default:
			// Alive-but-sick classes must never evict under the adaptive
			// detector (that is invariant 5, but assert the counters too).
			if a.evictions != 0 || a.falseEvictions != 0 {
				t.Errorf("%s: adaptive detector evicted an alive node (evict=%d false=%d)",
					class, a.evictions, a.falseEvictions)
			}
		}
	}
	// The demotion hook must reach the ScaleRPC scheduler somewhere in the
	// matrix: suspect isolation is part of the ladder's contract.
	var totalDem, totalRes uint64
	for _, a := range sums {
		totalDem += a.serverDemotes
		totalRes += a.restores
	}
	if totalDem == 0 || totalRes == 0 {
		t.Errorf("scheduler isolation never engaged: demotes=%d restores=%d", totalDem, totalRes)
	}
}

// TestGrayFixedTTLEvicts pins the baseline misfire the adaptive detector
// exists to prevent: under the same alive-but-sick schedules, fixed-TTL
// leases falsely evict the gray node, while the adaptive runs above hold
// it at demoted. Aggregated over two seeds per class so a single lucky
// draw cannot mask the effect.
func TestGrayFixedTTLEvicts(t *testing.T) {
	for _, class := range []chaos.GrayClass{chaos.GrayStraggler, chaos.GrayDegraded, chaos.GrayKALoss} {
		var falseEv, expiries uint64
		for _, seed := range graySeeds[:2] {
			r := runGrayOne(t, class, seed, "fixed")
			falseEv += r.FalseEvictions
			expiries += r.LeaseExpiries
			// The baseline must still hold the four reliability invariants
			// plus bounded disruption — it misfires on the gray node, but
			// victims and correctness survive either way.
			for _, v := range r.Violations {
				t.Errorf("fixed/%s/%d: %s", class, seed, v)
			}
		}
		if falseEv == 0 || expiries == 0 {
			t.Errorf("fixed-TTL baseline never misfired on %s (false=%d expiries=%d) — the comparison is vacuous",
				class, falseEv, expiries)
		}
	}
}

// TestGrayDeterministicPerSeed requires byte-identical results for equal
// configs — the gray harness inherits the replay contract of the matrix.
func TestGrayDeterministicPerSeed(t *testing.T) {
	for _, class := range chaos.GrayClasses() {
		cfg := chaos.GrayConfig{Class: class, Seed: 13, Detector: "adaptive"}
		a, err := chaos.RunGray(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := chaos.RunGray(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if string(ja) != string(jb) {
			t.Errorf("%s: same config produced different results:\n%s\n%s", class, ja, jb)
		}
	}
}
