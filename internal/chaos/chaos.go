// Package chaos runs seeded fault schedules against the RPC transports
// and checks the end-to-end reliability invariants the exactly-once layer
// promises:
//
//  1. At-most-once execution: no request token ever runs its handler more
//     than once, no matter how many retries, hedges or duplicated frames
//     reach the server.
//  2. Acknowledged work executed: every call the client saw complete
//     without error was executed (exactly once, by invariant 1) and its
//     echo matched the request byte for byte.
//  3. Integrity: payload corruption injected past the NIC's ICRC is never
//     delivered — the frame CRC turns it into loss, so zero mismatched
//     echoes reach the application.
//  4. Liveness: with deadlines and retries enabled, every client drains
//     its full call budget before the run's hard stop; nobody wedges.
//
// Everything is derived from one seed: the fault schedule, the cluster
// RNG, and the workload. The same Config therefore produces a
// byte-identical Result, which the tests assert.
package chaos

import (
	"encoding/binary"
	"fmt"
	"sort"

	"scalerpc/internal/baseline/rawrpc"
	"scalerpc/internal/cluster"
	"scalerpc/internal/faults"
	"scalerpc/internal/host"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
)

// Class selects a fault-schedule family.
type Class string

const (
	// ClassDrop injects uniform message loss, ICRC corruption, past-ICRC
	// payload corruption and duplication on every link.
	ClassDrop Class = "drop"
	// ClassFlap takes host links fully down for short windows, erroring
	// QPs mid-flight and forcing reconnects.
	ClassFlap Class = "flap"
	// ClassCrash kills the server node mid-run and restarts it: clients
	// must retry across the outage and the server must not re-execute
	// work it completed before the crash.
	ClassCrash Class = "crash"
	// ClassChurn connects and disconnects background clients while the
	// measured population runs, forcing regroups under light loss.
	ClassChurn Class = "churn"
)

// Classes lists every schedule family, in the order the matrix runs them.
func Classes() []Class { return []Class{ClassDrop, ClassFlap, ClassCrash, ClassChurn} }

// Config selects one chaos run. Class and Seed are required; everything
// else defaults.
type Config struct {
	Class Class  `json:"class"`
	Seed  uint64 `json:"seed"`
	// Transport is "ScaleRPC" (default) or "RawWrite". RawWrite has no
	// client-side reconnect, so it only supports ClassDrop (recoverable
	// loss that never errors a QP).
	Transport string `json:"transport,omitempty"`
	Clients   int    `json:"clients,omitempty"` // measured clients, default 8
	Calls     int    `json:"calls,omitempty"`   // per client, default 60
	// Budget is the hard stop: every client must finish its calls by
	// then or it is reported stuck. Default 40 ms of virtual time.
	Budget sim.Duration `json:"budget_ns,omitempty"`
}

// Injected mirrors the fault plane's counters into the result artifact.
type Injected struct {
	Drops           uint64 `json:"drops"`
	Corrupts        uint64 `json:"corrupts"`
	PayloadCorrupts uint64 `json:"payload_corrupts"`
	Dups            uint64 `json:"dups"`
	LinkDownDrops   uint64 `json:"link_down_drops"`
	Flaps           uint64 `json:"flaps"`
	Crashes         uint64 `json:"crashes"`
}

// Result is one run's outcome: workload totals, reliability counters, the
// generated schedule, and the list of invariant violations (empty on a
// healthy run). Same Config ⇒ byte-identical JSON.
type Result struct {
	Class     string           `json:"class"`
	Seed      uint64           `json:"seed"`
	Transport string           `json:"transport"`
	Clients   int              `json:"clients"`
	Calls     int              `json:"calls"`
	Scenario  *faults.Scenario `json:"scenario"`

	// Issued is the total call budget (Clients × Calls); a stuck client
	// may resolve fewer.
	Issued   uint64 `json:"issued"`
	Acked    uint64 `json:"acked"`
	TimedOut uint64 `json:"timed_out"`
	Errors   uint64 `json:"errors"`
	// Executions counts handler runs for distinct tokens; duplicates are
	// broken out so the at-most-once verdict is visible at a glance.
	Executions          uint64 `json:"executions"`
	DuplicateExecutions uint64 `json:"duplicate_executions"`
	// EchoMismatches counts corrupted payloads delivered to the
	// application — the integrity invariant demands zero.
	EchoMismatches uint64 `json:"echo_mismatches"`
	StuckClients   int    `json:"stuck_clients"`

	Retries          uint64 `json:"retries"`
	Hedges           uint64 `json:"hedges"`
	DedupHits        uint64 `json:"dedup_hits"`
	DeadlineExceeded uint64 `json:"deadline_exceeded"`
	LateDrops        uint64 `json:"late_drops"`
	CRCDrops         uint64 `json:"crc_drops"`

	Injected   Injected `json:"injected"`
	Violations []string `json:"violations,omitempty"`
	ElapsedNs  int64    `json:"elapsed_ns"`
}

// Pass reports whether every invariant held.
func (r *Result) Pass() bool { return len(r.Violations) == 0 }

// payloadLen sizes every chaos request: an 8-byte token plus filler whose
// bytes are a deterministic function of the token, so a flipped bit
// anywhere in the payload is detectable at either end.
const payloadLen = 32

func fillPayload(buf []byte, tok uint64) {
	binary.LittleEndian.PutUint64(buf, tok)
	for j := 8; j < len(buf); j++ {
		buf[j] = byte(tok>>(8*(j%8))) ^ byte(j)
	}
}

func token(client, seq int) uint64 { return uint64(client)<<32 | uint64(seq) }

// clientRun tracks one measured client's progress.
type clientRun struct {
	acked    []uint64 // tokens acknowledged without error, in completion order
	timedOut uint64
	errs     uint64 // transport-level errors (not timeouts, not mismatches)
	mismatch uint64
	done     bool
}

// callOpts returns the per-class deadline/retry policy. Timeouts sit well
// above the healthy round trip but inside the fault windows, so outages
// convert to retries and (eventually) TimedOut failures, never hangs.
func callOpts(class Class) rpccore.CallOpts {
	o := rpccore.CallOpts{
		Timeout:       600 * sim.Microsecond,
		RetryInterval: 120 * sim.Microsecond,
		MaxRetries:    3,
	}
	if class == ClassDrop {
		// Hedging only pays against stochastic straggler loss; under
		// flaps/crashes it just doubles pressure on a dead link.
		o.Hedge = 250 * sim.Microsecond
	}
	return o
}

// Run executes one seeded chaos schedule and returns its Result.
func Run(cfg Config) (*Result, error) {
	if cfg.Class == "" {
		return nil, fmt.Errorf("chaos: missing class")
	}
	if cfg.Transport == "" {
		cfg.Transport = "ScaleRPC"
	}
	if cfg.Transport == "RawWrite" && cfg.Class != ClassDrop {
		return nil, fmt.Errorf("chaos: RawWrite has no reconnect path; class %q unsupported", cfg.Class)
	}
	if cfg.Transport != "ScaleRPC" && cfg.Transport != "RawWrite" {
		return nil, fmt.Errorf("chaos: unknown transport %q", cfg.Transport)
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Calls <= 0 {
		cfg.Calls = 60
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 40 * sim.Millisecond
	}

	scen := GenScenario(cfg.Class, cfg.Seed)
	if err := scen.Validate(); err != nil {
		return nil, err
	}

	ccfg := cluster.Default(3) // server + two client hosts
	ccfg.Seed = cfg.Seed + 1   // nonzero even for seed 0
	c := cluster.New(ccfg)
	defer c.Close()
	p := c.InstallFaults(scen)

	// Both transports share the cluster-wide reliability block; the
	// servers and Callers below register against the same registry.
	rel := rpccore.SharedRel(c.Telemetry)

	execs := make(map[uint64]uint32)
	handler := func(t *host.Thread, clientID uint16, req []byte, out []byte) int {
		t.Work(100)
		if len(req) >= 8 {
			execs[binary.LittleEndian.Uint64(req)]++
		}
		return copy(out, req)
	}

	var connect func(ch *host.Host, sig *sim.Signal) rpccore.Conn
	var churnHooks func()
	switch cfg.Transport {
	case "ScaleRPC":
		scfg := scalerpc.DefaultServerConfig()
		scfg.Workers = 4
		scfg.GroupSize = 8
		scfg.TimeSlice = 50 * sim.Microsecond
		scfg.BlocksPerClient = 8
		scfg.MaxClients = 256
		s := scalerpc.NewServer(c.Hosts[0], scfg)
		s.Register(1, handler)
		s.Start()
		connect = func(ch *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(ch, sig) }
		if cfg.Class == ClassChurn {
			churnHooks = func() { startChurn(c, s, cfg.Seed) }
		}
	case "RawWrite":
		rcfg := rawrpc.DefaultServerConfig()
		rcfg.Workers = 4
		rcfg.BlocksPerClient = 8
		rcfg.MaxClients = 64
		s := rawrpc.NewServer(c.Hosts[0], rcfg)
		s.Register(1, handler)
		s.Start()
		connect = func(ch *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(ch, sig) }
	}

	if churnHooks != nil {
		churnHooks()
	}

	opts := callOpts(cfg.Class)
	runs := make([]*clientRun, cfg.Clients)
	hardStop := c.Env.Now() + sim.Time(cfg.Budget)
	for i := 0; i < cfg.Clients; i++ {
		i := i
		cr := &clientRun{}
		runs[i] = cr
		ch := c.Hosts[1+i%2]
		sig := sim.NewSignal(c.Env)
		conn := rpccore.NewCaller(connect(ch, sig), opts, rel)
		ch.Spawn("chaos-client", func(th *host.Thread) {
			driveClient(th, conn, sig, i, cfg.Calls, 0, hardStop, cr, nil)
		})
	}

	allDone := func() bool {
		for _, cr := range runs {
			if !cr.done {
				return false
			}
		}
		return true
	}
	for !allDone() && c.Env.Now() < hardStop {
		c.Env.RunUntil(c.Env.Now() + 100*sim.Microsecond)
	}
	// Let in-flight completions and late responses settle so LateDrops
	// and the exec map are final.
	c.Env.RunUntil(c.Env.Now() + sim.Time(sim.Millisecond))

	return assemble(cfg, scen, p, rel, runs, execs, int64(c.Env.Now())), nil
}

// driveClient issues calls sequentially: send token (i, s), poll until the
// Caller resolves it (response or synthetic timeout), verify the echo.
// pace, when > 0, inserts that much think time before every call after the
// first, stretching the client's budget across a fault window instead of
// draining it in one burst. rec, when non-nil, collects the windowed
// telemetry (offered at issue, latency and completion at successful
// resolution) the SLO controller samples in the tenant-shed variant.
func driveClient(th *host.Thread, conn *rpccore.Caller, sig *sim.Signal, idx, calls int, pace sim.Duration, hardStop sim.Time, cr *clientRun, rec *latRecorder) {
	payload := make([]byte, payloadLen)
	expect := make([]byte, payloadLen)
	for s := 0; s < calls; s++ {
		if pace > 0 && s > 0 {
			th.P.Sleep(pace)
			if th.P.Now() >= hardStop {
				return
			}
		}
		tok := token(idx, s)
		fillPayload(payload, tok)
		reqID := uint64(s)
		for !conn.TrySend(th, 1, payload, reqID) {
			conn.Poll(th, func(rpccore.Response) {})
			if th.P.Now() >= hardStop {
				return
			}
			th.WaitSignal(sig, 10*sim.Microsecond)
		}
		start := th.P.Now()
		if rec != nil {
			rec.offered++
		}
		resolved := false
		for !resolved {
			conn.Poll(th, func(r rpccore.Response) {
				if r.ReqID != reqID || resolved {
					return
				}
				resolved = true
				switch {
				case r.TimedOut:
					cr.timedOut++
				case r.Err:
					cr.errs++
				default:
					fillPayload(expect, tok)
					if string(r.Payload) != string(expect) {
						cr.mismatch++
					} else {
						cr.acked = append(cr.acked, tok)
						if rec != nil {
							rec.completed++
							rec.hist.Record(int64(th.P.Now() - start))
						}
					}
				}
			})
			if resolved {
				break
			}
			if th.P.Now() >= hardStop {
				return
			}
			th.WaitSignal(sig, 10*sim.Microsecond)
		}
	}
	cr.done = true
}

// assemble computes the invariant verdicts from the raw run state.
func assemble(cfg Config, scen *faults.Scenario, p *faults.Plane, rel *rpccore.RelStats,
	runs []*clientRun, execs map[uint64]uint32, elapsed int64) *Result {
	r := &Result{
		Class: string(cfg.Class), Seed: cfg.Seed, Transport: cfg.Transport,
		Clients: cfg.Clients, Calls: cfg.Calls, Scenario: scen,
		Retries: rel.Retries, Hedges: rel.Hedges, DedupHits: rel.DedupHits,
		DeadlineExceeded: rel.DeadlineExceeded, LateDrops: rel.LateDrops,
		CRCDrops: rel.CRCDrops,
		Injected: Injected{
			Drops: p.Stats.Drops, Corrupts: p.Stats.Corrupts,
			PayloadCorrupts: p.Stats.PayloadCorrupts, Dups: p.Stats.Dups,
			LinkDownDrops: p.Stats.LinkDownDrops, Flaps: p.Stats.Flaps,
			Crashes: p.Stats.Crashes,
		},
		ElapsedNs: elapsed,
	}
	r.Issued = uint64(cfg.Clients * cfg.Calls)

	violate := func(format string, args ...interface{}) {
		if len(r.Violations) < 16 { // cap the list, keep the counts exact
			r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
		}
	}

	// Invariant 1: at-most-once execution.
	toks := make([]uint64, 0, len(execs))
	for tok := range execs {
		toks = append(toks, tok)
	}
	sort.Slice(toks, func(i, j int) bool { return toks[i] < toks[j] })
	for _, tok := range toks {
		r.Executions++
		if n := execs[tok]; n > 1 {
			r.DuplicateExecutions += uint64(n - 1)
			violate("token (client %d, seq %d) executed %d times", tok>>32, tok&0xffffffff, n)
		}
	}

	for i, cr := range runs {
		r.Acked += uint64(len(cr.acked))
		r.TimedOut += cr.timedOut
		r.Errors += cr.errs
		r.EchoMismatches += cr.mismatch
		// Invariant 2: acknowledged ⇒ executed.
		for _, tok := range cr.acked {
			if execs[tok] == 0 {
				violate("token (client %d, seq %d) acked but never executed", tok>>32, tok&0xffffffff)
			}
		}
		// Invariant 4: liveness.
		if !cr.done {
			r.StuckClients++
			violate("client %d stuck: %d/%d calls resolved within the budget",
				i, len(cr.acked)+int(cr.timedOut)+int(cr.errs)+int(cr.mismatch), cfg.Calls)
		}
	}
	// Invariant 3: integrity — zero delivered corruption.
	if r.EchoMismatches > 0 {
		violate("%d corrupted payloads delivered (CRC must turn corruption into loss)", r.EchoMismatches)
	}
	return r
}
