package chaos

import (
	"encoding/json"
	"testing"
)

// TestTenantShedInvariants runs the tenant-shed variant across a small
// seed matrix: the controller must actually move the ladder (the SLO is
// tight under injected loss) and all four reliability invariants must
// hold while it sheds mid-run.
func TestTenantShedInvariants(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		out, err := RunTenant(TenantConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !out.Result.Pass() {
			t.Errorf("seed %d: invariants violated: %v", seed, out.Result.Violations)
		}
		if len(out.Actions) == 0 {
			t.Errorf("seed %d: controller never moved (windows=%d violations=%d)",
				seed, out.Windows, out.Violations)
		}
	}
}

// TestTenantShedDeterministic pins byte-determinism: the same seed must
// produce an identical outcome artifact, controller action log included.
func TestTenantShedDeterministic(t *testing.T) {
	a, err := RunTenant(TenantConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTenant(TenantConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("same seed diverged:\n%s\n%s", aj, bj)
	}
	if len(a.Actions) == 0 {
		t.Fatal("run never tripped the controller; determinism check is vacuous")
	}
}
