package fabric

import (
	"testing"

	"scalerpc/internal/sim"
)

func testFabric(e *sim.Env, n int) *Fabric {
	return New(e, Config{BandwidthGbps: 56, SwitchLatency: 300, WireOverheadBytes: 38}, n)
}

func TestDeliveryLatency(t *testing.T) {
	e := sim.NewEnv()
	f := testFabric(e, 2)
	var at sim.Time
	f.Port(1).OnDeliver(func(m *Message) { at = e.Now() })
	f.Send(&Message{Src: 0, Dst: 1, Bytes: 32})
	e.Run()
	// wire time = (32+38)/7 = 10ns per direction, +300 switch = 320.
	if at != 320 {
		t.Fatalf("delivered at %d, want 320", at)
	}
}

func TestFIFOBetweenPortPair(t *testing.T) {
	e := sim.NewEnv()
	f := testFabric(e, 2)
	var got []int
	f.Port(1).OnDeliver(func(m *Message) { got = append(got, m.Payload.(int)) })
	for i := 0; i < 10; i++ {
		f.Send(&Message{Src: 0, Dst: 1, Bytes: 64, Payload: i})
	}
	e.Run()
	if len(got) != 10 {
		t.Fatalf("delivered %d messages, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
}

func TestSerializationLimitsThroughput(t *testing.T) {
	e := sim.NewEnv()
	f := testFabric(e, 2)
	count := 0
	f.Port(1).OnDeliver(func(m *Message) { count++ })
	// 1000 × 4 KB messages from one port: limited by 7 B/ns uplink.
	for i := 0; i < 1000; i++ {
		f.Send(&Message{Src: 0, Dst: 1, Bytes: 4096})
	}
	end := e.Run()
	if count != 1000 {
		t.Fatalf("count = %d", count)
	}
	wirePerMsg := (4096 + 38) * 1000 / 7 / 1000 // ns
	min := sim.Time(wirePerMsg * 1000)
	if end < min {
		t.Fatalf("finished at %d, faster than line rate allows (%d)", end, min)
	}
	if end > min*12/10+1000 {
		t.Fatalf("finished at %d, much slower than line rate (%d)", end, min)
	}
}

func TestIndependentPortsDontSerialize(t *testing.T) {
	e := sim.NewEnv()
	f := testFabric(e, 4)
	var t1, t2 sim.Time
	f.Port(1).OnDeliver(func(m *Message) { t1 = e.Now() })
	f.Port(3).OnDeliver(func(m *Message) { t2 = e.Now() })
	f.Send(&Message{Src: 0, Dst: 1, Bytes: 4096})
	f.Send(&Message{Src: 2, Dst: 3, Bytes: 4096})
	e.Run()
	if t1 != t2 {
		t.Fatalf("disjoint flows interfered: %d vs %d", t1, t2)
	}
}

func TestIncastSerializesOnReceiverDownlink(t *testing.T) {
	e := sim.NewEnv()
	f := testFabric(e, 5)
	var last sim.Time
	n := 0
	f.Port(0).OnDeliver(func(m *Message) { last = e.Now(); n++ })
	for src := 1; src < 5; src++ {
		f.Send(&Message{Src: src, Dst: 0, Bytes: 4096})
	}
	e.Run()
	if n != 4 {
		t.Fatalf("n = %d", n)
	}
	// Four 4 KB messages through one downlink: ≥ 4 × 590ns serialization.
	if last < 4*590 {
		t.Fatalf("incast finished at %d, receiver downlink not modelled", last)
	}
}

func TestStatsCount(t *testing.T) {
	e := sim.NewEnv()
	f := testFabric(e, 2)
	f.Port(1).OnDeliver(func(m *Message) {})
	f.Send(&Message{Src: 0, Dst: 1, Bytes: 100})
	e.Run()
	if f.Port(0).Stats.TxMessages != 1 || f.Port(1).Stats.RxMessages != 1 {
		t.Fatalf("stats: %+v %+v", f.Port(0).Stats, f.Port(1).Stats)
	}
	if f.Port(0).Stats.TxBytes != 138 {
		t.Fatalf("TxBytes = %d, want 138", f.Port(0).Stats.TxBytes)
	}
}
