// Package fabric models the cluster interconnect: one switch with a
// full-duplex port per host, matching the paper's testbed (a Mellanox
// SX-1012 with 56 Gbps FDR links).
//
// Each port serializes transmissions at link bandwidth in each direction
// independently; messages between a port pair are delivered in FIFO order.
// InfiniBand links are lossless and ordered thanks to link-level flow
// control, so by default nothing is ever dropped; the deterministic fault
// plane in internal/faults installs an Interceptor (SetInterceptor) to
// inject drops, corruption, duplication and latency spikes, which is what
// exercises the NIC model's RC retransmission machinery.
package fabric

import (
	"fmt"

	"scalerpc/internal/sim"
)

// Config describes the interconnect.
type Config struct {
	// BandwidthGbps is per-port bandwidth in each direction.
	BandwidthGbps float64
	// SwitchLatency is propagation plus switching delay applied once per
	// message between tx completion and rx start.
	SwitchLatency sim.Duration
	// WireOverheadBytes is per-message header overhead on the wire
	// (LRH+GRH+BTH+ICRC etc. for IB).
	WireOverheadBytes int
}

// DefaultConfig matches the paper's 56 Gbps FDR fabric.
func DefaultConfig() Config {
	return Config{
		BandwidthGbps:     56,
		SwitchLatency:     300,
		WireOverheadBytes: 38,
	}
}

// Message traffic classes, carried end to end so fault rules can target
// specific protocol roles (e.g. drop only lease keepalives). The fabric
// itself never interprets the class beyond handing it to the interceptor.
const (
	// ClassData is ordinary data-path traffic (the zero value).
	ClassData byte = 0
	// ClassControl marks control-plane handshake and teardown frames.
	ClassControl byte = 1
	// ClassKeepalive marks liveness traffic: lease keepalives and
	// failure-detector pings/probes.
	ClassKeepalive byte = 2
)

// Message is one unit of delivery between NICs. Payload is opaque to the
// fabric.
type Message struct {
	Src, Dst int
	Bytes    int // payload size for wire-time purposes
	Payload  interface{}
	// Class tags the traffic class of the payload (ClassData et al.) so
	// interceptors can apply selective fault rules. Informational only.
	Class byte
	// Mangled marks this delivery as payload-corrupted past the ICRC (a
	// Verdict.CorruptPayload injection): the receiving NIC must flip bits
	// in a private copy of the payload before committing it. Set per
	// delivered copy, never on the sender's message.
	Mangled bool
	// NoRecycle tells the receiver this message (and its payload) is
	// delivered more than once — a Duplicate verdict aliases the same
	// pointers across two deliveries — so neither the message nor the
	// payload may be returned to an arena after handling one delivery.
	NoRecycle bool
}

// PortStats counts per-port traffic.
type PortStats struct {
	TxMessages uint64
	TxBytes    uint64
	RxMessages uint64
	RxBytes    uint64
}

// Port is one host's attachment point.
type Port struct {
	ID      int
	fab     *Fabric
	txFree  sim.Time
	rxFree  sim.Time
	deliver func(*Message)
	Stats   PortStats
}

// OnDeliver installs the receive handler (called inline from the scheduler;
// must not block).
func (p *Port) OnDeliver(fn func(*Message)) { p.deliver = fn }

// Verdict is an Interceptor's decision for one message. The zero value
// delivers the message unmodified.
type Verdict struct {
	// Drop discards the message at the switch: the source uplink is still
	// consumed (the packet left the NIC) but nothing reaches the
	// destination port.
	Drop bool
	// Corrupt models an ICRC failure: the message traverses the full path
	// and consumes bandwidth at both ends, then the receiving port
	// discards it without invoking the delivery handler.
	Corrupt bool
	// CorruptPayload delivers the message with its payload corrupted: the
	// bit flip happened past the link ICRC (a DMA fault, a buggy bridge),
	// so the NIC accepts and commits the damage. This is the failure mode
	// the RPC layer's frame CRC exists to catch.
	CorruptPayload bool
	// Duplicate delivers a second copy immediately after the first, each
	// paying its own serialization (a retransmitted packet whose original
	// was only delayed, or a misbehaving switch). The duplicate is always
	// delivered clean.
	Duplicate bool
	// ExtraDelay holds the message back after it clears the destination
	// downlink (a latency spike in the slow endpoint's own processing).
	// It must not reserve the downlink itself: a straggling NIC delays its
	// own packets, it does not occupy the switch port while doing so —
	// otherwise one sick peer head-of-line blocks every healthy flow
	// sharing the destination port, which is exactly the gray-failure
	// leakage the chaos suite exists to rule out.
	ExtraDelay sim.Duration
	// WireTimeScale, when > 1, multiplies the message's serialization time
	// on both the source uplink and the destination downlink — a degraded
	// link running below nominal rate. 0 or 1 means nominal bandwidth.
	WireTimeScale float64
}

// Interceptor inspects every message entering the switch and decides its
// fate. Installed with SetInterceptor; called inline from Send, so it must
// not block. internal/faults provides the standard implementation.
type Interceptor func(*Message) Verdict

// Fabric is the switch plus all ports.
type Fabric struct {
	env       *sim.Env
	cfg       Config
	ports     []*Port
	intercept Interceptor
	// bytesPerNs is the per-direction port bandwidth.
	bytesPerNs float64
}

// New creates a fabric with n ports.
func New(env *sim.Env, cfg Config, n int) *Fabric {
	if cfg.BandwidthGbps <= 0 {
		panic("fabric: bandwidth must be positive")
	}
	f := &Fabric{env: env, cfg: cfg, bytesPerNs: cfg.BandwidthGbps / 8.0}
	for i := 0; i < n; i++ {
		f.ports = append(f.ports, &Port{ID: i, fab: f})
	}
	return f
}

// Port returns port i.
func (f *Fabric) Port(i int) *Port { return f.ports[i] }

// NumPorts returns the number of ports.
func (f *Fabric) NumPorts() int { return len(f.ports) }

// wireTime returns serialization time for a message of size payload bytes.
func (f *Fabric) wireTime(payload int) sim.Duration {
	bytes := payload + f.cfg.WireOverheadBytes
	d := sim.Duration(float64(bytes) / f.bytesPerNs)
	if d < 1 {
		d = 1
	}
	return d
}

// SetInterceptor installs fn as the switch's fault hook, consulted once
// per Send (per injected duplicate the hook is not re-consulted). Passing
// nil removes the hook. This is the sanctioned entry point for
// internal/faults — fault planes must not reach into fabric private state.
func (f *Fabric) SetInterceptor(fn Interceptor) { f.intercept = fn }

// Send transmits msg from its Src port to its Dst port, modelling
// serialization on the source uplink, switch latency, and serialization on
// the destination downlink. Delivery invokes the destination port's handler.
// An installed Interceptor may drop, corrupt, duplicate or delay the
// message first.
func (f *Fabric) Send(msg *Message) {
	if msg.Src < 0 || msg.Src >= len(f.ports) || msg.Dst < 0 || msg.Dst >= len(f.ports) {
		panic(fmt.Sprintf("fabric: bad ports src=%d dst=%d", msg.Src, msg.Dst))
	}
	var v Verdict
	if f.intercept != nil {
		v = f.intercept(msg)
	}
	if v.Drop {
		// Switch drop: the uplink serialized the packet, then it vanished.
		src := f.ports[msg.Src]
		now := f.env.Now()
		wt := scaleWire(f.wireTime(msg.Bytes), v.WireTimeScale)
		txStart := now
		if src.txFree > txStart {
			txStart = src.txFree
		}
		src.txFree = txStart + wt
		src.Stats.TxMessages++
		src.Stats.TxBytes += uint64(msg.Bytes + f.cfg.WireOverheadBytes)
		return
	}
	first := msg
	if v.Duplicate {
		// Both deliveries share this message and its payload: pin them out
		// of the receiver's recycling arenas.
		msg.NoRecycle = true
	}
	if v.CorruptPayload && !v.Corrupt {
		// Per-delivery copy: the sender (and any duplicate below) must keep
		// seeing the clean message — NIC retransmission reuses it.
		cp := *msg
		cp.Mangled = true
		first = &cp
	}
	f.transmit(first, v, !v.Corrupt)
	if v.Duplicate {
		f.transmit(msg, v, true)
	}
}

// scaleWire applies a Verdict.WireTimeScale to a nominal serialization
// time. Scales at or below 1 leave the time unchanged: a fault plane can
// only slow a link down, never beat the hardware.
func scaleWire(wt sim.Duration, scale float64) sim.Duration {
	if scale > 1 {
		wt = sim.Duration(float64(wt) * scale)
	}
	return wt
}

// transmit schedules one copy of msg through the switch. When deliver is
// false the copy consumes bandwidth end to end but the receiving port
// discards it (ICRC corruption).
func (f *Fabric) transmit(msg *Message, v Verdict, deliver bool) {
	src, dst := f.ports[msg.Src], f.ports[msg.Dst]
	now := f.env.Now()
	extraDelay := v.ExtraDelay
	wt := scaleWire(f.wireTime(msg.Bytes), v.WireTimeScale)

	txStart := now
	if src.txFree > txStart {
		txStart = src.txFree
	}
	txEnd := txStart + wt
	src.txFree = txEnd

	rxStart := txEnd + f.cfg.SwitchLatency
	if dst.rxFree > rxStart {
		rxStart = dst.rxFree
	}
	rxEnd := rxStart + wt
	dst.rxFree = rxEnd
	// The latency spike lands after downlink serialization: the delayed
	// packet arrives late, but it never holds the port against traffic
	// from other, healthy peers (see Verdict.ExtraDelay).
	rxEnd += extraDelay

	src.Stats.TxMessages++
	src.Stats.TxBytes += uint64(msg.Bytes + f.cfg.WireOverheadBytes)

	f.env.At(rxEnd-now, func() {
		dst.Stats.RxMessages++
		dst.Stats.RxBytes += uint64(msg.Bytes + f.cfg.WireOverheadBytes)
		if deliver && dst.deliver != nil {
			dst.deliver(msg)
		}
	})
}
