// Package fabric models the cluster interconnect: one switch with a
// full-duplex port per host, matching the paper's testbed (a Mellanox
// SX-1012 with 56 Gbps FDR links).
//
// Each port serializes transmissions at link bandwidth in each direction
// independently; messages between a port pair are delivered in FIFO order
// (InfiniBand links are lossless and ordered thanks to link-level flow
// control, which is why RC retransmission logic in the NIC model never
// fires outside fault-injection tests).
package fabric

import (
	"fmt"

	"scalerpc/internal/sim"
)

// Config describes the interconnect.
type Config struct {
	// BandwidthGbps is per-port bandwidth in each direction.
	BandwidthGbps float64
	// SwitchLatency is propagation plus switching delay applied once per
	// message between tx completion and rx start.
	SwitchLatency sim.Duration
	// WireOverheadBytes is per-message header overhead on the wire
	// (LRH+GRH+BTH+ICRC etc. for IB).
	WireOverheadBytes int
}

// DefaultConfig matches the paper's 56 Gbps FDR fabric.
func DefaultConfig() Config {
	return Config{
		BandwidthGbps:     56,
		SwitchLatency:     300,
		WireOverheadBytes: 38,
	}
}

// Message is one unit of delivery between NICs. Payload is opaque to the
// fabric.
type Message struct {
	Src, Dst int
	Bytes    int // payload size for wire-time purposes
	Payload  interface{}
}

// PortStats counts per-port traffic.
type PortStats struct {
	TxMessages uint64
	TxBytes    uint64
	RxMessages uint64
	RxBytes    uint64
}

// Port is one host's attachment point.
type Port struct {
	ID      int
	fab     *Fabric
	txFree  sim.Time
	rxFree  sim.Time
	deliver func(*Message)
	Stats   PortStats
}

// OnDeliver installs the receive handler (called inline from the scheduler;
// must not block).
func (p *Port) OnDeliver(fn func(*Message)) { p.deliver = fn }

// Fabric is the switch plus all ports.
type Fabric struct {
	env   *sim.Env
	cfg   Config
	ports []*Port
	// bytesPerNs is the per-direction port bandwidth.
	bytesPerNs float64
}

// New creates a fabric with n ports.
func New(env *sim.Env, cfg Config, n int) *Fabric {
	if cfg.BandwidthGbps <= 0 {
		panic("fabric: bandwidth must be positive")
	}
	f := &Fabric{env: env, cfg: cfg, bytesPerNs: cfg.BandwidthGbps / 8.0}
	for i := 0; i < n; i++ {
		f.ports = append(f.ports, &Port{ID: i, fab: f})
	}
	return f
}

// Port returns port i.
func (f *Fabric) Port(i int) *Port { return f.ports[i] }

// NumPorts returns the number of ports.
func (f *Fabric) NumPorts() int { return len(f.ports) }

// wireTime returns serialization time for a message of size payload bytes.
func (f *Fabric) wireTime(payload int) sim.Duration {
	bytes := payload + f.cfg.WireOverheadBytes
	d := sim.Duration(float64(bytes) / f.bytesPerNs)
	if d < 1 {
		d = 1
	}
	return d
}

// Send transmits msg from its Src port to its Dst port, modelling
// serialization on the source uplink, switch latency, and serialization on
// the destination downlink. Delivery invokes the destination port's handler.
func (f *Fabric) Send(msg *Message) {
	if msg.Src < 0 || msg.Src >= len(f.ports) || msg.Dst < 0 || msg.Dst >= len(f.ports) {
		panic(fmt.Sprintf("fabric: bad ports src=%d dst=%d", msg.Src, msg.Dst))
	}
	src, dst := f.ports[msg.Src], f.ports[msg.Dst]
	now := f.env.Now()
	wt := f.wireTime(msg.Bytes)

	txStart := now
	if src.txFree > txStart {
		txStart = src.txFree
	}
	txEnd := txStart + wt
	src.txFree = txEnd

	rxStart := txEnd + f.cfg.SwitchLatency
	if dst.rxFree > rxStart {
		rxStart = dst.rxFree
	}
	rxEnd := rxStart + wt
	dst.rxFree = rxEnd

	src.Stats.TxMessages++
	src.Stats.TxBytes += uint64(msg.Bytes + f.cfg.WireOverheadBytes)

	f.env.At(rxEnd-now, func() {
		dst.Stats.RxMessages++
		dst.Stats.RxBytes += uint64(msg.Bytes + f.cfg.WireOverheadBytes)
		if dst.deliver != nil {
			dst.deliver(msg)
		}
	})
}
