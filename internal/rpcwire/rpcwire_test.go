package rpcwire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"scalerpc/internal/memory"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	block := make([]byte, 128)
	msg := []byte("the quick brown fox")
	if err := Encode(block, msg, FlagWarmupAck); err != nil {
		t.Fatal(err)
	}
	if !Valid(block) {
		t.Fatal("encoded block not valid")
	}
	got, flags, err := Decode(block)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("payload = %q", got)
	}
	if flags != FlagWarmupAck {
		t.Fatalf("flags = %#x", flags)
	}
}

func TestEncodeRightAligned(t *testing.T) {
	block := make([]byte, 64)
	msg := []byte{1, 2, 3, 4}
	Encode(block, msg, 0)
	dataEnd := 64 - TrailerSize
	if !bytes.Equal(block[dataEnd-4:dataEnd], msg) {
		t.Fatal("data not right-aligned against trailer")
	}
	for _, b := range block[:dataEnd-4] {
		if b != 0 {
			t.Fatal("padding disturbed")
		}
	}
}

func TestEncodeTooLarge(t *testing.T) {
	block := make([]byte, 32)
	err := Encode(block, make([]byte, 32-TrailerSize+1), 0)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if err := Encode(block, make([]byte, 32-TrailerSize), 0); err != nil {
		t.Fatalf("max-size payload rejected: %v", err)
	}
}

func TestDecodeInvalidBlock(t *testing.T) {
	block := make([]byte, 64)
	if _, _, err := Decode(block); !errors.Is(err, ErrNotValid) {
		t.Fatalf("err = %v, want ErrNotValid", err)
	}
}

func TestClearInvalidates(t *testing.T) {
	block := make([]byte, 64)
	Encode(block, []byte("x"), 0)
	Clear(block)
	if Valid(block) {
		t.Fatal("cleared block still valid")
	}
	// Re-encode works after clear (stateless pool reuse).
	if err := Encode(block, []byte("y"), 0); err != nil {
		t.Fatal(err)
	}
	got, _, _ := Decode(block)
	if string(got) != "y" {
		t.Fatalf("got %q", got)
	}
}

func TestDecodeCorruptLength(t *testing.T) {
	block := make([]byte, 64)
	Encode(block, []byte("ok"), 0)
	// Corrupt MsgLen to exceed the data area.
	block[64-TrailerSize] = 0xFF
	block[64-TrailerSize+1] = 0xFF
	if _, _, err := Decode(block); err == nil {
		t.Fatal("corrupt MsgLen not detected")
	}
}

func TestEncodedSpanCoversDataAndTrailer(t *testing.T) {
	err := quick.Check(func(rawBS uint16, rawML uint16) bool {
		blockSize := int(rawBS%4000) + TrailerSize + 8
		msgLen := int(rawML) % (blockSize - TrailerSize)
		off, length := EncodedSpan(blockSize, msgLen)
		return off >= 0 && off+length == blockSize && length == msgLen+TrailerSize
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestValidOffsetIsLastByte(t *testing.T) {
	if ValidOffset(4096) != 4095 {
		t.Fatalf("ValidOffset = %d", ValidOffset(4096))
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	err := quick.Check(func(id uint64, h uint8, cid uint16) bool {
		buf := make([]byte, 64)
		n := PutHeader(buf, Header{ReqID: id, Handler: h, ClientID: cid})
		if n != HeaderSize {
			return false
		}
		got, rest, err := ParseHeader(buf)
		return err == nil && got.ReqID == id && got.Handler == h && got.ClientID == cid &&
			len(rest) == 64-HeaderSize
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseHeaderShort(t *testing.T) {
	if _, _, err := ParseHeader(make([]byte, 3)); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestPoolLayout(t *testing.T) {
	reg := memory.NewRegistry().Register(1<<20, memory.PageSize2M, memory.LocalWrite|memory.RemoteWrite)
	p := NewPool(reg, 4096, 20, 12)
	if p.Size() != 4096*20*12 {
		t.Fatalf("Size = %d", p.Size())
	}
	if p.ZoneAddr(0) != reg.Base {
		t.Fatal("zone 0 must start at region base")
	}
	if p.BlockAddr(1, 0) != reg.Base+4096*20 {
		t.Fatalf("zone 1 addr = %#x", p.BlockAddr(1, 0))
	}
	if p.BlockAddr(0, 3)-p.BlockAddr(0, 2) != 4096 {
		t.Fatal("blocks not contiguous")
	}
	if p.ValidAddr(0, 0) != p.BlockAddr(0, 0)+4095 {
		t.Fatal("ValidAddr wrong")
	}
}

func TestPoolBlockAliasesRegion(t *testing.T) {
	reg := memory.NewRegistry().Register(1<<16, memory.PageSize4K, memory.LocalWrite)
	p := NewPool(reg, 256, 4, 8)
	b := p.Block(2, 3)
	Encode(b, []byte("zz"), 0)
	addr := p.BlockAddr(2, 3)
	off := int(addr - reg.Base)
	if !Valid(reg.Bytes()[off : off+256]) {
		t.Fatal("block does not alias region memory")
	}
}

func TestPoolTooSmallPanics(t *testing.T) {
	reg := memory.NewRegistry().Register(1024, memory.PageSize4K, memory.LocalWrite)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversized pool")
		}
	}()
	NewPool(reg, 4096, 20, 12)
}

func TestPropertyEncodeNeverTouchesOtherBlocks(t *testing.T) {
	reg := memory.NewRegistry().Register(64*16, memory.PageSize4K, memory.LocalWrite)
	p := NewPool(reg, 64, 4, 4)
	err := quick.Check(func(z8, b8 uint8, data []byte) bool {
		z, b := int(z8)%4, int(b8)%4
		if len(data) > MaxPayload(64) {
			data = data[:MaxPayload(64)]
		}
		for i := range reg.Bytes() {
			reg.Bytes()[i] = 0
		}
		if err := Encode(p.Block(z, b), data, 0); err != nil {
			return false
		}
		// Every byte outside the target block must still be zero.
		lo := z*4*64 + b*64
		hi := lo + 64
		for i, v := range reg.Bytes() {
			if (i < lo || i >= hi) && v != 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
