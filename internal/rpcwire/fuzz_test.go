package rpcwire

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzBlockSize is the frame size the corruption fuzzers use — small enough
// that the fuzzer's bit flips land in the trailer often, large enough to
// hold a header plus payload.
const fuzzBlockSize = 128

// FuzzDecode feeds arbitrary bytes to the frame parser as a full block.
// Whatever the contents — truncated garbage, a torn write, a frame with a
// corrupt MsgLen pointing outside the block — Decode and ParseHeader must
// never panic, and a successful decode must return a payload that fits the
// block. Blocks smaller than the trailer cannot exist (pools refuse them),
// so such inputs are skipped rather than required to parse.
func FuzzDecode(f *testing.F) {
	good := make([]byte, fuzzBlockSize)
	msg := make([]byte, HeaderSize+8)
	PutHeader(msg, Header{ReqID: 42, Handler: 1, ClientID: 7})
	if err := Encode(good, msg, FlagContextSwitch); err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(bytes.Repeat([]byte{0xff}, fuzzBlockSize))
	f.Add(make([]byte, TrailerSize))
	truncated := append([]byte(nil), good[:fuzzBlockSize-3]...)
	f.Add(truncated)

	f.Fuzz(func(t *testing.T, block []byte) {
		if len(block) < TrailerSize {
			t.Skip("below the minimum block size the pools enforce")
		}
		payload, _, err := Decode(block)
		if err != nil {
			if !errors.Is(err, ErrCRC) && !errors.Is(err, ErrNotValid) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if len(payload) > len(block)-TrailerSize {
			t.Fatalf("decoded payload of %d bytes from a %d-byte block", len(payload), len(block))
		}
		// Header parsing of whatever decoded must not panic either.
		_, _, _ = ParseHeader(payload)
	})
}

// FuzzDecodeBitFlip encodes a well-formed frame, flips one bit anywhere in
// the block, and decodes. Either the CRC (or Valid probe) rejects the
// frame, or the flip landed in dead padding and the decode returns the
// original payload and flags byte-for-byte — a successful decode carrying
// modified content is the integrity failure the wire CRC exists to prevent.
func FuzzDecodeBitFlip(f *testing.F) {
	f.Add([]byte("hello rpc"), byte(0), uint32(7))
	f.Add([]byte{}, byte(FlagError), uint32(fuzzBlockSize*8-1))
	f.Add(bytes.Repeat([]byte{0xa5}, MaxPayload(fuzzBlockSize)), byte(FlagWarmupAck), uint32(300))

	f.Fuzz(func(t *testing.T, payload []byte, flags byte, bitPos uint32) {
		if len(payload) > MaxPayload(fuzzBlockSize) {
			payload = payload[:MaxPayload(fuzzBlockSize)]
		}
		block := make([]byte, fuzzBlockSize)
		if err := Encode(block, payload, flags); err != nil {
			t.Fatal(err)
		}
		pos := int(bitPos) % (fuzzBlockSize * 8)
		block[pos/8] ^= 1 << (pos % 8)

		got, gotFlags, err := Decode(block)
		if err != nil {
			if !errors.Is(err, ErrCRC) && !errors.Is(err, ErrNotValid) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if !bytes.Equal(got, payload) || gotFlags != flags {
			t.Fatalf("bit flip at %d delivered altered content: payload %x→%x flags %x→%x",
				pos, payload, got, flags, gotFlags)
		}
	})
}

// FuzzDecodeReplay replays a resealed frame: an in-place header restamp
// (the membership cold-rejoin path) must keep the frame decodable and must
// change only the restamped bytes.
func FuzzDecodeReplay(f *testing.F) {
	f.Add(uint64(1), uint16(3), uint16(9), []byte("body"))
	f.Add(uint64(1)<<63, uint16(0xffff), uint16(0), []byte{})

	f.Fuzz(func(t *testing.T, reqID uint64, oldID, newID uint16, body []byte) {
		if len(body) > MaxPayload(fuzzBlockSize)-HeaderSize {
			body = body[:MaxPayload(fuzzBlockSize)-HeaderSize]
		}
		msg := make([]byte, HeaderSize+len(body))
		PutHeader(msg, Header{ReqID: reqID, Handler: 1, ClientID: oldID})
		copy(msg[HeaderSize:], body)
		block := make([]byte, fuzzBlockSize)
		if err := Encode(block, msg, 0); err != nil {
			t.Fatal(err)
		}

		// Restamp the ClientID in place and reseal, as restampID does.
		off, _ := EncodedSpan(fuzzBlockSize, len(msg))
		PutHeader(block[off:], Header{ReqID: reqID, Handler: 1, ClientID: newID})
		Reseal(block)

		payload, _, err := Decode(block)
		if err != nil {
			t.Fatalf("resealed frame must decode: %v", err)
		}
		hdr, rest, err := ParseHeader(payload)
		if err != nil {
			t.Fatal(err)
		}
		if hdr.ClientID != newID || hdr.ReqID != reqID || !bytes.Equal(rest, body) {
			t.Fatalf("restamp mangled the frame: %+v body %x", hdr, rest)
		}
	})
}
