// Package rpcwire defines the message-pool layout shared by every RPC
// implementation in this repository: pools split into zones, zones split
// into fixed-size message blocks, and the paper's right-aligned in-block
// message format (§3.1):
//
//	| padding | Data | MsgLen | Flags | CRC | Valid |
//
// RDMA updates memory in increasing address order, so once the trailing
// Valid byte is visible the preceding Data, MsgLen and CRC fields are
// complete; a poller detects message arrival by reading a single byte at a
// fixed offset. The Flags field carries the context_switch_event
// notification ScaleRPC piggybacks on responses (§3.3). The CRC32 guards
// the frame end to end: the NIC's ICRC only covers the wire hop, so DMA-
// or fault-injected corruption past the NIC is otherwise delivered
// silently; a CRC mismatch is treated as loss (Clear and let the sender's
// retry machinery recover).
package rpcwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Trailer layout (at the end of every block), in increasing address order:
//
//	MsgLen uint32 | Flags uint8 | Seq uint8 | CRC uint32 | Valid uint8
const (
	lenSize     = 4
	flagsSize   = 1
	seqSize     = 1
	crcSize     = 4
	validSize   = 1
	TrailerSize = lenSize + flagsSize + seqSize + crcSize + validSize
)

// Flag bits carried in the trailer.
const (
	// FlagContextSwitch tells a ScaleRPC client its group's time slice
	// ended (context_switch_event, §3.3).
	FlagContextSwitch = 1 << 0
	// FlagWarmupAck tells a client its warmup batch was accepted.
	FlagWarmupAck = 1 << 1
	// FlagError marks a response carrying an application error payload.
	FlagError = 1 << 2
)

const validMagic = 0xA5

// Errors returned by Decode/Encode.
var (
	ErrTooLarge = errors.New("rpcwire: message does not fit in block")
	ErrNotValid = errors.New("rpcwire: block has no valid message")
	// ErrCRC marks a frame whose trailer CRC32 does not cover its bytes:
	// the Valid byte landed but the frame was corrupted in flight (or by a
	// torn write). Receivers treat it exactly like loss.
	ErrCRC = errors.New("rpcwire: frame CRC mismatch")
)

// crcOf computes the frame checksum: payload through the Seq byte, i.e.
// everything the trailer describes except the CRC and Valid fields.
func crcOf(block []byte, msgLen int) uint32 {
	dataEnd := len(block) - TrailerSize
	return crc32.ChecksumIEEE(block[dataEnd-msgLen : dataEnd+lenSize+flagsSize+seqSize])
}

// MaxPayload returns the largest message a block of the given size holds.
func MaxPayload(blockSize int) int { return blockSize - TrailerSize }

// Encode places payload right-aligned in block with the given flags and
// marks it valid. The block is a full message block slice.
func Encode(block []byte, payload []byte, flags byte) error {
	if len(payload) > MaxPayload(len(block)) {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(payload), MaxPayload(len(block)))
	}
	dataEnd := len(block) - TrailerSize
	copy(block[dataEnd-len(payload):dataEnd], payload)
	binary.LittleEndian.PutUint32(block[dataEnd:], uint32(len(payload)))
	block[dataEnd+lenSize] = flags
	block[dataEnd+lenSize+flagsSize] = 0
	binary.LittleEndian.PutUint32(block[dataEnd+lenSize+flagsSize+seqSize:], crcOf(block, len(payload)))
	block[len(block)-1] = validMagic
	return nil
}

// Valid reports whether the block holds an undelivered message. This is the
// single-byte probe a polling server issues per block.
func Valid(block []byte) bool { return block[len(block)-1] == validMagic }

// ValidOffset returns the offset of the Valid byte within a block — the
// address a poller reads.
func ValidOffset(blockSize int) int { return blockSize - 1 }

// Decode returns the payload and flags of a valid block, verifying the
// trailer CRC. A frame that fails the check returns an error wrapping
// ErrCRC; receivers count it and treat it as loss. The returned slice
// aliases the block; callers must copy if they retain it past Clear.
func Decode(block []byte) (payload []byte, flags byte, err error) {
	if !Valid(block) {
		return nil, 0, ErrNotValid
	}
	dataEnd := len(block) - TrailerSize
	msgLen := int(binary.LittleEndian.Uint32(block[dataEnd:]))
	if msgLen > dataEnd {
		return nil, 0, fmt.Errorf("%w: corrupt MsgLen %d in %d-byte block", ErrCRC, msgLen, len(block))
	}
	want := binary.LittleEndian.Uint32(block[dataEnd+lenSize+flagsSize+seqSize:])
	if got := crcOf(block, msgLen); got != want {
		return nil, 0, fmt.Errorf("%w: got %08x want %08x", ErrCRC, got, want)
	}
	return block[dataEnd-msgLen : dataEnd], block[dataEnd+lenSize], nil
}

// Clear marks the block consumed (the server's per-message cleanup; a
// single local byte store).
func Clear(block []byte) { block[len(block)-1] = 0 }

// Reseal recomputes the trailer CRC of an encoded block after an in-place
// rewrite of its data (e.g. the membership ClientID restamp on cold
// rejoin). It returns the offset of the CRC word so callers can flush
// exactly the rewritten bytes.
func Reseal(block []byte) (crcOffset int) {
	dataEnd := len(block) - TrailerSize
	msgLen := int(binary.LittleEndian.Uint32(block[dataEnd:]))
	off := dataEnd + lenSize + flagsSize + seqSize
	binary.LittleEndian.PutUint32(block[off:], crcOf(block, msgLen))
	return off
}

// EncodedSpan returns the offset and length within the block that an
// encoded message of msgLen bytes occupies (data through trailer). RDMA
// writers send exactly this span so small messages cost small writes.
func EncodedSpan(blockSize, msgLen int) (offset, length int) {
	dataEnd := blockSize - TrailerSize
	return dataEnd - msgLen, msgLen + TrailerSize
}

// Header is the RPC-level framing carried inside Data by every RPC
// implementation here: an opaque request id the client correlates
// responses with, the handler to invoke, and the caller's client id.
type Header struct {
	ReqID    uint64
	Handler  uint8
	ClientID uint16
}

// HeaderSize is the encoded size of Header.
const HeaderSize = 8 + 1 + 2

// PutHeader encodes h at the front of buf and returns HeaderSize.
func PutHeader(buf []byte, h Header) int {
	binary.LittleEndian.PutUint64(buf, h.ReqID)
	buf[8] = h.Handler
	binary.LittleEndian.PutUint16(buf[9:], h.ClientID)
	return HeaderSize
}

// ParseHeader decodes a Header from the front of buf.
func ParseHeader(buf []byte) (Header, []byte, error) {
	if len(buf) < HeaderSize {
		return Header{}, nil, fmt.Errorf("rpcwire: short message (%d bytes)", len(buf))
	}
	h := Header{
		ReqID:    binary.LittleEndian.Uint64(buf),
		Handler:  buf[8],
		ClientID: binary.LittleEndian.Uint16(buf[9:]),
	}
	return h, buf[HeaderSize:], nil
}
