package rpcwire

import (
	"fmt"

	"scalerpc/internal/memory"
)

// Pool is a message pool laid out over a registered memory region:
// contiguous zones of contiguous fixed-size blocks. The RPCServer maps one
// zone per client (or per logical client slot under ScaleRPC's virtualized
// mapping); working threads own disjoint zone ranges.
type Pool struct {
	Region        *memory.Region
	BlockSize     int
	BlocksPerZone int
	Zones         int
}

// NewPool formats a pool over reg. It panics if the region is too small —
// pool sizing is a configuration decision made at server start.
func NewPool(reg *memory.Region, blockSize, blocksPerZone, zones int) *Pool {
	if blockSize <= TrailerSize {
		panic(fmt.Sprintf("rpcwire: block size %d too small", blockSize))
	}
	need := blockSize * blocksPerZone * zones
	if need > reg.Len() {
		panic(fmt.Sprintf("rpcwire: pool needs %d bytes, region has %d", need, reg.Len()))
	}
	return &Pool{Region: reg, BlockSize: blockSize, BlocksPerZone: blocksPerZone, Zones: zones}
}

// Size returns the pool footprint in bytes.
func (p *Pool) Size() int { return p.BlockSize * p.BlocksPerZone * p.Zones }

// ZoneAddr returns the base virtual address of zone z.
func (p *Pool) ZoneAddr(z int) uint64 {
	return p.Region.Base + uint64(z*p.BlocksPerZone*p.BlockSize)
}

// BlockAddr returns the virtual address of block b of zone z.
func (p *Pool) BlockAddr(z, b int) uint64 {
	return p.ZoneAddr(z) + uint64(b*p.BlockSize)
}

// ValidAddr returns the address of the Valid byte of block (z, b) — what a
// polling thread reads.
func (p *Pool) ValidAddr(z, b int) uint64 {
	return p.BlockAddr(z, b) + uint64(ValidOffset(p.BlockSize))
}

// Block returns the backing bytes of block (z, b).
func (p *Pool) Block(z, b int) []byte {
	off := int(p.BlockAddr(z, b) - p.Region.Base)
	return p.Region.Bytes()[off : off+p.BlockSize]
}

// RKey returns the region key remote writers target.
func (p *Pool) RKey() uint32 { return p.Region.RKey }
