// Package octofs implements an Octopus-like distributed file system
// metadata server (Lu et al., ATC'17), the system whose RPC subsystem the
// paper swaps for ScaleRPC in §4.1. Only the metadata path matters for the
// reproduced experiments (Figures 1(a) and 13): a single MDS serving
// Mknod, Rmnod, Stat and Readdir over a pluggable RPC transport.
//
// The namespace is an in-memory tree; every inode is also assigned a slot
// in a registered "inode table" region, and handlers run their accesses
// through the host's LLC model, so metadata-op cost behaves like a real
// in-memory file system: read-mostly ops (Stat/Readdir) are cheap and
// network-bound — which is where RPC scalability dominates — while
// update ops (Mknod/Rmnod) carry real software overhead that masks it, the
// paper's explanation for Figure 1(a).
package octofs

import (
	"encoding/binary"
	"sort"
	"strings"

	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/sim"
)

// RPC handler ids.
const (
	HMknod   = 20
	HRmnod   = 21
	HStat    = 22
	HReaddir = 23
	HMkdir   = 24
)

// Status codes in the first response byte.
const (
	StOK       = 0
	StExists   = 1
	StNotFound = 2
	StNotEmpty = 3
	StNoSpace  = 4
)

// inodeSlotSize is the modelled on-heap footprint of one inode.
const inodeSlotSize = 64

// Config sizes the MDS.
type Config struct {
	// MaxInodes bounds the inode table (and its modelled footprint).
	MaxInodes int
	// LookupCost/UpdateCost approximate path parsing and tree bookkeeping
	// beyond the modelled memory accesses.
	LookupCost sim.Duration
	UpdateCost sim.Duration
}

// DefaultConfig sizes the table for bench-scale namespaces.
func DefaultConfig() Config {
	return Config{MaxInodes: 1 << 19, LookupCost: 1200, UpdateCost: 6000}
}

// Inode is one file or directory.
type Inode struct {
	slot     int
	IsDir    bool
	Size     int64
	CTime    sim.Time
	children map[string]*Inode
}

// Stats counts metadata operations served.
type Stats struct {
	Mknods, Rmnods, Stats, Readdirs, Mkdirs uint64
	Errors                                  uint64
}

// MDS is the metadata server.
type MDS struct {
	Cfg   Config
	Host  *host.Host
	Stats Stats

	root   *Inode
	itable *memory.Region
	nextIn int
	free   []int
	inodes int
}

// NewMDS builds a metadata server on h.
func NewMDS(h *host.Host, cfg Config) *MDS {
	m := &MDS{
		Cfg:    cfg,
		Host:   h,
		itable: h.Mem.Register(cfg.MaxInodes*inodeSlotSize, memory.PageSize2M, memory.LocalWrite),
	}
	m.root = m.newInode(true)
	return m
}

func (m *MDS) newInode(dir bool) *Inode {
	var slot int
	if n := len(m.free); n > 0 {
		slot = m.free[n-1]
		m.free = m.free[:n-1]
	} else {
		if m.nextIn >= m.Cfg.MaxInodes {
			return nil
		}
		slot = m.nextIn
		m.nextIn++
	}
	m.inodes++
	in := &Inode{slot: slot, IsDir: dir}
	if dir {
		in.children = make(map[string]*Inode)
	}
	return in
}

func (m *MDS) freeInode(in *Inode) {
	m.free = append(m.free, in.slot)
	m.inodes--
}

func (m *MDS) slotAddr(in *Inode) uint64 {
	return m.itable.Base + uint64(in.slot*inodeSlotSize)
}

// Len returns the number of live inodes (excluding the root).
func (m *MDS) Len() int { return m.inodes - 1 }

// lookup walks path from the root, charging one inode-table read per
// component.
func (m *MDS) lookup(t *host.Thread, path string) (*Inode, *Inode, string) {
	t.Work(m.Cfg.LookupCost)
	cur := m.root
	var parent *Inode
	last := ""
	if path == "/" || path == "" {
		return cur, nil, ""
	}
	parts := strings.Split(strings.Trim(path, "/"), "/")
	for i, name := range parts {
		if cur == nil || !cur.IsDir {
			return nil, nil, ""
		}
		t.ReadMem(m.slotAddr(cur), inodeSlotSize)
		next := cur.children[name]
		if i == len(parts)-1 {
			return next, cur, name
		}
		parent = cur
		cur = next
	}
	_ = parent
	return cur, parent, last
}

// RegisterHandlers installs the metadata handlers on an RPC server.
func (m *MDS) RegisterHandlers(s rpccore.Server) {
	s.Register(HMknod, m.handleMknod)
	s.Register(HRmnod, m.handleRmnod)
	s.Register(HStat, m.handleStat)
	s.Register(HReaddir, m.handleReaddir)
	s.Register(HMkdir, m.handleMkdir)
}

func (m *MDS) create(t *host.Thread, path string, dir bool) byte {
	in, parent, name := m.lookup(t, string(path))
	if parent == nil || name == "" {
		return StNotFound
	}
	if in != nil {
		return StExists
	}
	t.Work(m.Cfg.UpdateCost)
	child := m.newInode(dir)
	if child == nil {
		return StNoSpace
	}
	child.CTime = t.P.Now()
	parent.children[name] = child
	t.WriteMem(m.slotAddr(child), inodeSlotSize)
	t.WriteMem(m.slotAddr(parent), inodeSlotSize)
	return StOK
}

func (m *MDS) handleMknod(t *host.Thread, id uint16, req, out []byte) int {
	m.Stats.Mknods++
	out[0] = m.create(t, string(req), false)
	if out[0] != StOK {
		m.Stats.Errors++
	}
	return 1
}

func (m *MDS) handleMkdir(t *host.Thread, id uint16, req, out []byte) int {
	m.Stats.Mkdirs++
	out[0] = m.create(t, string(req), true)
	if out[0] != StOK {
		m.Stats.Errors++
	}
	return 1
}

func (m *MDS) handleRmnod(t *host.Thread, id uint16, req, out []byte) int {
	m.Stats.Rmnods++
	in, parent, name := m.lookup(t, string(req))
	switch {
	case in == nil || parent == nil:
		out[0] = StNotFound
	case in.IsDir && len(in.children) > 0:
		out[0] = StNotEmpty
	default:
		t.Work(m.Cfg.UpdateCost)
		delete(parent.children, name)
		m.freeInode(in)
		t.WriteMem(m.slotAddr(parent), inodeSlotSize)
		out[0] = StOK
	}
	if out[0] != StOK {
		m.Stats.Errors++
	}
	return 1
}

// handleStat returns: status | isDir | size(8) | ctime(8).
func (m *MDS) handleStat(t *host.Thread, id uint16, req, out []byte) int {
	m.Stats.Stats++
	in, _, _ := m.lookup(t, string(req))
	if in == nil {
		m.Stats.Errors++
		out[0] = StNotFound
		return 1
	}
	t.ReadMem(m.slotAddr(in), inodeSlotSize)
	out[0] = StOK
	if in.IsDir {
		out[1] = 1
	} else {
		out[1] = 0
	}
	binary.LittleEndian.PutUint64(out[2:], uint64(in.Size))
	binary.LittleEndian.PutUint64(out[10:], uint64(in.CTime))
	return 18
}

// handleReaddir returns: status | count(4) | {nameLen(1) name}... The
// listing is capped by the response buffer; a full implementation would
// paginate, which no reproduced experiment needs.
func (m *MDS) handleReaddir(t *host.Thread, id uint16, req, out []byte) int {
	m.Stats.Readdirs++
	in, _, _ := m.lookup(t, string(req))
	if in == nil || !in.IsDir {
		m.Stats.Errors++
		out[0] = StNotFound
		return 1
	}
	// Iterate deterministically (map order would perturb the LLC model
	// and break run-to-run reproducibility).
	names := make([]string, 0, len(in.children))
	for name := range in.children {
		names = append(names, name)
	}
	sort.Strings(names)
	n := 5
	count := 0
	for _, name := range names {
		if n+1+len(name) > len(out) {
			break
		}
		// One table read per few directory entries.
		if count%4 == 0 {
			t.ReadMem(m.slotAddr(in.children[name]), inodeSlotSize)
		}
		out[n] = byte(len(name))
		copy(out[n+1:], name)
		n += 1 + len(name)
		count++
	}
	out[0] = StOK
	binary.LittleEndian.PutUint32(out[1:], uint32(count))
	return n
}

// Preload populates the namespace directly (benchmark setup): one
// directory per client, filesPerDir files each. Returns false if the inode
// table is too small.
func (m *MDS) Preload(clients, filesPerDir int) bool {
	for c := 0; c < clients; c++ {
		dir := m.newInode(true)
		if dir == nil {
			return false
		}
		m.root.children[dirName(c)] = dir
		for f := 0; f < filesPerDir; f++ {
			file := m.newInode(false)
			if file == nil {
				return false
			}
			dir.children[fileName(f)] = file
		}
	}
	return true
}

func dirName(c int) string  { return "c" + itoa4(c) }
func fileName(f int) string { return "f" + itoa6(f) }

func itoa4(v int) string {
	b := [4]byte{'0', '0', '0', '0'}
	for i := 3; i >= 0 && v > 0; i-- {
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[:])
}

func itoa6(v int) string {
	b := [6]byte{'0', '0', '0', '0', '0', '0'}
	for i := 5; i >= 0 && v > 0; i-- {
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[:])
}

// ClientDir returns client c's private directory path.
func ClientDir(c int) string { return "/" + dirName(c) }

// FilePath returns the path of file f in client c's directory.
func FilePath(c, f int) string { return "/" + dirName(c) + "/" + fileName(f) }
