package octofs_test

import (
	"encoding/binary"
	"testing"

	"scalerpc/internal/baseline/selfrpc"
	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/mdtest"
	"scalerpc/internal/octofs"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
)

// call issues one synchronous metadata RPC from a client thread.
func call(th *host.Thread, conn rpccore.Conn, sig *sim.Signal, h uint8, path string, id uint64) []byte {
	for !conn.TrySend(th, h, []byte(path), id) {
		conn.Poll(th, func(rpccore.Response) {})
		sig.WaitTimeout(th.P, 10*sim.Microsecond)
	}
	var resp []byte
	for resp == nil {
		conn.Poll(th, func(r rpccore.Response) {
			if r.ReqID == id {
				resp = append([]byte(nil), r.Payload...)
			}
		})
		if resp == nil {
			sig.WaitTimeout(th.P, 10*sim.Microsecond)
		}
	}
	return resp
}

func TestMetadataLifecycleOverScaleRPC(t *testing.T) {
	c := cluster.New(cluster.Default(2))
	defer c.Close()
	mds := octofs.NewMDS(c.Hosts[0], octofs.DefaultConfig())
	cfg := scalerpc.DefaultServerConfig()
	cfg.Workers = 2
	cfg.GroupSize = 8
	srv := scalerpc.NewServer(c.Hosts[0], cfg)
	mds.RegisterHandlers(srv)
	srv.Start()
	sig := sim.NewSignal(c.Env)
	conn := srv.Connect(c.Hosts[1], sig)

	fail := ""
	c.Hosts[1].Spawn("fsclient", func(th *host.Thread) {
		id := uint64(0)
		next := func() uint64 { id++; return id }
		if r := call(th, conn, sig, octofs.HMkdir, "/home", next()); r[0] != octofs.StOK {
			fail = "mkdir failed"
			return
		}
		if r := call(th, conn, sig, octofs.HMknod, "/home/a.txt", next()); r[0] != octofs.StOK {
			fail = "mknod failed"
			return
		}
		// Duplicate create must report Exists.
		if r := call(th, conn, sig, octofs.HMknod, "/home/a.txt", next()); r[0] != octofs.StExists {
			fail = "duplicate mknod not detected"
			return
		}
		if r := call(th, conn, sig, octofs.HStat, "/home/a.txt", next()); r[0] != octofs.StOK || r[1] != 0 {
			fail = "stat file failed"
			return
		}
		if r := call(th, conn, sig, octofs.HStat, "/home", next()); r[0] != octofs.StOK || r[1] != 1 {
			fail = "stat dir failed"
			return
		}
		call(th, conn, sig, octofs.HMknod, "/home/b.txt", next())
		r := call(th, conn, sig, octofs.HReaddir, "/home", next())
		if r[0] != octofs.StOK {
			fail = "readdir failed"
			return
		}
		if n := binary.LittleEndian.Uint32(r[1:]); n != 2 {
			fail = "readdir count wrong"
			return
		}
		// Names come back sorted: a.txt then b.txt.
		if string(r[6:6+5]) != "a.txt" {
			fail = "readdir first entry wrong: " + string(r[6:6+5])
			return
		}
		// Removing a non-empty dir must fail.
		if r := call(th, conn, sig, octofs.HRmnod, "/home", next()); r[0] != octofs.StNotEmpty {
			fail = "rmnod of non-empty dir allowed"
			return
		}
		call(th, conn, sig, octofs.HRmnod, "/home/a.txt", next())
		call(th, conn, sig, octofs.HRmnod, "/home/b.txt", next())
		if r := call(th, conn, sig, octofs.HRmnod, "/home", next()); r[0] != octofs.StOK {
			fail = "rmnod of emptied dir failed"
			return
		}
		if r := call(th, conn, sig, octofs.HStat, "/home/a.txt", next()); r[0] != octofs.StNotFound {
			fail = "stat of removed file succeeded"
			return
		}
	})
	c.Env.RunUntil(100 * sim.Millisecond)
	if fail != "" {
		t.Fatal(fail)
	}
	if mds.Len() != 0 {
		t.Fatalf("inode leak: %d live inodes", mds.Len())
	}
}

func TestPreloadAndMdtestPhases(t *testing.T) {
	c := cluster.New(cluster.Default(2))
	defer c.Close()
	mds := octofs.NewMDS(c.Hosts[0], octofs.DefaultConfig())
	if !mds.Preload(4, 100) {
		t.Fatal("preload failed")
	}
	if mds.Len() != 4+400 {
		t.Fatalf("Len = %d", mds.Len())
	}
	cfg := selfrpc.DefaultServerConfig()
	cfg.Workers = 2
	cfg.MaxClients = 8
	srv := selfrpc.NewServer(c.Hosts[0], cfg)
	mds.RegisterHandlers(srv)
	srv.Start()

	horizon := 2 * sim.Millisecond
	results := make([]rpccore.DriverStats, 4)
	ops := []mdtest.Op{mdtest.Stat, mdtest.Readdir, mdtest.Mknod, mdtest.Rmnod}
	for i, op := range ops {
		i, op := i, op
		sig := sim.NewSignal(c.Env)
		conn := srv.Connect(c.Hosts[1], sig)
		w := mdtest.NewWorkload(op, i, 100, uint64(i))
		c.Hosts[1].Spawn("drv", func(th *host.Thread) {
			results[i] = rpccore.RunDriver(th, []rpccore.Conn{conn}, w.DriverConfig(2, uint64(i)),
				sig, func() bool { return th.P.Now() >= horizon })
		})
	}
	c.Env.RunUntil(horizon + sim.Millisecond)
	for i, r := range results {
		if r.Completed == 0 {
			t.Fatalf("phase %v made no progress", ops[i])
		}
	}
	if mds.Stats.Stats == 0 || mds.Stats.Readdirs == 0 || mds.Stats.Mknods == 0 || mds.Stats.Rmnods == 0 {
		t.Fatalf("op counters: %+v", mds.Stats)
	}
}

func TestInodeTableExhaustion(t *testing.T) {
	c := cluster.New(cluster.Default(1))
	defer c.Close()
	mds := octofs.NewMDS(c.Hosts[0], octofs.Config{MaxInodes: 8, LookupCost: 1, UpdateCost: 1})
	if mds.Preload(2, 10) {
		t.Fatal("preload should fail on a full table")
	}
}
