// Package pcie models the PCIe bus between a host CPU/memory complex and
// its RNIC: latency/occupancy costs for MMIO and DMA, and the Intel
// uncore-style event counters the paper reads with PCM (Figures 3 and 10).
//
// Counter semantics follow the paper's definitions (§3.6.3):
//
//   - PCIeRdCur — PCIe device reads of memory (DMA reads: WQE fetches on
//     cache miss, QP-context refills, payload gathers, RDMA READ sources).
//   - RFO — partial-cacheline writes from the device to memory.
//   - ItoM — full-cacheline writes from the device to memory.
//   - PCIeItoM — full-cacheline device writes that had to use the DDIO
//     Write Allocate mode (target line absent from the LLC).
package pcie

import (
	"scalerpc/internal/sim"
	"scalerpc/internal/telemetry"
)

// Counters is a snapshot of PCIe event counts. Rates are computed by the
// harness from two snapshots and the elapsed virtual time.
type Counters struct {
	PCIeRdCur uint64
	RFO       uint64
	ItoM      uint64
	PCIeItoM  uint64
	MMIOWr    uint64
}

// Sub returns c - o, counter-wise.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		PCIeRdCur: c.PCIeRdCur - o.PCIeRdCur,
		RFO:       c.RFO - o.RFO,
		ItoM:      c.ItoM - o.ItoM,
		PCIeItoM:  c.PCIeItoM - o.PCIeItoM,
		MMIOWr:    c.MMIOWr - o.MMIOWr,
	}
}

// TotalDeviceWrites returns RFO+ItoM: all device→memory write events.
func (c Counters) TotalDeviceWrites() uint64 { return c.RFO + c.ItoM }

// Bus accumulates counters for one host's PCIe root complex.
type Bus struct {
	Counters
}

// NewBus returns a zeroed bus.
func NewBus() *Bus { return &Bus{} }

// Register publishes the bus counters into a telemetry scope (conventionally
// "pcie.bus<hostID>"). The embedded Counters struct remains the storage; the
// registry observes the fields in place.
func (b *Bus) Register(sc telemetry.Scope) {
	sc.CounterVar("rdcur", &b.PCIeRdCur)
	sc.CounterVar("rfo", &b.RFO)
	sc.CounterVar("itom", &b.ItoM)
	sc.CounterVar("pcie_itom", &b.PCIeItoM)
	sc.CounterVar("mmio_wr", &b.MMIOWr)
}

// Snapshot returns the current counter values.
func (b *Bus) Snapshot() Counters { return b.Counters }

// Reset zeroes all counters.
func (b *Bus) Reset() { b.Counters = Counters{} }

// RecordDMARead counts a device read of memory (one event per read
// transaction regardless of size; the paper's counter is per-cacheline but
// the verbs involved read ≤1 line except payload gathers, which we count
// per line).
func (b *Bus) RecordDMARead(lines int) { b.PCIeRdCur += uint64(lines) }

// RecordDeviceWrite counts a device write of n bytes split into full and
// partial cachelines, flagging how many were write-allocates.
func (b *Bus) RecordDeviceWrite(addr, size uint64, lineSize int, allocs int) {
	if size == 0 {
		return
	}
	ls := uint64(lineSize)
	first := addr / ls
	last := (addr + size - 1) / ls
	for lineNo := first; lineNo <= last; lineNo++ {
		lineStart := lineNo * ls
		lineEnd := lineStart + ls
		covStart, covEnd := addr, addr+size
		if covStart < lineStart {
			covStart = lineStart
		}
		if covEnd > lineEnd {
			covEnd = lineEnd
		}
		if covEnd-covStart == ls {
			b.ItoM++
		} else {
			b.RFO++
		}
	}
	b.PCIeItoM += uint64(allocs)
}

// RecordMMIO counts a CPU MMIO doorbell write to the device.
func (b *Bus) RecordMMIO() { b.MMIOWr++ }

// CostModel holds the latency constants for bus transactions. Durations are
// virtual nanoseconds; defaults approximate a PCIe 3.0 x8 link as seen by a
// ConnectX-3-generation NIC.
type CostModel struct {
	// MMIOWrite is CPU time to issue a posted doorbell write (including
	// the write-combining flush for inlined WQEs).
	MMIOWrite sim.Duration
	// DMAReadLatency is device-visible latency of a DMA read round trip
	// (request + completion with data) for one cacheline.
	DMAReadLatency sim.Duration
	// DMAReadPerLine is additional latency per extra cacheline gathered.
	DMAReadPerLine sim.Duration
	// DMAWriteLatency is posted-write issue latency (cheap; writes are
	// fire-and-forget from the device's perspective).
	DMAWriteLatency sim.Duration
	// WriteAllocatePenalty is the extra occupancy incurred when a DDIO
	// write misses the LLC and must allocate (snoop + possible dirty
	// eviction to memory).
	WriteAllocatePenalty sim.Duration
}

// DefaultCostModel returns latencies calibrated for the paper's testbed
// generation (values in virtual ns).
func DefaultCostModel() CostModel {
	return CostModel{
		MMIOWrite:            100,
		DMAReadLatency:       400,
		DMAReadPerLine:       8,
		DMAWriteLatency:      20,
		WriteAllocatePenalty: 70,
	}
}

// DMARead returns the latency of a DMA read of size bytes.
func (m CostModel) DMARead(size int, lineSize int) sim.Duration {
	if size <= 0 {
		return 0
	}
	lines := (size + lineSize - 1) / lineSize
	return m.DMAReadLatency + sim.Duration(lines-1)*m.DMAReadPerLine
}
