package pcie

import (
	"testing"

	"scalerpc/internal/telemetry"
)

func TestCountersSub(t *testing.T) {
	a := Counters{PCIeRdCur: 10, RFO: 5, ItoM: 7, PCIeItoM: 3, MMIOWr: 2}
	b := Counters{PCIeRdCur: 4, RFO: 1, ItoM: 2, PCIeItoM: 1, MMIOWr: 1}
	d := a.Sub(b)
	if d.PCIeRdCur != 6 || d.RFO != 4 || d.ItoM != 5 || d.PCIeItoM != 2 || d.MMIOWr != 1 {
		t.Fatalf("d = %+v", d)
	}
	if a.TotalDeviceWrites() != 12 {
		t.Fatalf("TotalDeviceWrites = %d", a.TotalDeviceWrites())
	}
}

func TestRecordDeviceWriteFullVsPartialLines(t *testing.T) {
	b := NewBus()
	// 64-byte aligned full line → ItoM.
	b.RecordDeviceWrite(0, 64, 64, 0)
	if b.ItoM != 1 || b.RFO != 0 {
		t.Fatalf("full line: %+v", b.Counters)
	}
	// 8 bytes → one partial line (RFO).
	b.Reset()
	b.RecordDeviceWrite(128, 8, 64, 0)
	if b.RFO != 1 || b.ItoM != 0 {
		t.Fatalf("partial: %+v", b.Counters)
	}
	// 100 bytes at offset 32: covers line0[32,64) partial, line1[64,128)
	// full, line2[128,132) partial.
	b.Reset()
	b.RecordDeviceWrite(32, 100, 64, 0)
	if b.RFO != 2 || b.ItoM != 1 {
		t.Fatalf("straddle: %+v", b.Counters)
	}
}

func TestRecordDeviceWriteAllocs(t *testing.T) {
	b := NewBus()
	b.RecordDeviceWrite(0, 256, 64, 3)
	if b.PCIeItoM != 3 {
		t.Fatalf("PCIeItoM = %d", b.PCIeItoM)
	}
	b.RecordDeviceWrite(0, 0, 64, 5)
	if b.PCIeItoM != 3 {
		t.Fatal("zero-size write must not count")
	}
}

func TestDMAReadLatencyScalesWithLines(t *testing.T) {
	m := DefaultCostModel()
	one := m.DMARead(64, 64)
	if one != m.DMAReadLatency {
		t.Fatalf("1 line = %d, want %d", one, m.DMAReadLatency)
	}
	big := m.DMARead(64*100, 64)
	if big != m.DMAReadLatency+99*m.DMAReadPerLine {
		t.Fatalf("100 lines = %d", big)
	}
	if m.DMARead(0, 64) != 0 {
		t.Fatal("0-byte read must be free")
	}
	// Partial line rounds up.
	if m.DMARead(65, 64) != m.DMAReadLatency+m.DMAReadPerLine {
		t.Fatal("65 bytes must count as 2 lines")
	}
}

func TestMMIOAndDMAReadCounters(t *testing.T) {
	b := NewBus()
	b.RecordMMIO()
	b.RecordDMARead(4)
	if b.MMIOWr != 1 || b.PCIeRdCur != 4 {
		t.Fatalf("%+v", b.Counters)
	}
	b.Reset()
	if b.Snapshot() != (Counters{}) {
		t.Fatal("Reset failed")
	}
}

func TestBusRegisterObservesAndResets(t *testing.T) {
	b := NewBus()
	r := telemetry.NewRegistry()
	b.Register(r.Scope("pcie.bus0"))
	b.RecordDMARead(3)
	b.RecordMMIO()
	if v, ok := r.Value("pcie.bus0.rdcur"); !ok || v != 3 {
		t.Fatalf("rdcur through registry = %v, %v", v, ok)
	}
	if v, _ := r.Value("pcie.bus0.mmio_wr"); v != 1 {
		t.Fatalf("mmio_wr through registry = %v", v)
	}
	// Component Reset must be visible through the registered pointers.
	b.Reset()
	if v, _ := r.Value("pcie.bus0.rdcur"); v != 0 {
		t.Fatalf("rdcur after Reset = %v", v)
	}
}

func TestSnapshotSubWindowExcludesEarlierEvents(t *testing.T) {
	b := NewBus()
	b.RecordDMARead(5) // warmup traffic, to be excluded
	start := b.Snapshot()
	b.RecordDMARead(2)
	b.RecordMMIO()
	d := b.Snapshot().Sub(start)
	if d.PCIeRdCur != 2 || d.MMIOWr != 1 {
		t.Fatalf("window delta = %+v, want rdcur=2 mmio=1", d)
	}
}
