// Package fasstrpc implements the FaSST RPC baseline (Kalia et al.,
// OSDI'16; Table 2 of the paper): both requests and responses travel as UD
// sends. The server needs only one UD QP per worker thread — no per-client
// connections, no per-client buffers (incoming requests land wherever the
// posted recv ring points) — which is why FaSST's throughput is flat in
// the number of clients (Figure 8). The price: no one-sided verbs, a 4 KB
// MTU, and clients that must pre-post receives and poll completion queues,
// making client CPU the bottleneck (§3.6.2).
package fasstrpc

import (
	"fmt"

	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/rpcwire"
	"scalerpc/internal/sim"
	"scalerpc/internal/telemetry"
)

// ServerConfig sizes a FaSST server.
type ServerConfig struct {
	Workers     int
	BlockSize   int // ≤ UD MTU
	RecvDepth   int // posted receives per worker QP
	PollTimeout sim.Duration
	ParseCost   sim.Duration
	// ClientOverhead is extra per-operation client CPU (recv reposting,
	// CQ polling, doorbells — the UD client tax).
	ClientOverhead sim.Duration
	// ClientWindow is the per-client request window.
	ClientWindow int
}

// DefaultServerConfig mirrors the paper's setup.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		Workers:        10,
		BlockSize:      4096,
		RecvDepth:      512,
		PollTimeout:    20 * sim.Microsecond,
		ParseCost:      60,
		ClientOverhead: 350,
		ClientWindow:   16,
	}
}

const scratchRing = 64

type worker struct {
	s          *Server
	idx        int
	qp         *nic.QP
	cq         *nic.CQ
	recv       *memory.Region
	scratch    *memory.Region
	scratchIdx int
	buf        []byte
	toRepost   []nic.RecvWR
	Served     uint64
}

// Server is a FaSST RPC server.
type Server struct {
	Cfg      ServerConfig
	Host     *host.Host
	handlers [256]rpccore.Handler
	workers  []*worker
	nextCli  uint16
	started  bool
}

// NewServer builds per-worker UD QPs and recv rings.
func NewServer(h *host.Host, cfg ServerConfig) *Server {
	s := &Server{Cfg: cfg, Host: h}
	var tel telemetry.Scope
	if reg := h.Tel.Registry(); reg != nil {
		tel = reg.UniqueScope("fasstrpc")
	}
	for i := 0; i < cfg.Workers; i++ {
		cq := h.NIC.CreateCQ()
		w := &worker{
			s:       s,
			idx:     i,
			cq:      cq,
			qp:      h.NIC.CreateQP(nic.UD, cq, cq),
			recv:    h.Mem.Register(cfg.BlockSize*cfg.RecvDepth, memory.PageSize2M, memory.LocalWrite),
			scratch: h.Mem.Register(cfg.BlockSize*scratchRing, memory.PageSize2M, memory.LocalWrite),
			buf:     make([]byte, cfg.BlockSize),
		}
		tel.Scope(fmt.Sprintf("server.w%d", i)).CounterVar("served", &w.Served)
		s.workers = append(s.workers, w)
	}
	return s
}

// Register installs a handler.
func (s *Server) Register(id uint8, fn rpccore.Handler) { s.handlers[id] = fn }

// Start launches the worker threads and posts the initial recv rings.
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	for i, w := range s.workers {
		w := w
		// Initial recv ring, posted with one doorbell.
		var wrs []nic.RecvWR
		for r := 0; r < s.Cfg.RecvDepth; r++ {
			wrs = append(wrs, nic.RecvWR{
				WRID: uint64(r),
				LKey: w.recv.LKey, LAddr: w.recv.Base + uint64(r*s.Cfg.BlockSize), Len: s.Cfg.BlockSize,
			})
		}
		w.qp.PostRecvBatch(wrs)
		s.Host.Spawn(fmt.Sprintf("fasst-w%d", i), w.run)
	}
}

func (w *worker) run(t *host.Thread) {
	for {
		cqes := t.PollCQ(w.cq, 16)
		if len(cqes) == 0 {
			// Batch-repost consumed receives before sleeping.
			w.repost(t)
			w.cq.Sig.WaitTimeout(t.P, w.s.Cfg.PollTimeout)
			continue
		}
		for _, e := range cqes {
			if e.Status != nic.CQOK {
				continue
			}
			addr := w.recv.Base + e.WRID*uint64(w.s.Cfg.BlockSize)
			t.ReadMem(addr, e.ByteLen)
			buf := w.recv.Bytes()[e.WRID*uint64(w.s.Cfg.BlockSize):]
			t.Work(w.s.Cfg.ParseCost)
			w.serve(t, e, buf[:e.ByteLen])
			w.toRepost = append(w.toRepost, nic.RecvWR{
				WRID: e.WRID, LKey: w.recv.LKey, LAddr: addr, Len: w.s.Cfg.BlockSize,
			})
			w.Served++
		}
		if len(w.toRepost) >= 16 {
			w.repost(t)
		}
	}
}

func (w *worker) repost(t *host.Thread) {
	if len(w.toRepost) == 0 {
		return
	}
	t.PostRecvBatch(w.qp, w.toRepost)
	w.toRepost = w.toRepost[:0]
}

// serve executes the handler and UD-sends the response back to the
// requesting QP (taken from the recv completion's source address).
func (w *worker) serve(t *host.Thread, e nic.CQE, req []byte) {
	s := w.s
	hdr, body, err := rpcwire.ParseHeader(req)
	var errFlag uint32
	n := rpcwire.PutHeader(w.buf, rpcwire.Header{ReqID: hdr.ReqID, Handler: hdr.Handler, ClientID: hdr.ClientID})
	respLen := n
	if err == nil && s.handlers[hdr.Handler] != nil {
		respLen = n + s.handlers[hdr.Handler](t, hdr.ClientID, body, w.buf[n:])
	} else {
		errFlag = 1
	}
	blockOff := w.scratchIdx * s.Cfg.BlockSize
	w.scratchIdx = (w.scratchIdx + 1) % scratchRing
	copy(w.scratch.Bytes()[blockOff:], w.buf[:respLen])
	t.WriteMem(w.scratch.Base+uint64(blockOff), respLen)
	wr := nic.SendWR{
		Op:     nic.OpSend,
		LKey:   w.scratch.LKey,
		LAddr:  w.scratch.Base + uint64(blockOff),
		Len:    respLen,
		DstNIC: e.SrcNIC,
		DstQPN: e.SrcQPN,
		Imm:    errFlag,
	}
	if respLen <= s.Host.NIC.Cfg.MaxInline {
		wr.Inline = true
	}
	t.PostSend(w.qp, wr)
}

// Served returns total requests processed.
func (s *Server) Served() uint64 {
	var n uint64
	for _, w := range s.workers {
		n += w.Served
	}
	return n
}

// Conn is a FaSST client endpoint: one UD QP, a recv ring, a send window.
type Conn struct {
	id    uint16
	h     *host.Host
	s     *Server
	qp    *nic.QP
	cq    *nic.CQ
	stage *memory.Region
	recv  *memory.Region
	slots []slot
	nfree int
	// Target server worker QP (clients are spread over workers).
	dstNIC int
	dstQPN uint32
}

type slot struct {
	busy  bool
	reqID uint64
}

// Connect admits a client (no connection state on the server: it only
// assigns an id and a worker QP to address).
func (s *Server) Connect(ch *host.Host, sig *sim.Signal) *Conn {
	id := s.nextCli
	s.nextCli++
	cq := ch.NIC.CreateCQ()
	cq.Sig = sig
	qp := ch.NIC.CreateQP(nic.UD, cq, cq)
	w := s.workers[int(id)%len(s.workers)]
	window := s.Cfg.ClientWindow
	conn := &Conn{
		id:     id,
		h:      ch,
		s:      s,
		qp:     qp,
		cq:     cq,
		stage:  ch.Mem.Register(s.Cfg.BlockSize*window, memory.PageSize2M, memory.LocalWrite),
		recv:   ch.Mem.Register(s.Cfg.BlockSize*window*2, memory.PageSize2M, memory.LocalWrite),
		slots:  make([]slot, window),
		nfree:  window,
		dstNIC: s.Host.NIC.ID(),
		dstQPN: w.qp.QPN,
	}
	for i := 0; i < window*2; i++ {
		qp.PostRecv(nic.RecvWR{
			WRID: uint64(i),
			LKey: conn.recv.LKey, LAddr: conn.recv.Base + uint64(i*s.Cfg.BlockSize), Len: s.Cfg.BlockSize,
		})
	}
	return conn
}

// SlotCount returns the request window size.
func (c *Conn) SlotCount() int { return len(c.slots) }

// Outstanding returns in-flight requests.
func (c *Conn) Outstanding() int { return len(c.slots) - c.nfree }

// TrySend UD-sends one request to the client's assigned server worker.
func (c *Conn) TrySend(t *host.Thread, handler uint8, payload []byte, reqID uint64) bool {
	if c.nfree == 0 {
		return false
	}
	b := -1
	for i := range c.slots {
		if !c.slots[i].busy {
			b = i
			break
		}
	}
	msgLen := rpcwire.HeaderSize + len(payload)
	if msgLen > c.s.Cfg.BlockSize {
		return false
	}
	blockOff := b * c.s.Cfg.BlockSize
	buf := c.stage.Bytes()[blockOff:]
	rpcwire.PutHeader(buf, rpcwire.Header{ReqID: reqID, Handler: handler, ClientID: c.id})
	copy(buf[rpcwire.HeaderSize:], payload)
	t.WriteMem(c.stage.Base+uint64(blockOff), msgLen)
	t.Work(c.s.Cfg.ClientOverhead)
	wr := nic.SendWR{
		Op:     nic.OpSend,
		LKey:   c.stage.LKey,
		LAddr:  c.stage.Base + uint64(blockOff),
		Len:    msgLen,
		DstNIC: c.dstNIC,
		DstQPN: c.dstQPN,
	}
	if msgLen <= c.h.NIC.Cfg.MaxInline {
		wr.Inline = true
	}
	if err := t.PostSend(c.qp, wr); err != nil {
		return false
	}
	c.slots[b] = slot{busy: true, reqID: reqID}
	c.nfree--
	return true
}

// Poll drains the response CQ, reposting receives.
func (c *Conn) Poll(t *host.Thread, fn func(rpccore.Response)) int {
	t.Work(c.s.Cfg.ClientOverhead)
	cqes := t.PollCQ(c.cq, 16)
	got := 0
	for _, e := range cqes {
		if e.Status != nic.CQOK {
			continue
		}
		addr := c.recv.Base + e.WRID*uint64(c.s.Cfg.BlockSize)
		t.ReadMem(addr, e.ByteLen)
		buf := c.recv.Bytes()[e.WRID*uint64(c.s.Cfg.BlockSize):]
		hdr, body, err := rpcwire.ParseHeader(buf[:e.ByteLen])
		t.PostRecv(c.qp, nic.RecvWR{WRID: e.WRID, LKey: c.recv.LKey, LAddr: addr, Len: c.s.Cfg.BlockSize})
		if err != nil {
			continue
		}
		// Find the matching slot by request id.
		for b := range c.slots {
			if c.slots[b].busy && c.slots[b].reqID == hdr.ReqID {
				c.slots[b] = slot{}
				c.nfree++
				fn(rpccore.Response{ReqID: hdr.ReqID, Payload: body, Err: e.ImmValid && e.Imm == 1})
				got++
				break
			}
		}
	}
	return got
}

var _ rpccore.Server = (*Server)(nil)
var _ rpccore.Conn = (*Conn)(nil)
