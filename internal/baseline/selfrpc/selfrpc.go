// Package selfrpc implements Octopus's self-identified RPC (Lu et al.,
// USENIX ATC'17), the paper's Figure 13 comparison point: clients post
// requests with RDMA WRITE_WITH_IMM into their static server zone, and the
// immediate value (client zone ⊕ block) lets server threads locate new
// messages straight from the completion queue instead of scanning the
// whole message pool. Responses return as plain RC writes.
//
// Self-identification removes the poll-scan cost, but the design keeps a
// per-client connection for responses (NIC QPC thrash at scale) and a
// statically mapped pool (LLC thrash at scale) — which is why ScaleRPC
// overtakes it on read-mostly metadata ops in Figure 13.
package selfrpc

import (
	"fmt"

	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/rpcwire"
	"scalerpc/internal/sim"
	"scalerpc/internal/telemetry"
)

// ServerConfig sizes a selfRPC server.
type ServerConfig struct {
	Workers         int
	BlockSize       int
	BlocksPerClient int
	MaxClients      int
	PollTimeout     sim.Duration
	ParseCost       sim.Duration
}

// DefaultServerConfig mirrors the paper's DFS setup.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		Workers:         10,
		BlockSize:       4096,
		BlocksPerClient: 16,
		MaxClients:      512,
		PollTimeout:     20 * sim.Microsecond,
		ParseCost:       60,
	}
}

const scratchRing = 64

type clientState struct {
	id       uint16
	qp       *nic.QP
	respAddr uint64
	respRKey uint32
}

type worker struct {
	s          *Server
	idx        int
	cq         *nic.CQ
	scratch    *memory.Region
	scratchIdx int
	buf        []byte
	Served     uint64
}

// Server is a selfRPC server.
type Server struct {
	Cfg  ServerConfig
	Host *host.Host

	pool     *rpcwire.Pool
	handlers [256]rpccore.Handler
	clients  []*clientState
	workers  []*worker
	started  bool
}

// NewServer builds the pool and per-worker completion queues.
func NewServer(h *host.Host, cfg ServerConfig) *Server {
	poolReg := h.Mem.Register(cfg.BlockSize*cfg.BlocksPerClient*cfg.MaxClients,
		memory.PageSize2M, memory.LocalWrite|memory.RemoteWrite)
	s := &Server{
		Cfg:  cfg,
		Host: h,
		pool: rpcwire.NewPool(poolReg, cfg.BlockSize, cfg.BlocksPerClient, cfg.MaxClients),
	}
	var tel telemetry.Scope
	if reg := h.Tel.Registry(); reg != nil {
		tel = reg.UniqueScope("selfrpc")
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			s:       s,
			idx:     i,
			cq:      h.NIC.CreateCQ(),
			scratch: h.Mem.Register(cfg.BlockSize*scratchRing, memory.PageSize2M, memory.LocalWrite),
			buf:     make([]byte, cfg.BlockSize),
		}
		tel.Scope(fmt.Sprintf("server.w%d", i)).CounterVar("served", &w.Served)
		s.workers = append(s.workers, w)
	}
	return s
}

// Register installs a handler.
func (s *Server) Register(id uint8, fn rpccore.Handler) { s.handlers[id] = fn }

// Start launches the worker threads.
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	for i, w := range s.workers {
		w := w
		s.Host.Spawn(fmt.Sprintf("selfrpc-w%d", i), w.run)
	}
}

func (w *worker) run(t *host.Thread) {
	s := w.s
	for {
		cqes := t.PollCQ(w.cq, 16)
		if len(cqes) == 0 {
			w.cq.Sig.WaitTimeout(t.P, s.Cfg.PollTimeout)
			continue
		}
		for _, e := range cqes {
			if e.Status != nic.CQOK || !e.ImmValid {
				continue
			}
			// Self-identification: the immediate names the exact block.
			z := int(e.Imm >> 8)
			b := int(e.Imm & 0xFF)
			if z >= len(s.clients) || s.clients[z] == nil || b >= s.Cfg.BlocksPerClient {
				continue
			}
			cs := s.clients[z]
			block := s.pool.Block(z, b)
			if !rpcwire.Valid(block) {
				continue
			}
			payload, _, err := rpcwire.Decode(block)
			if err != nil {
				rpcwire.Clear(block)
				continue
			}
			t.ReadMem(s.pool.BlockAddr(z, b), len(payload)+rpcwire.TrailerSize)
			t.Work(s.Cfg.ParseCost)
			w.serve(t, cs, b, payload)
			rpcwire.Clear(block)
			t.WriteMem(s.pool.ValidAddr(z, b), 1)
			// Replenish the consumed recv WQE.
			t.PostRecv(cs.qp, nic.RecvWR{})
			w.Served++
		}
	}
}

func (w *worker) serve(t *host.Thread, cs *clientState, slot int, req []byte) {
	s := w.s
	hdr, body, err := rpcwire.ParseHeader(req)
	var flags byte
	n := rpcwire.PutHeader(w.buf, rpcwire.Header{ReqID: hdr.ReqID, Handler: hdr.Handler, ClientID: uint16(slot)})
	respLen := n
	if err == nil && s.handlers[hdr.Handler] != nil {
		respLen = n + s.handlers[hdr.Handler](t, cs.id, body, w.buf[n:len(w.buf)-rpcwire.TrailerSize])
	} else {
		flags = rpcwire.FlagError
	}
	blockOff := w.scratchIdx * s.Cfg.BlockSize
	w.scratchIdx = (w.scratchIdx + 1) % scratchRing
	block := w.scratch.Bytes()[blockOff : blockOff+s.Cfg.BlockSize]
	if err := rpcwire.Encode(block, w.buf[:respLen], flags); err != nil {
		return
	}
	off, span := rpcwire.EncodedSpan(s.Cfg.BlockSize, respLen)
	t.WriteMem(w.scratch.Base+uint64(blockOff+off), span)
	wr := nic.SendWR{
		Op:    nic.OpWrite,
		LKey:  w.scratch.LKey,
		LAddr: w.scratch.Base + uint64(blockOff+off),
		Len:   span,
		RKey:  cs.respRKey,
		RAddr: cs.respAddr + uint64(slot*s.Cfg.BlockSize+off),
	}
	if span <= s.Host.NIC.Cfg.MaxInline {
		wr.Inline = true
	}
	t.PostSend(cs.qp, wr)
}

// Served returns total requests processed.
func (s *Server) Served() uint64 {
	var n uint64
	for _, w := range s.workers {
		n += w.Served
	}
	return n
}

// Conn is a selfRPC client endpoint.
type Conn struct {
	id    uint16
	h     *host.Host
	s     *Server
	qp    *nic.QP
	zone  int
	stage *memory.Region
	resp  *rpcwire.Pool
	slots []slot
	nfree int
}

type slot struct {
	busy  bool
	reqID uint64
}

// Connect admits a client: an RC QP pair whose server side delivers
// WRITE_IMM completions to one worker's CQ (round-robin assignment).
func (s *Server) Connect(ch *host.Host, sig *sim.Signal) *Conn {
	if len(s.clients) >= s.Cfg.MaxClients {
		panic("selfrpc: server full")
	}
	id := uint16(len(s.clients))
	w := s.workers[int(id)%len(s.workers)]
	ccq := ch.NIC.CreateCQ()
	sqp := s.Host.NIC.CreateQP(nic.RC, w.cq, w.cq)
	cqp := ch.NIC.CreateQP(nic.RC, ccq, ccq)
	if err := nic.Connect(sqp, cqp); err != nil {
		panic(err)
	}
	// Pre-post recvs to absorb WRITE_IMM notifications.
	for i := 0; i < s.Cfg.BlocksPerClient*2; i++ {
		sqp.PostRecv(nic.RecvWR{})
	}
	stage := ch.Mem.Register(s.Cfg.BlockSize*s.Cfg.BlocksPerClient, memory.PageSize2M,
		memory.LocalWrite|memory.RemoteRead)
	respReg := ch.Mem.Register(s.Cfg.BlockSize*(s.Cfg.BlocksPerClient+1), memory.PageSize2M,
		memory.LocalWrite|memory.RemoteWrite)
	s.clients = append(s.clients, &clientState{
		id: id, qp: sqp, respAddr: respReg.Base, respRKey: respReg.RKey,
	})
	conn := &Conn{
		id:    id,
		h:     ch,
		s:     s,
		qp:    cqp,
		zone:  int(id),
		stage: stage,
		resp:  rpcwire.NewPool(respReg, s.Cfg.BlockSize, s.Cfg.BlocksPerClient+1, 1),
		slots: make([]slot, s.Cfg.BlocksPerClient),
		nfree: s.Cfg.BlocksPerClient,
	}
	ch.NIC.WatchRegion(respReg.RKey, sig)
	return conn
}

// SlotCount returns the request window size.
func (c *Conn) SlotCount() int { return len(c.slots) }

// Outstanding returns in-flight requests.
func (c *Conn) Outstanding() int { return len(c.slots) - c.nfree }

// TrySend posts one WRITE_IMM request.
func (c *Conn) TrySend(t *host.Thread, handler uint8, payload []byte, reqID uint64) bool {
	if c.nfree == 0 {
		return false
	}
	b := -1
	for i := range c.slots {
		if !c.slots[i].busy {
			b = i
			break
		}
	}
	msg := make([]byte, rpcwire.HeaderSize+len(payload))
	rpcwire.PutHeader(msg, rpcwire.Header{ReqID: reqID, Handler: handler, ClientID: c.id})
	copy(msg[rpcwire.HeaderSize:], payload)
	blockOff := b * c.s.Cfg.BlockSize
	block := c.stage.Bytes()[blockOff : blockOff+c.s.Cfg.BlockSize]
	if err := rpcwire.Encode(block, msg, 0); err != nil {
		return false
	}
	off, span := rpcwire.EncodedSpan(c.s.Cfg.BlockSize, len(msg))
	t.WriteMem(c.stage.Base+uint64(blockOff+off), span)
	wr := nic.SendWR{
		Op:    nic.OpWriteImm,
		Imm:   uint32(c.zone)<<8 | uint32(b),
		LKey:  c.stage.LKey,
		LAddr: c.stage.Base + uint64(blockOff+off),
		Len:   span,
		RKey:  c.s.pool.RKey(),
		RAddr: c.s.pool.BlockAddr(c.zone, b) + uint64(off),
	}
	if span <= c.h.NIC.Cfg.MaxInline {
		wr.Inline = true
	}
	if err := t.PostSend(c.qp, wr); err != nil {
		return false
	}
	c.slots[b] = slot{busy: true, reqID: reqID}
	c.nfree--
	return true
}

// Poll scans in-flight response slots (clients still poll memory; only the
// server side is self-identified).
func (c *Conn) Poll(t *host.Thread, fn func(rpccore.Response)) int {
	got := 0
	for b := range c.slots {
		if !c.slots[b].busy {
			continue
		}
		t.ReadMem(c.resp.ValidAddr(0, b), 1)
		block := c.resp.Block(0, b)
		if !rpcwire.Valid(block) {
			continue
		}
		payload, flags, err := rpcwire.Decode(block)
		if err != nil {
			rpcwire.Clear(block)
			continue
		}
		t.ReadMem(c.resp.BlockAddr(0, b), len(payload)+rpcwire.TrailerSize)
		hdr, body, herr := rpcwire.ParseHeader(payload)
		rpcwire.Clear(block)
		t.WriteMem(c.resp.ValidAddr(0, b), 1)
		if herr != nil || hdr.ReqID != c.slots[b].reqID {
			continue
		}
		c.slots[b] = slot{}
		c.nfree++
		fn(rpccore.Response{ReqID: hdr.ReqID, Payload: body, Err: flags&rpcwire.FlagError != 0})
		got++
	}
	return got
}

var _ rpccore.Server = (*Server)(nil)
var _ rpccore.Conn = (*Conn)(nil)
