package rawrpc_test

import (
	"encoding/binary"
	"testing"

	"scalerpc/internal/baseline/rawrpc"
	"scalerpc/internal/cluster"
	"scalerpc/internal/faults"
	"scalerpc/internal/host"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/sim"
)

// TestServerCrashRestartExactlyOnce is the RawWrite twin of the ScaleRPC
// test: a server blackout with deadline-driven clients retrying across it.
// RawWrite has no client-side reconnect, so the NIC retry budget must ride
// out the outage — and the reply cache must still absorb the duplicate
// frames the Caller's resends deliver.
func TestServerCrashRestartExactlyOnce(t *testing.T) {
	c := cluster.New(cluster.Default(2))
	defer c.Close()
	cfg := rawrpc.DefaultServerConfig()
	cfg.Workers = 2
	cfg.MaxClients = 8
	s := rawrpc.NewServer(c.Hosts[0], cfg)
	execs := make(map[uint64]int)
	s.Register(2, func(th *host.Thread, clientID uint16, req []byte, out []byte) int {
		th.Work(100)
		execs[binary.LittleEndian.Uint64(req)]++
		return copy(out, req)
	})
	s.Start()
	p := c.InstallFaults(&faults.Scenario{
		Name:    "crash-restart",
		Crashes: []faults.Crash{{Node: 0, At: int64(300 * sim.Microsecond), RestartAfterNs: int64(150 * sim.Microsecond)}},
		NIC:     faults.NICTuning{RetransmitTimeoutNs: 20_000, RetryCount: 12},
	})
	rel := rpccore.SharedRel(c.Telemetry)

	const clients, calls = 4, 400
	acked := make([][]uint64, clients)
	done := make([]bool, clients)
	opts := rpccore.CallOpts{Timeout: 600 * sim.Microsecond, RetryInterval: 120 * sim.Microsecond, MaxRetries: 3}
	hardStop := sim.Time(30 * sim.Millisecond)
	for i := 0; i < clients; i++ {
		i := i
		sig := sim.NewSignal(c.Env)
		conn := rpccore.NewCaller(s.Connect(c.Hosts[1], sig), opts, rel)
		c.Hosts[1].Spawn("eo-client", func(th *host.Thread) {
			payload := make([]byte, 24)
			for seq := 0; seq < calls; seq++ {
				tok := uint64(i)<<32 | uint64(seq)
				binary.LittleEndian.PutUint64(payload, tok)
				reqID := uint64(seq)
				for !conn.TrySend(th, 2, payload, reqID) {
					conn.Poll(th, func(rpccore.Response) {})
					if th.P.Now() >= hardStop {
						return
					}
					sig.WaitTimeout(th.P, 10*sim.Microsecond)
				}
				resolved := false
				for !resolved {
					conn.Poll(th, func(r rpccore.Response) {
						if r.ReqID != reqID || resolved {
							return
						}
						resolved = true
						if !r.Err && !r.TimedOut {
							acked[i] = append(acked[i], tok)
						}
					})
					if resolved {
						break
					}
					if th.P.Now() >= hardStop {
						return
					}
					sig.WaitTimeout(th.P, 10*sim.Microsecond)
				}
			}
			done[i] = true
		})
	}
	c.Env.RunUntil(hardStop + sim.Time(sim.Millisecond))

	var totalAcked int
	for i := range acked {
		if !done[i] {
			t.Errorf("client %d wedged across the crash (%d/%d calls resolved)", i, len(acked[i]), calls)
		}
		totalAcked += len(acked[i])
		for _, tok := range acked[i] {
			if execs[tok] == 0 {
				t.Errorf("token %x acked but never executed", tok)
			}
		}
	}
	for tok, n := range execs {
		if n > 1 {
			t.Errorf("token %x executed %d times, want exactly once", tok, n)
		}
	}
	if totalAcked == 0 {
		t.Fatal("nothing acknowledged — the run proves nothing")
	}
	if p.Stats.Crashes != 1 || p.Stats.LinkDownDrops == 0 {
		t.Fatalf("crash never bit: %+v", p.Stats)
	}
	if rel.Retries == 0 {
		t.Fatal("no retries across a 150µs server blackout — duplicates untested")
	}
}
